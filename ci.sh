#!/usr/bin/env bash
# ci.sh — full local CI sweep (README.md "Continuous integration").
#
# Builds and tests three configurations:
#   build/       Release            (the tier-1 configuration)
#   build-asan/  Debug + ASan/UBSan (-DGS_SANITIZE=address,undefined)
#   build-tsan/  Debug + TSan       (-DGS_SANITIZE=thread)
#
# The sanitizer runs execute the same ctest suite; test_check and the
# multi-worker ThreadPool/Device tests give TSan real cross-thread traffic
# to look at. If clang-tidy is installed, the curated .clang-tidy profile
# is run over src/; otherwise that stage is skipped with a notice (the
# container used for development does not ship clang-tidy).
#
# Usage: ./ci.sh [jobs]     (defaults to nproc)
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

run_config() {
  local dir="$1"; shift
  echo "==> configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@" > /dev/null
  echo "==> build ${dir}"
  cmake --build "${dir}" -j "${JOBS}" > /dev/null
  echo "==> test ${dir}"
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
}

run_config build        -DCMAKE_BUILD_TYPE=Release

# Bench regression gate (OBSERVABILITY.md "Metrics"): regenerate the
# machine-readable bench artifact from the Release build and diff it
# against the committed baseline. Modeled runtimes get a 25% band;
# health-warning counts at the fixed seeds must not increase.
echo "==> bench-json regression gate"
if command -v python3 > /dev/null 2>&1; then
  (cd build && ./bench/bench_json BENCH_solver.json)
  python3 bench/compare_bench.py BENCH_solver.json build/BENCH_solver.json

  # Exit-code contract of the gate itself: a missing input is a usage
  # error (2), a doctored runtime is a regression (1). Both must stay
  # distinguishable from "within bands" (0).
  echo "==> compare_bench exit-code contract"
  rc=0
  python3 bench/compare_bench.py BENCH_solver.json /nonexistent.json \
    2> /dev/null || rc=$?
  [ "${rc}" -eq 2 ] || {
    echo "expected exit 2 on missing input, got ${rc}"; exit 1; }
  rc=0
  python3 - <<'EOF' || rc=$?
import json, subprocess, sys
doc = json.load(open("BENCH_solver.json"))
def inflate(node):
    if isinstance(node, dict):
        for k, v in node.items():
            if isinstance(v, (int, float)) and (
                    k.endswith("_ms") or k.endswith("_seconds")):
                node[k] = v * 10  # way past the 25% band
            else:
                inflate(v)
    elif isinstance(node, list):
        for v in node:
            inflate(v)
inflate(doc)
json.dump(doc, open("build/bench_doctored.json", "w"))
sys.exit(subprocess.run(
    [sys.executable, "bench/compare_bench.py", "BENCH_solver.json",
     "build/bench_doctored.json"],
    stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL).returncode)
EOF
  [ "${rc}" -eq 1 ] || {
    echo "expected exit 1 on doctored runtimes, got ${rc}"; exit 1; }

  # A doctored launch/transfer budget (kernel_launches / h2d_bytes grown
  # past the 5% band) must also fail: the iteration-slimming work in the
  # device engine is gated, not just modeled runtime.
  rc=0
  python3 - <<'EOF' || rc=$?
import json, subprocess, sys
doc = json.load(open("BENCH_solver.json"))
def inflate(node):
    if isinstance(node, dict):
        for k, v in node.items():
            if isinstance(v, (int, float)) and k in (
                    "kernel_launches", "h2d_bytes"):
                node[k] = v * 1.2  # past the 5% budget band
            else:
                inflate(v)
    elif isinstance(node, list):
        for v in node:
            inflate(v)
inflate(doc)
json.dump(doc, open("build/bench_budget_doctored.json", "w"))
sys.exit(subprocess.run(
    [sys.executable, "bench/compare_bench.py", "BENCH_solver.json",
     "build/bench_budget_doctored.json"],
    stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL).returncode)
EOF
  [ "${rc}" -eq 1 ] || {
    echo "expected exit 1 on doctored launch budget, got ${rc}"; exit 1; }

  # A baseline that predates a whole candidate section must be reported
  # as stale (exit 2, "regenerate the baseline"), not as a regression:
  # CI acts differently on the two (refresh vs investigate).
  rc=0
  python3 - <<'EOF' || rc=$?
import json, subprocess, sys
doc = json.load(open("BENCH_solver.json"))
doc.pop("memory")  # pretend the baseline predates the memory section
json.dump(doc, open("build/bench_stale_base.json", "w"))
sys.exit(subprocess.run(
    [sys.executable, "bench/compare_bench.py", "build/bench_stale_base.json",
     "BENCH_solver.json"],
    stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL).returncode)
EOF
  [ "${rc}" -eq 2 ] || {
    echo "expected exit 2 on stale baseline, got ${rc}"; exit 1; }

  # Perf-smoke subset gate: the quick --tiny sweep (first two points, no
  # breakdown) must sit inside the committed baseline's bands when aligned
  # by problem size with --subset. This is the fast path CI runs on every
  # push; the full regeneration above catches the rest.
  echo "==> perf-smoke (bench_json --tiny vs committed baseline)"
  (cd build && ./bench/bench_json bench_tiny.json --tiny)
  python3 bench/compare_bench.py --subset BENCH_solver.json build/bench_tiny.json

  # Service throughput floor (SERVICE.md): the traffic bench exits 1 if
  # batched dispatch drops below 10x the sequential device baseline.
  echo "==> perf-smoke (svc_traffic --tiny throughput floor)"
  (cd build && ./bench/svc_traffic --tiny)
else
  echo "==> python3 not installed; skipping bench-json gate"
fi

# Static launch-graph analysis gate (CHECKING.md "Static analysis"): every
# engine's captured kernel stream — device double/float, fused and
# unfused, sparse, batch, and a service-style batch round — must carry
# zero dataflow hazards, zero uninitialized device reads, zero
# cost-declaration findings, and waste at most 1% of its PCIe traffic on
# redundant transfers. Exits 1 with the offending report otherwise.
echo "==> analyze-gate (static dataflow analysis over all engines)"
(cd build && ./bench/analyze_gate)

# Recorder gates (OBSERVABILITY.md "Recorder"): the byte format carries no
# timestamps, so record -> record must be byte-identical; record -> replay
# must verify every decision; and the crafted float-vs-double witness must
# diverge at pivot 0 with both candidates reported.
echo "==> recorder round-trip + divergence gates"
(
  cd build
  ./examples/lp_cli --gen dense:32:11 --record=ci_a.gsrec > /dev/null
  ./examples/lp_cli --gen dense:32:11 --record=ci_b.gsrec > /dev/null
  cmp ci_a.gsrec ci_b.gsrec
  ./examples/lp_cli --gen dense:32:11 --replay=ci_a.gsrec \
    | grep 'replay: verified'
  ./examples/lp_cli ../data/precision_tie.lp --engine device \
    --record=ci_tie_d.gsrec > /dev/null
  ./examples/lp_cli ../data/precision_tie.lp --engine device-float \
    --record=ci_tie_f.gsrec > /dev/null
  ./examples/lp_cli --diff ci_tie_d.gsrec ci_tie_f.gsrec \
    | tee /dev/stderr | grep -q 'diverge at pivot 0'
)

# Profiler gates (OBSERVABILITY.md "Profiler"): the roofline profiler's
# kernel totals must reconcile bit-exactly with DeviceStats (lp_cli exits
# 1 and prints nothing matching the grep otherwise), and every admitted
# service request must carry a stage span tree that tiles its latency to
# 1e-9 (svc_traffic exits 1 on a coverage or tiling miss).
echo "==> profiler reconciliation + request-span tiling gates"
(
  cd build
  ./examples/lp_cli --gen dense:32:11 --profile=ci_profile.json \
    | grep 'profile: reconciled bit-exactly'
  ./bench/svc_traffic --tiny --profile \
    | grep 'stage spans tile'
)

# Telemetry + SLO gates (OBSERVABILITY.md "Telemetry & SLOs"): the
# sampled series live on the modeled clock, so two identical runs must
# write byte-identical gs-telemetry-v1 artifacts; the baseline SLO spec
# (matched to the committed bench numbers) must attain every objective;
# a doctored, unattainable spec must exit 1 (the burn-rate alerting and
# error-budget accounting are load-bearing, not decorative); and the
# engine-level series surface in lp_cli must write its artifact.
echo "==> telemetry + SLO gates"
(
  cd build
  ./bench/svc_traffic --tiny --telemetry=ci_telemetry.json \
    --slo='p99<=20ms,miss<=0.01,reject<=0.01,hit>=0' \
    | grep 'slo: all objectives attained'
  ./bench/svc_traffic --tiny --telemetry=ci_telemetry2.json \
    --slo='p99<=20ms,miss<=0.01,reject<=0.01,hit>=0' > /dev/null
  cmp ci_telemetry.json ci_telemetry2.json
  rc=0
  ./bench/svc_traffic --tiny --slo='p99<=0.0001ms' > /dev/null 2>&1 || rc=$?
  [ "${rc}" -eq 1 ] || {
    echo "expected exit 1 on unattainable SLO spec, got ${rc}"; exit 1; }
  ./examples/lp_cli --gen dense:32:11 --telemetry=ci_engine_telemetry.json \
    | grep 'telemetry: wrote'
)

# Basis-oracle + dual-engine gates (DESIGN.md "Basis oracles",
# SERVICE.md warm-start): the static analyzer and roofline profiler must
# account the dual engine and the product-form device path natively —
# analyze_gate covers the sparse/product-form kernel stream, and the
# profiler must reconcile bit-exactly over both. The Klee–Minty cube is
# the classic exponential-path/cycling stressor: the dual engine must
# finish it optimally (anti-cycling smoke) rather than stall.
echo "==> basis-oracle + dual-engine gates"
(
  cd build
  ./bench/analyze_gate --tiny
  ./examples/lp_cli --gen dense:32:11 --engine dual \
    --profile=ci_dual_profile.json \
    | grep 'profile: reconciled bit-exactly'
  ./examples/lp_cli --gen sparse:96:7 --engine sparse --basis product-form \
    --profile=ci_pf_profile.json \
    | grep 'profile: reconciled bit-exactly'
  ./examples/lp_cli --gen klee:12 --engine dual \
    | grep -i 'status: *optimal'
)

run_config build-asan   -DCMAKE_BUILD_TYPE=Debug -DGS_SANITIZE=address,undefined
run_config build-tsan   -DCMAKE_BUILD_TYPE=Debug -DGS_SANITIZE=thread

if command -v clang-tidy > /dev/null 2>&1; then
  echo "==> clang-tidy (profile: .clang-tidy, warnings are errors)"
  # Use the Release compile database; header-filter keeps output to our
  # code. The profile sets WarningsAsErrors: '*' — every enabled check is
  # a curated, fix-worthy diagnostic, so any hit exits non-zero and fails
  # this stage.
  find src -name '*.cpp' -print0 |
    xargs -0 clang-tidy -p build --quiet
else
  echo "==> clang-tidy not installed; skipping lint stage"
fi

echo "==> ci.sh: all configurations passed"
