#!/usr/bin/env bash
# ci.sh — full local CI sweep (README.md "Continuous integration").
#
# Builds and tests three configurations:
#   build/       Release            (the tier-1 configuration)
#   build-asan/  Debug + ASan/UBSan (-DGS_SANITIZE=address,undefined)
#   build-tsan/  Debug + TSan       (-DGS_SANITIZE=thread)
#
# The sanitizer runs execute the same ctest suite; test_check and the
# multi-worker ThreadPool/Device tests give TSan real cross-thread traffic
# to look at. If clang-tidy is installed, the curated .clang-tidy profile
# is run over src/; otherwise that stage is skipped with a notice (the
# container used for development does not ship clang-tidy).
#
# Usage: ./ci.sh [jobs]     (defaults to nproc)
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

run_config() {
  local dir="$1"; shift
  echo "==> configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@" > /dev/null
  echo "==> build ${dir}"
  cmake --build "${dir}" -j "${JOBS}" > /dev/null
  echo "==> test ${dir}"
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
}

run_config build        -DCMAKE_BUILD_TYPE=Release

# Bench regression gate (OBSERVABILITY.md "Metrics"): regenerate the
# machine-readable bench artifact from the Release build and diff it
# against the committed baseline. Modeled runtimes get a 25% band;
# health-warning counts at the fixed seeds must not increase.
echo "==> bench-json regression gate"
if command -v python3 > /dev/null 2>&1; then
  (cd build && ./bench/bench_json BENCH_solver.json)
  python3 bench/compare_bench.py BENCH_solver.json build/BENCH_solver.json
else
  echo "==> python3 not installed; skipping bench-json gate"
fi

run_config build-asan   -DCMAKE_BUILD_TYPE=Debug -DGS_SANITIZE=address,undefined
run_config build-tsan   -DCMAKE_BUILD_TYPE=Debug -DGS_SANITIZE=thread

if command -v clang-tidy > /dev/null 2>&1; then
  echo "==> clang-tidy (profile: .clang-tidy)"
  # Use the Release compile database; header-filter keeps output to our code.
  find src -name '*.cpp' -print0 |
    xargs -0 clang-tidy -p build --quiet
else
  echo "==> clang-tidy not installed; skipping lint stage"
fi

echo "==> ci.sh: all configurations passed"
