* The classical MPS exposition example.
* Optimum: -7 at X1 = 1, X2 = -1, X3 = 6.
NAME          TESTPROB
ROWS
 N  COST
 L  LIM1
 G  LIM2
 E  MYEQN
COLUMNS
    X1        COST         1.0   LIM1         1.0
    X1        LIM2         1.0
    X2        COST         2.0   LIM1         1.0
    X2        MYEQN       -1.0
    X3        COST        -1.0   MYEQN        1.0
RHS
    RHS       LIM1         4.0   LIM2         1.0
    RHS       MYEQN        7.0
BOUNDS
 UP BND       X1           4.0
 LO BND       X2          -1.0
ENDATA
