// Unit tests for the dense BLAS module, validated against independent
// serial reference implementations.
#include <gtest/gtest.h>

#include <vector>

#include "support/rng.hpp"
#include "vblas/blas1.hpp"
#include "vblas/blas2.hpp"
#include "vblas/blas3.hpp"
#include "vblas/containers.hpp"
#include "vblas/host_ref.hpp"
#include "vblas/lu.hpp"
#include "vgpu/machine_model.hpp"

namespace gs::vblas {
namespace {

using vgpu::Device;
using vgpu::DeviceBuffer;

[[nodiscard]] std::vector<double> random_vector(std::size_t n,
                                                std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-2.0, 2.0);
  return v;
}

[[nodiscard]] Matrix<double> random_matrix(std::size_t rows, std::size_t cols,
                                           std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Matrix<double> m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
  }
  return m;
}

// -------------------------------------------------------------- containers

TEST(Matrix, IdentityAndTranspose) {
  const auto eye = Matrix<double>::identity(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
  const auto m = random_matrix(3, 5, 1);
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 5u);
  EXPECT_EQ(t.cols(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(m(i, j), t(j, i));
  }
}

TEST(Matrix, RowViewIsMutable) {
  Matrix<double> m(2, 3);
  auto row = m.row(1);
  row[2] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 9.0);
}

TEST(DeviceMatrix, RoundTrip) {
  Device dev(vgpu::gtx280_model());
  const auto host = random_matrix(6, 7, 2);
  DeviceMatrix<double> d(dev, host);
  const auto back = d.to_host();
  for (std::size_t i = 0; i < host.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.flat()[i], host.flat()[i]);
  }
  EXPECT_EQ(d.rows(), 6u);
  EXPECT_EQ(d.cols(), 7u);
}

TEST(DeviceMatrix, UploadShapeMismatchThrows) {
  Device dev(vgpu::gtx280_model());
  DeviceMatrix<double> d(dev, 2, 2);
  EXPECT_THROW(d.upload(Matrix<double>(3, 2)), Error);
}

// ------------------------------------------------------------------ BLAS-1

class Blas1Sizes : public ::testing::TestWithParam<std::size_t> {
 protected:
  Device dev_{vgpu::gtx280_model()};
};

TEST_P(Blas1Sizes, AxpyMatchesReference) {
  const std::size_t n = GetParam();
  auto x = random_vector(n, 10), y = random_vector(n, 11);
  DeviceBuffer<double> dx(dev_, std::span<const double>(x));
  DeviceBuffer<double> dy(dev_, std::span<const double>(y));
  axpy(0.5, dx, dy);
  ref::axpy(0.5, std::span<const double>(x), std::span<double>(y));
  const auto got = dy.to_host();
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(got[i], y[i]);
}

TEST_P(Blas1Sizes, DotMatchesReference) {
  const std::size_t n = GetParam();
  auto x = random_vector(n, 12), y = random_vector(n, 13);
  DeviceBuffer<double> dx(dev_, std::span<const double>(x));
  DeviceBuffer<double> dy(dev_, std::span<const double>(y));
  const double expect =
      ref::dot(std::span<const double>(x), std::span<const double>(y));
  EXPECT_NEAR(dot(dx, dy), expect, 1e-10 * (1.0 + n));
}

TEST_P(Blas1Sizes, ScalNrm2Asum) {
  const std::size_t n = GetParam();
  auto x = random_vector(n, 14);
  DeviceBuffer<double> dx(dev_, std::span<const double>(x));
  scal(-2.0, dx);
  const auto got = dx.to_host();
  double sumsq = 0.0, sumabs = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(got[i], -2.0 * x[i]);
    sumsq += got[i] * got[i];
    sumabs += std::abs(got[i]);
  }
  EXPECT_NEAR(nrm2(dx), std::sqrt(sumsq), 1e-9 * (1.0 + n));
  EXPECT_NEAR(asum(dx), sumabs, 1e-9 * (1.0 + n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, Blas1Sizes,
                         ::testing::Values(1, 5, 256, 300, 2048));

TEST(Blas1, CopyKernel) {
  Device dev(vgpu::gtx280_model());
  auto x = random_vector(100, 15);
  DeviceBuffer<double> dx(dev, std::span<const double>(x));
  DeviceBuffer<double> dy(dev, 100);
  copy(dx, dy);
  EXPECT_EQ(dy.to_host(), x);
}

TEST(Blas1, SizeMismatchThrows) {
  Device dev(vgpu::gtx280_model());
  DeviceBuffer<double> a(dev, 3), b(dev, 4);
  EXPECT_THROW(axpy(1.0, a, b), Error);
  EXPECT_THROW((void)dot(a, b), Error);
}

// ------------------------------------------------------------------ BLAS-2

struct GemvShape {
  std::size_t m, n;
};

class Blas2Shapes : public ::testing::TestWithParam<GemvShape> {
 protected:
  Device dev_{vgpu::gtx280_model()};
};

TEST_P(Blas2Shapes, GemvMatchesReference) {
  const auto [m, n] = GetParam();
  const auto a = random_matrix(m, n, 20);
  const auto x = random_vector(n, 21);
  DeviceMatrix<double> da(dev_, a);
  DeviceBuffer<double> dx(dev_, std::span<const double>(x));
  DeviceBuffer<double> dy(dev_, m);
  gemv(1.0, da, dx, 0.0, dy);
  const auto expect = ref::gemv(a, std::span<const double>(x));
  const auto got = dy.to_host();
  for (std::size_t i = 0; i < m; ++i) EXPECT_NEAR(got[i], expect[i], 1e-10 * n);
}

TEST_P(Blas2Shapes, GemvTransposedMatchesReference) {
  const auto [m, n] = GetParam();
  const auto a = random_matrix(m, n, 22);
  const auto x = random_vector(m, 23);
  DeviceMatrix<double> da(dev_, a);
  DeviceBuffer<double> dx(dev_, std::span<const double>(x));
  DeviceBuffer<double> dy(dev_, n);
  gemv_t(1.0, da, dx, 0.0, dy);
  const auto expect = ref::gemv_t(a, std::span<const double>(x));
  const auto got = dy.to_host();
  for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(got[j], expect[j], 1e-10 * m);
}

TEST_P(Blas2Shapes, GerMatchesReference) {
  const auto [m, n] = GetParam();
  auto a = random_matrix(m, n, 24);
  const auto x = random_vector(m, 25);
  const auto y = random_vector(n, 26);
  DeviceMatrix<double> da(dev_, a);
  DeviceBuffer<double> dx(dev_, std::span<const double>(x));
  DeviceBuffer<double> dy(dev_, std::span<const double>(y));
  ger(1.5, dx, dy, da);
  const auto got = da.to_host();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(got(i, j), a(i, j) + 1.5 * x[i] * y[j], 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, Blas2Shapes,
                         ::testing::Values(GemvShape{1, 1}, GemvShape{3, 7},
                                           GemvShape{64, 64},
                                           GemvShape{300, 100},
                                           GemvShape{100, 300}));

TEST(Blas2, GemvAlphaBetaComposition) {
  Device dev(vgpu::gtx280_model());
  const auto a = random_matrix(8, 8, 27);
  const auto x = random_vector(8, 28);
  auto y = random_vector(8, 29);
  DeviceMatrix<double> da(dev, a);
  DeviceBuffer<double> dx(dev, std::span<const double>(x));
  DeviceBuffer<double> dy(dev, std::span<const double>(y));
  gemv(2.0, da, dx, -1.0, dy);
  const auto ax = ref::gemv(a, std::span<const double>(x));
  const auto got = dy.to_host();
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(got[i], 2.0 * ax[i] - y[i], 1e-12);
  }
}

TEST(Blas2, GatherColumn) {
  Device dev(vgpu::gtx280_model());
  const auto a = random_matrix(10, 6, 30);
  DeviceMatrix<double> da(dev, a);
  DeviceBuffer<double> out(dev, 10);
  gather_column(da, 4, out);
  const auto got = out.to_host();
  for (std::size_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(got[i], a(i, 4));
}

TEST(Blas2, ShapeMismatchThrows) {
  Device dev(vgpu::gtx280_model());
  DeviceMatrix<double> a(dev, 3, 4);
  DeviceBuffer<double> x(dev, 5), y(dev, 3);
  EXPECT_THROW(gemv(1.0, a, x, 0.0, y), Error);
}

// ------------------------------------------------------------------ BLAS-3

TEST(Blas3, GemmMatchesReference) {
  Device dev(vgpu::gtx280_model());
  const auto a = random_matrix(17, 9, 40);
  const auto b = random_matrix(9, 13, 41);
  DeviceMatrix<double> da(dev, a), db(dev, b), dc(dev, 17, 13);
  gemm(1.0, da, db, 0.0, dc);
  const auto expect = ref::gemm(a, b);
  const auto got = dc.to_host();
  for (std::size_t i = 0; i < 17; ++i) {
    for (std::size_t j = 0; j < 13; ++j) {
      EXPECT_NEAR(got(i, j), expect(i, j), 1e-10);
    }
  }
}

TEST(Blas3, GemmBetaAccumulates) {
  Device dev(vgpu::gtx280_model());
  const auto a = random_matrix(4, 4, 42);
  const auto eye = Matrix<double>::identity(4);
  DeviceMatrix<double> da(dev, a), di(dev, eye), dc(dev, a);
  gemm(1.0, da, di, 1.0, dc);  // c = a*I + c = 2a
  const auto got = dc.to_host();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(got.flat()[i], 2.0 * a.flat()[i], 1e-12);
  }
}

// ------------------------------------------------------------------ invert

TEST(Invert, InverseTimesOriginalIsIdentity) {
  // Diagonally dominant -> well conditioned.
  auto a = random_matrix(12, 12, 50);
  for (std::size_t i = 0; i < 12; ++i) a(i, i) += 15.0;
  const auto inv = ref::invert(a);
  const auto prod = ref::gemm(a, inv);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Invert, SingularMatrixThrows) {
  Matrix<double> a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;  // third row all zeros
  EXPECT_THROW((void)ref::invert(a), Error);
}

TEST(Invert, RequiresSquare) {
  EXPECT_THROW((void)ref::invert(Matrix<double>(2, 3)), Error);
}

// ---------------------------------------------------------------------- LU

TEST(Lu, FactorSolveRoundTrip) {
  auto a = random_matrix(10, 10, 60);
  for (std::size_t i = 0; i < 10; ++i) a(i, i) += 12.0;  // well conditioned
  const auto f = lu_factor(a);
  const auto b = random_vector(10, 61);
  const auto x = lu_solve(f, b);
  const auto ax = ref::gemv(a, std::span<const double>(x));
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

TEST(Lu, TransposedSolve) {
  auto a = random_matrix(9, 9, 62);
  for (std::size_t i = 0; i < 9; ++i) a(i, i) += 10.0;
  const auto f = lu_factor(a);
  const auto b = random_vector(9, 63);
  const auto x = lu_solve_transposed(f, b);
  // A^T x = b  <=>  x^T A = b^T: check with gemv on the transpose.
  const auto atx = ref::gemv(a.transposed(), std::span<const double>(x));
  for (std::size_t i = 0; i < 9; ++i) EXPECT_NEAR(atx[i], b[i], 1e-9);
}

TEST(Lu, NeedsPivotingMatrixSolves) {
  // Zero on the leading diagonal: fails without row pivoting.
  Matrix<double> a(3, 3);
  a(0, 1) = 2.0;
  a(1, 0) = 3.0;
  a(2, 2) = 4.0;
  a(0, 2) = 1.0;
  const auto f = lu_factor(a);
  const std::vector<double> b{5.0, 6.0, 8.0};
  const auto x = lu_solve(f, b);
  const auto ax = ref::gemv(a, std::span<const double>(x));
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(ax[i], b[i], 1e-12);
}

TEST(Lu, SingularMatrixThrows) {
  Matrix<double> a(2, 2);
  a(0, 0) = 1.0;
  a(1, 0) = 2.0;  // second column all zero
  EXPECT_THROW((void)lu_factor(a), Error);
}

TEST(Lu, AgreesWithExplicitInverse) {
  auto a = random_matrix(8, 8, 64);
  for (std::size_t i = 0; i < 8; ++i) a(i, i) += 9.0;
  const auto f = lu_factor(a);
  const auto inv = ref::invert(a);
  const auto b = random_vector(8, 65);
  const auto via_lu = lu_solve(f, b);
  const auto via_inv = ref::gemv(inv, std::span<const double>(b));
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(via_lu[i], via_inv[i], 1e-9);
  }
}

TEST(Invert, PermutationMatrix) {
  Matrix<double> p(3, 3);
  p(0, 2) = 1.0;
  p(1, 0) = 1.0;
  p(2, 1) = 1.0;
  const auto inv = ref::invert(p);
  // inverse of a permutation is its transpose
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(inv(i, j), p(j, i), 1e-12);
  }
}

}  // namespace
}  // namespace gs::vblas
