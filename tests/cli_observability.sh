#!/usr/bin/env bash
# Combined-observer and recorder coverage for lp_cli, run under ctest.
#
#   cli_observability.sh <path-to-lp_cli> <source data dir>
#
# Checks, end to end against the real binary:
#   1. Enabling --trace/--metrics/--check/--record/--profile/--telemetry
#      individually or all at once leaves the solve bit-identical to a
#      plain run (status, iterations, objective, modeled time), the
#      recording written by the combined run is byte-identical to the
#      record-only run, and the profile and telemetry JSON artifacts
#      (deterministic: modeled time only) are byte-identical between the
#      solo and combined runs.
#   2. A record -> replay round trip verifies every decision with zero
#      mismatches and reproduces the same solve.
#   3. A float-vs-double pair on data/precision_tie.lp diverges at pivot 0
#      and `lp_cli --diff` says so.
set -u
LP_CLI=$1
DATA=$2
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
cd "$TMP" || exit 1

GEN=dense:24:7
fail() { echo "FAIL: $*" >&2; exit 1; }

# Deterministic solve lines only: wall-clock time is stripped, the modeled
# (simulated) time must match exactly.
solve_lines() {
  grep -E '^(status|iterations|objective|modeled time):' "$1" \
    | sed 's/ ms, wall:.*$/ ms/'
}

"$LP_CLI" --gen $GEN >plain.out || fail "plain run"
"$LP_CLI" --gen $GEN --trace trace_solo.json >trace.out || fail "--trace run"
"$LP_CLI" --gen $GEN --metrics=metrics_solo.json >metrics.out \
  || fail "--metrics run"
"$LP_CLI" --gen $GEN --check >check.out || fail "--check run"
"$LP_CLI" --gen $GEN --record=solo.gsrec >record.out || fail "--record run"
"$LP_CLI" --gen $GEN --profile=prof_solo.json >profile.out \
  || fail "--profile run"
"$LP_CLI" --gen $GEN --telemetry=tel_solo.json >telemetry.out \
  || fail "--telemetry run"
"$LP_CLI" --gen $GEN --trace trace_comb.json --metrics=metrics_comb.json \
  --check --record=comb.gsrec --profile=prof_comb.json \
  --telemetry=tel_comb.json >combined.out \
  || fail "combined run"

solve_lines plain.out >expected.txt
for f in trace.out metrics.out check.out record.out profile.out \
         telemetry.out combined.out; do
  solve_lines "$f" >got.txt
  diff expected.txt got.txt >/dev/null \
    || fail "$f: solve differs from plain run (observers must be inert)"
done
cmp -s solo.gsrec comb.gsrec \
  || fail "combined-run recording differs from record-only recording"
grep -q 'profile: reconciled bit-exactly' profile.out \
  || fail "--profile run did not report bit-exact reconciliation"
cmp -s prof_solo.json prof_comb.json \
  || fail "combined-run profile differs from profile-only run"
test -s prof_solo.json.folded \
  || fail "--profile did not write the collapsed-stack flamegraph"
cmp -s tel_solo.json tel_comb.json \
  || fail "combined-run telemetry differs from telemetry-only run"
grep -q 'gs-telemetry-v1' tel_solo.json \
  || fail "telemetry artifact is missing its schema tag"

# Record -> replay round trip.
"$LP_CLI" --gen $GEN --replay=solo.gsrec >replay.out \
  || { cat replay.out >&2; fail "replay exited nonzero"; }
grep -q 'replay: verified' replay.out \
  || fail "replay did not report verification"
solve_lines replay.out >got.txt
diff expected.txt got.txt >/dev/null \
  || fail "replay solve differs from original run"

# Float-vs-double divergence witness.
"$LP_CLI" "$DATA/precision_tie.lp" --engine device --record=tie_d.gsrec \
  >/dev/null || fail "double solve of precision_tie.lp"
"$LP_CLI" "$DATA/precision_tie.lp" --engine device-float \
  --record=tie_f.gsrec >/dev/null || fail "float solve of precision_tie.lp"
"$LP_CLI" --diff tie_d.gsrec tie_f.gsrec >diff.out \
  || { cat diff.out >&2; fail "--diff exited nonzero"; }
grep -q 'diverge at pivot 0' diff.out \
  || { cat diff.out >&2; fail "--diff did not report divergence at pivot 0"; }

echo "cli_observability: all checks passed"
