// Trace-layer tests: span nesting, Chrome JSON well-formedness, stats
// reconciliation, and the zero-overhead-when-disabled guarantee. These
// exercise exactly the API documented in OBSERVABILITY.md — if a name in
// that document stops compiling, it fails here first.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lp/generators.hpp"
#include "simplex/batch_revised.hpp"
#include "simplex/cost_meter.hpp"
#include "simplex/solver.hpp"
#include "trace/chrome_sink.hpp"
#include "trace/ring_sink.hpp"

namespace {

using namespace gs;
using trace::EventPhase;
using trace::TraceEvent;

lp::LpProblem tiny_lp() {
  return lp::random_dense_lp({.rows = 8, .cols = 8, .seed = 7});
}

simplex::SolveResult solve_device_traced(trace::TraceSink* sink,
                                         const lp::LpProblem& problem) {
  simplex::SolverOptions opt;
  opt.trace_sink = sink;
  vgpu::Device dev(vgpu::gtx280_model());
  simplex::DeviceRevisedSimplex<double> solver(dev, opt);
  return solver.solve(problem);
}

// ---------------------------------------------------------------------
// Ring-buffer sink: span nesting of a tiny LP solve.
// ---------------------------------------------------------------------

TEST(TraceRing, SpanNestingForTinyLp) {
  trace::RingBufferSink sink;
  const auto result = solve_device_traced(&sink, tiny_lp());
  ASSERT_TRUE(result.optimal());

  const auto events = sink.events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(sink.dropped(), 0u);

  // B/E balance and depth bookkeeping.
  std::vector<std::string> stack;
  std::size_t iterations = 0, solves = 0;
  bool saw_price = false, saw_ftran = false, saw_ratio = false,
       saw_update = false;
  for (const TraceEvent& e : events) {
    if (e.phase == EventPhase::kBegin) {
      if (e.name == "solve") {
        EXPECT_TRUE(stack.empty()) << "solve span must be top-level";
        ++solves;
      }
      if (e.name == "iteration") {
        ASSERT_FALSE(stack.empty());
        EXPECT_TRUE(stack.back() == "phase1" || stack.back() == "phase2")
            << "iteration must nest inside a phase span, got "
            << stack.back();
        ++iterations;
      }
      if (e.name == "price" || e.name == "ftran" || e.name == "ratio" ||
          e.name == "update") {
        ASSERT_FALSE(stack.empty());
        EXPECT_EQ(stack.back(), "iteration")
            << e.name << " must nest inside an iteration span";
        saw_price |= e.name == "price";
        saw_ftran |= e.name == "ftran";
        saw_ratio |= e.name == "ratio";
        saw_update |= e.name == "update";
      }
      stack.push_back(e.name);
    } else if (e.phase == EventPhase::kEnd) {
      ASSERT_FALSE(stack.empty()) << "unbalanced end event";
      stack.pop_back();
    }
  }
  EXPECT_TRUE(stack.empty()) << "unclosed spans: " << stack.size();
  EXPECT_EQ(solves, 1u);
  // The optimality-detecting final iteration prices but does not pivot, so
  // the trace holds one more iteration span than stats.iterations.
  EXPECT_EQ(iterations, result.stats.iterations + 1);
  EXPECT_TRUE(saw_price && saw_ftran && saw_ratio && saw_update);
}

TEST(TraceRing, KernelSlicesNestInsideTheirSpans) {
  trace::RingBufferSink sink;
  (void)solve_device_traced(&sink, tiny_lp());
  // Every complete slice must lie within every span open at its emission.
  std::vector<double> open_begin_ts;
  for (const TraceEvent& e : sink.events()) {
    if (e.phase == EventPhase::kBegin) open_begin_ts.push_back(e.ts);
    if (e.phase == EventPhase::kEnd) open_begin_ts.pop_back();
    if (e.phase == EventPhase::kComplete && !open_begin_ts.empty()) {
      EXPECT_GE(e.ts, open_begin_ts.back() - 1e-15);
    }
  }
}

TEST(TraceRing, CapacityBoundsRetentionButCountsTotals) {
  trace::RingBufferSink sink(16);
  (void)solve_device_traced(&sink, tiny_lp());
  EXPECT_EQ(sink.capacity(), 16u);
  EXPECT_EQ(sink.events().size(), 16u);
  EXPECT_GT(sink.total_events(), 16u);
  EXPECT_EQ(sink.dropped(), sink.total_events() - 16u);
  // The retained suffix is the newest events: its last entry must be the
  // final event of the solve (the solve span's end).
  EXPECT_EQ(sink.events().back().phase, EventPhase::kEnd);
  sink.clear();
  EXPECT_EQ(sink.total_events(), 0u);
  EXPECT_TRUE(sink.events().empty());
}

// ---------------------------------------------------------------------
// Chrome sink: JSON validity and timestamp ordering.
// ---------------------------------------------------------------------

/// Minimal JSON well-formedness scan: balanced {} / [] outside strings,
/// legal escapes, non-empty.
void expect_balanced_json(const std::string& text) {
  ASSERT_FALSE(text.empty());
  int depth_obj = 0, depth_arr = 0;
  bool in_string = false, escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++depth_obj; break;
      case '}': --depth_obj; break;
      case '[': ++depth_arr; break;
      case ']': --depth_arr; break;
      default: break;
    }
    ASSERT_GE(depth_obj, 0);
    ASSERT_GE(depth_arr, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth_obj, 0);
  EXPECT_EQ(depth_arr, 0);
}

/// Extract every `"ts":<number>` in file order.
std::vector<double> extract_timestamps(const std::string& text) {
  std::vector<double> out;
  const std::string key = "\"ts\":";
  std::size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    pos += key.size();
    out.push_back(std::stod(text.substr(pos)));
  }
  return out;
}

TEST(TraceChrome, JsonParsesAndTimestampsAreMonotone) {
  trace::ChromeTraceSink sink;
  const auto result = solve_device_traced(&sink, tiny_lp());
  ASSERT_TRUE(result.optimal());
  EXPECT_FALSE(sink.empty());

  std::ostringstream os;
  sink.write(os);
  const std::string json = os.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);

  const auto ts = extract_timestamps(json);
  ASSERT_GT(ts.size(), 10u);
  // Metadata events (ts 0) lead; timeline events follow non-decreasing.
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()))
      << "timestamps must be monotonically non-decreasing in file order";
}

TEST(TraceChrome, WriteFileRoundTrip) {
  trace::ChromeTraceSink sink;
  (void)solve_device_traced(&sink, tiny_lp());
  const auto path =
      std::filesystem::temp_directory_path() / "gs_trace_test.json";
  sink.write_file(path.string());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  expect_balanced_json(buf.str());
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------
// Reconciliation: trace slices tile the DeviceStats aggregates.
// ---------------------------------------------------------------------

TEST(TraceReconcile, DeviceKernelAndTransferSlicesMatchStats) {
  trace::ChromeTraceSink sink;
  const auto result = solve_device_traced(
      &sink, lp::random_dense_lp({.rows = 24, .cols = 32, .seed = 3}));
  ASSERT_TRUE(result.optimal());
  const auto& ds = result.stats.device_stats;
  EXPECT_NEAR(sink.category_seconds("kernel"), ds.kernel_seconds, 1e-9);
  EXPECT_NEAR(sink.category_seconds("transfer"), ds.transfer_seconds(), 1e-9);
  EXPECT_NEAR(sink.category_seconds("kernel") +
                  sink.category_seconds("transfer"),
              ds.sim_seconds(), 1e-9);
  // Slice count matches launch/copy counts.
  std::size_t kernels = 0, transfers = 0;
  for (const TraceEvent& e : sink.events()) {
    if (e.phase != EventPhase::kComplete) continue;
    if (e.category == "kernel") ++kernels;
    if (e.category == "transfer") ++transfers;
  }
  EXPECT_EQ(kernels, ds.kernel_launches);
  EXPECT_EQ(transfers, ds.h2d_count + ds.d2h_count);
}

TEST(TraceReconcile, HostEngineSlicesMatchMeterStats) {
  trace::ChromeTraceSink sink;
  simplex::SolverOptions opt;
  opt.trace_sink = &sink;
  const auto result =
      simplex::HostRevisedSimplex(opt).solve(tiny_lp());
  ASSERT_TRUE(result.optimal());
  EXPECT_NEAR(sink.category_seconds("kernel"),
              result.stats.device_stats.kernel_seconds, 1e-9);
  // Host engines move no PCIe traffic.
  EXPECT_EQ(sink.category_seconds("transfer"), 0.0);
  // Host spans land on the host pid, distinct from the device pid.
  for (const TraceEvent& e : sink.events()) {
    EXPECT_EQ(e.pid, trace::kHostPid);
  }
}

TEST(TraceReconcile, BatchEngineEmitsIterationSpans) {
  trace::ChromeTraceSink sink;
  simplex::SolverOptions opt;
  opt.trace_sink = &sink;
  std::vector<lp::LpProblem> batch;
  for (std::uint64_t k = 0; k < 4; ++k) {
    batch.push_back(lp::random_dense_lp({.rows = 6, .cols = 6, .seed = k + 1}));
  }
  vgpu::Device dev(vgpu::gtx280_model());
  simplex::BatchRevisedSimplex<double> solver(dev, opt);
  const auto results = solver.solve(batch);
  for (const auto& r : results) EXPECT_TRUE(r.optimal());

  std::size_t iteration_spans = 0, counters = 0;
  for (const TraceEvent& e : sink.events()) {
    if (e.phase == EventPhase::kBegin && e.name == "iteration") {
      ++iteration_spans;
    }
    if (e.phase == EventPhase::kCounter && e.name == "active_problems") {
      ++counters;
    }
  }
  EXPECT_GT(iteration_spans, 0u);
  EXPECT_EQ(iteration_spans, counters);
  EXPECT_NEAR(sink.category_seconds("kernel") +
                  sink.category_seconds("transfer"),
              results.front().stats.sim_seconds, 1e-9);
}

// ---------------------------------------------------------------------
// Disabled tracing: zero events, zero model perturbation.
// ---------------------------------------------------------------------

TEST(TraceDisabled, NoSinkMeansNoEventsAndIdenticalStats) {
  const auto problem = lp::random_dense_lp({.rows = 16, .cols = 16, .seed = 5});

  // Untraced solve: default options, sink never attached.
  const auto plain = solve_device_traced(nullptr, problem);
  // Traced solve of the same instance.
  trace::RingBufferSink sink;
  const auto traced = solve_device_traced(&sink, problem);

  EXPECT_GT(sink.total_events(), 0u);
  ASSERT_TRUE(plain.optimal());
  ASSERT_TRUE(traced.optimal());
  // Tracing must not perturb the model: bit-identical aggregates.
  EXPECT_EQ(plain.stats.iterations, traced.stats.iterations);
  EXPECT_EQ(plain.objective, traced.objective);
  EXPECT_EQ(plain.stats.sim_seconds, traced.stats.sim_seconds);
  EXPECT_EQ(plain.stats.device_stats.kernel_launches,
            traced.stats.device_stats.kernel_launches);
  EXPECT_EQ(plain.stats.device_stats.kernel_seconds,
            traced.stats.device_stats.kernel_seconds);
  EXPECT_EQ(plain.stats.device_stats.h2d_bytes,
            traced.stats.device_stats.h2d_bytes);
  EXPECT_EQ(plain.stats.device_stats.d2h_bytes,
            traced.stats.device_stats.d2h_bytes);

  // A default-constructed track is disabled and ignores every call.
  trace::Track track;
  EXPECT_FALSE(track.enabled());
  track.begin("x", 0.0);
  track.end(1.0);
  track.counter("c", 0.0, 1.0);
}

// ---------------------------------------------------------------------
// API-surface compile check for OBSERVABILITY.md.
// ---------------------------------------------------------------------

TEST(TraceApi, DocumentedNamesCompileAndBehave) {
  // Event model.
  TraceEvent event;
  event.name = "k";
  event.category = "kernel";
  event.phase = EventPhase::kComplete;
  event.ts = 1.0;
  event.dur = 0.5;
  event.pid = trace::kDevicePid;
  event.tid = trace::kEngineTid;
  event.args.push_back(trace::TraceArg{"flops", 12.0});
  EXPECT_EQ(to_char(EventPhase::kBegin), 'B');
  EXPECT_EQ(to_char(EventPhase::kEnd), 'E');
  EXPECT_EQ(to_char(EventPhase::kCounter), 'C');

  // Sink interface + Track emission helpers.
  trace::RingBufferSink ring(4);
  trace::Track track(&ring, trace::kDevicePid, trace::kEngineTid);
  EXPECT_TRUE(track.enabled());
  track.name_process("proc");
  track.name_thread("thread");
  track.begin("span", 0.0, "op");
  track.complete("slice", 0.0, 0.25, "kernel", {{"bytes", 64.0}});
  track.instant("marker", 0.1);
  track.end(0.5);
  EXPECT_EQ(ring.total_events(), 6u);

  // ScopedSpan against an arbitrary clock.
  double now = 2.0;
  {
    trace::ScopedSpan span(track, "scoped", [&now] { return now; }, "op");
    now = 3.0;
  }

  // SolverOptions wiring + Device/CostMeter attachment points.
  simplex::SolverOptions options;
  options.trace_sink = &ring;
  vgpu::Device device(vgpu::gtx280_model());
  device.set_trace(&ring);
  EXPECT_TRUE(device.trace().enabled());
  device.set_trace(nullptr);
  EXPECT_FALSE(device.trace().enabled());
  simplex::CostMeter meter(vgpu::cpu2009_model(), &ring);
  EXPECT_TRUE(meter.trace().enabled());
  meter.charge("step", 10.0, 10.0);

  // Chrome sink surface.
  trace::ChromeTraceSink chrome;
  chrome.emit(event);
  EXPECT_EQ(chrome.events().size(), 1u);
  EXPECT_NEAR(chrome.category_seconds("kernel"), 0.5, 1e-12);
  std::ostringstream os;
  chrome.write(os);
  EXPECT_FALSE(os.str().empty());
  chrome.clear();
  EXPECT_TRUE(chrome.empty());
}

}  // namespace
