// Launch-graph static analyzer tests (CHECKING.md, "Static analysis").
//
// Mirrors test_check.cpp's two halves for the offline analyzer: a
// seeded-defect corpus the detectors MUST flag — a missing ordering edge
// between streams, a dead store, a redundant h2d, an uninitialized device
// read, a cost under-declaration — each with exact node/buffer
// attribution, and the negative half: every engine's real launch stream
// analyzes clean, and attaching a capture perturbs neither results nor
// the decision log (record::diff zero divergence) nor device stats.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "lp/generators.hpp"
#include "metrics/metrics.hpp"
#include "record/record.hpp"
#include "service/service.hpp"
#include "simplex/batch_revised.hpp"
#include "simplex/solver.hpp"
#include "vgpu/analyze/analyze.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"
#include "vgpu/machine_model.hpp"

namespace gs {
namespace {

using vgpu::Device;
using vgpu::DeviceBuffer;
using vgpu::KernelCost;
using vgpu::analyze::AnalyzeConfig;
using vgpu::analyze::CaptureLog;
using vgpu::analyze::IntervalSet;
using vgpu::analyze::Report;

lp::LpProblem dense(std::size_t m, std::uint64_t seed) {
  return lp::random_dense_lp({.rows = m, .cols = m, .seed = seed});
}

// ------------------------------------------------------------ IntervalSet

TEST(IntervalSet, MergesTouchingAndOverlappingRanges) {
  IntervalSet s;
  s.add(0, 8);
  s.add(16, 24);
  EXPECT_FALSE(s.covers(0, 24));
  s.add(8, 16);  // touching ranges coalesce into one
  EXPECT_TRUE(s.covers(0, 24));
  EXPECT_TRUE(s.covers(3, 21));
  EXPECT_FALSE(s.covers(0, 25));
}

TEST(IntervalSet, FirstGapFindsUncoveredBytes) {
  IntervalSet s;
  s.add(0, 8);
  s.add(16, 24);
  const auto gap = s.first_gap(0, 24);
  EXPECT_EQ(gap.first, 8u);
  EXPECT_EQ(gap.second, 16u);
  const auto none = s.first_gap(0, 8);
  EXPECT_EQ(none.first, none.second);  // fully covered => empty gap
}

// --------------------------------------------------- seeded-defect corpus

/// Two kernels touch the same buffer from different streams with no fence:
/// the writer->reader dependency has no ordering edge, so the analyzer
/// must report a RAW hazard naming both kernels and the buffer.
TEST(Analyzer, DetectsMissingOrderingEdgeBetweenStreams) {
  Device dev(vgpu::gtx280_model());
  CaptureLog cap;
  dev.set_capture(&cap);
  DeviceBuffer<double> buf(dev, 64);
  cap.set_label(buf.host_view().data(), "shared");
  auto sp = buf.device_span();

  cap.set_stream(0);
  dev.launch_blocks("producer", 64, 64, KernelCost{0.0, 64.0 * 8.0},
                    [&](std::size_t, std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) sp[i] = 1.0;
                    });
  cap.set_stream(1);  // concurrent stream, no fence: racy by construction
  double sum = 0.0;
  dev.launch_blocks("consumer", 64, 64, KernelCost{64.0, 64.0 * 8.0},
                    [&](std::size_t, std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) sum += sp[i];
                    });

  const Report rep = vgpu::analyze::analyze(cap);
  ASSERT_EQ(rep.hazards.size(), 1u);
  EXPECT_EQ(rep.hazards[0].kind, "RAW");
  EXPECT_EQ(rep.hazards[0].first, "producer");
  EXPECT_EQ(rep.hazards[0].second, "consumer");
  EXPECT_EQ(rep.buffer_table[rep.hazards[0].buffer].label, "shared");
  EXPECT_EQ(rep.hazards[0].lo, 0u);
  EXPECT_EQ(rep.hazards[0].hi, 64u * sizeof(double));
  EXPECT_FALSE(rep.gate_clean());
}

/// The same two-stream pair with a fence between them is ordered: clean.
TEST(Analyzer, FenceRestoresOrderingBetweenStreams) {
  Device dev(vgpu::gtx280_model());
  CaptureLog cap;
  dev.set_capture(&cap);
  DeviceBuffer<double> buf(dev, 64);
  auto sp = buf.device_span();

  cap.set_stream(0);
  dev.launch_blocks("producer", 64, 64, KernelCost{0.0, 64.0 * 8.0},
                    [&](std::size_t, std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) sp[i] = 1.0;
                    });
  cap.fence();
  cap.set_stream(1);
  double sum = 0.0;
  dev.launch_blocks("consumer", 64, 64, KernelCost{64.0, 64.0 * 8.0},
                    [&](std::size_t, std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) sum += sp[i];
                    });

  const Report rep = vgpu::analyze::analyze(cap);
  EXPECT_TRUE(rep.hazards.empty());
  EXPECT_GE(rep.raw_edges, 1u);
}

/// A write fully overwritten before anything reads it is a dead store,
/// attributed to the writing kernel with the exact wasted byte count.
TEST(Analyzer, DetectsDeadStoreWithAttribution) {
  Device dev(vgpu::gtx280_model());
  CaptureLog cap;
  dev.set_capture(&cap);
  DeviceBuffer<double> buf(dev, 32);
  cap.set_label(buf.host_view().data(), "scratch");
  auto sp = buf.device_span();

  const auto fill = [&](const char* name, double v) {
    dev.launch_blocks(name, 32, 32, KernelCost{0.0, 32.0 * 8.0},
                      [&](std::size_t, std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) sp[i] = v;
                      });
  };
  fill("wasted_writer", 1.0);    // never read before...
  fill("second_writer", 2.0);    // ...this full overwrite
  double sum = 0.0;
  dev.launch_blocks("reader", 32, 32, KernelCost{32.0, 32.0 * 8.0},
                    [&](std::size_t, std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) sum += sp[i];
                    });

  const Report rep = vgpu::analyze::analyze(cap);
  ASSERT_EQ(rep.dead_stores.size(), 1u);
  EXPECT_EQ(rep.dead_stores[0].kernel, "wasted_writer");
  EXPECT_EQ(rep.buffer_table[rep.dead_stores[0].buffer].label, "scratch");
  EXPECT_EQ(rep.dead_stores[0].bytes, 32u * sizeof(double));
  EXPECT_EQ(rep.dead_store_bytes, 32u * sizeof(double));
  // Dead stores are reported, not gated (final-iteration writes are
  // legitimately dead), so the stream is still gate-clean.
  EXPECT_TRUE(rep.gate_clean());
}

/// Re-uploading identical bytes with no intervening device write is a
/// redundant h2d; the wasted bytes must count against the transfer budget.
TEST(Analyzer, DetectsRedundantHostToDeviceTransfer) {
  Device dev(vgpu::gtx280_model());
  CaptureLog cap;
  dev.set_capture(&cap);
  const std::vector<double> host(64, 3.25);
  DeviceBuffer<double> buf(dev, 64);
  cap.set_label(buf.host_view().data(), "coeffs");

  buf.upload(host);
  buf.upload(host);  // same bytes, nothing written in between

  const Report rep = vgpu::analyze::analyze(cap);
  ASSERT_EQ(rep.redundant_transfers.size(), 1u);
  EXPECT_EQ(rep.redundant_transfers[0].dir, "h2d");
  EXPECT_EQ(rep.redundant_transfers[0].bytes, 64u * sizeof(double));
  EXPECT_EQ(rep.buffer_table[rep.redundant_transfers[0].buffer].label,
            "coeffs");
  EXPECT_EQ(rep.redundant_h2d_bytes, 64u * sizeof(double));
  // Half the uploaded traffic was wasted: far over the 1% gate budget.
  EXPECT_FALSE(rep.gate_clean());
  EXPECT_NEAR(rep.dead_transfer_fraction(), 0.5, 1e-12);
}

/// Uploading different content is NOT redundant.
TEST(Analyzer, FreshContentUploadIsNotRedundant) {
  Device dev(vgpu::gtx280_model());
  CaptureLog cap;
  dev.set_capture(&cap);
  std::vector<double> host(64, 3.25);
  DeviceBuffer<double> buf(dev, 64);
  buf.upload(host);
  host[0] = -1.0;
  buf.upload(host);
  const Report rep = vgpu::analyze::analyze(cap);
  EXPECT_TRUE(rep.redundant_transfers.empty());
  EXPECT_TRUE(rep.gate_clean());
}

/// A kernel reading a freshly allocated, never-written buffer reads
/// uninitialized memory — attributed to the kernel and byte range.
TEST(Analyzer, DetectsUninitializedDeviceRead) {
  Device dev(vgpu::gtx280_model());
  CaptureLog cap;
  dev.set_capture(&cap);
  DeviceBuffer<double> buf(dev, 16);
  cap.set_label(buf.host_view().data(), "fresh");
  auto sp = buf.device_span();
  double sum = 0.0;
  dev.launch_blocks("eager_reader", 16, 16, KernelCost{16.0, 16.0 * 8.0},
                    [&](std::size_t, std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) sum += sp[i];
                    });

  const Report rep = vgpu::analyze::analyze(cap);
  ASSERT_EQ(rep.uninit_reads.size(), 1u);
  EXPECT_EQ(rep.uninit_reads[0].kernel, "eager_reader");
  EXPECT_EQ(rep.buffer_table[rep.uninit_reads[0].buffer].label, "fresh");
  EXPECT_EQ(rep.uninit_reads[0].lo, 0u);
  EXPECT_EQ(rep.uninit_reads[0].hi, 16u * sizeof(double));
  EXPECT_FALSE(rep.gate_clean());
}

/// The fused-kernel scratch pattern — write a block-local range, then
/// reduce over it in the SAME launch — is initialized-before-read and
/// must NOT be flagged.
TEST(Analyzer, BlockLocalWriteThenReadIsNotUninitialized) {
  Device dev(vgpu::gtx280_model());
  CaptureLog cap;
  dev.set_capture(&cap);
  DeviceBuffer<double> buf(dev, 64);
  auto sp = buf.device_span();
  double best = 0.0;
  dev.launch_blocks("fill_then_reduce", 64, 64,
                    KernelCost{128.0, 2.0 * 64.0 * 8.0},
                    [&](std::size_t, std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) {
                        sp[i] = static_cast<double>(i);
                      }
                      for (std::size_t i = lo; i < hi; ++i) {
                        if (sp[i] > best) best = sp[i];
                      }
                    });
  const Report rep = vgpu::analyze::analyze(cap);
  EXPECT_TRUE(rep.uninit_reads.empty());
}

/// A kernel whose merged byte footprint exceeds its declared KernelCost
/// by more than 2x is a cost-declaration finding; gemm is exempt.
TEST(Analyzer, FlagsCostUnderDeclarationButExemptsGemm) {
  Device dev(vgpu::gtx280_model());
  CaptureLog cap;
  dev.set_capture(&cap);
  DeviceBuffer<double> buf(dev, 256);
  auto sp = buf.device_span();

  const auto touch_all = [&](const char* name) {
    // Declares 8 bytes, touches 2 KiB: ratio 256x.
    dev.launch_blocks(name, 256, 256, KernelCost{0.0, 8.0},
                      [&](std::size_t, std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) sp[i] = 1.0;
                      });
  };
  touch_all("underdeclared");
  touch_all("gemm");  // exempt: models ideal cached traffic

  const Report rep = vgpu::analyze::analyze(cap);
  ASSERT_EQ(rep.cost_findings.size(), 1u);
  EXPECT_EQ(rep.cost_findings[0].kernel, "underdeclared");
  EXPECT_GT(rep.cost_findings[0].ratio, 2.0);
  EXPECT_FALSE(rep.gate_clean());
}

// ------------------------------------------------------- lifetime + JSON

TEST(Analyzer, TracksBufferLifetimeAndPeakLiveBytes) {
  Device dev(vgpu::gtx280_model());
  CaptureLog cap;
  dev.set_capture(&cap);
  {
    DeviceBuffer<double> a(dev, 128);  // 1 KiB
    {
      DeviceBuffer<double> b(dev, 64);  // +512 B => peak 1.5 KiB
    }
    DeviceBuffer<double> c(dev, 32);  // b freed first: peak stays 1.5 KiB
    (void)a;
    (void)c;
  }
  const Report rep = vgpu::analyze::analyze(cap);
  EXPECT_EQ(rep.alloc_count, 3u);
  EXPECT_EQ(rep.free_count, 3u);
  EXPECT_EQ(rep.live_at_end, 0u);
  EXPECT_EQ(rep.peak_live_bytes, 128u * 8u + 64u * 8u);
}

TEST(Analyzer, JsonReportIsWellFormed) {
  Device dev(vgpu::gtx280_model());
  CaptureLog cap;
  vgpu::analyze::CaptureLog* capp = &cap;
  simplex::SolverOptions opt;
  opt.analyzer = capp;
  simplex::DeviceRevisedSimplex<double> solver(dev, opt);
  ASSERT_TRUE(solver.solve(dense(24, 1)).optimal());
  const std::string json = vgpu::analyze::analyze(cap).to_json();
  EXPECT_NE(json.find("\"schema\": \"gs-analyze-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"hazard_count\""), std::string::npos);
  EXPECT_NE(json.find("\"peak_live_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"buffers\""), std::string::npos);
  // Balanced braces/brackets without a JSON parser on hand.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// ----------------------------------------------- engines analyze clean

TEST(Analyzer, EngineStreamsAreGateClean) {
  const vgpu::MachineModel model = vgpu::gtx280_model();
  for (const bool fused : {true, false}) {
    CaptureLog cap;
    simplex::SolverOptions opt;
    opt.fused_iteration = fused;
    opt.analyzer = &cap;
    vgpu::Device dev(model);
    simplex::DeviceRevisedSimplex<double> solver(dev, opt);
    ASSERT_TRUE(solver.solve(dense(32, 1)).optimal());
    const Report rep = vgpu::analyze::analyze(cap);
    EXPECT_TRUE(rep.gate_clean()) << (fused ? "fused" : "unfused") << "\n"
                                  << rep.summary();
    EXPECT_GT(rep.kernel_nodes, 0u);
    EXPECT_GT(rep.peak_live_bytes, 0u);
    EXPECT_EQ(rep.live_at_end, 0u);
  }
}

TEST(Analyzer, BatchEngineStreamIsGateClean) {
  CaptureLog cap;
  simplex::SolverOptions opt;
  opt.analyzer = &cap;
  vgpu::Device dev(vgpu::gtx280_model());
  simplex::BatchRevisedSimplex<double> engine(dev, opt);
  std::vector<lp::LpProblem> round;
  for (std::uint64_t s = 1; s <= 4; ++s) round.push_back(dense(16, s));
  for (const auto& r : engine.solve(round)) ASSERT_TRUE(r.optimal());
  const Report rep = vgpu::analyze::analyze(cap);
  EXPECT_TRUE(rep.gate_clean()) << rep.summary();
}

/// One CaptureLog may span several solves on the same engine (the log
/// accumulates until reset()).
TEST(Analyzer, CaptureAccumulatesAcrossSolvesUntilReset) {
  CaptureLog cap;
  simplex::SolverOptions opt;
  opt.analyzer = &cap;
  vgpu::Device dev(vgpu::gtx280_model());
  simplex::DeviceRevisedSimplex<double> solver(dev, opt);
  ASSERT_TRUE(solver.solve(dense(16, 1)).optimal());
  const std::size_t after_first = cap.launches_captured();
  ASSERT_TRUE(solver.solve(dense(16, 2)).optimal());
  EXPECT_GT(cap.launches_captured(), after_first);
  EXPECT_TRUE(vgpu::analyze::analyze(cap).gate_clean());
  cap.reset();
  EXPECT_EQ(cap.launches_captured(), 0u);
}

// ------------------------------------- capture-off / capture-on identity

/// Capture must be a pure observer: attaching it changes neither the
/// result, nor the device accounting, nor a single pivot decision
/// (record::diff over the decision logs shows zero divergence).
TEST(Analyzer, CaptureDoesNotPerturbSolveOrDecisionLog) {
  const lp::LpProblem p = dense(32, 7);
  const vgpu::MachineModel model = vgpu::gtx280_model();

  record::Recorder rec_off, rec_on;
  CaptureLog cap;

  simplex::SolverOptions base;
  base.recorder = &rec_off;
  vgpu::Device dev_off(model);
  simplex::DeviceRevisedSimplex<double> s_off(dev_off, base);
  const simplex::SolveResult r_off = s_off.solve(p);

  simplex::SolverOptions with;
  with.recorder = &rec_on;
  with.analyzer = &cap;
  vgpu::Device dev_on(model);
  simplex::DeviceRevisedSimplex<double> s_on(dev_on, with);
  const simplex::SolveResult r_on = s_on.solve(p);

  ASSERT_TRUE(r_off.optimal());
  ASSERT_TRUE(r_on.optimal());
  EXPECT_EQ(r_off.objective, r_on.objective);  // bit-identical
  EXPECT_EQ(r_off.basis, r_on.basis);

  const auto d = record::diff(rec_off.recording(), rec_on.recording());
  EXPECT_TRUE(d.comparable);
  EXPECT_FALSE(d.diverged);

  // Device accounting is untouched: same launches, same PCIe traffic,
  // same modelled time.
  EXPECT_EQ(dev_off.stats().kernel_launches, dev_on.stats().kernel_launches);
  EXPECT_EQ(dev_off.stats().h2d_bytes, dev_on.stats().h2d_bytes);
  EXPECT_EQ(dev_off.stats().d2h_bytes, dev_on.stats().d2h_bytes);
  EXPECT_EQ(dev_off.stats().sim_seconds(), dev_on.stats().sim_seconds());

  EXPECT_GT(cap.launches_captured(), 0u);
}

/// Checker and capture share the instrumentation seam and are mutually
/// exclusive on a device.
TEST(Analyzer, CheckerAndCaptureAreMutuallyExclusive) {
  Device dev(vgpu::gtx280_model());
  vgpu::check::Checker chk;
  CaptureLog cap;
  dev.set_checker(&chk);
  EXPECT_THROW(dev.set_capture(&cap), gs::Error);
  dev.set_checker(nullptr);
  dev.set_capture(&cap);
  EXPECT_THROW(dev.set_checker(&chk), gs::Error);
}

// ------------------------------------------------------- service routing

/// A request carrying an analyzer is observed: it must run as a real
/// single solve (never batched, never served from the warm cache), and
/// its capture must hold the solve's launch stream when routed to the
/// device engine.
TEST(Analyzer, ServiceRoutesAnalyzerRequestsAsObserved) {
  service::DispatchPolicy policy;
  policy.crossover_m = 32;  // force the device route for m=64
  metrics::MetricsRegistry reg;
  service::SolveService svc(policy, &reg);

  CaptureLog cap;
  std::vector<std::uint64_t> ids;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    service::SolveRequest req;
    req.problem = dense(64, seed);
    ids.push_back(svc.submit(std::move(req)).id);
  }
  service::SolveRequest observed;
  observed.problem = dense(64, 1);  // same shape as the batchable trio
  observed.options.analyzer = &cap;
  const auto oid = svc.submit(std::move(observed)).id;
  svc.drain();

  EXPECT_NE(svc.result(oid).route, service::Route::kBatch);
  EXPECT_TRUE(svc.result(oid).solve.optimal());
  EXPECT_GT(cap.launches_captured(), 0u);
  EXPECT_TRUE(vgpu::analyze::analyze(cap).gate_clean());
  // The plain trio still batches; the observed request never joins.
  for (const auto id : ids) {
    EXPECT_EQ(svc.result(id).route, service::Route::kBatch);
  }
}

}  // namespace
}  // namespace gs
