// Unit tests for the LP model, text format, scaling, and generators.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/generators.hpp"
#include "lp/lp_text.hpp"
#include "lp/problem.hpp"
#include "lp/scaling.hpp"
#include "lp/standard_form.hpp"

namespace gs::lp {
namespace {

// ---------------------------------------------------------------- problem

TEST(LpProblem, BuildsAndQueries) {
  LpProblem p(Objective::kMinimize, "toy");
  const auto x = p.add_variable("x", 2.0);
  const auto y = p.add_variable("y", -1.0, -5.0, 5.0);
  p.add_constraint("c", {{x, 1.0}, {y, 2.0}}, RowSense::kLe, 4.0);
  EXPECT_EQ(p.num_variables(), 2u);
  EXPECT_EQ(p.num_constraints(), 1u);
  EXPECT_EQ(p.num_nonzeros(), 2u);
  EXPECT_EQ(p.variable_index("y"), y);
  EXPECT_THROW((void)p.variable_index("z"), Error);
  EXPECT_DOUBLE_EQ(p.variable(y).lower, -5.0);
}

TEST(LpProblem, RejectsBadInput) {
  LpProblem p;
  EXPECT_THROW((void)p.add_variable("bad", 0.0, 2.0, 1.0), Error);  // lo > hi
  const auto x = p.add_variable("x");
  EXPECT_THROW(p.add_constraint("c", {{x + 1, 1.0}}, RowSense::kLe, 0.0),
               Error);  // unknown variable
}

TEST(LpProblem, ObjectiveValue) {
  LpProblem p;
  p.add_variable("x", 3.0);
  p.add_variable("y", -2.0);
  const std::vector<double> point{2.0, 1.0};
  EXPECT_DOUBLE_EQ(p.objective_value(point), 4.0);
}

TEST(LpProblem, FeasibilityCheck) {
  LpProblem p;
  const auto x = p.add_variable("x", 0.0, 0.0, 10.0);
  p.add_constraint("c1", {{x, 1.0}}, RowSense::kLe, 5.0);
  p.add_constraint("c2", {{x, 1.0}}, RowSense::kGe, 1.0);
  EXPECT_TRUE(p.is_feasible(std::vector<double>{3.0}));
  EXPECT_FALSE(p.is_feasible(std::vector<double>{6.0}));   // violates c1
  EXPECT_FALSE(p.is_feasible(std::vector<double>{0.5}));   // violates c2
  EXPECT_FALSE(p.is_feasible(std::vector<double>{-1.0}));  // violates bound
  EXPECT_FALSE(p.is_feasible(std::vector<double>{1.0, 2.0}));  // wrong dim
}

TEST(LpProblem, EqualityFeasibilityUsesTolerance) {
  LpProblem p;
  const auto x = p.add_variable("x");
  p.add_constraint("c", {{x, 1.0}}, RowSense::kEq, 2.0);
  EXPECT_TRUE(p.is_feasible(std::vector<double>{2.0 + 1e-9}));
  EXPECT_FALSE(p.is_feasible(std::vector<double>{2.1}));
}

// ---------------------------------------------------------------- lp_text

TEST(LpText, ParsesObjectiveAndConstraints) {
  const auto p = read_lp_text(
      "min: 3 x - 2 y;\n"
      "c1: x + y <= 10;\n"
      "-x + 4*y >= 2;\n");
  EXPECT_EQ(p.objective(), Objective::kMinimize);
  EXPECT_EQ(p.num_variables(), 2u);
  EXPECT_EQ(p.num_constraints(), 2u);
  EXPECT_DOUBLE_EQ(p.variable(p.variable_index("x")).objective_coef, 3.0);
  EXPECT_DOUBLE_EQ(p.variable(p.variable_index("y")).objective_coef, -2.0);
  const Constraint& c1 = p.constraint(0);
  EXPECT_EQ(c1.name, "c1");
  EXPECT_EQ(c1.sense, RowSense::kLe);
  EXPECT_DOUBLE_EQ(c1.rhs, 10.0);
  const Constraint& c2 = p.constraint(1);
  EXPECT_EQ(c2.sense, RowSense::kGe);
  EXPECT_DOUBLE_EQ(c2.terms[0].coef, -1.0);
  EXPECT_DOUBLE_EQ(c2.terms[1].coef, 4.0);
}

TEST(LpText, ParsesBounds) {
  const auto p = read_lp_text(
      "max: x + y + z + w;\n"
      "x + y + z + w <= 100;\n"
      "bounds:\n"
      "  x >= 1;\n"
      "  0 <= y <= 8;\n"
      "  z free;\n"
      "  w <= -1;\n");
  EXPECT_EQ(p.objective(), Objective::kMaximize);
  const Variable& x = p.variable(p.variable_index("x"));
  EXPECT_DOUBLE_EQ(x.lower, 1.0);
  EXPECT_TRUE(std::isinf(x.upper));
  const Variable& y = p.variable(p.variable_index("y"));
  EXPECT_DOUBLE_EQ(y.upper, 8.0);
  const Variable& z = p.variable(p.variable_index("z"));
  EXPECT_TRUE(std::isinf(z.lower) && z.lower < 0);
  const Variable& w = p.variable(p.variable_index("w"));
  EXPECT_DOUBLE_EQ(w.upper, -1.0);
  // negative sole upper bound drops the default lower bound (LP-format rule)
  EXPECT_TRUE(std::isinf(w.lower) && w.lower < 0);
}

TEST(LpText, CommentsAndEqualityRows) {
  const auto p = read_lp_text(
      "# a comment line\n"
      "min: x; # trailing comment\n"
      "r: x = 4;\n");
  EXPECT_EQ(p.constraint(0).sense, RowSense::kEq);
  EXPECT_DOUBLE_EQ(p.constraint(0).rhs, 4.0);
}

TEST(LpText, CoefficientSyntaxVariants) {
  const auto p = read_lp_text("min: 2x0;\nc: 1.5 x0 - x1 + 2e-1*x2 <= 1;\n");
  const Constraint& c = p.constraint(0);
  EXPECT_DOUBLE_EQ(c.terms[0].coef, 1.5);
  EXPECT_DOUBLE_EQ(c.terms[1].coef, -1.0);
  EXPECT_NEAR(c.terms[2].coef, 0.2, 1e-15);
}

TEST(LpText, RejectsMalformedInput) {
  EXPECT_THROW((void)read_lp_text(""), Error);
  EXPECT_THROW((void)read_lp_text("x + y <= 3;"), Error);  // no objective
  EXPECT_THROW((void)read_lp_text("min: x;\nc: x 3;"), Error);  // no cmp
  EXPECT_THROW((void)read_lp_text("min: + ;"), Error);
}

TEST(LpText, WriteReadRoundTrip) {
  LpProblem p(Objective::kMaximize, "rt");
  const auto x = p.add_variable("x", 3.0, 1.0, kInf);
  const auto y = p.add_variable("y", -2.5, -kInf, kInf);
  const auto z = p.add_variable("z", 0.0, -1.0, 4.0);
  p.add_constraint("c1", {{x, 1.0}, {y, -2.0}}, RowSense::kLe, 7.0);
  p.add_constraint("c2", {{y, 1.0}, {z, 1.0}}, RowSense::kEq, -2.0);
  const auto q = read_lp_text(write_lp_text(p));
  ASSERT_EQ(q.num_variables(), 3u);
  ASSERT_EQ(q.num_constraints(), 2u);
  EXPECT_EQ(q.objective(), Objective::kMaximize);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(q.variable(j).objective_coef,
                     p.variable(j).objective_coef);
    EXPECT_DOUBLE_EQ(q.variable(j).lower, p.variable(j).lower);
    EXPECT_DOUBLE_EQ(q.variable(j).upper, p.variable(j).upper);
  }
  EXPECT_EQ(q.constraint(1).sense, RowSense::kEq);
  EXPECT_DOUBLE_EQ(q.constraint(1).rhs, -2.0);
}

// ---------------------------------------------------------------- scaling

TEST(Scaling, Pow10ShiftsCoefficientOrders) {
  LpProblem p;
  const auto x = p.add_variable("x", 1.0);
  p.add_constraint("c", {{x, 1e6}}, RowSense::kLe, 2e6);
  auto sf = to_standard_form(p);
  const ScalingInfo info = scale_pow10(sf);
  // Coefficients pulled toward O(1).
  double max_abs = 0.0;
  for (const auto& row : sf.rows) {
    for (const Term& t : row) max_abs = std::max(max_abs, std::abs(t.coef));
  }
  EXPECT_LE(max_abs, 1e3);  // pulled from 1e6 to the mean order
  EXPECT_NE(info.objective_scale, 1.0);
}

TEST(Scaling, Pow10NoopOnBalancedProblem) {
  LpProblem p;
  const auto x = p.add_variable("x", 1.0);
  p.add_constraint("c", {{x, 2.0}}, RowSense::kLe, 3.0);
  auto sf = to_standard_form(p);
  const ScalingInfo info = scale_pow10(sf);
  EXPECT_DOUBLE_EQ(info.objective_scale, 1.0);
  EXPECT_DOUBLE_EQ(sf.rows[0][0].coef, 2.0);
}

TEST(Scaling, GeometricEquilibratesRows) {
  LpProblem p;
  const auto x = p.add_variable("x", 1.0);
  const auto y = p.add_variable("y", 1.0);
  p.add_constraint("big", {{x, 1e4}, {y, 1e4}}, RowSense::kLe, 1e4);
  p.add_constraint("small", {{x, 1e-4}, {y, 1e-4}}, RowSense::kLe, 1e-4);
  auto sf = to_standard_form(p);
  const double spread_before =
      std::abs(sf.rows[0][0].coef / sf.rows[1][0].coef);
  (void)scale_geometric(sf);
  // Equilibration must shrink the cross-row magnitude spread by orders of
  // magnitude (it cannot reach 1.0 exactly: the unit slack columns take
  // part in the geometric means).
  const double spread_after =
      std::abs(sf.rows[0][0].coef / sf.rows[1][0].coef);
  EXPECT_LT(spread_after, spread_before / 1e3);
}

TEST(Scaling, UnscalePointInvertsColumnScaling) {
  ScalingInfo info;
  info.col_scale = {2.0, 0.5};
  const auto y = info.unscale_point(std::vector<double>{3.0, 4.0});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
}

// ------------------------------------------------------------- generators

TEST(Generators, DenseLpIsFeasibleAtOrigin) {
  const auto p = random_dense_lp({.rows = 30, .cols = 20, .seed = 5});
  EXPECT_EQ(p.num_variables(), 20u);
  EXPECT_EQ(p.num_constraints(), 30u);
  const std::vector<double> origin(20, 0.0);
  EXPECT_TRUE(p.is_feasible(origin));
  for (const auto& con : p.constraints()) {
    EXPECT_GT(con.rhs, 0.0);
    for (const Term& t : con.terms) EXPECT_GT(t.coef, 0.0);
  }
  for (const auto& v : p.variables()) EXPECT_LE(v.objective_coef, 0.0);
}

TEST(Generators, DenseLpIsDeterministicPerSeed) {
  const auto a = random_dense_lp({.rows = 5, .cols = 5, .seed = 42});
  const auto b = random_dense_lp({.rows = 5, .cols = 5, .seed = 42});
  const auto c = random_dense_lp({.rows = 5, .cols = 5, .seed = 43});
  EXPECT_DOUBLE_EQ(a.constraint(0).terms[0].coef,
                   b.constraint(0).terms[0].coef);
  EXPECT_NE(a.constraint(0).terms[0].coef, c.constraint(0).terms[0].coef);
}

TEST(Generators, SparseLpHasRequestedDensity) {
  const auto p =
      random_sparse_lp({.rows = 50, .cols = 200, .density = 0.05, .seed = 1});
  const double density =
      static_cast<double>(p.num_nonzeros()) / (50.0 * 200.0);
  EXPECT_GT(density, 0.02);
  EXPECT_LT(density, 0.08);
  EXPECT_TRUE(p.is_feasible(std::vector<double>(200, 0.0)));
}

TEST(Generators, SparseLpEveryRowNonVacuous) {
  const auto p =
      random_sparse_lp({.rows = 40, .cols = 500, .density = 0.005, .seed = 2});
  for (const auto& con : p.constraints()) EXPECT_GE(con.terms.size(), 1u);
}

TEST(Generators, KleeMintyStructure) {
  const auto p = klee_minty(4);
  EXPECT_EQ(p.objective(), Objective::kMaximize);
  EXPECT_EQ(p.num_variables(), 4u);
  EXPECT_EQ(p.num_constraints(), 4u);
  // First objective coefficient is 2^(d-1), rhs of row i is 5^i.
  EXPECT_DOUBLE_EQ(p.variable(0).objective_coef, 8.0);
  EXPECT_DOUBLE_EQ(p.constraint(3).rhs, 625.0);
  EXPECT_THROW((void)klee_minty(0), Error);
}

TEST(Generators, TransportationIsBalanced) {
  const auto p = transportation(5, 7, 11);
  double supply = 0.0, demand = 0.0;
  for (std::size_t i = 0; i < p.num_constraints(); ++i) {
    const auto& con = p.constraint(i);
    EXPECT_EQ(con.sense, RowSense::kEq);
    if (con.name.starts_with("supply")) supply += con.rhs;
    if (con.name.starts_with("demand")) demand += con.rhs;
  }
  EXPECT_DOUBLE_EQ(supply, demand);
  EXPECT_EQ(p.num_variables(), 35u);
}

TEST(Generators, BealeMatchesTextbookData) {
  const auto p = beale_cycling();
  EXPECT_EQ(p.num_variables(), 4u);
  EXPECT_EQ(p.num_constraints(), 3u);
  EXPECT_DOUBLE_EQ(p.variable(0).objective_coef, -0.75);
  EXPECT_DOUBLE_EQ(p.constraint(0).terms[1].coef, -60.0);
}

}  // namespace
}  // namespace gs::lp
