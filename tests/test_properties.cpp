// Metamorphic / property tests on the solver as a black box: invariances
// and monotonicities that must hold for any correct LP solver, swept over
// random instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "lp/generators.hpp"
#include "lp/lp_text.hpp"
#include "lp/problem.hpp"
#include "simplex/solver.hpp"
#include "support/rng.hpp"

namespace gs::simplex {
namespace {

using lp::LpProblem;
using lp::RowSense;
using lp::Term;

class PropertySeeds : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  [[nodiscard]] LpProblem instance() const {
    return lp::random_dense_lp({.rows = 14, .cols = 12, .seed = GetParam()});
  }
};

TEST_P(PropertySeeds, RelaxingARowWeaklyImprovesTheMinimum) {
  const LpProblem base = instance();
  const SolveResult r0 = solve(base, Engine::kHostRevised);
  ASSERT_EQ(r0.status, SolveStatus::kOptimal);
  Xoshiro256 rng(GetParam() * 7 + 1);
  const auto row = static_cast<std::size_t>(
      rng.uniform_int(0, std::int64_t(base.num_constraints()) - 1));
  LpProblem relaxed(base.objective(), "relaxed");
  for (const auto& v : base.variables()) {
    relaxed.add_variable(v.name, v.objective_coef, v.lower, v.upper);
  }
  for (std::size_t i = 0; i < base.num_constraints(); ++i) {
    const auto& con = base.constraint(i);
    relaxed.add_constraint(con.name, con.terms, con.sense,
                           con.rhs + (i == row ? 1.0 : 0.0));
  }
  const SolveResult r1 = solve(relaxed, Engine::kHostRevised);
  ASSERT_EQ(r1.status, SolveStatus::kOptimal);
  EXPECT_LE(r1.objective, r0.objective + 1e-9);
}

TEST_P(PropertySeeds, ObjectiveScalingScalesTheOptimum) {
  const LpProblem base = instance();
  LpProblem scaled(base.objective(), "scaled");
  for (const auto& v : base.variables()) {
    scaled.add_variable(v.name, 5.0 * v.objective_coef, v.lower, v.upper);
  }
  for (std::size_t i = 0; i < base.num_constraints(); ++i) {
    const auto& con = base.constraint(i);
    scaled.add_constraint(con.name, con.terms, con.sense, con.rhs);
  }
  const SolveResult r0 = solve(base, Engine::kDeviceRevised);
  const SolveResult r1 = solve(scaled, Engine::kDeviceRevised);
  ASSERT_EQ(r0.status, SolveStatus::kOptimal);
  ASSERT_EQ(r1.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r1.objective, 5.0 * r0.objective,
              1e-7 * (1.0 + std::abs(r0.objective)));
}

TEST_P(PropertySeeds, RowScalingLeavesTheOptimumUnchanged) {
  const LpProblem base = instance();
  LpProblem scaled(base.objective(), "rowscaled");
  for (const auto& v : base.variables()) {
    scaled.add_variable(v.name, v.objective_coef, v.lower, v.upper);
  }
  for (std::size_t i = 0; i < base.num_constraints(); ++i) {
    const auto& con = base.constraint(i);
    const double s = (i % 2 == 0) ? 2.0 : 0.5;
    std::vector<Term> terms = con.terms;
    for (Term& t : terms) t.coef *= s;
    scaled.add_constraint(con.name, std::move(terms), con.sense, con.rhs * s);
  }
  const SolveResult r0 = solve(base, Engine::kDeviceRevised);
  const SolveResult r1 = solve(scaled, Engine::kDeviceRevised);
  ASSERT_EQ(r1.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r1.objective, r0.objective,
              1e-7 * (1.0 + std::abs(r0.objective)));
}

TEST_P(PropertySeeds, DuplicateRowIsRedundant) {
  const LpProblem base = instance();
  LpProblem dup(base.objective(), "dup");
  for (const auto& v : base.variables()) {
    dup.add_variable(v.name, v.objective_coef, v.lower, v.upper);
  }
  for (std::size_t i = 0; i < base.num_constraints(); ++i) {
    const auto& con = base.constraint(i);
    dup.add_constraint(con.name, con.terms, con.sense, con.rhs);
  }
  const auto& first = base.constraint(0);
  dup.add_constraint("dup_of_0", first.terms, first.sense, first.rhs);
  const SolveResult r0 = solve(base, Engine::kDeviceRevised);
  const SolveResult r1 = solve(dup, Engine::kDeviceRevised);
  ASSERT_EQ(r1.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r1.objective, r0.objective,
              1e-7 * (1.0 + std::abs(r0.objective)));
}

TEST_P(PropertySeeds, VariablePermutationIsIrrelevant) {
  const LpProblem base = instance();
  const std::size_t n = base.num_variables();
  // Deterministic permutation derived from the seed.
  std::vector<std::uint32_t> perm(n);
  for (std::size_t j = 0; j < n; ++j) perm[j] = static_cast<std::uint32_t>(j);
  Xoshiro256 rng(GetParam() * 13 + 5);
  for (std::size_t j = n; j-- > 1;) {
    std::swap(perm[j], perm[static_cast<std::size_t>(
                           rng.uniform_int(0, std::int64_t(j)))]);
  }
  std::vector<std::uint32_t> inverse(n);
  for (std::size_t j = 0; j < n; ++j) inverse[perm[j]] = static_cast<std::uint32_t>(j);

  LpProblem permuted(base.objective(), "permuted");
  for (std::size_t j = 0; j < n; ++j) {
    const auto& v = base.variable(perm[j]);
    permuted.add_variable(v.name, v.objective_coef, v.lower, v.upper);
  }
  for (std::size_t i = 0; i < base.num_constraints(); ++i) {
    const auto& con = base.constraint(i);
    std::vector<Term> terms;
    for (const Term& t : con.terms) terms.push_back({inverse[t.var], t.coef});
    permuted.add_constraint(con.name, std::move(terms), con.sense, con.rhs);
  }
  const SolveResult r0 = solve(base, Engine::kDeviceRevised);
  const SolveResult r1 = solve(permuted, Engine::kDeviceRevised);
  ASSERT_EQ(r1.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r1.objective, r0.objective,
              1e-7 * (1.0 + std::abs(r0.objective)));
  // And the permuted solution maps back to the base solution.
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(r1.x[j], r0.x[perm[j]], 1e-6);
  }
}

TEST_P(PropertySeeds, OptimalBasicSolutionHasAtMostMNonzeros) {
  const LpProblem base = instance();
  const SolveResult r = solve(base, Engine::kDeviceRevised);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  const std::size_t nonzeros = static_cast<std::size_t>(
      std::count_if(r.x.begin(), r.x.end(),
                    [](double v) { return std::abs(v) > 1e-9; }));
  EXPECT_LE(nonzeros, base.num_constraints());
}

TEST_P(PropertySeeds, SolveIsDeterministic) {
  const LpProblem base = instance();
  const SolveResult a = solve(base, Engine::kDeviceRevised);
  const SolveResult b = solve(base, Engine::kDeviceRevised);
  ASSERT_EQ(a.status, b.status);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t j = 0; j < a.x.size(); ++j) {
    EXPECT_DOUBLE_EQ(a.x[j], b.x[j]);
  }
  EXPECT_DOUBLE_EQ(a.stats.sim_seconds, b.stats.sim_seconds);
}

TEST_P(PropertySeeds, LpTextRoundTripPreservesTheOptimum) {
  const LpProblem base = instance();
  const LpProblem reparsed = lp::read_lp_text(lp::write_lp_text(base));
  const SolveResult r0 = solve(base, Engine::kHostRevised);
  const SolveResult r1 = solve(reparsed, Engine::kHostRevised);
  ASSERT_EQ(r1.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r1.objective, r0.objective,
              1e-9 * (1.0 + std::abs(r0.objective)));
}

TEST_P(PropertySeeds, TighteningToZeroRhsStaysFeasibleAtOrigin) {
  // With b = 0 the origin is the unique feasible point of the dense family
  // (positive A, x >= 0), so the optimum is exactly 0.
  const LpProblem base = instance();
  LpProblem tight(base.objective(), "tight");
  for (const auto& v : base.variables()) {
    tight.add_variable(v.name, v.objective_coef, v.lower, v.upper);
  }
  for (std::size_t i = 0; i < base.num_constraints(); ++i) {
    const auto& con = base.constraint(i);
    tight.add_constraint(con.name, con.terms, con.sense, 0.0);
  }
  const SolveResult r = solve(tight, Engine::kDeviceRevised);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeeds,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace gs::simplex
