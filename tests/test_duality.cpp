// Dual-solution tests: shadow prices, strong duality, dual feasibility and
// complementary slackness — properties that hold for every optimal solve
// and therefore make strong cross-engine oracles.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/generators.hpp"
#include "lp/problem.hpp"
#include "simplex/solver.hpp"

namespace gs::simplex {
namespace {

using lp::kInf;
using lp::LpProblem;
using lp::Objective;
using lp::RowSense;

constexpr Engine kDualEngines[] = {Engine::kDeviceRevised,
                                   Engine::kHostRevised, Engine::kTableau,
                                   Engine::kSparseRevised};

TEST(Duals, WyndorShadowPrices) {
  // Textbook duals of the Wyndor Glass problem: (0, 3/2, 1).
  LpProblem p(Objective::kMaximize, "wyndor");
  const auto x = p.add_variable("x", 3.0);
  const auto y = p.add_variable("y", 5.0);
  p.add_constraint("plant1", {{x, 1.0}}, RowSense::kLe, 4.0);
  p.add_constraint("plant2", {{y, 2.0}}, RowSense::kLe, 12.0);
  p.add_constraint("plant3", {{x, 3.0}, {y, 2.0}}, RowSense::kLe, 18.0);
  for (const Engine e : kDualEngines) {
    const SolveResult r = solve(p, e);
    ASSERT_EQ(r.status, SolveStatus::kOptimal) << to_string(e);
    ASSERT_EQ(r.y.size(), 3u) << to_string(e);
    EXPECT_NEAR(r.y[0], 0.0, 1e-9) << to_string(e);
    EXPECT_NEAR(r.y[1], 1.5, 1e-9) << to_string(e);
    EXPECT_NEAR(r.y[2], 1.0, 1e-9) << to_string(e);
  }
}

TEST(Duals, GeConstraintHasPositiveDualOnMinProblem) {
  // min 2x s.t. x >= 3: raising the rhs raises the optimum at rate 2.
  LpProblem p(Objective::kMinimize, "ge_dual");
  const auto x = p.add_variable("x", 2.0);
  p.add_constraint("floor", {{x, 1.0}}, RowSense::kGe, 3.0);
  for (const Engine e : kDualEngines) {
    const SolveResult r = solve(p, e);
    ASSERT_EQ(r.status, SolveStatus::kOptimal) << to_string(e);
    EXPECT_NEAR(r.y[0], 2.0, 1e-9) << to_string(e);
  }
}

TEST(Duals, MaximizeOrientationSign) {
  // max 3x s.t. x <= 5: d z / d rhs = +3 in the maximize orientation.
  LpProblem p(Objective::kMaximize, "max_dual");
  const auto x = p.add_variable("x", 3.0);
  p.add_constraint("cap", {{x, 1.0}}, RowSense::kLe, 5.0);
  for (const Engine e : kDualEngines) {
    const SolveResult r = solve(p, e);
    ASSERT_EQ(r.status, SolveStatus::kOptimal) << to_string(e);
    EXPECT_NEAR(r.y[0], 3.0, 1e-9) << to_string(e);
  }
}

TEST(Duals, FlippedRowSignIsCorrected) {
  // min x with free x and -x <= 5 (x >= -5): the row is stored flipped in
  // standard form; d z / d rhs must still come out as -1.
  LpProblem p(Objective::kMinimize, "flipped_dual");
  (void)p.add_variable("x", 1.0, -kInf, kInf);
  p.add_constraint("floor", {{0, -1.0}}, RowSense::kLe, 5.0);
  for (const Engine e : kDualEngines) {
    const SolveResult r = solve(p, e);
    ASSERT_EQ(r.status, SolveStatus::kOptimal) << to_string(e);
    EXPECT_NEAR(r.objective, -5.0, 1e-9) << to_string(e);
    EXPECT_NEAR(r.y[0], -1.0, 1e-9) << to_string(e);
  }
}

TEST(Duals, NumericallyVerifiedAgainstRhsPerturbation) {
  // Finite-difference check: resolving with b_i + h must change the optimum
  // by ~ y_i * h for every (nondegenerate) constraint.
  const auto problem = lp::random_dense_lp({.rows = 8, .cols = 8, .seed = 31});
  const SolveResult base = solve(problem, Engine::kHostRevised);
  ASSERT_EQ(base.status, SolveStatus::kOptimal);
  const double h = 1e-5;
  for (std::size_t i = 0; i < problem.num_constraints(); ++i) {
    LpProblem perturbed(problem.objective(), "perturbed");
    for (const auto& v : problem.variables()) {
      perturbed.add_variable(v.name, v.objective_coef, v.lower, v.upper);
    }
    for (std::size_t k = 0; k < problem.num_constraints(); ++k) {
      const auto& con = problem.constraint(k);
      perturbed.add_constraint(con.name, con.terms, con.sense,
                               con.rhs + (k == i ? h : 0.0));
    }
    const SolveResult r = solve(perturbed, Engine::kHostRevised);
    ASSERT_EQ(r.status, SolveStatus::kOptimal);
    EXPECT_NEAR((r.objective - base.objective) / h, base.y[i], 1e-4)
        << "constraint " << i;
  }
}

// --------------------------------------------------- property sweeps

struct DualCase {
  Engine engine;
  std::size_t size;
  std::uint64_t seed;
};

class DualProperties : public ::testing::TestWithParam<DualCase> {};

TEST_P(DualProperties, StrongDualityAndFeasibilityAndSlackness) {
  const auto [engine, size, seed] = GetParam();
  // Dense family: min c^T x, A x <= b, x >= 0 with default bounds, so the
  // LP dual is clean:  max b^T y  s.t.  A^T y <= c, y <= 0.
  const auto problem =
      lp::random_dense_lp({.rows = size, .cols = size, .seed = seed});
  const SolveResult r = solve(problem, engine);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  ASSERT_EQ(r.y.size(), problem.num_constraints());
  const double scale = 1.0 + std::abs(r.objective);

  // Strong duality: b . y == c . x.
  double by = 0.0;
  for (std::size_t i = 0; i < problem.num_constraints(); ++i) {
    by += problem.constraint(i).rhs * r.y[i];
  }
  EXPECT_NEAR(by, r.objective, 1e-6 * scale);

  // Dual feasibility: y <= 0 and A^T y <= c.
  std::vector<double> aty(problem.num_variables(), 0.0);
  for (std::size_t i = 0; i < problem.num_constraints(); ++i) {
    EXPECT_LE(r.y[i], 1e-7);
    for (const lp::Term& t : problem.constraint(i).terms) {
      aty[t.var] += t.coef * r.y[i];
    }
  }
  for (std::size_t j = 0; j < problem.num_variables(); ++j) {
    EXPECT_LE(aty[j], problem.variable(j).objective_coef + 1e-6);
  }

  // Complementary slackness both ways.
  for (std::size_t i = 0; i < problem.num_constraints(); ++i) {
    double lhs = 0.0;
    for (const lp::Term& t : problem.constraint(i).terms) {
      lhs += t.coef * r.x[t.var];
    }
    EXPECT_NEAR(r.y[i] * (problem.constraint(i).rhs - lhs), 0.0,
                1e-5 * scale)
        << "row " << i;
  }
  for (std::size_t j = 0; j < problem.num_variables(); ++j) {
    EXPECT_NEAR(
        r.x[j] * (problem.variable(j).objective_coef - aty[j]), 0.0,
        1e-5 * scale)
        << "col " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DualProperties,
    ::testing::Values(DualCase{Engine::kDeviceRevised, 10, 1},
                      DualCase{Engine::kDeviceRevised, 25, 2},
                      DualCase{Engine::kDeviceRevised, 40, 3},
                      DualCase{Engine::kHostRevised, 10, 1},
                      DualCase{Engine::kHostRevised, 25, 2},
                      DualCase{Engine::kHostRevised, 40, 3},
                      DualCase{Engine::kTableau, 25, 2},
                      DualCase{Engine::kTableau, 40, 3},
                      DualCase{Engine::kSparseRevised, 25, 2},
                      DualCase{Engine::kSparseRevised, 40, 3}));

TEST(Duals, TransportationStrongDuality) {
  // All-equality two-phase problem: sum_i u_i s_i + sum_j v_j d_j == cost.
  const auto problem = lp::transportation(5, 6, 23);
  for (const Engine e : {Engine::kDeviceRevised, Engine::kHostRevised}) {
    const SolveResult r = solve(problem, e);
    ASSERT_EQ(r.status, SolveStatus::kOptimal) << to_string(e);
    double by = 0.0;
    for (std::size_t i = 0; i < problem.num_constraints(); ++i) {
      by += problem.constraint(i).rhs * r.y[i];
    }
    EXPECT_NEAR(by, r.objective, 1e-6 * (1.0 + std::abs(r.objective)))
        << to_string(e);
  }
}

TEST(Duals, EnginesAgreeOnDualValues) {
  const auto problem = lp::random_dense_lp({.rows = 15, .cols = 15, .seed = 5});
  const SolveResult reference = solve(problem, Engine::kHostRevised);
  ASSERT_EQ(reference.status, SolveStatus::kOptimal);
  for (const Engine e : kDualEngines) {
    const SolveResult r = solve(problem, e);
    ASSERT_EQ(r.status, SolveStatus::kOptimal) << to_string(e);
    ASSERT_EQ(r.y.size(), reference.y.size());
    for (std::size_t i = 0; i < r.y.size(); ++i) {
      EXPECT_NEAR(r.y[i], reference.y[i], 1e-6) << to_string(e) << " row " << i;
    }
  }
}

}  // namespace
}  // namespace gs::simplex
