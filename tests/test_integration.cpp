// Integration tests across modules: LP text -> standard form -> solvers,
// scaling round trips, machine-model sensitivity, worker-count determinism,
// and direct use of the engine classes (the way the benches drive them).
#include <gtest/gtest.h>

#include <cmath>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "lp/generators.hpp"
#include "lp/lp_text.hpp"
#include "lp/mps.hpp"
#include "lp/presolve.hpp"
#include "lp/scaling.hpp"
#include "lp/standard_form.hpp"
#include "simplex/cost_meter.hpp"
#include "simplex/solver.hpp"
#include "vgpu/stats_report.hpp"

namespace gs {
namespace {

using simplex::Engine;
using simplex::SolveResult;
using simplex::SolveStatus;
using simplex::SolverOptions;

TEST(Integration, LpTextEndToEnd) {
  const auto problem = lp::read_lp_text(
      "# production planning toy\n"
      "max: 3 doors + 5 windows;\n"
      "plant1: doors <= 4;\n"
      "plant2: 2 windows <= 12;\n"
      "plant3: 3 doors + 2 windows <= 18;\n");
  for (Engine e : {Engine::kDeviceRevised, Engine::kHostRevised,
                   Engine::kTableau, Engine::kSparseRevised}) {
    const SolveResult r = solve(problem, e);
    ASSERT_EQ(r.status, SolveStatus::kOptimal);
    EXPECT_NEAR(r.objective, 36.0, 1e-6);
    EXPECT_NEAR(r.x[problem.variable_index("doors")], 2.0, 1e-6);
    EXPECT_NEAR(r.x[problem.variable_index("windows")], 6.0, 1e-6);
  }
}

TEST(Integration, WriteReadSolveRoundTrip) {
  const auto original = lp::random_dense_lp({.rows = 12, .cols = 9, .seed = 7});
  const auto reparsed = lp::read_lp_text(lp::write_lp_text(original));
  const double z1 = solve(original, Engine::kHostRevised).objective;
  const double z2 = solve(reparsed, Engine::kHostRevised).objective;
  EXPECT_NEAR(z1, z2, 1e-9 * (1.0 + std::abs(z1)));
}

TEST(Integration, Pow10ScalingPreservesOptimum) {
  // Badly scaled problem: coefficients spanning 1e-3..1e5.
  lp::LpProblem p(lp::Objective::kMinimize, "badly_scaled");
  const auto x = p.add_variable("x", -1e4);
  const auto y = p.add_variable("y", -2e-3);
  p.add_constraint("c1", {{x, 1e5}, {y, 3e-3}}, lp::RowSense::kLe, 2e5);
  p.add_constraint("c2", {{x, 2.0}, {y, 1e-3}}, lp::RowSense::kLe, 10.0);
  const double direct = solve(p, Engine::kHostRevised).objective;

  auto sf = lp::to_standard_form(p);
  const lp::ScalingInfo info = lp::scale_pow10(sf);
  vgpu::Device dev(vgpu::gtx280_model());
  simplex::DeviceRevisedSimplex<double> solver(dev);
  const SolveResult r = solver.solve_standard(sf);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  // solve_standard reports the scaled objective; unscale to compare.
  EXPECT_NEAR(info.unscale_objective(r.objective), direct,
              1e-6 * (1.0 + std::abs(direct)));
}

TEST(Integration, GeometricScalingPreservesOptimumAndPoint) {
  lp::LpProblem p(lp::Objective::kMinimize, "geo_scaled");
  const auto x = p.add_variable("x", -500.0);
  const auto y = p.add_variable("y", -0.02);
  p.add_constraint("c1", {{x, 1000.0}, {y, 0.01}}, lp::RowSense::kLe, 3000.0);
  p.add_constraint("c2", {{x, 5.0}, {y, 0.04}}, lp::RowSense::kLe, 20.0);
  const SolveResult direct = solve(p, Engine::kHostRevised);
  ASSERT_EQ(direct.status, SolveStatus::kOptimal);

  auto sf = lp::to_standard_form(p);
  const lp::ScalingInfo info = lp::scale_geometric(sf);
  simplex::HostRevisedSimplex host;
  const SolveResult r = host.solve_standard(sf);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(info.unscale_objective(r.objective), direct.objective,
              1e-6 * (1.0 + std::abs(direct.objective)));
}

TEST(Integration, DeviceModelsChangeTimeNotResult) {
  const auto problem = lp::random_dense_lp({.rows = 24, .cols = 24, .seed = 4});
  double objective = 0.0;
  std::vector<double> times;
  for (const auto& model :
       {vgpu::gtx280_model(), vgpu::gtx570_model(), vgpu::titan_model()}) {
    vgpu::Device dev(model);
    simplex::DeviceRevisedSimplex<double> solver(dev);
    const SolveResult r = solver.solve(problem);
    ASSERT_EQ(r.status, SolveStatus::kOptimal) << model.name;
    if (times.empty()) {
      objective = r.objective;
    } else {
      EXPECT_DOUBLE_EQ(r.objective, objective) << model.name;
    }
    times.push_back(r.stats.sim_seconds);
  }
  // The models must differ in time while agreeing bit-for-bit on the
  // result. (No monotonicity across generations at this tiny size: wider
  // GPUs are *more* under-occupied on a 24-row problem — the same effect
  // the follow-on literature reports when a TITAN loses to a GTX 570 on
  // small LPs.)
  EXPECT_GT(times[0], 0.0);
  EXPECT_NE(times[0], times[1]);
  EXPECT_NE(times[1], times[2]);
}

TEST(Integration, WorkerCountDoesNotChangeResults) {
  const auto problem = lp::random_dense_lp({.rows = 30, .cols = 30, .seed = 6});
  vgpu::Device dev1(vgpu::gtx280_model(), 1);
  vgpu::Device dev4(vgpu::gtx280_model(), 4);
  simplex::DeviceRevisedSimplex<double> s1(dev1), s4(dev4);
  const SolveResult r1 = s1.solve(problem);
  const SolveResult r4 = s4.solve(problem);
  ASSERT_EQ(r1.status, SolveStatus::kOptimal);
  ASSERT_EQ(r4.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r1.objective, r4.objective);
  EXPECT_EQ(r1.stats.iterations, r4.stats.iterations);
}

TEST(Integration, ResidentStateKeepsPerIterationTransfersScalar) {
  // The design claim: big uploads happen once at setup; per-iteration PCIe
  // traffic is O(1) scalars. So H2D bytes should not grow with iterations
  // beyond setup, while D2H count grows linearly with iterations.
  const auto small = lp::random_dense_lp({.rows = 20, .cols = 20, .seed = 5});
  vgpu::Device dev(vgpu::gtx280_model());
  simplex::DeviceRevisedSimplex<double> solver(dev);
  const SolveResult r = solver.solve(small);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  const auto& ds = r.stats.device_stats;
  const std::size_t setup_bytes =
      (20 * 40 + 20 * 20 + 20 * 6 + 40 * 3) * sizeof(double);
  // All H2D traffic beyond setup is per-iteration scalars.
  EXPECT_LT(ds.h2d_bytes, setup_bytes + r.stats.iterations * 64);
  EXPECT_GE(ds.d2h_count, r.stats.iterations);  // >= 1 scalar readback/iter
}

TEST(Integration, SparseEngineModeledCheaperOnVerySparseProblem) {
  // Pricing cost ~ nnz for SparseAt vs n*m for DenseAt: on a 1%-dense
  // problem the sparse engine's modeled time must win.
  const auto problem = lp::random_sparse_lp(
      {.rows = 64, .cols = 512, .density = 0.01, .seed = 3});
  const SolveResult dense = solve(problem, Engine::kDeviceRevised);
  const SolveResult sparse = solve(problem, Engine::kSparseRevised);
  ASSERT_EQ(dense.status, SolveStatus::kOptimal);
  ASSERT_EQ(sparse.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sparse.objective, dense.objective,
              1e-6 * (1.0 + std::abs(dense.objective)));
  EXPECT_LT(sparse.stats.sim_seconds, dense.stats.sim_seconds);
}

TEST(Integration, CrossoverShapeGpuLosesSmallWinsLarge) {
  // The paper's headline shape, reproduced at test scale: at tiny sizes the
  // modeled GPU is slower than the modeled CPU (launch overhead + PCIe
  // latency dominate); the ratio must improve monotonically enough that by
  // m = 96 it has moved toward the GPU by at least 3x.
  auto ratio_at = [](std::size_t size) {
    const auto problem =
        lp::random_dense_lp({.rows = size, .cols = size, .seed = 11});
    const SolveResult gpu = solve(problem, Engine::kDeviceRevised);
    const SolveResult cpu = solve(problem, Engine::kHostRevised);
    EXPECT_EQ(gpu.status, SolveStatus::kOptimal);
    EXPECT_EQ(cpu.status, SolveStatus::kOptimal);
    return gpu.stats.sim_seconds / cpu.stats.sim_seconds;
  };
  const double small_ratio = ratio_at(8);
  const double large_ratio = ratio_at(96);
  EXPECT_GT(small_ratio, 1.0);                  // CPU wins tiny LPs
  EXPECT_LT(large_ratio, small_ratio / 3.0);    // GPU catching up with size
}

TEST(Integration, KernelBreakdownRendering) {
  const auto problem = lp::random_dense_lp({.rows = 16, .cols = 16, .seed = 2});
  vgpu::Device dev(vgpu::gtx280_model());
  simplex::DeviceRevisedSimplex<double> solver(dev);
  const SolveResult r = solver.solve(problem);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  std::ostringstream os;
  vgpu::print_kernel_breakdown(os, r.stats.device_stats);
  const std::string out = os.str();
  EXPECT_NE(out.find("price_select"), std::string::npos);
  EXPECT_NE(out.find("pivot_apply"), std::string::npos);
  EXPECT_NE(out.find("(d2h transfers)"), std::string::npos);
}

TEST(Integration, SolveStandardMatchesSolveOnUnscaledProblem) {
  const auto problem = lp::random_dense_lp({.rows = 15, .cols = 15, .seed = 9});
  const auto sf = lp::to_standard_form(problem);
  vgpu::Device dev(vgpu::gtx280_model());
  simplex::DeviceRevisedSimplex<double> solver(dev);
  const SolveResult r1 = solver.solve(problem);
  const SolveResult r2 = solver.solve_standard(sf);
  EXPECT_DOUBLE_EQ(r1.objective, r2.objective);
}

TEST(Integration, FileRoundTripsForBothFormats) {
  namespace fs = std::filesystem;
  const auto problem = lp::random_dense_lp({.rows = 8, .cols = 6, .seed = 12});
  const double expect = solve(problem, Engine::kHostRevised).objective;
  const fs::path dir = fs::temp_directory_path();

  const fs::path lp_path = dir / "gs_roundtrip.lp";
  {
    std::ofstream out(lp_path);
    out << lp::write_lp_text(problem);
  }
  const auto from_lp = lp::read_lp_file(lp_path.string());
  EXPECT_NEAR(solve(from_lp, Engine::kHostRevised).objective, expect, 1e-9);

  const fs::path mps_path = dir / "gs_roundtrip.mps";
  {
    std::ofstream out(mps_path);
    out << lp::write_mps_text(problem);
  }
  const auto from_mps = lp::read_mps_file(mps_path.string());
  EXPECT_NEAR(solve(from_mps, Engine::kHostRevised).objective, expect, 1e-9);

  std::error_code ec;
  fs::remove(lp_path, ec);
  fs::remove(mps_path, ec);

  EXPECT_THROW((void)lp::read_lp_file("/nonexistent/model.lp"), Error);
  EXPECT_THROW((void)lp::read_mps_file("/nonexistent/model.mps"), Error);
}

TEST(Integration, PresolveThenDeviceSolveMatchesDirect) {
  // Presolvable structure in front of the device engine.
  auto base = lp::random_dense_lp({.rows = 10, .cols = 8, .seed = 14});
  lp::LpProblem p(base.objective(), "pre_dev");
  for (const auto& v : base.variables()) {
    p.add_variable(v.name, v.objective_coef, v.lower, v.upper);
  }
  const auto extra = p.add_variable("extra", 1.0, 2.0, 2.0);  // fixed
  for (std::size_t i = 0; i < base.num_constraints(); ++i) {
    const auto& con = base.constraint(i);
    p.add_constraint(con.name, con.terms, con.sense, con.rhs);
  }
  p.add_constraint("uses_fixed", {{extra, 1.0}, {0, 1.0}}, lp::RowSense::kLe,
                   50.0);
  const double direct = solve(p, Engine::kDeviceRevised).objective;

  const lp::PresolveResult pre = lp::presolve(p);
  ASSERT_EQ(pre.status, lp::PresolveStatus::kReduced);
  EXPECT_GE(pre.vars_removed, 1u);
  const SolveResult r = solve(pre.reduced, Engine::kDeviceRevised);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(pre.recover_objective(r.objective), direct, 1e-7);
  const auto x_full = pre.recover(r.x);
  EXPECT_TRUE(p.is_feasible(x_full, 1e-6));
}

TEST(Integration, CostMeterAccumulatesLikeTheModel) {
  simplex::CostMeter meter(vgpu::cpu2009_model());
  meter.charge("step_a", 1e6, 2e6);
  meter.charge("step_a", 1e6, 2e6);
  meter.charge("step_b", 5e5, 0.0, 4);
  const auto& stats = meter.stats();
  EXPECT_EQ(stats.kernel_launches, 3u);
  EXPECT_EQ(stats.per_kernel.at("step_a").launches, 2u);
  const double expect_a =
      2 * vgpu::cpu2009_model().kernel_seconds(1e6, 2e6, 1, 8);
  const double expect_b = vgpu::cpu2009_model().kernel_seconds(5e5, 0.0, 1, 4);
  EXPECT_NEAR(meter.sim_seconds(), expect_a + expect_b, 1e-15);
  EXPECT_DOUBLE_EQ(stats.total_flops, 2.5e6);
}

TEST(Integration, ScaledStandardFormStillSolvesWithEveryBasisScheme) {
  lp::LpProblem p(lp::Objective::kMinimize, "scaled_schemes");
  const auto x = p.add_variable("x", -3e3);
  const auto y = p.add_variable("y", -2e-2);
  p.add_constraint("c1", {{x, 5e3}, {y, 1e-2}}, lp::RowSense::kLe, 1e4);
  p.add_constraint("c2", {{x, 1.0}, {y, 2e-2}}, lp::RowSense::kLe, 8.0);
  const double direct = solve(p, Engine::kHostRevised).objective;
  for (const simplex::BasisScheme scheme :
       {simplex::BasisScheme::kExplicitInverse,
        simplex::BasisScheme::kProductForm,
        simplex::BasisScheme::kLuFactors}) {
    auto sf = lp::to_standard_form(p);
    const lp::ScalingInfo info = lp::scale_geometric(sf);
    simplex::SolverOptions opt;
    opt.basis = scheme;
    vgpu::Device dev(vgpu::gtx280_model());
    simplex::DeviceRevisedSimplex<double> solver(dev, opt);
    const SolveResult r = solver.solve_standard(sf);
    ASSERT_EQ(r.status, SolveStatus::kOptimal) << to_string(scheme);
    EXPECT_NEAR(info.unscale_objective(r.objective), direct,
                1e-6 * (1.0 + std::abs(direct)))
        << to_string(scheme);
  }
}

TEST(Integration, RepeatedSolvesOnOneDeviceAreIndependent) {
  // The engine resets device stats per solve; results and stats must not
  // leak between solves sharing a device.
  vgpu::Device dev(vgpu::gtx280_model());
  simplex::DeviceRevisedSimplex<double> solver(dev);
  const auto p1 = lp::random_dense_lp({.rows = 10, .cols = 10, .seed = 1});
  const auto p2 = lp::random_dense_lp({.rows = 10, .cols = 10, .seed = 2});
  const SolveResult a1 = solver.solve(p1);
  const SolveResult b = solver.solve(p2);
  const SolveResult a2 = solver.solve(p1);
  EXPECT_DOUBLE_EQ(a1.objective, a2.objective);
  EXPECT_EQ(a1.stats.iterations, a2.stats.iterations);
  EXPECT_NEAR(a1.stats.sim_seconds, a2.stats.sim_seconds, 1e-12);
  EXPECT_NE(a1.objective, b.objective);
}

}  // namespace
}  // namespace gs
