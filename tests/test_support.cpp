// Unit tests for the support module: RNG, strings, tables, errors.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace gs {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, UniformIsInUnitInterval) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Xoshiro256, UniformIntCoversInclusiveRange) {
  Xoshiro256 rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values should appear in 2000 draws
}

TEST(Xoshiro256, UniformMeanIsCentered) {
  Xoshiro256 rng(4);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, NormalHasUnitMoments) {
  Xoshiro256 rng(5);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Xoshiro256, BernoulliMatchesProbability) {
  Xoshiro256 rng(6);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Xoshiro256, SplitStreamsAreIndependentlyDeterministic) {
  Xoshiro256 parent1(9), parent2(9);
  Xoshiro256 child1 = parent1.split();
  Xoshiro256 child2 = parent2.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1.next(), child2.next());
  // child stream differs from the parent's continuation
  EXPECT_NE(child1.next(), parent1.next());
}

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsSkipsRuns) {
  const auto parts = split_ws("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("MiXeD_42"), "mixed_42"); }

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("min: x", "min:"));
  EXPECT_FALSE(starts_with("mi", "min:"));
}

TEST(Strings, ParseDoubleAcceptsFormats) {
  EXPECT_DOUBLE_EQ(parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(parse_double("  -2e3 "), -2000.0);
  EXPECT_DOUBLE_EQ(parse_double("0"), 0.0);
}

TEST(Strings, ParseDoubleRejectsGarbage) {
  EXPECT_THROW((void)parse_double("abc"), Error);
  EXPECT_THROW((void)parse_double(""), Error);
  EXPECT_THROW((void)parse_double("1.5x"), Error);
}

TEST(Strings, ParseLong) {
  EXPECT_EQ(parse_long("42"), 42);
  EXPECT_EQ(parse_long("-7"), -7);
  EXPECT_THROW((void)parse_long("3.5"), Error);
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(0.25), "0.25");
  EXPECT_EQ(format_double(123456789.0, 3), "1.23e+08");
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.new_row().add("a").add(1.5);
  t.new_row().add("long_name").add(22L);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long_name"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
}

TEST(Table, CellAccess) {
  Table t({"a", "b"});
  t.new_row().add("x").add("y");
  EXPECT_EQ(t.cell(0, 0), "x");
  EXPECT_EQ(t.cell(0, 1), "y");
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_THROW((void)t.cell(1, 0), Error);
}

TEST(Table, CsvEscapesCommas) {
  Table t({"k", "v"});
  t.new_row().add("a,b").add("c");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_EQ(csv.substr(0, 4), "k,v\n");
}

TEST(Table, RowOverflowThrows) {
  Table t({"only"});
  t.new_row().add("x");
  EXPECT_THROW(t.add("y"), Error);
}

TEST(Table, AddWithoutRowThrows) {
  Table t({"only"});
  EXPECT_THROW(t.add("x"), Error);
}

TEST(Table, IncompleteRowDetectedOnNextRow) {
  Table t({"a", "b"});
  t.new_row().add("x");
  EXPECT_THROW(t.new_row(), Error);
}

TEST(ErrorMacros, CheckFailureCarriesLocation) {
  try {
    GS_CHECK_MSG(false, "boom");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_support"), std::string::npos);
  }
}

TEST(ErrorMacros, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(GS_CHECK(1 + 1 == 2));
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer t;
  volatile double sink = 0;
  // plain assignment: compound assignment on volatile is deprecated in C++20
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(double(i));
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_GE(t.milliseconds(), t.seconds() * 1e3 * 0.5);
}

}  // namespace
}  // namespace gs
