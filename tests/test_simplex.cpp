// Solver test suite: every engine against textbook fixtures with known
// optima, cross-engine agreement on random instances, pricing-rule and
// basis-scheme behavior (cycling, Klee-Minty exponentiality), statuses,
// and statistics plumbing.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/generators.hpp"
#include "lp/problem.hpp"
#include "simplex/solver.hpp"

namespace gs::simplex {
namespace {

using lp::kInf;
using lp::LpProblem;
using lp::Objective;
using lp::RowSense;

constexpr Engine kAllEngines[] = {
    Engine::kDeviceRevised, Engine::kDeviceRevisedFloat, Engine::kHostRevised,
    Engine::kTableau, Engine::kSparseRevised};

[[nodiscard]] double tolerance_for(Engine e) {
  return e == Engine::kDeviceRevisedFloat ? 2e-3 : 1e-6;
}

/// A fixture LP with its hand-verified optimal objective.
struct Fixture {
  const char* name;
  double optimum;
  LpProblem (*build)();
};

LpProblem wyndor() {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (Hillier-Lieberman).
  LpProblem p(Objective::kMaximize, "wyndor");
  const auto x = p.add_variable("x", 3.0);
  const auto y = p.add_variable("y", 5.0);
  p.add_constraint("plant1", {{x, 1.0}}, RowSense::kLe, 4.0);
  p.add_constraint("plant2", {{y, 2.0}}, RowSense::kLe, 12.0);
  p.add_constraint("plant3", {{x, 3.0}, {y, 2.0}}, RowSense::kLe, 18.0);
  return p;
}

LpProblem two_corner() {
  // min -2x - 3y s.t. x + y <= 4, x + 3y <= 6; optimum -9 at (3, 1).
  LpProblem p(Objective::kMinimize, "two_corner");
  const auto x = p.add_variable("x", -2.0);
  const auto y = p.add_variable("y", -3.0);
  p.add_constraint("c1", {{x, 1.0}, {y, 1.0}}, RowSense::kLe, 4.0);
  p.add_constraint("c2", {{x, 1.0}, {y, 3.0}}, RowSense::kLe, 6.0);
  return p;
}

LpProblem cover_ge() {
  // min 2x + 3y s.t. x + y >= 10, x <= 8, y <= 8; optimum 22 at (8, 2).
  LpProblem p(Objective::kMinimize, "cover_ge");
  const auto x = p.add_variable("x", 2.0);
  const auto y = p.add_variable("y", 3.0);
  p.add_constraint("cover", {{x, 1.0}, {y, 1.0}}, RowSense::kGe, 10.0);
  p.add_constraint("cx", {{x, 1.0}}, RowSense::kLe, 8.0);
  p.add_constraint("cy", {{y, 1.0}}, RowSense::kLe, 8.0);
  return p;
}

LpProblem equality_mix() {
  // min x + 2y s.t. x + y = 5, x <= 3; optimum 7 at (3, 2).
  LpProblem p(Objective::kMinimize, "equality_mix");
  const auto x = p.add_variable("x", 1.0);
  const auto y = p.add_variable("y", 2.0);
  p.add_constraint("sum", {{x, 1.0}, {y, 1.0}}, RowSense::kEq, 5.0);
  p.add_constraint("cap", {{x, 1.0}}, RowSense::kLe, 3.0);
  return p;
}

LpProblem bounded_vars() {
  // max x + y s.t. x + y <= 4, 1 <= x <= 3, y >= -1; optimum 4.
  LpProblem p(Objective::kMaximize, "bounded_vars");
  const auto x = p.add_variable("x", 1.0, 1.0, 3.0);
  const auto y = p.add_variable("y", 1.0, -1.0, kInf);
  p.add_constraint("c", {{x, 1.0}, {y, 1.0}}, RowSense::kLe, 4.0);
  return p;
}

LpProblem free_var_floor() {
  // min x with x free and x >= -5; optimum -5.
  LpProblem p(Objective::kMinimize, "free_var_floor");
  const auto x = p.add_variable("x", 1.0, -kInf, kInf);
  p.add_constraint("floor", {{x, 1.0}}, RowSense::kGe, -5.0);
  return p;
}

LpProblem degenerate_vertex() {
  // min -x - y with a redundant constraint through the optimum (1/2, 1/2)?
  // Use: x + y <= 1, x <= 1, y <= 1, 2x + y <= 2 (redundant). Optimum -1.
  LpProblem p(Objective::kMinimize, "degenerate_vertex");
  const auto x = p.add_variable("x", -1.0);
  const auto y = p.add_variable("y", -1.0);
  p.add_constraint("c1", {{x, 1.0}, {y, 1.0}}, RowSense::kLe, 1.0);
  p.add_constraint("c2", {{x, 1.0}}, RowSense::kLe, 1.0);
  p.add_constraint("c3", {{y, 1.0}}, RowSense::kLe, 1.0);
  p.add_constraint("c4", {{x, 2.0}, {y, 1.0}}, RowSense::kLe, 2.0);
  return p;
}

LpProblem negated_bound_var() {
  // max -x with x <= -1 (no lower bound) and -x <= 10 (i.e. x >= -10);
  // optimum 10 at x = -10.
  LpProblem p(Objective::kMaximize, "negated_bound_var");
  const auto x = p.add_variable("x", -1.0, -kInf, -1.0);
  p.add_constraint("floor", {{x, -1.0}}, RowSense::kLe, 10.0);
  return p;
}

const Fixture kFixtures[] = {
    {"wyndor", 36.0, wyndor},
    {"two_corner", -9.0, two_corner},
    {"cover_ge", 22.0, cover_ge},
    {"equality_mix", 7.0, equality_mix},
    {"bounded_vars", 4.0, bounded_vars},
    {"free_var_floor", -5.0, free_var_floor},
    {"degenerate_vertex", -1.0, degenerate_vertex},
    {"negated_bound_var", 10.0, negated_bound_var},
};

// -------------------------------------------------- fixtures x engines

class EngineFixture
    : public ::testing::TestWithParam<std::tuple<Engine, std::size_t>> {};

TEST_P(EngineFixture, ReachesKnownOptimum) {
  const auto [engine, idx] = GetParam();
  const Fixture& fx = kFixtures[idx];
  const LpProblem problem = fx.build();
  const SolveResult r = solve(problem, engine);
  ASSERT_EQ(r.status, SolveStatus::kOptimal) << fx.name;
  const double tol = tolerance_for(engine) * (1.0 + std::abs(fx.optimum));
  EXPECT_NEAR(r.objective, fx.optimum, tol) << fx.name;
  ASSERT_EQ(r.x.size(), problem.num_variables());
  EXPECT_TRUE(problem.is_feasible(r.x, 1e-4)) << fx.name;
  // Reported objective must match the point it reports.
  EXPECT_NEAR(problem.objective_value(r.x), r.objective, tol) << fx.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesAllFixtures, EngineFixture,
    ::testing::Combine(::testing::ValuesIn(kAllEngines),
                       ::testing::Range<std::size_t>(0, std::size(kFixtures))),
    [](const auto& info) {
      std::string n = std::string(to_string(std::get<0>(info.param))) + "_" +
                      kFixtures[std::get<1>(info.param)].name;
      for (char& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

// ------------------------------------------- cross-engine agreement

class RandomAgreement
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(RandomAgreement, AllEnginesAgreeOnRandomDense) {
  const auto [size, seed] = GetParam();
  const auto problem = lp::random_dense_lp(
      {.rows = size, .cols = size, .seed = seed});
  const SolveResult reference = solve(problem, Engine::kHostRevised);
  ASSERT_EQ(reference.status, SolveStatus::kOptimal);
  for (Engine e : kAllEngines) {
    const SolveResult r = solve(problem, e);
    ASSERT_EQ(r.status, SolveStatus::kOptimal) << to_string(e);
    EXPECT_NEAR(r.objective, reference.objective,
                tolerance_for(e) * (1.0 + std::abs(reference.objective)))
        << to_string(e);
    EXPECT_TRUE(problem.is_feasible(r.x, 1e-4)) << to_string(e);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, RandomAgreement,
    ::testing::Combine(::testing::Values<std::size_t>(5, 12, 25, 40),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(RandomAgreement, TwoPhaseTransportationAcrossEngines) {
  const auto problem = lp::transportation(5, 6, 17);
  const SolveResult reference = solve(problem, Engine::kHostRevised);
  ASSERT_EQ(reference.status, SolveStatus::kOptimal);
  EXPECT_GT(reference.stats.phase1_iterations, 0u);
  for (Engine e : kAllEngines) {
    const SolveResult r = solve(problem, e);
    ASSERT_EQ(r.status, SolveStatus::kOptimal) << to_string(e);
    EXPECT_NEAR(r.objective, reference.objective,
                tolerance_for(e) * (1.0 + std::abs(reference.objective)))
        << to_string(e);
  }
}

TEST(RandomAgreement, SparseProblemsAcrossEngines) {
  const auto problem = lp::random_sparse_lp(
      {.rows = 30, .cols = 120, .density = 0.1, .seed = 9});
  const SolveResult reference = solve(problem, Engine::kHostRevised);
  ASSERT_EQ(reference.status, SolveStatus::kOptimal);
  const SolveResult sparse = solve(problem, Engine::kSparseRevised);
  ASSERT_EQ(sparse.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sparse.objective, reference.objective,
              1e-6 * (1.0 + std::abs(reference.objective)));
}

// ----------------------------------------------------------- statuses

class EngineStatus : public ::testing::TestWithParam<Engine> {};

TEST_P(EngineStatus, DetectsInfeasible) {
  const SolveResult r = solve(lp::infeasible_example(), GetParam());
  EXPECT_EQ(r.status, SolveStatus::kInfeasible);
}

TEST_P(EngineStatus, DetectsUnbounded) {
  const SolveResult r = solve(lp::unbounded_example(), GetParam());
  EXPECT_EQ(r.status, SolveStatus::kUnbounded);
}

TEST_P(EngineStatus, HonorsIterationLimit) {
  SolverOptions opt;
  opt.max_iterations = 2;
  const auto problem = lp::random_dense_lp({.rows = 30, .cols = 30, .seed = 4});
  const SolveResult r = solve(problem, GetParam(), opt);
  EXPECT_EQ(r.status, SolveStatus::kIterationLimit);
  EXPECT_LE(r.stats.iterations, 2u);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineStatus,
                         ::testing::ValuesIn(kAllEngines),
                         [](const auto& info) {
                           std::string n{to_string(info.param)};
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

// ------------------------------------------------------ pricing rules

TEST(Pricing, DantzigCyclesOnBeale) {
  // Beale's example with most-negative pricing and lowest-index ratio
  // tie-breaking cycles forever: the iteration limit must trip.
  SolverOptions opt;
  opt.pricing = PricingRule::kDantzig;
  opt.max_iterations = 300;
  const SolveResult r = solve(lp::beale_cycling(), Engine::kHostRevised, opt);
  EXPECT_EQ(r.status, SolveStatus::kIterationLimit);
}

TEST(Pricing, BlandTerminatesOnBeale) {
  SolverOptions opt;
  opt.pricing = PricingRule::kBland;
  const SolveResult r = solve(lp::beale_cycling(), Engine::kHostRevised, opt);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -0.05, 1e-9);
}

TEST(Pricing, HybridEscapesBealeCycle) {
  SolverOptions opt;
  opt.pricing = PricingRule::kHybrid;
  opt.degeneracy_window = 20;
  for (Engine e : {Engine::kHostRevised, Engine::kDeviceRevised,
                   Engine::kTableau}) {
    const SolveResult r = solve(lp::beale_cycling(), e, opt);
    ASSERT_EQ(r.status, SolveStatus::kOptimal) << to_string(e);
    EXPECT_NEAR(r.objective, -0.05, 1e-9) << to_string(e);
  }
}

class KleeMintyDims : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KleeMintyDims, DantzigVisitsEveryVertex) {
  const std::size_t d = GetParam();
  SolverOptions opt;
  opt.pricing = PricingRule::kDantzig;
  const SolveResult r =
      solve(lp::klee_minty(d), Engine::kDeviceRevised, opt);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.objective, std::pow(5.0, double(d)));
  EXPECT_EQ(r.stats.iterations, (std::size_t{1} << d) - 1);
}

INSTANTIATE_TEST_SUITE_P(Dims, KleeMintyDims, ::testing::Values(3, 4, 5, 6, 8));

TEST(Pricing, AllRulesReachSameOptimumOnDense) {
  const auto problem = lp::random_dense_lp({.rows = 25, .cols = 25, .seed = 8});
  const double expect = solve(problem, Engine::kHostRevised).objective;
  for (PricingRule rule : {PricingRule::kDantzig, PricingRule::kBland,
                           PricingRule::kHybrid, PricingRule::kDevex}) {
    SolverOptions opt;
    opt.pricing = rule;
    const SolveResult r = solve(problem, Engine::kDeviceRevised, opt);
    ASSERT_EQ(r.status, SolveStatus::kOptimal) << to_string(rule);
    EXPECT_NEAR(r.objective, expect, 1e-6 * (1.0 + std::abs(expect)))
        << to_string(rule);
  }
}

TEST(Pricing, BlandNeedsMoreIterationsThanDantzigOnDense) {
  // Not a theorem, but robustly true on this instance family; guards the
  // rule wiring (a swapped rule would flip it).
  const auto problem = lp::random_dense_lp({.rows = 40, .cols = 40, .seed = 6});
  SolverOptions dantzig;
  dantzig.pricing = PricingRule::kDantzig;
  SolverOptions bland;
  bland.pricing = PricingRule::kBland;
  const auto rd = solve(problem, Engine::kHostRevised, dantzig);
  const auto rb = solve(problem, Engine::kHostRevised, bland);
  ASSERT_EQ(rd.status, SolveStatus::kOptimal);
  ASSERT_EQ(rb.status, SolveStatus::kOptimal);
  EXPECT_GE(rb.stats.iterations, rd.stats.iterations);
}

// ------------------------------------------------------ basis schemes

class ReinversionPeriods : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ReinversionPeriods, ProductFormMatchesExplicitInverse) {
  const auto problem = lp::random_dense_lp({.rows = 20, .cols = 20, .seed = 3});
  const double expect = solve(problem, Engine::kDeviceRevised).objective;
  SolverOptions opt;
  opt.basis = BasisScheme::kProductForm;
  opt.reinversion_period = GetParam();
  const SolveResult r = solve(problem, Engine::kDeviceRevised, opt);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, expect, 1e-6 * (1.0 + std::abs(expect)));
}

INSTANTIATE_TEST_SUITE_P(Periods, ReinversionPeriods,
                         ::testing::Values(1, 4, 16, 0 /* default: m */));

class LuPeriods : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuPeriods, LuFactorsMatchExplicitInverse) {
  const auto problem = lp::random_dense_lp({.rows = 24, .cols = 24, .seed = 7});
  const double expect = solve(problem, Engine::kDeviceRevised).objective;
  SolverOptions opt;
  opt.basis = BasisScheme::kLuFactors;
  opt.reinversion_period = GetParam();
  const SolveResult r = solve(problem, Engine::kDeviceRevised, opt);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, expect, 1e-6 * (1.0 + std::abs(expect)));
  // The trsv chains must show up in the kernel breakdown.
  EXPECT_TRUE(r.stats.device_stats.per_kernel.contains("ftran_trsv_l"));
  EXPECT_TRUE(r.stats.device_stats.per_kernel.contains("lu_refactor"));
}

INSTANTIATE_TEST_SUITE_P(Periods, LuPeriods,
                         ::testing::Values(1, 8, 0 /* default: m */));

TEST(BasisSchemes, LuFactorsHandleTwoPhase) {
  SolverOptions opt;
  opt.basis = BasisScheme::kLuFactors;
  opt.reinversion_period = 8;
  const auto problem = lp::transportation(5, 6, 19);
  const double expect = solve(problem, Engine::kHostRevised).objective;
  const SolveResult r = solve(problem, Engine::kDeviceRevised, opt);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, expect, 1e-6 * (1.0 + std::abs(expect)));
}

TEST(BasisSchemes, DevexUnderProductFormIsCorrect) {
  // Devex needs a true row of B^-1; under the eta file that is a BTRAN,
  // not a row of the (stale) B0^-1.
  const auto problem = lp::random_dense_lp({.rows = 30, .cols = 30, .seed = 2});
  const double expect = solve(problem, Engine::kHostRevised).objective;
  SolverOptions opt;
  opt.basis = BasisScheme::kProductForm;
  opt.pricing = PricingRule::kDevex;
  const SolveResult r = solve(problem, Engine::kDeviceRevised, opt);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, expect, 1e-6 * (1.0 + std::abs(expect)));
}

TEST(BasisSchemes, ProductFormHandlesTwoPhase) {
  SolverOptions opt;
  opt.basis = BasisScheme::kProductForm;
  opt.reinversion_period = 8;
  const auto problem = lp::transportation(4, 5, 21);
  const double expect = solve(problem, Engine::kHostRevised).objective;
  const SolveResult r = solve(problem, Engine::kDeviceRevised, opt);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, expect, 1e-6 * (1.0 + std::abs(expect)));
}

TEST(BasisSchemes, ExplicitRefactorPeriodPreservesResult) {
  const auto problem = lp::random_dense_lp({.rows = 30, .cols = 30, .seed = 2});
  const double expect = solve(problem, Engine::kDeviceRevised).objective;
  SolverOptions opt;
  opt.refactor_period = 7;
  const SolveResult r = solve(problem, Engine::kDeviceRevised, opt);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, expect, 1e-9 * (1.0 + std::abs(expect)));
}

TEST(BasisSchemes, RoundTolerancePreservesResultOnBenignProblem) {
  const auto problem = lp::random_dense_lp({.rows = 20, .cols = 20, .seed = 1});
  const double expect = solve(problem, Engine::kDeviceRevised).objective;
  SolverOptions opt;
  opt.round_tol = 1e-9;
  const SolveResult r = solve(problem, Engine::kDeviceRevised, opt);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, expect, 1e-6 * (1.0 + std::abs(expect)));
}

// -------------------------------------------------------------- precision

TEST(Precision, FloatTracksDoubleWithinTolerance) {
  const auto problem = lp::random_dense_lp({.rows = 32, .cols = 32, .seed = 5});
  const SolveResult rd = solve(problem, Engine::kDeviceRevised);
  const SolveResult rf = solve(problem, Engine::kDeviceRevisedFloat);
  ASSERT_EQ(rd.status, SolveStatus::kOptimal);
  ASSERT_EQ(rf.status, SolveStatus::kOptimal);
  EXPECT_NEAR(rf.objective, rd.objective,
              1e-3 * (1.0 + std::abs(rd.objective)));
}

TEST(Precision, FloatSolveIsModeledFasterOnComputeHeavyWork) {
  // Same iteration path -> same kernels; SP peak is ~10x DP on GT200.
  const auto problem = lp::random_dense_lp({.rows = 48, .cols = 48, .seed = 7});
  const SolveResult rd = solve(problem, Engine::kDeviceRevised);
  const SolveResult rf = solve(problem, Engine::kDeviceRevisedFloat);
  ASSERT_EQ(rd.stats.iterations, rf.stats.iterations);
  EXPECT_LT(rf.stats.sim_seconds, rd.stats.sim_seconds);
}

// ------------------------------------------------------------------ stats

TEST(Stats, DeviceEngineReportsKernelBreakdown) {
  const auto problem = lp::random_dense_lp({.rows = 16, .cols = 16, .seed = 1});
  const SolveResult r = solve(problem, Engine::kDeviceRevised);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  const auto& ds = r.stats.device_stats;
  EXPECT_GT(ds.kernel_launches, 0u);
  EXPECT_GT(ds.h2d_bytes, 0u);   // initial uploads
  EXPECT_GT(ds.d2h_count, 0u);   // per-iteration descriptor readbacks
  // Default path is the fused iteration: the pricing chain, the FTRAN +
  // ratio chain and the rank-1 update each appear as ONE kernel.
  for (const char* kernel :
       {"binv_init", "price_btran", "price_select", "ftran_ratio",
        "pivot_stage", "pivot_apply"}) {
    EXPECT_TRUE(ds.per_kernel.contains(kernel)) << kernel;
  }
  for (const char* gone :
       {"price_reduced", "ftran", "ratio", "update_beta", "update_binv"}) {
    EXPECT_FALSE(ds.per_kernel.contains(gone)) << gone;
  }
  EXPECT_GT(r.stats.sim_seconds, 0.0);
  EXPECT_GT(r.stats.wall_seconds, 0.0);
  EXPECT_NEAR(r.stats.sim_seconds, ds.sim_seconds(), 1e-12);
}

TEST(Stats, ReferencePathReportsUnfusedKernelBreakdown) {
  const auto problem = lp::random_dense_lp({.rows = 16, .cols = 16, .seed = 1});
  vgpu::Device dev(vgpu::gtx280_model());
  SolverOptions opt;
  opt.fused_iteration = false;
  DeviceRevisedSimplex<double> solver(dev, opt);
  const SolveResult r = solver.solve(problem);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  const auto& ds = r.stats.device_stats;
  for (const char* kernel :
       {"price_btran", "price_reduced", "ftran", "ratio", "update_beta",
        "update_binv"}) {
    EXPECT_TRUE(ds.per_kernel.contains(kernel)) << kernel;
  }
  EXPECT_FALSE(ds.per_kernel.contains("price_select"));
  EXPECT_FALSE(ds.per_kernel.contains("ftran_ratio"));
}

TEST(Stats, HostEngineMetersItsSteps) {
  const auto problem = lp::random_dense_lp({.rows = 16, .cols = 16, .seed = 1});
  const SolveResult r = solve(problem, Engine::kHostRevised);
  const auto& ds = r.stats.device_stats;
  EXPECT_TRUE(ds.per_kernel.contains("price_reduced"));
  EXPECT_TRUE(ds.per_kernel.contains("update_binv"));
  EXPECT_EQ(ds.h2d_bytes, 0u);  // host model: no PCIe
  EXPECT_GT(r.stats.sim_seconds, 0.0);
}

TEST(Stats, PhaseOneIterationsAreCounted) {
  const SolveResult r = solve(lp::transportation(4, 4, 2),
                              Engine::kDeviceRevised);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_GT(r.stats.phase1_iterations, 0u);
  EXPECT_GE(r.stats.iterations, r.stats.phase1_iterations);
}

TEST(Stats, PureLeProblemSkipsPhaseOne) {
  const SolveResult r = solve(
      lp::random_dense_lp({.rows = 10, .cols = 10, .seed = 1}),
      Engine::kDeviceRevised);
  EXPECT_EQ(r.stats.phase1_iterations, 0u);
}

// ----------------------------------------------------------- degeneracy

TEST(Degeneracy, RedundantEqualityRowsAreHandled) {
  // x + y = 2 stated twice: one artificial can never leave the basis.
  LpProblem p(Objective::kMinimize, "redundant");
  const auto x = p.add_variable("x", 1.0);
  const auto y = p.add_variable("y", 3.0);
  p.add_constraint("e1", {{x, 1.0}, {y, 1.0}}, RowSense::kEq, 2.0);
  p.add_constraint("e2", {{x, 1.0}, {y, 1.0}}, RowSense::kEq, 2.0);
  for (Engine e : kAllEngines) {
    const SolveResult r = solve(p, e);
    ASSERT_EQ(r.status, SolveStatus::kOptimal) << to_string(e);
    EXPECT_NEAR(r.objective, 2.0, tolerance_for(e) * 3.0) << to_string(e);
    EXPECT_TRUE(p.is_feasible(r.x, 1e-4)) << to_string(e);
  }
}

TEST(Degeneracy, ZeroRhsRowsSolve) {
  // Constraints through the origin force degenerate pivots immediately.
  LpProblem p(Objective::kMinimize, "origin");
  const auto x = p.add_variable("x", -1.0);
  const auto y = p.add_variable("y", -2.0);
  p.add_constraint("z1", {{x, 1.0}, {y, -1.0}}, RowSense::kLe, 0.0);
  p.add_constraint("z2", {{x, -1.0}, {y, 1.0}}, RowSense::kLe, 0.0);
  p.add_constraint("cap", {{x, 1.0}, {y, 1.0}}, RowSense::kLe, 2.0);
  for (Engine e : {Engine::kDeviceRevised, Engine::kHostRevised,
                   Engine::kTableau}) {
    const SolveResult r = solve(p, e);
    ASSERT_EQ(r.status, SolveStatus::kOptimal) << to_string(e);
    EXPECT_NEAR(r.objective, -3.0, 1e-6) << to_string(e);  // x = y = 1
  }
}

}  // namespace
}  // namespace gs::simplex
