// Unit tests for the MPS reader/writer (netlib interchange format).
#include <gtest/gtest.h>

#include <cmath>

#include "lp/generators.hpp"
#include "lp/mps.hpp"
#include "lp/problem.hpp"
#include "simplex/solver.hpp"

namespace gs::lp {
namespace {

/// The classical TESTPROB example used in every MPS format description.
constexpr const char* kTestProb = R"(NAME          TESTPROB
ROWS
 N  COST
 L  LIM1
 G  LIM2
 E  MYEQN
COLUMNS
    X1        COST         1.0   LIM1         1.0
    X1        LIM2         1.0
    X2        COST         2.0   LIM1         1.0
    X2        MYEQN       -1.0
    X3        COST        -1.0   MYEQN        1.0
RHS
    RHS       LIM1         4.0   LIM2         1.0
    RHS       MYEQN        7.0
BOUNDS
 UP BND       X1           4.0
 LO BND       X2          -1.0
ENDATA
)";

TEST(MpsReader, ParsesTestProbStructure) {
  const LpProblem p = read_mps_text(kTestProb);
  EXPECT_EQ(p.objective(), Objective::kMinimize);
  ASSERT_EQ(p.num_variables(), 3u);
  ASSERT_EQ(p.num_constraints(), 3u);
  EXPECT_DOUBLE_EQ(p.variable(p.variable_index("X1")).objective_coef, 1.0);
  EXPECT_DOUBLE_EQ(p.variable(p.variable_index("X3")).objective_coef, -1.0);
  EXPECT_DOUBLE_EQ(p.variable(p.variable_index("X1")).upper, 4.0);
  EXPECT_DOUBLE_EQ(p.variable(p.variable_index("X2")).lower, -1.0);
  const Constraint& lim1 = p.constraint(0);
  EXPECT_EQ(lim1.name, "LIM1");
  EXPECT_EQ(lim1.sense, RowSense::kLe);
  EXPECT_DOUBLE_EQ(lim1.rhs, 4.0);
  EXPECT_EQ(p.constraint(1).sense, RowSense::kGe);
  EXPECT_EQ(p.constraint(2).sense, RowSense::kEq);
  EXPECT_DOUBLE_EQ(p.constraint(2).rhs, 7.0);
}

TEST(MpsReader, TestProbSolvesToKnownOptimum) {
  // min x1 + 2 x2 - x3, x1+x2<=4, x1>=1, x3-x2=7, 0<=x1<=4, x2>=-1.
  // Optimum: x2 at its lower bound -1, x3 = 6, x1 = 1 -> z = 1 - 2 - 6 = -7.
  const LpProblem p = read_mps_text(kTestProb);
  const auto r = simplex::solve(p, simplex::Engine::kHostRevised);
  ASSERT_EQ(r.status, simplex::SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -7.0, 1e-9);
  EXPECT_TRUE(p.is_feasible(r.x));
}

TEST(MpsReader, ObjsenseMaximize) {
  const LpProblem p = read_mps_text(
      "NAME T\nOBJSENSE\n MAX\nROWS\n N obj\n L c\nCOLUMNS\n x obj 1.0 c "
      "1.0\nRHS\n r c 5.0\nENDATA\n");
  EXPECT_EQ(p.objective(), Objective::kMaximize);
  const auto r = simplex::solve(p, simplex::Engine::kHostRevised);
  EXPECT_NEAR(r.objective, 5.0, 1e-9);
}

TEST(MpsReader, ObjsenseOnHeaderLine) {
  const LpProblem p = read_mps_text(
      "NAME T\nOBJSENSE MAX\nROWS\n N obj\n L c\nCOLUMNS\n x obj 1.0 c "
      "1.0\nRHS\n r c 5.0\nENDATA\n");
  EXPECT_EQ(p.objective(), Objective::kMaximize);
}

TEST(MpsReader, CommentsAndBlankLinesIgnored) {
  const LpProblem p = read_mps_text(
      "* leading comment\nNAME T\n\nROWS\n N obj\n\n L c\nCOLUMNS\n* mid "
      "comment\n x obj 1.0 c 2.0\nRHS\n r c 6.0\nENDATA\n");
  ASSERT_EQ(p.num_constraints(), 1u);
  EXPECT_DOUBLE_EQ(p.constraint(0).terms[0].coef, 2.0);
}

TEST(MpsReader, RangesOnEveryRowType) {
  const LpProblem p = read_mps_text(
      "NAME T\nROWS\n N obj\n L lr\n G gr\n E er\nCOLUMNS\n"
      " x obj 1.0 lr 1.0\n x gr 1.0 er 1.0\n"
      "RHS\n r lr 10.0 gr 2.0\n r er 5.0\n"
      "RANGES\n rng lr 4.0 gr 3.0\n rng er -2.0\nENDATA\n");
  // Each ranged row splits into _hi (<=) and _lo (>=).
  ASSERT_EQ(p.num_constraints(), 6u);
  const auto find = [&](std::string_view name) -> const Constraint& {
    for (std::size_t i = 0; i < p.num_constraints(); ++i) {
      if (p.constraint(i).name == name) return p.constraint(i);
    }
    throw Error("row not found");
  };
  EXPECT_DOUBLE_EQ(find("lr_hi").rhs, 10.0);  // L: [b-|r|, b]
  EXPECT_DOUBLE_EQ(find("lr_lo").rhs, 6.0);
  EXPECT_DOUBLE_EQ(find("gr_lo").rhs, 2.0);   // G: [b, b+|r|]
  EXPECT_DOUBLE_EQ(find("gr_hi").rhs, 5.0);
  EXPECT_DOUBLE_EQ(find("er_hi").rhs, 5.0);   // E, r<0: [b+r, b]
  EXPECT_DOUBLE_EQ(find("er_lo").rhs, 3.0);
}

TEST(MpsReader, BoundTypes) {
  const LpProblem p = read_mps_text(
      "NAME T\nROWS\n N obj\n L c\nCOLUMNS\n"
      " a obj 1.0 c 1.0\n b obj 1.0 c 1.0\n f obj 1.0 c 1.0\n"
      " m obj 1.0 c 1.0\n u obj 1.0 c 1.0\n"
      "RHS\n r c 100.0\nBOUNDS\n"
      " UP BND a 7.0\n LO BND a 2.0\n"
      " FX BND b 3.0\n"
      " FR BND f\n"
      " MI BND m\n"
      " UP BND u -5.0\n"
      "ENDATA\n");
  const auto& a = p.variable(p.variable_index("a"));
  EXPECT_DOUBLE_EQ(a.lower, 2.0);
  EXPECT_DOUBLE_EQ(a.upper, 7.0);
  const auto& b = p.variable(p.variable_index("b"));
  EXPECT_DOUBLE_EQ(b.lower, 3.0);
  EXPECT_DOUBLE_EQ(b.upper, 3.0);
  const auto& f = p.variable(p.variable_index("f"));
  EXPECT_TRUE(std::isinf(f.lower) && std::isinf(f.upper));
  const auto& m = p.variable(p.variable_index("m"));
  EXPECT_TRUE(std::isinf(m.lower) && m.lower < 0);
  // negative UP without LO drops the default lower bound
  const auto& u = p.variable(p.variable_index("u"));
  EXPECT_DOUBLE_EQ(u.upper, -5.0);
  EXPECT_TRUE(std::isinf(u.lower) && u.lower < 0);
}

TEST(MpsReader, RejectsMalformedInput) {
  EXPECT_THROW((void)read_mps_text("NAME T\nROWS\n N obj\n"), Error);  // no ENDATA
  EXPECT_THROW((void)read_mps_text("NAME T\nROWS\n L c\nENDATA\n"),
               Error);  // no objective row
  EXPECT_THROW(
      (void)read_mps_text("NAME T\nROWS\n N obj\n X c\nENDATA\n"),
      Error);  // bad row type
  EXPECT_THROW(
      (void)read_mps_text(
          "NAME T\nROWS\n N obj\n L c\nCOLUMNS\n x obj 1.0 nosuch 1.0\nENDATA\n"),
      Error);  // unknown row
  EXPECT_THROW(
      (void)read_mps_text("NAME T\nROWS\n N obj\n L c\nBOGUS\nENDATA\n"),
      Error);  // unknown section
  EXPECT_THROW(
      (void)read_mps_text(
          "NAME T\nROWS\n N obj\n L c\nCOLUMNS\n x obj 1.0 c 1.0\nBOUNDS\n"
          " BV BND x\nENDATA\n"),
      Error);  // integer bound
}

TEST(MpsReader, DuplicateRowRejected) {
  EXPECT_THROW((void)read_mps_text(
                   "NAME T\nROWS\n N obj\n L c\n L c\nENDATA\n"),
               Error);
}

class MpsRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MpsRoundTrip, GeneratedProblemsSurviveWriteRead) {
  const auto original =
      lp::random_dense_lp({.rows = 10, .cols = 8, .seed = GetParam()});
  const LpProblem reparsed = read_mps_text(write_mps_text(original));
  ASSERT_EQ(reparsed.num_variables(), original.num_variables());
  ASSERT_EQ(reparsed.num_constraints(), original.num_constraints());
  const auto r1 = simplex::solve(original, simplex::Engine::kHostRevised);
  const auto r2 = simplex::solve(reparsed, simplex::Engine::kHostRevised);
  ASSERT_EQ(r1.status, simplex::SolveStatus::kOptimal);
  ASSERT_EQ(r2.status, simplex::SolveStatus::kOptimal);
  EXPECT_NEAR(r1.objective, r2.objective,
              1e-9 * (1.0 + std::abs(r1.objective)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpsRoundTrip, ::testing::Values(1, 2, 3, 4));

TEST(MpsRoundTripOnce, BoundsAndMaximizeSurvive) {
  LpProblem p(Objective::kMaximize, "rt");
  const auto x = p.add_variable("x", 3.0, 1.0, 4.0);
  const auto y = p.add_variable("y", -1.0, -kInf, kInf);
  const auto z = p.add_variable("z", 2.0, -kInf, -1.0);
  p.add_constraint("c1", {{x, 1.0}, {y, 2.0}}, RowSense::kLe, 8.0);
  p.add_constraint("c2", {{y, 1.0}, {z, -1.0}}, RowSense::kGe, -3.0);
  p.add_constraint("c3", {{x, 1.0}, {z, 1.0}}, RowSense::kEq, 0.0);
  const LpProblem q = read_mps_text(write_mps_text(p));
  EXPECT_EQ(q.objective(), Objective::kMaximize);
  for (std::size_t j = 0; j < p.num_variables(); ++j) {
    EXPECT_DOUBLE_EQ(q.variable(j).lower, p.variable(j).lower) << j;
    EXPECT_DOUBLE_EQ(q.variable(j).upper, p.variable(j).upper) << j;
    EXPECT_DOUBLE_EQ(q.variable(j).objective_coef,
                     p.variable(j).objective_coef)
        << j;
  }
  const auto r1 = simplex::solve(p, simplex::Engine::kHostRevised);
  const auto r2 = simplex::solve(q, simplex::Engine::kHostRevised);
  EXPECT_EQ(r1.status, r2.status);
  if (r1.optimal()) {
    EXPECT_NEAR(r1.objective, r2.objective, 1e-9);
  }
}

TEST(MpsWriter, EmitsCanonicalSections) {
  LpProblem p(Objective::kMinimize, "w");
  const auto x = p.add_variable("x", 1.5);
  p.add_constraint("row1", {{x, 2.0}}, RowSense::kLe, 3.0);
  const std::string text = write_mps_text(p);
  EXPECT_NE(text.find("ROWS"), std::string::npos);
  EXPECT_NE(text.find("N COST"), std::string::npos);
  EXPECT_NE(text.find("L row1"), std::string::npos);
  EXPECT_NE(text.find("COLUMNS"), std::string::npos);
  EXPECT_NE(text.find("ENDATA"), std::string::npos);
  EXPECT_EQ(text.find("OBJSENSE"), std::string::npos);  // min is default
}

}  // namespace
}  // namespace gs::lp
