// Solve-service tests: admission control, same-shape batch packing,
// crossover-aware dispatch, warm-start cache semantics (exact hits are
// bit-identical, perturbed repeats reuse the basis), determinism under
// multi-worker scheduling and the metrics-off inertness guarantee. These
// exercise exactly the behavior documented in SERVICE.md.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "lp/generators.hpp"
#include "metrics/metrics.hpp"
#include "record/record.hpp"
#include "service/service.hpp"
#include "simplex/solver.hpp"

namespace {

using namespace gs;

lp::LpProblem dense(std::size_t m, std::uint64_t seed) {
  return lp::random_dense_lp({.rows = m, .cols = m, .seed = seed});
}

service::SolveRequest request_for(lp::LpProblem p) {
  service::SolveRequest req;
  req.problem = std::move(p);
  return req;
}

/// Rebuild `p` with every objective coefficient scaled: same shape and
/// constraints (so the same optimal basis stays feasible), different
/// decision digest — the "perturbed repeat" of SERVICE.md.
lp::LpProblem scale_costs(const lp::LpProblem& p, double scale) {
  lp::LpProblem out(p.objective(), p.name() + "-perturbed");
  for (const lp::Variable& v : p.variables()) {
    out.add_variable(v.name, v.objective_coef * scale, v.lower, v.upper);
  }
  for (const lp::Constraint& c : p.constraints()) {
    out.add_constraint(c.name, c.terms, c.sense, c.rhs);
  }
  return out;
}

std::map<std::string, double> counter_values(
    const metrics::MetricsRegistry& reg) {
  std::map<std::string, double> out;
  for (const auto& [name, c] : reg.counters()) out[name] = c.value();
  return out;
}

// ---------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------

TEST(ServiceAdmission, BoundedQueueRejectsWithReason) {
  service::DispatchPolicy policy;
  policy.queue_capacity = 2;
  metrics::MetricsRegistry reg;
  service::SolveService svc(policy, &reg);

  const auto t1 = svc.submit(request_for(dense(8, 1)));
  const auto t2 = svc.submit(request_for(dense(8, 2)));
  const auto t3 = svc.submit(request_for(dense(8, 3)));
  EXPECT_TRUE(t1.accepted);
  EXPECT_TRUE(t2.accepted);
  EXPECT_FALSE(t3.accepted);
  EXPECT_EQ(t3.reason, service::RejectReason::kQueueFull);
  EXPECT_EQ(svc.queue_depth(), 2u);

  service::SolveRequest expired = request_for(dense(8, 4));
  expired.deadline_seconds = 0.0;
  const auto t4 = svc.submit(std::move(expired));
  EXPECT_FALSE(t4.accepted);
  EXPECT_EQ(t4.reason, service::RejectReason::kDeadlineExpired);

  EXPECT_EQ(reg.counter("service.accepted").value(), 2.0);
  EXPECT_EQ(reg.counter("service.rejected").value(), 2.0);
  EXPECT_EQ(reg.counter("service.rejected.queue-full").value(), 1.0);
  EXPECT_EQ(reg.counter("service.rejected.deadline-expired").value(), 1.0);

  svc.drain();
  EXPECT_EQ(svc.queue_depth(), 0u);
  EXPECT_TRUE(svc.result(t1.id).solve.optimal());
  EXPECT_TRUE(svc.result(t2.id).solve.optimal());
  EXPECT_THROW((void)svc.result(9999), gs::Error);
}

// ---------------------------------------------------------------------
// Scheduler: same-shape packing.
// ---------------------------------------------------------------------

TEST(ServiceScheduler, SameShapeRequestsPackIntoOneBatchRound) {
  service::DispatchPolicy policy;
  policy.warm_cache_capacity = 0;  // isolate the scheduler
  metrics::MetricsRegistry reg;
  service::SolveService svc(policy, &reg);

  std::vector<std::uint64_t> batch_ids;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    batch_ids.push_back(svc.submit(request_for(dense(12, seed))).id);
  }
  // A different shape must not join the round.
  const auto odd = svc.submit(request_for(dense(9, 1)));
  // Equality rows need phase 1 => not slack-startable => never batched,
  // even when two of them share a shape.
  const auto eq1 = svc.submit(request_for(lp::transportation(3, 4, 1)));
  const auto eq2 = svc.submit(request_for(lp::transportation(3, 4, 2)));
  svc.drain();

  for (const std::uint64_t id : batch_ids) {
    const service::ServiceResult& r = svc.result(id);
    EXPECT_EQ(r.route, service::Route::kBatch);
    EXPECT_EQ(r.batch_lanes, 8u);
    EXPECT_TRUE(r.solve.optimal());
  }
  EXPECT_EQ(svc.result(odd.id).route, service::Route::kHost);
  EXPECT_EQ(svc.result(eq1.id).route, service::Route::kHost);
  EXPECT_EQ(svc.result(eq2.id).route, service::Route::kHost);
  EXPECT_TRUE(svc.result(eq1.id).solve.optimal());

  EXPECT_EQ(reg.counter("service.batch.rounds").value(), 1.0);
  EXPECT_EQ(reg.counter("service.dispatch.batch").value(), 8.0);
  EXPECT_EQ(reg.counter("service.dispatch.host").value(), 3.0);

  // A batch lane's answer must agree with a direct single solve.
  const simplex::SolveResult direct =
      simplex::solve(dense(12, 3), simplex::Engine::kHostRevised);
  EXPECT_NEAR(svc.result(batch_ids[2]).solve.objective, direct.objective,
              1e-9);
}

TEST(ServiceScheduler, OverfullGroupSplitsIntoRoundsOfBatchTarget) {
  service::DispatchPolicy policy;
  policy.warm_cache_capacity = 0;
  policy.batch_target = 4;
  service::SolveService svc(policy);

  std::vector<std::uint64_t> ids;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ids.push_back(svc.submit(request_for(dense(10, seed))).id);
  }
  svc.drain();

  // 10 requests, rounds of <= 4: 4 + 4 + 2 (the partial round is flushed).
  EXPECT_EQ(svc.result(ids[0]).batch_lanes, 4u);
  EXPECT_EQ(svc.result(ids[4]).batch_lanes, 4u);
  EXPECT_EQ(svc.result(ids[8]).batch_lanes, 2u);
  EXPECT_EQ(svc.result(ids[9]).route, service::Route::kBatch);
}

// ---------------------------------------------------------------------
// Dispatcher: crossover routing.
// ---------------------------------------------------------------------

TEST(ServiceDispatch, CrossoverRoutesSmallToHostLargeToDevice) {
  service::DispatchPolicy policy;
  policy.crossover_m = 64;  // tunable: test both sides cheaply
  policy.warm_cache_capacity = 0;
  metrics::MetricsRegistry reg;
  service::SolveService svc(policy, &reg);

  const auto small = svc.submit(request_for(dense(16, 1)));
  const auto large = svc.submit(request_for(dense(80, 1)));
  svc.drain();

  EXPECT_EQ(svc.result(small.id).route, service::Route::kHost);
  EXPECT_EQ(svc.result(large.id).route, service::Route::kDevice);
  EXPECT_TRUE(svc.result(small.id).solve.optimal());
  EXPECT_TRUE(svc.result(large.id).solve.optimal());
  EXPECT_EQ(reg.counter("service.dispatch.host").value(), 1.0);
  EXPECT_EQ(reg.counter("service.dispatch.device").value(), 1.0);

  // Latency bookkeeping: a single's latency is its own modelled time.
  const service::ServiceResult& r = svc.result(large.id);
  EXPECT_GT(r.engine_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.latency_seconds, r.queue_seconds + r.engine_seconds);
  EXPECT_FALSE(r.deadline_missed);
}

TEST(ServiceDispatch, TightDeadlineIsReportedMissed) {
  service::DispatchPolicy policy;
  policy.warm_cache_capacity = 0;
  metrics::MetricsRegistry reg;
  service::SolveService svc(policy, &reg);
  service::SolveRequest req = request_for(dense(16, 1));
  req.deadline_seconds = 1e-15;  // positive (admitted) but unmeetable
  const auto t = svc.submit(std::move(req));
  svc.drain();
  EXPECT_TRUE(svc.result(t.id).deadline_missed);
  EXPECT_EQ(reg.counter("service.deadline.missed").value(), 1.0);
}

TEST(ServiceDispatch, PolicySeedsFromBenchArtifact) {
  // No sweep point at/above speedup 1 => the measured Fig. 2 default.
  const std::string path = "policy_seed_test.json";
  {
    std::ofstream out(path);
    out << "{\"sweep\": [{\"m\": 48, \"speedup_vs_cpu_revised\": 0.4},\n"
        << "            {\"m\": 128, \"speedup_vs_cpu_revised\": 0.9}]}";
  }
  EXPECT_EQ(service::DispatchPolicy::from_bench_json(path).crossover_m, 512u);
  {
    std::ofstream out(path);
    out << "{\"sweep\": [{\"m\": 256, \"speedup_vs_cpu_revised\": 0.97},\n"
        << "            {\"m\": 512, \"speedup_vs_cpu_revised\": 1.04},\n"
        << "            {\"m\": 2048, \"speedup_vs_cpu_revised\": 4.32}]}";
  }
  EXPECT_EQ(service::DispatchPolicy::from_bench_json(path).crossover_m, 512u);
  std::remove(path.c_str());
  EXPECT_EQ(service::DispatchPolicy::from_bench_json(path).crossover_m, 512u);
}

// ---------------------------------------------------------------------
// Warm-start cache.
// ---------------------------------------------------------------------

TEST(ServiceWarmCache, ExactRepeatIsServedBitIdentical) {
  service::SolveService svc;
  record::Recorder service_rec;

  service::SolveRequest cold = request_for(dense(16, 5));
  cold.options.recorder = &service_rec;  // observed => real cold solve
  const auto t_cold = svc.submit(std::move(cold));
  svc.drain();
  const service::ServiceResult& first = svc.result(t_cold.id);
  EXPECT_EQ(first.route, service::Route::kHost);
  EXPECT_TRUE(first.solve.optimal());
  EXPECT_EQ(svc.warm_cache_size(), 1u);

  const auto t_hit = svc.submit(request_for(dense(16, 5)));
  svc.drain();
  const service::ServiceResult& hit = svc.result(t_hit.id);
  EXPECT_EQ(hit.route, service::Route::kWarmHit);
  EXPECT_EQ(hit.digest, first.digest);
  EXPECT_EQ(hit.engine_seconds, 0.0);

  // Bit-identical, not merely close: the memoized result IS the cold one.
  EXPECT_EQ(hit.solve.objective, first.solve.objective);
  EXPECT_EQ(hit.solve.x, first.solve.x);
  EXPECT_EQ(hit.solve.y, first.solve.y);
  EXPECT_EQ(hit.solve.basis, first.solve.basis);

  // The service's cold solve took the same pivot path as a direct cold
  // solve outside the service: record::diff sees zero divergence.
  record::Recorder direct_rec;
  simplex::SolverOptions opt;
  opt.recorder = &direct_rec;
  (void)simplex::solve(dense(16, 5), simplex::Engine::kHostRevised, opt);
  const record::DiffResult d =
      record::diff(service_rec.recording(), direct_rec.recording());
  EXPECT_TRUE(d.comparable);
  EXPECT_FALSE(d.diverged);
  EXPECT_GT(d.common, 0u);
}

TEST(ServiceWarmCache, PerturbedRepeatReusesBasisAndSkipsIterations) {
  metrics::MetricsRegistry reg;
  service::SolveService svc({}, &reg);

  const lp::LpProblem base = dense(24, 9);
  const auto t_cold = svc.submit(request_for(base));
  svc.drain();
  EXPECT_TRUE(svc.result(t_cold.id).solve.optimal());

  const lp::LpProblem perturbed = scale_costs(base, 2.0);
  const auto t_warm = svc.submit(request_for(perturbed));
  svc.drain();
  const service::ServiceResult& warm = svc.result(t_warm.id);
  EXPECT_EQ(warm.route, service::Route::kWarmBasis);
  EXPECT_TRUE(warm.solve.optimal());
  EXPECT_TRUE(warm.solve.stats.warm_started);
  EXPECT_EQ(reg.counter("service.warm.fallback").value(), 0.0);
  // The warm route goes through the dual engine: the cached basis is
  // accepted without building artificials, so no phase-1 pivots at all.
  EXPECT_EQ(warm.solve.stats.phase1_iterations, 0u);

  // Scaling every cost preserves the argmin: same optimum, fewer pivots
  // than solving the perturbed instance cold.
  const simplex::SolveResult cold_direct =
      simplex::solve(perturbed, simplex::Engine::kHostRevised);
  EXPECT_NEAR(warm.solve.objective, cold_direct.objective,
              1e-9 * std::max(1.0, std::abs(cold_direct.objective)));
  EXPECT_LT(warm.solve.stats.iterations, cold_direct.stats.iterations);
}

TEST(ServiceWarmCache, LruEvictionIsBoundedAndCounted) {
  service::DispatchPolicy policy;
  policy.warm_cache_capacity = 2;
  metrics::MetricsRegistry reg;
  service::SolveService svc(policy, &reg);

  // Distinct shapes so nothing batches, warm-seeds or digest-collides.
  (void)svc.submit(request_for(dense(6, 1)));
  (void)svc.submit(request_for(dense(7, 1)));
  (void)svc.submit(request_for(dense(8, 1)));
  svc.drain();
  EXPECT_EQ(svc.warm_cache_size(), 2u);
  EXPECT_EQ(reg.counter("service.warm.evict").value(), 1.0);
  EXPECT_EQ(reg.counter("service.warm.miss").value(), 3.0);
  EXPECT_EQ(reg.counter("service.warm.hit").value(), 0.0);

  // The cache can be disabled outright.
  service::DispatchPolicy off;
  off.warm_cache_capacity = 0;
  service::SolveService no_cache(off);
  const auto a = no_cache.submit(request_for(dense(6, 1)));
  no_cache.drain();
  const auto b = no_cache.submit(request_for(dense(6, 1)));
  no_cache.drain();
  EXPECT_EQ(no_cache.warm_cache_size(), 0u);
  EXPECT_EQ(no_cache.result(b.id).route, service::Route::kHost);
  EXPECT_EQ(no_cache.result(a.id).solve.objective,
            no_cache.result(b.id).solve.objective);
}

// ---------------------------------------------------------------------
// Determinism and inertness.
// ---------------------------------------------------------------------

namespace determinism {

/// Mixed traffic: a batchable group, a device single, host singles and a
/// phase-1 case, drained twice to exercise the warm cache.
void run_traffic(service::SolveService& svc,
                 std::vector<std::uint64_t>& ids) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ids.push_back(svc.submit(request_for(dense(10, seed))).id);
  }
  ids.push_back(svc.submit(request_for(dense(80, 3))).id);
  ids.push_back(svc.submit(request_for(dense(14, 2))).id);
  ids.push_back(svc.submit(request_for(lp::transportation(3, 3, 1))).id);
  svc.drain();
  ids.push_back(svc.submit(request_for(dense(14, 2))).id);  // exact repeat
  ids.push_back(
      svc.submit(request_for(scale_costs(dense(14, 2), 3.0))).id);
  svc.drain();
}

}  // namespace determinism

TEST(ServiceDeterminism, WorkerCountNeverChangesResultsOrLatencies) {
  service::DispatchPolicy inline_policy;
  inline_policy.crossover_m = 64;
  service::DispatchPolicy threaded = inline_policy;
  threaded.workers = 4;

  metrics::MetricsRegistry reg0, reg4;
  service::SolveService svc0(inline_policy, &reg0);
  service::SolveService svc4(threaded, &reg4);
  std::vector<std::uint64_t> ids0, ids4;
  determinism::run_traffic(svc0, ids0);
  determinism::run_traffic(svc4, ids4);

  ASSERT_EQ(ids0.size(), ids4.size());
  for (std::size_t i = 0; i < ids0.size(); ++i) {
    const service::ServiceResult& a = svc0.result(ids0[i]);
    const service::ServiceResult& b = svc4.result(ids4[i]);
    EXPECT_EQ(a.route, b.route) << "request " << i;
    EXPECT_EQ(a.solve.status, b.solve.status);
    EXPECT_EQ(a.solve.objective, b.solve.objective);  // bit-identical
    EXPECT_EQ(a.solve.x, b.solve.x);
    EXPECT_EQ(a.solve.basis, b.solve.basis);
    EXPECT_EQ(a.engine_seconds, b.engine_seconds);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.solve.stats.iterations, b.solve.stats.iterations);
  }
  // Identical service metrics too, counter for counter. (Host-lane queue
  // waits legitimately depend on the lane count, so latency histograms
  // are compared via the counters they feed, not asserted equal here.)
  EXPECT_EQ(counter_values(reg0), counter_values(reg4));
}

TEST(ServiceDeterminism, ServiceMetricsAreOffByDefaultAndInert) {
  metrics::MetricsRegistry reg;
  service::SolveService with_metrics({}, &reg);
  service::SolveService without_metrics;  // null registry: the default
  std::vector<std::uint64_t> ids_a, ids_b;
  determinism::run_traffic(with_metrics, ids_a);
  determinism::run_traffic(without_metrics, ids_b);

  ASSERT_EQ(ids_a.size(), ids_b.size());
  for (std::size_t i = 0; i < ids_a.size(); ++i) {
    const service::ServiceResult& a = with_metrics.result(ids_a[i]);
    const service::ServiceResult& b = without_metrics.result(ids_b[i]);
    EXPECT_EQ(a.route, b.route);
    EXPECT_EQ(a.solve.objective, b.solve.objective);
    EXPECT_EQ(a.solve.x, b.solve.x);
    EXPECT_EQ(a.latency_seconds, b.latency_seconds);
    EXPECT_EQ(a.solve.stats.iterations, b.solve.stats.iterations);
  }
  EXPECT_FALSE(counter_values(reg).empty());
}

}  // namespace
