// Unit tests for the sparse-matrix module: COO, CSR, conversions, device
// CSR kernels.
#include <gtest/gtest.h>

#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/device_csr.hpp"
#include "support/rng.hpp"
#include "vgpu/primitives.hpp"
#include "vgpu/machine_model.hpp"

namespace gs::sparse {
namespace {

/// The 3x3 example matrix from the simplex literature's format exposition:
///   [0 1 5]
///   [0 0 4]
///   [1 0 0]
[[nodiscard]] CsrMatrix<double> example_matrix() {
  vblas::Matrix<double> dense(3, 3);
  dense(0, 1) = 1.0;
  dense(0, 2) = 5.0;
  dense(1, 2) = 4.0;
  dense(2, 0) = 1.0;
  return CsrMatrix<double>::from_dense(dense);
}

[[nodiscard]] CsrMatrix<double> random_sparse(std::size_t rows,
                                              std::size_t cols, double density,
                                              std::uint64_t seed) {
  Xoshiro256 rng(seed);
  CooMatrix<double> coo(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (rng.bernoulli(density)) coo.add(i, j, rng.uniform(-1.0, 1.0));
    }
  }
  return to_csr(std::move(coo));
}

// ------------------------------------------------------------------- COO

TEST(Coo, AddAndCanonicalizeSortsByRowThenCol) {
  CooMatrix<double> coo(3, 3);
  coo.add(2, 0, 1.0);
  coo.add(0, 2, 5.0);
  coo.add(1, 2, 4.0);
  coo.add(0, 1, 1.0);
  coo.canonicalize();
  const std::vector<std::uint32_t> rows{0, 0, 1, 2};
  const std::vector<std::uint32_t> cols{1, 2, 2, 0};
  const std::vector<double> vals{1.0, 5.0, 4.0, 1.0};
  EXPECT_EQ(coo.row_indices(), rows);
  EXPECT_EQ(coo.col_indices(), cols);
  EXPECT_EQ(coo.values(), vals);
}

TEST(Coo, DuplicatesAreSummed) {
  CooMatrix<double> coo(2, 2);
  coo.add(1, 1, 2.0);
  coo.add(1, 1, 3.0);
  coo.canonicalize();
  EXPECT_EQ(coo.nnz(), 1u);
  EXPECT_DOUBLE_EQ(coo.values()[0], 5.0);
}

TEST(Coo, CancellationDropsZeros) {
  CooMatrix<double> coo(2, 2);
  coo.add(0, 0, 2.0);
  coo.add(0, 0, -2.0);
  coo.add(1, 0, 1.0);
  coo.canonicalize();
  EXPECT_EQ(coo.nnz(), 1u);
  EXPECT_EQ(coo.row_indices()[0], 1u);
}

TEST(Coo, OutOfRangeEntryThrows) {
  CooMatrix<double> coo(2, 2);
  EXPECT_THROW(coo.add(2, 0, 1.0), Error);
  EXPECT_THROW(coo.add(0, 2, 1.0), Error);
}

TEST(Coo, CanonicalizeIsIdempotent) {
  CooMatrix<double> coo(3, 3);
  coo.add(1, 1, 1.0);
  coo.add(0, 0, 2.0);
  coo.canonicalize();
  const auto vals = coo.values();
  coo.canonicalize();
  EXPECT_EQ(coo.values(), vals);
}

// ------------------------------------------------------------------- CSR

TEST(Csr, ExampleMatrixLayout) {
  const auto csr = example_matrix();
  const std::vector<double> vals{1.0, 5.0, 4.0, 1.0};
  const std::vector<std::uint32_t> cols{1, 2, 2, 0};
  const std::vector<std::uint32_t> offs{0, 2, 3, 4};
  EXPECT_EQ(csr.values(), vals);
  EXPECT_EQ(csr.col_indices(), cols);
  EXPECT_EQ(csr.row_offsets(), offs);
  EXPECT_EQ(csr.nnz(), 4u);
}

TEST(Csr, ElementAccess) {
  const auto csr = example_matrix();
  EXPECT_DOUBLE_EQ(csr.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(csr.at(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(csr.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(csr.at(2, 0), 1.0);
  EXPECT_THROW((void)csr.at(3, 0), Error);
}

TEST(Csr, RowNnzAndDensity) {
  const auto csr = example_matrix();
  EXPECT_EQ(csr.row_nnz(0), 2u);
  EXPECT_EQ(csr.row_nnz(1), 1u);
  EXPECT_NEAR(csr.density(), 4.0 / 9.0, 1e-12);
}

TEST(Csr, DenseRoundTrip) {
  const auto csr = random_sparse(20, 30, 0.2, 1);
  const auto back = CsrMatrix<double>::from_dense(csr.to_dense());
  EXPECT_EQ(back.values(), csr.values());
  EXPECT_EQ(back.col_indices(), csr.col_indices());
  EXPECT_EQ(back.row_offsets(), csr.row_offsets());
}

TEST(Csr, FromDenseDropTolerance) {
  vblas::Matrix<double> dense(1, 3);
  dense(0, 0) = 1.0;
  dense(0, 1) = 1e-12;
  dense(0, 2) = -1e-12;
  EXPECT_EQ(CsrMatrix<double>::from_dense(dense, 1e-9).nnz(), 1u);
  EXPECT_EQ(CsrMatrix<double>::from_dense(dense).nnz(), 3u);
}

TEST(Csr, TransposeTwiceIsIdentity) {
  const auto csr = random_sparse(15, 25, 0.15, 2);
  const auto tt = csr.transposed().transposed();
  EXPECT_EQ(tt.values(), csr.values());
  EXPECT_EQ(tt.col_indices(), csr.col_indices());
  EXPECT_EQ(tt.row_offsets(), csr.row_offsets());
}

TEST(Csr, TransposeMatchesDenseTranspose) {
  const auto csr = random_sparse(8, 12, 0.3, 3);
  const auto t = csr.transposed();
  const auto dense_t = csr.to_dense().transposed();
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_DOUBLE_EQ(t.at(i, j), dense_t(i, j));
    }
  }
}

TEST(Csr, FilteredRemovesSmallEntries) {
  vblas::Matrix<double> dense(2, 2);
  dense(0, 0) = 1.0;
  dense(0, 1) = 1e-10;
  dense(1, 1) = -1e-10;
  const auto csr = CsrMatrix<double>::from_dense(dense);
  const auto filtered = csr.filtered(1e-8);
  EXPECT_EQ(filtered.nnz(), 1u);
  EXPECT_DOUBLE_EQ(filtered.at(0, 0), 1.0);
  EXPECT_EQ(filtered.rows(), 2u);
}

TEST(Csr, MalformedConstructionThrows) {
  EXPECT_THROW(CsrMatrix<double>(2, 2, {0, 1}, {0}, {1.0}), Error);
  EXPECT_THROW(CsrMatrix<double>(2, 2, {0, 1, 2}, {0}, {1.0, 2.0}), Error);
}

// ----------------------------------------------------------- conversions

TEST(Convert, CooCsrRoundTrip) {
  const auto csr = random_sparse(10, 10, 0.25, 4);
  const auto back = to_csr(to_coo(csr));
  EXPECT_EQ(back.values(), csr.values());
  EXPECT_EQ(back.row_offsets(), csr.row_offsets());
}

TEST(Convert, UnsortedCooProducesCanonicalCsr) {
  CooMatrix<double> coo(2, 3);
  coo.add(1, 2, 6.0);
  coo.add(0, 1, 2.0);
  coo.add(1, 0, 4.0);
  const auto csr = to_csr(std::move(coo));
  EXPECT_DOUBLE_EQ(csr.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(csr.at(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(csr.at(1, 2), 6.0);
}

// ------------------------------------------------------------ device CSR

class SpmvDensities : public ::testing::TestWithParam<double> {
 protected:
  vgpu::Device dev_{vgpu::gtx280_model()};
};

TEST_P(SpmvDensities, MatchesSerialReference) {
  const auto a = random_sparse(64, 48, GetParam(), 5);
  Xoshiro256 rng(6);
  std::vector<double> x(48);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  DeviceCsr<double> da(dev_, a);
  vgpu::DeviceBuffer<double> dx(dev_, std::span<const double>(x));
  vgpu::DeviceBuffer<double> dy(dev_, 64);
  spmv(1.0, da, dx, 0.0, dy);
  const auto expect = ref::spmv(a, std::span<const double>(x));
  const auto got = dy.to_host();
  for (std::size_t i = 0; i < 64; ++i) EXPECT_NEAR(got[i], expect[i], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Densities, SpmvDensities,
                         ::testing::Values(0.01, 0.1, 0.5, 1.0));

TEST(DeviceCsr, RoundTrip) {
  vgpu::Device dev(vgpu::gtx280_model());
  const auto a = random_sparse(12, 9, 0.3, 7);
  DeviceCsr<double> da(dev, a);
  const auto back = da.to_host();
  EXPECT_EQ(back.values(), a.values());
  EXPECT_EQ(back.col_indices(), a.col_indices());
  EXPECT_EQ(da.nnz(), a.nnz());
}

TEST(DeviceCsr, SpmvAlphaBeta) {
  vgpu::Device dev(vgpu::gtx280_model());
  const auto a = example_matrix();
  const std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{10.0, 20.0, 30.0};
  DeviceCsr<double> da(dev, a);
  vgpu::DeviceBuffer<double> dx(dev, std::span<const double>(x));
  vgpu::DeviceBuffer<double> dy(dev, std::span<const double>(y));
  spmv(2.0, da, dx, 1.0, dy);
  // A x = (17, 12, 1); y = 2*Ax + y = (44, 44, 32)
  const auto got = dy.to_host();
  EXPECT_DOUBLE_EQ(got[0], 44.0);
  EXPECT_DOUBLE_EQ(got[1], 44.0);
  EXPECT_DOUBLE_EQ(got[2], 32.0);
}

TEST(DeviceCsr, ScatterRowToDense) {
  vgpu::Device dev(vgpu::gtx280_model());
  const auto a = example_matrix();
  DeviceCsr<double> da(dev, a);
  vgpu::DeviceBuffer<double> out(dev, 3);
  vgpu::fill(out, 99.0);  // must be overwritten by the zero-fill
  scatter_row_to_dense(da, 0, out);
  const auto got = out.to_host();
  EXPECT_DOUBLE_EQ(got[0], 0.0);
  EXPECT_DOUBLE_EQ(got[1], 1.0);
  EXPECT_DOUBLE_EQ(got[2], 5.0);
}

TEST(DeviceCsr, SpmvShapeMismatchThrows) {
  vgpu::Device dev(vgpu::gtx280_model());
  const auto a = example_matrix();
  DeviceCsr<double> da(dev, a);
  vgpu::DeviceBuffer<double> bad(dev, 2), y(dev, 3);
  EXPECT_THROW(spmv(1.0, da, bad, 0.0, y), Error);
}

TEST(DeviceCsr, SpmvCostScalesWithNnz) {
  vgpu::Device dev(vgpu::gtx280_model());
  const auto dense_m = random_sparse(128, 128, 1.0, 8);
  const auto sparse_m = random_sparse(128, 128, 0.02, 9);
  std::vector<double> x(128, 1.0);
  vgpu::DeviceBuffer<double> dx(dev, std::span<const double>(x));
  vgpu::DeviceBuffer<double> dy(dev, 128);
  DeviceCsr<double> dd(dev, dense_m);
  dev.reset_stats();
  spmv(1.0, dd, dx, 0.0, dy);
  const double t_dense = dev.stats().per_kernel.at("spmv").sim_seconds;
  DeviceCsr<double> ds(dev, sparse_m);
  dev.reset_stats();
  spmv(1.0, ds, dx, 0.0, dy);
  const double t_sparse = dev.stats().per_kernel.at("spmv").sim_seconds;
  EXPECT_LT(t_sparse, t_dense);
}

}  // namespace
}  // namespace gs::sparse
