// Property tests for the BasisOracle seam (src/simplex/basis/): the
// explicit-inverse and product-form oracles must answer the same four
// linear-algebra questions, the sparse LU must invert what it factored,
// and whole solves must take the same pivot path under either oracle.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "lp/generators.hpp"
#include "record/record.hpp"
#include "simplex/basis/explicit_inverse.hpp"
#include "simplex/basis/product_form.hpp"
#include "simplex/basis/sparse_lu.hpp"
#include "simplex/cost_meter.hpp"
#include "simplex/solver.hpp"
#include "sparse/csr.hpp"
#include "support/rng.hpp"

namespace gs {
namespace {

using simplex::basis::BasisOracle;
using simplex::basis::CsrColumnSource;
using simplex::basis::ExplicitInverseOracle;
using simplex::basis::ProductFormOracle;

/// Random strictly diagonally dominant sparse basis in A^T layout
/// (row j = basis column j), guaranteed factorizable by both oracles.
sparse::CsrMatrix<double> random_basis_at(std::size_t m, std::size_t per_col,
                                          std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint32_t> offs{0};
  std::vector<std::uint32_t> idx;
  std::vector<double> val;
  for (std::size_t j = 0; j < m; ++j) {
    std::vector<std::pair<std::uint32_t, double>> entries;
    double offsum = 0.0;
    for (std::size_t k = 0; k < per_col; ++k) {
      const auto r = static_cast<std::uint32_t>(rng.next() % m);
      if (r == j) continue;
      const double v =
          (double(rng.next() >> 11) / double(1ULL << 53)) * 2.0 - 1.0;
      entries.emplace_back(r, v);
      offsum += std::abs(v);
    }
    entries.emplace_back(static_cast<std::uint32_t>(j), offsum + 1.5);
    std::sort(entries.begin(), entries.end());
    for (const auto& [r, v] : entries) {
      idx.push_back(r);
      val.push_back(v);
    }
    offs.push_back(static_cast<std::uint32_t>(idx.size()));
  }
  return sparse::CsrMatrix<double>(m, m, std::move(offs), std::move(idx),
                                   std::move(val));
}

std::vector<double> random_vec(std::size_t m, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> v(m);
  for (double& x : v) {
    x = (double(rng.next() >> 11) / double(1ULL << 53)) * 4.0 - 2.0;
  }
  return v;
}

std::vector<std::uint32_t> identity_basis(std::size_t m) {
  std::vector<std::uint32_t> b(m);
  for (std::size_t i = 0; i < m; ++i) b[i] = static_cast<std::uint32_t>(i);
  return b;
}

// --------------------------------------------------------- LU vs inverse

// Property: on random sparse bases, the product-form solves agree with
// the explicit dense inverse to solver tolerance (the two factorizations
// round differently, so agreement is relative, not bitwise).
TEST(BasisOracles, SparseSolvesMatchDenseInverseOnRandomBases) {
  for (const std::uint64_t seed : {1u, 7u, 23u, 91u}) {
    const std::size_t m = 48;
    const auto at = random_basis_at(m, 6, seed);
    const CsrColumnSource cols(at);
    const auto basis = identity_basis(m);
    simplex::SolverOptions opt;
    simplex::CostMeter meter_a(vgpu::cpu2009_model());
    simplex::CostMeter meter_b(vgpu::cpu2009_model());
    std::vector<double> diag(m, 1.0);
    ExplicitInverseOracle dense(m, diag, cols, meter_a, opt);
    ProductFormOracle sparse_o(m, basis, cols, meter_b, opt);
    ASSERT_TRUE(dense.refactorize(basis));
    ASSERT_TRUE(sparse_o.refactorize(basis));

    const auto x = random_vec(m, seed * 101 + 5);
    std::vector<double> fa(m), fb(m), ba(m), bb(m);
    dense.ftran_raw(x, fa);
    sparse_o.ftran_raw(x, fb);
    dense.btran_raw(x, ba);
    sparse_o.btran_raw(x, bb);
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_NEAR(fa[i], fb[i], 1e-9 * (1.0 + std::abs(fa[i])))
          << "ftran seed=" << seed << " i=" << i;
      EXPECT_NEAR(ba[i], bb[i], 1e-9 * (1.0 + std::abs(ba[i])))
          << "btran seed=" << seed << " i=" << i;
    }
  }
}

// Property: on a +/-1 diagonal basis (the slack crash shape) both
// representations are exact, so FTRAN and BTRAN agree BIT-FOR-BIT.
TEST(BasisOracles, UnitDiagonalBasesAgreeBitwise) {
  const std::size_t m = 33;
  std::vector<std::uint32_t> offs(m + 1);
  std::vector<std::uint32_t> idx(m);
  std::vector<double> val(m);
  for (std::size_t j = 0; j < m; ++j) {
    offs[j + 1] = static_cast<std::uint32_t>(j + 1);
    idx[j] = static_cast<std::uint32_t>(j);
    val[j] = (j % 3 == 0) ? -1.0 : 1.0;
  }
  const sparse::CsrMatrix<double> at(m, m, offs, idx, val);
  const CsrColumnSource cols(at);
  const auto basis = identity_basis(m);
  simplex::SolverOptions opt;
  simplex::CostMeter meter_a(vgpu::cpu2009_model());
  simplex::CostMeter meter_b(vgpu::cpu2009_model());
  std::vector<double> diag(m, 1.0);
  ExplicitInverseOracle dense(m, diag, cols, meter_a, opt);
  ProductFormOracle sparse_o(m, basis, cols, meter_b, opt);
  ASSERT_TRUE(dense.refactorize(basis));
  ASSERT_TRUE(sparse_o.refactorize(basis));

  const auto x = random_vec(m, 77);
  std::vector<double> fa(m), fb(m), ba(m), bb(m);
  dense.ftran_raw(x, fa);
  sparse_o.ftran_raw(x, fb);
  dense.btran_raw(x, ba);
  sparse_o.btran_raw(x, bb);
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_EQ(fa[i], fb[i]) << i;
    EXPECT_EQ(ba[i], bb[i]) << i;
  }
}

// Property: the sparse LU actually inverts what it factored — FTRAN then
// multiplying by B recovers the input, and likewise for BTRAN.
TEST(SparseLuRoundTrip, FtranBtranInvertTheFactoredBasis) {
  for (const std::uint64_t seed : {3u, 19u}) {
    const std::size_t m = 64;
    const auto at = random_basis_at(m, 8, seed);
    const CsrColumnSource cols(at);
    simplex::basis::SparseLu lu;
    ASSERT_TRUE(lu.factorize(cols, identity_basis(m)));

    const auto x = random_vec(m, seed + 1000);
    // alpha = B^-1 x, check B alpha == x.
    std::vector<double> alpha = x;
    lu.ftran(alpha);
    std::vector<double> recon(m, 0.0), colbuf(m);
    for (std::size_t j = 0; j < m; ++j) {
      std::fill(colbuf.begin(), colbuf.end(), 0.0);
      cols.gather(static_cast<std::uint32_t>(j), colbuf);
      for (std::size_t i = 0; i < m; ++i) recon[i] += colbuf[i] * alpha[j];
    }
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_NEAR(recon[i], x[i], 1e-9 * (1.0 + std::abs(x[i]))) << i;
    }
    // y = B^-T x, check B^T y == x  (i.e. y . b_j == x_j for each column).
    std::vector<double> y = x;
    lu.btran(y);
    for (std::size_t j = 0; j < m; ++j) {
      std::fill(colbuf.begin(), colbuf.end(), 0.0);
      cols.gather(static_cast<std::uint32_t>(j), colbuf);
      double acc = 0.0;
      for (std::size_t i = 0; i < m; ++i) acc += colbuf[i] * y[i];
      EXPECT_NEAR(acc, x[j], 1e-9 * (1.0 + std::abs(x[j]))) << j;
    }
  }
}

// Property: after pivots, the eta file keeps the representation exact:
// update() then ftran of the pivoted column returns the unit vector e_p.
TEST(BasisOracles, EtaFileTracksPivotsExactly) {
  const std::size_t m = 40;
  const auto at = random_basis_at(m, 5, 11);
  const CsrColumnSource cols(at);
  const auto basis = identity_basis(m);
  simplex::SolverOptions opt;
  simplex::CostMeter meter(vgpu::cpu2009_model());
  ProductFormOracle oracle(m, basis, cols, meter, opt);
  ASSERT_TRUE(oracle.refactorize(basis));

  std::vector<double> colbuf(m), alpha(m);
  for (std::size_t k = 0; k < 6; ++k) {
    const auto q = static_cast<std::uint32_t>((k * 13 + 2) % m);
    std::fill(colbuf.begin(), colbuf.end(), 0.0);
    cols.gather(q, colbuf);
    oracle.ftran(colbuf, alpha);
    std::size_t p = 0;
    for (std::size_t i = 1; i < m; ++i) {
      if (std::abs(alpha[i]) > std::abs(alpha[p])) p = i;
    }
    ASSERT_GT(std::abs(alpha[p]), 1e-9);
    oracle.update(p, alpha);
    // The column just pivoted in must now FTRAN to e_p.
    std::vector<double> check(m);
    oracle.ftran_raw(colbuf, check);
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_NEAR(check[i], i == p ? 1.0 : 0.0, 1e-8)
          << "pivot " << k << " row " << i;
    }
  }
  EXPECT_EQ(oracle.eta_count(), 6u);
}

// ---------------------------------------------------- whole-solve paths

// Decision-path property: a primal host solve takes the SAME pivot
// sequence under the explicit inverse and the product form (the oracles
// answer with different rounding, but the decisions are tolerance-
// separated on these seeds), and the product-form run emits refactor
// events when the interval policy triggers.
TEST(BasisOracles, HostSolvesTakeIdenticalPivotPathsUnderBothOracles) {
  for (const std::uint64_t seed : {2u, 9u}) {
    const auto problem = lp::random_sparse_lp(
        {.rows = 24, .cols = 96, .density = 0.1, .seed = seed});
    record::Recorder rec_dense;
    record::Recorder rec_pf;
    simplex::SolverOptions opt;
    opt.recorder = &rec_dense;
    opt.basis = simplex::BasisScheme::kExplicitInverse;
    const auto a =
        simplex::solve(problem, simplex::Engine::kHostRevised, opt);
    opt.recorder = &rec_pf;
    opt.basis = simplex::BasisScheme::kProductForm;
    const auto b =
        simplex::solve(problem, simplex::Engine::kHostRevised, opt);
    ASSERT_EQ(a.status, b.status) << "seed " << seed;
    ASSERT_TRUE(a.optimal());
    EXPECT_NEAR(a.objective, b.objective, 1e-9 * (1.0 + std::abs(a.objective)));
    const auto d = record::diff(rec_dense.recording(), rec_pf.recording());
    EXPECT_TRUE(d.comparable);
    EXPECT_FALSE(d.diverged) << "seed " << seed << ": " << d.describe();
  }
}

TEST(BasisOracles, ProductFormEmitsRefactorEvents) {
  const auto problem = lp::random_sparse_lp(
      {.rows = 32, .cols = 128, .density = 0.08, .seed = 4});
  record::Recorder rec;
  simplex::SolverOptions opt;
  opt.recorder = &rec;
  opt.basis = simplex::BasisScheme::kProductForm;
  opt.reinversion_period = 4;  // force interval-triggered refactorization
  const auto r = simplex::solve(problem, simplex::Engine::kHostRevised, opt);
  ASSERT_TRUE(r.optimal());
  std::size_t refactors = 0;
  for (const auto& e : rec.recording().records) {
    if (e.kind == record::RecordKind::kRefactor) ++refactors;
  }
  EXPECT_GE(refactors, 1u);
}

// Dual-vs-primal agreement: the dual engine reaches the same optimum on
// the workload families (dense, sparse, Klee-Minty) under both oracles.
TEST(DualEngine, AgreesWithPrimalOnOptimalValue) {
  const std::vector<lp::LpProblem> problems = {
      lp::random_dense_lp({.rows = 24, .cols = 24, .seed = 3}),
      lp::random_sparse_lp(
          {.rows = 32, .cols = 128, .density = 0.06, .seed = 8}),
      lp::klee_minty(6),
  };
  for (std::size_t k = 0; k < problems.size(); ++k) {
    const double ref =
        simplex::solve(problems[k], simplex::Engine::kHostRevised).objective;
    for (const simplex::BasisScheme scheme :
         {simplex::BasisScheme::kExplicitInverse,
          simplex::BasisScheme::kProductForm}) {
      simplex::SolverOptions opt;
      opt.basis = scheme;
      const auto r =
          simplex::solve(problems[k], simplex::Engine::kDualRevised, opt);
      ASSERT_EQ(r.status, simplex::SolveStatus::kOptimal)
          << "case " << k << " scheme " << to_string(scheme);
      EXPECT_NEAR(r.objective, ref, 1e-7 * (1.0 + std::abs(ref)))
          << "case " << k << " scheme " << to_string(scheme);
    }
  }
}

// Device sparse kernel variants: the CSR engine's product-form path
// (sparse_ftran / sparse_btran / eta_apply) reaches the host optimum in
// both precisions and its kernel stream carries the variant names.
TEST(DeviceSparseBasis, ProductFormSparseKernelsSolveAndAreNamed) {
  const auto problem = lp::random_sparse_lp(
      {.rows = 40, .cols = 160, .density = 0.08, .seed = 12});
  const double ref =
      simplex::solve(problem, simplex::Engine::kHostRevised).objective;
  simplex::SolverOptions opt;
  opt.basis = simplex::BasisScheme::kProductForm;
  {
    vgpu::Device dev(vgpu::gtx280_model());
    simplex::SparseRevisedSimplex<double> solver(dev, opt);
    const auto r = solver.solve(problem);
    ASSERT_EQ(r.status, simplex::SolveStatus::kOptimal);
    EXPECT_NEAR(r.objective, ref, 1e-7 * (1.0 + std::abs(ref)));
    const auto& pk = r.stats.device_stats.per_kernel;
    EXPECT_TRUE(pk.contains("sparse_ftran"));
    EXPECT_TRUE(pk.contains("sparse_btran"));
    EXPECT_TRUE(pk.contains("eta_apply"));
    // The dense-path eta kernels must NOT appear on the sparse variant.
    EXPECT_FALSE(pk.contains("eta_ftran"));
    EXPECT_FALSE(pk.contains("eta_btran_dot"));
  }
  {
    vgpu::Device dev(vgpu::gtx280_model());
    simplex::DeviceRevisedSimplex<float, simplex::SparseAt> solver(dev, opt);
    const auto r = solver.solve(problem);
    ASSERT_EQ(r.status, simplex::SolveStatus::kOptimal);
    EXPECT_NEAR(r.objective, ref, 1e-3 * (1.0 + std::abs(ref)));
  }
}

// The sparse eta kernels only touch the eta's support: the modeled
// byte traffic of the sparse product-form path must come in under the
// dense-eta device path on the same instance.
TEST(DeviceSparseBasis, SparseEtaKernelsCostLessThanDenseEtas) {
  const auto problem = lp::random_sparse_lp(
      {.rows = 48, .cols = 192, .density = 0.05, .seed = 21});
  simplex::SolverOptions opt;
  opt.basis = simplex::BasisScheme::kProductForm;
  vgpu::Device dev_sparse(vgpu::gtx280_model());
  simplex::SparseRevisedSimplex<double> sparse_solver(dev_sparse, opt);
  const auto rs = sparse_solver.solve(problem);
  ASSERT_EQ(rs.status, simplex::SolveStatus::kOptimal);
  const auto& pk = rs.stats.device_stats.per_kernel;
  ASSERT_TRUE(pk.contains("eta_apply"));
  const auto& sparse_eta = pk.at("eta_apply");
  // Dense-path eta applies on the same problem via the dense At engine.
  vgpu::Device dev_dense(vgpu::gtx280_model());
  simplex::DeviceRevisedSimplex<double> dense_solver(dev_dense, opt);
  const auto rd = dense_solver.solve(problem);
  ASSERT_EQ(rd.status, simplex::SolveStatus::kOptimal);
  const auto& pkd = rd.stats.device_stats.per_kernel;
  ASSERT_TRUE(pkd.contains("eta_ftran"));
  const double dense_eta_bytes =
      pkd.at("eta_ftran").bytes + pkd.at("eta_btran_dot").bytes;
  const double sparse_eta_bytes = sparse_eta.bytes;
  EXPECT_LT(sparse_eta_bytes, dense_eta_bytes);
}

}  // namespace
}  // namespace gs
