// Fused-vs-reference equivalence for the device engine
// (SolverOptions::fused_iteration, see DESIGN/OBSERVABILITY docs).
//
// The fused path collapses the pricing chain, the FTRAN/ratio chain and
// the rank-1 B^-1 update into single launches and replaces the scalar
// PCIe ping-pong with one packed descriptor readback. None of that may
// change the algorithm: these tests record both paths with the decision
// recorder and require the pivot streams to align with ZERO divergence —
// pivot for pivot, in both precisions, under every pricing rule — and the
// launch/transfer budget the fusion exists to buy.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/generators.hpp"
#include "lp/problem.hpp"
#include "record/record.hpp"
#include "simplex/device_revised.hpp"
#include "vgpu/machine_model.hpp"

namespace gs::simplex {
namespace {

struct Run {
  SolveResult result;
  record::Recording recording;
};

template <typename Real, template <typename> class At = DenseAt>
Run run_recorded(const lp::LpProblem& problem, bool fused, PricingRule rule,
                 std::size_t max_iterations = 50000) {
  vgpu::Device dev(vgpu::gtx280_model());
  record::Recorder rec;
  SolverOptions opt;
  opt.fused_iteration = fused;
  opt.pricing = rule;
  opt.max_iterations = max_iterations;
  opt.recorder = &rec;
  DeviceRevisedSimplex<Real, At> solver(dev, opt);
  Run out;
  out.result = solver.solve(problem);
  out.recording = rec.recording();
  return out;
}

template <typename Real, template <typename> class At = DenseAt>
void expect_identical_decisions(const lp::LpProblem& problem,
                                PricingRule rule,
                                std::size_t max_iterations = 50000) {
  const Run fused = run_recorded<Real, At>(problem, true, rule,
                                           max_iterations);
  const Run ref = run_recorded<Real, At>(problem, false, rule,
                                         max_iterations);
  const record::DiffResult d = record::diff(fused.recording, ref.recording);
  ASSERT_TRUE(d.comparable) << d.describe();
  EXPECT_FALSE(d.diverged) << d.describe();
  EXPECT_EQ(fused.recording.records.size(), ref.recording.records.size());
  const auto pivots = [](const record::Recording& rec) {
    std::size_t n = 0;
    for (const auto& r : rec.records)
      if (r.kind == record::RecordKind::kPivot) ++n;
    return n;
  };
  EXPECT_EQ(d.common, pivots(ref.recording));
  EXPECT_EQ(fused.result.status, ref.result.status);
  EXPECT_EQ(fused.result.stats.iterations, ref.result.stats.iterations);
  if (fused.result.optimal()) {
    // Same pivot path in the same precision: bit-identical optimum.
    EXPECT_EQ(fused.result.objective, ref.result.objective);
  }
}

constexpr PricingRule kAllRules[] = {PricingRule::kHybrid,
                                     PricingRule::kDantzig,
                                     PricingRule::kBland, PricingRule::kDevex};

TEST(Fusion, PivotStreamsIdenticalAcrossRulesDouble) {
  for (const std::uint64_t seed : {1ull, 5ull, 11ull}) {
    const auto problem =
        lp::random_dense_lp({.rows = 24, .cols = 24, .seed = seed});
    for (const PricingRule rule : kAllRules) {
      SCOPED_TRACE(testing::Message() << "seed " << seed << " rule "
                                      << to_string(rule));
      expect_identical_decisions<double>(problem, rule);
    }
  }
}

TEST(Fusion, PivotStreamsIdenticalAcrossRulesFloat) {
  for (const std::uint64_t seed : {1ull, 5ull, 11ull}) {
    const auto problem =
        lp::random_dense_lp({.rows = 24, .cols = 24, .seed = seed});
    for (const PricingRule rule : kAllRules) {
      SCOPED_TRACE(testing::Message() << "seed " << seed << " rule "
                                      << to_string(rule));
      expect_identical_decisions<float>(problem, rule);
    }
  }
}

TEST(Fusion, PivotStreamsIdenticalWithPhaseOne) {
  // Equality rows force artificials: covers phase 1, the drive-out path
  // (which stays on the reference kernels) and the phase transition.
  const auto problem = lp::transportation(5, 6, 17);
  expect_identical_decisions<double>(problem, PricingRule::kHybrid);
  expect_identical_decisions<float>(problem, PricingRule::kHybrid);
}

TEST(Fusion, PivotStreamsIdenticalOnMultiBlockSweep) {
  // n_aug = 300 + 150 > one 256-lane block: exercises the fused pricing's
  // cross-block combine launch against the primitives' two-pass argmin.
  const auto problem =
      lp::random_dense_lp({.rows = 150, .cols = 300, .seed = 3});
  expect_identical_decisions<double>(problem, PricingRule::kDantzig, 12);
  expect_identical_decisions<double>(problem, PricingRule::kBland, 12);
}

TEST(Fusion, PivotStreamsIdenticalSparsePolicy) {
  const auto problem =
      lp::random_sparse_lp({.rows = 32, .cols = 64, .density = 0.2,
                            .seed = 7});
  expect_identical_decisions<double, SparseAt>(problem, PricingRule::kHybrid);
  expect_identical_decisions<float, SparseAt>(problem, PricingRule::kDevex);
}

TEST(Fusion, RefactorPeriodKeptIdentical) {
  // Periodic reinversion interleaves with fused iterations; the refactor
  // events must land on the same iterations in both paths.
  const auto problem =
      lp::random_dense_lp({.rows = 32, .cols = 32, .seed = 9});
  vgpu::Device dev_a(vgpu::gtx280_model()), dev_b(vgpu::gtx280_model());
  record::Recorder rec_a, rec_b;
  SolverOptions opt;
  opt.refactor_period = 4;
  opt.recorder = &rec_a;
  DeviceRevisedSimplex<double> fused(dev_a, opt);
  const SolveResult ra = fused.solve(problem);
  opt.fused_iteration = false;
  opt.recorder = &rec_b;
  DeviceRevisedSimplex<double> reference(dev_b, opt);
  const SolveResult rb = reference.solve(problem);
  ASSERT_EQ(ra.status, SolveStatus::kOptimal);
  ASSERT_EQ(rb.status, SolveStatus::kOptimal);
  const record::DiffResult d = record::diff(rec_a.recording(),
                                            rec_b.recording());
  ASSERT_TRUE(d.comparable) << d.describe();
  EXPECT_FALSE(d.diverged) << d.describe();
}

TEST(Fusion, LaunchAndTransferBudgetHeld) {
  // ISSUE budget: a seeded m = 96 solve must average <= 6 kernel launches
  // per iteration (5 without Devex) and exactly one d2h per iteration
  // plus a small solve-constant (descriptor fetch; objective/extraction
  // reads at the phase boundaries).
  const auto problem = lp::random_dense_lp({.rows = 96, .cols = 96, .seed = 3});
  vgpu::Device dev(vgpu::gtx280_model());
  DeviceRevisedSimplex<double> solver(dev);
  const SolveResult r = solver.solve(problem);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  ASSERT_GT(r.stats.iterations, 0u);
  const auto& ds = r.stats.device_stats;
  EXPECT_LE(static_cast<double>(ds.kernel_launches),
            6.0 * static_cast<double>(r.stats.iterations));
  EXPECT_LE(ds.d2h_count, r.stats.iterations + 8);
  // Device-resident pivot state: the iteration loop uploads NOTHING (all
  // H2D happens during workspace setup, before the first launch).
  const std::size_t setup_h2d =
      (96 /*diag*/ + 96 /*beta*/ + 96 /*b*/ + 96 /*cb*/) * sizeof(double) *
          2 /*two phases reload c/cb at most*/ +
      (96 * 192 + 4 * 192) * sizeof(double) /*A^T, c, mask, scores*/;
  EXPECT_LT(ds.h2d_bytes, setup_h2d);
}

}  // namespace
}  // namespace gs::simplex
