// Unit tests for the presolve reductions and postsolve recovery.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/generators.hpp"
#include "lp/presolve.hpp"
#include "simplex/solver.hpp"

namespace gs::lp {
namespace {

TEST(Presolve, SingletonRowBecomesBound) {
  LpProblem p(Objective::kMinimize, "singleton");
  const auto x = p.add_variable("x", -1.0);
  const auto y = p.add_variable("y", -1.0);
  p.add_constraint("sx", {{x, 2.0}}, RowSense::kLe, 8.0);  // x <= 4
  p.add_constraint("c", {{x, 1.0}, {y, 1.0}}, RowSense::kLe, 6.0);
  const PresolveResult r = presolve(p);
  ASSERT_EQ(r.status, PresolveStatus::kReduced);
  EXPECT_EQ(r.rows_removed, 1u);
  ASSERT_EQ(r.reduced.num_constraints(), 1u);
  EXPECT_DOUBLE_EQ(r.reduced.variable(0).upper, 4.0);
}

TEST(Presolve, NegativeCoefficientSingletonFlipsSense) {
  LpProblem p(Objective::kMinimize, "neg_singleton");
  const auto x = p.add_variable("x", 1.0, -kInf, kInf);
  const auto y = p.add_variable("y", 1.0);
  p.add_constraint("sx", {{x, -2.0}}, RowSense::kLe, 6.0);  // x >= -3
  p.add_constraint("c", {{x, 1.0}, {y, 1.0}}, RowSense::kGe, 0.0);
  const PresolveResult r = presolve(p);
  ASSERT_EQ(r.status, PresolveStatus::kReduced);
  EXPECT_DOUBLE_EQ(r.reduced.variable(0).lower, -3.0);
}

TEST(Presolve, EqualitySingletonCascadesToFullSolve) {
  LpProblem p(Objective::kMinimize, "eq_singleton");
  const auto x = p.add_variable("x", 5.0);
  const auto y = p.add_variable("y", 1.0);
  p.add_constraint("fix", {{x, 1.0}}, RowSense::kEq, 3.0);
  p.add_constraint("c", {{x, 2.0}, {y, 1.0}}, RowSense::kLe, 10.0);
  // x is fixed at 3 and substituted; the remaining row becomes the
  // singleton y <= 4, converts to a bound, and y (now an empty column with
  // positive cost) pins to its lower bound 0: fully solved, z = 15.
  const PresolveResult r = presolve(p);
  ASSERT_EQ(r.status, PresolveStatus::kSolved);
  EXPECT_EQ(r.vars_removed, 2u);
  EXPECT_DOUBLE_EQ(r.objective_offset, 15.0);
  const auto x_full = r.recover(std::vector<double>{});
  EXPECT_DOUBLE_EQ(x_full[x], 3.0);
  EXPECT_DOUBLE_EQ(x_full[y], 0.0);
  EXPECT_TRUE(p.is_feasible(x_full));
}

TEST(Presolve, ConflictingSingletonsAreInfeasible) {
  LpProblem p(Objective::kMinimize, "conflict");
  const auto x = p.add_variable("x", 1.0);
  p.add_constraint("lo", {{x, 1.0}}, RowSense::kGe, 5.0);
  p.add_constraint("hi", {{x, 1.0}}, RowSense::kLe, 2.0);
  EXPECT_EQ(presolve(p).status, PresolveStatus::kInfeasible);
}

TEST(Presolve, EmptyRowFeasibilityChecked) {
  LpProblem p(Objective::kMinimize, "empty_rows");
  const auto x = p.add_variable("x", 1.0);
  p.add_constraint("ok", {}, RowSense::kLe, 1.0);    // 0 <= 1: drop
  p.add_constraint("use", {{x, 1.0}}, RowSense::kGe, 1.0);
  const PresolveResult ok = presolve(p);
  EXPECT_NE(ok.status, PresolveStatus::kInfeasible);

  LpProblem q(Objective::kMinimize, "bad_empty");
  (void)q.add_variable("x", 1.0);
  q.add_constraint("bad", {}, RowSense::kGe, 1.0);  // 0 >= 1: infeasible
  EXPECT_EQ(presolve(q).status, PresolveStatus::kInfeasible);
}

TEST(Presolve, EmptyColumnPinnedByCostSign) {
  LpProblem p(Objective::kMinimize, "empty_col");
  const auto used = p.add_variable("used", 1.0);
  const auto pos = p.add_variable("free_pos_cost", 2.0, 1.0, 5.0);   // -> 1
  const auto neg = p.add_variable("free_neg_cost", -3.0, 0.0, 4.0);  // -> 4
  p.add_constraint("c", {{used, 1.0}}, RowSense::kGe, 2.0);
  // The singleton row turns into `used >= 2`; `used` then becomes an empty
  // column and pins to 2. Everything is eliminated: z = 2 + 2 - 12 = -8.
  const PresolveResult r = presolve(p);
  ASSERT_EQ(r.status, PresolveStatus::kSolved);
  EXPECT_EQ(r.vars_removed, 3u);
  EXPECT_DOUBLE_EQ(r.objective_offset, -8.0);
  const auto x = r.recover(std::vector<double>{});
  EXPECT_DOUBLE_EQ(x[used], 2.0);
  EXPECT_DOUBLE_EQ(x[pos], 1.0);
  EXPECT_DOUBLE_EQ(x[neg], 4.0);
}

TEST(Presolve, EmptyColumnWithOpenBoundIsUnbounded) {
  LpProblem p(Objective::kMinimize, "unbounded_col");
  (void)p.add_variable("x", -1.0);  // min -x, x unconstrained above
  EXPECT_EQ(presolve(p).status, PresolveStatus::kUnbounded);
}

TEST(Presolve, FullyEliminatedProblemIsSolved) {
  LpProblem p(Objective::kMaximize, "trivial");
  (void)p.add_variable("x", 3.0, 0.0, 2.0);  // empty col, max -> upper
  const PresolveResult r = presolve(p);
  ASSERT_EQ(r.status, PresolveStatus::kSolved);
  EXPECT_DOUBLE_EQ(r.objective_offset, 6.0);
  const auto x = r.recover(std::vector<double>{});
  EXPECT_DOUBLE_EQ(x[0], 2.0);
}

TEST(Presolve, CascadesToFixpoint) {
  // Fixing x via an equality singleton turns the second row into a
  // singleton on y, which fixes y, which empties the third row.
  LpProblem p(Objective::kMinimize, "cascade");
  const auto x = p.add_variable("x", 1.0);
  const auto y = p.add_variable("y", 1.0);
  const auto z = p.add_variable("z", 1.0);
  p.add_constraint("r1", {{x, 1.0}}, RowSense::kEq, 2.0);
  p.add_constraint("r2", {{x, 1.0}, {y, 1.0}}, RowSense::kEq, 5.0);
  p.add_constraint("r3", {{x, 1.0}, {y, 1.0}}, RowSense::kLe, 9.0);
  p.add_constraint("r4", {{z, 1.0}}, RowSense::kGe, 1.0);
  // x=2 fixes y=3 through r2; r3 empties (satisfied); r4 bounds z >= 1 and
  // z pins there (positive cost). Fully solved: z* = 2 + 3 + 1 = 6.
  const PresolveResult r = presolve(p);
  ASSERT_EQ(r.status, PresolveStatus::kSolved);
  EXPECT_DOUBLE_EQ(r.objective_offset, 6.0);
  EXPECT_GE(r.passes, 2u);
  const auto point = r.recover(std::vector<double>{});
  EXPECT_DOUBLE_EQ(point[x], 2.0);
  EXPECT_DOUBLE_EQ(point[y], 3.0);
  EXPECT_DOUBLE_EQ(point[z], 1.0);
  EXPECT_TRUE(p.is_feasible(point));
}

class PresolveEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PresolveEquivalence, ReducedProblemHasSameOptimum) {
  // Dense instances plus a sprinkle of fixed variables and singleton rows.
  auto base = random_dense_lp({.rows = 12, .cols = 10, .seed = GetParam()});
  LpProblem p(base.objective(), "augmented");
  for (const auto& v : base.variables()) {
    p.add_variable(v.name, v.objective_coef, v.lower, v.upper);
  }
  const auto fixed = p.add_variable("fixed", 2.0, 1.5, 1.5);
  const auto capped = p.add_variable("capped", -1.0);
  for (std::size_t i = 0; i < base.num_constraints(); ++i) {
    const auto& con = base.constraint(i);
    p.add_constraint(con.name, con.terms, con.sense, con.rhs);
  }
  p.add_constraint("cap", {{capped, 1.0}}, RowSense::kLe, 3.0);
  p.add_constraint("touch_fixed", {{fixed, 1.0}, {capped, 1.0}},
                   RowSense::kLe, 10.0);

  const auto direct = simplex::solve(p, simplex::Engine::kHostRevised);
  ASSERT_EQ(direct.status, simplex::SolveStatus::kOptimal);

  const PresolveResult r = presolve(p);
  ASSERT_EQ(r.status, PresolveStatus::kReduced);
  EXPECT_LT(r.reduced.num_variables(), p.num_variables());
  const auto reduced_solve =
      simplex::solve(r.reduced, simplex::Engine::kHostRevised);
  ASSERT_EQ(reduced_solve.status, simplex::SolveStatus::kOptimal);
  EXPECT_NEAR(r.recover_objective(reduced_solve.objective), direct.objective,
              1e-7 * (1.0 + std::abs(direct.objective)));
  const auto x_full = r.recover(reduced_solve.x);
  EXPECT_TRUE(p.is_feasible(x_full, 1e-6));
  EXPECT_NEAR(p.objective_value(x_full), direct.objective,
              1e-7 * (1.0 + std::abs(direct.objective)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresolveEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Presolve, NoopOnAlreadyTightProblem) {
  const auto p = random_dense_lp({.rows = 6, .cols = 6, .seed = 9});
  const PresolveResult r = presolve(p);
  ASSERT_EQ(r.status, PresolveStatus::kReduced);
  EXPECT_EQ(r.rows_removed, 0u);
  EXPECT_EQ(r.vars_removed, 0u);
  EXPECT_EQ(r.reduced.num_variables(), p.num_variables());
  EXPECT_EQ(r.reduced.num_constraints(), p.num_constraints());
}

}  // namespace
}  // namespace gs::lp
