// Unit tests for the virtual-GPU substrate: machine models, thread pool,
// device accounting, buffers, and the data-parallel primitives.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <numeric>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"
#include "vgpu/machine_model.hpp"
#include "vgpu/primitives.hpp"
#include "vgpu/thread_pool.hpp"

namespace gs::vgpu {
namespace {

// ---------------------------------------------------------------- models

TEST(MachineModel, KernelTimeIncludesLaunchOverhead) {
  const MachineModel m = gtx280_model();
  EXPECT_DOUBLE_EQ(m.kernel_seconds(0, 0, 1, 8), m.launch_overhead_s);
}

TEST(MachineModel, KernelTimeMonotonicInWork) {
  const MachineModel m = gtx280_model();
  const double small = m.kernel_seconds(1e6, 1e6, 1 << 20, 8);
  const double big = m.kernel_seconds(1e9, 1e9, 1 << 20, 8);
  EXPECT_GT(big, small);
}

TEST(MachineModel, OccupancyPenalizesSmallLaunches) {
  const MachineModel m = gtx280_model();
  const double starved = m.kernel_seconds(1e6, 1e6, 32, 8);
  const double saturated = m.kernel_seconds(1e6, 1e6, m.saturation_threads, 8);
  EXPECT_GT(starved, saturated);
}

TEST(MachineModel, SinglePrecisionIsFasterOnComputeBoundWork) {
  const MachineModel m = gtx280_model();
  // Pure-compute kernel (no bytes): SP peak >> DP peak on GT200.
  const double sp = m.kernel_seconds(1e9, 0, m.saturation_threads, 4);
  const double dp = m.kernel_seconds(1e9, 0, m.saturation_threads, 8);
  EXPECT_LT(sp, dp);
}

TEST(MachineModel, TransferHasLatencyFloor) {
  const MachineModel m = gtx280_model();
  EXPECT_GE(m.transfer_seconds(1), m.xfer_latency_s);
  EXPECT_GT(m.transfer_seconds(1 << 24), m.transfer_seconds(1));
}

TEST(MachineModel, HostModelHasNoTransferCost) {
  const MachineModel m = cpu2009_model();
  EXPECT_DOUBLE_EQ(m.transfer_seconds(1 << 20), 0.0);
  EXPECT_DOUBLE_EQ(m.launch_overhead_s, 0.0);
}

TEST(MachineModel, GpuHasBandwidthAdvantageOverHost) {
  // The ratio that produces the paper's large-LP speedup.
  EXPECT_GT(gtx280_model().mem_gbps / cpu2009_model().mem_gbps, 5.0);
}

TEST(MachineModel, PresetsAreOrderedByGeneration) {
  EXPECT_LT(gtx280_model().peak_gflops_sp, gtx570_model().peak_gflops_sp);
  EXPECT_LT(gtx570_model().peak_gflops_sp, titan_model().peak_gflops_sp);
}

// ------------------------------------------------------------ thread pool

class ThreadPoolTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadPoolTest, ExecutesEveryChunkExactlyOnce) {
  ThreadPool pool(GetParam());
  std::vector<std::atomic<int>> hits(257);
  pool.run_chunks(257, [&](std::size_t c) { ++hits[c]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(ThreadPoolTest, SupportsRepeatedJobs) {
  ThreadPool pool(GetParam());
  std::atomic<long> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.run_chunks(64, [&](std::size_t c) { total += long(c); });
  }
  EXPECT_EQ(total.load(), 10 * (63 * 64 / 2));
}

TEST_P(ThreadPoolTest, ZeroChunksIsANoop) {
  ThreadPool pool(GetParam());
  bool ran = false;
  pool.run_chunks(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ThreadPoolTest,
                         ::testing::Values(1, 2, 4));

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.worker_count(), 1u);
}

// Stress the off-inline path: with workers > 1 every run_chunks goes
// through the mutex/condvar dispatch, so this exercises concurrent chunk
// claiming, the completion barrier, and pool reuse across many launches
// back-to-back. (Run under -DGS_SANITIZE=thread this is the TSan probe
// for the pool internals.)
TEST(ThreadPool, StressConcurrentDispatchAndReuse) {
  ThreadPool pool(4);
  ASSERT_GT(pool.worker_count(), 1u);
  std::vector<std::atomic<int>> slots(97);
  std::atomic<int> inflight{0};
  std::atomic<bool> overlap_ok{true};
  for (int round = 1; round <= 200; ++round) {
    pool.run_chunks(slots.size(), [&](std::size_t c) {
      const int now = ++inflight;
      if (now < 1) overlap_ok = false;
      slots[c] += 1;
      --inflight;
    });
    // Completion barrier: when run_chunks returns, every chunk of this
    // round has executed exactly once and no worker is still in-flight.
    EXPECT_EQ(inflight.load(), 0) << "round " << round;
    for (const auto& s : slots) ASSERT_EQ(s.load(), round);
  }
  EXPECT_TRUE(overlap_ok.load());
}

// Alternating wide and narrow jobs: narrow jobs take the inline
// single-chunk shortcut, wide ones re-enter the sleeping pool — the
// generation counter must keep the two from cross-talking.
TEST(ThreadPool, ReuseAcrossMixedJobShapes) {
  ThreadPool pool(3);
  long checksum = 0;
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round) {
    const std::size_t chunks = (round % 2 == 0) ? 512 : 1;
    pool.run_chunks(chunks, [&](std::size_t c) { total += long(c) + 1; });
    checksum += (round % 2 == 0) ? (512L * 513L) / 2 : 1L;
    ASSERT_EQ(total.load(), checksum);
  }
}

// ---------------------------------------------------------------- device

TEST(Device, LaunchCoversExactIndexRange) {
  Device dev(gtx280_model());
  std::vector<int> hits(1000, 0);
  dev.parallel_for("cover", hits.size(), {}, [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Device, EmptyLaunchChargesNothing) {
  // A zero-block grid never reaches the device (the CUDA driver rejects
  // it before submission), so an empty launch must not pay overhead —
  // a zero-row LP edge must not inflate kernel_launches.
  Device dev(gtx280_model());
  dev.parallel_for("empty", 0, {1e6, 1e6, 8}, [](std::size_t) {});
  dev.launch_blocks("empty_blocks", 0, Device::kBlockSize, {1e6, 1e6, 8},
                    [](std::size_t, std::size_t, std::size_t) {});
  EXPECT_EQ(dev.stats().kernel_launches, 0u);
  EXPECT_DOUBLE_EQ(dev.stats().kernel_seconds, 0.0);
  EXPECT_DOUBLE_EQ(dev.stats().total_flops, 0.0);
  EXPECT_TRUE(dev.stats().per_kernel.empty());
}

TEST(Device, StatsAccumulatePerKernel) {
  Device dev(gtx280_model());
  dev.parallel_for("k1", 10, {100.0, 200.0, 8}, [](std::size_t) {});
  dev.parallel_for("k1", 10, {100.0, 200.0, 8}, [](std::size_t) {});
  dev.parallel_for("k2", 10, {50.0, 10.0, 8}, [](std::size_t) {});
  const DeviceStats& s = dev.stats();
  EXPECT_EQ(s.kernel_launches, 3u);
  EXPECT_DOUBLE_EQ(s.total_flops, 250.0);
  ASSERT_TRUE(s.per_kernel.contains("k1"));
  EXPECT_EQ(s.per_kernel.at("k1").launches, 2u);
  EXPECT_DOUBLE_EQ(s.per_kernel.at("k1").flops, 200.0);
}

TEST(Device, ResetClearsStats) {
  Device dev(gtx280_model());
  dev.parallel_for("k", 10, {1.0, 1.0, 8}, [](std::size_t) {});
  dev.reset_stats();
  EXPECT_EQ(dev.stats().kernel_launches, 0u);
  EXPECT_DOUBLE_EQ(dev.sim_seconds(), 0.0);
}

TEST(Device, SimTimeGrowsWithLaunches) {
  Device dev(gtx280_model());
  dev.parallel_for("k", 256, {1e6, 1e6, 8}, [](std::size_t) {});
  const double t1 = dev.sim_seconds();
  dev.parallel_for("k", 256, {1e6, 1e6, 8}, [](std::size_t) {});
  EXPECT_GT(dev.sim_seconds(), t1);
}

// ---------------------------------------------------------------- buffer

TEST(DeviceBuffer, UploadDownloadRoundTrip) {
  Device dev(gtx280_model());
  std::vector<double> host{1.0, 2.0, 3.0, 4.0};
  DeviceBuffer<double> buf(dev, std::span<const double>(host));
  EXPECT_EQ(buf.to_host(), host);
}

TEST(DeviceBuffer, ZeroInitialized) {
  Device dev(gtx280_model());
  DeviceBuffer<double> buf(dev, 16);
  for (double v : buf.to_host()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(DeviceBuffer, TransfersAreAccounted) {
  Device dev(gtx280_model());
  std::vector<float> host(100, 1.0f);
  DeviceBuffer<float> buf(dev, std::span<const float>(host));
  EXPECT_EQ(dev.stats().h2d_bytes, 100 * sizeof(float));
  EXPECT_EQ(dev.stats().h2d_count, 1u);
  (void)buf.to_host();
  EXPECT_EQ(dev.stats().d2h_bytes, 100 * sizeof(float));
  EXPECT_GT(dev.stats().d2h_seconds, 0.0);
}

TEST(DeviceBuffer, ScalarValueOps) {
  Device dev(gtx280_model());
  DeviceBuffer<double> buf(dev, 4);
  buf.upload_value(2, 7.5);
  EXPECT_DOUBLE_EQ(buf.download_value(2), 7.5);
  EXPECT_THROW((void)buf.download_value(4), Error);
  EXPECT_THROW(buf.upload_value(4, 0.0), Error);
}

TEST(DeviceBuffer, PartialUploadWithOffset) {
  Device dev(gtx280_model());
  DeviceBuffer<int> buf(dev, 5);
  const std::vector<int> part{9, 8};
  buf.upload(part, 2);
  const auto out = buf.to_host();
  EXPECT_EQ(out[2], 9);
  EXPECT_EQ(out[3], 8);
  EXPECT_EQ(out[0], 0);
}

TEST(DeviceBuffer, OutOfRangeUploadThrows) {
  Device dev(gtx280_model());
  DeviceBuffer<int> buf(dev, 2);
  const std::vector<int> three{1, 2, 3};
  EXPECT_THROW(buf.upload(three), Error);
}

TEST(DeviceBuffer, OffsetOverflowIsRejected) {
  // offset + host.size() wraps around SIZE_MAX; the naive check would
  // pass and memcpy into the weeds. The hardened check compares against
  // remaining capacity instead.
  Device dev(gtx280_model());
  DeviceBuffer<int> buf(dev, 4);
  const std::vector<int> two{1, 2};
  std::vector<int> sink(2);
  const std::size_t huge = std::numeric_limits<std::size_t>::max() - 1;
  EXPECT_THROW(buf.upload(two, huge), Error);
  EXPECT_THROW(buf.download(sink, huge), Error);
  EXPECT_THROW(buf.upload(two, 3), Error);  // offset in range, tail is not
  EXPECT_THROW(buf.download(sink, 3), Error);
}

TEST(DeviceBuffer, ZeroByteCopiesAreNotCharged) {
  Device dev(gtx280_model());
  DeviceBuffer<double> buf(dev, 4);
  const std::size_t h2d0 = dev.stats().h2d_count;
  const std::size_t d2h0 = dev.stats().d2h_count;
  buf.upload(std::span<const double>{});
  std::span<double> empty;
  buf.download(empty);
  buf.upload(std::span<const double>{}, 4);  // offset == size, empty: legal
  EXPECT_EQ(dev.stats().h2d_count, h2d0);
  EXPECT_EQ(dev.stats().d2h_count, d2h0);
  EXPECT_EQ(dev.stats().h2d_bytes, 0u);
  EXPECT_EQ(dev.stats().d2h_bytes, 0u);
}

TEST(Device, ZeroByteAccountedTransfersAreUncharged) {
  // Regression: the sparse compaction path (indices_where with no hits)
  // used to call account_d2h(0), which charged the full PCIe latency
  // floor and bumped d2h_count for a transfer that never reaches the
  // driver. Zero-byte accounting must now be a no-op, matching the
  // DeviceBuffer empty upload/download behavior.
  Device dev(gtx280_model());
  dev.account_h2d(0);
  dev.account_d2h(0);
  EXPECT_EQ(dev.stats().h2d_count, 0u);
  EXPECT_EQ(dev.stats().d2h_count, 0u);
  EXPECT_EQ(dev.stats().h2d_seconds, 0.0);
  EXPECT_EQ(dev.stats().d2h_seconds, 0.0);
  // The end-to-end site: an all-miss compaction returns no indices and
  // must leave the transfer ledger untouched.
  std::vector<double> host{1.0, 2.0, 3.0, 4.0};
  DeviceBuffer<double> buf(dev, std::span<const double>(host));
  const std::size_t d2h0 = dev.stats().d2h_count;
  const double d2h_s0 = dev.stats().d2h_seconds;
  const auto none = indices_where(buf, [](double v) { return v < 0.0; });
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(dev.stats().d2h_count, d2h0);
  EXPECT_EQ(dev.stats().d2h_seconds, d2h_s0);
}

TEST(DeviceBuffer, CopyFromIsDeviceSide) {
  Device dev(gtx280_model());
  std::vector<double> host{1, 2, 3};
  DeviceBuffer<double> a(dev, std::span<const double>(host));
  DeviceBuffer<double> b(dev, 3);
  const std::size_t h2d_before = dev.stats().h2d_count;
  b.copy_from(a);
  EXPECT_EQ(dev.stats().h2d_count, h2d_before);  // no PCIe traffic
  EXPECT_EQ(b.to_host(), host);
}

// ------------------------------------------------------------ primitives

class PrimitiveSizes : public ::testing::TestWithParam<std::size_t> {
 protected:
  Device dev_{gtx280_model()};
};

TEST_P(PrimitiveSizes, ReduceSumMatchesSerial) {
  const std::size_t n = GetParam();
  Xoshiro256 rng(n + 1);
  std::vector<double> host(n);
  for (auto& v : host) v = rng.uniform(-1.0, 1.0);
  DeviceBuffer<double> buf(dev_, std::span<const double>(host));
  const double expect = std::accumulate(host.begin(), host.end(), 0.0);
  EXPECT_NEAR(reduce_sum(buf), expect, 1e-9 * (1.0 + n));
}

TEST_P(PrimitiveSizes, ArgminMatchesSerial) {
  const std::size_t n = GetParam();
  if (n == 0) return;
  Xoshiro256 rng(n + 2);
  std::vector<double> host(n);
  for (auto& v : host) v = rng.uniform(-10.0, 10.0);
  DeviceBuffer<double> buf(dev_, std::span<const double>(host));
  const auto r = argmin(buf);
  ASSERT_TRUE(r.found());
  const auto it = std::min_element(host.begin(), host.end());
  EXPECT_EQ(r.index, static_cast<std::size_t>(it - host.begin()));
  EXPECT_DOUBLE_EQ(r.value, *it);
}

TEST_P(PrimitiveSizes, ArgmaxMatchesSerial) {
  const std::size_t n = GetParam();
  if (n == 0) return;
  Xoshiro256 rng(n + 3);
  std::vector<double> host(n);
  for (auto& v : host) v = rng.uniform(-10.0, 10.0);
  DeviceBuffer<double> buf(dev_, std::span<const double>(host));
  const auto r = argmax(buf);
  const auto it = std::max_element(host.begin(), host.end());
  EXPECT_EQ(r.index, static_cast<std::size_t>(it - host.begin()));
}

TEST_P(PrimitiveSizes, InclusiveScanMatchesSerial) {
  const std::size_t n = GetParam();
  Xoshiro256 rng(n + 4);
  std::vector<double> host(n);
  for (auto& v : host) v = rng.uniform(0.0, 1.0);
  DeviceBuffer<double> in(dev_, std::span<const double>(host));
  DeviceBuffer<double> out(dev_, n);
  inclusive_scan(in, out);
  std::vector<double> expect(n);
  std::partial_sum(host.begin(), host.end(), expect.begin());
  const auto got = out.to_host();
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(got[i], expect[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrimitiveSizes,
                         ::testing::Values(0, 1, 2, 7, 255, 256, 257, 1000,
                                           4096));

TEST(Primitives, ArgminTieBreaksToLowestIndex) {
  Device dev(gtx280_model());
  std::vector<double> host{3.0, 1.0, 2.0, 1.0, 1.0};
  DeviceBuffer<double> buf(dev, std::span<const double>(host));
  EXPECT_EQ(argmin(buf).index, 1u);
}

TEST(Primitives, ArgminTieBreakAcrossBlocks) {
  Device dev(gtx280_model());
  std::vector<double> host(1000, 5.0);
  host[300] = -1.0;
  host[700] = -1.0;  // second block, same value
  DeviceBuffer<double> buf(dev, std::span<const double>(host));
  EXPECT_EQ(argmin(buf).index, 300u);
}

TEST(Primitives, FindFirstBelowFindsLowestIndex) {
  Device dev(gtx280_model());
  std::vector<double> host(600, 1.0);
  host[400] = -0.5;
  host[123] = -0.2;
  DeviceBuffer<double> buf(dev, std::span<const double>(host));
  const auto r = find_first_below(buf, 0.0);
  ASSERT_TRUE(r.found());
  EXPECT_EQ(r.index, 123u);
  EXPECT_DOUBLE_EQ(r.value, -0.2);
}

TEST(Primitives, FindFirstBelowReportsMiss) {
  Device dev(gtx280_model());
  std::vector<double> host(100, 1.0);
  DeviceBuffer<double> buf(dev, std::span<const double>(host));
  EXPECT_FALSE(find_first_below(buf, 0.0).found());
}

TEST(Primitives, FillAndIota) {
  Device dev(gtx280_model());
  DeviceBuffer<double> buf(dev, 100);
  fill(buf, 2.5);
  for (double v : buf.to_host()) EXPECT_DOUBLE_EQ(v, 2.5);
  iota(buf, 10.0);
  const auto out = buf.to_host();
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], 10.0 + double(i));
  }
}

TEST(Primitives, CountIfAndIndicesWhere) {
  Device dev(gtx280_model());
  std::vector<double> host(500);
  for (std::size_t i = 0; i < host.size(); ++i) host[i] = double(i % 5);
  DeviceBuffer<double> buf(dev, std::span<const double>(host));
  const auto is_zero = [](double v) { return v == 0.0; };
  EXPECT_EQ(count_if(buf, is_zero), 100u);
  const auto idx = indices_where(buf, is_zero);
  ASSERT_EQ(idx.size(), 100u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 5u);
  EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
}

TEST(Primitives, ResultsIndependentOfWorkerCount) {
  // Determinism requirement: the same bits regardless of parallelism.
  std::vector<float> host(3000);
  Xoshiro256 rng(99);
  for (auto& v : host) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  Device dev1(gtx280_model(), 1);
  Device dev4(gtx280_model(), 4);
  DeviceBuffer<float> b1(dev1, std::span<const float>(host));
  DeviceBuffer<float> b4(dev4, std::span<const float>(host));
  EXPECT_EQ(reduce_sum(b1), reduce_sum(b4));
  EXPECT_EQ(argmin(b1).index, argmin(b4).index);
}

TEST(Primitives, ScalarReadbacksAreCharged) {
  Device dev(gtx280_model());
  std::vector<double> host(100, 1.0);
  DeviceBuffer<double> buf(dev, std::span<const double>(host));
  const std::size_t before = dev.stats().d2h_count;
  (void)reduce_sum(buf);
  EXPECT_GT(dev.stats().d2h_count, before);
}

}  // namespace
}  // namespace gs::vgpu
