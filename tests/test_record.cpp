// Recorder tests: gs-record-v1 binary round-trip, replay verification
// (clean round trip + injected-divergence detection at the exact index),
// diff semantics (agreement, the crafted float/double divergence,
// incomparable headers), post-mortem dumps, recording coverage on all four
// engines, and the off-by-default bit-identity guarantee. These exercise
// exactly the API documented in OBSERVABILITY.md ("Recorder").
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "lp/generators.hpp"
#include "record/record.hpp"
#include "simplex/batch_revised.hpp"
#include "simplex/solver.hpp"
#include "support/error.hpp"

namespace {

using namespace gs;

lp::LpProblem tiny_lp() {
  return lp::random_dense_lp({.rows = 8, .cols = 8, .seed = 7});
}

/// The data/precision_tie.lp witness, built programmatically: objective
/// coefficients differ by 1e-10, far below float resolution. Double enters
/// x2 (reduced cost -1.0000000001); float sees a tie and the deterministic
/// lowest-index tie-break enters x1 — guaranteed divergence at pivot 0.
lp::LpProblem tie_lp() {
  lp::LpProblem p(lp::Objective::kMinimize, "precision_tie");
  const auto x1 = p.add_variable("x1", -1.0);
  const auto x2 = p.add_variable("x2", -1.0000000001);
  p.add_constraint("c1", {{x1, 1.0}}, lp::RowSense::kLe, 1.0);
  p.add_constraint("c2", {{x2, 1.0}}, lp::RowSense::kLe, 1.0);
  p.add_constraint("c3", {{x1, 1.0}, {x2, 1.0}}, lp::RowSense::kLe, 1.5);
  return p;
}

simplex::SolveResult solve_host_recorded(record::Recorder* rec,
                                         const lp::LpProblem& problem,
                                         simplex::SolverOptions opt = {}) {
  opt.recorder = rec;
  return simplex::HostRevisedSimplex(opt).solve(problem);
}

std::size_t count_pivots(const record::Recording& r) {
  std::size_t n = 0;
  for (const auto& d : r.records) {
    if (d.kind == record::RecordKind::kPivot) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------
// Binary format.
// ---------------------------------------------------------------------

TEST(RecordFormat, StreamRoundTripPreservesEverything) {
  record::Recorder rec;
  rec.set_seed(42);
  (void)solve_host_recorded(&rec, tiny_lp());
  const record::Recording& orig = rec.recording();
  ASSERT_FALSE(orig.records.empty());
  ASSERT_FALSE(orig.basis.empty());
  EXPECT_EQ(orig.header.seed, 42u);
  EXPECT_EQ(orig.header.status, "optimal");
  EXPECT_EQ(orig.header.total_records, orig.records.size());

  std::stringstream buf;
  orig.write(buf);
  const record::Recording back = record::Recording::read(buf);
  EXPECT_EQ(back.header, orig.header);
  EXPECT_EQ(back.records, orig.records);
  EXPECT_EQ(back.basis, orig.basis);
}

TEST(RecordFormat, IdenticalRunsGiveByteIdenticalFiles) {
  record::Recorder a, b;
  (void)solve_host_recorded(&a, tiny_lp());
  (void)solve_host_recorded(&b, tiny_lp());
  std::stringstream sa, sb;
  a.recording().write(sa);
  b.recording().write(sb);
  EXPECT_EQ(sa.str(), sb.str()) << "format must carry no timestamps";
}

TEST(RecordFormat, ReadRejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW((void)record::Recording::read(empty), Error);
  std::stringstream junk("not a gsrec file at all");
  EXPECT_THROW((void)record::Recording::read(junk), Error);
  // A truncated valid stream must also be rejected, not misparsed.
  record::Recorder rec;
  (void)solve_host_recorded(&rec, tiny_lp());
  std::stringstream full;
  rec.recording().write(full);
  const std::string bytes = full.str();
  std::stringstream cut(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW((void)record::Recording::read(cut), Error);
}

TEST(RecordFormat, FileRoundTrip) {
  record::Recorder rec;
  (void)solve_host_recorded(&rec, tiny_lp());
  const auto path =
      (std::filesystem::temp_directory_path() / "gs_record_test.gsrec")
          .string();
  rec.recording().write_file(path);
  const record::Recording back = record::Recording::read_file(path);
  EXPECT_EQ(back.records, rec.recording().records);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------
// Engine coverage: all four engines stream comparable decision logs.
// ---------------------------------------------------------------------

TEST(RecordEngines, HostTableauDeviceAllRecord) {
  const auto problem = tiny_lp();

  record::Recorder host_rec;
  const auto host = solve_host_recorded(&host_rec, problem);
  ASSERT_TRUE(host.optimal());
  EXPECT_EQ(host_rec.recording().header.engine, "host-revised");
  EXPECT_EQ(host_rec.recording().header.real_bits, 64u);

  record::Recorder tab_rec;
  simplex::SolverOptions topt;
  topt.recorder = &tab_rec;
  ASSERT_TRUE(simplex::TableauSimplex(topt).solve(problem).optimal());
  EXPECT_EQ(tab_rec.recording().header.engine, "tableau");

  record::Recorder dev_rec, flt_rec;
  simplex::SolverOptions dopt, fopt;
  dopt.recorder = &dev_rec;
  fopt.recorder = &flt_rec;
  vgpu::Device dev_d(vgpu::gtx280_model());
  ASSERT_TRUE(simplex::DeviceRevisedSimplex<double>(dev_d, dopt)
                  .solve(problem)
                  .optimal());
  vgpu::Device dev_f(vgpu::gtx280_model());
  ASSERT_TRUE(simplex::DeviceRevisedSimplex<float>(dev_f, fopt)
                  .solve(problem)
                  .optimal());
  EXPECT_EQ(dev_rec.recording().header.engine, "device-revised<double>");
  EXPECT_EQ(dev_rec.recording().header.real_bits, 64u);
  EXPECT_EQ(flt_rec.recording().header.engine, "device-revised<float>");
  EXPECT_EQ(flt_rec.recording().header.real_bits, 32u);

  // Same problem -> same digest/shape in every header; every engine logged
  // at least one pivot, a final status, and a basis snapshot per row.
  const auto& h = host_rec.recording().header;
  for (const auto* r : {&host_rec, &tab_rec, &dev_rec, &flt_rec}) {
    const auto& rc = r->recording();
    EXPECT_EQ(rc.header.digest, h.digest);
    EXPECT_EQ(rc.header.m, h.m);
    EXPECT_EQ(rc.header.n, h.n);
    EXPECT_EQ(rc.header.status, "optimal");
    EXPECT_GE(count_pivots(rc), 1u);
    EXPECT_EQ(rc.basis.size(), rc.header.m);
  }

  // Host and device<double> run the same revised algorithm in the same
  // precision: their decision paths must agree pivot-for-pivot.
  const auto dd =
      record::diff(host_rec.recording(), dev_rec.recording());
  EXPECT_TRUE(dd.comparable);
  EXPECT_FALSE(dd.diverged) << dd.describe();
}

TEST(RecordEngines, BatchEngineRecordsPerLane) {
  std::vector<lp::LpProblem> batch;
  for (std::uint64_t k = 0; k < 3; ++k) {
    batch.push_back(lp::random_dense_lp({.rows = 6, .cols = 6, .seed = k + 1}));
  }
  record::Recorder rec;
  simplex::SolverOptions opt;
  opt.recorder = &rec;
  vgpu::Device dev(vgpu::gtx280_model());
  simplex::BatchRevisedSimplex<double> solver(dev, opt);
  const auto results = solver.solve(batch);
  for (const auto& r : results) ASSERT_TRUE(r.optimal());

  const auto& rc = rec.recording();
  EXPECT_EQ(rc.header.engine, "batch-revised<double>");
  EXPECT_EQ(rc.header.status, "optimal");
  // Every lane contributed pivots; per-lane iteration ordinals are
  // strictly increasing.
  for (std::uint32_t lane = 0; lane < 3; ++lane) {
    std::size_t pivots = 0;
    std::uint64_t last_iter = 0;
    for (const auto& d : rc.records) {
      if (d.kind != record::RecordKind::kPivot || d.lane != lane) continue;
      if (pivots > 0) EXPECT_GT(d.iteration, last_iter);
      last_iter = d.iteration;
      ++pivots;
    }
    EXPECT_EQ(pivots, results[lane].stats.iterations) << "lane " << lane;
  }
}

// ---------------------------------------------------------------------
// Replay verification.
// ---------------------------------------------------------------------

TEST(RecordReplay, CleanRoundTripVerifiesEveryDecision) {
  const auto problem = tiny_lp();
  record::Recorder rec;
  const auto first = solve_host_recorded(&rec, problem);
  ASSERT_TRUE(first.optimal());

  record::Recorder replay = record::Recorder::replaying(rec.recording());
  const auto second = solve_host_recorded(&replay, problem);
  EXPECT_FALSE(replay.mismatched())
      << replay.mismatch().describe();
  EXPECT_EQ(replay.verified(), rec.recording().records.size());
  EXPECT_EQ(second.objective, first.objective);
  EXPECT_EQ(second.stats.iterations, first.stats.iterations);
}

TEST(RecordReplay, InjectedDivergenceIsCaughtAtTheExactIndex) {
  const auto problem = tiny_lp();
  record::Recorder rec;
  ASSERT_TRUE(solve_host_recorded(&rec, problem).optimal());

  // Tamper with the second pivot in the reference stream: the replayed
  // solve must flag exactly that stream index, with both records intact.
  record::Recording tampered = rec.recording();
  std::size_t idx = tampered.records.size();
  std::size_t pivots_seen = 0;
  for (std::size_t i = 0; i < tampered.records.size(); ++i) {
    if (tampered.records[i].kind != record::RecordKind::kPivot) continue;
    if (++pivots_seen == 2) {
      idx = i;
      break;
    }
  }
  ASSERT_LT(idx, tampered.records.size()) << "need at least two pivots";
  const record::DecisionRecord truth = tampered.records[idx];
  tampered.records[idx].entering += 1;

  record::Recorder replay = record::Recorder::replaying(tampered);
  (void)solve_host_recorded(&replay, problem);
  ASSERT_TRUE(replay.mismatched());
  const auto& mm = replay.mismatch();
  EXPECT_EQ(mm.why, record::ReplayMismatch::Why::kValueMismatch);
  EXPECT_EQ(mm.index, idx);
  EXPECT_EQ(mm.expected, tampered.records[idx]);
  EXPECT_EQ(mm.actual, truth);
  EXPECT_EQ(mm.actual.iteration, truth.iteration)
      << "report names the diverging iteration";
  EXPECT_EQ(replay.verified(), idx) << "every record before it verified";
  EXPECT_FALSE(mm.describe().empty());
}

TEST(RecordReplay, WrongProblemIsRejectedAtTheHeader) {
  record::Recorder rec;
  ASSERT_TRUE(solve_host_recorded(&rec, tiny_lp()).optimal());

  const auto other = lp::random_dense_lp({.rows = 8, .cols = 8, .seed = 8});
  record::Recorder replay = record::Recorder::replaying(rec.recording());
  (void)solve_host_recorded(&replay, other);
  ASSERT_TRUE(replay.mismatched());
  EXPECT_EQ(replay.mismatch().why, record::ReplayMismatch::Why::kHeader);
  EXPECT_EQ(replay.mismatch().index, 0u);
  EXPECT_NE(replay.mismatch().note.find("digest"), std::string::npos);
}

TEST(RecordReplay, WrongEngineIsRejectedAtTheHeader) {
  record::Recorder rec;
  ASSERT_TRUE(solve_host_recorded(&rec, tiny_lp()).optimal());

  record::Recorder replay = record::Recorder::replaying(rec.recording());
  simplex::SolverOptions opt;
  opt.recorder = &replay;
  (void)simplex::TableauSimplex(opt).solve(tiny_lp());
  ASSERT_TRUE(replay.mismatched());
  EXPECT_EQ(replay.mismatch().why, record::ReplayMismatch::Why::kHeader);
}

// ---------------------------------------------------------------------
// Diff.
// ---------------------------------------------------------------------

TEST(RecordDiff, IdenticalPathsAgreeAndTrackFloatDeltas) {
  const auto problem = tiny_lp();
  record::Recorder rec_d, rec_f;
  simplex::SolverOptions dopt, fopt;
  dopt.recorder = &rec_d;
  fopt.recorder = &rec_f;
  vgpu::Device dev_d(vgpu::gtx280_model());
  ASSERT_TRUE(simplex::DeviceRevisedSimplex<double>(dev_d, dopt)
                  .solve(problem)
                  .optimal());
  vgpu::Device dev_f(vgpu::gtx280_model());
  ASSERT_TRUE(simplex::DeviceRevisedSimplex<float>(dev_f, fopt)
                  .solve(problem)
                  .optimal());

  const auto d = record::diff(rec_d.recording(), rec_f.recording());
  EXPECT_TRUE(d.comparable);
  EXPECT_FALSE(d.diverged) << d.describe();
  EXPECT_EQ(d.common, count_pivots(rec_d.recording()));
  // Identical paths, different precision: payload deltas are small but
  // nonzero (this is exactly what Tab. 2's agreement study measures).
  EXPECT_GT(d.max_reduced_cost_delta, 0.0);
  EXPECT_LT(d.max_reduced_cost_delta, 1e-3);
}

TEST(RecordDiff, CraftedTieDivergesAtPivotZeroWithBothCandidates) {
  const auto problem = tie_lp();
  record::Recorder rec_d, rec_f;
  simplex::SolverOptions dopt, fopt;
  dopt.recorder = &rec_d;
  fopt.recorder = &rec_f;
  vgpu::Device dev_d(vgpu::gtx280_model());
  ASSERT_TRUE(simplex::DeviceRevisedSimplex<double>(dev_d, dopt)
                  .solve(problem)
                  .optimal());
  vgpu::Device dev_f(vgpu::gtx280_model());
  ASSERT_TRUE(simplex::DeviceRevisedSimplex<float>(dev_f, fopt)
                  .solve(problem)
                  .optimal());

  const auto d = record::diff(rec_d.recording(), rec_f.recording());
  ASSERT_TRUE(d.comparable);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.index, 0u);
  EXPECT_EQ(d.common, 0u);
  ASSERT_TRUE(d.a.has_value());
  ASSERT_TRUE(d.b.has_value());
  EXPECT_EQ(d.a->entering, 1u) << "double enters x2 (d = -1.0000000001)";
  EXPECT_EQ(d.b->entering, 0u) << "float ties and enters x1";
  // The report carries both candidates with their reduced costs/ratios.
  const std::string text = d.describe();
  EXPECT_NE(text.find("diverge at pivot 0"), std::string::npos) << text;
  EXPECT_NE(text.find(record::describe(*d.a)), std::string::npos) << text;
  EXPECT_NE(text.find(record::describe(*d.b)), std::string::npos) << text;
}

TEST(RecordDiff, DifferentProblemsAreNotComparable) {
  record::Recorder a, b;
  ASSERT_TRUE(solve_host_recorded(&a, tiny_lp()).optimal());
  ASSERT_TRUE(
      solve_host_recorded(&b, lp::random_dense_lp(
                                  {.rows = 8, .cols = 8, .seed = 8}))
          .optimal());
  const auto d = record::diff(a.recording(), b.recording());
  EXPECT_FALSE(d.comparable);
  EXPECT_FALSE(d.note.empty());
}

// ---------------------------------------------------------------------
// Post-mortem dumps.
// ---------------------------------------------------------------------

TEST(RecordPostMortem, DumpsReplayableWindowOnIterationLimit) {
  const auto path =
      (std::filesystem::temp_directory_path() / "gs_record_pm.gsrec").string();
  std::filesystem::remove(path);

  record::Recorder rec;
  rec.set_post_mortem(path, /*window=*/4);
  simplex::SolverOptions opt;
  opt.recorder = &rec;
  opt.max_iterations = 3;
  const auto result = simplex::HostRevisedSimplex(opt).solve(
      lp::random_dense_lp({.rows = 16, .cols = 16, .seed = 5}));
  ASSERT_EQ(result.status, simplex::SolveStatus::kIterationLimit);
  ASSERT_TRUE(rec.dumped_post_mortem());

  const record::Recording pm = record::Recording::read_file(path);
  EXPECT_TRUE(pm.header.post_mortem);
  EXPECT_LE(pm.records.size(), 4u);
  EXPECT_EQ(pm.header.total_records, rec.recording().records.size());
  EXPECT_EQ(pm.header.first_index,
            rec.recording().records.size() - pm.records.size());
  // The window holds the *last* records of the run, basis included.
  EXPECT_EQ(pm.records.back(), rec.recording().records.back());
  EXPECT_EQ(pm.basis, rec.recording().basis);
  std::filesystem::remove(path);
}

TEST(RecordPostMortem, CleanOptimalSolveDumpsNothing) {
  const auto path =
      (std::filesystem::temp_directory_path() / "gs_record_pm_clean.gsrec")
          .string();
  std::filesystem::remove(path);
  record::Recorder rec;
  rec.set_post_mortem(path);
  ASSERT_TRUE(solve_host_recorded(&rec, tiny_lp()).optimal());
  EXPECT_FALSE(rec.dumped_post_mortem());
  EXPECT_FALSE(std::filesystem::exists(path));
}

// ---------------------------------------------------------------------
// Off by default: no recorder, no model perturbation.
// ---------------------------------------------------------------------

TEST(RecordDisabled, NoRecorderMeansBitIdenticalResultsAndStats) {
  const auto problem = lp::random_dense_lp({.rows = 16, .cols = 16, .seed = 5});

  auto solve_with = [&](record::Recorder* rec) {
    simplex::SolverOptions opt;
    opt.recorder = rec;
    vgpu::Device dev(vgpu::gtx280_model());
    simplex::DeviceRevisedSimplex<double> solver(dev, opt);
    return solver.solve(problem);
  };
  const auto plain = solve_with(nullptr);
  record::Recorder rec;
  const auto recorded = solve_with(&rec);

  ASSERT_TRUE(plain.optimal());
  ASSERT_TRUE(recorded.optimal());
  ASSERT_FALSE(rec.recording().records.empty());

  // Recording must not perturb the model: bit-identical results and stats.
  EXPECT_EQ(plain.objective, recorded.objective);
  EXPECT_EQ(plain.x, recorded.x);
  EXPECT_EQ(plain.stats.iterations, recorded.stats.iterations);
  EXPECT_EQ(plain.stats.sim_seconds, recorded.stats.sim_seconds);
  const auto& a = plain.stats.device_stats;
  const auto& b = recorded.stats.device_stats;
  EXPECT_EQ(a.kernel_launches, b.kernel_launches);
  EXPECT_EQ(a.kernel_seconds, b.kernel_seconds);
  EXPECT_EQ(a.total_flops, b.total_flops);
  EXPECT_EQ(a.h2d_count, b.h2d_count);
  EXPECT_EQ(a.h2d_bytes, b.h2d_bytes);
  EXPECT_EQ(a.d2h_count, b.d2h_count);
  EXPECT_EQ(a.d2h_bytes, b.d2h_bytes);

  // Same guarantee for the host engine.
  const auto hplain =
      simplex::HostRevisedSimplex(simplex::SolverOptions{}).solve(problem);
  record::Recorder hrec;
  const auto hrecorded = solve_host_recorded(&hrec, problem);
  EXPECT_EQ(hplain.objective, hrecorded.objective);
  EXPECT_EQ(hplain.stats.iterations, hrecorded.stats.iterations);
  EXPECT_EQ(hplain.stats.sim_seconds, hrecorded.stats.sim_seconds);
}

}  // namespace
