// Documentation sanity: every `*.md` cross-reference in the repo's
// top-level documents must point at a file that exists. Keeps README /
// DESIGN / OBSERVABILITY / ROADMAP links from rotting as the tree moves.
//
// GS_SOURCE_DIR is injected by CMake as the repository root.
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifndef GS_SOURCE_DIR
#error "GS_SOURCE_DIR must be defined to the repository root"
#endif

namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool is_ref_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == '/' || c == '-';
}

/// Blank out every URL (scheme://...) so paths inside external links are
/// never mistaken for repo-relative references.
std::string strip_urls(std::string text) {
  std::size_t pos = 0;
  while ((pos = text.find("://", pos)) != std::string::npos) {
    std::size_t begin = pos;
    while (begin > 0 &&
           std::isalpha(static_cast<unsigned char>(text[begin - 1]))) {
      --begin;
    }
    std::size_t end = pos + 3;
    while (end < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[end])) &&
           text[end] != ')' && text[end] != '>' && text[end] != '"') {
      ++end;
    }
    for (std::size_t k = begin; k < end; ++k) text[k] = ' ';
    pos = end;
  }
  return text;
}

/// Extract every token shaped like a markdown-file reference: a maximal
/// [A-Za-z0-9_./-]+ run ending in ".md". Glob patterns are produced by
/// the scan but filtered by the caller; URLs must be stripped first.
std::vector<std::string> md_references(const std::string& text) {
  std::vector<std::string> refs;
  std::size_t i = 0;
  while (i < text.size()) {
    if (!is_ref_char(text[i])) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < text.size() && is_ref_char(text[j])) ++j;
    std::string token = text.substr(i, j - i);
    // Trim trailing sentence punctuation the character class admits.
    while (!token.empty() && (token.back() == '.' || token.back() == '-')) {
      token.pop_back();
    }
    if (token.size() > 3 && token.ends_with(".md")) refs.push_back(token);
    i = j;
  }
  return refs;
}

TEST(Docs, EveryMarkdownCrossReferenceResolves) {
  const fs::path root(GS_SOURCE_DIR);
  ASSERT_TRUE(fs::exists(root));

  std::vector<fs::path> docs;
  for (const auto& entry : fs::directory_iterator(root)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".md") {
      continue;
    }
    // SNIPPETS.md cites file paths inside *external* repositories as
    // provenance; those are not repo-relative cross-references.
    if (entry.path().filename() == "SNIPPETS.md") continue;
    docs.push_back(entry.path());
  }
  ASSERT_FALSE(docs.empty()) << "no top-level markdown files under " << root;

  std::size_t checked = 0;
  for (const fs::path& doc : docs) {
    const std::string text = strip_urls(read_file(doc));
    for (const std::string& ref : md_references(text)) {
      if (ref.find('*') != std::string::npos) continue;  // glob pattern
      // References resolve relative to the repo root (where the docs live).
      const fs::path target = root / ref;
      EXPECT_TRUE(fs::exists(target))
          << doc.filename().string() << " references " << ref
          << " which does not exist";
      ++checked;
    }
  }
  // The suite is vacuous if the scan finds nothing; README alone links
  // several documents, so demand a sane floor.
  EXPECT_GE(checked, 5u);
}

TEST(Docs, CoreDocumentsExist) {
  const fs::path root(GS_SOURCE_DIR);
  for (const char* name : {"README.md", "DESIGN.md", "OBSERVABILITY.md",
                           "ROADMAP.md", "SERVICE.md", "CHECKING.md"}) {
    EXPECT_TRUE(fs::exists(root / name)) << name << " missing";
  }
}

// The static-analyzer contract is documented where its tests say it is:
// CHECKING.md carries the "Static analysis" section with the report
// schema name, and README's CLI tour mentions the --analyze flag. These
// strings are load-bearing (tests/test_analyze.cpp and lp_cli reference
// them), so their disappearance is a doc regression, not a reword.
TEST(Docs, StaticAnalysisSectionIsDocumented) {
  const fs::path root(GS_SOURCE_DIR);
  const std::string checking = read_file(root / "CHECKING.md");
  EXPECT_NE(checking.find("## Static analysis"), std::string::npos);
  EXPECT_NE(checking.find("gs-analyze-v1"), std::string::npos);
  EXPECT_NE(checking.find("Static vs dynamic"), std::string::npos);
  const std::string readme = read_file(root / "README.md");
  EXPECT_NE(readme.find("--analyze"), std::string::npos);
}

// Same contract for the roofline profiler: OBSERVABILITY.md carries the
// "Profiler" section with the schema name and the bound-classification
// vocabulary, and README's tour mentions the --profile flag. These
// strings are load-bearing (tests/test_profile.cpp, lp_cli and
// svc_traffic reference them).
TEST(Docs, ProfilerSectionIsDocumented) {
  const fs::path root(GS_SOURCE_DIR);
  const std::string obs = read_file(root / "OBSERVABILITY.md");
  EXPECT_NE(obs.find("## Profiler"), std::string::npos);
  EXPECT_NE(obs.find("gs-profile-v1"), std::string::npos);
  EXPECT_NE(obs.find("launch-bound"), std::string::npos);
  EXPECT_NE(obs.find("Tiling invariant"), std::string::npos);
  const std::string readme = read_file(root / "README.md");
  EXPECT_NE(readme.find("--profile"), std::string::npos);
}

// Same contract for the telemetry pipeline and SLO engine:
// OBSERVABILITY.md carries the "Telemetry" section with the schema name
// and the burn-rate / error-budget vocabulary, and README's tour mentions
// the --slo flag. These strings are load-bearing
// (tests/test_telemetry.cpp, lp_cli and svc_traffic reference them).
TEST(Docs, TelemetrySectionIsDocumented) {
  const fs::path root(GS_SOURCE_DIR);
  const std::string obs = read_file(root / "OBSERVABILITY.md");
  EXPECT_NE(obs.find("## Telemetry"), std::string::npos);
  EXPECT_NE(obs.find("gs-telemetry-v1"), std::string::npos);
  EXPECT_NE(obs.find("burn-rate"), std::string::npos);
  EXPECT_NE(obs.find("error budget"), std::string::npos);
  const std::string readme = read_file(root / "README.md");
  EXPECT_NE(readme.find("--slo"), std::string::npos);
}

// Same contract for the basis-oracle seam and the dual warm-start path:
// DESIGN.md carries the "Basis oracles" section with the refactorization
// policy, SERVICE.md's warm-cache section names the dual engine, and
// README's tour and decision table mention --basis / the dual engine.
// These strings are load-bearing (tests/test_basis.cpp, test_service.cpp
// and lp_cli reference the same vocabulary).
TEST(Docs, BasisOracleSectionIsDocumented) {
  const fs::path root(GS_SOURCE_DIR);
  const std::string design = read_file(root / "DESIGN.md");
  EXPECT_NE(design.find("## Basis oracles"), std::string::npos);
  EXPECT_NE(design.find("ProductFormOracle"), std::string::npos);
  EXPECT_NE(design.find("Refactorization policy"), std::string::npos);
  const std::string service = read_file(root / "SERVICE.md");
  EXPECT_NE(service.find("DualRevisedSimplex"), std::string::npos);
  EXPECT_NE(service.find("no phase 1"), std::string::npos);
  const std::string readme = read_file(root / "README.md");
  EXPECT_NE(readme.find("--basis"), std::string::npos);
  EXPECT_NE(readme.find("DualRevisedSimplex"), std::string::npos);
}

}  // namespace
