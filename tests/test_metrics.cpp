// Metrics-layer tests: counter/gauge/histogram semantics, the JSON export
// schema, solver instrumentation coverage (device + host + batch engines),
// the HealthMonitor's warning machinery, and the off-by-default
// bit-identity guarantee. These exercise exactly the API documented in
// OBSERVABILITY.md ("Metrics") — if a documented name stops compiling, it
// fails here first.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "lp/generators.hpp"
#include "metrics/health.hpp"
#include "metrics/metrics.hpp"
#include "simplex/batch_revised.hpp"
#include "simplex/solver.hpp"

namespace {

using namespace gs;

lp::LpProblem tiny_lp() {
  return lp::random_dense_lp({.rows = 8, .cols = 8, .seed = 7});
}

simplex::SolveResult solve_device_metered(metrics::MetricsRegistry* registry,
                                          const lp::LpProblem& problem,
                                          simplex::SolverOptions opt = {}) {
  opt.metrics = registry;
  vgpu::Device dev(vgpu::gtx280_model());
  simplex::DeviceRevisedSimplex<double> solver(dev, opt);
  return solver.solve(problem);
}

// ---------------------------------------------------------------------
// Primitive semantics.
// ---------------------------------------------------------------------

TEST(MetricsCore, CounterAccumulates) {
  metrics::Counter c;
  EXPECT_EQ(c.value(), 0.0);
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST(MetricsCore, GaugeTracksLastMinMax) {
  metrics::Gauge g;
  EXPECT_FALSE(g.has_value());
  g.set(3.0);
  g.set(-1.0);
  g.set(2.0);
  EXPECT_TRUE(g.has_value());
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.min(), -1.0);
  EXPECT_DOUBLE_EQ(g.max(), 3.0);
}

TEST(MetricsCore, HistogramBucketsAndOverflow) {
  metrics::Histogram h({1.0, 10.0, 100.0});
  ASSERT_EQ(h.counts().size(), 4u) << "bounds + one overflow bucket";
  h.observe(0.5);    // bucket 0 (v <= 1)
  h.observe(1.0);    // bucket 0 (inclusive upper bound)
  h.observe(7.0);    // bucket 1
  h.observe(1000.0); // overflow
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 0u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1008.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(MetricsCore, SharedBucketLaddersAreSorted) {
  for (const auto ladder : {metrics::seconds_buckets(),
                            metrics::bytes_buckets(),
                            metrics::magnitude_buckets()}) {
    ASSERT_FALSE(ladder.empty());
    for (std::size_t k = 1; k < ladder.size(); ++k) {
      EXPECT_LT(ladder[k - 1], ladder[k]);
    }
  }
}

TEST(MetricsCore, RegistryReturnsStableLazilyCreatedRefs) {
  metrics::MetricsRegistry reg;
  metrics::Counter& a = reg.counter("x");
  a.inc();
  // Creating more metrics must not invalidate earlier references.
  for (int i = 0; i < 100; ++i) {
    (void)reg.counter("c" + std::to_string(i));
  }
  metrics::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_DOUBLE_EQ(b.value(), 1.0);
  // Histogram bounds are fixed by the first creation.
  auto& h1 = reg.histogram("h", std::array{1.0, 2.0});
  auto& h2 = reg.histogram("h", std::array{9.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(MetricsCore, WarnBumpsCountersAndCapsStorage) {
  metrics::MetricsRegistry reg;
  const std::size_t n = metrics::MetricsRegistry::kMaxStoredWarnings + 10;
  for (std::size_t i = 0; i < n; ++i) {
    reg.warn({"tiny-pivot", "msg", 1e-9, 1e-7, i});
  }
  reg.warn({"stall", "msg", 25.0, 25.0, 0});
  EXPECT_EQ(reg.warnings_total(), n + 1);
  EXPECT_EQ(reg.warnings().size(), metrics::MetricsRegistry::kMaxStoredWarnings);
  EXPECT_DOUBLE_EQ(reg.counter("health.warnings").value(), double(n + 1));
  EXPECT_DOUBLE_EQ(reg.counter("health.warnings.tiny-pivot").value(),
                   double(n));
  EXPECT_DOUBLE_EQ(reg.counter("health.warnings.stall").value(), 1.0);
  reg.clear();
  EXPECT_EQ(reg.warnings_total(), 0u);
  EXPECT_TRUE(reg.counters().empty());
}

// ---------------------------------------------------------------------
// JSON export.
// ---------------------------------------------------------------------

/// Minimal JSON well-formedness scan: balanced {} / [] outside strings.
void expect_balanced_json(const std::string& text) {
  ASSERT_FALSE(text.empty());
  int depth_obj = 0, depth_arr = 0;
  bool in_string = false, escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++depth_obj; break;
      case '}': --depth_obj; break;
      case '[': ++depth_arr; break;
      case ']': --depth_arr; break;
      default: break;
    }
    ASSERT_GE(depth_obj, 0);
    ASSERT_GE(depth_arr, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth_obj, 0);
  EXPECT_EQ(depth_arr, 0);
}

TEST(MetricsJson, SnapshotSchemaIsStable) {
  metrics::MetricsRegistry reg;
  reg.counter("b.count").inc(2);
  reg.counter("a.count").inc(1);
  reg.gauge("g").set(0.5);
  reg.histogram("h", std::array{1.0}).observe(3.0);
  reg.warn({"residual-drift", "quote \" and \\ and\nnewline", 2e-6, 1e-6, 4});

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.warnings_total, 1u);
  const std::string json = snap.to_json();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"schema\": \"gs-metrics-v1\""), std::string::npos);
  // Top-level sections in documented order.
  const auto p_counters = json.find("\"counters\"");
  const auto p_gauges = json.find("\"gauges\"");
  const auto p_hist = json.find("\"histograms\"");
  const auto p_total = json.find("\"warnings_total\"");
  const auto p_warn = json.find("\"warnings\":");
  ASSERT_NE(p_counters, std::string::npos);
  EXPECT_LT(p_counters, p_gauges);
  EXPECT_LT(p_gauges, p_hist);
  EXPECT_LT(p_hist, p_total);
  EXPECT_LT(p_total, p_warn);
  // Names sorted lexicographically within a section.
  EXPECT_LT(json.find("\"a.count\""), json.find("\"b.count\""));
  // String escaping round-trips hostile characters.
  EXPECT_NE(json.find("quote \\\" and \\\\ and\\nnewline"), std::string::npos);
  // Histogram payload carries bounds + overflow-extended counts.
  EXPECT_NE(json.find("\"bounds\""), std::string::npos);
  EXPECT_NE(json.find("\"counts\""), std::string::npos);
}

TEST(MetricsJson, NonFiniteValuesBecomeNull) {
  metrics::MetricsRegistry reg;
  reg.gauge("bad").set(std::numeric_limits<double>::quiet_NaN());
  const std::string json = reg.snapshot().to_json();
  expect_balanced_json(json);
  EXPECT_NE(json.find("null"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(MetricsJson, WriteFileRoundTrip) {
  metrics::MetricsRegistry reg;
  (void)solve_device_metered(&reg, tiny_lp());
  const auto path =
      std::filesystem::temp_directory_path() / "gs_metrics_test.json";
  reg.snapshot().write_file(path.string());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  expect_balanced_json(buf.str());
  EXPECT_NE(buf.str().find("vgpu.kernel.launches"), std::string::npos);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------
// Solver instrumentation: metric values reconcile with DeviceStats.
// ---------------------------------------------------------------------

TEST(MetricsSolve, DeviceEngineCountersMatchDeviceStats) {
  metrics::MetricsRegistry reg;
  const auto result = solve_device_metered(
      &reg, lp::random_dense_lp({.rows = 24, .cols = 32, .seed = 3}));
  ASSERT_TRUE(result.optimal());
  const auto& ds = result.stats.device_stats;

  EXPECT_DOUBLE_EQ(reg.counter("vgpu.kernel.launches").value(),
                   double(ds.kernel_launches));
  EXPECT_NEAR(reg.counter("vgpu.kernel.seconds").value(), ds.kernel_seconds,
              1e-12);
  EXPECT_DOUBLE_EQ(reg.counter("vgpu.kernel.flops").value(), ds.total_flops);
  EXPECT_DOUBLE_EQ(reg.counter("vgpu.h2d.count").value(), double(ds.h2d_count));
  EXPECT_DOUBLE_EQ(reg.counter("vgpu.h2d.bytes").value(), double(ds.h2d_bytes));
  EXPECT_DOUBLE_EQ(reg.counter("vgpu.d2h.count").value(), double(ds.d2h_count));
  EXPECT_DOUBLE_EQ(reg.counter("vgpu.d2h.bytes").value(), double(ds.d2h_bytes));
  EXPECT_DOUBLE_EQ(reg.counter("simplex.iterations").value(),
                   double(result.stats.iterations));

  // The kernel-time histogram saw every launch; transfer histograms tile
  // the copy counts.
  EXPECT_EQ(reg.histogram("vgpu.kernel_seconds", metrics::seconds_buckets())
                .count(),
            ds.kernel_launches);
  EXPECT_EQ(
      reg.histogram("vgpu.h2d_bytes", metrics::bytes_buckets()).count() +
          reg.histogram("vgpu.d2h_bytes", metrics::bytes_buckets()).count(),
      ds.h2d_count + ds.d2h_count);

  // Per-kernel families exist and sum to the aggregate launch count.
  const auto snap = reg.snapshot();
  double per_kernel_launches = 0.0;
  std::size_t kernel_families = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("vgpu.kernel.", 0) == 0 &&
        name.size() > std::string_view(".launches").size() &&
        name.compare(name.size() - 9, 9, ".launches") == 0 &&
        name != "vgpu.kernel.launches") {
      per_kernel_launches += value;
      ++kernel_families;
    }
  }
  EXPECT_GT(kernel_families, 3u);
  EXPECT_DOUBLE_EQ(per_kernel_launches, double(ds.kernel_launches));

  // Per-operation histograms populated for the core four ops; the pivot
  // histogram saw every pivoting iteration.
  for (const char* op : {"price", "ftran", "ratio", "update"}) {
    const auto it =
        snap.histograms.find(std::string("simplex.op_seconds.") + op);
    ASSERT_NE(it, snap.histograms.end()) << op;
    EXPECT_GT(it->second.count, 0u) << op;
  }
  EXPECT_EQ(
      reg.histogram("health.pivot_magnitude", metrics::magnitude_buckets())
          .count(),
      result.stats.iterations);
}

TEST(MetricsSolve, HostEngineChargesCpuStepMetrics) {
  metrics::MetricsRegistry reg;
  simplex::SolverOptions opt;
  opt.metrics = &reg;
  const auto result = simplex::HostRevisedSimplex(opt).solve(tiny_lp());
  ASSERT_TRUE(result.optimal());
  EXPECT_GT(reg.counter("cpu.step.count").value(), 0.0);
  EXPECT_NEAR(reg.counter("cpu.step.seconds").value(),
              result.stats.device_stats.kernel_seconds, 1e-12);
  EXPECT_DOUBLE_EQ(reg.counter("simplex.iterations").value(),
                   double(result.stats.iterations));
}

TEST(MetricsSolve, BatchEngineRecordsRoundsAndActiveGauge) {
  metrics::MetricsRegistry reg;
  simplex::SolverOptions opt;
  opt.metrics = &reg;
  std::vector<lp::LpProblem> batch;
  for (std::uint64_t k = 0; k < 3; ++k) {
    batch.push_back(lp::random_dense_lp({.rows = 6, .cols = 6, .seed = k + 1}));
  }
  vgpu::Device dev(vgpu::gtx280_model());
  simplex::BatchRevisedSimplex<double> solver(dev, opt);
  const auto results = solver.solve(batch);
  for (const auto& r : results) EXPECT_TRUE(r.optimal());
  EXPECT_GT(reg.counter("batch.rounds").value(), 0.0);
  EXPECT_TRUE(reg.gauge("batch.active_problems").has_value());
  EXPECT_GT(reg.counter("vgpu.kernel.launches").value(), 0.0);
}

TEST(MetricsSolve, ZeroByteTransfersEmitNothing) {
  metrics::MetricsRegistry reg;
  vgpu::Device dev(vgpu::gtx280_model());
  dev.set_metrics(&reg);
  vgpu::DeviceBuffer<double> buf(dev, 4);
  const auto h2d_before = dev.stats().h2d_count;
  buf.upload(std::span<const double>{});
  std::span<double> empty_out;
  buf.download(empty_out);
  EXPECT_EQ(dev.stats().h2d_count, h2d_before);
  EXPECT_DOUBLE_EQ(reg.counter("vgpu.h2d.count").value(), 0.0);
  EXPECT_DOUBLE_EQ(reg.counter("vgpu.d2h.count").value(), 0.0);
}

// ---------------------------------------------------------------------
// HealthMonitor warning machinery.
// ---------------------------------------------------------------------

TEST(MetricsHealth, TinyPivotAndStallAndBlandEdges) {
  metrics::MetricsRegistry reg;
  metrics::HealthConfig cfg;
  cfg.pivot_tiny_tol = 1e-7;
  cfg.stall_window = 3;
  metrics::HealthMonitor mon(&reg, cfg);
  ASSERT_TRUE(mon.enabled());

  mon.record_pivot(1e-9, 1.0, false, 0);  // tiny pivot
  mon.record_pivot(0.5, 0.0, true, 1);    // degenerate + Bland on (edge)
  mon.record_pivot(0.5, 0.0, true, 2);    // degenerate, Bland still on
  mon.record_pivot(0.5, 0.0, true, 3);    // 3rd consecutive: one stall warn
  mon.record_pivot(0.5, 0.0, false, 4);   // 4th: streak already warned
  mon.record_pivot(0.5, 1.0, true, 5);    // streak reset; Bland re-edge

  EXPECT_DOUBLE_EQ(reg.counter("health.warnings.tiny-pivot").value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.counter("health.warnings.stall").value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.counter("health.degenerate_steps").value(), 4.0);
  EXPECT_DOUBLE_EQ(reg.counter("health.bland_activations").value(), 2.0);
  EXPECT_EQ(reg.warnings_total(), 2u);
  EXPECT_EQ(reg.warnings()[0].kind, "tiny-pivot");
  EXPECT_EQ(reg.warnings()[1].kind, "stall");
  EXPECT_EQ(reg.warnings()[1].iteration, 3u);
}

TEST(MetricsHealth, ResidualAndGrowthThresholds) {
  metrics::MetricsRegistry reg;
  metrics::HealthConfig cfg;
  cfg.residual_tol = 1e-6;
  cfg.growth_limit = 1e3;
  cfg.residual_stride = 4;
  metrics::HealthMonitor mon(&reg, cfg);
  EXPECT_TRUE(mon.want_residual_sample(0));
  EXPECT_FALSE(mon.want_residual_sample(3));
  EXPECT_TRUE(mon.want_residual_sample(8));

  mon.record_residual(1e-9, 0);  // healthy
  mon.record_residual(1e-3, 4);  // drift
  mon.record_growth(10.0, 4);    // healthy
  mon.record_growth(1e6, 8);     // blow-up
  EXPECT_DOUBLE_EQ(reg.counter("health.warnings.residual-drift").value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.counter("health.warnings.growth").value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("health.residual_inf").value(), 1e-3);
  EXPECT_DOUBLE_EQ(reg.gauge("health.binv_growth").max(), 1e6);

  // Detached monitor: every call is a no-op, sampling never requested.
  metrics::HealthMonitor off(nullptr, cfg);
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.want_residual_sample(0));
  off.record_pivot(0.0, 0.0, true, 0);
  off.record_residual(1.0, 0);
}

// The float device engine drifts past a tightened residual tolerance on a
// seeded dense LP: product-form updates in float accumulate O(1e-6)
// relative error in B^-1, which the strided probe estimate must surface as
// "residual-drift" warnings (the paper's motivation for the Tab. 2
// double-vs-float agreement study).
TEST(MetricsHealth, FloatSolveTripsResidualThreshold) {
  metrics::MetricsRegistry reg;
  simplex::SolverOptions opt;
  opt.metrics = &reg;
  opt.health.residual_stride = 1;   // probe every iteration
  opt.health.residual_tol = 1e-12;  // far below float update roundoff
  vgpu::Device dev(vgpu::gtx280_model());
  simplex::DeviceRevisedSimplex<float> solver(dev, opt);
  const auto result =
      solver.solve(lp::random_dense_lp({.rows = 24, .cols = 24, .seed = 3}));
  ASSERT_TRUE(result.optimal());

  EXPECT_GT(reg.warnings_total(), 0u);
  EXPECT_GT(reg.counter("health.warnings.residual-drift").value(), 0.0);
  EXPECT_TRUE(reg.gauge("health.residual_inf").has_value());
  EXPECT_GT(reg.gauge("health.residual_inf").max(), 1e-12);
  for (const auto& w : reg.warnings()) {
    if (w.kind != "residual-drift") continue;
    EXPECT_GT(w.value, w.threshold);
  }

  // The same solve in double stays orders of magnitude tighter: with the
  // default (1e-6) tolerance no residual warning fires.
  metrics::MetricsRegistry dreg;
  simplex::SolverOptions dopt;
  dopt.metrics = &dreg;
  dopt.health.residual_stride = 1;
  const auto dresult = solve_device_metered(
      &dreg, lp::random_dense_lp({.rows = 24, .cols = 24, .seed = 3}), dopt);
  ASSERT_TRUE(dresult.optimal());
  EXPECT_DOUBLE_EQ(dreg.counter("health.warnings.residual-drift").value(), 0.0);
}

// ---------------------------------------------------------------------
// Off by default: no registry, no model perturbation.
// ---------------------------------------------------------------------

TEST(MetricsDisabled, NoRegistryMeansBitIdenticalResultsAndStats) {
  const auto problem = lp::random_dense_lp({.rows = 16, .cols = 16, .seed = 5});

  const auto plain = solve_device_metered(nullptr, problem);
  metrics::MetricsRegistry reg;
  const auto metered = solve_device_metered(&reg, problem);

  ASSERT_TRUE(plain.optimal());
  ASSERT_TRUE(metered.optimal());
  EXPECT_GT(reg.counter("vgpu.kernel.launches").value(), 0.0);

  // Metrics must not perturb the model: bit-identical results and stats.
  EXPECT_EQ(plain.objective, metered.objective);
  EXPECT_EQ(plain.x, metered.x);
  EXPECT_EQ(plain.stats.iterations, metered.stats.iterations);
  EXPECT_EQ(plain.stats.sim_seconds, metered.stats.sim_seconds);
  const auto& a = plain.stats.device_stats;
  const auto& b = metered.stats.device_stats;
  EXPECT_EQ(a.kernel_launches, b.kernel_launches);
  EXPECT_EQ(a.kernel_seconds, b.kernel_seconds);
  EXPECT_EQ(a.total_flops, b.total_flops);
  EXPECT_EQ(a.h2d_count, b.h2d_count);
  EXPECT_EQ(a.h2d_bytes, b.h2d_bytes);
  EXPECT_EQ(a.d2h_count, b.d2h_count);
  EXPECT_EQ(a.d2h_bytes, b.d2h_bytes);

  // Same guarantee for the host engine.
  const auto hplain =
      simplex::HostRevisedSimplex(simplex::SolverOptions{}).solve(problem);
  simplex::SolverOptions hopt;
  metrics::MetricsRegistry hreg;
  hopt.metrics = &hreg;
  const auto hmetered = simplex::HostRevisedSimplex(hopt).solve(problem);
  EXPECT_EQ(hplain.objective, hmetered.objective);
  EXPECT_EQ(hplain.stats.iterations, hmetered.stats.iterations);
  EXPECT_EQ(hplain.stats.sim_seconds, hmetered.stats.sim_seconds);
}

}  // namespace
