// Unit tests for the standard-form conversion pipeline and the augmentation
// / crash-basis setup: every bound kind, rhs flipping, slack/surplus
// columns, objective offsets, and solution recovery.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/problem.hpp"
#include "lp/standard_form.hpp"
#include "simplex/phase_setup.hpp"

namespace gs::lp {
namespace {

/// Evaluate A y for a standard form (dense walk over sparse rows).
[[nodiscard]] std::vector<double> apply_rows(const StandardFormLp& sf,
                                             std::span<const double> y) {
  std::vector<double> out(sf.num_rows(), 0.0);
  for (std::size_t i = 0; i < sf.num_rows(); ++i) {
    for (const Term& t : sf.rows[i]) out[i] += t.coef * y[t.var];
  }
  return out;
}

TEST(StandardForm, DirectVariablePassesThrough) {
  LpProblem p;
  const auto x = p.add_variable("x", 2.0);
  p.add_constraint("c", {{x, 3.0}}, RowSense::kLe, 6.0);
  const auto sf = to_standard_form(p);
  EXPECT_EQ(sf.num_rows(), 1u);
  EXPECT_EQ(sf.num_cols(), 2u);  // x + slack
  EXPECT_DOUBLE_EQ(sf.c[0], 2.0);
  EXPECT_DOUBLE_EQ(sf.b[0], 6.0);
  EXPECT_EQ(sf.slack_col[0], 1);
  EXPECT_DOUBLE_EQ(sf.objective_offset, 0.0);
  const auto x_back = sf.recover(std::vector<double>{1.5, 0.0});
  EXPECT_DOUBLE_EQ(x_back[0], 1.5);
}

TEST(StandardForm, ShiftedLowerBound) {
  // x >= 2, minimize x subject to x <= 5 -> optimum x = 2.
  LpProblem p;
  const auto x = p.add_variable("x", 1.0, 2.0, kInf);
  p.add_constraint("c", {{x, 1.0}}, RowSense::kLe, 5.0);
  const auto sf = to_standard_form(p);
  // substitution y = x - 2 makes the row y <= 3.
  EXPECT_DOUBLE_EQ(sf.b[0], 3.0);
  EXPECT_DOUBLE_EQ(sf.objective_offset, 2.0);
  const auto x_back = sf.recover(std::vector<double>{0.0, 3.0});
  EXPECT_DOUBLE_EQ(x_back[0], 2.0);  // y = 0 -> x = 2
  EXPECT_DOUBLE_EQ(sf.original_objective(0.0), 2.0);
}

TEST(StandardForm, NegatedUpperBoundOnly) {
  // x <= -1 with no lower bound: y = -1 - x >= 0, x = -1 - y.
  LpProblem p;
  const auto x = p.add_variable("x", 1.0, -kInf, -1.0);
  p.add_constraint("c", {{x, 1.0}}, RowSense::kGe, -4.0);
  const auto sf = to_standard_form(p);
  // x = u - y with u = -1: recover from y.
  const auto x1 = sf.recover(std::vector<double>(sf.num_cols(), 0.0));
  EXPECT_DOUBLE_EQ(x1[0], -1.0);
  std::vector<double> y(sf.num_cols(), 0.0);
  y[0] = 2.0;
  EXPECT_DOUBLE_EQ(sf.recover(y)[0], -3.0);
  // objective offset: c*u = -1.
  EXPECT_DOUBLE_EQ(sf.objective_offset, -1.0);
}

TEST(StandardForm, DoubleBoundAddsUpperRow) {
  LpProblem p;
  const auto x = p.add_variable("x", 1.0, -3.0, 3.0);
  p.add_constraint("c", {{x, 1.0}}, RowSense::kLe, 2.0);
  const auto sf = to_standard_form(p);
  // Rows: original constraint + bound row y <= 6.
  EXPECT_EQ(sf.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(sf.b[1], 6.0);
  // original row: y - 3 <= 2 -> y <= 5.
  EXPECT_DOUBLE_EQ(sf.b[0], 5.0);
}

TEST(StandardForm, FixedVariableBecomesZeroRange) {
  LpProblem p;
  (void)p.add_variable("x", 1.0, 4.0, 4.0);
  const auto sf = to_standard_form(p);
  // y in [0, 0]: bound row rhs is 0.
  EXPECT_DOUBLE_EQ(sf.b.back(), 0.0);
  EXPECT_DOUBLE_EQ(sf.recover(std::vector<double>(sf.num_cols(), 0.0))[0],
                   4.0);
}

TEST(StandardForm, FreeVariableSplits) {
  LpProblem p;
  const auto x = p.add_variable("x", 5.0, -kInf, kInf);
  p.add_constraint("c", {{x, 2.0}}, RowSense::kEq, -6.0);
  const auto sf = to_standard_form(p);
  // Two structural columns with opposite costs.
  EXPECT_DOUBLE_EQ(sf.c[0], 5.0);
  EXPECT_DOUBLE_EQ(sf.c[1], -5.0);
  std::vector<double> y(sf.num_cols(), 0.0);
  y[0] = 1.0;
  y[1] = 4.0;
  EXPECT_DOUBLE_EQ(sf.recover(y)[0], -3.0);
  // Equality row with negative rhs must have been flipped to b >= 0.
  EXPECT_DOUBLE_EQ(sf.b[0], 6.0);
  // coefficient signs flipped accordingly: -2 y0 + 2 y1 = 6.
  const auto ay = apply_rows(sf, y);
  EXPECT_DOUBLE_EQ(ay[0], 6.0);
}

TEST(StandardForm, NegativeRhsFlipsSense) {
  LpProblem p;
  const auto x = p.add_variable("x", 1.0);
  p.add_constraint("le", {{x, 1.0}}, RowSense::kLe, -2.0);  // -> >= with b=2
  const auto sf = to_standard_form(p);
  EXPECT_DOUBLE_EQ(sf.b[0], 2.0);
  // A '>=' row gets a surplus (-1) column, not a crash slack.
  EXPECT_EQ(sf.slack_col[0], -1);
  bool has_minus_one = false;
  for (const Term& t : sf.rows[0]) has_minus_one |= t.coef == -1.0;
  EXPECT_TRUE(has_minus_one);
}

TEST(StandardForm, MaximizeIsNegated) {
  LpProblem p(Objective::kMaximize);
  const auto x = p.add_variable("x", 3.0);
  p.add_constraint("c", {{x, 1.0}}, RowSense::kLe, 2.0);
  const auto sf = to_standard_form(p);
  EXPECT_TRUE(sf.negated);
  EXPECT_DOUBLE_EQ(sf.c[0], -3.0);
  // standard-form z_min = -6 at y = 2 -> original max objective 6.
  EXPECT_DOUBLE_EQ(sf.original_objective(-6.0), 6.0);
}

TEST(StandardForm, SurplusForGeRows) {
  LpProblem p;
  const auto x = p.add_variable("x", 1.0);
  p.add_constraint("c", {{x, 1.0}}, RowSense::kGe, 3.0);
  const auto sf = to_standard_form(p);
  EXPECT_EQ(sf.slack_col[0], -1);
  EXPECT_EQ(sf.num_cols(), 2u);
  // Check equality holds with surplus: x - s = 3 at x=5, s=2.
  const auto ay = apply_rows(sf, std::vector<double>{5.0, 2.0});
  EXPECT_DOUBLE_EQ(ay[0], 3.0);
}

TEST(StandardForm, EqualityRowsGetNoAuxiliaryColumn) {
  LpProblem p;
  const auto x = p.add_variable("x", 1.0);
  p.add_constraint("c", {{x, 1.0}}, RowSense::kEq, 3.0);
  const auto sf = to_standard_form(p);
  EXPECT_EQ(sf.num_cols(), 1u);
  EXPECT_EQ(sf.slack_col[0], -1);
}

TEST(StandardForm, DenseAndCsrAgree) {
  LpProblem p(Objective::kMaximize);
  const auto x = p.add_variable("x", 1.0, 1.0, 4.0);
  const auto y = p.add_variable("y", 2.0, -kInf, kInf);
  p.add_constraint("c1", {{x, 2.0}, {y, -1.0}}, RowSense::kLe, 5.0);
  p.add_constraint("c2", {{x, 1.0}, {y, 1.0}}, RowSense::kGe, -1.0);
  const auto sf = to_standard_form(p);
  const auto dense = sf.dense_a();
  const auto csr = sf.csr_a();
  ASSERT_EQ(dense.rows(), csr.rows());
  ASSERT_EQ(dense.cols(), csr.cols());
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      EXPECT_DOUBLE_EQ(dense(i, j), csr.at(i, j));
    }
  }
  EXPECT_EQ(sf.num_nonzeros(), csr.nnz());
}

TEST(StandardForm, ColumnNamesCoverAllColumns) {
  LpProblem p;
  const auto x = p.add_variable("x", 1.0, -kInf, kInf);
  p.add_constraint("c", {{x, 1.0}}, RowSense::kLe, 1.0);
  const auto sf = to_standard_form(p);
  EXPECT_EQ(sf.col_names.size(), sf.num_cols());
  EXPECT_EQ(sf.col_names[0], "x_pos");
  EXPECT_EQ(sf.col_names[1], "x_neg");
}

// ------------------------------------------------------------ augmentation

TEST(Augment, PureLeProblemNeedsNoArtificials) {
  LpProblem p;
  const auto x = p.add_variable("x", -1.0);
  p.add_constraint("c1", {{x, 1.0}}, RowSense::kLe, 4.0);
  p.add_constraint("c2", {{x, 2.0}}, RowSense::kLe, 6.0);
  const auto sf = to_standard_form(p);
  const auto aug = simplex::augment(sf);
  EXPECT_EQ(aug.num_artificial, 0u);
  EXPECT_EQ(aug.n_aug, aug.n);
  // slack crash basis: beta = b, identity B^-1.
  EXPECT_DOUBLE_EQ(aug.beta_init[0], 4.0);
  EXPECT_DOUBLE_EQ(aug.binv_diag[1], 1.0);
  EXPECT_TRUE(aug.c_phase1.empty() ||
              *std::max_element(aug.c_phase1.begin(), aug.c_phase1.end()) ==
                  0.0);
}

TEST(Augment, GeAndEqRowsGetArtificials) {
  LpProblem p;
  const auto x = p.add_variable("x", 1.0);
  p.add_constraint("le", {{x, 1.0}}, RowSense::kLe, 4.0);
  p.add_constraint("ge", {{x, 1.0}}, RowSense::kGe, 1.0);
  p.add_constraint("eq", {{x, 1.0}}, RowSense::kEq, 2.0);
  const auto sf = to_standard_form(p);
  const auto aug = simplex::augment(sf);
  EXPECT_EQ(aug.num_artificial, 2u);
  EXPECT_EQ(aug.artificial_rows.size(), 2u);
  EXPECT_EQ(aug.artificial_rows[0], 1u);
  EXPECT_EQ(aug.artificial_rows[1], 2u);
  // phase-1 costs: 1 exactly on artificial columns.
  for (std::size_t j = 0; j < aug.n_aug; ++j) {
    EXPECT_DOUBLE_EQ(aug.c_phase1[j], aug.is_artificial[j] ? 1.0 : 0.0);
    EXPECT_DOUBLE_EQ(aug.c_phase2[j],
                     aug.is_artificial[j] ? 0.0 : sf.c[j]);
  }
}

TEST(Augment, MatrixFormsAgree) {
  LpProblem p;
  const auto x = p.add_variable("x", 1.0);
  const auto y = p.add_variable("y", -1.0);
  p.add_constraint("c1", {{x, 1.0}, {y, 2.0}}, RowSense::kGe, 1.0);
  p.add_constraint("c2", {{x, 3.0}}, RowSense::kLe, 9.0);
  const auto sf = to_standard_form(p);
  const auto aug = simplex::augment(sf);
  const auto at = aug.dense_at();
  const auto a = aug.dense_a();
  const auto csr_at = aug.csr_at();
  ASSERT_EQ(at.rows(), aug.n_aug);
  ASSERT_EQ(at.cols(), aug.m);
  for (std::size_t j = 0; j < aug.n_aug; ++j) {
    for (std::size_t i = 0; i < aug.m; ++i) {
      EXPECT_DOUBLE_EQ(at(j, i), a(i, j));
      EXPECT_DOUBLE_EQ(at(j, i), csr_at.at(j, i));
    }
  }
}

TEST(Augment, CrashBasisRespectsScaledSlackCoefficient) {
  LpProblem p;
  const auto x = p.add_variable("x", 1.0);
  p.add_constraint("c", {{x, 4.0}}, RowSense::kLe, 8.0);
  auto sf = to_standard_form(p);
  // Manually scale the row by 0.5 (slack coefficient becomes 0.5).
  for (Term& t : sf.rows[0]) t.coef *= 0.5;
  sf.b[0] *= 0.5;
  const auto aug = simplex::augment(sf);
  EXPECT_DOUBLE_EQ(aug.binv_diag[0], 2.0);   // 1 / 0.5
  EXPECT_DOUBLE_EQ(aug.beta_init[0], 8.0);   // 4.0 / 0.5
}

}  // namespace
}  // namespace gs::lp
