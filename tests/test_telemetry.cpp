// Telemetry + SLO tests: the shared quantile helper (pinned against the
// two legacy nearest-rank formulas it replaced), power-of-two series
// downsampling, MetricsSnapshot::diff deltas, the SLO engine's burn-rate
// alerting and error-budget verdicts, spec parsing, and the two
// determinism guarantees every observer must keep — bit-identical solves
// when attached, byte-identical artifacts across identical runs and
// worker counts (OBSERVABILITY.md, "Telemetry & SLOs").
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "lp/generators.hpp"
#include "metrics/metrics.hpp"
#include "metrics/quantile.hpp"
#include "record/record.hpp"
#include "service/service.hpp"
#include "simplex/solver.hpp"
#include "support/error.hpp"
#include "telemetry/telemetry.hpp"
#include "vgpu/device.hpp"

namespace {

using namespace gs;

lp::LpProblem tiny_lp(std::uint64_t seed = 7) {
  return lp::random_dense_lp({.rows = 16, .cols = 16, .seed = seed});
}

simplex::SolveResult solve_device(const lp::LpProblem& problem,
                                  simplex::SolverOptions opt = {}) {
  vgpu::Device dev(vgpu::gtx280_model());
  simplex::DeviceRevisedSimplex<double> solver(dev, opt);
  return solver.solve(problem);
}

// ---------------------------------------------------------------------
// Shared quantile helper.
// ---------------------------------------------------------------------

// quantile_rank generalises the two expressions the bench/CLI surfaces
// used to duplicate; the equivalence is pinned for every sample size the
// harnesses can produce so the historical p50/p99 numbers cannot drift.
TEST(Quantile, RankMatchesLegacyFormulas) {
  for (std::size_t n = 1; n <= 4096; ++n) {
    const std::size_t legacy_p50 = (n - 1) / 2;
    const std::size_t legacy_p99 = std::min(n - 1, (n * 99 + 99) / 100 - 1);
    EXPECT_EQ(metrics::quantile_rank(n, 0.50), legacy_p50) << n;
    EXPECT_EQ(metrics::quantile_rank(n, 0.99), legacy_p99) << n;
  }
  EXPECT_EQ(metrics::quantile_rank(0, 0.5), 0u);
  EXPECT_EQ(metrics::quantile_rank(10, 0.0), 0u);
  EXPECT_EQ(metrics::quantile_rank(10, 1.0), 9u);
}

TEST(Quantile, SortedSelectsNearestRank) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(metrics::quantile_sorted(v, 0.50), 2.0);
  EXPECT_EQ(metrics::quantile_sorted(v, 0.99), 4.0);
  EXPECT_EQ(metrics::quantile_sorted({}, 0.99), 0.0);
}

TEST(Quantile, HistogramInterpolatesAndClamps) {
  const std::vector<double> bounds{1.0, 2.0, 4.0, 8.0};
  // All four observations in the (1, 2] bucket; counts carry the
  // trailing overflow bucket the Histogram layout uses.
  std::vector<std::uint64_t> counts{0, 4, 0, 0, 0};
  // Nearest rank 1 of 4 -> half-filled bucket, linear interpolation.
  EXPECT_DOUBLE_EQ(metrics::quantile_histogram(bounds, counts, 0.50), 1.5);
  // Exact extremes clamp the estimate: a bucket holding one repeated
  // value reports that value, not the bucket edge.
  EXPECT_DOUBLE_EQ(
      metrics::quantile_histogram(bounds, counts, 0.50, 1.7, 1.7), 1.7);
  // Overflow bucket has no upper edge; the known sample_min recovers a
  // usable estimate instead of the lower edge.
  counts = {0, 0, 0, 0, 3};
  EXPECT_DOUBLE_EQ(metrics::quantile_histogram(bounds, counts, 0.99), 8.0);
  EXPECT_DOUBLE_EQ(
      metrics::quantile_histogram(bounds, counts, 0.99, 10.0, 20.0), 10.0);
  counts = {0, 0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(metrics::quantile_histogram(bounds, counts, 0.99), 0.0);
}

// ---------------------------------------------------------------------
// Series retention.
// ---------------------------------------------------------------------

// 100 arrivals into a capacity-8 series: the stride doubles on every
// fill (1 -> 2 -> 4 -> 8 -> 16) and the retained points stay a uniform
// subsample — every 16th arrival — purely as a function of arrival count.
TEST(TelemetrySeries, DownsamplesByPowersOfTwo) {
  telemetry::Series s(8);
  for (std::size_t i = 0; i < 100; ++i) {
    s.record(double(i), 2.0 * double(i));
  }
  EXPECT_EQ(s.arrivals(), 100u);
  EXPECT_EQ(s.stride(), 16u);
  ASSERT_EQ(s.points().size(), 7u);
  for (std::size_t k = 0; k < s.points().size(); ++k) {
    EXPECT_DOUBLE_EQ(s.points()[k].t, double(16 * k));
    EXPECT_DOUBLE_EQ(s.points()[k].v, 2.0 * double(16 * k));
  }
}

// ---------------------------------------------------------------------
// MetricsSnapshot::diff.
// ---------------------------------------------------------------------

TEST(MetricsDiff, SubtractsCountersAndHistograms) {
  metrics::MetricsRegistry reg;
  reg.counter("work").inc(3.0);
  reg.histogram("lat", metrics::seconds_buckets()).observe(1e-6);
  reg.warn({.kind = "early"});
  const metrics::MetricsSnapshot base = reg.snapshot();

  reg.counter("work").inc(2.0);
  reg.counter("fresh").inc(1.0);
  reg.gauge("depth").set(5.0);
  reg.histogram("lat", metrics::seconds_buckets()).observe(1e-6);
  reg.histogram("lat", metrics::seconds_buckets()).observe(2e-6);
  reg.warn({.kind = "late"});
  const metrics::MetricsSnapshot delta = reg.snapshot().diff(base);

  EXPECT_DOUBLE_EQ(delta.counters.at("work"), 2.0);
  EXPECT_DOUBLE_EQ(delta.counters.at("fresh"), 1.0);
  // Gauges are last-write-wins: the current value passes through.
  EXPECT_DOUBLE_EQ(delta.gauges.at("depth").value, 5.0);
  EXPECT_EQ(delta.histograms.at("lat").count, 2u);
  // Only the suffix of warnings recorded after the base remains.
  ASSERT_EQ(delta.warnings.size(), 1u);
  EXPECT_EQ(delta.warnings[0].kind, "late");
  EXPECT_EQ(delta.warnings_total, 1u);
}

// ---------------------------------------------------------------------
// SLO engine.
// ---------------------------------------------------------------------

TEST(SloSpec, ParsesEveryClauseKind) {
  const telemetry::SloSpec spec = telemetry::SloSpec::parse(
      "p99<=20ms, miss<=0.01, reject<=0.05, hit>=0.9, fast=3, slow=12, "
      "burn=2");
  ASSERT_EQ(spec.objectives.size(), 4u);
  EXPECT_EQ(spec.objectives[0].kind, telemetry::SloKind::kLatencyP99);
  EXPECT_DOUBLE_EQ(spec.objectives[0].target, 0.02);
  EXPECT_EQ(spec.objectives[1].kind, telemetry::SloKind::kDeadlineMissRate);
  EXPECT_DOUBLE_EQ(spec.objectives[1].target, 0.01);
  EXPECT_EQ(spec.objectives[2].kind, telemetry::SloKind::kRejectRate);
  EXPECT_EQ(spec.objectives[3].kind, telemetry::SloKind::kWarmHitRate);
  EXPECT_EQ(spec.fast_window, 3u);
  EXPECT_EQ(spec.slow_window, 12u);
  EXPECT_DOUBLE_EQ(spec.burn_threshold, 2.0);
  // Latency suffixes: us and bare seconds.
  EXPECT_DOUBLE_EQ(
      telemetry::SloSpec::parse("p99<=800us").objectives[0].target, 8e-4);
  EXPECT_DOUBLE_EQ(
      telemetry::SloSpec::parse("p99<=2.5s").objectives[0].target, 2.5);
  // slow is clamped up to fast so the multi-window guard stays sane.
  EXPECT_EQ(telemetry::SloSpec::parse("fast=8,slow=2").slow_window, 8u);
}

TEST(SloSpec, RejectsMalformedClauses) {
  EXPECT_THROW((void)telemetry::SloSpec::parse("frobnicate<=1"), Error);
  EXPECT_THROW((void)telemetry::SloSpec::parse("p99<=20xyz"), Error);
  EXPECT_THROW((void)telemetry::SloSpec::parse("miss<="), Error);
  EXPECT_THROW((void)telemetry::SloSpec::parse("fast=0"), Error);
}

telemetry::ServiceSample miss_sample(double t, std::uint64_t completed,
                                     std::uint64_t missed) {
  telemetry::ServiceSample s;
  s.t = t;
  s.interval_seconds = 1e-3;
  s.completed = completed;
  s.deadline_missed = missed;
  return s;
}

// A burst of deadline misses must raise exactly one firing edge (both
// windows over the burn threshold), resolve once the fast window clears,
// and still blow the whole-run error budget.
TEST(SloEngine, BurnRateAlertFiresAndResolves) {
  telemetry::SloSpec spec = telemetry::SloSpec::parse("miss<=0.01,fast=2,slow=4");
  telemetry::SloEngine eng(spec);

  // 50% miss rate: burn 50x against the 1% budget -> fires immediately.
  auto edges = eng.observe(miss_sample(0.001, 10, 5));
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_TRUE(edges[0].firing);
  EXPECT_EQ(edges[0].objective, "miss<=0.01");
  EXPECT_DOUBLE_EQ(edges[0].t, 0.001);

  // One clean sample: the fast window still holds the bad one -> firing.
  EXPECT_TRUE(eng.observe(miss_sample(0.002, 10, 0)).empty());
  // A second clean sample flushes the fast window -> resolved edge.
  edges = eng.observe(miss_sample(0.003, 10, 0));
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_FALSE(edges[0].firing);
  EXPECT_TRUE(eng.observe(miss_sample(0.004, 10, 0)).empty());

  const auto verdicts = eng.attainment();
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].alerts_fired, 1u);
  EXPECT_FALSE(verdicts[0].firing);
  // 5 bad of 40 total = 12.5% against a 1% budget: violated.
  EXPECT_DOUBLE_EQ(verdicts[0].observed, 0.125);
  EXPECT_DOUBLE_EQ(verdicts[0].budget_consumed, 12.5);
  EXPECT_TRUE(verdicts[0].violated);
  EXPECT_TRUE(eng.violated());
}

TEST(SloEngine, CleanRunAttainsEverything) {
  telemetry::SloEngine eng(
      telemetry::SloSpec::parse("miss<=0.01,reject<=0.05"));
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(eng.observe(miss_sample(1e-3 * (i + 1), 10, 0)).empty());
  }
  EXPECT_FALSE(eng.violated());
  for (const telemetry::SloAttainment& a : eng.attainment()) {
    EXPECT_DOUBLE_EQ(a.attainment, 1.0);
    EXPECT_DOUBLE_EQ(a.budget_consumed, 0.0);
    EXPECT_EQ(a.alerts_fired, 0u);
  }
}

// ---------------------------------------------------------------------
// Engine wiring: series content and the bit-identical-when-off contract.
// ---------------------------------------------------------------------

TEST(TelemetryEngine, DeviceSolveRecordsSeriesOnModeledClock) {
  telemetry::Telemetry tel;
  simplex::SolverOptions opt;
  opt.telemetry = &tel;
  const auto result = solve_device(tiny_lp(), opt);
  ASSERT_TRUE(result.optimal());

  const auto& series = tel.series();
  ASSERT_TRUE(series.contains("engine.objective"));
  ASSERT_TRUE(series.contains("engine.residual_inf"));
  const auto& obj = series.at("engine.objective");
  EXPECT_GT(obj.points().size(), 0u);
  // Timestamps ride the modeled device clock: monotone, within the solve.
  double prev = -1.0;
  for (const auto& p : obj.points()) {
    EXPECT_GT(p.t, prev);
    prev = p.t;
    EXPECT_LE(p.t, result.stats.sim_seconds);
  }
  // The last recorded objective is the optimum the solve reported.
  EXPECT_DOUBLE_EQ(obj.points().back().v, result.objective);
}

TEST(TelemetryEngine, HostSolveRecordsSeries) {
  telemetry::Telemetry tel;
  simplex::SolverOptions opt;
  opt.telemetry = &tel;
  const auto result = simplex::HostRevisedSimplex(opt).solve(tiny_lp());
  ASSERT_TRUE(result.optimal());
  ASSERT_TRUE(tel.series().contains("engine.objective"));
  EXPECT_DOUBLE_EQ(tel.series().at("engine.objective").points().back().v,
                   result.objective);
}

// Attaching telemetry must not change a single pivot or modeled cost:
// the recorder sees identical decision streams and DeviceStats matches
// bit-for-bit (EXPECT_EQ on doubles is deliberate).
TEST(TelemetryEngine, DeviceSolveIsBitIdenticalWithTelemetryAttached) {
  record::Recorder plain_rec, tel_rec;
  simplex::SolverOptions plain_opt;
  plain_opt.recorder = &plain_rec;
  const auto plain = solve_device(tiny_lp(), plain_opt);

  telemetry::Telemetry tel;
  simplex::SolverOptions tel_opt;
  tel_opt.recorder = &tel_rec;
  tel_opt.telemetry = &tel;
  const auto with_tel = solve_device(tiny_lp(), tel_opt);

  const record::DiffResult dr =
      record::diff(plain_rec.recording(), tel_rec.recording());
  EXPECT_TRUE(dr.comparable);
  EXPECT_FALSE(dr.diverged);
  EXPECT_DOUBLE_EQ(dr.max_reduced_cost_delta, 0.0);

  EXPECT_EQ(plain.objective, with_tel.objective);
  EXPECT_EQ(plain.x, with_tel.x);
  EXPECT_EQ(plain.stats.iterations, with_tel.stats.iterations);
  EXPECT_EQ(plain.stats.sim_seconds, with_tel.stats.sim_seconds);
  EXPECT_EQ(plain.stats.device_stats.kernel_seconds,
            with_tel.stats.device_stats.kernel_seconds);
  EXPECT_EQ(plain.stats.device_stats.kernel_launches,
            with_tel.stats.device_stats.kernel_launches);
}

TEST(TelemetryEngine, HostSolveIsBitIdenticalWithTelemetryAttached) {
  record::Recorder plain_rec, tel_rec;
  simplex::SolverOptions plain_opt;
  plain_opt.recorder = &plain_rec;
  const auto plain = simplex::HostRevisedSimplex(plain_opt).solve(tiny_lp());

  telemetry::Telemetry tel;
  simplex::SolverOptions tel_opt;
  tel_opt.recorder = &tel_rec;
  tel_opt.telemetry = &tel;
  const auto with_tel = simplex::HostRevisedSimplex(tel_opt).solve(tiny_lp());

  const record::DiffResult dr =
      record::diff(plain_rec.recording(), tel_rec.recording());
  EXPECT_TRUE(dr.comparable);
  EXPECT_FALSE(dr.diverged);
  EXPECT_EQ(plain.objective, with_tel.objective);
  EXPECT_EQ(plain.stats.sim_seconds, with_tel.stats.sim_seconds);
}

// ---------------------------------------------------------------------
// Service wiring: sampling, determinism, inertness.
// ---------------------------------------------------------------------

struct TrafficOut {
  std::vector<double> latencies;  // submission order
  double rounds = 0.0;
};

TrafficOut run_traffic(const service::DispatchPolicy& policy,
                       telemetry::Telemetry* tel, std::size_t m = 16,
                       std::size_t k = 8) {
  metrics::MetricsRegistry reg;
  service::SolveService svc(policy, &reg);
  svc.set_telemetry(tel);
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < k; ++i) {
    service::SolveRequest req;
    req.problem =
        lp::random_dense_lp({.rows = m, .cols = m, .seed = 700 + i});
    const service::Ticket t = svc.submit(std::move(req));
    if (t.accepted) ids.push_back(t.id);
  }
  svc.drain();
  TrafficOut out;
  for (const std::uint64_t id : ids) {
    out.latencies.push_back(svc.result(id).latency_seconds);
  }
  out.rounds = reg.counter("service.batch.rounds").value();
  return out;
}

TEST(TelemetryService, SamplesCompletionsAndEmitsDrainEvent) {
  telemetry::Telemetry tel;
  tel.set_slo(telemetry::SloSpec::parse("p99<=1s,miss<=0.5"));
  const TrafficOut t = run_traffic({}, &tel);
  ASSERT_EQ(t.latencies.size(), 8u);

  const auto& series = tel.series();
  ASSERT_TRUE(series.contains("service.completed"));
  std::uint64_t completed = 0;
  for (const auto& p : series.at("service.completed").points()) {
    completed += static_cast<std::uint64_t>(p.v);
  }
  EXPECT_EQ(completed, 8u);
  ASSERT_TRUE(series.contains("service.latency_p99_seconds"));
  bool saw_drain = false;
  for (const auto& e : tel.events()) saw_drain = saw_drain || e.name == "drain";
  EXPECT_TRUE(saw_drain);
  // The registry sampler runs at drain end and sees the service counters.
  EXPECT_TRUE(series.contains("registry.service.batch.rounds"));
  EXPECT_FALSE(tel.slo_violated());
}

// The artifact is a pure function of the modeled run: byte-identical
// across repeats and across worker counts (workers only shorten real
// time, never modeled time — tests/test_service.cpp pins the results
// themselves; this pins the telemetry view of them).
TEST(TelemetryService, ArtifactIsByteIdenticalAcrossRunsAndWorkers) {
  const telemetry::SloSpec spec =
      telemetry::SloSpec::parse("p99<=1s,miss<=0.5,reject<=0.5,hit>=0");
  std::vector<std::string> jsons;
  for (const std::size_t workers : {std::size_t{0}, std::size_t{0},
                                    std::size_t{4}}) {
    telemetry::Telemetry tel;
    tel.set_slo(spec);
    service::DispatchPolicy policy;
    policy.workers = workers;
    (void)run_traffic(policy, &tel);
    jsons.push_back(tel.to_json());
  }
  EXPECT_EQ(jsons[0], jsons[1]);  // repeat run
  EXPECT_EQ(jsons[0], jsons[2]);  // worker count
  EXPECT_NE(jsons[0].find("gs-telemetry-v1"), std::string::npos);
}

// Attaching telemetry to the service must leave every latency and the
// scheduler's round structure untouched.
TEST(TelemetryService, ServiceResultsUnchangedWithTelemetryAttached) {
  const TrafficOut plain = run_traffic({}, nullptr);
  telemetry::Telemetry tel;
  const TrafficOut with_tel = run_traffic({}, &tel);
  EXPECT_EQ(plain.latencies, with_tel.latencies);
  EXPECT_EQ(plain.rounds, with_tel.rounds);
}

// ---------------------------------------------------------------------
// Exposition formats.
// ---------------------------------------------------------------------

TEST(TelemetryFormats, PrometheusExposesLatestValues) {
  telemetry::Telemetry tel;
  tel.record("engine.objective", 1e-3, 5.0);
  tel.record("engine.objective", 2e-3, 7.0);
  const std::string text = tel.to_prometheus();
  // Name mangled to the Prometheus charset, latest value only.
  EXPECT_NE(text.find("gs_engine_objective 7"), std::string::npos);
  EXPECT_EQ(text.find("5\n"), std::string::npos);
  EXPECT_NE(text.find("gs_telemetry_events_total 0"), std::string::npos);
}

TEST(TelemetryFormats, EventCapIsCountedNotSilent) {
  telemetry::TelemetryConfig cfg;
  cfg.event_capacity = 2;
  telemetry::Telemetry tel(cfg);
  tel.event("a", 1e-3);
  tel.event("b", 2e-3);
  tel.event("c", 3e-3);
  EXPECT_EQ(tel.events().size(), 2u);
  EXPECT_NE(tel.to_json().find("\"events_dropped\": 1"), std::string::npos);
}

}  // namespace
