// Sensitivity-ranging tests: textbook Wyndor ranges plus perturbation-based
// verification on random instances (inside a range the duals/point persist;
// the objective moves linearly at the dual rate).
#include <gtest/gtest.h>

#include <cmath>

#include "lp/generators.hpp"
#include "lp/problem.hpp"
#include "simplex/solver.hpp"

namespace gs::simplex {
namespace {

using lp::LpProblem;
using lp::Objective;
using lp::RowSense;

[[nodiscard]] LpProblem wyndor() {
  LpProblem p(Objective::kMaximize, "wyndor");
  const auto x = p.add_variable("x", 3.0);
  const auto y = p.add_variable("y", 5.0);
  p.add_constraint("plant1", {{x, 1.0}}, RowSense::kLe, 4.0);
  p.add_constraint("plant2", {{y, 2.0}}, RowSense::kLe, 12.0);
  p.add_constraint("plant3", {{x, 3.0}, {y, 2.0}}, RowSense::kLe, 18.0);
  return p;
}

[[nodiscard]] SolveResult solve_with_ranging(const LpProblem& p) {
  SolverOptions opt;
  opt.ranging = true;
  return HostRevisedSimplex(opt).solve(p);
}

[[nodiscard]] LpProblem with_rhs(const LpProblem& base, std::size_t row,
                                 double rhs) {
  LpProblem p(base.objective(), "perturbed");
  for (const auto& v : base.variables()) {
    p.add_variable(v.name, v.objective_coef, v.lower, v.upper);
  }
  for (std::size_t i = 0; i < base.num_constraints(); ++i) {
    const auto& con = base.constraint(i);
    p.add_constraint(con.name, con.terms, con.sense,
                     i == row ? rhs : con.rhs);
  }
  return p;
}

[[nodiscard]] LpProblem with_cost(const LpProblem& base, std::size_t var,
                                  double cost) {
  LpProblem p(base.objective(), "perturbed");
  for (std::size_t j = 0; j < base.num_variables(); ++j) {
    const auto& v = base.variable(j);
    p.add_variable(v.name, j == var ? cost : v.objective_coef, v.lower,
                   v.upper);
  }
  for (std::size_t i = 0; i < base.num_constraints(); ++i) {
    const auto& con = base.constraint(i);
    p.add_constraint(con.name, con.terms, con.sense, con.rhs);
  }
  return p;
}

TEST(Ranging, WyndorRhsRangesMatchTextbook) {
  const SolveResult r = solve_with_ranging(wyndor());
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  ASSERT_TRUE(r.ranging.has_value());
  const RangingInfo& rg = *r.ranging;
  // b1 in [2, inf): slack 2 at the optimum, never binding above.
  EXPECT_NEAR(rg.rhs_lower[0], 2.0, 1e-9);
  EXPECT_TRUE(std::isinf(rg.rhs_upper[0]));
  // b2 in [6, 18].
  EXPECT_NEAR(rg.rhs_lower[1], 6.0, 1e-9);
  EXPECT_NEAR(rg.rhs_upper[1], 18.0, 1e-9);
  // b3 in [12, 24].
  EXPECT_NEAR(rg.rhs_lower[2], 12.0, 1e-9);
  EXPECT_NEAR(rg.rhs_upper[2], 24.0, 1e-9);
}

TEST(Ranging, WyndorCostRangesMatchTextbook) {
  const SolveResult r = solve_with_ranging(wyndor());
  ASSERT_TRUE(r.ranging.has_value());
  const RangingInfo& rg = *r.ranging;
  // c_doors in [0, 7.5], c_windows in [2, inf).
  EXPECT_NEAR(rg.cost_lower[0], 0.0, 1e-9);
  EXPECT_NEAR(rg.cost_upper[0], 7.5, 1e-9);
  EXPECT_NEAR(rg.cost_lower[1], 2.0, 1e-9);
  EXPECT_TRUE(std::isinf(rg.cost_upper[1]));
}

TEST(Ranging, NotComputedUnlessRequested) {
  const SolveResult r = solve(wyndor(), Engine::kHostRevised);
  EXPECT_FALSE(r.ranging.has_value());
}

TEST(Ranging, GeRowRangeIsCorrectlyOriented) {
  // min 2x s.t. x >= 3, x <= 10: rhs of the '>=' row ranges over [0, 10].
  LpProblem p(Objective::kMinimize, "ge");
  const auto x = p.add_variable("x", 2.0);
  p.add_constraint("floor", {{x, 1.0}}, RowSense::kGe, 3.0);
  p.add_constraint("cap", {{x, 1.0}}, RowSense::kLe, 10.0);
  const SolveResult r = solve_with_ranging(p);
  ASSERT_TRUE(r.ranging.has_value());
  EXPECT_NEAR(r.ranging->rhs_lower[0], 0.0, 1e-9);
  EXPECT_NEAR(r.ranging->rhs_upper[0], 10.0, 1e-9);
}

TEST(Ranging, FlippedRowRangeIsCorrectlyOriented) {
  // max x with x <= 10 and -x <= -3 (i.e. x >= 3; stored flipped because
  // its rhs is negative). Optimum 10 at the cap; the flipped row is slack
  // by 7 in x-units, so its rhs ranges over [-10, inf) with dual 0.
  LpProblem p(Objective::kMaximize, "flipped");
  const auto x = p.add_variable("x", 1.0);
  p.add_constraint("floor", {{x, -1.0}}, RowSense::kLe, -3.0);
  p.add_constraint("cap", {{x, 1.0}}, RowSense::kLe, 10.0);
  const SolveResult r = solve_with_ranging(p);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 10.0, 1e-9);
  EXPECT_NEAR(r.y[0], 0.0, 1e-9);
  ASSERT_TRUE(r.ranging.has_value());
  EXPECT_NEAR(r.ranging->rhs_lower[0], -10.0, 1e-9);
  EXPECT_TRUE(std::isinf(r.ranging->rhs_upper[0]) &&
              r.ranging->rhs_upper[0] > 0);
  // The free-split caveat in reverse: a range for a binding flipped row.
  // min x with x free and x >= -4: the split variable's basis flips at
  // x = 0, so the basis-stays-optimal range tops out at rhs = 0.
  LpProblem q(Objective::kMinimize, "flipped_free");
  const auto z = q.add_variable("z", 1.0, -lp::kInf, lp::kInf);
  q.add_constraint("floor", {{z, 1.0}}, RowSense::kGe, -4.0);
  q.add_constraint("cap", {{z, 1.0}}, RowSense::kLe, 10.0);
  const SolveResult rq = solve_with_ranging(q);
  ASSERT_EQ(rq.status, SolveStatus::kOptimal);
  EXPECT_NEAR(rq.objective, -4.0, 1e-9);
  EXPECT_NEAR(rq.y[0], 1.0, 1e-9);
  EXPECT_NEAR(rq.ranging->rhs_upper[0], 0.0, 1e-9);
  EXPECT_TRUE(std::isinf(rq.ranging->rhs_lower[0]));
}

class RangingSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RangingSeeds, ObjectiveIsLinearAtTheDualRateInsideRhsRanges) {
  const auto problem =
      lp::random_dense_lp({.rows = 9, .cols = 9, .seed = GetParam()});
  const SolveResult base = solve_with_ranging(problem);
  ASSERT_EQ(base.status, SolveStatus::kOptimal);
  ASSERT_TRUE(base.ranging.has_value());
  for (std::size_t i = 0; i < problem.num_constraints(); ++i) {
    const double lo = base.ranging->rhs_lower[i];
    const double hi = base.ranging->rhs_upper[i];
    const double rhs = problem.constraint(i).rhs;
    EXPECT_LE(lo, rhs + 1e-9);
    EXPECT_GE(hi, rhs - 1e-9);
    // Step 60% of the way to the nearer finite end and verify linearity.
    double target = rhs;
    if (std::isfinite(hi) && hi > rhs + 1e-7) {
      target = rhs + 0.6 * (hi - rhs);
    } else if (std::isfinite(lo) && lo < rhs - 1e-7) {
      target = rhs + 0.6 * (lo - rhs);
    } else {
      continue;  // degenerate zero-width range
    }
    const SolveResult moved =
        solve(with_rhs(problem, i, target), Engine::kHostRevised);
    ASSERT_EQ(moved.status, SolveStatus::kOptimal);
    EXPECT_NEAR(moved.objective,
                base.objective + base.y[i] * (target - rhs),
                1e-6 * (1.0 + std::abs(base.objective)))
        << "row " << i;
  }
}

TEST_P(RangingSeeds, OptimalPointPersistsInsideCostRanges) {
  const auto problem =
      lp::random_dense_lp({.rows = 9, .cols = 9, .seed = GetParam() + 100});
  const SolveResult base = solve_with_ranging(problem);
  ASSERT_EQ(base.status, SolveStatus::kOptimal);
  ASSERT_TRUE(base.ranging.has_value());
  for (std::size_t j = 0; j < problem.num_variables(); ++j) {
    const double lo = base.ranging->cost_lower[j];
    const double hi = base.ranging->cost_upper[j];
    const double c = problem.variable(j).objective_coef;
    ASSERT_FALSE(std::isnan(lo));
    EXPECT_LE(lo, c + 1e-9);
    EXPECT_GE(hi, c - 1e-9);
    double target = c;
    if (std::isfinite(hi) && hi > c + 1e-7) {
      target = c + 0.6 * (hi - c);
    } else if (std::isfinite(lo) && lo < c - 1e-7) {
      target = c + 0.6 * (lo - c);
    } else {
      continue;
    }
    const SolveResult moved =
        solve(with_cost(problem, j, target), Engine::kHostRevised);
    ASSERT_EQ(moved.status, SolveStatus::kOptimal);
    for (std::size_t k = 0; k < base.x.size(); ++k) {
      EXPECT_NEAR(moved.x[k], base.x[k], 1e-6) << "var " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangingSeeds, ::testing::Values(1, 2, 3));

TEST(Ranging, FreeVariableCostRangeIsNan) {
  LpProblem p(Objective::kMinimize, "free");
  const auto x = p.add_variable("x", 1.0, -lp::kInf, lp::kInf);
  p.add_constraint("floor", {{x, 1.0}}, RowSense::kGe, -2.0);
  const SolveResult r = solve_with_ranging(p);
  ASSERT_TRUE(r.ranging.has_value());
  EXPECT_TRUE(std::isnan(r.ranging->cost_lower[0]));
  EXPECT_TRUE(std::isnan(r.ranging->cost_upper[0]));
}

}  // namespace
}  // namespace gs::simplex
