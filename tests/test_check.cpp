// Kernel-safety checker tests (CHECKING.md).
//
// Two halves: seeded-defect kernels that the checker MUST flag (race,
// out-of-bounds, NaN introduction, cost under-declaration — each reported
// with the kernel name), and the whole-solver negative test: every
// simplex engine solves dense instances under checked mode with zero
// findings, and checked mode perturbs neither results nor kernel stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "lp/generators.hpp"
#include "simplex/batch_revised.hpp"
#include "simplex/solver.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/check/check.hpp"
#include "vgpu/device.hpp"
#include "vgpu/machine_model.hpp"
#include "vgpu/primitives.hpp"

namespace gs {
namespace {

using vgpu::Device;
using vgpu::DeviceBuffer;
using vgpu::KernelCost;
using vgpu::check::Checker;
using vgpu::check::CheckConfig;
using vgpu::check::FindingKind;

bool has_finding(const Checker& chk, FindingKind kind, const char* kernel) {
  for (const auto& f : chk.findings()) {
    if (f.kind == kind && f.kernel == kernel) return true;
  }
  return false;
}

// -------------------------------------------------- seeded-defect kernels

TEST(Checker, DetectsCrossBlockWriteWriteRace) {
  Device dev(vgpu::gtx280_model());
  Checker chk;
  dev.set_checker(&chk);
  DeviceBuffer<double> buf(dev, 64);
  auto sp = buf.device_span();
  // Every block writes element 0: a textbook cross-block race.
  dev.launch_blocks("racy_accumulate", 64, 8, KernelCost{0.0, 64.0 * 8.0},
                    [&](std::size_t b, std::size_t, std::size_t) {
                      sp[0] = static_cast<double>(b);
                    });
  ASSERT_FALSE(chk.clean());
  EXPECT_TRUE(has_finding(chk, FindingKind::kRace, "racy_accumulate"));
  EXPECT_NE(chk.report().find("racy_accumulate"), std::string::npos);
}

TEST(Checker, DetectsCrossBlockReadWriteRace) {
  Device dev(vgpu::gtx280_model());
  Checker chk;
  dev.set_checker(&chk);
  DeviceBuffer<double> buf(dev, 64);
  auto sp = buf.device_span();
  // Block 0 writes element 0 while every other block reads it — unordered
  // blocks make the read's value undefined.
  dev.launch_blocks("racy_broadcast", 64, 8, KernelCost{0.0, 64.0 * 8.0},
                    [&](std::size_t b, std::size_t, std::size_t) {
                      if (b == 0) {
                        sp[0] = 1.0;
                      } else {
                        const double v = sp[0];
                        (void)v;
                      }
                    });
  ASSERT_FALSE(chk.clean());
  EXPECT_TRUE(has_finding(chk, FindingKind::kRace, "racy_broadcast"));
}

TEST(Checker, DisjointFootprintsAreClean) {
  Device dev(vgpu::gtx280_model());
  Checker chk;
  dev.set_checker(&chk);
  DeviceBuffer<double> in(dev, 1024), out(dev, 1024);
  auto is = in.device_span();
  auto os = out.device_span();
  dev.parallel_for("stream_copy", 1024, KernelCost{0.0, 2.0 * 1024 * 8},
                   [&](std::size_t i) { os[i] = is[i] + 1.0; });
  EXPECT_TRUE(chk.clean()) << chk.report();
  EXPECT_EQ(chk.launches_checked(), 1u);
}

TEST(Checker, SameBlockOverlapIsNotARace) {
  Device dev(vgpu::gtx280_model());
  Checker chk;
  dev.set_checker(&chk);
  DeviceBuffer<double> buf(dev, 8);
  auto sp = buf.device_span();
  // One block re-writes its own elements: serial within a block, legal.
  dev.launch_blocks("intra_block", 8, 8, KernelCost{0.0, 128.0},
                    [&](std::size_t, std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) sp[i] = 1.0;
                      for (std::size_t i = lo; i < hi; ++i) sp[i] += 1.0;
                    });
  EXPECT_TRUE(chk.clean()) << chk.report();
  EXPECT_EQ(buf.to_host()[3], 2.0);
}

TEST(Checker, DetectsOutOfBoundsReadWithoutCrashing) {
  Device dev(vgpu::gtx280_model());
  Checker chk;
  dev.set_checker(&chk);
  DeviceBuffer<double> buf(dev, 16);
  auto sp = buf.device_span();
  dev.parallel_for("oob_read", 16, KernelCost{0.0, 16.0 * 8.0},
                   [&](std::size_t i) {
                     // Classic off-by-one: reads sp[16] at i == 15.
                     const double v = (i + 1 < 17) ? sp[i + 1] : 0.0;
                     (void)v;
                   });
  ASSERT_FALSE(chk.clean());
  EXPECT_TRUE(has_finding(chk, FindingKind::kOutOfBounds, "oob_read"));
  EXPECT_NE(chk.report().find("index 16"), std::string::npos);
}

TEST(Checker, DetectsOutOfBoundsWriteAndRedirectsIt) {
  Device dev(vgpu::gtx280_model());
  Checker chk;
  dev.set_checker(&chk);
  DeviceBuffer<double> buf(dev, 8);
  auto sp = buf.device_span();
  dev.parallel_for("oob_write", 1, KernelCost{0.0, 8.0},
                   [&](std::size_t) { sp[8] = 7.0; });
  ASSERT_FALSE(chk.clean());
  EXPECT_TRUE(has_finding(chk, FindingKind::kOutOfBounds, "oob_write"));
  // The write was redirected to a scratch cell — storage is untouched.
  for (double v : buf.to_host()) EXPECT_EQ(v, 0.0);
}

TEST(Checker, OutOfBoundsCaughtEvenOutsideLaunches) {
  Device dev(vgpu::gtx280_model());
  Checker chk;
  dev.set_checker(&chk);
  DeviceBuffer<double> buf(dev, 4);
  auto sp = buf.device_span();
  const double v = sp[9];  // host-side slip: still bounds-checked
  EXPECT_EQ(v, 0.0);
  EXPECT_TRUE(has_finding(chk, FindingKind::kOutOfBounds, "<host>"));
}

TEST(Checker, DetectsNaNIntroduction) {
  Device dev(vgpu::gtx280_model());
  Checker chk;
  dev.set_checker(&chk);
  std::vector<double> host(32, 1.5);
  DeviceBuffer<double> in(dev, std::span<const double>(host));
  DeviceBuffer<double> out(dev, 32);
  auto is = in.device_span();
  auto os = out.device_span();
  dev.parallel_for("nan_maker", 32, KernelCost{32.0, 2.0 * 32 * 8},
                   [&](std::size_t i) {
                     os[i] = i == 7 ? std::numeric_limits<double>::quiet_NaN()
                                    : static_cast<double>(is[i]);
                   });
  ASSERT_FALSE(chk.clean());
  EXPECT_TRUE(has_finding(chk, FindingKind::kNonFinite, "nan_maker"));
  EXPECT_NE(chk.report().find("element 7"), std::string::npos);
}

TEST(Checker, NaNPropagationIsNotFlagged) {
  Device dev(vgpu::gtx280_model());
  Checker chk;
  dev.set_checker(&chk);
  std::vector<double> host(32, 1.5);
  host[3] = std::numeric_limits<double>::quiet_NaN();
  DeviceBuffer<double> in(dev, std::span<const double>(host));
  DeviceBuffer<double> out(dev, 32);
  auto is = in.device_span();
  auto os = out.device_span();
  // The kernel merely copies a NaN already present in its input: that is
  // propagation (the producer is at fault), not introduction.
  dev.parallel_for("nan_copier", 32, KernelCost{0.0, 2.0 * 32 * 8},
                   [&](std::size_t i) { os[i] = static_cast<double>(is[i]); });
  EXPECT_TRUE(chk.clean()) << chk.report();
}

TEST(Checker, InfiniteIsAllowedByDefaultAndFlaggedOnRequest) {
  // The ratio-test kernel legitimately writes +inf for ineligible rows,
  // so Inf is only a finding under CheckConfig::flag_infinite.
  for (bool flag : {false, true}) {
    CheckConfig cfg;
    cfg.flag_infinite = flag;
    Checker chk(cfg);
    Device dev(vgpu::gtx280_model());
    dev.set_checker(&chk);
    DeviceBuffer<double> out(dev, 8);
    auto os = out.device_span();
    dev.parallel_for("inf_writer", 8, KernelCost{0.0, 64.0},
                     [&](std::size_t i) {
                       os[i] = std::numeric_limits<double>::infinity();
                     });
    EXPECT_EQ(chk.clean(), !flag) << chk.report();
  }
}

TEST(Checker, DetectsCostUnderdeclaration) {
  Device dev(vgpu::gtx280_model());
  Checker chk;
  dev.set_checker(&chk);
  DeviceBuffer<double> buf(dev, 4096);
  auto sp = buf.device_span();
  // Streams 32 KiB of element traffic but declares 64 bytes: the roofline
  // charge (the basis of the Tab.1 breakdown) would be fiction.
  dev.parallel_for("underdeclared_stream", 4096, KernelCost{0.0, 64.0},
                   [&](std::size_t i) { sp[i] = static_cast<double>(i); });
  ASSERT_FALSE(chk.clean());
  EXPECT_TRUE(
      has_finding(chk, FindingKind::kCostMismatch, "underdeclared_stream"));
}

TEST(Checker, AccurateDeclarationPassesCostLint) {
  Device dev(vgpu::gtx280_model());
  Checker chk;
  dev.set_checker(&chk);
  DeviceBuffer<double> in(dev, 4096), out(dev, 4096);
  auto is = in.device_span();
  auto os = out.device_span();
  dev.parallel_for("declared_stream", 4096, KernelCost{4096.0, 2.0 * 4096 * 8},
                   [&](std::size_t i) { os[i] = 2.0 * is[i]; });
  EXPECT_TRUE(chk.clean()) << chk.report();
}

TEST(Checker, ResetClearsFindings) {
  Device dev(vgpu::gtx280_model());
  Checker chk;
  dev.set_checker(&chk);
  DeviceBuffer<double> buf(dev, 8);
  auto sp = buf.device_span();
  dev.parallel_for("oob_once", 1, KernelCost{0.0, 8.0},
                   [&](std::size_t) { sp[8] = 1.0; });
  ASSERT_FALSE(chk.clean());
  chk.reset();
  EXPECT_TRUE(chk.clean());
  EXPECT_EQ(chk.launches_checked(), 0u);
}

// ------------------------------------------------- substrate under check

TEST(Checker, PrimitivesRunCleanUnderCheckedMode) {
  Device dev(vgpu::gtx280_model());
  Checker chk;
  dev.set_checker(&chk);
  std::vector<double> host(777);
  for (std::size_t i = 0; i < host.size(); ++i) {
    host[i] = static_cast<double>((i * 37) % 101) - 50.0;
  }
  DeviceBuffer<double> buf(dev, std::span<const double>(host));
  EXPECT_EQ(vgpu::argmin(buf).index,
            static_cast<std::size_t>(
                std::min_element(host.begin(), host.end()) - host.begin()));
  (void)vgpu::reduce_sum(buf);
  DeviceBuffer<double> scanned(dev, host.size());
  vgpu::inclusive_scan(buf, scanned);
  vgpu::fill(scanned, 3.0);
  vgpu::iota(scanned);
  EXPECT_TRUE(chk.clean()) << chk.report();
  EXPECT_GT(chk.launches_checked(), 0u);
}

// --------------------------------------------------- engines under check

simplex::SolverOptions checked_options(Checker& chk) {
  simplex::SolverOptions opt;
  opt.checker = &chk;
  return opt;
}

TEST(CheckedEngines, AllEnginesSolveCleanUnderCheck) {
  const lp::LpProblem problem = lp::random_dense_lp({.rows = 24, .cols = 24, .seed = 11});
  const double reference =
      simplex::solve(problem, simplex::Engine::kHostRevised).objective;
  for (simplex::Engine engine :
       {simplex::Engine::kDeviceRevised, simplex::Engine::kDeviceRevisedFloat,
        simplex::Engine::kHostRevised, simplex::Engine::kTableau,
        simplex::Engine::kSparseRevised}) {
    Checker chk;
    const auto result =
        simplex::solve(problem, engine, checked_options(chk));
    EXPECT_EQ(result.status, simplex::SolveStatus::kOptimal)
        << to_string(engine);
    const double tol = engine == simplex::Engine::kDeviceRevisedFloat ? 1e-3
                                                                      : 1e-7;
    EXPECT_NEAR(result.objective, reference, tol) << to_string(engine);
    EXPECT_TRUE(chk.clean())
        << "engine " << to_string(engine) << ":\n" << chk.report();
  }
}

TEST(CheckedEngines, PricingAndBasisVariantsSolveCleanUnderCheck) {
  const lp::LpProblem problem = lp::random_dense_lp({.rows = 20, .cols = 20, .seed = 5});
  const double reference =
      simplex::solve(problem, simplex::Engine::kHostRevised).objective;
  for (simplex::PricingRule pricing :
       {simplex::PricingRule::kDantzig, simplex::PricingRule::kDevex}) {
    for (simplex::BasisScheme basis :
         {simplex::BasisScheme::kExplicitInverse,
          simplex::BasisScheme::kProductForm,
          simplex::BasisScheme::kLuFactors}) {
      Checker chk;
      simplex::SolverOptions opt = checked_options(chk);
      opt.pricing = pricing;
      opt.basis = basis;
      const auto result =
          simplex::solve(problem, simplex::Engine::kDeviceRevised, opt);
      EXPECT_EQ(result.status, simplex::SolveStatus::kOptimal);
      EXPECT_NEAR(result.objective, reference, 1e-7);
      EXPECT_TRUE(chk.clean()) << chk.report();
    }
  }
}

TEST(CheckedEngines, BatchEngineSolvesCleanUnderCheck) {
  std::vector<lp::LpProblem> problems;
  for (std::uint64_t s = 1; s <= 24; ++s) {
    problems.push_back(lp::random_dense_lp({.rows = 12, .cols = 12, .seed = s}));
  }
  Device dev(vgpu::gtx280_model());
  Checker chk;
  // 24 problems x 12 rows = 288 fused lanes: spans multiple 256-thread
  // blocks, so cross-problem races would be visible to the checker.
  simplex::BatchRevisedSimplex<double> batch(dev, checked_options(chk));
  const auto results = batch.solve(problems);
  for (std::size_t k = 0; k < problems.size(); ++k) {
    EXPECT_EQ(results[k].status, simplex::SolveStatus::kOptimal) << k;
    const double ref =
        simplex::solve(problems[k], simplex::Engine::kHostRevised).objective;
    EXPECT_NEAR(results[k].objective, ref, 1e-7) << k;
  }
  EXPECT_TRUE(chk.clean()) << chk.report();
}

TEST(CheckedEngines, MultiBlockSolveRunsCleanUnderCheck) {
  // m = 300 > one 256-thread block, so every m-wide kernel really spans
  // block boundaries. A few iterations suffice to sweep every kernel.
  const lp::LpProblem problem = lp::random_dense_lp({.rows = 300, .cols = 300, .seed = 3});
  Checker chk;
  simplex::SolverOptions opt = checked_options(chk);
  opt.max_iterations = 5;
  Device dev(vgpu::gtx280_model(), 4);
  simplex::DeviceRevisedSimplex<double> solver(dev, opt);
  (void)solver.solve(problem);
  EXPECT_TRUE(chk.clean()) << chk.report();
  EXPECT_GT(chk.launches_checked(), 10u);
}

TEST(CheckedEngines, CheckedModeDoesNotPerturbResultsOrStats) {
  const lp::LpProblem problem = lp::random_dense_lp({.rows = 28, .cols = 28, .seed = 9});
  const auto plain =
      simplex::solve(problem, simplex::Engine::kDeviceRevised);
  Checker chk;
  const auto checked = simplex::solve(problem, simplex::Engine::kDeviceRevised,
                                      checked_options(chk));
  EXPECT_TRUE(chk.clean()) << chk.report();
  // Bit-identical results and kernel stats — the trace-layer guarantee.
  EXPECT_EQ(plain.objective, checked.objective);
  EXPECT_EQ(plain.stats.iterations, checked.stats.iterations);
  EXPECT_EQ(plain.stats.device_stats.kernel_launches,
            checked.stats.device_stats.kernel_launches);
  EXPECT_EQ(plain.stats.device_stats.total_flops,
            checked.stats.device_stats.total_flops);
  EXPECT_EQ(plain.stats.device_stats.total_bytes,
            checked.stats.device_stats.total_bytes);
  EXPECT_EQ(plain.stats.device_stats.kernel_seconds,
            checked.stats.device_stats.kernel_seconds);
  EXPECT_EQ(plain.x, checked.x);
}

TEST(CheckedEngines, MultiWorkerCheckedSolveMatchesSingleWorker) {
  const lp::LpProblem problem = lp::random_dense_lp({.rows = 24, .cols = 24, .seed = 2});
  simplex::SolverOptions opt;
  Device dev1(vgpu::gtx280_model(), 1);
  const auto r1 =
      simplex::DeviceRevisedSimplex<double>(dev1, opt).solve(problem);
  Checker chk;
  Device dev4(vgpu::gtx280_model(), 4);
  simplex::SolverOptions opt4 = checked_options(chk);
  const auto r4 =
      simplex::DeviceRevisedSimplex<double>(dev4, opt4).solve(problem);
  EXPECT_TRUE(chk.clean()) << chk.report();
  EXPECT_EQ(r1.objective, r4.objective);
  EXPECT_EQ(r1.stats.iterations, r4.stats.iterations);
}

}  // namespace
}  // namespace gs
