// Profiler tests: bit-exact DeviceStats reconciliation on both machine
// tracks, roofline bound classification on crafted kernels, the service
// span-tiling invariant, downstream forwarding, and the bit-identical-
// when-off guarantee every observer must keep (OBSERVABILITY.md,
// "Profiler"). If a name in that document stops compiling, it fails here
// first.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lp/generators.hpp"
#include "profile/profile.hpp"
#include "record/record.hpp"
#include "service/service.hpp"
#include "simplex/solver.hpp"
#include "trace/chrome_sink.hpp"
#include "vgpu/device.hpp"

namespace {

using namespace gs;

lp::LpProblem tiny_lp(std::uint64_t seed = 7) {
  return lp::random_dense_lp({.rows = 16, .cols = 16, .seed = seed});
}

simplex::SolveResult solve_device(const lp::LpProblem& problem,
                                  simplex::SolverOptions opt = {}) {
  vgpu::Device dev(vgpu::gtx280_model());
  simplex::DeviceRevisedSimplex<double> solver(dev, opt);
  return solver.solve(problem);
}

// ---------------------------------------------------------------------
// Bit-exact reconciliation against DeviceStats.
// ---------------------------------------------------------------------

// The profiler folds the same per-launch doubles the device accumulates,
// in the same emission order, so the totals must be *identical* — not
// merely close. EXPECT_EQ on doubles is deliberate throughout.
TEST(ProfileReconcile, DeviceKernelTotalsAreBitExact) {
  profile::Profiler prof;
  simplex::SolverOptions opt;
  opt.profiler = &prof;
  const auto result = solve_device(tiny_lp(), opt);
  ASSERT_TRUE(result.optimal());
  const vgpu::DeviceStats& ds = result.stats.device_stats;

  const profile::ProfileReport rep = prof.report();
  EXPECT_EQ(rep.kernel_seconds(), ds.kernel_seconds);
  EXPECT_EQ(rep.kernel_seconds_by_pid.at(trace::kDevicePid),
            ds.kernel_seconds);

  // Per-kernel: every profiled kernel matches its DeviceStats record
  // exactly, and nothing is missing on either side.
  ASSERT_EQ(rep.kernels.size(), ds.per_kernel.size());
  std::size_t calls = 0;
  for (const profile::KernelProfile& k : rep.kernels) {
    const auto it = ds.per_kernel.find(k.name);
    ASSERT_NE(it, ds.per_kernel.end()) << k.name;
    EXPECT_EQ(k.seconds, it->second.sim_seconds) << k.name;
    EXPECT_EQ(k.calls, it->second.launches) << k.name;
    EXPECT_EQ(k.flops, it->second.flops) << k.name;
    EXPECT_EQ(k.bytes, it->second.bytes) << k.name;
    calls += k.calls;
  }
  EXPECT_EQ(calls, ds.kernel_launches);

  // Transfers interleave h2d and d2h in one emission-order fold while
  // DeviceStats keeps two separate accumulators, so the sums may differ
  // in the last ulps — but no more.
  EXPECT_NEAR(rep.transfer_seconds(), ds.transfer_seconds(),
              1e-15 * (1.0 + ds.transfer_seconds()));
}

// The host engines charge the same stats shape through CostMeter; the
// profiler reconciles against it on the host track.
TEST(ProfileReconcile, HostKernelTotalsAreBitExact) {
  profile::Profiler prof;
  simplex::SolverOptions opt;
  opt.profiler = &prof;
  const auto result = simplex::HostRevisedSimplex(opt).solve(tiny_lp());
  ASSERT_TRUE(result.optimal());
  const vgpu::DeviceStats& ds = result.stats.device_stats;

  const profile::ProfileReport rep = prof.report();
  EXPECT_EQ(rep.kernel_seconds_by_pid.at(trace::kHostPid),
            ds.kernel_seconds);
  for (const profile::KernelProfile& k : rep.kernels) {
    const auto it = ds.per_kernel.find(k.name);
    ASSERT_NE(it, ds.per_kernel.end()) << k.name;
    EXPECT_EQ(k.seconds, it->second.sim_seconds) << k.name;
    EXPECT_EQ(k.calls, it->second.launches) << k.name;
  }
}

// ---------------------------------------------------------------------
// Roofline bound classification.
// ---------------------------------------------------------------------

// Three crafted launches on the gtx280 model (launch overhead 6us, 40
// GFLOP/s double, 110 GB/s), each landing squarely in one bound class.
TEST(ProfileRoofline, CraftedKernelsLandInEachBoundClass) {
  profile::Profiler prof;
  vgpu::Device dev(vgpu::gtx280_model());
  dev.set_trace(&prof);
  prof.bind_machine(trace::kDevicePid, dev.model());
  const std::size_t n = dev.model().saturation_threads;  // occupancy 1.0

  // 1e3 flops / 1e3 bytes: both work terms are tens of ns, dwarfed by
  // the 6us launch overhead.
  dev.parallel_for("craft_launch", n, {.flops = 1e3, .bytes = 1e3},
                   [](std::size_t) {});
  // 1e9 bytes vs 1e6 flops: the memory term (~9ms) dominates.
  dev.parallel_for("craft_mem", n, {.flops = 1e6, .bytes = 1e9},
                   [](std::size_t) {});
  // 1e9 double flops vs 1e6 bytes: the arithmetic term (25ms) dominates.
  dev.parallel_for("craft_compute", n, {.flops = 1e9, .bytes = 1e6},
                   [](std::size_t) {});

  const profile::ProfileReport rep = prof.report();
  const profile::KernelProfile* launch = rep.find_kernel("craft_launch");
  const profile::KernelProfile* mem = rep.find_kernel("craft_mem");
  const profile::KernelProfile* comp = rep.find_kernel("craft_compute");
  ASSERT_NE(launch, nullptr);
  ASSERT_NE(mem, nullptr);
  ASSERT_NE(comp, nullptr);

  EXPECT_EQ(launch->bound, profile::BoundClass::kLaunch);
  EXPECT_EQ(mem->bound, profile::BoundClass::kBandwidth);
  EXPECT_EQ(comp->bound, profile::BoundClass::kCompute);
  EXPECT_EQ(std::string(to_string(launch->bound)), "launch-bound");

  // Decomposition sanity: every launch pays the fixed overhead; the
  // dominant kernels run near their respective roofs.
  EXPECT_EQ(launch->launch_seconds, dev.model().launch_overhead_s);
  EXPECT_GT(mem->bandwidth_fraction, 0.9);
  EXPECT_LE(mem->bandwidth_fraction, 1.0);
  EXPECT_GT(comp->compute_fraction, 0.9);
  EXPECT_LE(comp->compute_fraction, 1.0);

  // Totals still reconcile bit-exactly on the crafted stream.
  EXPECT_EQ(rep.kernel_seconds(), dev.stats().kernel_seconds);
  // All time is in the mem/compute kernels; the launch-bound share is
  // their 6us overheads plus the craft_launch time — a sliver.
  EXPECT_GT(rep.launch_bound_fraction, 0.0);
  EXPECT_LT(rep.launch_bound_fraction, 0.01);
}

// ---------------------------------------------------------------------
// Service request spans: the tiling invariant.
// ---------------------------------------------------------------------

TEST(ProfileService, StageSpansTileRequestLatencyExactly) {
  profile::Profiler prof;
  metrics::MetricsRegistry reg;
  service::SolveService svc({}, &reg);
  svc.set_profiler(&prof);

  std::vector<std::uint64_t> ids;
  for (std::uint64_t s = 0; s < 6; ++s) {
    service::SolveRequest req;
    // Seed s % 4: the last two requests repeat earlier problems so the
    // result cache path (cache_hit stage) is exercised too.
    req.problem = tiny_lp(100 + s % 4);
    const service::Ticket t = svc.submit(std::move(req));
    ASSERT_TRUE(t.accepted);
    ids.push_back(t.id);
  }
  svc.drain();

  const profile::ProfileReport rep = prof.report();
  // Coverage: every admitted request has a span tree on its own track.
  ASSERT_EQ(rep.requests.size(), ids.size());
  // The shipped emission derives the stage durations from the same
  // doubles that produce latency_seconds, so the residue is exactly 0.
  EXPECT_EQ(rep.max_stage_tiling_error(), 0.0);
  for (const profile::RequestProfile& r : rep.requests) {
    EXPECT_TRUE(r.has_latency) << "request " << r.tid;
    ASSERT_FALSE(r.stages.empty()) << "request " << r.tid;
    for (const auto& [name, dur] : r.stages) {
      EXPECT_TRUE(name == "queued" || name == "engine_solve" ||
                  name == "cache_hit")
          << name;
      EXPECT_GE(dur, 0.0);
    }
    const double lat = svc.result(r.tid).latency_seconds;
    EXPECT_EQ(r.latency_seconds, lat) << "request " << r.tid;
  }

  // p50/p99 decomposition reports the stages of the requests at those
  // ranks.
  const profile::RequestSummary rs = rep.request_summary();
  EXPECT_EQ(rs.count, ids.size());
  EXPECT_GE(rs.p99_seconds, rs.p50_seconds);
  EXPECT_FALSE(rs.p99_stages.empty());
}

// ---------------------------------------------------------------------
// Composition and the observer contract.
// ---------------------------------------------------------------------

// A profiler interposed before a Chrome sink forwards every event
// unmodified: the downstream sink sees exactly the stream it would have
// seen attached directly.
TEST(ProfileCompose, ForwardsEveryEventDownstream) {
  trace::ChromeTraceSink direct;
  {
    simplex::SolverOptions opt;
    opt.trace_sink = &direct;
    ASSERT_TRUE(solve_device(tiny_lp(), opt).optimal());
  }
  trace::ChromeTraceSink chained;
  profile::Profiler prof;
  {
    simplex::SolverOptions opt;
    opt.trace_sink = &chained;
    opt.profiler = &prof;
    ASSERT_TRUE(solve_device(tiny_lp(), opt).optimal());
  }
  ASSERT_EQ(chained.events().size(), direct.events().size());
  for (std::size_t i = 0; i < direct.events().size(); ++i) {
    EXPECT_EQ(chained.events()[i].name, direct.events()[i].name) << i;
    EXPECT_EQ(chained.events()[i].ts, direct.events()[i].ts) << i;
    EXPECT_EQ(chained.events()[i].dur, direct.events()[i].dur) << i;
  }
}

// Attaching a profiler changes no decision and no stat: the decision log
// aligns with zero divergence and zero payload delta, and DeviceStats
// matches field for field.
TEST(ProfileCompose, AttachingProfilerIsBitIdentical) {
  const lp::LpProblem problem = tiny_lp(11);
  record::Recorder plain_rec, prof_rec;
  simplex::SolverOptions plain_opt;
  plain_opt.recorder = &plain_rec;
  const auto plain = solve_device(problem, plain_opt);

  profile::Profiler prof;
  simplex::SolverOptions prof_opt;
  prof_opt.recorder = &prof_rec;
  prof_opt.profiler = &prof;
  const auto profiled = solve_device(problem, prof_opt);

  ASSERT_TRUE(plain.optimal());
  ASSERT_TRUE(profiled.optimal());
  EXPECT_EQ(plain.objective, profiled.objective);
  const record::DiffResult d =
      record::diff(plain_rec.recording(), prof_rec.recording());
  EXPECT_TRUE(d.comparable);
  EXPECT_FALSE(d.diverged);
  EXPECT_EQ(d.max_reduced_cost_delta, 0.0);
  EXPECT_EQ(d.max_theta_delta, 0.0);

  const auto& a = plain.stats.device_stats;
  const auto& b = profiled.stats.device_stats;
  EXPECT_EQ(a.kernel_launches, b.kernel_launches);
  EXPECT_EQ(a.kernel_seconds, b.kernel_seconds);
  EXPECT_EQ(a.h2d_bytes, b.h2d_bytes);
  EXPECT_EQ(a.d2h_bytes, b.d2h_bytes);
}

// ---------------------------------------------------------------------
// Exports.
// ---------------------------------------------------------------------

TEST(ProfileExport, JsonTableAndFlamegraph) {
  profile::Profiler prof;
  simplex::SolverOptions opt;
  opt.profiler = &prof;
  ASSERT_TRUE(solve_device(tiny_lp(), opt).optimal());
  const profile::ProfileReport rep = prof.report();

  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"gs-profile-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"launch_bound_fraction\""), std::string::npos);
  EXPECT_NE(json.find("\"kernels\""), std::string::npos);

  const std::string table = rep.table(5);
  EXPECT_NE(table.find("bound"), std::string::npos);
  EXPECT_NE(table.find("-bound"), std::string::npos);  // a class rendered

  // Collapsed stacks: kernels are attributed under the span path that
  // launched them ("solve;..."), one "path nanoseconds" line each.
  const std::string folded = rep.flamegraph_text();
  ASSERT_FALSE(folded.empty());
  EXPECT_NE(folded.find("solve;"), std::string::npos);
  EXPECT_EQ(folded.back(), '\n');

  // Phase aggregation saw the solver's spans with sane self-times.
  bool saw_solve = false;
  for (const profile::PhaseProfile& p : rep.phases) {
    EXPECT_GE(p.total_seconds, p.self_seconds) << p.name;
    saw_solve |= (p.name == "solve");
  }
  EXPECT_TRUE(saw_solve);
}

}  // namespace
