// Tests for the batched revised simplex (Ext. E): agreement with the
// single-problem engine, lock-step behavior with uneven finish times, input
// validation, and the modeled occupancy benefit.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/generators.hpp"
#include "simplex/batch_revised.hpp"
#include "simplex/solver.hpp"

namespace gs::simplex {
namespace {

[[nodiscard]] std::vector<lp::LpProblem> make_batch(std::size_t count,
                                                    std::size_t size,
                                                    std::uint64_t seed0) {
  std::vector<lp::LpProblem> batch;
  batch.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    batch.push_back(lp::random_dense_lp(
        {.rows = size, .cols = size, .seed = seed0 + k}));
  }
  return batch;
}

class BatchSizes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(BatchSizes, AgreesWithIndividualSolves) {
  const auto [count, size] = GetParam();
  const auto problems = make_batch(count, size, 100);
  vgpu::Device dev(vgpu::gtx280_model());
  BatchRevisedSimplex<double> batch_solver(dev);
  const auto batch_results = batch_solver.solve(problems);
  ASSERT_EQ(batch_results.size(), count);
  for (std::size_t k = 0; k < count; ++k) {
    const auto single = solve(problems[k], Engine::kDeviceRevised);
    ASSERT_EQ(batch_results[k].status, SolveStatus::kOptimal) << k;
    ASSERT_EQ(single.status, SolveStatus::kOptimal) << k;
    EXPECT_NEAR(batch_results[k].objective, single.objective,
                1e-7 * (1.0 + std::abs(single.objective)))
        << k;
    EXPECT_TRUE(problems[k].is_feasible(batch_results[k].x, 1e-5)) << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BatchSizes,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{1, 12},
                                           std::pair<std::size_t, std::size_t>{4, 12},
                                           std::pair<std::size_t, std::size_t>{16, 8},
                                           std::pair<std::size_t, std::size_t>{3, 24}));

TEST(Batch, ProblemsFinishingAtDifferentIterationsStayCorrect) {
  // Mix trivially-optimal-at-origin problems (all costs >= 0) with normal
  // ones: the former finish in 0 iterations, the latter keep pivoting.
  std::vector<lp::LpProblem> problems;
  problems.push_back(lp::random_dense_lp(
      {.rows = 10, .cols = 10, .seed = 1, .cost_lo = -1.0, .cost_hi = -0.1}));
  lp::DenseLpSpec trivial{.rows = 10, .cols = 10, .seed = 2};
  trivial.cost_lo = -0.0;
  trivial.cost_hi = -0.0;
  // cost uniformly 0: origin is optimal with objective 0.
  problems.push_back(lp::random_dense_lp(trivial));
  problems.push_back(lp::random_dense_lp(
      {.rows = 10, .cols = 10, .seed = 3, .cost_lo = -2.0, .cost_hi = -0.5}));

  vgpu::Device dev(vgpu::gtx280_model());
  BatchRevisedSimplex<double> solver(dev);
  const auto results = solver.solve(problems);
  ASSERT_EQ(results[1].status, SolveStatus::kOptimal);
  EXPECT_NEAR(results[1].objective, 0.0, 1e-12);
  EXPECT_EQ(results[1].stats.iterations, 0u);
  for (std::size_t k : {std::size_t{0}, std::size_t{2}}) {
    const auto single = solve(problems[k], Engine::kDeviceRevised);
    ASSERT_EQ(results[k].status, SolveStatus::kOptimal);
    EXPECT_NEAR(results[k].objective, single.objective, 1e-7);
    EXPECT_GT(results[k].stats.iterations, 0u);
  }
}

TEST(Batch, RejectsShapeMismatch) {
  std::vector<lp::LpProblem> problems;
  problems.push_back(lp::random_dense_lp({.rows = 8, .cols = 8, .seed = 1}));
  problems.push_back(lp::random_dense_lp({.rows = 9, .cols = 8, .seed = 2}));
  vgpu::Device dev(vgpu::gtx280_model());
  BatchRevisedSimplex<double> solver(dev);
  EXPECT_THROW((void)solver.solve(problems), Error);
}

TEST(Batch, RejectsProblemsNeedingPhaseOne) {
  std::vector<lp::LpProblem> problems;
  problems.push_back(lp::transportation(3, 3, 1));  // equality rows
  vgpu::Device dev(vgpu::gtx280_model());
  BatchRevisedSimplex<double> solver(dev);
  EXPECT_THROW((void)solver.solve(problems), Error);
}

TEST(Batch, RejectsEmptyBatch) {
  vgpu::Device dev(vgpu::gtx280_model());
  BatchRevisedSimplex<double> solver(dev);
  EXPECT_THROW((void)solver.solve(std::span<const lp::LpProblem>{}), Error);
}

TEST(Batch, OccupancyMakesBatchingCheaperThanSequentialSolves) {
  // The core claim: K small LPs batched cost (much) less modeled time than
  // K sequential solves, because each fused kernel carries K*m threads.
  constexpr std::size_t kCount = 16;
  const auto problems = make_batch(kCount, 16, 300);

  double sequential = 0.0;
  for (const auto& problem : problems) {
    sequential += solve(problem, Engine::kDeviceRevised).stats.sim_seconds;
  }
  vgpu::Device dev(vgpu::gtx280_model());
  BatchRevisedSimplex<double> solver(dev);
  const auto results = solver.solve(problems);
  const double batched = results.front().stats.sim_seconds;
  for (const auto& r : results) ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_LT(batched, sequential / 2.0);
}

TEST(Batch, FloatInstantiationWorks) {
  const auto problems = make_batch(4, 10, 400);
  vgpu::Device dev(vgpu::gtx280_model());
  BatchRevisedSimplex<float> solver(dev);
  const auto results = solver.solve(problems);
  for (std::size_t k = 0; k < problems.size(); ++k) {
    const auto single = solve(problems[k], Engine::kDeviceRevised);
    ASSERT_EQ(results[k].status, SolveStatus::kOptimal);
    EXPECT_NEAR(results[k].objective, single.objective,
                2e-3 * (1.0 + std::abs(single.objective)));
  }
}

TEST(Batch, HonorsIterationLimit) {
  const auto problems = make_batch(2, 20, 500);
  SolverOptions opt;
  opt.max_iterations = 1;
  vgpu::Device dev(vgpu::gtx280_model());
  BatchRevisedSimplex<double> solver(dev, opt);
  const auto results = solver.solve(problems);
  for (const auto& r : results) {
    EXPECT_EQ(r.status, SolveStatus::kIterationLimit);
    EXPECT_LE(r.stats.iterations, 1u);
  }
}

}  // namespace
}  // namespace gs::simplex
