// Shared service-traffic harness for bench/svc_traffic.cpp and the
// "service" section of bench/bench_json.cpp: the same seeded workload in
// both places so the human-readable table and the gated artifact can
// never drift apart. All quantities are modelled (vgpu sim_seconds);
// reruns are bit-identical on any host.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "bench/common.hpp"
#include "metrics/quantile.hpp"
#include "profile/profile.hpp"
#include "service/service.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/trace.hpp"

namespace gs::bench {

/// One same-shape traffic run: K requests of a seeded m x m dense family
/// pushed through a SolveService, against the one-request-at-a-time
/// device-engine baseline the paper's small-LP regime would suffer.
struct TrafficResult {
  double baseline_seconds = 0.0;  ///< sum of K sequential device solves
  double service_seconds = 0.0;   ///< service makespan (max latency)
  double p50_seconds = 0.0;       ///< median per-request latency
  double p99_seconds = 0.0;       ///< tail per-request latency
  std::size_t batch_rounds = 0;   ///< rounds the scheduler formed
  std::size_t accepted = 0;       ///< requests admitted (profile coverage)
};

/// `trace` / `profiler` / `telemetry` (all optional) attach service-level
/// observability to the run: the same seeded workload, now emitting the
/// shared-timeline replay, per-request span trees, and/or time-series
/// samples with SLO evaluation (svc_traffic --trace / --profile /
/// --telemetry / --slo).
inline TrafficResult run_same_shape_traffic(
    std::size_t m, std::size_t k, std::uint64_t seed_base = 700,
    trace::TraceSink* trace = nullptr,
    profile::Profiler* profiler = nullptr,
    telemetry::Telemetry* telemetry = nullptr) {
  TrafficResult out;
  std::vector<lp::LpProblem> problems;
  problems.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    problems.push_back(lp::random_dense_lp(
        {.rows = m, .cols = m, .seed = seed_base + i}));
  }

  for (const lp::LpProblem& p : problems) {
    out.baseline_seconds +=
        bench::solve_device(p, vgpu::gtx280_model()).stats.sim_seconds;
  }

  metrics::MetricsRegistry registry;
  service::SolveService svc({}, &registry);
  svc.set_trace(trace);
  svc.set_profiler(profiler);
  svc.set_telemetry(telemetry);
  std::vector<std::uint64_t> ids;
  ids.reserve(k);
  for (const lp::LpProblem& p : problems) {
    service::SolveRequest req;
    req.problem = p;
    const service::Ticket t = svc.submit(std::move(req));
    if (!t.accepted) continue;  // default queue_capacity=256 holds K<=256
    ids.push_back(t.id);
  }
  out.accepted = ids.size();
  svc.drain();

  std::vector<double> latencies;
  latencies.reserve(ids.size());
  for (const std::uint64_t id : ids) {
    const service::ServiceResult& r = svc.result(id);
    if (!r.solve.optimal()) continue;
    latencies.push_back(r.latency_seconds);
    out.service_seconds = std::max(out.service_seconds, r.latency_seconds);
  }
  std::sort(latencies.begin(), latencies.end());
  out.p50_seconds = metrics::quantile_sorted(latencies, 0.50);
  out.p99_seconds = metrics::quantile_sorted(latencies, 0.99);
  out.batch_rounds =
      std::size_t(registry.counter("service.batch.rounds").value());
  return out;
}

}  // namespace gs::bench
