// Tab. 2 — correctness and iteration-count agreement across all engines.
//
// A suite spanning the workload families (dense, sparse, exponential
// Klee-Minty, the Beale cycling instance, two-phase transportation,
// infeasible and unbounded instances). Expected shape: every engine
// reports the same status and, where optimal, the same objective to the
// precision of its arithmetic.
#include <cmath>

#include "bench/common.hpp"

int main(int, char**) {
  using namespace gs;
  using simplex::Engine;
  bench::print_header(
      "Tab.2: cross-engine status/objective agreement",
      "identical statuses; objectives agree to arithmetic precision");

  struct Case {
    std::string name;
    lp::LpProblem problem;
  };
  std::vector<Case> cases;
  cases.push_back({"dense_64", lp::random_dense_lp(
                                   {.rows = 64, .cols = 64, .seed = 4})});
  cases.push_back({"dense_wide_32x128",
                   lp::random_dense_lp({.rows = 32, .cols = 128, .seed = 5})});
  cases.push_back(
      {"sparse_64x256",
       lp::random_sparse_lp(
           {.rows = 64, .cols = 256, .density = 0.05, .seed = 6})});
  cases.push_back({"klee_minty_8", lp::klee_minty(8)});
  cases.push_back({"beale", lp::beale_cycling()});
  cases.push_back({"transport_6x8", lp::transportation(6, 8, 7)});
  cases.push_back({"infeasible", lp::infeasible_example()});
  cases.push_back({"unbounded", lp::unbounded_example()});

  constexpr Engine kEngines[] = {Engine::kDeviceRevised,
                                 Engine::kDeviceRevisedFloat,
                                 Engine::kHostRevised, Engine::kTableau,
                                 Engine::kSparseRevised,
                                 Engine::kDualRevised};

  Table table({"problem", "engine", "status", "objective", "iters",
               "phase1", "sim [ms]"});
  int mismatches = 0;
  for (const Case& c : cases) {
    double reference = 0.0;
    bool have_reference = false;
    for (const Engine e : kEngines) {
      const auto r = simplex::solve(c.problem, e);
      table.new_row()
          .add(c.name)
          .add(std::string(to_string(e)))
          .add(std::string(to_string(r.status)))
          .add(r.optimal() ? r.objective : 0.0)
          .add(r.stats.iterations)
          .add(r.stats.phase1_iterations)
          .add(r.stats.sim_seconds * 1e3);
      if (r.optimal()) {
        if (!have_reference) {
          reference = r.objective;
          have_reference = true;
        } else {
          const double tol =
              (e == Engine::kDeviceRevisedFloat ? 2e-3 : 1e-6) *
              (1.0 + std::abs(reference));
          if (std::abs(r.objective - reference) > tol) ++mismatches;
        }
      }
    }
  }
  table.print(std::cout);
  std::cout << "objective mismatches beyond tolerance: " << mismatches
            << "\n";
  bench::write_csv("tab2_agreement", table);
  return mismatches == 0 ? 0 : 1;
}
