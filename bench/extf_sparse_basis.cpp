// Ext. F — basis-oracle scaling on sparse instances.
//
// The paper's explicit dense B^-1 charges O(m^2) per pivot regardless of
// sparsity, which gates the dense oracle out of the m >= 4096 regime the
// sparse service targets. The product-form oracle (sparse LU + eta file)
// charges O(nnz) per pivot, so its cost tracks the instance density, not
// the dimension squared. This harness drives both oracles directly —
// same pivot sequence, same CostMeter machine — over seeded sparse bases
// at m in {1k, 2k, 4k, 8k} and two densities, and asserts the headline
// acceptance bound: at m = 4096 the product-form pivot cost must beat
// the dense extrapolation (m^2 scaling from the largest measured dense
// point) by at least 5x.
//
// The explicit oracle's modeled pivot cost is data-independent (2m^2
// flops per BTRAN/FTRAN/update by construction), so it is measured at
// m <= 2048 and extrapolated beyond — exactly the "gated out" story:
// above the crossover you could not afford to run it anyway.
#include <cmath>
#include <cstdint>

#include "bench/common.hpp"
#include "simplex/basis/explicit_inverse.hpp"
#include "simplex/basis/product_form.hpp"
#include "simplex/cost_meter.hpp"
#include "sparse/csr.hpp"
#include "support/rng.hpp"

namespace {

using namespace gs;

/// Seeded sparse basis in A^T layout (row j = basis column j): strictly
/// diagonally dominant so every factorization succeeds, `per_col` off-
/// diagonal entries per column on a contiguous band around the diagonal
/// (random values, fixed structure). The structure matters: uniformly
/// random positions make the LU fill in almost completely (dense-level
/// work), which no real LP basis does — Markowitz ordering keeps
/// practical bases low-fill, and the banded generator reproduces that
/// low-fill regime while the dense oracle still pays O(m^2) per pivot.
sparse::CsrMatrix<double> make_sparse_basis(std::size_t m,
                                            std::size_t per_col,
                                            std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const std::size_t half = std::max<std::size_t>(1, per_col / 2);
  std::vector<std::uint32_t> offs{0};
  std::vector<std::uint32_t> idx;
  std::vector<double> val;
  for (std::size_t j = 0; j < m; ++j) {
    std::vector<std::pair<std::uint32_t, double>> entries;
    double offsum = 0.0;
    for (std::size_t d = 1; d <= half; ++d) {
      for (const std::size_t pos : {j >= d ? j - d : m, j + d}) {
        if (pos >= m) continue;
        const double v =
            (double(rng.next() >> 11) / double(1ULL << 53)) * 2.0 - 1.0;
        entries.emplace_back(static_cast<std::uint32_t>(pos), v);
        offsum += std::abs(v);
      }
    }
    entries.emplace_back(static_cast<std::uint32_t>(j), offsum + 2.0);
    std::sort(entries.begin(), entries.end());
    for (const auto& [r, v] : entries) {
      idx.push_back(r);
      val.push_back(v);
    }
    offs.push_back(static_cast<std::uint32_t>(idx.size()));
  }
  return sparse::CsrMatrix<double>(m, m, std::move(offs), std::move(idx),
                                   std::move(val));
}

/// Run `pivots` BTRAN+FTRAN+update rounds through an oracle and return
/// the modeled milliseconds the meter accumulated. The pivot sequence is
/// deterministic (columns cycle with a fixed stride; the leaving row is
/// the largest |alpha| entry), identical across oracles.
double drive_pivots(simplex::basis::BasisOracle& oracle,
                    const simplex::basis::ColumnSource& cols,
                    const std::vector<std::uint32_t>& basis,
                    simplex::CostMeter& meter, std::size_t pivots) {
  const std::size_t m = oracle.dim();
  std::vector<double> colbuf(m), alpha(m), cb(m, 0.0), pi(m);
  const double t0 = meter.sim_seconds();
  for (std::size_t k = 0; k < pivots; ++k) {
    cb[(k * 7) % m] = 1.0;
    oracle.btran(cb, pi);
    cb[(k * 7) % m] = 0.0;
    const std::uint32_t q = static_cast<std::uint32_t>((k * 17 + 3) % m);
    std::fill(colbuf.begin(), colbuf.end(), 0.0);
    cols.gather(q, colbuf);
    oracle.ftran(colbuf, alpha);
    std::size_t p = 0;
    for (std::size_t i = 1; i < m; ++i) {
      if (std::abs(alpha[i]) > std::abs(alpha[p])) p = i;
    }
    if (std::abs(alpha[p]) < 1e-9) continue;
    oracle.update(p, alpha);
    if (oracle.wants_refactor()) {
      if (!oracle.refactorize(basis)) return -1.0;
    }
  }
  return (meter.sim_seconds() - t0) * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gs;
  const bool quick = bench::has_flag(argc, argv, "--quick");
  bench::print_header(
      "Ext.F: basis-oracle pivot cost on sparse instances (host model)",
      "product-form pivots cost O(nnz) and win by >=5x at m=4096 where "
      "the dense inverse's O(m^2) pivots are gated out");

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{256, 512}
            : std::vector<std::size_t>{1024, 2048, 4096, 8192};
  const std::size_t dense_cap = quick ? 256 : 2048;
  const std::vector<double> densities{0.001, 0.004};
  const std::size_t kPivots = 40;

  Table table({"m", "density", "oracle", "etas", "refactors",
               "pivot cost [ms]", "speedup vs dense"});
  // Largest measured dense point per density, for the m^2 extrapolation.
  struct DensePoint {
    std::size_t m = 0;
    double ms = 0.0;
  };
  bool gate_ok = true;
  for (const double density : densities) {
    DensePoint dense_last;
    for (const std::size_t m : sizes) {
      const std::size_t per_col =
          std::max<std::size_t>(2, std::size_t(density * double(m)));
      const auto at = make_sparse_basis(m, per_col, 1234 + m);
      const simplex::basis::CsrColumnSource cols(at);
      std::vector<std::uint32_t> basis(m);
      for (std::size_t i = 0; i < m; ++i) {
        basis[i] = static_cast<std::uint32_t>(i);
      }
      simplex::SolverOptions opt;

      double dense_ms = -1.0;
      bool dense_measured = false;
      if (m <= dense_cap) {
        // The crash seed is a unit diagonal: the modeled pivot cost of
        // the explicit oracle does not depend on the inverse's values.
        std::vector<double> diag(m, 1.0);
        simplex::CostMeter meter(vgpu::cpu2009_model());
        simplex::basis::ExplicitInverseOracle dense(m, diag, cols, meter,
                                                    opt);
        dense_ms = drive_pivots(dense, cols, basis, meter, kPivots);
        dense_measured = true;
        dense_last = {m, dense_ms};
        table.new_row()
            .add(m)
            .add(density)
            .add("explicit-inverse")
            .add(std::size_t{0})
            .add(std::size_t{0})
            .add(dense_ms)
            .add(1.0);
      } else if (dense_last.m > 0) {
        const double scale = double(m) / double(dense_last.m);
        dense_ms = dense_last.ms * scale * scale;
        table.new_row()
            .add(m)
            .add(density)
            .add("explicit-inverse (extrapolated m^2)")
            .add(std::size_t{0})
            .add(std::size_t{0})
            .add(dense_ms)
            .add(1.0);
      }

      simplex::CostMeter meter(vgpu::cpu2009_model());
      simplex::basis::ProductFormOracle pf(m, basis, cols, meter, opt);
      const double pf_ms = drive_pivots(pf, cols, basis, meter, kPivots);
      if (pf_ms < 0.0) {
        std::cerr << "product-form refactorization failed at m=" << m
                  << "\n";
        return 1;
      }
      const double speedup = dense_ms > 0.0 ? dense_ms / pf_ms : 0.0;
      table.new_row()
          .add(m)
          .add(density)
          .add("product-form")
          .add(pf.eta_count())
          .add(pf.refactor_count())
          .add(pf_ms)
          .add(speedup);
      if (!quick && m == 4096 && !dense_measured && speedup < 5.0) {
        std::cerr << "GATE FAIL: product-form pivots only " << speedup
                  << "x faster than the dense extrapolation at m=4096 "
                     "(density "
                  << density << "); acceptance requires >=5x\n";
        gate_ok = false;
      }
    }
  }
  table.print(std::cout);
  bench::write_csv("extf_sparse_basis", table);
  if (!gate_ok) return 1;
  std::cout << (quick ? "[extf] quick mode: gate skipped\n"
                      : "[extf] m=4096 product-form >=5x gate passed\n");
  return 0;
}
