// Fig. 1 — total solve time vs. problem size.
//
// Series: GPU revised simplex (GTX-280-class model), sequential CPU revised
// simplex (2009 single core), and the full-tableau CPU baseline, on random
// dense feasible LPs with m = n. Expected shape: the CPU wins small
// instances (kernel-launch and PCIe-latency floor), the GPU overtakes
// around m ~ 500 and leads by a small integer factor at m ~ 2000.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace gs;
  bench::print_header(
      "Fig.1: solve time vs problem size (random dense LP, m = n)",
      "CPU fastest at small m; GPU revised overtakes near m~500 and wins "
      "at m>=1024");

  Table table({"m=n", "iters", "gpu revised [ms]", "cpu revised [ms]",
               "cpu tableau [ms]", "gpu wall [ms]"});
  for (const std::size_t size : bench::dense_sizes(argc, argv)) {
    const auto problem =
        lp::random_dense_lp({.rows = size, .cols = size, .seed = 1});
    const auto gpu = bench::solve_device(problem, vgpu::gtx280_model());
    const auto cpu = simplex::solve(problem, simplex::Engine::kHostRevised);
    const auto tab = simplex::solve(problem, simplex::Engine::kTableau);
    if (!gpu.optimal() || !cpu.optimal() || !tab.optimal()) {
      std::cerr << "non-optimal solve at m=" << size << "\n";
      return 1;
    }
    table.new_row()
        .add(size)
        .add(gpu.stats.iterations)
        .add(gpu.stats.sim_seconds * 1e3)
        .add(cpu.stats.sim_seconds * 1e3)
        .add(tab.stats.sim_seconds * 1e3)
        .add(gpu.stats.wall_seconds * 1e3);
  }
  table.print(std::cout);
  bench::write_csv("fig1_runtime_vs_size", table);
  return 0;
}
