// Ext. A (ablation) — pricing-rule comparison on the device engine.
//
// Rules: Dantzig (most negative), Bland (anti-cycling), the hybrid
// Dantzig-with-Bland-fallback default, and Devex reference weights.
// Expected shape: on benign dense instances Dantzig/hybrid need the fewest
// iterations per unit time; Bland needs the most iterations; Devex pays
// one extra pricing-shaped kernel per iteration for fewer iterations on
// harder instances; on Klee-Minty only non-Dantzig rules escape the
// exponential path cheaply, and on Beale pure Dantzig cycles outright.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace gs;
  using simplex::PricingRule;
  const bool quick = argc > 1 && std::string_view(argv[1]) == "--quick";
  bench::print_header(
      "Ext.A: pricing-rule ablation (device engine, GTX-280 model)",
      "Bland: most iterations; Dantzig cycles on Beale (iteration limit); "
      "Devex pays ~2x per-iteration cost");

  struct Case {
    std::string name;
    lp::LpProblem problem;
  };
  std::vector<Case> cases;
  cases.push_back({"dense_256", lp::random_dense_lp(
                                    {.rows = 256, .cols = 256, .seed = 8})});
  if (!quick) {
    cases.push_back({"dense_512", lp::random_dense_lp(
                                      {.rows = 512, .cols = 512, .seed = 9})});
  }
  cases.push_back({"klee_minty_10", lp::klee_minty(10)});
  cases.push_back({"beale_cycling", lp::beale_cycling()});
  cases.push_back({"transport_8x10", lp::transportation(8, 10, 10)});

  constexpr PricingRule kRules[] = {PricingRule::kDantzig, PricingRule::kBland,
                                    PricingRule::kHybrid, PricingRule::kDevex};

  Table table({"problem", "rule", "status", "iters", "sim [ms]",
               "sim/iter [us]"});
  for (const Case& c : cases) {
    for (const PricingRule rule : kRules) {
      simplex::SolverOptions opt;
      opt.pricing = rule;
      opt.max_iterations = 5000;  // lets the Beale cycle trip visibly
      const auto r = bench::solve_device(c.problem, vgpu::gtx280_model(), opt);
      const double iters =
          static_cast<double>(std::max<std::size_t>(r.stats.iterations, 1));
      table.new_row()
          .add(c.name)
          .add(std::string(to_string(rule)))
          .add(std::string(to_string(r.status)))
          .add(r.stats.iterations)
          .add(r.stats.sim_seconds * 1e3)
          .add(r.stats.sim_seconds / iters * 1e6);
    }
  }
  table.print(std::cout);
  bench::write_csv("exta_pricing", table);
  return 0;
}
