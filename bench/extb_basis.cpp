// Ext. B (ablation) — basis-inverse representation.
//
// The paper's design keeps an explicit dense B^-1 updated by a rank-1
// Gauss-Jordan step: O(m^2) fully-parallel work per iteration, one kernel.
// The classical CPU alternative, the product-form eta file, does O(k*m)
// work for k accumulated etas but as 2k+2 *tiny dependent kernels* per
// FTRAN/BTRAN — exactly what a 2009 GPU is worst at. Expected shape: on
// the GPU model, explicit inverse wins and product form degrades as the
// eta file grows (short reinversion periods recover some of it); on the
// CPU model the gap narrows or reverses at small sizes.
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace gs;
  using simplex::BasisScheme;
  const bool quick = argc > 1 && std::string_view(argv[1]) == "--quick";
  bench::print_header(
      "Ext.B: explicit B^-1 vs product-form eta file (device engine)",
      "explicit inverse wins on the GPU model; eta file's many small "
      "kernels pay launch latency; shorter reinversion period helps");

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{96}
            : std::vector<std::size_t>{128, 256, 512};

  Table table({"m=n", "scheme", "reinv period", "iters", "gpu sim [ms]",
               "kernel launches"});
  for (const std::size_t size : sizes) {
    const auto problem =
        lp::random_dense_lp({.rows = size, .cols = size, .seed = 11});
    {
      const auto r = bench::solve_device(problem, vgpu::gtx280_model());
      table.new_row()
          .add(size)
          .add("explicit-inverse")
          .add("-")
          .add(r.stats.iterations)
          .add(r.stats.sim_seconds * 1e3)
          .add(r.stats.device_stats.kernel_launches);
    }
    for (const BasisScheme scheme :
         {BasisScheme::kProductForm, BasisScheme::kLuFactors}) {
      for (const std::size_t period : {std::size_t{16}, std::size_t{64},
                                       std::size_t{0} /* m */}) {
        simplex::SolverOptions opt;
        opt.basis = scheme;
        opt.reinversion_period = period;
        const auto r = bench::solve_device(problem, vgpu::gtx280_model(), opt);
        table.new_row()
            .add(size)
            .add(std::string(to_string(scheme)))
            .add(period == 0 ? "m" : std::to_string(period))
            .add(r.stats.iterations)
            .add(r.stats.sim_seconds * 1e3)
            .add(r.stats.device_stats.kernel_launches);
      }
    }
  }
  table.print(std::cout);
  bench::write_csv("extb_basis", table);
  return 0;
}
