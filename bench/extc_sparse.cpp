// Ext. C (extension) — CSR sparse revised simplex vs the dense engine on
// netlib-like sparse instances.
//
// Pricing and FTRAN cost scale with nnz for the sparse engine versus
// n_aug * m for the dense one; both keep B^-1 dense. Expected shape: the
// sparse engine's advantage grows as density falls and as the problem
// widens; at density ~100% the two converge (CSR overhead makes sparse
// slightly worse).
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace gs;
  const bool quick = argc > 1 && std::string_view(argv[1]) == "--quick";
  bench::print_header(
      "Ext.C: sparse (CSR) vs dense device engine on sparse LPs",
      "sparse-engine advantage grows as density falls; parity near 100% "
      "density");

  struct Shape {
    std::size_t rows, cols;
  };
  const std::vector<Shape> shapes =
      quick ? std::vector<Shape>{{64, 256}}
            : std::vector<Shape>{{128, 512}, {256, 1024}, {512, 2048}};
  const double densities[] = {0.005, 0.02, 0.10};

  Table table({"rows", "cols", "density", "iters", "dense sim [ms]",
               "sparse sim [ms]", "sparse speedup"});
  for (const Shape shape : shapes) {
    for (const double density : densities) {
      const auto problem = lp::random_sparse_lp({.rows = shape.rows,
                                                 .cols = shape.cols,
                                                 .density = density,
                                                 .seed = 12});
      vgpu::Device dev_dense(vgpu::gtx280_model());
      simplex::DeviceRevisedSimplex<double> dense(dev_dense);
      const auto rd = dense.solve(problem);
      vgpu::Device dev_sparse(vgpu::gtx280_model());
      simplex::SparseRevisedSimplex<double> sparse(dev_sparse);
      const auto rs = sparse.solve(problem);
      if (!rd.optimal() || !rs.optimal()) {
        std::cerr << "non-optimal sparse case\n";
        return 1;
      }
      table.new_row()
          .add(shape.rows)
          .add(shape.cols)
          .add(density)
          .add(rs.stats.iterations)
          .add(rd.stats.sim_seconds * 1e3)
          .add(rs.stats.sim_seconds * 1e3)
          .add(rd.stats.sim_seconds / rs.stats.sim_seconds);
    }
  }
  table.print(std::cout);
  bench::write_csv("extc_sparse", table);
  return 0;
}
