#!/usr/bin/env python3
"""Regression gate for the gs-bench-v1 artifact (BENCH_solver.json).

Usage: compare_bench.py BASELINE CANDIDATE [--tolerance FRAC]

Exit codes: 0 = within bands, 1 = regression/structure failure, 2 = usage
error (missing or malformed input file) -- so CI can tell "the candidate
got slower" apart from "the gate never ran".

Walks both JSON documents in lockstep and fails (exit 1) when:
  * the structure diverges (missing/extra keys, list-length mismatch,
    schema string change);
  * a runtime field -- any numeric key ending in ``_ms`` or ``_seconds`` --
    regresses by more than the tolerance (default 25%, relative).
    Improvements (candidate faster) always pass;
  * any health-warning count (``warnings_total`` or an entry under
    ``warnings_by_kind``) increases. Warnings disappearing is fine;
    new numerical-health noise at fixed seeds is not.

All other numeric fields (iteration counts, byte/launch tallies, shares)
are informational: drift is reported but does not fail the gate, so
machine-model retuning doesn't require a baseline refresh unless it
actually moves modeled runtimes past the band.
"""

import argparse
import json
import sys

RUNTIME_SUFFIXES = ("_ms", "_seconds")
WARNING_KEYS = ("warnings_total",)


def is_runtime_key(key):
    return any(key.endswith(s) for s in RUNTIME_SUFFIXES)


def is_warning_key(path):
    leaf = path[-1] if path else ""
    return leaf in WARNING_KEYS or (len(path) >= 2 and path[-2] == "warnings_by_kind")


def fmt(path):
    return "/".join(str(p) for p in path) or "<root>"


def compare(base, cand, tolerance, path=(), failures=None, notes=None):
    if failures is None:
        failures, notes = [], []
    if type(base) is not type(cand) and not (
        isinstance(base, (int, float)) and isinstance(cand, (int, float))
    ):
        failures.append(f"{fmt(path)}: type changed "
                        f"({type(base).__name__} -> {type(cand).__name__})")
    elif isinstance(base, dict):
        missing = sorted(set(base) - set(cand))
        extra = sorted(set(cand) - set(base))
        if missing:
            failures.append(f"{fmt(path)}: keys missing in candidate: {missing}")
        if extra:
            failures.append(f"{fmt(path)}: unexpected new keys: {extra}")
        for key in sorted(set(base) & set(cand)):
            compare(base[key], cand[key], tolerance, path + (key,), failures, notes)
    elif isinstance(base, list):
        if len(base) != len(cand):
            failures.append(f"{fmt(path)}: list length {len(base)} -> {len(cand)}")
        for i, (b, c) in enumerate(zip(base, cand)):
            compare(b, c, tolerance, path + (i,), failures, notes)
    elif isinstance(base, (int, float)):
        leaf = str(path[-1]) if path else ""
        if is_warning_key(path):
            if cand > base:
                failures.append(f"{fmt(path)}: health warnings increased "
                                f"{base} -> {cand}")
            elif cand != base:
                notes.append(f"{fmt(path)}: warnings {base} -> {cand} (ok)")
        elif is_runtime_key(leaf):
            if base > 0 and (cand - base) / base > tolerance:
                failures.append(
                    f"{fmt(path)}: runtime regression {base:.6g} -> {cand:.6g} "
                    f"(+{(cand - base) / base:.1%} > {tolerance:.0%})")
            elif base > 0 and abs(cand - base) / base > 1e-9:
                notes.append(f"{fmt(path)}: {base:.6g} -> {cand:.6g} "
                             f"({(cand - base) / base:+.1%})")
        elif cand != base:
            notes.append(f"{fmt(path)}: {base} -> {cand} (informational)")
    elif base != cand:
        # Strings (including "schema") must match exactly.
        failures.append(f"{fmt(path)}: value changed {base!r} -> {cand!r}")
    return failures, notes


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="max relative runtime regression (default 0.25)")
    args = ap.parse_args()

    # A gate that cannot read its inputs has not run: exit 2, one line,
    # distinguishable from a real regression (exit 1).
    docs = []
    for path in (args.baseline, args.candidate):
        try:
            with open(path) as f:
                docs.append(json.load(f))
        except OSError as e:
            print(f"compare_bench: cannot read {path}: {e.strerror or e}",
                  file=sys.stderr)
            return 2
        except json.JSONDecodeError as e:
            print(f"compare_bench: {path} is not valid JSON: {e}",
                  file=sys.stderr)
            return 2
    base, cand = docs

    failures, notes = compare(base, cand, args.tolerance)
    for n in notes:
        print(f"  note: {n}")
    if failures:
        for f_ in failures:
            print(f"  FAIL: {f_}", file=sys.stderr)
        print(f"compare_bench: {len(failures)} failure(s) vs {args.baseline}",
              file=sys.stderr)
        return 1
    print(f"compare_bench: candidate within bands of {args.baseline} "
          f"({len(notes)} informational drift(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
