#!/usr/bin/env python3
"""Regression gate for the gs-bench-v1 artifact (BENCH_solver.json).

Usage: compare_bench.py BASELINE CANDIDATE [--tolerance FRAC]
                        [--budget-tolerance FRAC] [--subset]

Exit codes: 0 = within bands, 1 = regression/structure failure, 2 = usage
error (missing or malformed input file, or a baseline that predates a
top-level section the candidate has and must be regenerated) -- so CI can
tell "the candidate got slower" apart from "the gate never ran".

Walks both JSON documents in lockstep and fails (exit 1) when:
  * the structure diverges (missing/extra keys, list-length mismatch,
    schema string change);
  * a runtime field -- any numeric key ending in ``_ms`` or ``_seconds`` --
    regresses by more than the tolerance (default 25%, relative).
    Improvements (candidate faster) always pass;
  * a throughput field -- any numeric key ending in ``_per_s`` (the
    service section's ``req_per_s``) -- *decreases* by more than the
    tolerance: the mirror image of the runtime rule, because for rates
    higher is better. Improvements (candidate faster) always pass;
  * a launch/transfer/memory budget field -- ``kernel_launches``,
    ``h2d_bytes``, ``peak_live_bytes`` or ``alloc_count`` -- grows by more
    than the budget tolerance (default 5%, relative). These are
    deterministic counters at fixed seeds, so the band is deliberately
    tight: a new per-iteration launch, upload, or allocation is a design
    regression (the fusion work exists to drive the first two DOWN; the
    "memory" section is the arena-allocator baseline for the last two),
    not model noise. Improvements always pass;
  * a roofline-profile share -- ``launch_bound_fraction`` or any entry
    under a ``top_kernel_share`` object (the "profile" section) -- grows
    by more than the same budget tolerance. These are deterministic
    ratios of modeled time at fixed seeds: a kernel sliding into the
    launch-bound class, or the hot-kernel mix concentrating, is a design
    change the profiler exists to surface. Decreases always pass;
  * any health-warning count (``warnings_total`` or an entry under
    ``warnings_by_kind``) increases. Warnings disappearing is fine;
    new numerical-health noise at fixed seeds is not;
  * an SLO quality field -- ``attainment`` or ``p99_headroom_frac`` (the
    "slo" section, produced by the telemetry pipeline's SLO engine) --
    *decreases* by more than the default tolerance. Higher is better,
    like the rate keys: eroding SLO attainment or latency headroom at
    fixed seeds means the service got closer to violating its
    objectives. Improvements always pass.

All other numeric fields (iteration counts, d2h tallies, shares) are
informational: drift is reported but does not fail the gate, so
machine-model retuning doesn't require a baseline refresh unless it
actually moves modeled runtimes past the band.

``--subset`` relaxes the structural check for quick gates (ci.sh's
perf-smoke runs ``bench_json --tiny`` against the full committed
baseline): keys or sweep points present only in the BASELINE become
notes instead of failures, and sweep entries are aligned by their ``m``
field rather than by list position. Candidate-only keys still fail.
"""

import argparse
import json
import sys

RUNTIME_SUFFIXES = ("_ms", "_seconds")
RATE_SUFFIXES = ("_per_s",)
BUDGET_KEYS = ("kernel_launches", "h2d_bytes", "peak_live_bytes",
               "alloc_count", "eta_count", "refactor_count")
WARNING_KEYS = ("warnings_total",)
SLO_KEYS = ("attainment", "p99_headroom_frac")


def is_runtime_key(key):
    return any(key.endswith(s) for s in RUNTIME_SUFFIXES)


def is_rate_key(key):
    return any(key.endswith(s) for s in RATE_SUFFIXES)


def is_warning_key(path):
    leaf = path[-1] if path else ""
    return leaf in WARNING_KEYS or (len(path) >= 2 and path[-2] == "warnings_by_kind")


def is_profile_share_key(path):
    leaf = path[-1] if path else ""
    return leaf == "launch_bound_fraction" or (
        len(path) >= 2 and path[-2] == "top_kernel_share")


def fmt(path):
    return "/".join(str(p) for p in path) or "<root>"


def is_m_keyed_sweep(value):
    return (isinstance(value, list) and value and
            all(isinstance(e, dict) and "m" in e for e in value))


def compare(base, cand, tolerance, path=(), failures=None, notes=None,
            budget_tolerance=0.05, subset=False):
    if failures is None:
        failures, notes = [], []
    kw = dict(budget_tolerance=budget_tolerance, subset=subset)
    if type(base) is not type(cand) and not (
        isinstance(base, (int, float)) and isinstance(cand, (int, float))
    ):
        failures.append(f"{fmt(path)}: type changed "
                        f"({type(base).__name__} -> {type(cand).__name__})")
    elif isinstance(base, dict):
        missing = sorted(set(base) - set(cand))
        extra = sorted(set(cand) - set(base))
        if missing and subset:
            notes.append(f"{fmt(path)}: baseline-only keys skipped "
                         f"(--subset): {missing}")
        elif missing:
            failures.append(f"{fmt(path)}: keys missing in candidate: {missing}")
        if extra:
            failures.append(f"{fmt(path)}: unexpected new keys: {extra}")
        for key in sorted(set(base) & set(cand)):
            compare(base[key], cand[key], tolerance, path + (key,), failures,
                    notes, **kw)
    elif isinstance(base, list):
        if subset and is_m_keyed_sweep(base) and is_m_keyed_sweep(cand):
            # Align sweep points by problem size, not list position: a
            # --tiny candidate covers a prefix of the baseline sweep.
            base_by_m = {e["m"]: e for e in base}
            for i, entry in enumerate(cand):
                if entry["m"] not in base_by_m:
                    failures.append(f"{fmt(path + (i,))}: sweep point "
                                    f"m={entry['m']} not in baseline")
                    continue
                compare(base_by_m[entry["m"]], entry, tolerance,
                        path + (f"m={entry['m']}",), failures, notes, **kw)
            skipped = sorted(set(base_by_m) - {e["m"] for e in cand})
            if skipped:
                notes.append(f"{fmt(path)}: baseline sweep points skipped "
                             f"(--subset): m={skipped}")
        else:
            if len(base) != len(cand):
                failures.append(
                    f"{fmt(path)}: list length {len(base)} -> {len(cand)}")
            for i, (b, c) in enumerate(zip(base, cand)):
                compare(b, c, tolerance, path + (i,), failures, notes, **kw)
    elif isinstance(base, (int, float)):
        leaf = str(path[-1]) if path else ""
        if is_warning_key(path):
            if cand > base:
                failures.append(f"{fmt(path)}: health warnings increased "
                                f"{base} -> {cand}")
            elif cand != base:
                notes.append(f"{fmt(path)}: warnings {base} -> {cand} (ok)")
        elif is_runtime_key(leaf):
            if base > 0 and (cand - base) / base > tolerance:
                failures.append(
                    f"{fmt(path)}: runtime regression {base:.6g} -> {cand:.6g} "
                    f"(+{(cand - base) / base:.1%} > {tolerance:.0%})")
            elif base > 0 and abs(cand - base) / base > 1e-9:
                notes.append(f"{fmt(path)}: {base:.6g} -> {cand:.6g} "
                             f"({(cand - base) / base:+.1%})")
        elif is_rate_key(leaf):
            # Throughput: higher is better, so a *decrease* beyond the
            # tolerance is the regression (mirror image of the runtimes).
            if base > 0 and (base - cand) / base > tolerance:
                failures.append(
                    f"{fmt(path)}: throughput regression {base:.6g} -> "
                    f"{cand:.6g} ({(cand - base) / base:.1%} beyond "
                    f"-{tolerance:.0%})")
            elif base > 0 and abs(cand - base) / base > 1e-9:
                notes.append(f"{fmt(path)}: {base:.6g} -> {cand:.6g} "
                             f"({(cand - base) / base:+.1%})")
        elif leaf in BUDGET_KEYS:
            if base > 0 and (cand - base) / base > budget_tolerance:
                failures.append(
                    f"{fmt(path)}: launch/transfer budget regression "
                    f"{base:.6g} -> {cand:.6g} "
                    f"(+{(cand - base) / base:.1%} > {budget_tolerance:.0%})")
            elif cand != base:
                notes.append(f"{fmt(path)}: {base:.6g} -> {cand:.6g} "
                             f"({(cand - base) / base:+.1%})")
        elif is_profile_share_key(path):
            if base > 0 and (cand - base) / base > budget_tolerance:
                failures.append(
                    f"{fmt(path)}: roofline share regression "
                    f"{base:.6g} -> {cand:.6g} "
                    f"(+{(cand - base) / base:.1%} > {budget_tolerance:.0%})")
            elif cand != base:
                notes.append(f"{fmt(path)}: {base:.6g} -> {cand:.6g} "
                             f"({(cand - base) / base:+.1%})")
        elif leaf in SLO_KEYS:
            # SLO attainment / headroom: higher is better, so a *decrease*
            # beyond the tolerance is the regression (like the rate keys).
            if base > 0 and (base - cand) / base > tolerance:
                failures.append(
                    f"{fmt(path)}: SLO regression {base:.6g} -> {cand:.6g} "
                    f"({(cand - base) / base:.1%} beyond -{tolerance:.0%})")
            elif base > 0 and abs(cand - base) / base > 1e-9:
                notes.append(f"{fmt(path)}: {base:.6g} -> {cand:.6g} "
                             f"({(cand - base) / base:+.1%})")
        elif cand != base:
            notes.append(f"{fmt(path)}: {base} -> {cand} (informational)")
    elif base != cand:
        # Strings (including "schema") must match exactly.
        failures.append(f"{fmt(path)}: value changed {base!r} -> {cand!r}")
    return failures, notes


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="max relative runtime regression (default 0.25)")
    ap.add_argument("--budget-tolerance", type=float, default=0.05,
                    help="max relative kernel_launches / h2d_bytes growth "
                         "(default 0.05)")
    ap.add_argument("--subset", action="store_true",
                    help="candidate may cover a subset of the baseline: "
                         "baseline-only keys are notes, sweep points align "
                         "by 'm' (for bench_json --tiny gates)")
    args = ap.parse_args()

    # A gate that cannot read its inputs has not run: exit 2, one line,
    # distinguishable from a real regression (exit 1).
    docs = []
    for path in (args.baseline, args.candidate):
        try:
            with open(path) as f:
                docs.append(json.load(f))
        except OSError as e:
            print(f"compare_bench: cannot read {path}: {e.strerror or e}",
                  file=sys.stderr)
            return 2
        except json.JSONDecodeError as e:
            print(f"compare_bench: {path} is not valid JSON: {e}",
                  file=sys.stderr)
            return 2
    base, cand = docs

    # A baseline that predates a whole candidate section (e.g. one written
    # before the "service" or "memory" sections existed) cannot gate it:
    # that is a stale input, not a regression. Exit 2 with a regeneration
    # hint so CI distinguishes "refresh the baseline" from "got slower".
    # Deeper-level candidate-only keys still fail the structural walk.
    if isinstance(base, dict) and isinstance(cand, dict):
        stale = sorted(set(cand) - set(base))
        if stale:
            print(f"compare_bench: baseline {args.baseline} lacks "
                  f"section(s) {stale} present in the candidate; "
                  f"regenerate the baseline (bench_json)", file=sys.stderr)
            return 2

    failures, notes = compare(base, cand, args.tolerance,
                              budget_tolerance=args.budget_tolerance,
                              subset=args.subset)
    for n in notes:
        print(f"  note: {n}")
    if failures:
        for f_ in failures:
            print(f"  FAIL: {f_}", file=sys.stderr)
        print(f"compare_bench: {len(failures)} failure(s) vs {args.baseline}",
              file=sys.stderr)
        return 1
    print(f"compare_bench: candidate within bands of {args.baseline} "
          f"({len(notes)} informational drift(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
