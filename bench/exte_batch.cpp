// Ext. E (extension) — batched small LPs vs sequential solves.
//
// The paper's weakness is the small-LP regime: one m=64 instance cannot
// occupy the device, so launch latency and PCIe round trips dominate and
// the CPU wins (Fig. 2 below the crossover). Batching K independent
// same-shape instances fuses every per-iteration kernel across the batch
// (K*m threads) and amortizes the per-iteration readback. Expected shape:
// modeled time per problem falls steeply with K, pushing the effective
// GPU-vs-CPU crossover down into the small-problem regime.
#include "bench/common.hpp"
#include "simplex/batch_revised.hpp"

int main(int argc, char** argv) {
  using namespace gs;
  const bool quick = argc > 1 && std::string_view(argv[1]) == "--quick";
  bench::print_header(
      "Ext.E: batched small LPs (lock-step fused kernels) vs sequential",
      "per-problem modeled time falls with batch size; batching beats the "
      "sequential CPU baseline even below the single-LP crossover");

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{32} : std::vector<std::size_t>{32, 64, 128};
  const std::vector<std::size_t> batch_sizes =
      quick ? std::vector<std::size_t>{1, 8} : std::vector<std::size_t>{1, 4, 16, 64};

  Table table({"m=n", "batch K", "gpu seq [ms/prob]", "gpu batch [ms/prob]",
               "batch speedup", "cpu seq [ms/prob]", "batch vs cpu"});
  for (const std::size_t size : sizes) {
    for (const std::size_t count : batch_sizes) {
      std::vector<lp::LpProblem> problems;
      problems.reserve(count);
      for (std::size_t k = 0; k < count; ++k) {
        problems.push_back(lp::random_dense_lp(
            {.rows = size, .cols = size, .seed = 700 + k}));
      }
      double seq_gpu = 0.0, seq_cpu = 0.0;
      for (const auto& problem : problems) {
        seq_gpu += bench::solve_device(problem, vgpu::gtx280_model())
                       .stats.sim_seconds;
        seq_cpu += simplex::solve(problem, simplex::Engine::kHostRevised)
                       .stats.sim_seconds;
      }
      vgpu::Device dev(vgpu::gtx280_model());
      simplex::BatchRevisedSimplex<double> solver(dev);
      const auto results = solver.solve(problems);
      for (const auto& r : results) {
        if (!r.optimal()) {
          std::cerr << "batch solve failed\n";
          return 1;
        }
      }
      const double batched = results.front().stats.sim_seconds;
      const double per_seq = seq_gpu / double(count) * 1e3;
      const double per_batch = batched / double(count) * 1e3;
      const double per_cpu = seq_cpu / double(count) * 1e3;
      table.new_row()
          .add(size)
          .add(count)
          .add(per_seq)
          .add(per_batch)
          .add(per_seq / per_batch)
          .add(per_cpu)
          .add(per_cpu / per_batch);
    }
  }
  table.print(std::cout);
  bench::write_csv("exte_batch", table);
  return 0;
}
