// Ext. D (extension) — device-model sensitivity.
//
// The Fig. 1 workload on three GPU machine models. Expected shape: at
// simplex-kernel widths (m threads, m <= 2048) every model is far below
// its saturation width, so *wider* newer GPUs are consistently slower —
// the effect the follow-on literature observed when a GTX TITAN lost to a
// GTX 570 across the NETLIB set. Their raw-bandwidth advantage would only
// appear at m approaching the saturation thread count (tens of thousands).
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace gs;
  const bool quick = argc > 1 && std::string_view(argv[1]) == "--quick";
  bench::print_header(
      "Ext.D: machine-model sensitivity (GTX280 / GTX570 / TITAN)",
      "wider GPUs are under-occupied at simplex kernel widths and lose "
      "across this sweep (the GTX570-beats-TITAN effect)");

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{64, 256}
            : std::vector<std::size_t>{64, 128, 256, 512, 1024, 2048};
  const vgpu::MachineModel models[] = {vgpu::gtx280_model(),
                                       vgpu::gtx570_model(),
                                       vgpu::titan_model()};

  Table table({"m=n", "iters", "GTX280 [ms]", "GTX570 [ms]", "TITAN [ms]",
               "best device"});
  for (const std::size_t size : sizes) {
    const auto problem =
        lp::random_dense_lp({.rows = size, .cols = size, .seed = 13});
    std::vector<double> times;
    std::size_t iters = 0;
    for (const auto& model : models) {
      const auto r = bench::solve_device(problem, model);
      if (!r.optimal()) {
        std::cerr << "non-optimal solve on " << model.name << "\n";
        return 1;
      }
      times.push_back(r.stats.sim_seconds * 1e3);
      iters = r.stats.iterations;
    }
    const std::size_t best = static_cast<std::size_t>(
        std::min_element(times.begin(), times.end()) - times.begin());
    table.new_row()
        .add(size)
        .add(iters)
        .add(times[0])
        .add(times[1])
        .add(times[2])
        .add(std::string(models[best].name));
  }
  table.print(std::cout);
  bench::write_csv("extd_devices", table);
  return 0;
}
