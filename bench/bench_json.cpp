// Machine-readable bench driver: runs scaled-down versions of the Fig. 1 /
// Fig. 2 sweep and the Tab. 1 per-operation breakdown and writes one JSON
// document (schema "gs-bench-v1") that bench/compare_bench.py diffs against
// the committed BENCH_solver.json baseline in CI.
//
// Everything gated by the comparison is *modeled* time (vgpu roofline
// sim_seconds) or an exact count from seeded workloads, so reruns are
// bit-identical on any host; wall-clock never enters the document. The
// tolerance bands in compare_bench.py exist to absorb intentional machine-
// model or algorithm changes, not host noise.
//
// Usage: bench_json [out.json] [--tiny]
//   out.json  output path (default: BENCH_solver.json in the CWD)
//   --tiny    perf-smoke mode for ci.sh: run only the first two sweep
//             points and skip the breakdown section. The result is a
//             strict subset of the full document, gated with
//             `compare_bench.py --subset` against the committed baseline.
#include <algorithm>
#include <iterator>
#include <string>

#include "bench/common.hpp"
#include "telemetry/telemetry.hpp"
#include "bench/per_iter.hpp"
#include "bench/svc_common.hpp"
#include "profile/profile.hpp"
#include "simplex/batch_revised.hpp"
#include "vgpu/analyze/analyze.hpp"
#include "metrics/metrics.hpp"
#include "trace/chrome_sink.hpp"

namespace {

using namespace gs;

// Small fixed sweep — this runs as a CI smoke stage, so sizes stay well
// below the full fig1 sweep. The baseline is regenerated with the same
// sizes (EXPERIMENTS.md), so there is no --quick switch to get wrong.
constexpr std::size_t kSweepSizes[] = {48, 64, 96, 128};
// Service-traffic section: K same-shape requests through SolveService vs
// the sequential device baseline (bench/svc_traffic.cpp). NOTE: the key
// "speedup_vs_cpu_revised" is reserved for the sweep — DispatchPolicy::
// from_bench_json pairs it positionally with "m" (service/policy.cpp).
constexpr std::size_t kServiceSizes[] = {48, 64};
constexpr std::size_t kServiceTraffic = 64;
constexpr std::size_t kBreakdownSize = 96;
// Basis section: product-form oracle telemetry on a seeded sparse host
// solve (eta growth, refactorization count, modeled sparse-FTRAN time).
constexpr std::size_t kBasisSize = 96;
// Memory section: buffer-lifetime budget captured by the static analyzer.
constexpr std::size_t kMemorySize = 64;
constexpr std::size_t kMemoryBatchK = 8;
constexpr std::size_t kBreakdownCap = 40;

// Per-sweep-point roofline summary collected during the sweep loop and
// emitted later as the "profile" section (the profiler rides the same
// solve the runtime keys are gated on; it is proven bit-identical-when-
// attached, so the section costs no extra solves).
struct ProfilePoint {
  std::size_t m = 0;
  double launch_bound_fraction = 0.0;
  std::vector<std::pair<std::string, double>> top_shares;
};

void append_kv(std::string& out, int indent, std::string_view key,
               double value, bool trailing_comma) {
  out.append(indent, ' ');
  metrics::json_write_string(out, key);
  out += ": ";
  metrics::json_write_number(out, value);
  if (trailing_comma) out += ',';
  out += '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const bool tiny = bench::has_flag(argc, argv, "--tiny");
  std::string out_path = "BENCH_solver.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) != "--tiny") {
      out_path = argv[i];
      break;
    }
  }

  const std::size_t sweep_count = tiny ? 2 : std::size(kSweepSizes);

  std::string out;
  out += "{\n  \"schema\": \"gs-bench-v1\",\n";

  // --- Fig.1/Fig.2-style sweep: three engines on seeded dense LPs. ------
  // Health warnings at these fixed seeds are part of the gated contract:
  // compare_bench.py fails if any warning count *increases* vs baseline.
  // One registry spans the whole sweep; per-point numbers come from
  // MetricsSnapshot::diff against the previous point's snapshot — the
  // same delta machinery the telemetry sampler rides, exercised here on
  // the gated artifact.
  std::vector<ProfilePoint> profile_points;
  metrics::MetricsRegistry registry;
  metrics::MetricsSnapshot prev_snap;
  out += "  \"sweep\": [\n";
  for (std::size_t s = 0; s < sweep_count; ++s) {
    const std::size_t size = kSweepSizes[s];
    const auto problem =
        lp::random_dense_lp({.rows = size, .cols = size, .seed = 1});

    profile::Profiler prof;
    simplex::SolverOptions opt;
    opt.metrics = &registry;
    opt.profiler = &prof;
    const auto gpu = bench::solve_device(problem, vgpu::gtx280_model(), opt);
    const auto cpu = simplex::solve(problem, simplex::Engine::kHostRevised);
    const auto tab = simplex::solve(problem, simplex::Engine::kTableau);
    if (!gpu.optimal() || !cpu.optimal() || !tab.optimal()) {
      std::cerr << "non-optimal solve at m=" << size << "\n";
      return 1;
    }
    const auto& ds = gpu.stats.device_stats;

    {
      const profile::ProfileReport rep = prof.report();
      // The profiler folds the same per-launch roofline times the device
      // accumulates, in the same order: anything but bit-equality here is
      // a reconciliation bug, not noise.
      if (rep.kernel_seconds() != ds.kernel_seconds) {
        std::cerr << "profile does not reconcile with DeviceStats at m="
                  << size << "\n";
        return 1;
      }
      ProfilePoint pt;
      pt.m = size;
      pt.launch_bound_fraction = rep.launch_bound_fraction;
      const double total = rep.kernel_seconds();
      for (std::size_t k = 0; k < rep.kernels.size() && k < 3; ++k) {
        pt.top_shares.emplace_back(
            rep.kernels[k].name,
            total > 0.0 ? rep.kernels[k].seconds / total : 0.0);
      }
      profile_points.push_back(std::move(pt));
    }

    out += "    {\n";
    append_kv(out, 6, "m", double(size), true);
    append_kv(out, 6, "gpu_iterations", double(gpu.stats.iterations), true);
    append_kv(out, 6, "gpu_revised_ms", gpu.stats.sim_seconds * 1e3, true);
    append_kv(out, 6, "cpu_revised_ms", cpu.stats.sim_seconds * 1e3, true);
    append_kv(out, 6, "cpu_tableau_ms", tab.stats.sim_seconds * 1e3, true);
    append_kv(out, 6, "speedup_vs_cpu_revised",
              cpu.stats.sim_seconds / gpu.stats.sim_seconds, true);
    append_kv(out, 6, "kernel_launches", double(ds.kernel_launches), true);
    append_kv(out, 6, "h2d_bytes", double(ds.h2d_bytes), true);
    append_kv(out, 6, "d2h_bytes", double(ds.d2h_bytes), true);
    const auto snap = registry.snapshot();
    const auto delta = snap.diff(prev_snap);
    prev_snap = snap;
    append_kv(out, 6, "warnings_total", double(delta.warnings_total), true);
    // Per-kind warning counters (health.warnings.<kind>), if any tripped
    // at this point (delta counters; zero-valued kinds from earlier
    // points are skipped so the emitted set matches a per-point registry).
    out += "      \"warnings_by_kind\": {";
    bool first = true;
    for (const auto& [name, value] : delta.counters) {
      constexpr std::string_view prefix = "health.warnings.";
      if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) continue;
      if (value == 0.0) continue;
      if (!first) out += ", ";
      first = false;
      metrics::json_write_string(out, name.substr(prefix.size()));
      out += ": ";
      metrics::json_write_number(out, value);
    }
    out += "}\n";
    out += (s + 1 < sweep_count) ? "    },\n" : "    }\n";
  }
  out += "  ],\n";

  // --- Service traffic: batched dispatch vs one-at-a-time device. -------
  // req_per_s is a rate key: compare_bench.py fails if it *decreases*
  // beyond tolerance; the latency keys are gated like any runtime.
  const std::size_t service_count = tiny ? 1 : std::size(kServiceSizes);
  struct SloPoint {
    std::size_t m = 0;
    double attainment = 1.0;
    double p99_headroom_frac = 0.0;
    std::size_t alerts_fired = 0;
  };
  std::vector<SloPoint> slo_points;
  out += "  \"service\": [\n";
  for (std::size_t s = 0; s < service_count; ++s) {
    const std::size_t size = kServiceSizes[s];
    // The telemetry sink rides the gated traffic run (proven inert), and
    // its SLO verdicts become the "slo" section: the spec below is the
    // ci.sh baseline mix minus the warm-hit objective — the cold traffic
    // of distinct problems has a 0% hit rate by construction, which would
    // pin the min-attainment at 0 and make the gate vacuous.
    telemetry::Telemetry tel;
    tel.set_slo(telemetry::SloSpec::parse(
        "p99<=20ms,miss<=0.01,reject<=0.01"));
    const bench::TrafficResult tr = bench::run_same_shape_traffic(
        size, kServiceTraffic, 700, nullptr, nullptr, &tel);
    if (tr.service_seconds <= 0.0) {
      std::cerr << "service traffic run failed at m=" << size << "\n";
      return 1;
    }
    SloPoint sp;
    sp.m = size;
    for (const telemetry::SloAttainment& a : tel.slo_attainment()) {
      sp.attainment = std::min(sp.attainment, a.attainment);
      sp.alerts_fired += a.alerts_fired;
      if (a.name.rfind("p99<=", 0) == 0) sp.p99_headroom_frac = a.headroom;
    }
    slo_points.push_back(sp);
    out += "    {\n";
    append_kv(out, 6, "m", double(size), true);
    append_kv(out, 6, "requests", double(kServiceTraffic), true);
    append_kv(out, 6, "device_seq_ms", tr.baseline_seconds * 1e3, true);
    append_kv(out, 6, "service_ms", tr.service_seconds * 1e3, true);
    append_kv(out, 6, "speedup_vs_sequential_device",
              tr.baseline_seconds / tr.service_seconds, true);
    append_kv(out, 6, "req_per_s",
              double(kServiceTraffic) / tr.service_seconds, true);
    append_kv(out, 6, "latency_p50_ms", tr.p50_seconds * 1e3, true);
    append_kv(out, 6, "latency_p99_ms", tr.p99_seconds * 1e3, true);
    append_kv(out, 6, "batch_rounds", double(tr.batch_rounds), false);
    out += (s + 1 < service_count) ? "    },\n" : "    }\n";
  }
  out += "  ],\n";

  // --- SLO attainment per traffic point (telemetry + SLO engine). -------
  // attainment and p99_headroom_frac are higher-is-better keys gated by
  // compare_bench.py (a drop past tolerance fails); alerts_fired is
  // informational. m-keyed like the service section so --tiny stays a
  // strict subset.
  out += "  \"slo\": [\n";
  for (std::size_t s = 0; s < slo_points.size(); ++s) {
    const SloPoint& sp = slo_points[s];
    out += "    {\n";
    append_kv(out, 6, "m", double(sp.m), true);
    append_kv(out, 6, "attainment", sp.attainment, true);
    append_kv(out, 6, "p99_headroom_frac", sp.p99_headroom_frac, true);
    append_kv(out, 6, "alerts_fired", double(sp.alerts_fired), false);
    out += (s + 1 < slo_points.size()) ? "    },\n" : "    }\n";
  }
  out += "  ],\n";

  // --- Roofline profile of the sweep's device solves. -------------------
  // launch_bound_fraction and the top-kernel shares are deterministic
  // ratios of modeled time at fixed seeds; compare_bench.py gates them
  // with the tight 5% budget band (a kernel drifting between bound
  // classes, or the hot-kernel mix shifting, is a design change — the
  // kind the roofline work exists to surface — not noise). m-keyed like
  // the sweep so --tiny stays a strict subset.
  out += "  \"profile\": [\n";
  for (std::size_t s = 0; s < profile_points.size(); ++s) {
    const ProfilePoint& pt = profile_points[s];
    out += "    {\n";
    append_kv(out, 6, "m", double(pt.m), true);
    append_kv(out, 6, "launch_bound_fraction", pt.launch_bound_fraction,
              true);
    out += "      \"top_kernel_share\": {";
    for (std::size_t k = 0; k < pt.top_shares.size(); ++k) {
      if (k) out += ", ";
      metrics::json_write_string(out, pt.top_shares[k].first);
      out += ": ";
      metrics::json_write_number(out, pt.top_shares[k].second);
    }
    out += "}\n";
    out += (s + 1 < profile_points.size()) ? "    },\n" : "    }\n";
  }
  out += "  ],\n";

  // --- Product-form basis telemetry (host engine, sparse instance). -----
  // eta_count / refactor_count are BUDGET_KEYS in compare_bench.py (5%
  // band): the eta-file growth and the refactorization trigger are
  // algorithmic contracts at fixed seeds, not noise. ftran_ms is gated
  // as a runtime. Runs in --tiny too: one small host solve, and the
  // counts are size-dependent, not subset-able.
  {
    const auto basis_problem = lp::random_sparse_lp({.rows = kBasisSize,
                                                     .cols = 4 * kBasisSize,
                                                     .density = 0.05,
                                                     .seed = 2});
    simplex::SolverOptions opt;
    opt.basis = simplex::BasisScheme::kProductForm;
    const auto r =
        simplex::solve(basis_problem, simplex::Engine::kHostRevised, opt);
    if (!r.optimal()) {
      std::cerr << "basis-section solve failed at m=" << kBasisSize << "\n";
      return 1;
    }
    const auto& pk = r.stats.device_stats.per_kernel;
    const auto launches = [&](const char* k) {
      const auto it = pk.find(k);
      return it == pk.end() ? 0.0 : double(it->second.launches);
    };
    const auto step_ms = [&](const char* k) {
      const auto it = pk.find(k);
      return it == pk.end() ? 0.0 : it->second.sim_seconds * 1e3;
    };
    out += "  \"basis\": {\n";
    append_kv(out, 4, "m", double(kBasisSize), true);
    append_kv(out, 4, "eta_count", launches("eta_append"), true);
    append_kv(out, 4, "refactor_count", launches("sparse_refactor"), true);
    append_kv(out, 4, "ftran_ms", step_ms("sparse_ftran"), false);
    out += "  },\n";
  }

  // --- Buffer-lifetime budget per engine (static analyzer capture). -----
  // peak_live_bytes / alloc_count are BUDGET_KEYS in compare_bench.py:
  // deterministic at fixed seeds, gated with the tight 5% band. This is
  // the arena-allocator baseline (ROADMAP item 5) — churn regressions
  // show up here before any allocator work lands. Runs in --tiny too:
  // the capture is cheap and the counts are size-dependent, not
  // subset-able, so tiny and full must agree exactly.
  {
    const auto mem_problem = lp::random_dense_lp(
        {.rows = kMemorySize, .cols = kMemorySize, .seed = 1});
    const auto mem_sparse = lp::random_sparse_lp({.rows = kMemorySize,
                                                  .cols = 4 * kMemorySize,
                                                  .density = 0.05,
                                                  .seed = 1});
    out += "  \"memory\": {\n";
    append_kv(out, 4, "m", double(kMemorySize), true);
    const auto emit = [&](std::string_view key,
                          const vgpu::analyze::Report& rep, bool comma) {
      out += "    ";
      metrics::json_write_string(out, key);
      out += ": {\n";
      append_kv(out, 6, "peak_live_bytes", double(rep.peak_live_bytes), true);
      append_kv(out, 6, "alloc_count", double(rep.alloc_count), false);
      out += comma ? "    },\n" : "    }\n";
    };
    const auto capture_single = [&](bool use_float) {
      vgpu::analyze::CaptureLog cap;
      simplex::SolverOptions opt;
      opt.analyzer = &cap;
      if (use_float) {
        (void)bench::solve_device_float(mem_problem, vgpu::gtx280_model(),
                                        opt);
      } else {
        (void)bench::solve_device(mem_problem, vgpu::gtx280_model(), opt);
      }
      return vgpu::analyze::analyze(cap);
    };
    emit("device_revised", capture_single(false), true);
    emit("device_revised_float", capture_single(true), true);
    {
      vgpu::analyze::CaptureLog cap;
      simplex::SolverOptions opt;
      opt.analyzer = &cap;
      (void)simplex::solve(mem_sparse, simplex::Engine::kSparseRevised, opt,
                           vgpu::gtx280_model());
      emit("sparse_revised", vgpu::analyze::analyze(cap), true);
    }
    {
      std::vector<lp::LpProblem> round;
      for (std::uint64_t s = 1; s <= kMemoryBatchK; ++s) {
        round.push_back(lp::random_dense_lp(
            {.rows = kMemorySize, .cols = kMemorySize, .seed = s}));
      }
      vgpu::analyze::CaptureLog cap;
      simplex::SolverOptions opt;
      opt.analyzer = &cap;
      vgpu::Device dev(vgpu::gtx280_model());
      simplex::BatchRevisedSimplex<double> engine(dev, opt);
      (void)engine.solve(round);
      emit("batch_revised", vgpu::analyze::analyze(cap), false);
    }
    out += tiny ? "  }\n" : "  },\n";
  }

  // --- Tab.1-style per-operation breakdown at a fixed iteration cap. ----
  if (!tiny) {
    const auto problem = lp::random_dense_lp(
        {.rows = kBreakdownSize, .cols = kBreakdownSize, .seed = 3});
    simplex::SolverOptions opt;
    opt.max_iterations = kBreakdownCap;
    trace::ChromeTraceSink sink;
    opt.trace_sink = &sink;
    const auto result =
        bench::solve_device(problem, vgpu::gtx280_model(), opt);
    const auto rows = bench::per_iteration_rows(sink.events());
    const auto totals = bench::op_totals(rows);
    double grand = 0.0;
    for (const double t : totals) grand += t;

    out += "  \"breakdown\": {\n";
    append_kv(out, 4, "m", double(kBreakdownSize), true);
    append_kv(out, 4, "iteration_cap", double(kBreakdownCap), true);
    append_kv(out, 4, "iterations", double(result.stats.iterations), true);
    out += "    \"op_ms\": {\n";
    for (std::size_t k = 0; k < bench::kOpColumns.size(); ++k) {
      append_kv(out, 6, bench::kOpColumns[k], totals[k] * 1e3,
                k + 1 < bench::kOpColumns.size());
    }
    out += "    },\n";
    out += "    \"op_share\": {\n";
    for (std::size_t k = 0; k < bench::kOpColumns.size(); ++k) {
      append_kv(out, 6, bench::kOpColumns[k],
                grand > 0.0 ? totals[k] / grand : 0.0,
                k + 1 < bench::kOpColumns.size());
    }
    out += "    }\n  }\n";
  }

  out += "}\n";

  std::ofstream file(out_path);
  if (!file.good()) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  file << out;
  std::cout << "[bench-json] wrote " << out_path << "\n";
  return 0;
}
