// Tab. 1 — per-iteration operation breakdown on one large instance.
//
// Runs a capped number of iterations at m = n = 1536 and reports where the
// modeled device time goes. Expected shape: the three O(m^2)/O(m*n)
// kernels (pricing sweep, FTRAN, B^-1 update) carry >80% of the time;
// per-iteration PCIe traffic is scalar-sized (latency-bound, visible but
// small); selection kernels are overhead-dominated.
#include "bench/common.hpp"
#include "vgpu/stats_report.hpp"

int main(int argc, char** argv) {
  using namespace gs;
  const bool quick = argc > 1 && std::string_view(argv[1]) == "--quick";
  const std::size_t size = quick ? 256 : 1536;
  const std::size_t iteration_cap = 60;
  bench::print_header(
      "Tab.1: per-kernel time breakdown (m=n=" + std::to_string(size) +
          ", first " + std::to_string(iteration_cap) + " iterations)",
      "price_reduced + ftran + update_binv dominate (>80%); transfers are "
      "latency-bound scalars");

  const auto problem =
      lp::random_dense_lp({.rows = size, .cols = size, .seed = 3});
  simplex::SolverOptions opt;
  opt.max_iterations = iteration_cap;
  vgpu::Device dev(vgpu::gtx280_model());
  simplex::DeviceRevisedSimplex<double> solver(dev, opt);
  const auto result = solver.solve(problem);

  std::cout << "status after cap: " << to_string(result.status)
            << ", iterations: " << result.stats.iterations << "\n";
  vgpu::print_kernel_breakdown(std::cout, result.stats.device_stats);

  // Per-iteration summary row (the paper's table normalizes per iteration).
  const auto& ds = result.stats.device_stats;
  const double iters = static_cast<double>(
      std::max<std::size_t>(result.stats.iterations, 1));
  Table table({"quantity", "per iteration"});
  table.new_row().add("modeled device time [ms]").add(
      ds.sim_seconds() / iters * 1e3);
  table.new_row().add("kernel launches").add(
      static_cast<double>(ds.kernel_launches) / iters);
  table.new_row().add("PCIe bytes (h2d+d2h, steady-state)").add(
      static_cast<double>(ds.d2h_bytes) / iters);
  table.new_row().add("GFLOP").add(ds.total_flops / iters * 1e-9);
  table.print(std::cout);
  bench::write_csv("tab1_breakdown", table);
  return 0;
}
