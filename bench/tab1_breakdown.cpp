// Tab. 1 — per-iteration operation breakdown on one large instance.
//
// Runs a capped number of iterations at m = n = 1536 and reports where the
// modeled device time goes. Expected shape: the three O(m^2)/O(m*n)
// kernels (pricing sweep, FTRAN, B^-1 update) carry >80% of the time;
// per-iteration PCIe traffic is scalar-sized (latency-bound, visible but
// small); selection kernels are overhead-dominated.
//
// Flags:
//   --quick       smaller instance (m = n = 256) for smoke runs
//   --per-iter    additionally reconstruct a per-iteration operation
//                 breakdown from the trace layer (OBSERVABILITY.md): one
//                 row per iteration with the modeled time and share of
//                 each algorithm phase, in the stable bench::kOpColumns
//                 order (price / ftran / ratio / update / refactor) that
//                 bench_json reuses
//   --trace FILE  dump the solve as Chrome trace JSON to FILE
#include "bench/common.hpp"
#include "bench/per_iter.hpp"
#include "trace/chrome_sink.hpp"
#include "vgpu/stats_report.hpp"

namespace {

using namespace gs;

}  // namespace

int main(int argc, char** argv) {
  bool quick = false, per_iter = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--per-iter") {
      per_iter = true;
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    }
  }
  const std::size_t size = quick ? 256 : 1536;
  const std::size_t iteration_cap = 60;
  bench::print_header(
      "Tab.1: per-kernel time breakdown (m=n=" + std::to_string(size) +
          ", first " + std::to_string(iteration_cap) + " iterations)",
      "price_reduced + ftran + update_binv dominate (>80%); transfers are "
      "latency-bound scalars");

  const auto problem =
      lp::random_dense_lp({.rows = size, .cols = size, .seed = 3});
  simplex::SolverOptions opt;
  opt.max_iterations = iteration_cap;
  trace::ChromeTraceSink sink;
  const bool tracing = per_iter || !trace_path.empty();
  if (tracing) opt.trace_sink = &sink;
  vgpu::Device dev(vgpu::gtx280_model());
  simplex::DeviceRevisedSimplex<double> solver(dev, opt);
  const auto result = solver.solve(problem);

  std::cout << "status after cap: " << to_string(result.status)
            << ", iterations: " << result.stats.iterations << "\n";
  vgpu::print_kernel_breakdown(std::cout, result.stats.device_stats);

  // Per-iteration summary row (the paper's table normalizes per iteration).
  const auto& ds = result.stats.device_stats;
  const double iters = static_cast<double>(
      std::max<std::size_t>(result.stats.iterations, 1));
  Table table({"quantity", "per iteration"});
  table.new_row().add("modeled device time [ms]").add(
      ds.sim_seconds() / iters * 1e3);
  table.new_row().add("kernel launches").add(
      static_cast<double>(ds.kernel_launches) / iters);
  table.new_row().add("PCIe bytes (h2d+d2h, steady-state)").add(
      static_cast<double>(ds.d2h_bytes) / iters);
  table.new_row().add("GFLOP").add(ds.total_flops / iters * 1e-9);
  table.print(std::cout);
  bench::write_csv("tab1_breakdown", table);

  if (per_iter) {
    // The paper's table is an aggregate; this mode shows its evolution —
    // how the operation mix changes iteration by iteration (the view
    // Huangfu & Hall use to diagnose revised-simplex implementations).
    const auto rows = bench::per_iteration_rows(sink.events());
    std::vector<std::string> cols{"iteration"};
    for (const std::string_view op : bench::kOpColumns) {
      cols.push_back(std::string(op) + " [ms]");
    }
    cols.emplace_back("total [ms]");
    for (const std::string_view op : bench::kOpColumns) {
      cols.push_back(std::string(op) + " [%]");
    }
    Table it_table(cols);
    const std::size_t show = std::min<std::size_t>(rows.size(), 12);
    for (std::size_t i = 0; i < show; ++i) {
      auto& r = it_table.new_row();
      r.add(static_cast<double>(i));
      for (std::size_t k = 0; k < bench::kOpColumns.size(); ++k) {
        r.add(rows[i].op_seconds[k] * 1e3);
      }
      const double total = rows[i].total();
      r.add(total * 1e3);
      for (std::size_t k = 0; k < bench::kOpColumns.size(); ++k) {
        r.add(total > 0.0 ? rows[i].op_seconds[k] / total * 100.0 : 0.0);
      }
    }
    std::cout << "per-iteration breakdown (first " << show << " of "
              << rows.size() << " iterations):\n";
    it_table.print(std::cout);
    bench::write_csv("tab1_per_iteration", it_table);
  }
  if (!trace_path.empty()) {
    sink.write_file(trace_path);
    std::cout << "[trace] " << sink.events().size() << " events -> "
              << trace_path << "\n";
  }
  return 0;
}
