// Fig. 2 — GPU-over-CPU speedup vs. problem size (derived from the Fig. 1
// sweep).
//
// Expected shape: speedup < 1 below the crossover (m ~ 500), rising with
// size to a modest multiple (the paper reports ~2-2.5x near m = 2000).
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace gs;
  bench::print_header(
      "Fig.2: GPU-over-CPU speedup vs problem size",
      "monotone-increasing curve crossing 1.0 near m~500, ~2-3x at m~2000");

  Table table({"m=n", "speedup vs cpu revised", "speedup vs cpu tableau"});
  for (const std::size_t size : bench::dense_sizes(argc, argv)) {
    const auto problem =
        lp::random_dense_lp({.rows = size, .cols = size, .seed = 1});
    const auto gpu = bench::solve_device(problem, vgpu::gtx280_model());
    const auto cpu = simplex::solve(problem, simplex::Engine::kHostRevised);
    const auto tab = simplex::solve(problem, simplex::Engine::kTableau);
    table.new_row()
        .add(size)
        .add(cpu.stats.sim_seconds / gpu.stats.sim_seconds)
        .add(tab.stats.sim_seconds / gpu.stats.sim_seconds);
  }
  table.print(std::cout);
  bench::write_csv("fig2_speedup", table);
  return 0;
}
