// Service traffic generator — batched dispatch vs one-at-a-time device.
//
// K same-shape small LPs arrive together; the paper's weakness is exactly
// this regime (one m=64 instance cannot occupy the device). The service's
// scheduler packs the burst into batch-engine rounds, so throughput should
// approach the Ext. E batch speedup (18-19x at K=64) rather than the
// sequential-device baseline. This harness is the source of the "service"
// section of BENCH_solver.json; the >= 10x throughput floor at K=64 is an
// acceptance gate, enforced here and rechecked by compare_bench.py's rate
// keys (req_per_s must not regress).
//
// Usage: svc_traffic [--tiny]
//   --tiny    single m=48 point for ci.sh perf-smoke (same K=64, same
//             seeds: the numbers match the full run bit-for-bit).
#include "bench/svc_common.hpp"

int main(int argc, char** argv) {
  using namespace gs;
  const bool tiny = bench::has_flag(argc, argv, "--tiny");
  bench::print_header(
      "Service traffic: K same-shape LPs through SolveService vs "
      "one-at-a-time device solves",
      "scheduler packs the burst into batch rounds; throughput >= 10x the "
      "sequential device baseline at K=64");

  const std::vector<std::size_t> sizes =
      tiny ? std::vector<std::size_t>{48} : std::vector<std::size_t>{48, 64};
  constexpr std::size_t kTraffic = 64;

  Table table({"m=n", "K", "device seq [ms]", "service [ms]", "speedup",
               "req/s (modeled)", "p50 [ms]", "p99 [ms]", "rounds"});
  bool ok = true;
  for (const std::size_t m : sizes) {
    const bench::TrafficResult r =
        bench::run_same_shape_traffic(m, kTraffic);
    const double speedup = r.baseline_seconds / r.service_seconds;
    table.new_row()
        .add(m)
        .add(kTraffic)
        .add(r.baseline_seconds * 1e3)
        .add(r.service_seconds * 1e3)
        .add(speedup)
        .add(double(kTraffic) / r.service_seconds)
        .add(r.p50_seconds * 1e3)
        .add(r.p99_seconds * 1e3)
        .add(r.batch_rounds);
    if (speedup < 10.0) {
      std::cerr << "FAIL: service throughput " << speedup
                << "x at m=" << m << ", K=" << kTraffic
                << " (acceptance floor is 10x)\n";
      ok = false;
    }
  }
  table.print(std::cout);
  bench::write_csv("svc_traffic", table);
  return ok ? 0 : 1;
}
