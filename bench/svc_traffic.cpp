// Service traffic generator — batched dispatch vs one-at-a-time device.
//
// K same-shape small LPs arrive together; the paper's weakness is exactly
// this regime (one m=64 instance cannot occupy the device). The service's
// scheduler packs the burst into batch-engine rounds, so throughput should
// approach the Ext. E batch speedup (18-19x at K=64) rather than the
// sequential-device baseline. This harness is the source of the "service"
// section of BENCH_solver.json; the >= 10x throughput floor at K=64 is an
// acceptance gate, enforced here and rechecked by compare_bench.py's rate
// keys (req_per_s must not regress).
//
// Usage: svc_traffic [--tiny] [--trace[=file]] [--profile[=file]]
//                    [--telemetry[=file]] [--slo=<spec>]
//   --tiny      single m=48 point for ci.sh perf-smoke (same K=64, same
//               seeds: the numbers match the full run bit-for-bit).
//   --trace     attach a service-level Chrome trace sink; with =file the
//               last size's named request-lane timeline is written there.
//   --profile   attach the roofline profiler per size and decompose the
//               request p50/p99 into per-stage attribution; exits 1 unless
//               every admitted request has a span tree whose stage slices
//               tile its latency to 1e-9 (the coverage + tiling gate ci.sh
//               runs). With =file the last size's gs-profile-v1 JSON is
//               written there.
//   --telemetry attach the time-series telemetry pipeline per size; with
//               =file the last size's gs-telemetry-v1 JSON is written
//               there (byte-identical across reruns — ci.sh cmp's two).
//   --slo       evaluate the spec (e.g. p99<=20ms,miss<=0.01,reject<=0.01,
//               hit>=0) against each size's sampled series and print a
//               ranked attainment table; exits 1 if any objective blows
//               its error budget (the pass/doctored-fail gate ci.sh runs).
#include <fstream>
#include <memory>
#include <string>
#include <string_view>

#include "bench/svc_common.hpp"
#include "trace/chrome_sink.hpp"

namespace {

/// Parse `--name` / `--name=path`: returns whether present, and the path
/// ("" when the valueless form was used).
bool optional_path_flag(int argc, char** argv, std::string_view name,
                        std::string& path) {
  const std::string eq = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == name) return true;
    if (arg.starts_with(eq)) {
      path = std::string(arg.substr(eq.size()));
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gs;
  const bool tiny = bench::has_flag(argc, argv, "--tiny");
  std::string trace_path, profile_path, telemetry_path;
  const bool want_trace =
      optional_path_flag(argc, argv, "--trace", trace_path);
  const bool want_profile =
      optional_path_flag(argc, argv, "--profile", profile_path);
  const bool want_telemetry =
      optional_path_flag(argc, argv, "--telemetry", telemetry_path);
  std::string slo_text;
  bool want_slo = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.starts_with("--slo=")) {
      slo_text = std::string(arg.substr(6));
      want_slo = true;
    }
  }
  telemetry::SloSpec slo_spec;
  if (want_slo) {
    try {
      slo_spec = telemetry::SloSpec::parse(slo_text);
    } catch (const gs::Error& e) {
      std::cerr << "svc_traffic: " << e.what() << "\n";
      return 1;
    }
  }
  bench::print_header(
      "Service traffic: K same-shape LPs through SolveService vs "
      "one-at-a-time device solves",
      "scheduler packs the burst into batch rounds; throughput >= 10x the "
      "sequential device baseline at K=64");

  const std::vector<std::size_t> sizes =
      tiny ? std::vector<std::size_t>{48} : std::vector<std::size_t>{48, 64};
  constexpr std::size_t kTraffic = 64;

  Table table({"m=n", "K", "device seq [ms]", "service [ms]", "speedup",
               "req/s (modeled)", "p50 [ms]", "p99 [ms]", "rounds"});
  bool ok = true;
  for (const std::size_t m : sizes) {
    // Fresh observers per size: request track ids restart with each
    // service, so one shared profiler would merge distinct requests.
    auto chrome = want_trace ? std::make_unique<trace::ChromeTraceSink>()
                            : nullptr;
    auto profiler = want_profile ? std::make_unique<profile::Profiler>()
                                 : nullptr;
    auto tel = (want_telemetry || want_slo)
                   ? std::make_unique<telemetry::Telemetry>()
                   : nullptr;
    if (tel && want_slo) tel->set_slo(slo_spec);
    // The service interposes the profiler over the trace sink itself, so
    // --trace --profile compose on one stream.
    const bench::TrafficResult r = bench::run_same_shape_traffic(
        m, kTraffic, 700, chrome.get(), profiler.get(), tel.get());
    const double speedup = r.baseline_seconds / r.service_seconds;
    table.new_row()
        .add(m)
        .add(kTraffic)
        .add(r.baseline_seconds * 1e3)
        .add(r.service_seconds * 1e3)
        .add(speedup)
        .add(double(kTraffic) / r.service_seconds)
        .add(r.p50_seconds * 1e3)
        .add(r.p99_seconds * 1e3)
        .add(r.batch_rounds);
    if (speedup < 10.0) {
      std::cerr << "FAIL: service throughput " << speedup
                << "x at m=" << m << ", K=" << kTraffic
                << " (acceptance floor is 10x)\n";
      ok = false;
    }

    if (profiler) {
      const profile::ProfileReport rep = profiler->report();
      const double tiling = rep.max_stage_tiling_error();
      // Coverage + tiling gate: every admitted request must carry a span
      // tree, and its stage slices must tile latency to 1e-9.
      if (rep.requests.size() != r.accepted) {
        std::cerr << "FAIL: profile covers " << rep.requests.size()
                  << " of " << r.accepted << " admitted requests at m=" << m
                  << "\n";
        ok = false;
      } else if (tiling > 1e-9) {
        std::cerr << "FAIL: stage spans miss request latency by " << tiling
                  << "s at m=" << m << " (budget 1e-9)\n";
        ok = false;
      } else {
        std::cout << "profile: stage spans tile request latency (max error "
                  << tiling << "s over " << rep.requests.size()
                  << " requests)\n";
      }
      const profile::RequestSummary rs = rep.request_summary();
      auto print_stages =
          [](const std::vector<std::pair<std::string, double>>& st) {
            for (std::size_t i = 0; i < st.size(); ++i) {
              std::cout << (i ? " + " : "") << st[i].first << " "
                        << st[i].second * 1e3 << "ms";
            }
          };
      std::cout << "profile: p50 " << rs.p50_seconds * 1e3 << "ms = ";
      print_stages(rs.p50_stages);
      std::cout << "\nprofile: p99 " << rs.p99_seconds * 1e3 << "ms = ";
      print_stages(rs.p99_stages);
      std::cout << "\n" << rep.table(5);
      if (m == sizes.back() && !profile_path.empty()) {
        std::ofstream out(profile_path);
        out << rep.to_json();
        std::cout << "profile: wrote " << profile_path << "\n";
      }
    }
    if (chrome && m == sizes.back() && !trace_path.empty()) {
      chrome->write_file(trace_path);
      std::cout << "trace: wrote " << trace_path << "\n";
    }
    if (tel && want_slo) {
      // Ranked attainment: the objective burning its error budget fastest
      // first, so the table reads top-down as "what to worry about".
      Table slo_table({"objective", "target", "observed", "attainment",
                       "budget burn", "alerts", "status"});
      bool violated = false;
      for (const telemetry::SloAttainment& a : tel->slo_attainment()) {
        slo_table.new_row()
            .add(a.name)
            .add(a.target)
            .add(a.observed)
            .add(a.attainment)
            .add(a.budget_consumed)
            .add(static_cast<std::size_t>(a.alerts_fired))
            .add(a.violated ? std::string("VIOLATED")
                            : std::string(a.firing ? "firing" : "ok"));
        violated = violated || a.violated;
      }
      slo_table.print(std::cout);
      if (violated) {
        std::cerr << "FAIL: SLO violated at m=" << m << " (spec " << slo_text
                  << ")\n";
        ok = false;
      } else {
        std::cout << "slo: all objectives attained at m=" << m << "\n";
      }
    }
    if (tel && m == sizes.back() && !telemetry_path.empty()) {
      tel->write_file(telemetry_path);
      std::cout << "telemetry: wrote " << telemetry_path << "\n";
    }
  }
  table.print(std::cout);
  bench::write_csv("svc_traffic", table);
  return ok ? 0 : 1;
}
