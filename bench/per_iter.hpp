// Per-iteration operation breakdown, reconstructed from the trace layer's
// B/E span stream (OBSERVABILITY.md). Shared by `tab1_breakdown --per-iter`
// and the machine-readable `bench_json` driver so both emit the same
// numbers in the same stable column order.
//
// All accumulation is in double (the trace timestamps are double simulated
// seconds; never narrow them — percentage columns computed from float
// accumulators drift visibly over a 60-iteration cap).
#pragma once

#include <array>
#include <string_view>
#include <vector>

#include "metrics/health.hpp"
#include "trace/trace.hpp"

namespace gs::bench {

/// The canonical operation column order for every per-iteration artifact
/// (text table, CSV, JSON): price, ftran, ratio, update, refactor — the
/// same order as the `simplex.op_seconds.*` metric names.
inline constexpr std::array<std::string_view, 5> kOpColumns =
    metrics::kSimplexOps;

/// One simplex iteration: modeled seconds per operation (indexed in
/// kOpColumns order) plus the iteration span's own bounds.
struct IterationRow {
  std::array<double, 5> op_seconds{};
  double begin_ts = 0.0, end_ts = 0.0;
  [[nodiscard]] double total() const { return end_ts - begin_ts; }
};

/// Column index of an op-span name, or kOpColumns.size() if not an op.
[[nodiscard]] inline std::size_t op_column(std::string_view name) {
  for (std::size_t k = 0; k < kOpColumns.size(); ++k) {
    if (kOpColumns[k] == name) return k;
  }
  return kOpColumns.size();
}

/// Rebuild per-iteration rows from the event stream: walk B/E spans,
/// attribute each "op" span's clock advance to its enclosing iteration.
[[nodiscard]] inline std::vector<IterationRow> per_iteration_rows(
    const std::vector<trace::TraceEvent>& events) {
  std::vector<IterationRow> rows;
  // Open-span stack of (name, begin-ts); "iteration" spans become rows.
  std::vector<std::pair<std::string, double>> open;
  for (const auto& e : events) {
    if (e.phase == trace::EventPhase::kBegin) {
      open.emplace_back(e.name, e.ts);
      if (e.name == "iteration") {
        rows.emplace_back();
        rows.back().begin_ts = e.ts;
      }
    } else if (e.phase == trace::EventPhase::kEnd && !open.empty()) {
      const auto [name, begin_ts] = open.back();
      open.pop_back();
      if (name == "iteration" && !rows.empty()) {
        rows.back().end_ts = e.ts;
      } else if (!rows.empty() && rows.back().end_ts == 0.0) {
        const std::size_t k = op_column(name);
        if (k < kOpColumns.size()) {
          rows.back().op_seconds[k] += e.ts - begin_ts;
        }
      }
    }
  }
  return rows;
}

/// Sum of each op column across all rows, in kOpColumns order.
[[nodiscard]] inline std::array<double, 5> op_totals(
    const std::vector<IterationRow>& rows) {
  std::array<double, 5> totals{};
  for (const IterationRow& r : rows) {
    for (std::size_t k = 0; k < totals.size(); ++k) {
      totals[k] += r.op_seconds[k];
    }
  }
  return totals;
}

}  // namespace gs::bench
