// CI gate: every shipped engine's kernel-launch stream must be clean under
// the static analyzer (src/vgpu/analyze) — zero dataflow hazards, zero
// uninitialized device reads, zero cost-declaration findings, and dead
// (redundant) transfer bytes at most 1% of captured PCIe traffic.
//
// One CaptureLog per run, attached via SolverOptions::analyzer:
//   * device-revised double, fused and unfused iteration paths
//   * device-revised float, fused and unfused
//   * sparse-revised (CSR) double
//   * batch-revised (K simultaneous lanes)
//   * a service-style batch round, constructed exactly as
//     service.cpp::run_job builds one (fresh Device + BatchRevisedSimplex
//     over the round's problems)
//
// `--tiny` shrinks the instances for ctest tier-1 coverage; the analysis
// itself is size-independent (the detectors walk the captured node list),
// so the tiny gate exercises the same code paths as the full one.
//
// Exit 0 when every run is gate-clean; exit 1 with the offending report
// summaries otherwise.

#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "lp/generators.hpp"
#include "simplex/batch_revised.hpp"
#include "simplex/solver.hpp"
#include "vgpu/analyze/analyze.hpp"

namespace {

struct RunOutcome {
  std::string name;
  gs::vgpu::analyze::Report report;
  std::size_t launches = 0;
};

/// Budget shared with ci.sh: dead transfers may waste at most 1% of the
/// captured PCIe traffic.
constexpr double kDeadTransferBudget = 0.01;

void print_row(const RunOutcome& run) {
  const auto& r = run.report;
  std::cout << (r.gate_clean(kDeadTransferBudget) ? "  ok   " : "  FAIL ")
            << run.name << ": " << run.launches << " launches, "
            << r.hazards.size() << " hazards, " << r.uninit_reads.size()
            << " uninit, " << r.cost_findings.size() << " cost, "
            << static_cast<long long>(r.redundant_h2d_bytes +
                                      r.redundant_d2h_bytes)
            << "/" << static_cast<long long>(r.h2d_bytes + r.d2h_bytes)
            << " dead transfer bytes, peak live "
            << static_cast<long long>(r.peak_live_bytes) << " B\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gs;
  const bool tiny = bench::has_flag(argc, argv, "--tiny");
  const std::size_t m = tiny ? 32 : 96;
  const std::size_t batch_k = tiny ? 4 : 16;

  bench::print_header(
      "analyze_gate: static dataflow gate over every engine's launch stream",
      "0 hazards / 0 uninit reads / 0 cost findings / <=1% dead transfer "
      "bytes on all engines");

  const vgpu::MachineModel model = vgpu::gtx280_model();
  const lp::LpProblem dense =
      lp::random_dense_lp({.rows = m, .cols = m, .seed = 1});
  const lp::LpProblem sparse = lp::random_sparse_lp(
      {.rows = m, .cols = 4 * m, .density = 0.05, .seed = 1});

  std::vector<RunOutcome> runs;

  // Device-revised double/float, fused and unfused iteration paths. The
  // unfused path issues more launches and more scalar traffic, so it is
  // the likelier place for a dead store or redundant upload to hide.
  const auto run_device = [&](const std::string& name, bool fused,
                              bool use_float) {
    vgpu::analyze::CaptureLog capture;
    simplex::SolverOptions opt;
    opt.fused_iteration = fused;
    opt.analyzer = &capture;
    if (use_float) {
      (void)bench::solve_device_float(dense, model, opt);
    } else {
      (void)bench::solve_device(dense, model, opt);
    }
    runs.push_back({name, vgpu::analyze::analyze(capture),
                    capture.launches_captured()});
  };
  run_device("device-revised<double> fused", true, false);
  run_device("device-revised<double> unfused", false, false);
  run_device("device-revised<float> fused", true, true);
  run_device("device-revised<float> unfused", false, true);

  // Sparse CSR engine (Ext. C) through the public solve() dispatch.
  {
    vgpu::analyze::CaptureLog capture;
    simplex::SolverOptions opt;
    opt.analyzer = &capture;
    (void)simplex::solve(sparse, simplex::Engine::kSparseRevised, opt, model);
    runs.push_back({"sparse-revised<double>", vgpu::analyze::analyze(capture),
                    capture.launches_captured()});
  }

  // Same engine under the product-form basis: the eta-file kernel
  // variants (sparse_ftran / sparse_btran / eta_apply / make_eta) must
  // be as hazard-, uninit- and cost-clean as the explicit-inverse
  // stream (DESIGN.md "Basis oracles").
  {
    vgpu::analyze::CaptureLog capture;
    simplex::SolverOptions opt;
    opt.analyzer = &capture;
    opt.basis = simplex::BasisScheme::kProductForm;
    (void)simplex::solve(sparse, simplex::Engine::kSparseRevised, opt, model);
    runs.push_back({"sparse-revised<double> product-form",
                    vgpu::analyze::analyze(capture),
                    capture.launches_captured()});
  }

  // Batch engine and a service-style round: both go through
  // BatchRevisedSimplex over a fresh Device, exactly as
  // service.cpp::run_job dispatches a batchable round.
  const auto run_batch = [&](const std::string& name, std::uint64_t seed0) {
    std::vector<lp::LpProblem> round;
    round.reserve(batch_k);
    for (std::size_t i = 0; i < batch_k; ++i) {
      round.push_back(
          lp::random_dense_lp({.rows = m, .cols = m, .seed = seed0 + i}));
    }
    vgpu::analyze::CaptureLog capture;
    simplex::SolverOptions opt;
    opt.analyzer = &capture;
    vgpu::Device dev(model);
    simplex::BatchRevisedSimplex<double> engine(dev, opt);
    (void)engine.solve(round);
    runs.push_back({name, vgpu::analyze::analyze(capture),
                    capture.launches_captured()});
  };
  run_batch("batch-revised<double> K=" + std::to_string(batch_k), 1);
  run_batch("service batch round K=" + std::to_string(batch_k), 101);

  bool all_clean = true;
  for (const auto& run : runs) {
    print_row(run);
    if (!run.report.gate_clean(kDeadTransferBudget)) {
      all_clean = false;
      std::cout << run.report.summary() << "\n";
    }
  }
  if (!all_clean) {
    std::cerr << "analyze_gate: FAIL — at least one engine stream is not "
                 "hazard/dead-transfer clean\n";
    return 1;
  }
  std::cout << "analyze_gate: all " << runs.size()
            << " engine streams gate-clean (dead-transfer budget "
            << kDeadTransferBudget * 100.0 << "%)\n";
  return 0;
}
