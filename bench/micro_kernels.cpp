// Google-benchmark microbenches of the substrate's functional execution.
//
// These measure real host wall time of the virtual-GPU kernels (not the
// modeled device time the figures use) — they guard the simulator's own
// performance so the table/figure sweeps stay tractable.
#include <benchmark/benchmark.h>

#include "lp/generators.hpp"
#include "simplex/device_revised.hpp"
#include "sparse/device_csr.hpp"
#include "support/rng.hpp"
#include "vblas/blas1.hpp"
#include "vblas/blas2.hpp"
#include "vgpu/primitives.hpp"

namespace {

using namespace gs;

void BM_ReduceSum(benchmark::State& state) {
  vgpu::Device dev(vgpu::gtx280_model());
  const auto n = static_cast<std::size_t>(state.range(0));
  vgpu::DeviceBuffer<double> buf(dev, n);
  vgpu::iota(buf, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vgpu::reduce_sum(buf));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_ReduceSum)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_Argmin(benchmark::State& state) {
  vgpu::Device dev(vgpu::gtx280_model());
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(1);
  std::vector<double> host(n);
  for (auto& v : host) v = rng.uniform(-1.0, 1.0);
  vgpu::DeviceBuffer<double> buf(dev, std::span<const double>(host));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vgpu::argmin(buf));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_Argmin)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_Gemv(benchmark::State& state) {
  vgpu::Device dev(vgpu::gtx280_model());
  const auto m = static_cast<std::size_t>(state.range(0));
  vblas::Matrix<double> host(m, m);
  Xoshiro256 rng(2);
  for (auto& v : host.flat()) v = rng.uniform(-1.0, 1.0);
  vblas::DeviceMatrix<double> a(dev, host);
  vgpu::DeviceBuffer<double> x(dev, m), y(dev, m);
  vgpu::fill(x, 1.0);
  for (auto _ : state) {
    vblas::gemv(1.0, a, x, 0.0, y);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(m * m));
}
BENCHMARK(BM_Gemv)->Arg(256)->Arg(512)->Arg(1024);

void BM_Spmv(benchmark::State& state) {
  vgpu::Device dev(vgpu::gtx280_model());
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto problem = lp::random_sparse_lp(
      {.rows = m, .cols = 4 * m, .density = 0.01, .seed = 3});
  const auto csr = lp::to_standard_form(problem).csr_a();
  sparse::DeviceCsr<double> a(dev, csr);
  vgpu::DeviceBuffer<double> x(dev, a.cols()), y(dev, a.rows());
  vgpu::fill(x, 1.0);
  for (auto _ : state) {
    sparse::spmv(1.0, a, x, 0.0, y);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(a.nnz()));
}
BENCHMARK(BM_Spmv)->Arg(256)->Arg(1024);

void BM_SimplexIteration(benchmark::State& state) {
  // Whole-solve wall time per iteration at a representative size: the
  // number that bounds how far the figure sweeps can reach.
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto problem = lp::random_dense_lp({.rows = m, .cols = m, .seed = 4});
  std::size_t iterations = 0;
  for (auto _ : state) {
    vgpu::Device dev(vgpu::gtx280_model());
    simplex::DeviceRevisedSimplex<double> solver(dev);
    const auto r = solver.solve(problem);
    iterations += r.stats.iterations;
  }
  state.SetItemsProcessed(static_cast<long>(iterations));
}
BENCHMARK(BM_SimplexIteration)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
