// Shared scaffolding for the table/figure regeneration harnesses.
//
// Every bench binary prints: (1) a header naming the experiment and the
// paper-expected shape, (2) the regenerated table via gs::Table, and (3)
// writes the same rows as CSV under bench_results/ so plots can be made
// from the artifacts. All workloads are seeded; reruns are bit-identical.
#pragma once

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "lp/generators.hpp"
#include "simplex/solver.hpp"
#include "support/table.hpp"

namespace gs::bench {

/// True when `flag` appears anywhere on the command line (benches take
/// mode flags in any order, e.g. `fig3_precision --tiny --diff`).
inline bool has_flag(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == flag) return true;
  }
  return false;
}

/// Standard sweep sizes for the dense figures. `--quick` on the command
/// line truncates the sweep for smoke runs; `--tiny` shrinks it further
/// for ctest tier-1 coverage.
inline std::vector<std::size_t> dense_sizes(int argc, char** argv) {
  if (has_flag(argc, argv, "--tiny")) return {16, 24, 32};
  if (has_flag(argc, argv, "--quick")) return {64, 128, 256};
  return {64, 128, 256, 384, 512, 768, 1024, 1536, 2048};
}

inline void print_header(std::string_view experiment,
                         std::string_view expectation) {
  std::cout << "==================================================\n"
            << experiment << "\n"
            << "paper-expected shape: " << expectation << "\n"
            << "==================================================\n";
}

/// Persist a table as bench_results/<name>.csv (best effort; printing to
/// stdout is the primary artifact).
inline void write_csv(std::string_view name, const Table& table) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) return;
  std::ofstream out("bench_results/" + std::string(name) + ".csv");
  if (out.good()) out << table.to_csv();
  std::cout << "[csv] bench_results/" << name << ".csv\n";
}

/// Solve with the device engine on a given machine model.
inline simplex::SolveResult solve_device(const lp::LpProblem& problem,
                                         const vgpu::MachineModel& model,
                                         simplex::SolverOptions opt = {}) {
  vgpu::Device dev(model);
  simplex::DeviceRevisedSimplex<double> solver(dev, opt);
  return solver.solve(problem);
}

inline simplex::SolveResult solve_device_float(
    const lp::LpProblem& problem, const vgpu::MachineModel& model,
    simplex::SolverOptions opt = {}) {
  vgpu::Device dev(model);
  simplex::DeviceRevisedSimplex<float> solver(dev, opt);
  return solver.solve(problem);
}

}  // namespace gs::bench
