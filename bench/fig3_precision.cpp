// Fig. 3 — single vs. double precision on the device.
//
// The GT200 generation executes single precision at ~10x its double rate,
// so the paper's precision study trades accuracy for speed. Expected
// shape: float is faster wherever compute matters, with relative objective
// error growing with problem size but staying small (the iteration path is
// usually identical on well-conditioned instances).
//
// `--diff` additionally records both runs' pivot decisions and aligns them
// (OBSERVABILITY.md, "Recorder"), turning "objectives differ by X" into
// "runs diverge at iteration N on pivot (r,c)" per size.
#include <cmath>

#include "bench/common.hpp"
#include "record/record.hpp"

int main(int argc, char** argv) {
  using namespace gs;
  const bool diff_on = bench::has_flag(argc, argv, "--diff");
  bench::print_header(
      "Fig.3: single vs double precision (device revised simplex)",
      "float <= double modeled time; relative objective error < 1e-3, "
      "growing with size");

  Table table({"m=n", "double [ms]", "float [ms]", "float/double time",
               "iters (d)", "iters (f)", "rel obj error"});
  for (const std::size_t size : bench::dense_sizes(argc, argv)) {
    const auto problem =
        lp::random_dense_lp({.rows = size, .cols = size, .seed = 2});
    record::Recorder rec_d, rec_f;
    simplex::SolverOptions opt_d, opt_f;
    if (diff_on) {
      rec_d.set_seed(2);
      rec_f.set_seed(2);
      opt_d.recorder = &rec_d;
      opt_f.recorder = &rec_f;
    }
    const auto rd = bench::solve_device(problem, vgpu::gtx280_model(), opt_d);
    const auto rf =
        bench::solve_device_float(problem, vgpu::gtx280_model(), opt_f);
    if (!rd.optimal() || !rf.optimal()) {
      std::cerr << "non-optimal solve at m=" << size << "\n";
      return 1;
    }
    const double rel_err = std::abs(rf.objective - rd.objective) /
                           (1.0 + std::abs(rd.objective));
    table.new_row()
        .add(size)
        .add(rd.stats.sim_seconds * 1e3)
        .add(rf.stats.sim_seconds * 1e3)
        .add(rf.stats.sim_seconds / rd.stats.sim_seconds)
        .add(rd.stats.iterations)
        .add(rf.stats.iterations)
        .add(rel_err);
    if (diff_on) {
      std::cout << "[diff] m=n=" << size << ": "
                << record::diff(rec_d.recording(), rec_f.recording())
                       .describe()
                << "\n";
    }
  }
  table.print(std::cout);
  bench::write_csv("fig3_precision", table);
  return 0;
}
