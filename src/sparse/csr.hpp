// Compressed sparse row (CSR) matrix: the compute format.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "support/error.hpp"
#include "vblas/containers.hpp"

namespace gs::sparse {

template <typename T>
class CsrMatrix {
 public:
  CsrMatrix() : row_offsets_(1, 0) {}

  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<std::uint32_t> row_offsets,
            std::vector<std::uint32_t> col_indices, std::vector<T> values)
      : rows_(rows),
        cols_(cols),
        row_offsets_(std::move(row_offsets)),
        col_indices_(std::move(col_indices)),
        values_(std::move(values)) {
    GS_CHECK_MSG(row_offsets_.size() == rows_ + 1, "bad row_offsets length");
    GS_CHECK_MSG(col_indices_.size() == values_.size(), "index/value mismatch");
    GS_CHECK_MSG(row_offsets_.back() == values_.size(), "bad final offset");
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }
  [[nodiscard]] double density() const noexcept {
    const double cells = static_cast<double>(rows_) * static_cast<double>(cols_);
    return cells > 0 ? static_cast<double>(nnz()) / cells : 0.0;
  }

  [[nodiscard]] const std::vector<std::uint32_t>& row_offsets() const noexcept {
    return row_offsets_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& col_indices() const noexcept {
    return col_indices_;
  }
  [[nodiscard]] const std::vector<T>& values() const noexcept { return values_; }

  /// Element lookup: O(row nnz) scan of the row.
  [[nodiscard]] T at(std::size_t row, std::size_t col) const {
    GS_CHECK_MSG(row < rows_ && col < cols_, "CSR at() out of range");
    for (std::uint32_t k = row_offsets_[row]; k < row_offsets_[row + 1]; ++k) {
      if (col_indices_[k] == col) return values_[k];
    }
    return T{0};
  }

  [[nodiscard]] std::size_t row_nnz(std::size_t row) const {
    GS_CHECK(row < rows_);
    return row_offsets_[row + 1] - row_offsets_[row];
  }

  /// Build from a dense host matrix, dropping entries with |v| <= drop_tol.
  [[nodiscard]] static CsrMatrix from_dense(const vblas::Matrix<T>& dense,
                                            T drop_tol = T{0}) {
    CsrMatrix out;
    out.rows_ = dense.rows();
    out.cols_ = dense.cols();
    out.row_offsets_.assign(1, 0);
    for (std::size_t r = 0; r < dense.rows(); ++r) {
      for (std::size_t c = 0; c < dense.cols(); ++c) {
        const T v = dense(r, c);
        if (std::abs(v) > drop_tol) {
          out.col_indices_.push_back(static_cast<std::uint32_t>(c));
          out.values_.push_back(v);
        }
      }
      out.row_offsets_.push_back(
          static_cast<std::uint32_t>(out.values_.size()));
    }
    return out;
  }

  [[nodiscard]] vblas::Matrix<T> to_dense() const {
    vblas::Matrix<T> out(rows_, cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::uint32_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
        out(r, col_indices_[k]) = values_[k];
      }
    }
    return out;
  }

  /// Transposed copy (counting sort over columns; O(nnz + cols)).
  [[nodiscard]] CsrMatrix transposed() const {
    CsrMatrix out;
    out.rows_ = cols_;
    out.cols_ = rows_;
    out.row_offsets_.assign(cols_ + 1, 0);
    for (std::uint32_t c : col_indices_) ++out.row_offsets_[c + 1];
    for (std::size_t i = 1; i <= cols_; ++i) {
      out.row_offsets_[i] += out.row_offsets_[i - 1];
    }
    out.col_indices_.resize(nnz());
    out.values_.resize(nnz());
    std::vector<std::uint32_t> cursor(out.row_offsets_.begin(),
                                      out.row_offsets_.end() - 1);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::uint32_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
        const std::uint32_t c = col_indices_[k];
        const std::uint32_t pos = cursor[c]++;
        out.col_indices_[pos] = static_cast<std::uint32_t>(r);
        out.values_[pos] = values_[k];
      }
    }
    return out;
  }

  /// Copy with entries |v| <= tol removed (the inverse-basis filtering step
  /// that keeps iteration cost proportional to true fill).
  [[nodiscard]] CsrMatrix filtered(T tol) const {
    CsrMatrix out;
    out.rows_ = rows_;
    out.cols_ = cols_;
    out.row_offsets_.assign(1, 0);
    out.col_indices_.reserve(nnz());
    out.values_.reserve(nnz());
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::uint32_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
        if (std::abs(values_[k]) > tol) {
          out.col_indices_.push_back(col_indices_[k]);
          out.values_.push_back(values_[k]);
        }
      }
      out.row_offsets_.push_back(
          static_cast<std::uint32_t>(out.values_.size()));
    }
    return out;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint32_t> row_offsets_;
  std::vector<std::uint32_t> col_indices_;
  std::vector<T> values_;
};

}  // namespace gs::sparse
