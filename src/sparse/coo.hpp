// Coordinate-list (COO) sparse matrix: the construction format.
//
// Triplets may be appended in any order; canonicalize() sorts by (row, col)
// and merges duplicates, after which the matrix is ready for CSR conversion.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "support/error.hpp"

namespace gs::sparse {

template <typename T>
class CooMatrix {
 public:
  CooMatrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }

  /// Append one entry. Zero values are kept until canonicalize().
  void add(std::size_t row, std::size_t col, T value) {
    GS_CHECK_MSG(row < rows_ && col < cols_, "COO entry out of range");
    row_indices_.push_back(static_cast<std::uint32_t>(row));
    col_indices_.push_back(static_cast<std::uint32_t>(col));
    values_.push_back(value);
  }

  [[nodiscard]] const std::vector<std::uint32_t>& row_indices() const noexcept {
    return row_indices_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& col_indices() const noexcept {
    return col_indices_;
  }
  [[nodiscard]] const std::vector<T>& values() const noexcept { return values_; }

  /// Sort by (row, col), merge duplicate coordinates by summation and drop
  /// exact zeros. Idempotent.
  void canonicalize() {
    std::vector<std::size_t> order(values_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (row_indices_[a] != row_indices_[b])
        return row_indices_[a] < row_indices_[b];
      return col_indices_[a] < col_indices_[b];
    });
    std::vector<std::uint32_t> r, c;
    std::vector<T> v;
    r.reserve(values_.size());
    c.reserve(values_.size());
    v.reserve(values_.size());
    for (std::size_t k : order) {
      if (!v.empty() && r.back() == row_indices_[k] &&
          c.back() == col_indices_[k]) {
        v.back() += values_[k];
      } else {
        r.push_back(row_indices_[k]);
        c.push_back(col_indices_[k]);
        v.push_back(values_[k]);
      }
    }
    // Drop zeros created by cancellation (or inserted as zeros).
    std::size_t w = 0;
    for (std::size_t k = 0; k < v.size(); ++k) {
      if (v[k] != T{0}) {
        r[w] = r[k];
        c[w] = c[k];
        v[w] = v[k];
        ++w;
      }
    }
    r.resize(w);
    c.resize(w);
    v.resize(w);
    row_indices_ = std::move(r);
    col_indices_ = std::move(c);
    values_ = std::move(v);
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::uint32_t> row_indices_;
  std::vector<std::uint32_t> col_indices_;
  std::vector<T> values_;
};

}  // namespace gs::sparse
