// COO <-> CSR conversions.
#pragma once

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace gs::sparse {

/// Convert a COO matrix to CSR. The COO matrix is canonicalized first
/// (sorted, duplicates merged, zeros dropped).
template <typename T>
[[nodiscard]] CsrMatrix<T> to_csr(CooMatrix<T> coo) {
  coo.canonicalize();
  std::vector<std::uint32_t> offsets(coo.rows() + 1, 0);
  for (std::uint32_t r : coo.row_indices()) ++offsets[r + 1];
  for (std::size_t i = 1; i <= coo.rows(); ++i) offsets[i] += offsets[i - 1];
  return CsrMatrix<T>(coo.rows(), coo.cols(), std::move(offsets),
                      coo.col_indices(), coo.values());
}

/// Convert CSR back to (canonical) COO.
template <typename T>
[[nodiscard]] CooMatrix<T> to_coo(const CsrMatrix<T>& csr) {
  CooMatrix<T> out(csr.rows(), csr.cols());
  for (std::size_t r = 0; r < csr.rows(); ++r) {
    for (std::uint32_t k = csr.row_offsets()[r]; k < csr.row_offsets()[r + 1];
         ++k) {
      out.add(r, csr.col_indices()[k], csr.values()[k]);
    }
  }
  return out;
}

}  // namespace gs::sparse
