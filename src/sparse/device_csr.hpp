// Device-resident CSR matrix and sparse kernels (SpMV and friends).
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"

namespace gs::sparse {

/// CSR matrix whose arrays live in device memory. Construction uploads all
/// three arrays (charged as H2D copies, as cudaMemcpy would be).
template <typename T>
class DeviceCsr {
 public:
  DeviceCsr(vgpu::Device& device, const CsrMatrix<T>& host)
      : rows_(host.rows()),
        cols_(host.cols()),
        row_offsets_(device, std::span<const std::uint32_t>(host.row_offsets())),
        col_indices_(device, std::span<const std::uint32_t>(host.col_indices())),
        values_(device, std::span<const T>(host.values())) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }
  [[nodiscard]] vgpu::Device& device() const noexcept {
    return values_.device();
  }

  [[nodiscard]] const vgpu::DeviceBuffer<std::uint32_t>& row_offsets() const noexcept {
    return row_offsets_;
  }
  [[nodiscard]] const vgpu::DeviceBuffer<std::uint32_t>& col_indices() const noexcept {
    return col_indices_;
  }
  [[nodiscard]] const vgpu::DeviceBuffer<T>& values() const noexcept {
    return values_;
  }

  [[nodiscard]] CsrMatrix<T> to_host() const {
    return CsrMatrix<T>(rows_, cols_, row_offsets_.to_host(),
                        col_indices_.to_host(), values_.to_host());
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  vgpu::DeviceBuffer<std::uint32_t> row_offsets_;
  vgpu::DeviceBuffer<std::uint32_t> col_indices_;
  vgpu::DeviceBuffer<T> values_;
};

/// y <- alpha * A x + beta * y for CSR A (row-parallel scalar kernel).
template <typename T>
void spmv(T alpha, const DeviceCsr<T>& a, const vgpu::DeviceBuffer<T>& x,
          T beta, vgpu::DeviceBuffer<T>& y) {
  GS_CHECK_MSG(a.cols() == x.size() && a.rows() == y.size(),
               "spmv shape mismatch");
  auto offs = a.row_offsets().device_span();
  auto cols = a.col_indices().device_span();
  auto vals = a.values().device_span();
  auto xs = x.device_span();
  auto ys = y.device_span();
  // Per nonzero: one multiply-add, value + column index + gathered x element.
  const double fl = 2.0 * static_cast<double>(a.nnz());
  const double by = static_cast<double>(
      a.nnz() * (sizeof(T) + sizeof(std::uint32_t) + sizeof(T)) +
      a.rows() * (2 * sizeof(T) + sizeof(std::uint32_t)));
  a.device().launch_blocks(
      "spmv", a.rows(), vgpu::Device::kBlockSize,
      vgpu::KernelCost{fl, by, sizeof(T)},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          T acc{0};
          for (std::uint32_t k = offs[r]; k < offs[r + 1]; ++k) {
            acc += vals[k] * xs[cols[k]];
          }
          ys[r] = alpha * acc + beta * ys[r];
        }
      });
}

/// Gather one CSR row of A into a dense device vector (zero-filled first).
/// With A stored transposed this is the "read one column of the constraint
/// matrix" step of revised simplex.
template <typename T>
void scatter_row_to_dense(const DeviceCsr<T>& a, std::size_t row,
                          vgpu::DeviceBuffer<T>& out) {
  GS_CHECK_MSG(row < a.rows() && out.size() == a.cols(),
               "scatter_row_to_dense shape mismatch");
  auto offs = a.row_offsets().device_span();
  auto cols = a.col_indices().device_span();
  auto vals = a.values().device_span();
  auto os = out.device_span();
  // Zero-fill then scatter the row's nonzeros.
  a.device().launch_blocks(
      "row_zero_fill", out.size(), vgpu::Device::kBlockSize,
      vgpu::KernelCost{0.0, static_cast<double>(out.size() * sizeof(T)),
                       sizeof(T)},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) os[i] = T{0};
      });
  const std::size_t row_nnz = offs[row + 1] - offs[row];
  a.device().launch_blocks(
      "row_scatter", row_nnz, vgpu::Device::kBlockSize,
      vgpu::KernelCost{0.0,
                       static_cast<double>(
                           row_nnz * (2 * sizeof(T) + sizeof(std::uint32_t))),
                       sizeof(T)},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t k = begin; k < end; ++k) {
          const std::uint32_t idx = offs[row] + static_cast<std::uint32_t>(k);
          os[cols[idx]] = vals[idx];
        }
      });
}

namespace ref {

/// Serial host SpMV oracle for tests.
template <typename T>
[[nodiscard]] std::vector<T> spmv(const CsrMatrix<T>& a,
                                  std::span<const T> x) {
  GS_CHECK(a.cols() == x.size());
  std::vector<T> y(a.rows(), T{0});
  for (std::size_t r = 0; r < a.rows(); ++r) {
    T acc{0};
    for (std::uint32_t k = a.row_offsets()[r]; k < a.row_offsets()[r + 1];
         ++k) {
      acc += a.values()[k] * x[a.col_indices()[k]];
    }
    y[r] = acc;
  }
  return y;
}

}  // namespace ref

}  // namespace gs::sparse
