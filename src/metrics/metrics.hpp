// Metrics core: a registry of named counters, gauges and fixed-bucket
// histograms, plus structured numerical-health warnings.
//
// This is the third observability pillar next to the trace layer
// (OBSERVABILITY.md) and the kernel-safety checker (CHECKING.md): traces
// answer *where the modeled time went per event*, the checker answers
// *whether the kernels were semantically safe*, and metrics answer *what
// the aggregate counts and distributions were* — cheap enough to leave on
// for a whole bench sweep and exportable as machine-readable JSON
// (`MetricsSnapshot::to_json`), which is what `lp_cli --metrics` and the
// `bench_json` regression baseline consume.
//
// Wiring follows the TraceSink/Checker pattern exactly: one borrowed
// pointer in `SolverOptions::metrics`, off by default, and the disabled
// path is a single pointer test per emission site. Attaching a registry
// must not perturb the model — no DeviceStats field, iteration count or
// result bit changes (tests/test_metrics.cpp asserts bit-identity).
//
// Like DeviceStats, the registry is written from the single thread that
// issues kernel launches (the CUDA-stream convention), so it needs no
// synchronization. References returned by counter()/gauge()/histogram()
// are stable for the registry's lifetime (node-based storage), so hot
// paths resolve a name once and keep the pointer.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace gs::metrics {

/// Monotonically increasing tally. `double`-valued so one type covers
/// event counts, byte totals and accumulated modeled seconds.
class Counter {
 public:
  void inc(double delta = 1.0) noexcept { value_ += delta; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Last-write-wins sample that also remembers its running min/max.
class Gauge {
 public:
  void set(double v) noexcept {
    value_ = v;
    if (!seen_ || v < min_) min_ = v;
    if (!seen_ || v > max_) max_ = v;
    seen_ = true;
  }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] bool has_value() const noexcept { return seen_; }

 private:
  double value_ = 0.0, min_ = 0.0, max_ = 0.0;
  bool seen_ = false;
};

/// Fixed-bucket histogram. Bucket k counts observations with
/// `v <= upper_bounds[k]` (first match); one implicit overflow bucket
/// catches the rest, so counts().size() == bounds().size() + 1. Bounds are
/// fixed at creation — no rebucketing, no allocation per observe().
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds)
      : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {}

  void observe(double v) noexcept {
    std::size_t k = 0;
    while (k < bounds_.size() && v > bounds_[k]) ++k;
    ++counts_[k];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
  }

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  ///< per bucket + trailing overflow
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

/// A structured numerical-health finding raised by the HealthMonitor
/// (health.hpp) when a sampled signal crosses its configured threshold.
struct HealthWarning {
  std::string kind;     ///< "residual-drift", "tiny-pivot", "stall", ...
  std::string message;  ///< human-readable one-liner
  double value = 0.0;       ///< the offending sample
  double threshold = 0.0;   ///< the configured limit it crossed
  std::size_t iteration = 0;  ///< simplex iteration of the sample
};

/// Default bucket ladders, shared so every component's histograms use the
/// same schema: modeled seconds (1e-7 s … ~100 s, x2 per bucket), byte
/// sizes (4 B … ~1 GiB, x4), and magnitudes (1e-12 … 1e12, x10 — pivot
/// elements, residuals).
[[nodiscard]] std::span<const double> seconds_buckets() noexcept;
[[nodiscard]] std::span<const double> bytes_buckets() noexcept;
[[nodiscard]] std::span<const double> magnitude_buckets() noexcept;

struct MetricsSnapshot;

/// Owner of all metrics for one observed scope (typically one solve or one
/// bench sweep; the caller decides and may aggregate several solves into
/// one registry). Metric families are created lazily on first use;
/// returned references stay valid until the registry is destroyed.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      it = counters_.emplace(std::string(name), Counter{}).first;
    }
    return it->second;
  }

  [[nodiscard]] Gauge& gauge(std::string_view name) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      it = gauges_.emplace(std::string(name), Gauge{}).first;
    }
    return it->second;
  }

  /// `upper_bounds` is consulted only when `name` is first created; later
  /// calls return the existing histogram unchanged.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::span<const double> upper_bounds) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_
               .emplace(std::string(name),
                        Histogram(std::vector<double>(upper_bounds.begin(),
                                                      upper_bounds.end())))
               .first;
    }
    return it->second;
  }

  /// Record a health warning: bumps `health.warnings` and the per-kind
  /// counter `health.warnings.<kind>`, and stores the structured record
  /// (capped at kMaxStoredWarnings; the counters keep exact totals).
  void warn(HealthWarning warning) {
    counter("health.warnings").inc();
    counter(std::string("health.warnings.") + warning.kind).inc();
    ++warnings_total_;
    if (warnings_.size() < kMaxStoredWarnings) {
      warnings_.push_back(std::move(warning));
    }
  }

  [[nodiscard]] const std::vector<HealthWarning>& warnings() const noexcept {
    return warnings_;
  }
  /// Exact number of warn() calls, even past the storage cap.
  [[nodiscard]] std::size_t warnings_total() const noexcept {
    return warnings_total_;
  }

  [[nodiscard]] const auto& counters() const noexcept { return counters_; }
  [[nodiscard]] const auto& gauges() const noexcept { return gauges_; }
  [[nodiscard]] const auto& histograms() const noexcept { return histograms_; }

  /// Deep-copy the current state for export (the registry keeps counting).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Drop every metric and warning (e.g. between sweep points).
  void clear() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    warnings_.clear();
    warnings_total_ = 0;
  }

  static constexpr std::size_t kMaxStoredWarnings = 256;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::vector<HealthWarning> warnings_;
  std::size_t warnings_total_ = 0;
};

/// Point-in-time copy of a registry, decoupled from further updates. The
/// JSON schema is stable: top-level keys `schema`, `counters`, `gauges`,
/// `histograms`, `warnings_total`, `warnings`, with metric names sorted
/// lexicographically (map order) — diffs between snapshots are therefore
/// line-stable. Documented in OBSERVABILITY.md ("Metrics JSON schema").
struct MetricsSnapshot {
  static constexpr std::string_view kSchema = "gs-metrics-v1";

  struct GaugeData {
    double value = 0.0, min = 0.0, max = 0.0;
  };
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0, min = 0.0, max = 0.0;
  };

  std::map<std::string, double> counters;
  std::map<std::string, GaugeData> gauges;
  std::map<std::string, HistogramData> histograms;
  std::vector<HealthWarning> warnings;
  std::size_t warnings_total = 0;

  [[nodiscard]] std::string to_json() const;
  void write_file(const std::string& path) const;

  /// Delta of this snapshot relative to an earlier `base` of the same
  /// registry: counters and histogram bucket counts / count / sum are
  /// subtracted (names missing from `base` are treated as zero there);
  /// gauges are last-write-wins, so the current value/min/max are copied
  /// through unchanged; `warnings` keeps the suffix recorded after `base`
  /// and `warnings_total` the difference. This is what per-interval rates
  /// are made of — the telemetry sampler (src/telemetry) and the
  /// bench_json sweep both derive per-point activity from one
  /// long-lived registry this way.
  [[nodiscard]] MetricsSnapshot diff(const MetricsSnapshot& base) const;
};

/// Minimal JSON emission helpers shared by the snapshot writer and the
/// bench_json driver (same %.17g round-trippable doubles as the Chrome
/// trace sink; JSON has no NaN/Inf, so non-finite values are emitted as
/// null).
void json_write_number(std::string& out, double v);
void json_write_string(std::string& out, std::string_view s);

}  // namespace gs::metrics
