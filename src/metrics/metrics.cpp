#include "metrics/metrics.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "support/error.hpp"

namespace gs::metrics {

namespace {

/// Build a geometric ladder at static-init time: n bounds starting at lo,
/// multiplying by factor.
template <std::size_t N>
constexpr std::array<double, N> geometric(double lo, double factor) {
  std::array<double, N> out{};
  double v = lo;
  for (std::size_t i = 0; i < N; ++i) {
    out[i] = v;
    v *= factor;
  }
  return out;
}

// 1e-7 s .. ~13 s, x2: covers one kernel launch through a full solve.
constexpr auto kSecondsBuckets = geometric<28>(1e-7, 2.0);
// 4 B .. ~1 GiB, x4: scalar readbacks through whole-matrix uploads.
constexpr auto kBytesBuckets = geometric<15>(4.0, 4.0);
// 1e-12 .. 1e12, x10: pivot magnitudes, residuals, growth factors.
constexpr auto kMagnitudeBuckets = geometric<25>(1e-12, 10.0);

}  // namespace

std::span<const double> seconds_buckets() noexcept { return kSecondsBuckets; }
std::span<const double> bytes_buckets() noexcept { return kBytesBuckets; }
std::span<const double> magnitude_buckets() noexcept {
  return kMagnitudeBuckets;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) {
    if (!g.has_value()) continue;
    snap.gauges[name] = {g.value(), g.min(), g.max()};
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = {h.bounds(), h.counts(), h.count(),
                             h.sum(),    h.min(),    h.max()};
  }
  snap.warnings = warnings_;
  snap.warnings_total = warnings_total_;
  return snap;
}

MetricsSnapshot MetricsSnapshot::diff(const MetricsSnapshot& base) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    const auto it = base.counters.find(name);
    out.counters[name] = value - (it == base.counters.end() ? 0.0 : it->second);
  }
  // Gauges are last-write-wins samples; a subtraction would be meaningless,
  // so the delta carries the current state through.
  out.gauges = gauges;
  for (const auto& [name, h] : histograms) {
    HistogramData d;
    d.bounds = h.bounds;
    d.counts = h.counts;
    d.count = h.count;
    d.sum = h.sum;
    d.min = h.min;
    d.max = h.max;
    const auto it = base.histograms.find(name);
    if (it != base.histograms.end() &&
        it->second.counts.size() == h.counts.size()) {
      for (std::size_t k = 0; k < d.counts.size(); ++k) {
        d.counts[k] -= it->second.counts[k];
      }
      d.count -= it->second.count;
      d.sum -= it->second.sum;
    }
    out.histograms[name] = std::move(d);
  }
  if (warnings.size() > base.warnings.size()) {
    out.warnings.assign(warnings.begin() +
                            static_cast<std::ptrdiff_t>(base.warnings.size()),
                        warnings.end());
  }
  out.warnings_total = warnings_total >= base.warnings_total
                           ? warnings_total - base.warnings_total
                           : 0;
  return out;
}

void json_write_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void json_write_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

namespace {

void write_number_array(std::string& out, std::span<const double> values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    json_write_number(out, values[i]);
  }
  out += ']';
}

void write_count_array(std::string& out,
                       std::span<const std::uint64_t> values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(values[i]);
  }
  out += ']';
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out;
  out += "{\n  \"schema\": ";
  json_write_string(out, kSchema);

  out += ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_write_string(out, name);
    out += ": ";
    json_write_number(out, value);
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_write_string(out, name);
    out += ": {\"value\": ";
    json_write_number(out, g.value);
    out += ", \"min\": ";
    json_write_number(out, g.min);
    out += ", \"max\": ";
    json_write_number(out, g.max);
    out += "}";
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_write_string(out, name);
    out += ": {\"count\": " + std::to_string(h.count);
    out += ", \"sum\": ";
    json_write_number(out, h.sum);
    out += ", \"min\": ";
    json_write_number(out, h.min);
    out += ", \"max\": ";
    json_write_number(out, h.max);
    out += ", \"bounds\": ";
    write_number_array(out, h.bounds);
    out += ", \"counts\": ";
    write_count_array(out, h.counts);
    out += "}";
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"warnings_total\": " + std::to_string(warnings_total);
  out += ",\n  \"warnings\": [";
  for (std::size_t i = 0; i < warnings.size(); ++i) {
    const HealthWarning& w = warnings[i];
    out += i == 0 ? "\n    " : ",\n    ";
    out += "{\"kind\": ";
    json_write_string(out, w.kind);
    out += ", \"iteration\": " + std::to_string(w.iteration);
    out += ", \"value\": ";
    json_write_number(out, w.value);
    out += ", \"threshold\": ";
    json_write_number(out, w.threshold);
    out += ", \"message\": ";
    json_write_string(out, w.message);
    out += "}";
  }
  out += warnings.empty() ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

void MetricsSnapshot::write_file(const std::string& path) const {
  std::ofstream out(path);
  GS_CHECK_MSG(out.good(), "cannot open metrics file for writing: " + path);
  out << to_json();
  out.flush();
  GS_CHECK_MSG(out.good(), "failed writing metrics file: " + path);
}

}  // namespace gs::metrics
