// Solver-facing metrics helpers: the per-operation histogram bundle shared
// by every simplex engine, and the HealthMonitor that samples numerical-
// stability signals each iteration and raises structured warnings when a
// configured threshold is crossed.
//
// Both follow the registry's cost discipline: when no registry is attached
// every method is a single-branch no-op, and all metric names are resolved
// once at attach time (stable references, see metrics.hpp), so the enabled
// hot path never does a string lookup.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

#include "metrics/metrics.hpp"

namespace gs::metrics {

/// The five canonical revised-simplex operations, in the stable order used
/// by metric names, the trace op spans, and the bench JSON column order
/// (`bench/per_iter.hpp` reuses this array — keep it in sync with the
/// `op` trace category table in OBSERVABILITY.md).
inline constexpr std::array<std::string_view, 5> kSimplexOps = {
    "price", "ftran", "ratio", "update", "refactor"};

enum class SimplexOp : std::size_t {
  kPrice = 0,
  kFtran = 1,
  kRatio = 2,
  kUpdate = 3,
  kRefactor = 4,
};

/// Per-operation modeled-time histograms plus the iteration tally, shared
/// by all engines under the same names: `simplex.iterations` (counter) and
/// `simplex.op_seconds.<op>` (seconds-bucket histograms). Detached (the
/// default) every call is one branch.
struct SimplexOpMetrics {
  void attach(MetricsRegistry* registry) {
    if (registry == nullptr) return;
    iterations = &registry->counter("simplex.iterations");
    for (std::size_t k = 0; k < kSimplexOps.size(); ++k) {
      op_seconds[k] = &registry->histogram(
          std::string("simplex.op_seconds.") + std::string(kSimplexOps[k]),
          seconds_buckets());
    }
  }

  [[nodiscard]] bool enabled() const noexcept { return iterations != nullptr; }

  void count_iteration() noexcept {
    if (iterations != nullptr) iterations->inc();
  }

  void observe(SimplexOp op, double seconds) noexcept {
    if (iterations != nullptr) {
      op_seconds[static_cast<std::size_t>(op)]->observe(seconds);
    }
  }

  Counter* iterations = nullptr;
  std::array<Histogram*, 5> op_seconds{};
};

/// Thresholds for the HealthMonitor. Defaults are deliberately permissive —
/// they flag genuinely suspicious behaviour on double-precision solves
/// without firing on healthy degenerate steps; tighten them per run via
/// `SolverOptions::health`.
struct HealthConfig {
  /// Warn when the strided `‖B·B⁻¹ − I‖∞` probe estimate exceeds this.
  double residual_tol = 1e-6;
  /// Warn when a pivot element's magnitude falls below this.
  double pivot_tiny_tol = 1e-7;
  /// Warn when max |B⁻¹| (sampled) exceeds this (inverse blow-up).
  double growth_limit = 1e8;
  /// Steps with `theta <= degen_theta_tol` count as degenerate; this many
  /// *consecutive* degenerate steps raise one "stall" warning per streak.
  std::size_t stall_window = 25;
  double degen_theta_tol = 1e-9;
  /// Sample the residual/growth estimate every `residual_stride`-th
  /// iteration (1 = every iteration), probing `residual_probes` entries.
  std::size_t residual_stride = 16;
  std::size_t residual_probes = 8;
};

/// Samples numerical-stability signals from a simplex solve and records
/// them into the registry: a pivot-magnitude histogram, degeneracy /
/// stall-streak and Bland's-rule-activation counters, the basis-inverse
/// residual and growth gauges — raising a structured HealthWarning (kinds
/// "tiny-pivot", "stall", "residual-drift", "growth") whenever a
/// configured threshold is crossed. The engines feed it; it never touches
/// solver state, so attaching it cannot perturb the solve.
///
/// Residual and growth values are *computed by the engine* (each engine
/// knows its own basis representation — see `sample_health` in
/// device_revised.hpp / host_revised.cpp) and only judged here; the
/// monitor decides *when* via `want_residual_sample`.
class HealthMonitor {
 public:
  HealthMonitor(MetricsRegistry* registry, const HealthConfig& config)
      : registry_(registry), cfg_(config) {
    if (registry_ == nullptr) return;
    pivot_magnitude_ =
        &registry_->histogram("health.pivot_magnitude", magnitude_buckets());
    degenerate_steps_ = &registry_->counter("health.degenerate_steps");
    bland_activations_ = &registry_->counter("health.bland_activations");
    residual_inf_ = &registry_->gauge("health.residual_inf");
    binv_growth_ = &registry_->gauge("health.binv_growth");
    eta_count_ = &registry_->gauge("health.eta_count");
  }

  [[nodiscard]] bool enabled() const noexcept { return registry_ != nullptr; }
  [[nodiscard]] const HealthConfig& config() const noexcept { return cfg_; }

  /// One call per pivoting iteration, from the engine's update step.
  /// `alpha` is the pivot element, `theta` the primal step length, `bland`
  /// whether anti-cycling (Bland) selection was active this iteration.
  void record_pivot(double alpha, double theta, bool bland,
                    std::size_t iteration) {
    if (registry_ == nullptr) return;
    const double mag = alpha < 0 ? -alpha : alpha;
    pivot_magnitude_->observe(mag);
    if (mag < cfg_.pivot_tiny_tol) {
      registry_->warn({"tiny-pivot",
                       "pivot magnitude below pivot_tiny_tol; basis update "
                       "may amplify rounding error",
                       mag, cfg_.pivot_tiny_tol, iteration});
    }
    if (bland && !bland_active_) bland_activations_->inc();
    bland_active_ = bland;
    if (theta <= cfg_.degen_theta_tol) {
      degenerate_steps_->inc();
      ++degen_streak_;
      if (degen_streak_ == cfg_.stall_window) {
        registry_->warn({"stall",
                         "stall_window consecutive degenerate steps (theta "
                         "~ 0); solver may be cycling",
                         static_cast<double>(degen_streak_),
                         static_cast<double>(cfg_.stall_window), iteration});
      }
    } else {
      degen_streak_ = 0;
    }
  }

  /// True when the engine should compute the (strided) residual/growth
  /// sample for this iteration. False whenever detached.
  [[nodiscard]] bool want_residual_sample(std::size_t iteration) const {
    if (registry_ == nullptr) return false;
    const std::size_t stride = cfg_.residual_stride == 0 ? 1
                                                         : cfg_.residual_stride;
    return iteration % stride == 0;
  }

  /// Record an engine-computed `‖B·B⁻¹ − I‖∞` probe estimate.
  void record_residual(double residual_inf, std::size_t iteration) {
    if (registry_ == nullptr) return;
    residual_inf_->set(residual_inf);
    if (residual_inf > cfg_.residual_tol) {
      registry_->warn({"residual-drift",
                       "basis-inverse residual estimate exceeds residual_tol; "
                       "B^-1 has drifted from B",
                       residual_inf, cfg_.residual_tol, iteration});
    }
  }

  /// Record an engine-computed (sampled) max |B⁻¹| growth estimate.
  void record_growth(double max_abs, std::size_t iteration) {
    if (registry_ == nullptr) return;
    binv_growth_->set(max_abs);
    if (max_abs > cfg_.growth_limit) {
      registry_->warn({"growth",
                       "basis-inverse entries exceed growth_limit; update "
                       "scheme is amplifying",
                       max_abs, cfg_.growth_limit, iteration});
    }
  }

  /// Record the eta-file / update-factor length for product-form and LU
  /// basis representations (explicit-inverse engines never call this).
  void record_eta_count(std::size_t count) {
    if (registry_ == nullptr) return;
    eta_count_->set(static_cast<double>(count));
  }

 private:
  MetricsRegistry* registry_;  ///< borrowed; nullptr = fully disabled
  HealthConfig cfg_;
  Histogram* pivot_magnitude_ = nullptr;
  Counter* degenerate_steps_ = nullptr;
  Counter* bland_activations_ = nullptr;
  Gauge* residual_inf_ = nullptr;
  Gauge* binv_growth_ = nullptr;
  Gauge* eta_count_ = nullptr;
  std::size_t degen_streak_ = 0;
  bool bland_active_ = false;
};

}  // namespace gs::metrics
