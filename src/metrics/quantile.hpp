// Shared quantile estimation: the single nearest-rank convention used by
// every surface that reports p50/p99 — the bench traffic harness
// (bench/svc_common.hpp), lp_cli --serve-bench, the profiler's request
// summary, and the SLO engine's histogram-quantile estimation
// (src/telemetry/slo.cpp).
//
// The rank formula generalises the two expressions that used to be
// duplicated across those call sites:
//   p50: (n - 1) / 2
//   p99: min(n - 1, (n * 99 + 99) / 100 - 1)
// Both are exactly `min(n - 1, ceil(n * q) - 1)` (nearest-rank, 0-based);
// tests/test_telemetry.cpp pins the equivalence for every n up to 4096 so
// the historical bench numbers cannot drift.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>

namespace gs::metrics {

/// 0-based index of the q-quantile in a sorted sample of size n
/// (nearest-rank: the smallest index covering at least a q-fraction of the
/// sample). q is clamped to (0, 1]; n == 0 returns 0.
[[nodiscard]] inline std::size_t quantile_rank(std::size_t n, double q) {
  if (n == 0) return 0;
  if (q <= 0.0) return 0;
  if (q >= 1.0) return n - 1;
  const double r = std::ceil(static_cast<double>(n) * q);
  const auto rank = static_cast<std::size_t>(r);
  return rank == 0 ? 0 : std::min(n - 1, rank - 1);
}

/// Nearest-rank quantile of an ascending-sorted sample. 0.0 when empty.
[[nodiscard]] inline double quantile_sorted(std::span<const double> sorted,
                                            double q) {
  if (sorted.empty()) return 0.0;
  return sorted[quantile_rank(sorted.size(), q)];
}

/// Quantile estimate from a fixed-bucket histogram (the Histogram layout:
/// counts[k] tallies observations v <= bounds[k], first match, with one
/// trailing overflow bucket). The estimate interpolates linearly inside
/// the bucket holding the nearest-rank observation, then clamps into
/// [sample_min, sample_max] when those are finite — so a bucket holding a
/// single repeated value reports that value exactly instead of the bucket
/// edge. 0.0 when the histogram is empty.
[[nodiscard]] inline double quantile_histogram(
    std::span<const double> bounds, std::span<const std::uint64_t> counts,
    double q,
    double sample_min = std::numeric_limits<double>::quiet_NaN(),
    double sample_max = std::numeric_limits<double>::quiet_NaN()) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const std::uint64_t rank = quantile_rank(total, q);
  std::uint64_t below = 0;
  std::size_t bucket = counts.size() - 1;
  for (std::size_t k = 0; k < counts.size(); ++k) {
    if (rank < below + counts[k]) {
      bucket = k;
      break;
    }
    below += counts[k];
  }
  const double lo = bucket == 0 ? 0.0 : bounds[bucket - 1];
  // The overflow bucket has no upper edge; fall back to its lower edge
  // (the clamp below recovers the exact value when sample_max is known).
  const double hi = bucket < bounds.size() ? bounds[bucket] : lo;
  const double fill = counts[bucket] == 0
                          ? 1.0
                          : static_cast<double>(rank + 1 - below) /
                                static_cast<double>(counts[bucket]);
  double v = lo + fill * (hi - lo);
  if (std::isfinite(sample_max) && v > sample_max) v = sample_max;
  if (std::isfinite(sample_min) && v < sample_min) v = sample_min;
  return v;
}

}  // namespace gs::metrics
