// Device BLAS level 2: the operations that dominate a revised simplex
// iteration (gemv for FTRAN/pricing, ger for the rank-1 basis update).
#pragma once

#include "vblas/containers.hpp"
#include "vgpu/device.hpp"

namespace gs::vblas {

/// y <- alpha * A x + beta * y, A is m x n row-major (one thread per row,
/// coalesced row reads — the natural GPU mapping for row-major storage).
template <typename T>
void gemv(T alpha, const DeviceMatrix<T>& a, const DeviceBuffer<T>& x, T beta,
          DeviceBuffer<T>& y) {
  GS_CHECK_MSG(a.cols() == x.size() && a.rows() == y.size(),
               "gemv shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  auto as = a.device_span();
  auto xs = x.device_span();
  auto ys = y.device_span();
  a.device().launch_blocks(
      "gemv", m, vgpu::Device::kBlockSize,
      KernelCost{2.0 * static_cast<double>(m) * static_cast<double>(n),
                 static_cast<double>((m * n + n + 2 * m) * sizeof(T)),
                 sizeof(T)},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          as.read_range(r * n, (r + 1) * n);
          const T* row = as.data() + r * n;
          T acc{0};
          for (std::size_t c = 0; c < n; ++c) acc += row[c] * xs[c];
          ys[r] = alpha * acc + beta * ys[r];
        }
      });
}

/// y <- alpha * A^T x + beta * y, A is m x n row-major; y has length n.
/// One thread per output column; each walks a strided column of A (the
/// transpose access pattern the paper works around with transposed storage —
/// cost model charges the same bytes either way, which is the bandwidth view).
template <typename T>
void gemv_t(T alpha, const DeviceMatrix<T>& a, const DeviceBuffer<T>& x,
            T beta, DeviceBuffer<T>& y) {
  GS_CHECK_MSG(a.rows() == x.size() && a.cols() == y.size(),
               "gemv_t shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  auto as = a.device_span();
  auto xs = x.device_span();
  auto ys = y.device_span();
  a.device().launch_blocks(
      "gemv_t", n, vgpu::Device::kBlockSize,
      KernelCost{2.0 * static_cast<double>(m) * static_cast<double>(n),
                 static_cast<double>((m * n + m + 2 * n) * sizeof(T)),
                 sizeof(T)},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t c = begin; c < end; ++c) {
          T acc{0};
          for (std::size_t r = 0; r < m; ++r) acc += as[r * n + c] * xs[r];
          ys[c] = alpha * acc + beta * ys[c];
        }
      });
}

/// A <- A + alpha * x y^T (rank-1 update), A is m x n row-major.
template <typename T>
void ger(T alpha, const DeviceBuffer<T>& x, const DeviceBuffer<T>& y,
         DeviceMatrix<T>& a) {
  GS_CHECK_MSG(a.rows() == x.size() && a.cols() == y.size(),
               "ger shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  auto as = a.device_span();
  auto xs = x.device_span();
  auto ys = y.device_span();
  a.device().launch_blocks(
      "ger", m, vgpu::Device::kBlockSize,
      KernelCost{2.0 * static_cast<double>(m) * static_cast<double>(n),
                 static_cast<double>((2 * m * n + m + n) * sizeof(T)),
                 sizeof(T)},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          as.read_range(r * n, (r + 1) * n);
          as.write_range(r * n, (r + 1) * n);
          T* row = as.data() + r * n;
          const T scale = alpha * xs[r];
          for (std::size_t c = 0; c < n; ++c) row[c] += scale * ys[c];
        }
      });
}

/// Extract column j of A into out (device gather, one thread per row).
template <typename T>
void gather_column(const DeviceMatrix<T>& a, std::size_t col,
                   DeviceBuffer<T>& out) {
  GS_CHECK_MSG(col < a.cols() && out.size() == a.rows(),
               "gather_column shape mismatch");
  const std::size_t n = a.cols();
  auto as = a.device_span();
  auto os = out.device_span();
  a.device().launch_blocks(
      "gather_column", a.rows(), vgpu::Device::kBlockSize,
      KernelCost{0.0, 2.0 * static_cast<double>(a.rows() * sizeof(T)),
                 sizeof(T)},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) os[r] = as[r * n + col];
      });
}

}  // namespace gs::vblas
