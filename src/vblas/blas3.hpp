// Device BLAS level 3: blocked dense matrix-matrix multiply.
//
// The revised simplex core only needs BLAS-2, but gemm backs the basis
// reinversion path and the substrate's own validation suite.
#pragma once

#include "vblas/containers.hpp"
#include "vgpu/device.hpp"

namespace gs::vblas {

/// C <- alpha * A B + beta * C. A is m x k, B is k x n, C is m x n.
/// One thread-row per C row; the inner kernel loops k-then-n so B rows
/// stream sequentially (register-blocked in spirit).
template <typename T>
void gemm(T alpha, const DeviceMatrix<T>& a, const DeviceMatrix<T>& b, T beta,
          DeviceMatrix<T>& c) {
  GS_CHECK_MSG(a.cols() == b.rows() && a.rows() == c.rows() &&
                   b.cols() == c.cols(),
               "gemm shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  auto as = a.device_span();
  auto bs = b.device_span();
  auto cs = c.device_span();
  const double fl = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                    static_cast<double>(k);
  const double by =
      static_cast<double>((m * k + k * n + 2 * m * n) * sizeof(T));
  a.device().launch_blocks(
      "gemm", m, vgpu::Device::kBlockSize,
      KernelCost{fl, by, sizeof(T)},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          as.read_range(r * k, (r + 1) * k);
          cs.read_range(r * n, (r + 1) * n);
          cs.write_range(r * n, (r + 1) * n);
          T* crow = cs.data() + r * n;
          if (beta == T{0}) {
            for (std::size_t j = 0; j < n; ++j) crow[j] = T{0};
          } else if (beta != T{1}) {
            for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
          }
          const T* arow = as.data() + r * k;
          for (std::size_t p = 0; p < k; ++p) {
            const T av = alpha * arow[p];
            if (av == T{0}) continue;
            bs.read_range(p * n, (p + 1) * n);
            const T* brow = bs.data() + p * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      });
}

}  // namespace gs::vblas
