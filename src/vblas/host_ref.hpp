// Plain serial reference implementations (no device, no cost accounting).
//
// Used by the test suite as an independent oracle for the device kernels and
// by untimed preprocessing code paths.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "support/error.hpp"
#include "vblas/containers.hpp"

namespace gs::vblas::ref {

template <typename T>
[[nodiscard]] T dot(std::span<const T> x, std::span<const T> y) {
  GS_CHECK(x.size() == y.size());
  T acc{0};
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

template <typename T>
void axpy(T alpha, std::span<const T> x, std::span<T> y) {
  GS_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

template <typename T>
[[nodiscard]] std::vector<T> gemv(const Matrix<T>& a, std::span<const T> x) {
  GS_CHECK(a.cols() == x.size());
  std::vector<T> y(a.rows(), T{0});
  for (std::size_t r = 0; r < a.rows(); ++r) {
    T acc{0};
    for (std::size_t c = 0; c < a.cols(); ++c) acc += a(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

template <typename T>
[[nodiscard]] std::vector<T> gemv_t(const Matrix<T>& a, std::span<const T> x) {
  GS_CHECK(a.rows() == x.size());
  std::vector<T> y(a.cols(), T{0});
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) y[c] += a(r, c) * x[r];
  }
  return y;
}

template <typename T>
[[nodiscard]] Matrix<T> gemm(const Matrix<T>& a, const Matrix<T>& b) {
  GS_CHECK(a.cols() == b.rows());
  Matrix<T> c(a.rows(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t p = 0; p < a.cols(); ++p) {
      const T av = a(r, p);
      if (av == T{0}) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(r, j) += av * b(p, j);
    }
  }
  return c;
}

/// Dense Gauss-Jordan inverse with partial pivoting. Throws gs::Error on a
/// (numerically) singular matrix. Reference path for basis reinversion.
template <typename T>
[[nodiscard]] Matrix<T> invert(Matrix<T> a) {
  GS_CHECK_MSG(a.rows() == a.cols(), "invert: matrix must be square");
  const std::size_t n = a.rows();
  Matrix<T> inv = Matrix<T>::identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    }
    GS_CHECK_MSG(std::abs(a(pivot, col)) > T{0},
                 "invert: singular matrix");
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a(col, j), a(pivot, j));
        std::swap(inv(col, j), inv(pivot, j));
      }
    }
    const T d = a(col, col);
    for (std::size_t j = 0; j < n; ++j) {
      a(col, j) /= d;
      inv(col, j) /= d;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const T f = a(r, col);
      if (f == T{0}) continue;
      for (std::size_t j = 0; j < n; ++j) {
        a(r, j) -= f * a(col, j);
        inv(r, j) -= f * inv(col, j);
      }
    }
  }
  return inv;
}

}  // namespace gs::vblas::ref
