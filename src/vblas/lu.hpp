// Dense LU factorization with partial pivoting, plus the triangular solves
// the LU basis scheme needs (FTRAN = solve, BTRAN = transposed solve).
//
// Host implementation in double precision: the device engine charges the
// equivalent blocked-triangular-solve kernel costs through the machine
// model (a 2009 GPU executes trsv as a chain of dependent panel kernels —
// which is precisely why the paper preferred an explicit inverse).
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "support/error.hpp"
#include "vblas/containers.hpp"

namespace gs::vblas {

/// P A = L U with unit-diagonal L stored below the diagonal of `lu` and U
/// on/above it; perm[i] is the original row in position i.
struct LuFactors {
  Matrix<double> lu;
  std::vector<std::uint32_t> perm;

  [[nodiscard]] std::size_t order() const noexcept { return lu.rows(); }
};

/// Factor a (square, nonsingular) matrix. Throws gs::Error when a pivot
/// column is numerically zero.
[[nodiscard]] inline LuFactors lu_factor(Matrix<double> a) {
  GS_CHECK_MSG(a.rows() == a.cols(), "lu_factor: matrix must be square");
  const std::size_t n = a.rows();
  LuFactors f;
  f.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) f.perm[i] = static_cast<std::uint32_t>(i);
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot = k;
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(a(i, k)) > std::abs(a(pivot, k))) pivot = i;
    }
    GS_CHECK_MSG(std::abs(a(pivot, k)) > 0.0, "lu_factor: singular matrix");
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(pivot, j));
      std::swap(f.perm[k], f.perm[pivot]);
    }
    const double d = a(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double l = a(i, k) / d;
      if (l == 0.0) continue;
      a(i, k) = l;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= l * a(k, j);
    }
  }
  f.lu = std::move(a);
  return f;
}

/// Solve A x = b (FTRAN direction): y = L^-1 P b, x = U^-1 y.
[[nodiscard]] inline std::vector<double> lu_solve(const LuFactors& f,
                                                  std::span<const double> b) {
  const std::size_t n = f.order();
  GS_CHECK_MSG(b.size() == n, "lu_solve dimension mismatch");
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[f.perm[i]];
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= f.lu(i, j) * x[j];
    x[i] = acc;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= f.lu(ii, j) * x[j];
    x[ii] = acc / f.lu(ii, ii);
  }
  return x;
}

/// Solve A^T x = b (BTRAN direction): z = U^-T b, w = L^-T z, x = P^T w.
[[nodiscard]] inline std::vector<double> lu_solve_transposed(
    const LuFactors& f, std::span<const double> b) {
  const std::size_t n = f.order();
  GS_CHECK_MSG(b.size() == n, "lu_solve_transposed dimension mismatch");
  std::vector<double> w(b.begin(), b.end());
  // U^T is lower triangular: forward substitution.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = w[i];
    for (std::size_t j = 0; j < i; ++j) acc -= f.lu(j, i) * w[j];
    w[i] = acc / f.lu(i, i);
  }
  // L^T is unit upper triangular: backward substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = w[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= f.lu(j, ii) * w[j];
    w[ii] = acc;
  }
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[f.perm[i]] = w[i];
  return x;
}

}  // namespace gs::vblas
