// Device BLAS level 1: vector-vector operations as costed kernels.
#pragma once

#include <cmath>

#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"
#include "vgpu/primitives.hpp"

namespace gs::vblas {

using vgpu::DeviceBuffer;
using vgpu::KernelCost;

/// y <- alpha * x + y
template <typename T>
void axpy(T alpha, const DeviceBuffer<T>& x, DeviceBuffer<T>& y) {
  GS_CHECK_MSG(x.size() == y.size(), "axpy size mismatch");
  auto xs = x.device_span();
  auto ys = y.device_span();
  const auto n = x.size();
  x.device().launch_blocks(
      "axpy", n, vgpu::Device::kBlockSize,
      KernelCost{2.0 * static_cast<double>(n),
                 3.0 * static_cast<double>(n * sizeof(T)), sizeof(T)},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ys[i] += alpha * xs[i];
      });
}

/// x <- alpha * x
template <typename T>
void scal(T alpha, DeviceBuffer<T>& x) {
  auto xs = x.device_span();
  const auto n = x.size();
  x.device().launch_blocks(
      "scal", n, vgpu::Device::kBlockSize,
      KernelCost{static_cast<double>(n),
                 2.0 * static_cast<double>(n * sizeof(T)), sizeof(T)},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) xs[i] *= alpha;
      });
}

/// Dot product x . y, returned to the host. Deterministic block-ordered sum.
template <typename T>
[[nodiscard]] T dot(const DeviceBuffer<T>& x, const DeviceBuffer<T>& y) {
  GS_CHECK_MSG(x.size() == y.size(), "dot size mismatch");
  vgpu::Device& dev = x.device();
  const auto n = x.size();
  const std::size_t blocks = (n + vgpu::Device::kBlockSize - 1) / vgpu::Device::kBlockSize;
  std::vector<T> partial(blocks, T{0});
  auto xs = x.device_span();
  auto ys = y.device_span();
  dev.launch_blocks(
      "dot", n, vgpu::Device::kBlockSize,
      KernelCost{2.0 * static_cast<double>(n),
                 2.0 * static_cast<double>(n * sizeof(T)), sizeof(T)},
      [&](std::size_t b, std::size_t begin, std::size_t end) {
        T acc{0};
        for (std::size_t i = begin; i < end; ++i) acc += xs[i] * ys[i];
        partial[b] = acc;
      });
  T total{0};
  dev.launch_blocks(
      "dot_final", blocks, vgpu::Device::kBlockSize,
      KernelCost{static_cast<double>(blocks),
                 static_cast<double>(blocks * sizeof(T)), sizeof(T)},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) total += partial[i];
      });
  dev.account_d2h(sizeof(T));
  return total;
}

/// Euclidean norm ||x||_2.
template <typename T>
[[nodiscard]] T nrm2(const DeviceBuffer<T>& x) {
  return static_cast<T>(std::sqrt(static_cast<double>(dot(x, x))));
}

/// Sum of absolute values.
template <typename T>
[[nodiscard]] T asum(const DeviceBuffer<T>& x) {
  vgpu::Device& dev = x.device();
  const auto n = x.size();
  const std::size_t blocks = (n + vgpu::Device::kBlockSize - 1) / vgpu::Device::kBlockSize;
  std::vector<T> partial(blocks, T{0});
  auto xs = x.device_span();
  dev.launch_blocks(
      "asum", n, vgpu::Device::kBlockSize,
      KernelCost{2.0 * static_cast<double>(n),
                 static_cast<double>(n * sizeof(T)), sizeof(T)},
      [&](std::size_t b, std::size_t begin, std::size_t end) {
        T acc{0};
        for (std::size_t i = begin; i < end; ++i) acc += std::abs(xs[i]);
        partial[b] = acc;
      });
  T total{0};
  for (std::size_t b = 0; b < blocks; ++b) total += partial[b];
  dev.account_d2h(sizeof(T));
  return total;
}

/// y <- x (bandwidth-bound device copy kernel).
template <typename T>
void copy(const DeviceBuffer<T>& x, DeviceBuffer<T>& y) {
  GS_CHECK_MSG(x.size() == y.size(), "copy size mismatch");
  auto xs = x.device_span();
  auto ys = y.device_span();
  const auto n = x.size();
  x.device().launch_blocks(
      "blas_copy", n, vgpu::Device::kBlockSize,
      KernelCost{0.0, 2.0 * static_cast<double>(n * sizeof(T)), sizeof(T)},
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ys[i] = xs[i];
      });
}

}  // namespace gs::vblas
