// Dense host matrix and device matrix containers.
//
// Host `Matrix<T>` is a plain row-major dense matrix used for problem
// assembly and test references. `DeviceMatrix<T>` wraps a DeviceBuffer with
// shape metadata; its contents move via accounted transfers only.
#pragma once

#include <span>
#include <vector>

#include "support/error.hpp"
#include "vgpu/buffer.hpp"

namespace gs::vblas {

/// Row-major dense host matrix.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<T> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const T> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<T> flat() noexcept { return data_; }
  [[nodiscard]] std::span<const T> flat() const noexcept { return data_; }

  /// Identity matrix of order n.
  [[nodiscard]] static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  /// Transposed copy.
  [[nodiscard]] Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    }
    return t;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// Row-major dense device matrix (device-resident storage).
template <typename T>
class DeviceMatrix {
 public:
  DeviceMatrix(vgpu::Device& device, std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), buffer_(device, rows * cols) {}

  DeviceMatrix(vgpu::Device& device, const Matrix<T>& host)
      : rows_(host.rows()), cols_(host.cols()), buffer_(device, host.flat()) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] vgpu::Device& device() const noexcept {
    return buffer_.device();
  }
  [[nodiscard]] vgpu::DeviceBuffer<T>& buffer() noexcept { return buffer_; }
  [[nodiscard]] const vgpu::DeviceBuffer<T>& buffer() const noexcept {
    return buffer_;
  }

  /// Device-side flat view (kernel bodies only, by convention). Checked
  /// when the owning device has a checker attached — see CHECKING.md.
  [[nodiscard]] vgpu::check::CheckedSpan<T> device_span() noexcept {
    return buffer_.device_span();
  }
  [[nodiscard]] vgpu::check::CheckedSpan<const T> device_span() const noexcept {
    return buffer_.device_span();
  }

  void upload(const Matrix<T>& host) {
    GS_CHECK_MSG(host.rows() == rows_ && host.cols() == cols_,
                 "upload shape mismatch");
    buffer_.upload(host.flat());
  }

  [[nodiscard]] Matrix<T> to_host() const {
    Matrix<T> out(rows_, cols_);
    buffer_.download(out.flat());
    return out;
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  vgpu::DeviceBuffer<T> buffer_;
};

}  // namespace gs::vblas
