// Telemetry core: a deterministic time-series pipeline over the modeled
// clocks (OBSERVABILITY.md, "Telemetry & SLOs").
//
// Every other observability pillar reports end-of-run aggregates; this one
// records *evolution*: named series of (t, value) points where t is always
// a modeled timestamp — an engine's CostMeter/vgpu `sim_seconds`, or the
// service's monotone drain-epoch clock. No wall-clock is ever read, so two
// identical runs produce byte-identical `gs-telemetry-v1` JSON regardless
// of machine load or worker count.
//
// Retention is bounded: each series keeps at most `series_capacity` points.
// When a series fills, every other point is dropped and the acceptance
// stride doubles (1, 2, 4, ...) — classic power-of-two downsampling that
// keeps a uniform subsample of the full run at a fixed memory ceiling,
// and keeps retention itself deterministic (a function of arrival count
// alone, never of time or memory pressure).
//
// Wiring follows the observer pattern shared by trace/check/metrics/record
// and the profiler: a borrowed `SolverOptions::telemetry` pointer for solo
// engine runs (per-iteration objective/residual/growth series) and
// `SolveService::set_telemetry` for service runs (fixed-interval samples
// of the drain timeline, fed to the SLO engine). Off by default; attaching
// a sink must not change a single result bit (tests/test_telemetry.cpp
// asserts record-level and DeviceStats bit-identity).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/metrics.hpp"
#include "telemetry/slo.hpp"

namespace gs::telemetry {

struct TelemetryConfig {
  /// Width of one service sample interval on the epoch clock. 1 ms spans
  /// a batch drain (~8-15 ms makespans at the bench sizes) with enough
  /// resolution for the SLO windows to see bursts.
  double sample_interval_seconds = 1e-3;
  /// Per-series point cap; must be a power of two for clean downsampling.
  std::size_t series_capacity = 512;
  /// Cap on stored timestamped events (drains, SLO transitions).
  std::size_t event_capacity = 256;
  /// Engines record every `iteration_stride`-th iteration.
  std::size_t iteration_stride = 1;
};

struct SeriesPoint {
  double t = 0.0;
  double v = 0.0;
};

/// One bounded series with power-of-two downsampling. `stride()` reports
/// how many arrivals each retained point represents (1 until the first
/// downsample).
class Series {
 public:
  explicit Series(std::size_t capacity) : capacity_(capacity) {}

  void record(double t, double v) {
    if (arrivals_ % stride_ == 0) {
      if (points_.size() >= capacity_ && capacity_ > 1) {
        // Keep even indices: a uniform subsample at twice the stride.
        std::size_t w = 0;
        for (std::size_t r = 0; r < points_.size(); r += 2) {
          points_[w++] = points_[r];
        }
        points_.resize(w);
        stride_ *= 2;
      }
      if (points_.size() < capacity_) points_.push_back({t, v});
    }
    ++arrivals_;
  }

  [[nodiscard]] const std::vector<SeriesPoint>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }
  [[nodiscard]] std::uint64_t arrivals() const noexcept { return arrivals_; }

 private:
  std::size_t capacity_;
  std::size_t stride_ = 1;
  std::uint64_t arrivals_ = 0;
  std::vector<SeriesPoint> points_;
};

struct TimedEvent {
  double t = 0.0;
  std::string name;
  std::string detail;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {}) : cfg_(config) {}

  [[nodiscard]] const TelemetryConfig& config() const noexcept { return cfg_; }

  /// Append one point to the named series (created on first use).
  void record(std::string_view series, double t, double v);

  /// Record a timestamped event (bounded by event_capacity; overflow is
  /// counted, not stored).
  void event(std::string_view name, double t, std::string detail = {});

  /// Engines gate per-iteration sampling on this (stride check only).
  [[nodiscard]] bool want_iteration_sample(std::size_t iter) const noexcept {
    return iter % cfg_.iteration_stride == 0;
  }

  /// Snapshot `registry`, diff against the previous snapshot, and record
  /// each counter delta as series `registry.<name>` plus each gauge's
  /// current value — per-interval rates out of cumulative metrics.
  void sample_registry(double t, const metrics::MetricsRegistry& registry);

  /// Feed one service interval: records the service.* series and, when an
  /// SLO spec is attached, judges it and records alert transitions as
  /// `slo-firing` / `slo-resolved` events.
  void observe_service_sample(const ServiceSample& sample);

  void set_slo(SloSpec spec) { slo_.emplace(std::move(spec)); }
  [[nodiscard]] bool has_slo() const noexcept { return slo_.has_value(); }
  [[nodiscard]] std::vector<SloAttainment> slo_attainment() const {
    return slo_ ? slo_->attainment() : std::vector<SloAttainment>{};
  }
  [[nodiscard]] bool slo_violated() const {
    return slo_ && slo_->violated();
  }

  [[nodiscard]] const std::map<std::string, Series, std::less<>>& series()
      const noexcept {
    return series_;
  }
  [[nodiscard]] const std::vector<TimedEvent>& events() const noexcept {
    return events_;
  }

  /// `gs-telemetry-v1` JSON: schema, sample interval, every series with
  /// its stride and retained points, events, SLO attainment when present.
  /// Series names are map-sorted and numbers use the shared %.17g writer,
  /// so identical runs serialize byte-identically.
  [[nodiscard]] std::string to_json() const;

  /// Prometheus-style text exposition of each series' latest value
  /// (`gs_` prefix, non-alphanumerics mangled to '_').
  [[nodiscard]] std::string to_prometheus() const;

  void write_file(const std::string& path) const;

  static constexpr std::string_view kSchema = "gs-telemetry-v1";

 private:
  TelemetryConfig cfg_;
  std::map<std::string, Series, std::less<>> series_;
  std::vector<TimedEvent> events_;
  std::uint64_t events_dropped_ = 0;
  std::optional<SloEngine> slo_;
  std::optional<metrics::MetricsSnapshot> last_registry_;
};

}  // namespace gs::telemetry
