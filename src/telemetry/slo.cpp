#include "telemetry/slo.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>

#include "metrics/metrics.hpp"
#include "metrics/quantile.hpp"
#include "support/error.hpp"

namespace gs::telemetry {

namespace {

// A latency-sample verdict tolerates 1% bad samples; rate objectives use
// the target itself as the budget (a miss<=0.01 objective tolerates a 1%
// miss rate by definition). The epsilon floor keeps burn = bad/budget
// finite for a zero-tolerance spec like reject<=0.
constexpr double kLatencyBudget = 0.01;
constexpr double kBudgetFloor = 1e-12;

double parse_double(std::string_view text, std::string_view clause) {
  double v = 0.0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, v);
  GS_CHECK_MSG(ec == std::errc{} && ptr == end,
               std::string("bad number in SLO clause: ") + std::string(clause));
  return v;
}

/// "50ms" / "800us" / "2.5s" / bare seconds -> seconds.
double parse_seconds(std::string_view text, std::string_view clause) {
  double scale = 1.0;
  if (text.ends_with("ms")) {
    scale = 1e-3;
    text.remove_suffix(2);
  } else if (text.ends_with("us")) {
    scale = 1e-6;
    text.remove_suffix(2);
  } else if (text.ends_with("s")) {
    text.remove_suffix(1);
  }
  return scale * parse_double(text, clause);
}

}  // namespace

SloSpec SloSpec::parse(std::string_view spec) {
  SloSpec out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    std::string_view clause = spec.substr(pos, comma - pos);
    pos = comma + 1;
    while (!clause.empty() && clause.front() == ' ') clause.remove_prefix(1);
    while (!clause.empty() && clause.back() == ' ') clause.remove_suffix(1);
    if (clause.empty()) continue;
    if (clause.starts_with("p99<=")) {
      out.objectives.push_back({std::string(clause), SloKind::kLatencyP99,
                                parse_seconds(clause.substr(5), clause)});
    } else if (clause.starts_with("miss<=")) {
      out.objectives.push_back({std::string(clause),
                                SloKind::kDeadlineMissRate,
                                parse_double(clause.substr(6), clause)});
    } else if (clause.starts_with("reject<=")) {
      out.objectives.push_back({std::string(clause), SloKind::kRejectRate,
                                parse_double(clause.substr(8), clause)});
    } else if (clause.starts_with("hit>=")) {
      out.objectives.push_back({std::string(clause), SloKind::kWarmHitRate,
                                parse_double(clause.substr(5), clause)});
    } else if (clause.starts_with("fast=")) {
      out.fast_window = static_cast<std::size_t>(
          parse_double(clause.substr(5), clause));
    } else if (clause.starts_with("slow=")) {
      out.slow_window = static_cast<std::size_t>(
          parse_double(clause.substr(5), clause));
    } else if (clause.starts_with("burn=")) {
      out.burn_threshold = parse_double(clause.substr(5), clause);
    } else {
      GS_FAIL(std::string("unknown SLO clause: ") + std::string(clause) +
              " (expected p99<=/miss<=/reject<=/hit>=/fast=/slow=/burn=)");
    }
  }
  GS_CHECK_MSG(out.fast_window > 0, "SLO fast window must be positive");
  out.slow_window = std::max(out.slow_window, out.fast_window);
  return out;
}

SloEngine::SloEngine(SloSpec spec) : spec_(std::move(spec)) {
  states_.resize(spec_.objectives.size());
}

double SloEngine::error_budget(const SloObjective& o) const {
  switch (o.kind) {
    case SloKind::kLatencyP99:
      return kLatencyBudget;
    case SloKind::kDeadlineMissRate:
    case SloKind::kRejectRate:
      return std::max(o.target, kBudgetFloor);
    case SloKind::kWarmHitRate:
      return std::max(1.0 - o.target, kBudgetFloor);
  }
  return kBudgetFloor;
}

SloEngine::BadTotal SloEngine::judge(const SloObjective& o,
                                     const ServiceSample& s) {
  switch (o.kind) {
    case SloKind::kLatencyP99: {
      if (s.completed == 0) return {};
      const double p99 = metrics::quantile_histogram(
          metrics::seconds_buckets(), s.latency_counts, 0.99, s.latency_min,
          s.latency_max);
      return {p99 > o.target ? 1ULL : 0ULL, 1};
    }
    case SloKind::kDeadlineMissRate:
      return {s.deadline_missed, s.completed};
    case SloKind::kRejectRate:
      return {s.rejected, s.completed + s.rejected};
    case SloKind::kWarmHitRate:
      return {s.warm_lookups - s.warm_hits, s.warm_lookups};
  }
  return {};
}

double SloEngine::window_burn(const State& st, std::size_t window,
                              double budget) const {
  std::uint64_t bad = 0, total = 0;
  const std::size_t n = std::min(window, st.window.size());
  for (std::size_t i = st.window.size() - n; i < st.window.size(); ++i) {
    bad += st.window[i].bad;
    total += st.window[i].total;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(bad) / static_cast<double>(total) / budget;
}

std::vector<SloTransition> SloEngine::observe(const ServiceSample& s) {
  std::vector<SloTransition> edges;
  for (std::size_t i = 0; i < spec_.objectives.size(); ++i) {
    const SloObjective& o = spec_.objectives[i];
    State& st = states_[i];
    const BadTotal bt = judge(o, s);
    st.window.push_back(bt);
    while (st.window.size() > spec_.slow_window) st.window.pop_front();
    st.bad_sum += bt.bad;
    st.total_sum += bt.total;
    if (o.kind == SloKind::kLatencyP99 && s.completed > 0) {
      if (st.latency_counts.size() < s.latency_counts.size()) {
        st.latency_counts.resize(s.latency_counts.size(), 0);
      }
      for (std::size_t k = 0; k < s.latency_counts.size(); ++k) {
        st.latency_counts[k] += s.latency_counts[k];
      }
      if (!st.latency_seen || s.latency_min < st.latency_min) {
        st.latency_min = s.latency_min;
      }
      if (!st.latency_seen || s.latency_max > st.latency_max) {
        st.latency_max = s.latency_max;
      }
      st.latency_seen = true;
    }
    const double budget = error_budget(o);
    const bool firing =
        window_burn(st, spec_.fast_window, budget) > spec_.burn_threshold &&
        window_burn(st, spec_.slow_window, budget) > spec_.burn_threshold;
    if (firing != st.firing) {
      st.firing = firing;
      if (firing) ++st.alerts_fired;
      edges.push_back({o.name, firing, s.t});
    }
  }
  return edges;
}

std::vector<SloAttainment> SloEngine::attainment() const {
  std::vector<SloAttainment> out;
  out.reserve(spec_.objectives.size());
  for (std::size_t i = 0; i < spec_.objectives.size(); ++i) {
    const SloObjective& o = spec_.objectives[i];
    const State& st = states_[i];
    SloAttainment a;
    a.name = o.name;
    a.target = o.target;
    const double bad_frac =
        st.total_sum == 0 ? 0.0
                          : static_cast<double>(st.bad_sum) /
                                static_cast<double>(st.total_sum);
    a.attainment = 1.0 - bad_frac;
    a.budget_consumed = bad_frac / error_budget(o);
    switch (o.kind) {
      case SloKind::kLatencyP99:
        a.observed = st.latency_seen
                         ? metrics::quantile_histogram(
                               metrics::seconds_buckets(), st.latency_counts,
                               0.99, st.latency_min, st.latency_max)
                         : 0.0;
        a.headroom = o.target > 0.0 ? (o.target - a.observed) / o.target : 0.0;
        break;
      case SloKind::kDeadlineMissRate:
      case SloKind::kRejectRate:
        a.observed = bad_frac;
        break;
      case SloKind::kWarmHitRate:
        a.observed = 1.0 - bad_frac;
        break;
    }
    a.alerts_fired = st.alerts_fired;
    a.firing = st.firing;
    a.violated = a.budget_consumed > 1.0;
    out.push_back(std::move(a));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SloAttainment& x, const SloAttainment& y) {
                     return x.budget_consumed > y.budget_consumed;
                   });
  return out;
}

bool SloEngine::violated() const {
  for (const SloAttainment& a : attainment()) {
    if (a.violated) return true;
  }
  return false;
}

}  // namespace gs::telemetry
