#include "telemetry/telemetry.hpp"

#include <cctype>
#include <fstream>

#include "metrics/quantile.hpp"
#include "support/error.hpp"

namespace gs::telemetry {

void Telemetry::record(std::string_view series, double t, double v) {
  auto it = series_.find(series);
  if (it == series_.end()) {
    it = series_.emplace(std::string(series), Series(cfg_.series_capacity))
             .first;
  }
  it->second.record(t, v);
}

void Telemetry::event(std::string_view name, double t, std::string detail) {
  if (events_.size() >= cfg_.event_capacity) {
    ++events_dropped_;
    return;
  }
  events_.push_back({t, std::string(name), std::move(detail)});
}

void Telemetry::sample_registry(double t,
                                const metrics::MetricsRegistry& registry) {
  auto snap = registry.snapshot();
  const metrics::MetricsSnapshot delta =
      last_registry_ ? snap.diff(*last_registry_) : snap;
  for (const auto& [name, value] : delta.counters) {
    record(std::string("registry.") + name, t, value);
  }
  for (const auto& [name, g] : delta.gauges) {
    record(std::string("registry.") + name, t, g.value);
  }
  last_registry_.emplace(std::move(snap));
}

void Telemetry::observe_service_sample(const ServiceSample& sample) {
  const double t = sample.t;
  record("service.completed", t, static_cast<double>(sample.completed));
  record("service.deadline_missed", t,
         static_cast<double>(sample.deadline_missed));
  record("service.rejected", t, static_cast<double>(sample.rejected));
  record("service.inflight", t, static_cast<double>(sample.inflight));
  if (sample.warm_lookups > 0) {
    record("service.warm_hit_rate", t,
           static_cast<double>(sample.warm_hits) /
               static_cast<double>(sample.warm_lookups));
  }
  if (sample.completed > 0) {
    record("service.latency_p50_seconds", t,
           metrics::quantile_histogram(metrics::seconds_buckets(),
                                       sample.latency_counts, 0.50,
                                       sample.latency_min,
                                       sample.latency_max));
    record("service.latency_p99_seconds", t,
           metrics::quantile_histogram(metrics::seconds_buckets(),
                                       sample.latency_counts, 0.99,
                                       sample.latency_min,
                                       sample.latency_max));
  }
  if (slo_) {
    for (const SloTransition& edge : slo_->observe(sample)) {
      event(edge.firing ? "slo-firing" : "slo-resolved", edge.t,
            edge.objective);
    }
  }
}

std::string Telemetry::to_json() const {
  using metrics::json_write_number;
  using metrics::json_write_string;
  std::string out;
  out += "{\n  \"schema\": ";
  json_write_string(out, kSchema);
  out += ",\n  \"sample_interval_seconds\": ";
  json_write_number(out, cfg_.sample_interval_seconds);

  out += ",\n  \"series\": {";
  bool first = true;
  for (const auto& [name, s] : series_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_write_string(out, name);
    out += ": {\"stride\": " + std::to_string(s.stride());
    out += ", \"points\": [";
    const auto& pts = s.points();
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (i > 0) out += ',';
      out += '[';
      json_write_number(out, pts[i].t);
      out += ',';
      json_write_number(out, pts[i].v);
      out += ']';
    }
    out += "]}";
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"events\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TimedEvent& e = events_[i];
    out += i == 0 ? "\n    " : ",\n    ";
    out += "{\"t\": ";
    json_write_number(out, e.t);
    out += ", \"name\": ";
    json_write_string(out, e.name);
    out += ", \"detail\": ";
    json_write_string(out, e.detail);
    out += "}";
  }
  out += events_.empty() ? "]" : "\n  ]";
  out += ",\n  \"events_dropped\": " + std::to_string(events_dropped_);

  if (slo_) {
    out += ",\n  \"slo\": [";
    const auto verdicts = slo_->attainment();
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      const SloAttainment& a = verdicts[i];
      out += i == 0 ? "\n    " : ",\n    ";
      out += "{\"objective\": ";
      json_write_string(out, a.name);
      out += ", \"target\": ";
      json_write_number(out, a.target);
      out += ", \"observed\": ";
      json_write_number(out, a.observed);
      out += ", \"attainment\": ";
      json_write_number(out, a.attainment);
      out += ", \"budget_consumed\": ";
      json_write_number(out, a.budget_consumed);
      out += ", \"alerts_fired\": " + std::to_string(a.alerts_fired);
      out += std::string(", \"violated\": ") +
             (a.violated ? "true" : "false") + "}";
    }
    out += verdicts.empty() ? "]" : "\n  ]";
  }
  out += "\n}\n";
  return out;
}

std::string Telemetry::to_prometheus() const {
  std::string out;
  for (const auto& [name, s] : series_) {
    if (s.points().empty()) continue;
    std::string mangled = "gs_";
    for (const char c : name) {
      mangled += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
    }
    out += "# TYPE " + mangled + " gauge\n";
    out += mangled + " ";
    metrics::json_write_number(out, s.points().back().v);
    out += '\n';
  }
  out += "# TYPE gs_telemetry_events_total counter\n";
  out += "gs_telemetry_events_total " +
         std::to_string(events_.size() + events_dropped_) + "\n";
  return out;
}

void Telemetry::write_file(const std::string& path) const {
  std::ofstream out(path);
  GS_CHECK_MSG(out.good(), "cannot open telemetry file for writing: " + path);
  out << to_json();
  out.flush();
  GS_CHECK_MSG(out.good(), "failed writing telemetry file: " + path);
}

}  // namespace gs::telemetry
