// SLO engine: declarative service-level objectives evaluated per telemetry
// sample, with error-budget accounting and multi-window burn-rate alerts
// (OBSERVABILITY.md, "Telemetry & SLOs").
//
// Objectives are judged against `ServiceSample` intervals — the fixed-width
// slices of the modeled drain timeline that the telemetry pipeline emits —
// so evaluation is as deterministic as the samples themselves: no
// wall-clock, no randomness, byte-identical verdicts for identical runs.
//
// Each objective tracks (bad, total) event pairs per sample. The error
// budget is the tolerated bad fraction; burn rate is the observed bad
// fraction over a window divided by that budget (burn 1.0 = consuming the
// budget exactly as fast as allowed). An alert fires when BOTH the fast
// window (quick detection) and the slow window (flap suppression) burn
// above the threshold — the standard multi-window scheme — and resolves
// when either drops back under. Transitions are timestamped on the sample
// clock and become `slo-firing` / `slo-resolved` events in the series.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace gs::telemetry {

/// One fixed-width interval of service activity on the modeled/epoch
/// clock. `latency_counts` uses the shared metrics::seconds_buckets()
/// ladder plus one trailing overflow bucket; `latency_min/max` carry the
/// exact extremes so histogram-quantile estimates can be clamped (the x2
/// bucket ladder alone would round a 14.9 ms p99 up to its 26.2 ms bucket
/// edge).
struct ServiceSample {
  double t = 0.0;                 ///< end of the interval (epoch clock)
  double interval_seconds = 0.0;  ///< width of the interval
  std::uint64_t completed = 0;
  std::uint64_t deadline_missed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t warm_hits = 0;
  std::uint64_t warm_lookups = 0;
  std::uint64_t inflight = 0;  ///< admitted, not yet complete at t
  std::vector<std::uint64_t> latency_counts;  ///< seconds ladder + overflow
  double latency_min = 0.0;
  double latency_max = 0.0;
};

enum class SloKind : std::uint8_t {
  kLatencyP99,       ///< p99 latency <= target (seconds)
  kDeadlineMissRate, ///< missed/completed <= target
  kRejectRate,       ///< rejected/(completed+rejected) <= target
  kWarmHitRate,      ///< warm hits/lookups >= target
};

struct SloObjective {
  std::string name;  ///< the spec clause, e.g. "p99<=20ms"
  SloKind kind = SloKind::kLatencyP99;
  double target = 0.0;
};

/// A parsed `--slo=` spec: comma-separated clauses.
///   p99<=50ms | p99<=2.5s | p99<=800us   latency p99 objective
///   miss<=0.01                           deadline-miss rate
///   reject<=0.05                         reject rate
///   hit>=0.9                             warm-cache hit rate
///   fast=N / slow=N                      burn-rate windows (samples)
///   burn=X                               burn-rate alert threshold
/// Unknown or malformed clauses raise gs::Error.
struct SloSpec {
  std::vector<SloObjective> objectives;
  std::size_t fast_window = 4;
  std::size_t slow_window = 16;
  double burn_threshold = 1.0;

  [[nodiscard]] static SloSpec parse(std::string_view spec);
};

/// End-of-run verdict for one objective, ranked by budget consumption.
struct SloAttainment {
  std::string name;
  double target = 0.0;
  double observed = 0.0;       ///< overall p99 / rate over the whole run
  double attainment = 1.0;     ///< 1 - overall bad fraction
  double budget_consumed = 0.0;///< bad fraction / error budget (>1 = blown)
  double headroom = 0.0;       ///< (target-observed)/target, latency only
  std::uint64_t alerts_fired = 0;
  bool firing = false;         ///< alert still firing at end of run
  bool violated = false;       ///< budget_consumed > 1
};

/// A firing/resolved edge on the sample clock.
struct SloTransition {
  std::string objective;
  bool firing = false;
  double t = 0.0;
};

class SloEngine {
 public:
  explicit SloEngine(SloSpec spec);

  /// Judge one sample against every objective; returns the alert edges
  /// (usually empty) so the caller can record them as timestamped events.
  [[nodiscard]] std::vector<SloTransition> observe(const ServiceSample& s);

  /// End-of-run verdicts, sorted by budget_consumed descending (the
  /// objective closest to — or past — violation first).
  [[nodiscard]] std::vector<SloAttainment> attainment() const;

  /// True when any objective has blown its error budget.
  [[nodiscard]] bool violated() const;

  [[nodiscard]] const SloSpec& spec() const noexcept { return spec_; }

 private:
  struct BadTotal {
    std::uint64_t bad = 0;
    std::uint64_t total = 0;
  };
  struct State {
    std::deque<BadTotal> window;  ///< last slow_window samples
    std::uint64_t bad_sum = 0;    ///< running totals over the whole run
    std::uint64_t total_sum = 0;
    // Whole-run latency aggregate for the overall p99 verdict.
    std::vector<std::uint64_t> latency_counts;
    double latency_min = 0.0;
    double latency_max = 0.0;
    bool latency_seen = false;
    std::uint64_t alerts_fired = 0;
    bool firing = false;
  };

  [[nodiscard]] double error_budget(const SloObjective& o) const;
  [[nodiscard]] static BadTotal judge(const SloObjective& o,
                                      const ServiceSample& s);
  [[nodiscard]] double window_burn(const State& st, std::size_t window,
                                   double budget) const;

  SloSpec spec_;
  std::vector<State> states_;  ///< parallel to spec_.objectives
};

}  // namespace gs::telemetry
