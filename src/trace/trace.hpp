// Solver observability core: the event model and the TraceSink interface.
//
// Everything the engines and the vgpu substrate know how to report — kernel
// launches, PCIe copies, per-iteration algorithm phases, scalar counters —
// is expressed as a TraceEvent and pushed into a user-supplied TraceSink.
// The event vocabulary deliberately mirrors the Chrome trace-event format
// (phase letters B/E/X/C/i/M) so the chrome_sink can serialize events
// one-to-one; other sinks (the ring buffer used by tests) are free to
// interpret them differently.
//
// Timestamps are *simulated* seconds on the emitting machine's clock (the
// device's roofline clock for vgpu engines, the CostMeter clock for host
// engines), measured from the start of the solve. Durations use the same
// unit. This makes span totals exactly reconcilable with the end-of-solve
// DeviceStats aggregates — see OBSERVABILITY.md for the invariants.
//
// Cost discipline: tracing is OFF unless a sink is attached, and the
// disabled path is a single pointer test (Track::enabled()) with no
// allocation, no string formatting and no virtual call. Engines must never
// construct TraceEvent objects on the disabled path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gs::trace {

/// Event kind. Values are the Chrome trace-event phase letters.
enum class EventPhase : char {
  kBegin = 'B',     ///< open a nested span on (pid, tid) at `ts`
  kEnd = 'E',       ///< close the innermost open span on (pid, tid)
  kComplete = 'X',  ///< self-contained slice: [ts, ts + dur)
  kCounter = 'C',   ///< sampled scalar value (args carry the samples)
  kInstant = 'i',   ///< zero-duration marker
  kMetadata = 'M',  ///< process/thread naming (label carries the name)
};

[[nodiscard]] constexpr char to_char(EventPhase p) noexcept {
  return static_cast<char>(p);
}

/// One named numeric payload entry attached to an event (rendered into the
/// Chrome `args` object). All solver payloads are numeric by design.
using TraceArg = std::pair<std::string, double>;

/// A single observability event. See the header comment for the clock
/// convention; `pid`/`tid` select the timeline track the event belongs to.
struct TraceEvent {
  std::string name;      ///< kernel / span / counter name
  std::string category;  ///< taxonomy bucket: "kernel", "transfer", "op", ...
  EventPhase phase = EventPhase::kInstant;
  double ts = 0.0;   ///< sim-seconds since solve start
  double dur = 0.0;  ///< sim-seconds; meaningful for kComplete only
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::vector<TraceArg> args;
  std::string label;  ///< kMetadata only: the process/thread display name
};

/// Receiver of trace events. Implementations must tolerate events from
/// multiple (pid, tid) tracks interleaved in emission order; within one
/// track, timestamps are non-decreasing.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(TraceEvent event) = 0;
};

// Well-known track ids used by the shipped engines (see OBSERVABILITY.md).
// pid = one virtual processor (a vgpu Device or the host CPU model);
// tid = one engine/stream timeline within it.
inline constexpr std::uint32_t kDevicePid = 1;   ///< vgpu::Device timelines
inline constexpr std::uint32_t kHostPid = 2;     ///< CostMeter (CPU) timelines
inline constexpr std::uint32_t kServicePid = 3;  ///< service request tracks
inline constexpr std::uint32_t kEngineTid = 1;   ///< default engine stream

/// A (sink, pid, tid) binding: the lightweight handle every instrumented
/// component holds. Copyable; a default-constructed Track is disabled and
/// every emit method is a no-op costing one branch.
class Track {
 public:
  Track() = default;
  Track(TraceSink* sink, std::uint32_t pid, std::uint32_t tid) noexcept
      : sink_(sink), pid_(pid), tid_(tid) {}

  [[nodiscard]] bool enabled() const noexcept { return sink_ != nullptr; }
  [[nodiscard]] TraceSink* sink() const noexcept { return sink_; }
  [[nodiscard]] std::uint32_t pid() const noexcept { return pid_; }
  [[nodiscard]] std::uint32_t tid() const noexcept { return tid_; }

  /// Open a nested span at `ts` (close with end()).
  void begin(std::string_view name, double ts, std::string_view category = {},
             std::vector<TraceArg> args = {}) const {
    if (!sink_) return;
    emit(name, category, EventPhase::kBegin, ts, 0.0, std::move(args));
  }

  /// Close the innermost open span at `ts`.
  void end(double ts) const {
    if (!sink_) return;
    emit({}, {}, EventPhase::kEnd, ts, 0.0, {});
  }

  /// Self-contained slice covering [ts, ts + dur).
  void complete(std::string_view name, double ts, double dur,
                std::string_view category = {},
                std::vector<TraceArg> args = {}) const {
    if (!sink_) return;
    emit(name, category, EventPhase::kComplete, ts, dur, std::move(args));
  }

  /// Sampled scalar series (one point per call).
  void counter(std::string_view name, double ts, double value) const {
    if (!sink_) return;
    emit(name, {}, EventPhase::kCounter, ts, 0.0,
         {{std::string(name), value}});
  }

  /// Zero-duration marker.
  void instant(std::string_view name, double ts,
               std::string_view category = {}) const {
    if (!sink_) return;
    emit(name, category, EventPhase::kInstant, ts, 0.0, {});
  }

  /// Name this track's process (rendered as the Chrome pid label).
  void name_process(std::string_view label) const {
    if (!sink_) return;
    TraceEvent e;
    e.name = "process_name";
    e.phase = EventPhase::kMetadata;
    e.pid = pid_;
    e.tid = tid_;
    e.label = label;
    sink_->emit(std::move(e));
  }

  /// Name this track's thread (rendered as the Chrome tid label).
  void name_thread(std::string_view label) const {
    if (!sink_) return;
    TraceEvent e;
    e.name = "thread_name";
    e.phase = EventPhase::kMetadata;
    e.pid = pid_;
    e.tid = tid_;
    e.label = label;
    sink_->emit(std::move(e));
  }

 private:
  void emit(std::string_view name, std::string_view category, EventPhase phase,
            double ts, double dur, std::vector<TraceArg> args) const {
    TraceEvent e;
    e.name = name;
    e.category = category;
    e.phase = phase;
    e.ts = ts;
    e.dur = dur;
    e.pid = pid_;
    e.tid = tid_;
    e.args = std::move(args);
    sink_->emit(std::move(e));
  }

  TraceSink* sink_ = nullptr;
  std::uint32_t pid_ = 0;
  std::uint32_t tid_ = 0;
};

/// RAII span: begin() on construction, end() on destruction, with the
/// timestamp read from a caller-supplied clock (so engines time spans on
/// their simulated clock, not wall time). Zero-cost when the track is
/// disabled: the clock is never invoked.
template <typename Clock>
class ScopedSpan {
 public:
  ScopedSpan(const Track& track, std::string_view name, Clock clock,
             std::string_view category = {}, std::vector<TraceArg> args = {})
      : track_(track), clock_(std::move(clock)) {
    if (track_.enabled()) {
      track_.begin(name, clock_(), category, std::move(args));
    }
  }
  ~ScopedSpan() {
    if (track_.enabled()) track_.end(clock_());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const Track& track_;
  Clock clock_;
};

template <typename Clock>
ScopedSpan(const Track&, std::string_view, Clock) -> ScopedSpan<Clock>;

}  // namespace gs::trace
