// In-memory ring-buffer sink: bounded storage, newest events win.
//
// The test/assert sink. Keeps the last `capacity` events verbatim plus a
// total count, so assertions can check both "what happened recently" and
// "how much happened overall" without unbounded memory on long solves.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/trace.hpp"

namespace gs::trace {

class RingBufferSink : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 1 << 16)
      : capacity_(capacity == 0 ? 1 : capacity) {
    buffer_.reserve(capacity_ < 1024 ? capacity_ : 1024);
  }

  void emit(TraceEvent event) override {
    if (buffer_.size() < capacity_) {
      buffer_.push_back(std::move(event));
    } else {
      buffer_[head_] = std::move(event);
      head_ = (head_ + 1) % capacity_;
    }
    ++total_;
  }

  /// Events ever emitted (including ones the ring has since overwritten).
  [[nodiscard]] std::size_t total_events() const noexcept { return total_; }

  /// Events lost to capacity: total_events() - events().size().
  [[nodiscard]] std::size_t dropped() const noexcept {
    return total_ - buffer_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    out.reserve(buffer_.size());
    for (std::size_t k = 0; k < buffer_.size(); ++k) {
      out.push_back(buffer_[(head_ + k) % buffer_.size()]);
    }
    return out;
  }

  void clear() {
    buffer_.clear();
    head_ = 0;
    total_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> buffer_;
  std::size_t head_ = 0;  ///< index of the oldest event once the ring is full
  std::size_t total_ = 0;
};

}  // namespace gs::trace
