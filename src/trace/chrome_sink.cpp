#include "trace/chrome_sink.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "support/error.hpp"

namespace gs::trace {

namespace {

/// Shortest round-trippable decimal for a double (JSON has no NaN/Inf;
/// solver timestamps are always finite by construction).
void write_double(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

constexpr double kMicro = 1e6;  ///< sim-seconds -> trace microseconds

void write_event(std::ostream& os, const TraceEvent& e) {
  os << "{\"name\":";
  write_escaped(os, e.name);
  os << ",\"ph\":\"" << to_char(e.phase) << "\"";
  if (!e.category.empty()) {
    os << ",\"cat\":";
    write_escaped(os, e.category);
  }
  os << ",\"ts\":";
  write_double(os, e.ts * kMicro);
  if (e.phase == EventPhase::kComplete) {
    os << ",\"dur\":";
    write_double(os, e.dur * kMicro);
  }
  if (e.phase == EventPhase::kInstant) os << ",\"s\":\"t\"";
  os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
  if (e.phase == EventPhase::kMetadata) {
    os << ",\"args\":{\"name\":";
    write_escaped(os, e.label);
    os << "}";
  } else if (!e.args.empty()) {
    os << ",\"args\":{";
    for (std::size_t k = 0; k < e.args.size(); ++k) {
      if (k > 0) os << ",";
      write_escaped(os, e.args[k].first);
      os << ":";
      write_double(os, e.args[k].second);
    }
    os << "}";
  }
  os << "}";
}

}  // namespace

void ChromeTraceSink::write(std::ostream& os) const {
  // Metadata first, then timeline events in non-decreasing ts order.
  // Stable sort preserves emission order at equal timestamps, which keeps
  // B-before-contained-X-before-E correct (spans open before the work they
  // enclose and the simulated clock never runs backwards).
  std::vector<const TraceEvent*> meta, timeline;
  meta.reserve(8);
  timeline.reserve(events_.size());
  for (const TraceEvent& e : events_) {
    (e.phase == EventPhase::kMetadata ? meta : timeline).push_back(&e);
  }
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->ts < b->ts;
                   });

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent* e : meta) {
    if (!first) os << ",";
    first = false;
    os << "\n";
    write_event(os, *e);
  }
  for (const TraceEvent* e : timeline) {
    if (!first) os << ",";
    first = false;
    os << "\n";
    write_event(os, *e);
  }
  os << "\n]}\n";
}

void ChromeTraceSink::write_file(const std::string& path) const {
  std::ofstream out(path);
  GS_CHECK_MSG(out.good(), "cannot open trace file for writing: " + path);
  write(out);
  out.flush();
  GS_CHECK_MSG(out.good(), "failed writing trace file: " + path);
}

double ChromeTraceSink::category_seconds(std::string_view category) const {
  double total = 0.0;
  for (const TraceEvent& e : events_) {
    if (e.phase == EventPhase::kComplete && e.category == category) {
      total += e.dur;
    }
  }
  return total;
}

}  // namespace gs::trace
