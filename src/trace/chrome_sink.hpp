// Chrome trace-event exporter: collects events, serializes chrome://tracing
// JSON (also readable by Perfetto's https://ui.perfetto.dev).
//
// Layout convention (what you see when you load a file): one Chrome
// *process* per modelled machine (the vgpu device, the host CPU model),
// one *thread* per engine stream. Kernel launches and PCIe copies are
// complete ("X") slices that tile the simulated clock exactly; algorithm
// phases (iteration, price, ftran, ...) are B/E spans enclosing them; the
// objective is a counter track. Timestamps are sim-microseconds.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace gs::trace {

class ChromeTraceSink : public TraceSink {
 public:
  void emit(TraceEvent event) override { events_.push_back(std::move(event)); }

  /// All collected events, in emission order.
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  void clear() { events_.clear(); }

  /// Serialize the collected events as a Chrome trace JSON object.
  /// Metadata (process/thread names) is written first; timeline events
  /// follow in globally non-decreasing timestamp order (stable across
  /// tracks), which chrome://tracing does not require but tooling that
  /// streams the file does.
  void write(std::ostream& os) const;

  /// write() to a file; throws gs::Error if the file cannot be written.
  void write_file(const std::string& path) const;

  /// Sum of complete-slice durations in `category` (sim-seconds), e.g.
  /// "kernel" or "transfer". This is the reconciliation hook against
  /// DeviceStats: kernel slices sum to DeviceStats::kernel_seconds
  /// bit-exactly (both sides accumulate the same doubles in the same
  /// order); transfer slices sum to DeviceStats::transfer_seconds up to
  /// summation reassociation (h2d/d2h interleave here but accumulate in
  /// separate stats fields), a few ulp at most.
  [[nodiscard]] double category_seconds(std::string_view category) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace gs::trace
