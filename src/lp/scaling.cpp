#include "lp/scaling.hpp"

#include <cmath>

namespace gs::lp {

std::vector<double> ScalingInfo::unscale_point(
    std::span<const double> y_scaled) const {
  std::vector<double> y(y_scaled.begin(), y_scaled.end());
  if (!col_scale.empty()) {
    GS_CHECK_MSG(col_scale.size() == y.size(), "unscale dimension mismatch");
    for (std::size_t j = 0; j < y.size(); ++j) y[j] *= col_scale[j];
  }
  return y;
}

ScalingInfo scale_pow10(StandardFormLp& lp) {
  double min_abs = std::numeric_limits<double>::infinity();
  double max_abs = 0.0;
  for (const auto& row : lp.rows) {
    for (const Term& t : row) {
      const double a = std::abs(t.coef);
      if (a == 0.0) continue;
      min_abs = std::min(min_abs, a);
      max_abs = std::max(max_abs, a);
    }
  }
  ScalingInfo info;
  info.row_scale.assign(lp.num_rows(), 1.0);
  info.col_scale.assign(lp.num_cols(), 1.0);
  if (max_abs == 0.0) return info;  // empty matrix: nothing to scale
  const double mean_order = 0.5 * (std::log10(min_abs) + std::log10(max_abs));
  const int r = static_cast<int>(std::lround(mean_order));
  if (r == 0) return info;
  const double s = std::pow(10.0, -r);
  // Multiplying every row of [A | b] by s leaves the feasible set unchanged,
  // so the point needs no unscaling; scaling c by s scales the objective.
  for (auto& row : lp.rows) {
    for (Term& t : row) t.coef *= s;
  }
  for (double& bi : lp.b) bi *= s;
  for (double& cj : lp.c) cj *= s;
  for (double& rs : info.row_scale) rs = s;
  info.objective_scale = s;
  return info;
}

ScalingInfo scale_geometric(StandardFormLp& lp) {
  ScalingInfo info;
  info.row_scale.assign(lp.num_rows(), 1.0);
  info.col_scale.assign(lp.num_cols(), 1.0);

  // Row pass: divide each row (and its rhs) by the geometric mean of its
  // nonzero magnitudes. Pure row scaling keeps the feasible set unchanged.
  for (std::size_t i = 0; i < lp.num_rows(); ++i) {
    double log_sum = 0.0;
    std::size_t count = 0;
    for (const Term& t : lp.rows[i]) {
      if (t.coef != 0.0) {
        log_sum += std::log(std::abs(t.coef));
        ++count;
      }
    }
    if (count == 0) continue;
    const double g = std::exp(log_sum / static_cast<double>(count));
    if (g <= 0.0 || !std::isfinite(g)) continue;
    const double s = 1.0 / g;
    for (Term& t : lp.rows[i]) t.coef *= s;
    lp.b[i] *= s;
    info.row_scale[i] = s;
  }

  // Column pass: divide each column by its geometric mean; this substitutes
  // y_j = y'_j / s_j, so the recovered point must be multiplied back.
  std::vector<double> col_log(lp.num_cols(), 0.0);
  std::vector<std::size_t> col_cnt(lp.num_cols(), 0);
  for (const auto& row : lp.rows) {
    for (const Term& t : row) {
      if (t.coef != 0.0) {
        col_log[t.var] += std::log(std::abs(t.coef));
        ++col_cnt[t.var];
      }
    }
  }
  std::vector<double> col_s(lp.num_cols(), 1.0);
  for (std::size_t j = 0; j < lp.num_cols(); ++j) {
    if (col_cnt[j] == 0) continue;
    const double g = std::exp(col_log[j] / static_cast<double>(col_cnt[j]));
    if (g <= 0.0 || !std::isfinite(g)) continue;
    col_s[j] = 1.0 / g;
  }
  for (auto& row : lp.rows) {
    for (Term& t : row) t.coef *= col_s[t.var];
  }
  for (std::size_t j = 0; j < lp.num_cols(); ++j) {
    lp.c[j] *= col_s[j];
    info.col_scale[j] = col_s[j];
  }
  return info;
}

}  // namespace gs::lp
