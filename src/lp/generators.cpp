#include "lp/generators.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace gs::lp {

LpProblem random_dense_lp(const DenseLpSpec& spec) {
  GS_CHECK_MSG(spec.rows > 0 && spec.cols > 0, "empty dense LP spec");
  GS_CHECK_MSG(spec.coef_lo > 0.0 && spec.coef_hi > spec.coef_lo,
               "dense LP coefficients must be positive");
  GS_CHECK_MSG(spec.cost_hi <= 0.0, "dense LP costs must be non-positive");
  Xoshiro256 rng(spec.seed);
  LpProblem problem(Objective::kMinimize,
                    "dense_" + std::to_string(spec.rows) + "x" +
                        std::to_string(spec.cols) + "_s" +
                        std::to_string(spec.seed));
  for (std::size_t j = 0; j < spec.cols; ++j) {
    problem.add_variable("x" + std::to_string(j),
                         rng.uniform(spec.cost_lo, spec.cost_hi));
  }
  for (std::size_t i = 0; i < spec.rows; ++i) {
    std::vector<Term> terms;
    terms.reserve(spec.cols);
    double row_sum = 0.0;
    for (std::size_t j = 0; j < spec.cols; ++j) {
      const double a = rng.uniform(spec.coef_lo, spec.coef_hi);
      terms.push_back({static_cast<std::uint32_t>(j), a});
      row_sum += a;
    }
    const double rhs =
        rng.uniform(spec.rhs_fraction_lo, spec.rhs_fraction_hi) * row_sum;
    problem.add_constraint("r" + std::to_string(i), std::move(terms),
                           RowSense::kLe, rhs);
  }
  return problem;
}

LpProblem random_sparse_lp(const SparseLpSpec& spec) {
  GS_CHECK_MSG(spec.rows > 0 && spec.cols > 0, "empty sparse LP spec");
  GS_CHECK_MSG(spec.density > 0.0 && spec.density <= 1.0,
               "density must be in (0, 1]");
  Xoshiro256 rng(spec.seed);
  LpProblem problem(Objective::kMinimize,
                    "sparse_" + std::to_string(spec.rows) + "x" +
                        std::to_string(spec.cols) + "_d" +
                        std::to_string(spec.density) + "_s" +
                        std::to_string(spec.seed));
  for (std::size_t j = 0; j < spec.cols; ++j) {
    problem.add_variable("x" + std::to_string(j),
                         rng.uniform(spec.cost_lo, spec.cost_hi));
  }
  const auto row_nnz_target = static_cast<std::size_t>(
      std::max(1.0, spec.density * static_cast<double>(spec.cols)));
  // Draw the sparsity pattern first so every column can be covered: a
  // column appearing in no row would make the LP unbounded (its cost is
  // negative and nothing constrains it).
  std::vector<std::vector<std::uint32_t>> pattern(spec.rows);
  std::vector<bool> used(spec.cols);
  for (std::size_t i = 0; i < spec.rows; ++i) {
    std::fill(used.begin(), used.end(), false);
    for (std::size_t k = 0; k < row_nnz_target; ++k) {
      auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(spec.cols) - 1));
      if (used[j]) continue;  // collisions thin the row slightly; acceptable
      used[j] = true;
      pattern[i].push_back(static_cast<std::uint32_t>(j));
    }
  }
  std::vector<bool> covered(spec.cols, false);
  for (const auto& row : pattern) {
    for (std::uint32_t j : row) covered[j] = true;
  }
  for (std::size_t j = 0; j < spec.cols; ++j) {
    if (!covered[j]) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(spec.rows) - 1));
      pattern[i].push_back(static_cast<std::uint32_t>(j));
    }
  }
  for (std::size_t i = 0; i < spec.rows; ++i) {
    std::vector<Term> terms;
    terms.reserve(pattern[i].size());
    double row_sum = 0.0;
    for (std::uint32_t j : pattern[i]) {
      const double a = rng.uniform(spec.coef_lo, spec.coef_hi);
      terms.push_back({j, a});
      row_sum += a;
    }
    const double rhs = rng.uniform(0.3, 0.9) * row_sum;
    problem.add_constraint("r" + std::to_string(i), std::move(terms),
                           RowSense::kLe, rhs);
  }
  return problem;
}

LpProblem klee_minty(std::size_t d) {
  GS_CHECK_MSG(d >= 1 && d <= 20, "klee_minty dimension out of range");
  LpProblem problem(Objective::kMaximize, "klee_minty_" + std::to_string(d));
  for (std::size_t j = 1; j <= d; ++j) {
    problem.add_variable("x" + std::to_string(j),
                         std::pow(2.0, static_cast<double>(d - j)));
  }
  for (std::size_t i = 1; i <= d; ++i) {
    std::vector<Term> terms;
    for (std::size_t j = 1; j < i; ++j) {
      terms.push_back({static_cast<std::uint32_t>(j - 1),
                       std::pow(2.0, static_cast<double>(i - j + 1))});
    }
    terms.push_back({static_cast<std::uint32_t>(i - 1), 1.0});
    problem.add_constraint("km" + std::to_string(i), std::move(terms),
                           RowSense::kLe,
                           std::pow(5.0, static_cast<double>(i)));
  }
  return problem;
}

LpProblem beale_cycling() {
  LpProblem problem(Objective::kMinimize, "beale");
  const auto x1 = problem.add_variable("x1", -0.75);
  const auto x2 = problem.add_variable("x2", 150.0);
  const auto x3 = problem.add_variable("x3", -0.02);
  const auto x4 = problem.add_variable("x4", 6.0);
  problem.add_constraint(
      "b1", {{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}}, RowSense::kLe,
      0.0);
  problem.add_constraint(
      "b2", {{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}}, RowSense::kLe,
      0.0);
  problem.add_constraint("b3", {{x3, 1.0}}, RowSense::kLe, 1.0);
  return problem;
}

LpProblem transportation(std::size_t suppliers, std::size_t consumers,
                         std::uint64_t seed) {
  GS_CHECK_MSG(suppliers > 0 && consumers > 0, "empty transportation spec");
  Xoshiro256 rng(seed);
  // Integral supplies; demands drawn then rebalanced so totals match.
  std::vector<double> supply(suppliers), demand(consumers);
  double total = 0.0;
  for (double& s : supply) {
    s = static_cast<double>(rng.uniform_int(10, 50));
    total += s;
  }
  double dem_total = 0.0;
  for (std::size_t j = 0; j + 1 < consumers; ++j) {
    const double cap = total - dem_total - static_cast<double>(consumers - j - 1);
    const double d = std::min(
        cap, static_cast<double>(rng.uniform_int(
                 1, std::max<std::int64_t>(
                        1, static_cast<std::int64_t>(2 * total /
                                                     static_cast<double>(consumers))))));
    demand[j] = std::max(1.0, d);
    dem_total += demand[j];
  }
  demand[consumers - 1] = total - dem_total;
  GS_CHECK_MSG(demand[consumers - 1] >= 0.0, "transportation imbalance");

  LpProblem problem(Objective::kMinimize,
                    "transport_" + std::to_string(suppliers) + "x" +
                        std::to_string(consumers));
  for (std::size_t i = 0; i < suppliers; ++i) {
    for (std::size_t j = 0; j < consumers; ++j) {
      problem.add_variable(
          "t_" + std::to_string(i) + "_" + std::to_string(j),
          static_cast<double>(rng.uniform_int(1, 10)));
    }
  }
  const auto var = [&](std::size_t i, std::size_t j) {
    return static_cast<std::uint32_t>(i * consumers + j);
  };
  for (std::size_t i = 0; i < suppliers; ++i) {
    std::vector<Term> terms;
    for (std::size_t j = 0; j < consumers; ++j) terms.push_back({var(i, j), 1.0});
    problem.add_constraint("supply_" + std::to_string(i), std::move(terms),
                           RowSense::kEq, supply[i]);
  }
  for (std::size_t j = 0; j < consumers; ++j) {
    std::vector<Term> terms;
    for (std::size_t i = 0; i < suppliers; ++i) terms.push_back({var(i, j), 1.0});
    problem.add_constraint("demand_" + std::to_string(j), std::move(terms),
                           RowSense::kEq, demand[j]);
  }
  return problem;
}

LpProblem infeasible_example() {
  LpProblem problem(Objective::kMinimize, "infeasible");
  const auto x = problem.add_variable("x", 1.0);
  problem.add_constraint("c1", {{x, 1.0}}, RowSense::kLe, 1.0);
  problem.add_constraint("c2", {{x, 1.0}}, RowSense::kGe, 2.0);
  return problem;
}

LpProblem unbounded_example() {
  LpProblem problem(Objective::kMinimize, "unbounded");
  const auto x = problem.add_variable("x", -1.0);
  const auto y = problem.add_variable("y", 0.0);
  problem.add_constraint("c1", {{x, -1.0}, {y, 1.0}}, RowSense::kLe, 1.0);
  return problem;
}

}  // namespace gs::lp
