#include "lp/lp_text.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "support/strings.hpp"

namespace gs::lp {

namespace {

/// Incremental builder that creates variables on first use. Bounds and
/// objective coefficients are collected separately and applied by a final
/// rebuild (LpProblem is append-only).
class Builder {
 public:
  explicit Builder(Objective objective) : problem_(objective) {}

  std::uint32_t var(const std::string& name) {
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    const std::uint32_t j = problem_.add_variable(name);
    index_.emplace(name, j);
    return j;
  }

  LpProblem& problem() { return problem_; }

 private:
  LpProblem problem_;
  std::map<std::string, std::uint32_t> index_;
};

bool is_ident_char(char ch) {
  return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
         ch == '.';
}

bool is_ident_start(char ch) {
  return std::isalpha(static_cast<unsigned char>(ch)) || ch == '_';
}

/// Parse `[sign] [coef] [*] var` terms of a linear expression.
std::vector<std::pair<std::string, double>> parse_expression(
    std::string_view expr) {
  std::vector<std::pair<std::string, double>> terms;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < expr.size() && std::isspace(static_cast<unsigned char>(expr[i])))
      ++i;
  };
  skip_ws();
  bool first = true;
  while (i < expr.size()) {
    double sign = 1.0;
    if (expr[i] == '+' || expr[i] == '-') {
      sign = expr[i] == '-' ? -1.0 : 1.0;
      ++i;
      skip_ws();
    } else {
      GS_CHECK_MSG(first, "expected '+' or '-' between terms in '" +
                              std::string(expr) + "'");
    }
    first = false;
    // Optional numeric coefficient.
    double coef = 1.0;
    if (i < expr.size() &&
        (std::isdigit(static_cast<unsigned char>(expr[i])) || expr[i] == '.')) {
      std::size_t start = i;
      while (i < expr.size() &&
             (std::isdigit(static_cast<unsigned char>(expr[i])) ||
              expr[i] == '.' || expr[i] == 'e' || expr[i] == 'E' ||
              ((expr[i] == '+' || expr[i] == '-') && i > start &&
               (expr[i - 1] == 'e' || expr[i - 1] == 'E')))) {
        ++i;
      }
      coef = parse_double(expr.substr(start, i - start));
      skip_ws();
      if (i < expr.size() && expr[i] == '*') {
        ++i;
        skip_ws();
      }
    }
    GS_CHECK_MSG(i < expr.size() && is_ident_start(expr[i]),
                 "expected variable name in '" + std::string(expr) + "'");
    std::size_t start = i;
    while (i < expr.size() && is_ident_char(expr[i])) ++i;
    terms.emplace_back(std::string(expr.substr(start, i - start)), sign * coef);
    skip_ws();
  }
  GS_CHECK_MSG(!terms.empty(), "empty expression");
  return terms;
}

/// Parse one bounds statement into (name, lower, upper).
void parse_bound(std::string_view stmt,
                 std::map<std::string, std::pair<double, double>>& bounds) {
  const std::string s{trim(stmt)};
  // `x free`
  {
    const auto tokens = split_ws(s);
    if (tokens.size() == 2 && to_lower(tokens[1]) == "free") {
      bounds[tokens[0]] = {-kInf, kInf};
      return;
    }
  }
  // Forms: `a <= x <= b`, `x <= b`, `x >= a`, `x = a`.
  const auto find_op = [&](std::size_t from) -> std::size_t {
    for (std::size_t i = from; i < s.size(); ++i) {
      if (s[i] == '<' || s[i] == '>' || s[i] == '=') return i;
    }
    return std::string::npos;
  };
  const std::size_t op1 = find_op(0);
  GS_CHECK_MSG(op1 != std::string::npos, "malformed bound: '" + s + "'");
  const auto op_len = [&](std::size_t pos) {
    return (pos + 1 < s.size() && s[pos + 1] == '=') ? std::size_t{2}
                                                     : std::size_t{1};
  };
  const std::size_t len1 = op_len(op1);
  const std::size_t op2 = find_op(op1 + len1);
  if (op2 != std::string::npos) {
    // a <= x <= b
    const double lo = parse_double(s.substr(0, op1));
    const std::string name{trim(std::string_view(s).substr(
        op1 + len1, op2 - op1 - len1))};
    const double hi = parse_double(s.substr(op2 + op_len(op2)));
    GS_CHECK_MSG(s[op1] == '<' && s[op2] == '<',
                 "double bound must use '<=': '" + s + "'");
    bounds[name] = {lo, hi};
    return;
  }
  const std::string lhs{trim(std::string_view(s).substr(0, op1))};
  const double value = parse_double(s.substr(op1 + len1));
  auto& entry = bounds.try_emplace(lhs, 0.0, kInf).first->second;
  if (s[op1] == '<') {
    entry.second = value;
    // Standard LP-format semantics: a negative sole upper bound implies the
    // default lower bound of 0 is dropped.
    if (value < 0.0) entry.first = -kInf;
  } else if (s[op1] == '>') {
    entry.first = value;
  } else {
    entry = {value, value};
  }
}

}  // namespace

LpProblem read_lp_text(std::string_view text) {
  // Strip comments, then split statements on ';' and the 'bounds:' marker.
  std::string cleaned;
  cleaned.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '#') {
      while (i < text.size() && text[i] != '\n') ++i;
    }
    if (i < text.size()) cleaned.push_back(text[i]);
  }

  std::vector<std::string> statements;
  for (auto& stmt : split(cleaned, ';')) {
    const auto t = trim(stmt);
    if (!t.empty()) statements.emplace_back(t);
  }
  GS_CHECK_MSG(!statements.empty(), "empty LP text");

  // Objective statement.
  std::string first = statements.front();
  const std::string lowered = to_lower(first);
  Objective objective;
  std::size_t obj_prefix;
  if (starts_with(lowered, "min:")) {
    objective = Objective::kMinimize;
    obj_prefix = 4;
  } else if (starts_with(lowered, "max:")) {
    objective = Objective::kMaximize;
    obj_prefix = 4;
  } else {
    GS_FAIL("LP text must start with 'min:' or 'max:'");
  }

  Builder builder(objective);
  std::map<std::string, std::pair<double, double>> bounds;
  std::map<std::string, double> objective_coefs;
  for (auto& [name, coef] : parse_expression(
           std::string_view(first).substr(obj_prefix))) {
    builder.var(name);
    objective_coefs[name] += coef;
  }

  bool in_bounds = false;
  std::size_t anon_row = 0;
  for (std::size_t s = 1; s < statements.size(); ++s) {
    std::string stmt = statements[s];
    // A `bounds:` marker may be fused to the first bound statement.
    if (starts_with(to_lower(stmt), "bounds:")) {
      in_bounds = true;
      stmt = std::string(trim(std::string_view(stmt).substr(7)));
      if (stmt.empty()) continue;
    }
    if (in_bounds) {
      parse_bound(stmt, bounds);
      continue;
    }
    // Optional `name:` prefix — a colon before any comparison operator.
    std::string row_name;
    const std::size_t colon = stmt.find(':');
    const std::size_t cmp = stmt.find_first_of("<>=");
    if (colon != std::string::npos && (cmp == std::string::npos || colon < cmp)) {
      row_name = std::string(trim(std::string_view(stmt).substr(0, colon)));
      // Build the tail into a fresh string before replacing stmt (the view
      // aliases stmt's buffer).
      std::string tail{trim(std::string_view(stmt).substr(colon + 1))};
      stmt.swap(tail);
    } else {
      row_name = "r" + std::to_string(anon_row);
    }
    ++anon_row;
    GS_CHECK_MSG(cmp != std::string::npos,
                 "constraint missing comparison: '" + statements[s] + "'");
    const std::size_t op = stmt.find_first_of("<>=");
    GS_CHECK_MSG(op != std::string::npos, "constraint missing comparison");
    RowSense sense;
    std::size_t op_len = 1;
    if (stmt[op] == '<') {
      sense = RowSense::kLe;
    } else if (stmt[op] == '>') {
      sense = RowSense::kGe;
    } else {
      sense = RowSense::kEq;
    }
    if (op + 1 < stmt.size() && stmt[op + 1] == '=') op_len = 2;
    const auto lhs = parse_expression(std::string_view(stmt).substr(0, op));
    const double rhs = parse_double(stmt.substr(op + op_len));
    std::vector<Term> terms;
    terms.reserve(lhs.size());
    for (const auto& [name, coef] : lhs) {
      terms.push_back({builder.var(name), coef});
    }
    builder.problem().add_constraint(row_name, std::move(terms), sense, rhs);
  }

  // Rebuild with objective coefficients and bounds applied.
  LpProblem& parsed = builder.problem();
  LpProblem out(objective);
  for (std::size_t j = 0; j < parsed.num_variables(); ++j) {
    const Variable& v = parsed.variable(j);
    double lo = v.lower;
    double hi = v.upper;
    if (auto it = bounds.find(v.name); it != bounds.end()) {
      lo = it->second.first;
      hi = it->second.second;
    }
    double coef = 0.0;
    if (auto it = objective_coefs.find(v.name); it != objective_coefs.end()) {
      coef = it->second;
    }
    out.add_variable(v.name, coef, lo, hi);
  }
  for (std::size_t i = 0; i < parsed.num_constraints(); ++i) {
    const Constraint& c = parsed.constraint(i);
    out.add_constraint(c.name, c.terms, c.sense, c.rhs);
  }
  return out;
}

LpProblem read_lp_file(const std::string& path) {
  std::ifstream in(path);
  GS_CHECK_MSG(in.good(), "cannot open LP file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return read_lp_text(buf.str());
}

std::string write_lp_text(const LpProblem& problem) {
  std::ostringstream os;
  const auto emit_terms = [&](const std::vector<Term>& terms) {
    bool first = true;
    for (const Term& t : terms) {
      const double coef = t.coef;
      if (coef == 0.0) continue;
      const double mag = std::abs(coef);
      if (first) {
        if (coef < 0) os << "-";
      } else {
        os << (coef < 0 ? " - " : " + ");
      }
      if (mag != 1.0) os << format_double(mag, 17) << " ";
      os << problem.variable(t.var).name;
      first = false;
    }
    if (first) os << "0 " << problem.variable(0).name;  // empty expression
  };

  os << (problem.objective() == Objective::kMinimize ? "min:" : "max:") << " ";
  std::vector<Term> obj;
  for (std::uint32_t j = 0; j < problem.num_variables(); ++j) {
    obj.push_back({j, problem.variable(j).objective_coef});
  }
  emit_terms(obj);
  os << ";\n";
  for (std::size_t i = 0; i < problem.num_constraints(); ++i) {
    const Constraint& c = problem.constraint(i);
    os << c.name << ": ";
    emit_terms(c.terms);
    switch (c.sense) {
      case RowSense::kLe: os << " <= "; break;
      case RowSense::kGe: os << " >= "; break;
      case RowSense::kEq: os << " = "; break;
    }
    os << format_double(c.rhs, 17) << ";\n";
  }
  os << "bounds:\n";
  for (std::size_t j = 0; j < problem.num_variables(); ++j) {
    const Variable& v = problem.variable(j);
    if (v.lower == 0.0 && v.upper == kInf) continue;  // default
    os << "  ";
    if (!std::isfinite(v.lower) && !std::isfinite(v.upper)) {
      os << v.name << " free;\n";
    } else if (std::isfinite(v.lower) && std::isfinite(v.upper)) {
      os << format_double(v.lower, 17) << " <= " << v.name << " <= "
         << format_double(v.upper, 17) << ";\n";
    } else if (std::isfinite(v.lower)) {
      os << v.name << " >= " << format_double(v.lower, 17) << ";\n";
    } else {
      os << v.name << " <= " << format_double(v.upper, 17) << ";\n";
    }
  }
  return os.str();
}

}  // namespace gs::lp
