#include "lp/problem.hpp"

#include <cmath>

namespace gs::lp {

std::uint32_t LpProblem::add_variable(std::string name, double objective_coef,
                                      double lower, double upper) {
  GS_CHECK_MSG(lower <= upper, "variable '" + name + "' has empty bound range");
  GS_CHECK_MSG(!std::isnan(objective_coef), "objective coefficient is NaN");
  variables_.push_back(
      Variable{std::move(name), objective_coef, lower, upper});
  return static_cast<std::uint32_t>(variables_.size() - 1);
}

std::uint32_t LpProblem::add_constraint(std::string name,
                                        std::vector<Term> terms,
                                        RowSense sense, double rhs) {
  for (const Term& t : terms) {
    GS_CHECK_MSG(t.var < variables_.size(),
                 "constraint '" + name + "' references unknown variable");
    GS_CHECK_MSG(!std::isnan(t.coef), "constraint coefficient is NaN");
  }
  GS_CHECK_MSG(!std::isnan(rhs), "constraint rhs is NaN");
  constraints_.push_back(Constraint{std::move(name), std::move(terms), sense, rhs});
  return static_cast<std::uint32_t>(constraints_.size() - 1);
}

std::size_t LpProblem::num_nonzeros() const noexcept {
  std::size_t count = 0;
  for (const auto& con : constraints_) {
    for (const Term& t : con.terms) {
      if (t.coef != 0.0) ++count;
    }
  }
  return count;
}

std::uint32_t LpProblem::variable_index(std::string_view name) const {
  for (std::size_t j = 0; j < variables_.size(); ++j) {
    if (variables_[j].name == name) return static_cast<std::uint32_t>(j);
  }
  GS_FAIL("unknown variable: '" + std::string(name) + "'");
}

double LpProblem::objective_value(std::span<const double> x) const {
  GS_CHECK_MSG(x.size() == variables_.size(), "point dimension mismatch");
  double z = 0.0;
  for (std::size_t j = 0; j < variables_.size(); ++j) {
    z += variables_[j].objective_coef * x[j];
  }
  return z;
}

bool LpProblem::is_feasible(std::span<const double> x, double tol) const {
  if (x.size() != variables_.size()) return false;
  for (std::size_t j = 0; j < variables_.size(); ++j) {
    if (x[j] < variables_[j].lower - tol) return false;
    if (x[j] > variables_[j].upper + tol) return false;
  }
  for (const auto& con : constraints_) {
    double lhs = 0.0;
    for (const Term& t : con.terms) lhs += t.coef * x[t.var];
    // Scale the tolerance by row magnitude so large problems are judged fairly.
    double scale = std::abs(con.rhs);
    for (const Term& t : con.terms) scale = std::max(scale, std::abs(t.coef));
    const double row_tol = tol * std::max(1.0, scale);
    switch (con.sense) {
      case RowSense::kLe:
        if (lhs > con.rhs + row_tol) return false;
        break;
      case RowSense::kGe:
        if (lhs < con.rhs - row_tol) return false;
        break;
      case RowSense::kEq:
        if (std::abs(lhs - con.rhs) > row_tol) return false;
        break;
    }
  }
  return true;
}

}  // namespace gs::lp
