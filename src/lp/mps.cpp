#include "lp/mps.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "support/strings.hpp"

namespace gs::lp {

namespace {

enum class Section {
  kNone,
  kObjsense,
  kRows,
  kColumns,
  kRhs,
  kRanges,
  kBounds,
  kEnd,
};

struct RowDef {
  std::string name;
  char type = 'N';  // N, L, G, E
  std::vector<Term> terms;
  double rhs = 0.0;
  bool has_range = false;
  double range = 0.0;
};

struct BoundOverride {
  bool has_lower = false;
  bool has_upper = false;
  double lower = 0.0;
  double upper = 0.0;
};

[[noreturn]] void fail_at(std::size_t line_no, std::string_view message) {
  GS_FAIL("MPS line " + std::to_string(line_no) + ": " + std::string(message));
}

}  // namespace

LpProblem read_mps_text(std::string_view text) {
  Section section = Section::kNone;
  Objective objective = Objective::kMinimize;

  std::vector<RowDef> rows;
  std::map<std::string, std::size_t, std::less<>> row_index;
  std::string objective_row;

  // Column data: order of first appearance is preserved.
  std::vector<std::string> col_names;
  std::map<std::string, std::uint32_t, std::less<>> col_index;
  std::vector<double> col_cost;
  std::map<std::string, BoundOverride, std::less<>> bounds;

  const auto column_of = [&](const std::string& name) -> std::uint32_t {
    auto it = col_index.find(name);
    if (it != col_index.end()) return it->second;
    const auto j = static_cast<std::uint32_t>(col_names.size());
    col_names.push_back(name);
    col_cost.push_back(0.0);
    col_index.emplace(name, j);
    return j;
  };

  std::size_t line_no = 0;
  std::string line;
  std::istringstream stream{std::string(text)};
  bool saw_endata = false;
  while (std::getline(stream, line)) {
    ++line_no;
    if (!line.empty() && line[0] == '*') continue;  // comment
    const auto tokens = split_ws(line);
    if (tokens.empty()) continue;

    // Section headers start in column 1 (no leading whitespace).
    const bool is_header = !std::isspace(static_cast<unsigned char>(line[0]));
    if (is_header) {
      const std::string header = to_lower(tokens[0]);
      if (header == "name") {
        continue;  // model name token optional; nothing to record
      } else if (header == "objsense") {
        section = Section::kObjsense;
        // Allow `OBJSENSE MAX` on one line.
        if (tokens.size() > 1) {
          objective = to_lower(tokens[1]) == "max" ? Objective::kMaximize
                                                   : Objective::kMinimize;
          section = Section::kNone;
        }
      } else if (header == "rows") {
        section = Section::kRows;
      } else if (header == "columns") {
        section = Section::kColumns;
      } else if (header == "rhs") {
        section = Section::kRhs;
      } else if (header == "ranges") {
        section = Section::kRanges;
      } else if (header == "bounds") {
        section = Section::kBounds;
      } else if (header == "endata") {
        saw_endata = true;
        break;
      } else {
        fail_at(line_no, "unknown section '" + tokens[0] + "'");
      }
      continue;
    }

    switch (section) {
      case Section::kObjsense: {
        objective = to_lower(tokens[0]) == "max" ? Objective::kMaximize
                                                 : Objective::kMinimize;
        section = Section::kNone;
        break;
      }
      case Section::kRows: {
        if (tokens.size() != 2) fail_at(line_no, "ROWS entry needs 2 fields");
        const char type =
            static_cast<char>(std::toupper(static_cast<unsigned char>(
                tokens[0][0])));
        if (tokens[0].size() != 1 ||
            (type != 'N' && type != 'L' && type != 'G' && type != 'E')) {
          fail_at(line_no, "row type must be one of N L G E");
        }
        if (type == 'N') {
          if (objective_row.empty()) objective_row = tokens[1];
          // additional free rows are ignored, as is conventional
          break;
        }
        if (row_index.contains(tokens[1])) {
          fail_at(line_no, "duplicate row '" + tokens[1] + "'");
        }
        row_index.emplace(tokens[1], rows.size());
        rows.push_back(RowDef{tokens[1], type, {}, 0.0, false, 0.0});
        break;
      }
      case Section::kColumns: {
        if (tokens.size() >= 3 && to_lower(tokens[1]) == "'marker'") {
          fail_at(line_no, "integer markers are unsupported (LP only)");
        }
        if (tokens.size() != 3 && tokens.size() != 5) {
          fail_at(line_no, "COLUMNS entry needs (column row value) pairs");
        }
        const std::uint32_t j = column_of(tokens[0]);
        for (std::size_t k = 1; k + 1 < tokens.size(); k += 2) {
          const std::string& row_name = tokens[k];
          const double value = parse_double(tokens[k + 1]);
          if (row_name == objective_row) {
            col_cost[j] += value;
          } else {
            const auto it = row_index.find(row_name);
            if (it == row_index.end()) {
              fail_at(line_no, "unknown row '" + row_name + "'");
            }
            rows[it->second].terms.push_back({j, value});
          }
        }
        break;
      }
      case Section::kRhs: {
        if (tokens.size() != 3 && tokens.size() != 5) {
          fail_at(line_no, "RHS entry needs (set row value) pairs");
        }
        for (std::size_t k = 1; k + 1 < tokens.size(); k += 2) {
          if (tokens[k] == objective_row) continue;  // objective constant
          const auto it = row_index.find(tokens[k]);
          if (it == row_index.end()) {
            fail_at(line_no, "unknown row '" + tokens[k] + "'");
          }
          rows[it->second].rhs = parse_double(tokens[k + 1]);
        }
        break;
      }
      case Section::kRanges: {
        if (tokens.size() != 3 && tokens.size() != 5) {
          fail_at(line_no, "RANGES entry needs (set row value) pairs");
        }
        for (std::size_t k = 1; k + 1 < tokens.size(); k += 2) {
          const auto it = row_index.find(tokens[k]);
          if (it == row_index.end()) {
            fail_at(line_no, "unknown row '" + tokens[k] + "'");
          }
          rows[it->second].has_range = true;
          rows[it->second].range = parse_double(tokens[k + 1]);
        }
        break;
      }
      case Section::kBounds: {
        if (tokens.size() < 3) fail_at(line_no, "BOUNDS entry too short");
        const std::string type = to_lower(tokens[0]);
        const std::string& var = tokens[2];
        const std::uint32_t j = column_of(var);
        (void)j;
        BoundOverride& bo = bounds[var];
        const auto need_value = [&]() -> double {
          if (tokens.size() < 4) fail_at(line_no, "bound needs a value");
          return parse_double(tokens[3]);
        };
        if (type == "up") {
          bo.has_upper = true;
          bo.upper = need_value();
          // Classical rule: negative upper bound without explicit lower
          // drops the default lower bound (resolved at build time).
        } else if (type == "lo") {
          bo.has_lower = true;
          bo.lower = need_value();
        } else if (type == "fx") {
          const double v = need_value();
          bo.has_lower = bo.has_upper = true;
          bo.lower = bo.upper = v;
        } else if (type == "fr") {
          bo.has_lower = bo.has_upper = true;
          bo.lower = -kInf;
          bo.upper = kInf;
        } else if (type == "mi") {
          bo.has_lower = true;
          bo.lower = -kInf;
        } else if (type == "pl") {
          bo.has_upper = true;
          bo.upper = kInf;
        } else if (type == "bv" || type == "li" || type == "ui") {
          fail_at(line_no, "integer bound '" + tokens[0] +
                               "' is unsupported (LP only)");
        } else {
          fail_at(line_no, "unknown bound type '" + tokens[0] + "'");
        }
        break;
      }
      case Section::kNone:
      case Section::kEnd:
        fail_at(line_no, "data before any section header");
    }
  }
  GS_CHECK_MSG(saw_endata, "MPS text missing ENDATA");
  GS_CHECK_MSG(!objective_row.empty(), "MPS text has no objective (N) row");

  // ---- Build the LpProblem. ----
  LpProblem problem(objective, "mps");
  for (std::size_t j = 0; j < col_names.size(); ++j) {
    double lower = 0.0;
    double upper = kInf;
    if (const auto it = bounds.find(col_names[j]); it != bounds.end()) {
      const BoundOverride& bo = it->second;
      if (bo.has_lower) lower = bo.lower;
      if (bo.has_upper) upper = bo.upper;
      if (bo.has_upper && !bo.has_lower && bo.upper < 0.0) lower = -kInf;
    }
    problem.add_variable(col_names[j], col_cost[j], lower, upper);
  }
  for (const RowDef& row : rows) {
    if (!row.has_range) {
      const RowSense sense = row.type == 'L'   ? RowSense::kLe
                             : row.type == 'G' ? RowSense::kGe
                                               : RowSense::kEq;
      problem.add_constraint(row.name, row.terms, sense, row.rhs);
      continue;
    }
    // Ranged row -> interval [lo, hi] -> two constraints.
    double lo = 0.0, hi = 0.0;
    const double r = row.range;
    switch (row.type) {
      case 'L':
        lo = row.rhs - std::abs(r);
        hi = row.rhs;
        break;
      case 'G':
        lo = row.rhs;
        hi = row.rhs + std::abs(r);
        break;
      case 'E':
        lo = r >= 0.0 ? row.rhs : row.rhs + r;
        hi = r >= 0.0 ? row.rhs + r : row.rhs;
        break;
      default:
        GS_FAIL("range on a free row");
    }
    problem.add_constraint(row.name + "_hi", row.terms, RowSense::kLe, hi);
    problem.add_constraint(row.name + "_lo", row.terms, RowSense::kGe, lo);
  }
  return problem;
}

LpProblem read_mps_file(const std::string& path) {
  std::ifstream in(path);
  GS_CHECK_MSG(in.good(), "cannot open MPS file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return read_mps_text(buf.str());
}

std::string write_mps_text(const LpProblem& problem) {
  std::ostringstream os;
  os << "NAME " << (problem.name().empty() ? "LP" : problem.name()) << "\n";
  if (problem.objective() == Objective::kMaximize) {
    os << "OBJSENSE\n MAX\n";
  }
  os << "ROWS\n N COST\n";
  for (std::size_t i = 0; i < problem.num_constraints(); ++i) {
    const Constraint& con = problem.constraint(i);
    const char type = con.sense == RowSense::kLe   ? 'L'
                      : con.sense == RowSense::kGe ? 'G'
                                                   : 'E';
    os << " " << type << " " << con.name << "\n";
  }
  // COLUMNS: walk variables, then each constraint's term for it. Building
  // a column-major view first keeps output grouped per column as required.
  std::vector<std::vector<std::pair<std::string, double>>> columns(
      problem.num_variables());
  for (std::size_t i = 0; i < problem.num_constraints(); ++i) {
    const Constraint& con = problem.constraint(i);
    for (const Term& t : con.terms) {
      if (t.coef != 0.0) columns[t.var].emplace_back(con.name, t.coef);
    }
  }
  os << "COLUMNS\n";
  for (std::size_t j = 0; j < problem.num_variables(); ++j) {
    const Variable& v = problem.variable(j);
    if (v.objective_coef != 0.0) {
      os << " " << v.name << " COST " << format_double(v.objective_coef, 17)
         << "\n";
    }
    for (const auto& [row, coef] : columns[j]) {
      os << " " << v.name << " " << row << " " << format_double(coef, 17)
         << "\n";
    }
  }
  os << "RHS\n";
  for (std::size_t i = 0; i < problem.num_constraints(); ++i) {
    const Constraint& con = problem.constraint(i);
    if (con.rhs != 0.0) {
      os << " RHS " << con.name << " " << format_double(con.rhs, 17) << "\n";
    }
  }
  os << "BOUNDS\n";
  for (std::size_t j = 0; j < problem.num_variables(); ++j) {
    const Variable& v = problem.variable(j);
    const bool lo_def = v.lower == 0.0;
    const bool up_def = std::isinf(v.upper) && v.upper > 0;
    if (lo_def && up_def) continue;
    if (std::isinf(v.lower) && std::isinf(v.upper)) {
      os << " FR BND " << v.name << "\n";
      continue;
    }
    if (v.lower == v.upper) {
      os << " FX BND " << v.name << " " << format_double(v.lower, 17) << "\n";
      continue;
    }
    if (!lo_def) {
      if (std::isinf(v.lower)) {
        os << " MI BND " << v.name << "\n";
      } else {
        os << " LO BND " << v.name << " " << format_double(v.lower, 17)
           << "\n";
      }
    }
    if (!up_def) {
      os << " UP BND " << v.name << " " << format_double(v.upper, 17) << "\n";
    }
  }
  os << "ENDATA\n";
  return os.str();
}

}  // namespace gs::lp
