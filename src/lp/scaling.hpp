// Problem scaling to tame coefficient dynamic range (numerical-stability
// countermeasure; its effect is measured in the Ext. A/B robustness benches).
//
// Two schemes:
//   * power-of-ten global scaling: shift every coefficient's exponent by the
//     mean order of magnitude (preserves relative ranges exactly);
//   * geometric-mean row/column equilibration (Curtis-Reid style, one pass),
//     the standard preconditioner for simplex bases.
//
// Both record enough to map the scaled optimum back to the unscaled problem.
#pragma once

#include <vector>

#include "lp/standard_form.hpp"

namespace gs::lp {

/// Scale factors applied to a StandardFormLp (in place). Recover the
/// original solution/objective through the methods below.
struct ScalingInfo {
  std::vector<double> row_scale;  ///< row i of A and b_i multiplied by this
  std::vector<double> col_scale;  ///< column j of A and c_j multiplied by this
  double objective_scale = 1.0;   ///< c multiplied by this on top of col scaling

  /// Map a scaled standard-form point back: y_j = y_scaled_j * col_scale_j.
  [[nodiscard]] std::vector<double> unscale_point(
      std::span<const double> y_scaled) const;

  /// Map a scaled standard-form objective back.
  [[nodiscard]] double unscale_objective(double z_scaled) const noexcept {
    return z_scaled / objective_scale;
  }
};

/// Global power-of-ten scaling: multiplies A, b and c by 10^-r where r is
/// the rounded mean order of magnitude of the nonzero |coefficients| of A.
/// Row scaling keeps Ax=b equivalent, so only the objective needs unscaling.
ScalingInfo scale_pow10(StandardFormLp& lp);

/// One-pass geometric-mean equilibration: each row then each column of A is
/// divided by the geometric mean of its nonzero magnitudes.
ScalingInfo scale_geometric(StandardFormLp& lp);

}  // namespace gs::lp
