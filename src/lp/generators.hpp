// Deterministic LP instance generators: the workload side of every bench.
//
// The paper evaluates on randomly generated dense LPs; `random_dense_lp`
// manufactures that family with feasibility and boundedness by construction
// (positive constraint matrix, positive rhs, non-positive costs: the origin
// is feasible with a pure slack basis — the same setup that lets the paper
// skip phase 1 on synthetic instances). The sparse, Klee-Minty, cycling and
// transportation generators cover the extension and robustness studies.
#pragma once

#include <cstdint>

#include "lp/problem.hpp"

namespace gs::lp {

/// Specification of a random dense instance (Fig. 1-3 workloads).
struct DenseLpSpec {
  std::size_t rows = 64;       ///< number of '<=' constraints (m)
  std::size_t cols = 64;       ///< number of structural variables (n)
  std::uint64_t seed = 1;
  double coef_lo = 0.1;        ///< A entries ~ U[coef_lo, coef_hi), > 0
  double coef_hi = 1.0;
  double rhs_fraction_lo = 0.3;  ///< b_i = U[lo, hi) * (row sum of A)
  double rhs_fraction_hi = 0.9;
  double cost_lo = -1.0;       ///< c_j ~ U[cost_lo, cost_hi), <= 0
  double cost_hi = -0.01;
};

/// Feasible, bounded dense LP:  min c^T x  s.t.  A x <= b, x >= 0.
[[nodiscard]] LpProblem random_dense_lp(const DenseLpSpec& spec);

/// Specification of a random sparse (netlib-like) instance (Ext. C).
struct SparseLpSpec {
  std::size_t rows = 256;
  std::size_t cols = 1024;
  double density = 0.01;       ///< expected fraction of nonzeros per row
  std::uint64_t seed = 1;
  double coef_lo = 0.1;
  double coef_hi = 1.0;
  double cost_lo = -1.0;
  double cost_hi = -0.01;
};

/// Feasible, bounded sparse LP with ~density * cols nonzeros per row (at
/// least one per row so no row is vacuous).
[[nodiscard]] LpProblem random_sparse_lp(const SparseLpSpec& spec);

/// Klee-Minty cube of dimension d: the classic exponential worst case for
/// Dantzig pricing (2^d - 1 iterations). Optimum is 5^d.
///   max sum_j 2^(d-j) x_j
///   s.t. 2*sum_{j<i} 2^(i-j) x_j + x_i <= 5^i,  x >= 0
[[nodiscard]] LpProblem klee_minty(std::size_t d);

/// Beale's 1955 cycling example: Dantzig pricing without anti-cycling
/// protection cycles forever; Bland's rule terminates. Optimum is -0.05.
[[nodiscard]] LpProblem beale_cycling();

/// Balanced transportation problem (all-equality rows: exercises the full
/// two-phase path). suppliers*consumers variables, suppliers+consumers rows.
[[nodiscard]] LpProblem transportation(std::size_t suppliers,
                                       std::size_t consumers,
                                       std::uint64_t seed);

/// Infeasible toy instance (x <= 1 and x >= 2): phase-1 must report it.
[[nodiscard]] LpProblem infeasible_example();

/// Unbounded toy instance (min -x, x >= 0, no binding rows above):
/// phase-2 must report it.
[[nodiscard]] LpProblem unbounded_example();

}  // namespace gs::lp
