// MPS format reader and writer (the netlib LP interchange format).
//
// Free-format MPS is supported: tokens separated by whitespace, sections
//   NAME, OBJSENSE (MIN/MAX extension), ROWS (N/L/G/E), COLUMNS,
//   RHS, RANGES, BOUNDS (UP/LO/FX/FR/MI/PL), ENDATA
// Semantics follow the classical conventions:
//   * the first N row is the objective; additional N rows are ignored
//   * RANGES r on row with rhs b: L -> [b-|r|, b]; G -> [b, b+|r|];
//     E -> [b, b+r] for r >= 0, [b+r, b] for r < 0 (each ranged row is
//     split into a '<=' and a '>=' constraint)
//   * an UP bound with a negative value on a variable without an explicit
//     lower bound drops the default lower bound of 0 to -inf
// Integer markers (MARKER/INTORG) and BV/LI/UI bounds are rejected with a
// diagnostic: this is an LP library.
#pragma once

#include <string>
#include <string_view>

#include "lp/problem.hpp"

namespace gs::lp {

/// Parse an MPS model from text. Throws gs::Error with a section/line
/// diagnostic on malformed input.
[[nodiscard]] LpProblem read_mps_text(std::string_view text);

/// Read from a file path.
[[nodiscard]] LpProblem read_mps_file(const std::string& path);

/// Serialize to free-format MPS (uses OBJSENSE for maximization).
[[nodiscard]] std::string write_mps_text(const LpProblem& problem);

}  // namespace gs::lp
