// Plain-text LP format reader and writer.
//
// The dialect (documented here, round-trips through read/write):
//
//   # comment until end of line
//   min: 3 x1 - 2 x2 + 0.5 x3;          (or `max:`; must come first)
//   r1: x1 + x2 <= 10;                  (constraint name optional)
//   -x1 + 4*x2 >= 2;
//   r3: x1 + x2 + x3 = 7;
//   bounds:
//     x1 >= 1;
//     0 <= x2 <= 8;
//     x3 free;
//
// Terms are `[sign] [coefficient] [*] variable`; a bare variable has
// coefficient 1. Variables are created on first use with default bounds
// [0, +inf); the bounds section overrides them.
#pragma once

#include <string>
#include <string_view>

#include "lp/problem.hpp"

namespace gs::lp {

/// Parse an LP from text. Throws gs::Error with a line diagnostic on
/// malformed input.
[[nodiscard]] LpProblem read_lp_text(std::string_view text);

/// Read from a file path.
[[nodiscard]] LpProblem read_lp_file(const std::string& path);

/// Serialize a problem into the dialect above.
[[nodiscard]] std::string write_lp_text(const LpProblem& problem);

}  // namespace gs::lp
