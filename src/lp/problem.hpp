// General linear-program model: the user-facing problem description.
//
//   optimize  c^T x
//   s.t.      a_i^T x {<=, >=, =} rhs_i     for each constraint i
//             lower_j <= x_j <= upper_j     for each variable j
//
// Bounds may be infinite on either side. This general form is converted to
// the simplex standard form (equalities, x >= 0, b >= 0) by
// lp/standard_form.hpp, which also records how to map a standard-form
// solution back to these variables.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace gs::lp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Objective { kMinimize, kMaximize };
enum class RowSense { kLe, kGe, kEq };

/// One term `coef * variable` of a linear expression.
struct Term {
  std::uint32_t var = 0;
  double coef = 0.0;
};

/// One linear constraint.
struct Constraint {
  std::string name;
  std::vector<Term> terms;
  RowSense sense = RowSense::kLe;
  double rhs = 0.0;
};

/// One decision variable.
struct Variable {
  std::string name;
  double objective_coef = 0.0;
  double lower = 0.0;
  double upper = kInf;
};

/// A general-form LP. Mutation is append-only; indices are stable.
class LpProblem {
 public:
  explicit LpProblem(Objective objective = Objective::kMinimize,
                     std::string name = "lp")
      : objective_(objective), name_(std::move(name)) {}

  [[nodiscard]] Objective objective() const noexcept { return objective_; }
  void set_objective(Objective o) noexcept { objective_ = o; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Add a variable; returns its index.
  std::uint32_t add_variable(std::string name, double objective_coef = 0.0,
                             double lower = 0.0, double upper = kInf);

  /// Add a constraint over existing variables; returns its index.
  std::uint32_t add_constraint(std::string name, std::vector<Term> terms,
                               RowSense sense, double rhs);

  [[nodiscard]] std::size_t num_variables() const noexcept {
    return variables_.size();
  }
  [[nodiscard]] std::size_t num_constraints() const noexcept {
    return constraints_.size();
  }
  [[nodiscard]] std::size_t num_nonzeros() const noexcept;

  [[nodiscard]] const Variable& variable(std::size_t j) const {
    GS_CHECK(j < variables_.size());
    return variables_[j];
  }
  [[nodiscard]] const Constraint& constraint(std::size_t i) const {
    GS_CHECK(i < constraints_.size());
    return constraints_[i];
  }
  [[nodiscard]] std::span<const Variable> variables() const noexcept {
    return variables_;
  }
  [[nodiscard]] std::span<const Constraint> constraints() const noexcept {
    return constraints_;
  }

  /// Index of a variable by name; throws if absent.
  [[nodiscard]] std::uint32_t variable_index(std::string_view name) const;

  /// Objective value of a candidate point (in this problem's orientation).
  [[nodiscard]] double objective_value(std::span<const double> x) const;

  /// True if `x` satisfies all constraints and bounds within `tol`.
  [[nodiscard]] bool is_feasible(std::span<const double> x,
                                 double tol = 1e-6) const;

 private:
  Objective objective_;
  std::string name_;
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
};

}  // namespace gs::lp
