// Conversion of a general LP to simplex standard form, with back-mapping.
//
// Standard form:   min c^T y   s.t.  A y = b,  y >= 0,  b >= 0
//
// produced by the classical pipeline (the one the paper's preprocessing
// implements):
//   * maximize  -> negate the objective (recorded, un-negated on recovery)
//   * x >= l    -> substitute y = x - l
//   * x <= u (no lower bound) -> substitute y = u - x
//   * l <= x <= u -> shift to [0, u-l] and append the row  y <= u - l
//   * free x    -> split  x = y+ - y-
//   * negative rhs -> multiply the row by -1 and flip its sense
//   * '<=' rows gain a +1 slack column, '>=' rows a -1 surplus column
//
// Artificial variables are NOT added here; each solver appends them for its
// phase-1 as needed. Rows whose slack can seed a feasible crash basis are
// recorded in `slack_col`.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "lp/problem.hpp"
#include "sparse/csr.hpp"
#include "vblas/containers.hpp"

namespace gs::lp {

/// The standard-form system plus everything needed to translate a
/// standard-form optimum back to the original variables and objective.
struct StandardFormLp {
  /// Sparse rows of A (each row sorted by column).
  std::vector<std::vector<Term>> rows;
  std::vector<double> b;  ///< all entries >= 0
  std::vector<double> c;  ///< minimize orientation
  std::vector<std::string> col_names;

  /// Constant added to c^T y to obtain the *minimize-orientation* objective
  /// of the original problem (from bound shifts).
  double objective_offset = 0.0;
  /// True if the original problem was a maximization (objective negated).
  bool negated = false;

  /// Per row: column index of a +1 slack usable in a crash basis, or -1.
  std::vector<std::int64_t> slack_col;

  /// Number of rows that correspond to original constraints (bound rows for
  /// doubly-bounded variables are appended after them).
  std::size_t num_original_rows = 0;
  /// The untransformed rhs of each original constraint (for reporting
  /// sensitivity ranges in the caller's units).
  std::vector<double> original_rhs;
  /// Per row: true if the row was multiplied by -1 to make its rhs
  /// nonnegative (flips the sign of that row's dual value).
  std::vector<bool> row_flipped;

  /// How each original variable is reconstructed from standard-form columns.
  struct VarMap {
    enum class Kind { kDirect, kShifted, kNegated, kFree };
    Kind kind = Kind::kDirect;
    std::uint32_t col = 0;      ///< primary column
    std::uint32_t col_neg = 0;  ///< negative part (kFree only)
    double shift = 0.0;         ///< l (kShifted) or u (kNegated)
  };
  std::vector<VarMap> var_maps;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept { return c.size(); }
  [[nodiscard]] std::size_t num_nonzeros() const noexcept;

  /// Dense A (m x n). For the dense solver path.
  [[nodiscard]] vblas::Matrix<double> dense_a() const;
  /// CSR A. For the sparse solver path.
  [[nodiscard]] sparse::CsrMatrix<double> csr_a() const;

  /// Map a standard-form point y (length num_cols()) back to original
  /// variables (length var_maps.size()).
  [[nodiscard]] std::vector<double> recover(std::span<const double> y) const;

  /// Map the standard-form simplex multipliers pi (length num_rows()) back
  /// to dual values of the original constraints (length
  /// num_original_rows): y_i = d z_original / d rhs_i.
  [[nodiscard]] std::vector<double> recover_duals(
      std::span<const double> pi) const;

  /// Map a standard-form objective value back to the original orientation.
  [[nodiscard]] double original_objective(double z_std) const noexcept {
    const double z_min = z_std + objective_offset;
    return negated ? -z_min : z_min;
  }
};

/// Run the full conversion pipeline. Throws gs::Error on malformed input
/// (e.g. a variable with lower > upper is rejected at model build time).
[[nodiscard]] StandardFormLp to_standard_form(const LpProblem& problem);

}  // namespace gs::lp
