#include "lp/standard_form.hpp"

#include <algorithm>
#include <cmath>

namespace gs::lp {

namespace {

/// Working row before slack/surplus augmentation.
struct WorkRow {
  std::vector<Term> terms;
  RowSense sense;
  double rhs;
  std::string name;
};

void sort_and_merge(std::vector<Term>& terms) {
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  std::size_t w = 0;
  for (std::size_t k = 0; k < terms.size(); ++k) {
    if (w > 0 && terms[w - 1].var == terms[k].var) {
      terms[w - 1].coef += terms[k].coef;
    } else {
      terms[w++] = terms[k];
    }
  }
  terms.resize(w);
  std::erase_if(terms, [](const Term& t) { return t.coef == 0.0; });
}

}  // namespace

std::size_t StandardFormLp::num_nonzeros() const noexcept {
  std::size_t count = 0;
  for (const auto& row : rows) count += row.size();
  return count;
}

vblas::Matrix<double> StandardFormLp::dense_a() const {
  vblas::Matrix<double> a(num_rows(), num_cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (const Term& t : rows[i]) a(i, t.var) = t.coef;
  }
  return a;
}

sparse::CsrMatrix<double> StandardFormLp::csr_a() const {
  std::vector<std::uint32_t> offsets(1, 0);
  std::vector<std::uint32_t> cols;
  std::vector<double> vals;
  cols.reserve(num_nonzeros());
  vals.reserve(num_nonzeros());
  for (const auto& row : rows) {
    for (const Term& t : row) {
      cols.push_back(t.var);
      vals.push_back(t.coef);
    }
    offsets.push_back(static_cast<std::uint32_t>(vals.size()));
  }
  return sparse::CsrMatrix<double>(num_rows(), num_cols(), std::move(offsets),
                                   std::move(cols), std::move(vals));
}

std::vector<double> StandardFormLp::recover_duals(
    std::span<const double> pi) const {
  GS_CHECK_MSG(pi.size() == num_rows(), "recover_duals dimension mismatch");
  std::vector<double> duals(num_original_rows, 0.0);
  for (std::size_t i = 0; i < num_original_rows; ++i) {
    // pi_i is d z_std / d b_std_i. A flipped row negated its rhs; a negated
    // objective (maximize) negates the sensitivity again.
    double y = pi[i];
    if (row_flipped[i]) y = -y;
    if (negated) y = -y;
    duals[i] = y;
  }
  return duals;
}

std::vector<double> StandardFormLp::recover(std::span<const double> y) const {
  GS_CHECK_MSG(y.size() == num_cols(), "recover: point dimension mismatch");
  std::vector<double> x(var_maps.size(), 0.0);
  for (std::size_t j = 0; j < var_maps.size(); ++j) {
    const VarMap& vm = var_maps[j];
    switch (vm.kind) {
      case VarMap::Kind::kDirect:
        x[j] = y[vm.col];
        break;
      case VarMap::Kind::kShifted:
        x[j] = y[vm.col] + vm.shift;
        break;
      case VarMap::Kind::kNegated:
        x[j] = vm.shift - y[vm.col];
        break;
      case VarMap::Kind::kFree:
        x[j] = y[vm.col] - y[vm.col_neg];
        break;
    }
  }
  return x;
}

StandardFormLp to_standard_form(const LpProblem& problem) {
  StandardFormLp out;
  out.negated = problem.objective() == Objective::kMaximize;

  // ---- Pass 1: map variables to nonnegative columns. -----------------
  // `col_of_var[j]` holds the primary column of original variable j;
  // substitution kind + shift are in var_maps. Extra bound rows collected
  // for variables with two finite bounds.
  const double sign = out.negated ? -1.0 : 1.0;
  out.var_maps.resize(problem.num_variables());
  struct BoundRow {
    std::uint32_t col;
    double rhs;
    std::string name;
  };
  std::vector<BoundRow> bound_rows;

  for (std::size_t j = 0; j < problem.num_variables(); ++j) {
    const Variable& v = problem.variable(j);
    auto& vm = out.var_maps[j];
    const bool lo_finite = std::isfinite(v.lower);
    const bool up_finite = std::isfinite(v.upper);
    if (lo_finite) {
      vm.col = static_cast<std::uint32_t>(out.c.size());
      vm.shift = v.lower;
      vm.kind = v.lower == 0.0 ? StandardFormLp::VarMap::Kind::kDirect
                               : StandardFormLp::VarMap::Kind::kShifted;
      out.c.push_back(sign * v.objective_coef);
      out.col_names.push_back(v.name);
      out.objective_offset += sign * v.objective_coef * v.lower;
      if (up_finite) {
        bound_rows.push_back({vm.col, v.upper - v.lower, v.name + "_ub"});
      }
    } else if (up_finite) {
      // x <= u with no lower bound: y = u - x.
      vm.col = static_cast<std::uint32_t>(out.c.size());
      vm.shift = v.upper;
      vm.kind = StandardFormLp::VarMap::Kind::kNegated;
      out.c.push_back(-sign * v.objective_coef);
      out.col_names.push_back(v.name + "_neg");
      out.objective_offset += sign * v.objective_coef * v.upper;
    } else {
      // Free: x = y+ - y-.
      vm.kind = StandardFormLp::VarMap::Kind::kFree;
      vm.col = static_cast<std::uint32_t>(out.c.size());
      out.c.push_back(sign * v.objective_coef);
      out.col_names.push_back(v.name + "_pos");
      vm.col_neg = static_cast<std::uint32_t>(out.c.size());
      out.c.push_back(-sign * v.objective_coef);
      out.col_names.push_back(v.name + "_neg");
    }
  }
  const std::size_t num_structural = out.c.size();

  // ---- Pass 2: rewrite constraint rows in the new columns. -----------
  std::vector<WorkRow> work;
  work.reserve(problem.num_constraints() + bound_rows.size());
  out.original_rhs.reserve(problem.num_constraints());
  for (std::size_t i = 0; i < problem.num_constraints(); ++i) {
    const Constraint& con = problem.constraint(i);
    out.original_rhs.push_back(con.rhs);
    WorkRow row;
    row.name = con.name;
    row.sense = con.sense;
    row.rhs = con.rhs;
    for (const Term& t : con.terms) {
      const auto& vm = out.var_maps[t.var];
      switch (vm.kind) {
        case StandardFormLp::VarMap::Kind::kDirect:
          row.terms.push_back({vm.col, t.coef});
          break;
        case StandardFormLp::VarMap::Kind::kShifted:
          // a*x = a*y + a*l -> move the constant to the rhs.
          row.terms.push_back({vm.col, t.coef});
          row.rhs -= t.coef * vm.shift;
          break;
        case StandardFormLp::VarMap::Kind::kNegated:
          // a*x = a*u - a*y.
          row.terms.push_back({vm.col, -t.coef});
          row.rhs -= t.coef * vm.shift;
          break;
        case StandardFormLp::VarMap::Kind::kFree:
          row.terms.push_back({vm.col, t.coef});
          row.terms.push_back({vm.col_neg, -t.coef});
          break;
      }
    }
    sort_and_merge(row.terms);
    work.push_back(std::move(row));
  }
  for (const BoundRow& br : bound_rows) {
    work.push_back(WorkRow{{Term{br.col, 1.0}}, RowSense::kLe, br.rhs, br.name});
  }

  // ---- Pass 3: enforce b >= 0, then append slack/surplus columns. ----
  out.num_original_rows = problem.num_constraints();
  out.row_flipped.assign(work.size(), false);
  std::size_t num_slack = 0;
  for (std::size_t i = 0; i < work.size(); ++i) {
    WorkRow& row = work[i];
    if (row.rhs < 0.0) {
      for (Term& t : row.terms) t.coef = -t.coef;
      row.rhs = -row.rhs;
      out.row_flipped[i] = true;
      if (row.sense == RowSense::kLe) {
        row.sense = RowSense::kGe;
      } else if (row.sense == RowSense::kGe) {
        row.sense = RowSense::kLe;
      }
    }
    if (row.sense != RowSense::kEq) ++num_slack;
  }
  out.c.reserve(out.c.size() + num_slack);
  out.rows.reserve(work.size());
  out.b.reserve(work.size());
  out.slack_col.assign(work.size(), -1);
  for (std::size_t i = 0; i < work.size(); ++i) {
    WorkRow& row = work[i];
    if (row.sense == RowSense::kLe) {
      const auto col = static_cast<std::uint32_t>(out.c.size());
      row.terms.push_back({col, 1.0});
      out.c.push_back(0.0);
      out.col_names.push_back("slack_" + std::to_string(i));
      out.slack_col[i] = col;
    } else if (row.sense == RowSense::kGe) {
      const auto col = static_cast<std::uint32_t>(out.c.size());
      row.terms.push_back({col, -1.0});
      out.c.push_back(0.0);
      out.col_names.push_back("surplus_" + std::to_string(i));
    }
    out.rows.push_back(std::move(row.terms));
    out.b.push_back(row.rhs);
  }
  (void)num_structural;
  return out;
}

}  // namespace gs::lp
