// Presolve: problem reductions applied before the simplex solver.
//
// The follow-on literature identifies preprocessing of the constraint set
// as the main lever for making the GPU solver practical on real instances;
// this module implements the classical safe reductions, iterated to a
// fixpoint:
//   * drop empty rows (detecting trivial infeasibility)
//   * convert singleton rows into variable bounds
//   * substitute out fixed variables (lower == upper)
//   * pin and remove empty columns (detecting unboundedness *assuming the
//     remaining problem is feasible* — the standard presolve caveat)
//   * drop zero coefficients
//
// Postsolve maps a reduced-problem optimum back to the original variables.
// Dual values do not survive presolve; callers needing duals should solve
// the unreduced problem.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lp/problem.hpp"

namespace gs::lp {

enum class PresolveStatus {
  kReduced,     ///< `reduced` is equivalent to the input (modulo postsolve)
  kInfeasible,  ///< input proven infeasible during reduction
  kUnbounded,   ///< input proven unbounded, if it is feasible at all
  kSolved,      ///< all variables eliminated; optimum is objective_offset
};

[[nodiscard]] constexpr std::string_view to_string(PresolveStatus s) noexcept {
  switch (s) {
    case PresolveStatus::kReduced: return "reduced";
    case PresolveStatus::kInfeasible: return "infeasible";
    case PresolveStatus::kUnbounded: return "unbounded";
    case PresolveStatus::kSolved: return "solved";
  }
  return "?";
}

struct PresolveResult {
  PresolveStatus status = PresolveStatus::kReduced;
  LpProblem reduced;  ///< valid iff status == kReduced

  /// Constant part of the original objective contributed by eliminated
  /// variables (original orientation). For status kSolved this is the
  /// optimal objective value.
  double objective_offset = 0.0;

  /// Original indices of the variables kept in `reduced` (reduced column j
  /// is original variable kept_vars[j]).
  std::vector<std::uint32_t> kept_vars;
  /// Values assigned to eliminated variables (indexed by original column;
  /// meaningful only where the variable was eliminated).
  std::vector<double> eliminated_value;

  std::size_t rows_removed = 0;
  std::size_t vars_removed = 0;
  std::size_t passes = 0;

  /// Map a reduced-problem point back to the original variable space.
  [[nodiscard]] std::vector<double> recover(
      std::span<const double> x_reduced) const;

  /// Map a reduced-problem objective value back (adds the offset).
  [[nodiscard]] double recover_objective(double z_reduced) const noexcept {
    return z_reduced + objective_offset;
  }
};

/// Run the reductions to a fixpoint (bounded number of passes).
[[nodiscard]] PresolveResult presolve(const LpProblem& problem);

}  // namespace gs::lp
