#include "lp/presolve.hpp"

#include <cmath>

#include "support/error.hpp"

namespace gs::lp {

namespace {

constexpr double kFeasTol = 1e-9;

/// Mutable working copy of the problem during reduction.
struct Work {
  explicit Work(const LpProblem& p)
      : objective(p.objective()),
        lower(p.num_variables()),
        upper(p.num_variables()),
        cost(p.num_variables()),
        var_active(p.num_variables(), true),
        value(p.num_variables(), 0.0),
        row_active(p.num_constraints(), true) {
    for (std::size_t j = 0; j < p.num_variables(); ++j) {
      const Variable& v = p.variable(j);
      lower[j] = v.lower;
      upper[j] = v.upper;
      cost[j] = v.objective_coef;
    }
    rows.reserve(p.num_constraints());
    for (std::size_t i = 0; i < p.num_constraints(); ++i) {
      const Constraint& c = p.constraint(i);
      Row row;
      row.sense = c.sense;
      row.rhs = c.rhs;
      for (const Term& t : c.terms) {
        if (t.coef != 0.0) row.terms.push_back(t);
      }
      rows.push_back(std::move(row));
    }
  }

  struct Row {
    std::vector<Term> terms;
    RowSense sense;
    double rhs;
  };

  Objective objective;
  std::vector<double> lower, upper, cost;
  std::vector<bool> var_active;
  std::vector<double> value;  ///< assigned value of eliminated variables
  std::vector<Row> rows;
  std::vector<bool> row_active;
};

/// Tighten a variable's bounds from a singleton row `a * x sense b`.
/// Returns false on detected infeasibility.
[[nodiscard]] bool apply_singleton(Work& w, std::uint32_t var, double a,
                                   RowSense sense, double b) {
  const double q = b / a;
  const bool flip = a < 0.0;
  const RowSense effective =
      sense == RowSense::kEq
          ? RowSense::kEq
          : ((sense == RowSense::kLe) != flip ? RowSense::kLe : RowSense::kGe);
  if (effective != RowSense::kGe) {  // upper bound q
    w.upper[var] = std::min(w.upper[var], q);
  }
  if (effective != RowSense::kLe) {  // lower bound q
    w.lower[var] = std::max(w.lower[var], q);
  }
  return w.lower[var] <= w.upper[var] + kFeasTol;
}

/// Substitute an eliminated variable's value into every active row.
void substitute(Work& w, std::uint32_t var, double value) {
  w.var_active[var] = false;
  w.value[var] = value;
  for (std::size_t i = 0; i < w.rows.size(); ++i) {
    if (!w.row_active[i]) continue;
    auto& terms = w.rows[i].terms;
    for (std::size_t k = 0; k < terms.size(); ++k) {
      if (terms[k].var == var) {
        w.rows[i].rhs -= terms[k].coef * value;
        terms.erase(terms.begin() + static_cast<std::ptrdiff_t>(k));
        break;
      }
    }
  }
}

/// True if the (constant) row `0 sense rhs` is satisfied.
[[nodiscard]] bool empty_row_feasible(RowSense sense, double rhs) {
  switch (sense) {
    case RowSense::kLe: return rhs >= -kFeasTol;
    case RowSense::kGe: return rhs <= kFeasTol;
    case RowSense::kEq: return std::abs(rhs) <= kFeasTol;
  }
  return false;
}

}  // namespace

std::vector<double> PresolveResult::recover(
    std::span<const double> x_reduced) const {
  GS_CHECK_MSG(x_reduced.size() == kept_vars.size(),
               "presolve recover dimension mismatch");
  std::vector<double> x = eliminated_value;
  for (std::size_t j = 0; j < kept_vars.size(); ++j) {
    x[kept_vars[j]] = x_reduced[j];
  }
  return x;
}

PresolveResult presolve(const LpProblem& problem) {
  Work w(problem);
  PresolveResult out;
  out.eliminated_value.assign(problem.num_variables(), 0.0);

  // Count row occurrences per variable to find empty columns cheaply.
  std::vector<std::size_t> col_count(problem.num_variables(), 0);
  const auto recount = [&] {
    std::fill(col_count.begin(), col_count.end(), 0);
    for (std::size_t i = 0; i < w.rows.size(); ++i) {
      if (!w.row_active[i]) continue;
      for (const Term& t : w.rows[i].terms) ++col_count[t.var];
    }
  };

  const double sign = w.objective == Objective::kMaximize ? -1.0 : 1.0;
  bool changed = true;
  constexpr std::size_t kMaxPasses = 16;
  while (changed && out.passes < kMaxPasses) {
    changed = false;
    ++out.passes;
    recount();

    // ---- Rows: empty and singleton. ----
    for (std::size_t i = 0; i < w.rows.size(); ++i) {
      if (!w.row_active[i]) continue;
      auto& row = w.rows[i];
      if (row.terms.empty()) {
        if (!empty_row_feasible(row.sense, row.rhs)) {
          out.status = PresolveStatus::kInfeasible;
          return out;
        }
        w.row_active[i] = false;
        ++out.rows_removed;
        changed = true;
        continue;
      }
      if (row.terms.size() == 1) {
        const Term t = row.terms[0];
        if (!apply_singleton(w, t.var, t.coef, row.sense, row.rhs)) {
          out.status = PresolveStatus::kInfeasible;
          return out;
        }
        w.row_active[i] = false;
        ++out.rows_removed;
        changed = true;
      }
    }
    recount();

    // ---- Columns: fixed variables and empty columns. ----
    for (std::uint32_t j = 0; j < problem.num_variables(); ++j) {
      if (!w.var_active[j]) continue;
      if (w.lower[j] > w.upper[j] + kFeasTol) {
        out.status = PresolveStatus::kInfeasible;
        return out;
      }
      // Fixed variable: substitute its value everywhere.
      if (std::isfinite(w.lower[j]) &&
          w.upper[j] - w.lower[j] <= kFeasTol) {
        const double v = w.lower[j];
        out.objective_offset += w.cost[j] * v;
        substitute(w, j, v);
        ++out.vars_removed;
        changed = true;
        continue;
      }
      // Empty column: pin to the cost-optimal finite bound.
      if (col_count[j] == 0) {
        const double min_cost = sign * w.cost[j];  // minimize orientation
        double v;
        if (min_cost > kFeasTol) {
          if (!std::isfinite(w.lower[j])) {
            out.status = PresolveStatus::kUnbounded;
            return out;
          }
          v = w.lower[j];
        } else if (min_cost < -kFeasTol) {
          if (!std::isfinite(w.upper[j])) {
            out.status = PresolveStatus::kUnbounded;
            return out;
          }
          v = w.upper[j];
        } else {
          v = std::isfinite(w.lower[j])   ? w.lower[j]
              : std::isfinite(w.upper[j]) ? w.upper[j]
                                          : 0.0;
        }
        out.objective_offset += w.cost[j] * v;
        substitute(w, j, v);
        ++out.vars_removed;
        changed = true;
      }
    }
  }

  // ---- Assemble the reduced problem. ----
  std::vector<std::int64_t> new_index(problem.num_variables(), -1);
  for (std::uint32_t j = 0; j < problem.num_variables(); ++j) {
    if (w.var_active[j]) {
      new_index[j] = static_cast<std::int64_t>(out.kept_vars.size());
      out.kept_vars.push_back(j);
    } else {
      out.eliminated_value[j] = w.value[j];
    }
  }
  if (out.kept_vars.empty()) {
    out.status = PresolveStatus::kSolved;
    return out;
  }

  LpProblem reduced(problem.objective(), problem.name() + "_presolved");
  for (const std::uint32_t j : out.kept_vars) {
    reduced.add_variable(problem.variable(j).name, w.cost[j], w.lower[j],
                         w.upper[j]);
  }
  for (std::size_t i = 0; i < w.rows.size(); ++i) {
    if (!w.row_active[i]) continue;
    std::vector<Term> terms;
    terms.reserve(w.rows[i].terms.size());
    for (const Term& t : w.rows[i].terms) {
      terms.push_back(
          {static_cast<std::uint32_t>(new_index[t.var]), t.coef});
    }
    reduced.add_constraint(problem.constraint(i).name, std::move(terms),
                           w.rows[i].sense, w.rows[i].rhs);
  }
  out.reduced = std::move(reduced);
  out.status = PresolveStatus::kReduced;
  return out;
}

}  // namespace gs::lp
