// Shared solver types: options, statuses, statistics, results.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/health.hpp"
#include "record/record.hpp"
#include "trace/trace.hpp"
#include "vgpu/analyze/analyze.hpp"
#include "vgpu/device.hpp"

namespace gs::profile {
class Profiler;
}  // namespace gs::profile

namespace gs::telemetry {
class Telemetry;
}  // namespace gs::telemetry

namespace gs::simplex {

/// Terminal state of a solve.
enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNumericalTrouble,
};

[[nodiscard]] constexpr std::string_view to_string(SolveStatus s) noexcept {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
    case SolveStatus::kNumericalTrouble: return "numerical-trouble";
  }
  return "?";
}

/// Entering-variable selection rule.
enum class PricingRule {
  kDantzig,  ///< most negative reduced cost (parallel argmin)
  kBland,    ///< lowest-index negative reduced cost (anti-cycling, terminates)
  kHybrid,   ///< Dantzig, falling back to Bland during degeneracy streaks
  kDevex,    ///< reference-framework Devex weights (device engine only)
};

[[nodiscard]] constexpr std::string_view to_string(PricingRule r) noexcept {
  switch (r) {
    case PricingRule::kDantzig: return "dantzig";
    case PricingRule::kBland: return "bland";
    case PricingRule::kHybrid: return "hybrid";
    case PricingRule::kDevex: return "devex";
  }
  return "?";
}

/// Basis-inverse representation (Ext. B ablation).
enum class BasisScheme {
  kExplicitInverse,  ///< dense B^-1, rank-1 Gauss-Jordan update (the paper's)
  kProductForm,      ///< eta file + periodic reinversion
  kLuFactors,        ///< LU factors + eta file; FTRAN/BTRAN as blocked trsv
};

[[nodiscard]] constexpr std::string_view to_string(BasisScheme b) noexcept {
  switch (b) {
    case BasisScheme::kExplicitInverse: return "explicit-inverse";
    case BasisScheme::kProductForm: return "product-form";
    case BasisScheme::kLuFactors: return "lu-factors";
  }
  return "?";
}

/// Knobs common to every engine. Engines ignore options they do not model
/// (e.g. the tableau baseline has no basis scheme).
struct SolverOptions {
  std::size_t max_iterations = 50000;

  /// Optimality tolerance: entering candidates need d_j < -opt_tol.
  double opt_tol = 1e-7;
  /// Ratio-test pivot tolerance: rows with alpha_i <= pivot_tol are skipped.
  double pivot_tol = 1e-9;
  /// If > 0, values with |v| < round_tol are flushed to zero in the basis
  /// update (the numerical-stability countermeasure evaluated in Ext. B).
  double round_tol = 0.0;

  PricingRule pricing = PricingRule::kHybrid;
  /// Hybrid rule: switch to Bland after this many iterations without strict
  /// objective improvement; switch back on improvement.
  std::size_t degeneracy_window = 40;

  /// Compute post-optimal sensitivity ranges (HostRevisedSimplex only).
  bool ranging = false;

  /// Fused per-iteration kernels (device engine, explicit inverse only):
  /// the pricing chain, the ratio-test chain and the rank-1 B⁻¹ update
  /// each collapse into a single launch, and the per-iteration scalar
  /// ping-pong is replaced by one packed PivotDescriptor readback. The
  /// pivot sequence is bit-identical to the unfused reference path (the
  /// fused reductions share the primitives' block-scan semantics); only
  /// launch/transfer counts and modeled time change. Set false to run the
  /// pre-fusion reference path (tests/test_fusion.cpp diffs the two).
  /// Ignored by non-explicit basis schemes, which always use the
  /// reference kernels.
  bool fused_iteration = true;

  BasisScheme basis = BasisScheme::kExplicitInverse;
  /// Product-form basis: reinvert after this many etas (0 = at m etas).
  std::size_t reinversion_period = 0;
  /// Explicit inverse: recompute B^-1 from scratch every this many
  /// iterations to shed accumulated rounding error (0 = never).
  std::size_t refactor_period = 0;

  /// Observability (OBSERVABILITY.md): when non-null, the engine streams
  /// structured events into this sink — kernel launches and PCIe copies as
  /// complete slices, algorithm phases (solve / phase1 / phase2 /
  /// iteration / price / ftran / ratio / update) as nested spans, and the
  /// objective as a counter — all timestamped in simulated seconds. Null
  /// (the default) disables tracing entirely; the disabled path is a
  /// single branch per event site, so modelled stats are identical with
  /// and without a sink. The sink is borrowed, not owned, and must outlive
  /// the solve.
  trace::TraceSink* trace_sink = nullptr;

  /// Optional kernel-safety checker (CHECKING.md). While attached, the
  /// device engines record per-block access footprints and analyse every
  /// kernel launch for cross-block data races, out-of-bounds indexing,
  /// NaN introduction, and cost-declaration drift; findings accumulate on
  /// the checker for the caller to inspect (`lp_cli --check` prints
  /// them). Host engines (host-revised, tableau) execute plain loops
  /// through a CostMeter — no kernel semantics to check — and ignore it.
  /// Null (the default) disables checking: results and kernel stats are
  /// bit-identical with and without a checker, the same guarantee the
  /// trace sink gives. Borrowed, not owned; must outlive the solve.
  vgpu::check::Checker* checker = nullptr;

  /// Optional metrics registry (OBSERVABILITY.md, "Metrics"). While
  /// attached, the engine tallies per-kernel launch/byte/time counters on
  /// its machine (`vgpu.*` / `cpu.*`), per-operation modeled-time
  /// histograms (`simplex.op_seconds.*`), and the numerical-health signals
  /// sampled by the HealthMonitor (`health.*`, thresholds from `health`
  /// below) — all exportable as JSON via MetricsRegistry::snapshot()
  /// (`lp_cli --metrics`). Null (the default) disables metrics: results,
  /// DeviceStats and iteration paths are bit-identical with and without a
  /// registry, the same guarantee the trace sink and checker give.
  /// Borrowed, not owned; must outlive the solve.
  metrics::MetricsRegistry* metrics = nullptr;

  /// Thresholds and sampling cadence for the HealthMonitor; consulted only
  /// when `metrics` is attached.
  metrics::HealthConfig health;

  /// Optional decision-log recorder (OBSERVABILITY.md, "Recorder"). While
  /// attached, the engine logs every basis change (entering/leaving pair,
  /// pivot value, ratio-test ties, Bland activation), refactorization
  /// event and phase transition into a compact binary log (`gs-record-v1`)
  /// that can be replayed against a later run, diffed against another
  /// recording (float vs double, host vs device), or auto-dumped as a
  /// post-mortem window on a bad exit (`lp_cli --record / --replay /
  /// --diff`). Null (the default) disables recording: results, DeviceStats
  /// and iteration paths are bit-identical with and without a recorder,
  /// the same guarantee the trace sink, checker and metrics registry give.
  /// Borrowed, not owned; must outlive the solve.
  record::Recorder* recorder = nullptr;

  /// Optional warm-start basis (SERVICE.md, "Warm-start cache"): one
  /// augmented column index per row, typically a prior optimal
  /// `SolveResult::basis` of the same or a perturbed instance. The host
  /// engine builds B from these columns, inverts it (charged as one
  /// `warm_init` step on the cost meter) and starts phase 2 from it iff
  /// the basis is valid (square, non-artificial, distinct, nonsingular)
  /// and primal feasible (B⁻¹b ≥ 0); otherwise it falls back to the cold
  /// crash basis and `SolverStats::warm_started` stays false. The dual
  /// engine is looser: any valid, factorizable basis is accepted — dual
  /// pivots restore primal feasibility, which is why the service routes
  /// warm-startable requests there. Device and batch engines ignore it.
  /// Borrowed, not owned; must outlive the solve.
  const std::vector<std::uint32_t>* warm_basis = nullptr;

  /// Optional static-analysis capture log (CHECKING.md, "Static
  /// analysis"). While attached, the device records every kernel launch,
  /// PCIe transfer, and buffer alloc/free as a dataflow node; after the
  /// solve, `analyze::analyze(*analyzer)` reports ordering hazards, dead
  /// stores, redundant transfers, uninitialized reads, buffer-lifetime
  /// stats and cost-declaration drift over the whole launch graph
  /// (`lp_cli --analyze`). Mutually exclusive with `checker` (both consume
  /// the device's access stream). Host and tableau engines run no device
  /// stream and ignore it. Null (the default) disables capture: results,
  /// DeviceStats and iteration paths are bit-identical with and without a
  /// capture log, the same guarantee every other observer gives.
  /// Borrowed, not owned; must outlive the solve.
  vgpu::analyze::CaptureLog* analyzer = nullptr;

  /// Optional roofline profiler (OBSERVABILITY.md, "Profiler"). While
  /// attached, the engine interposes the profiler as its trace sink (any
  /// `trace_sink` above is chained downstream, so --trace and --profile
  /// compose) and binds its machine model, producing per-kernel and
  /// per-phase aggregates with a roofline bound classification
  /// (launch-bound / bandwidth-bound / compute-bound), a ranked top-N
  /// table, a collapsed-stack flamegraph and `gs-profile-v1` JSON; the
  /// per-kernel modeled-time totals reconcile with
  /// `DeviceStats::kernel_seconds` bit-exactly. Null (the default)
  /// disables profiling: results, DeviceStats and iteration paths are
  /// bit-identical with and without a profiler, the same guarantee every
  /// other observer gives. Borrowed, not owned; must outlive the solve.
  profile::Profiler* profiler = nullptr;

  /// Optional time-series telemetry pipeline (OBSERVABILITY.md,
  /// "Telemetry & SLOs"). While attached, the engine records per-iteration
  /// series on the modeled clock — `engine.objective` every
  /// `iteration_stride`-th iteration, plus `engine.residual_inf` /
  /// `engine.binv_growth` (or `engine.eta_count` for eta-file bases) at
  /// the same cadence, sharing the HealthMonitor's pure-read probes
  /// without perturbing its own sampling. Null (the default) disables
  /// telemetry: results, DeviceStats and iteration paths are bit-identical
  /// with and without a sink, the same guarantee every other observer
  /// gives. Borrowed, not owned; must outlive the solve.
  telemetry::Telemetry* telemetry = nullptr;
};

/// Per-phase and aggregate counters.
struct SolverStats {
  std::size_t iterations = 0;         ///< total simplex iterations (both phases)
  std::size_t phase1_iterations = 0;
  double wall_seconds = 0.0;          ///< measured host wall time
  double sim_seconds = 0.0;           ///< modelled machine time
  vgpu::DeviceStats device_stats;     ///< per-kernel breakdown (device engines)
  /// True iff the solve started from SolverOptions::warm_basis (the basis
  /// validated as feasible and phase 1 was skipped); false on fallback.
  bool warm_started = false;
};

/// Post-optimal sensitivity ranges (HostRevisedSimplex with
/// SolverOptions::ranging). All values are in the original problem's
/// orientation and indexing.
struct RangingInfo {
  /// Per original constraint: the rhs interval over which the optimal
  /// basis stays optimal (objective moves at rate y_i inside it).
  std::vector<double> rhs_lower, rhs_upper;
  /// Per original variable: the objective-coefficient interval over which
  /// the current optimal point stays optimal. NaN bounds mark variables
  /// whose transformation (free split) is not supported for ranging.
  std::vector<double> cost_lower, cost_upper;
};

/// Outcome of a solve, mapped back to the original problem's variables.
struct SolveResult {
  SolveStatus status = SolveStatus::kNumericalTrouble;
  double objective = 0.0;        ///< original orientation; valid iff optimal
  std::vector<double> x;         ///< original variables; valid iff optimal
  /// Dual values (shadow prices), one per original constraint:
  /// y_i = d objective / d rhs_i. Valid iff optimal.
  std::vector<double> y;
  /// Sensitivity ranges; present iff requested and the solve was optimal.
  std::optional<RangingInfo> ranging;
  /// Final basis snapshot: the augmented column basic in each row, the
  /// same layout a Recording's basis field uses. Exported by the host,
  /// device and batch engines; feed it back through
  /// `SolverOptions::warm_basis` to warm-start a repeat or perturbed
  /// solve (SERVICE.md). Meaningful as a warm-start seed iff optimal.
  std::vector<std::uint32_t> basis;
  SolverStats stats;

  [[nodiscard]] bool optimal() const noexcept {
    return status == SolveStatus::kOptimal;
  }
};

}  // namespace gs::simplex
