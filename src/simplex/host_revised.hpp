// Sequential CPU revised simplex: the paper's baseline comparator.
//
// Independent implementation (plain double loops, no device substrate) so
// the test suite can cross-check the device engine against genuinely
// different code. Work is metered through CostMeter with a calibrated
// single-core 2009 CPU model, producing the modelled times the Fig. 1/2
// comparison uses.
#pragma once

#include "lp/problem.hpp"
#include "lp/standard_form.hpp"
#include "simplex/types.hpp"
#include "vgpu/machine_model.hpp"

namespace gs::simplex {

class HostRevisedSimplex {
 public:
  explicit HostRevisedSimplex(SolverOptions options = {},
                              vgpu::MachineModel model = vgpu::cpu2009_model())
      : options_(options), model_(std::move(model)) {}

  [[nodiscard]] SolveResult solve(const lp::LpProblem& problem) const;
  [[nodiscard]] SolveResult solve_standard(const lp::StandardFormLp& sf) const;

 private:
  SolverOptions options_;
  vgpu::MachineModel model_;
};

}  // namespace gs::simplex
