#include "simplex/phase_setup.hpp"

#include <cstring>

#include "support/error.hpp"

namespace gs::simplex {

namespace {

// FNV-1a, 64-bit. Hashing the exact double bit patterns keeps the digest
// independent of engine and working precision (every engine augments the
// same double-precision standard form).
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void mix(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  }
};

}  // namespace

std::uint64_t decision_digest(const AugmentedLp& lp) {
  GS_CHECK_MSG(lp.source != nullptr, "AugmentedLp not initialized");
  Fnv f;
  f.mix(static_cast<std::uint64_t>(lp.m));
  f.mix(static_cast<std::uint64_t>(lp.n));
  f.mix(static_cast<std::uint64_t>(lp.n_aug));
  for (std::size_t i = 0; i < lp.m; ++i) {
    for (const lp::Term& t : lp.source->rows[i]) {
      f.mix(static_cast<std::uint64_t>(t.var));
      f.mix(t.coef);
    }
    f.mix(lp.b[i]);
  }
  for (double c : lp.c_phase2) f.mix(c);
  return f.h;
}

AugmentedLp augment(const lp::StandardFormLp& sf) {
  AugmentedLp out;
  out.m = sf.num_rows();
  out.n = sf.num_cols();
  out.b = sf.b;
  out.source = &sf;

  out.basic.resize(out.m);
  out.binv_diag.resize(out.m);
  out.beta_init.resize(out.m);

  // Crash basis: a row's own slack if present (its coefficient is the row's
  // only entry in that column and stays positive under scaling), otherwise a
  // fresh artificial unit column.
  std::vector<std::uint32_t> artificial_rows;
  for (std::size_t i = 0; i < out.m; ++i) {
    GS_CHECK_MSG(sf.b[i] >= 0.0, "standard form violated: negative rhs");
    const std::int64_t slack = sf.slack_col[i];
    if (slack >= 0) {
      double coef = 0.0;
      for (const lp::Term& t : sf.rows[i]) {
        if (t.var == static_cast<std::uint32_t>(slack)) coef = t.coef;
      }
      GS_CHECK_MSG(coef > 0.0, "slack column lost its positive coefficient");
      out.basic[i] = static_cast<std::uint32_t>(slack);
      out.binv_diag[i] = 1.0 / coef;
      out.beta_init[i] = sf.b[i] / coef;
    } else {
      const auto art_col = static_cast<std::uint32_t>(
          out.n + artificial_rows.size());
      artificial_rows.push_back(static_cast<std::uint32_t>(i));
      out.basic[i] = art_col;
      out.binv_diag[i] = 1.0;
      out.beta_init[i] = sf.b[i];
    }
  }
  out.num_artificial = artificial_rows.size();
  out.artificial_rows = std::move(artificial_rows);
  out.n_aug = out.n + out.num_artificial;

  out.is_artificial.assign(out.n_aug, false);
  for (std::size_t k = 0; k < out.num_artificial; ++k) {
    out.is_artificial[out.n + k] = true;
  }

  out.c_phase1.assign(out.n_aug, 0.0);
  for (std::size_t k = 0; k < out.num_artificial; ++k) {
    out.c_phase1[out.n + k] = 1.0;
  }
  out.c_phase2.assign(out.n_aug, 0.0);
  for (std::size_t j = 0; j < out.n; ++j) out.c_phase2[j] = sf.c[j];

  // Remember which row each artificial column covers (needed to rebuild
  // dense/CSR forms without keeping artificial_rows in the public struct:
  // the artificial for row i is exactly the k-th appended one).
  return out;
}

vblas::Matrix<double> AugmentedLp::dense_at() const {
  GS_CHECK_MSG(source != nullptr, "AugmentedLp not initialized");
  vblas::Matrix<double> at(n_aug, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (const lp::Term& t : source->rows[i]) at(t.var, i) = t.coef;
  }
  std::size_t k = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (is_artificial[basic[i]]) at(n + k++, i) = 1.0;
  }
  GS_CHECK(k == num_artificial);
  return at;
}

sparse::CsrMatrix<double> AugmentedLp::csr_at() const {
  GS_CHECK_MSG(source != nullptr, "AugmentedLp not initialized");
  // Column-major walk of the standard form: transpose the row lists first.
  std::vector<std::uint32_t> offsets(n_aug + 1, 0);
  for (const auto& row : source->rows) {
    for (const lp::Term& t : row) ++offsets[t.var + 1];
  }
  std::size_t k = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (is_artificial[basic[i]]) {
      ++offsets[n + k + 1];
      ++k;
    }
  }
  for (std::size_t j = 1; j <= n_aug; ++j) offsets[j] += offsets[j - 1];
  const std::size_t nnz = offsets[n_aug];
  std::vector<std::uint32_t> cols(nnz);
  std::vector<double> vals(nnz);
  std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t i = 0; i < m; ++i) {
    for (const lp::Term& t : source->rows[i]) {
      const std::uint32_t pos = cursor[t.var]++;
      cols[pos] = static_cast<std::uint32_t>(i);
      vals[pos] = t.coef;
    }
  }
  k = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (is_artificial[basic[i]]) {
      const std::uint32_t pos = cursor[n + k]++;
      cols[pos] = static_cast<std::uint32_t>(i);
      vals[pos] = 1.0;
      ++k;
    }
  }
  return sparse::CsrMatrix<double>(n_aug, m, std::move(offsets),
                                   std::move(cols), std::move(vals));
}

vblas::Matrix<double> AugmentedLp::dense_a() const {
  GS_CHECK_MSG(source != nullptr, "AugmentedLp not initialized");
  vblas::Matrix<double> a(m, n_aug);
  for (std::size_t i = 0; i < m; ++i) {
    for (const lp::Term& t : source->rows[i]) a(i, t.var) = t.coef;
  }
  std::size_t k = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (is_artificial[basic[i]]) a(i, n + k++) = 1.0;
  }
  return a;
}

}  // namespace gs::simplex
