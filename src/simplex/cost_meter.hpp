// Analytic cost meter for the host (CPU) baseline engines.
//
// The CPU baselines do plain serial math; each algorithmic step reports its
// work here and the meter converts it to modelled seconds with the same
// roofline the virtual GPU uses (threads = 1, no launch overhead), so
// GPU-vs-CPU comparisons are model-vs-model on two calibrated machines.
#pragma once

#include <string>
#include <string_view>

#include "vgpu/device.hpp"
#include "vgpu/machine_model.hpp"

namespace gs::simplex {

class CostMeter {
 public:
  explicit CostMeter(vgpu::MachineModel model) : model_(std::move(model)) {}

  /// Charge one step: `flops` floating ops and `bytes` of memory traffic.
  void charge(std::string_view step, double flops, double bytes,
              std::size_t scalar_bytes = 8) {
    const double t = model_.kernel_seconds(flops, bytes, 1, scalar_bytes);
    ++stats_.kernel_launches;
    stats_.kernel_seconds += t;
    stats_.total_flops += flops;
    stats_.total_bytes += bytes;
    auto it = stats_.per_kernel.find(step);
    if (it == stats_.per_kernel.end()) {
      it = stats_.per_kernel.emplace(std::string(step), vgpu::KernelRecord{})
               .first;
    }
    ++it->second.launches;
    it->second.sim_seconds += t;
    it->second.flops += flops;
    it->second.bytes += bytes;
  }

  [[nodiscard]] const vgpu::DeviceStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] double sim_seconds() const noexcept {
    return stats_.sim_seconds();
  }
  [[nodiscard]] const vgpu::MachineModel& model() const noexcept {
    return model_;
  }

 private:
  vgpu::MachineModel model_;
  vgpu::DeviceStats stats_;
};

}  // namespace gs::simplex
