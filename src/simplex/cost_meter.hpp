// Analytic cost meter for the host (CPU) baseline engines.
//
// The CPU baselines do plain serial math; each algorithmic step reports its
// work here and the meter converts it to modelled seconds with the same
// roofline the virtual GPU uses (threads = 1, no launch overhead), so
// GPU-vs-CPU comparisons are model-vs-model on two calibrated machines.
// See README.md "Model-vs-model timing" and DESIGN.md for the rationale.
#pragma once

#include <string>
#include <string_view>

#include "metrics/metrics.hpp"
#include "trace/trace.hpp"
#include "vgpu/device.hpp"
#include "vgpu/machine_model.hpp"

namespace gs::simplex {

/// Accumulates modelled time/flops/bytes for a host engine, producing the
/// same vgpu::DeviceStats shape as a device solve so reporting code
/// (vgpu::print_kernel_breakdown, the benches) is engine-agnostic.
///
/// The meter owns the host-side simulated clock: sim_seconds() advances by
/// the roofline time of each charge() in call order. When a trace sink is
/// attached (see OBSERVABILITY.md) every charge is additionally emitted as
/// a "kernel"-category complete slice on the host track, timestamped on
/// this clock, so host traces reconcile with stats() the same way device
/// traces reconcile with Device::stats().
class CostMeter {
 public:
  /// `sink` and `registry` may be null (that observer off; each disabled
  /// path is one branch). Metrics mirror the same per-step charges under
  /// `cpu.step.*` names, distinct from the device's `vgpu.kernel.*`, so a
  /// GPU-vs-CPU run in one registry keeps the two machines separable.
  explicit CostMeter(vgpu::MachineModel model,
                     trace::TraceSink* sink = nullptr,
                     metrics::MetricsRegistry* registry = nullptr)
      : model_(std::move(model)),
        trace_(sink, trace::kHostPid, trace::kEngineTid),
        metrics_(registry) {
    if (trace_.enabled()) trace_.name_process("cpu: " + model_.name);
    if (metrics_ != nullptr) {
      step_count_ = &metrics_->counter("cpu.step.count");
      step_seconds_ = &metrics_->counter("cpu.step.seconds");
      step_flops_ = &metrics_->counter("cpu.step.flops");
      step_bytes_ = &metrics_->counter("cpu.step.bytes");
      step_hist_ = &metrics_->histogram("cpu.step_seconds",
                                        metrics::seconds_buckets());
    }
  }

  /// Charge one step: `flops` floating ops and `bytes` of memory traffic.
  /// `scalar_bytes` selects the arithmetic roofline (4 float, 8 double).
  void charge(std::string_view step, double flops, double bytes,
              std::size_t scalar_bytes = 8) {
    const double t = model_.kernel_seconds(flops, bytes, 1, scalar_bytes);
    if (trace_.enabled()) {
      trace_.complete(step, stats_.sim_seconds(), t, "kernel",
                      {{"flops", flops},
                       {"bytes", bytes},
                       {"scalar_bytes", static_cast<double>(scalar_bytes)},
                       {"sim_seconds", t}});
    }
    if (metrics_ != nullptr) {
      step_count_->inc();
      step_seconds_->inc(t);
      step_flops_->inc(flops);
      step_bytes_->inc(bytes);
      step_hist_->observe(t);
    }
    ++stats_.kernel_launches;
    stats_.kernel_seconds += t;
    stats_.total_flops += flops;
    stats_.total_bytes += bytes;
    auto it = stats_.per_kernel.find(step);
    if (it == stats_.per_kernel.end()) {
      it = stats_.per_kernel.emplace(std::string(step), vgpu::KernelRecord{})
               .first;
    }
    ++it->second.launches;
    it->second.sim_seconds += t;
    it->second.flops += flops;
    it->second.bytes += bytes;
  }

  /// Aggregates in the device-stats shape (per-step map, totals). A host
  /// meter never moves PCIe traffic, so the transfer fields stay zero.
  [[nodiscard]] const vgpu::DeviceStats& stats() const noexcept {
    return stats_;
  }
  /// Modelled seconds elapsed on this machine since construction.
  [[nodiscard]] double sim_seconds() const noexcept {
    return stats_.sim_seconds();
  }
  /// The calibrated machine this meter charges against.
  [[nodiscard]] const vgpu::MachineModel& model() const noexcept {
    return model_;
  }
  /// The host trace track (disabled when constructed without a sink);
  /// engines reuse it for their algorithm-phase spans.
  [[nodiscard]] const trace::Track& trace() const noexcept { return trace_; }

  /// The attached metrics registry, or nullptr.
  [[nodiscard]] metrics::MetricsRegistry* metrics() const noexcept {
    return metrics_;
  }

 private:
  vgpu::MachineModel model_;
  vgpu::DeviceStats stats_;
  trace::Track trace_;
  metrics::MetricsRegistry* metrics_;  ///< borrowed; nullptr = off
  metrics::Counter* step_count_ = nullptr;
  metrics::Counter* step_seconds_ = nullptr;
  metrics::Counter* step_flops_ = nullptr;
  metrics::Counter* step_bytes_ = nullptr;
  metrics::Histogram* step_hist_ = nullptr;
};

}  // namespace gs::simplex
