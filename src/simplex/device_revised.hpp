// The paper's contribution: revised simplex with every per-iteration
// linear-algebra operation executed as a data-parallel device kernel.
//
// State resident on the device across iterations (the design choice the
// paper's transfer analysis motivates):
//   * A^T           (dense or CSR via the At policy; transposed so column
//                   reads are contiguous)
//   * B^-1          dense m x m, updated in place by a rank-1 Gauss-Jordan
//                   elimination step each iteration (explicit-inverse
//                   scheme; a product-form eta file is the Ext. B ablation)
//   * beta = B^-1 b, pi, d, alpha, ratio vectors, pricing mask, c, c_B
//
// Only scalars cross the PCIe boundary each iteration: the chosen entering/
// leaving indices, theta, and the entering reduced cost. That per-iteration
// transfer latency is charged through the device's machine model and is a
// first-order term below the paper's crossover size.
//
// Template parameters: Real in {float, double} drives the Fig. 3 precision
// study; At in {DenseAt, SparseAt} selects the constraint-matrix storage
// (SparseRevisedSimplex below is the CSR instantiation, Ext. C).
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "lp/problem.hpp"
#include "lp/standard_form.hpp"
#include "profile/profile.hpp"
#include "simplex/at_policy.hpp"
#include "simplex/phase_setup.hpp"
#include "simplex/types.hpp"
#include "support/timer.hpp"
#include "telemetry/telemetry.hpp"
#include "vblas/containers.hpp"
#include "vblas/host_ref.hpp"
#include "vblas/lu.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"
#include "vgpu/primitives.hpp"

namespace gs::simplex {

template <typename Real, template <typename> class At = DenseAt>
class DeviceRevisedSimplex {
 public:
  explicit DeviceRevisedSimplex(vgpu::Device& device,
                                SolverOptions options = {})
      : dev_(device), opt_(options) {}

  /// Solve a general-form LP (conversion + two-phase + recovery).
  [[nodiscard]] SolveResult solve(const lp::LpProblem& problem) {
    const lp::StandardFormLp sf = lp::to_standard_form(problem);
    return solve_standard(sf);
  }

  /// Solve a prepared standard form (used by benches that pre-scale).
  [[nodiscard]] SolveResult solve_standard(const lp::StandardFormLp& sf) {
    WallTimer wall;
    dev_.reset_stats();
    dev_.set_trace(profile::chain(opt_.profiler, opt_.trace_sink,
                                  trace::kDevicePid, dev_.model()));
    // Checker and capture are mutually exclusive sinks; detach the
    // checker first so re-attaching on a reused device can never trip the
    // exclusivity assert on a stale pointer.
    dev_.set_checker(nullptr);
    dev_.set_capture(opt_.analyzer);
    dev_.set_checker(opt_.checker);
    dev_.set_metrics(opt_.metrics);
    dev_.set_recorder(opt_.recorder);
    // Solver-level metrics live for the whole solve (not per run_loop call)
    // so stall streaks and Bland activations span the phase boundary.
    metrics::SimplexOpMetrics op_metrics;
    op_metrics.attach(opt_.metrics);
    metrics::HealthMonitor health(opt_.metrics, opt_.health);
    const trace::Track& tr = dev_.trace();
    const auto clock = [this] { return dev_.sim_seconds(); };
    if (tr.enabled()) tr.name_thread(engine_name());
    // Top-level span; its destructor runs after every nested span's, so
    // the trace unwinds in proper B/E order on any exit path.
    trace::ScopedSpan solve_span(tr, "solve", clock, "solve");
    const AugmentedLp aug = augment(sf);
    Workspace ws(dev_, aug, opt_);
    if (opt_.basis == BasisScheme::kLuFactors) {
      // The LU scheme reads constraint columns host-side; factor the crash
      // basis once up front.
      ws.at_host_lu = aug.dense_at();
      lu_refactorize(ws);
    }
    record::Recorder* rec = opt_.recorder;
    if (rec != nullptr) {
      rec->begin_solve(engine_name(), sizeof(Real) * 8, aug.m, aug.n_aug,
                       decision_digest(aug));
    }

    SolveResult result;
    // Recorder end-of-solve wrapper around finish(): stamps the status and
    // final basis, and triggers the post-mortem dump on a bad exit.
    auto fin = [&](SolveStatus status) -> SolveResult {
      if (rec != nullptr) {
        rec->end_solve(to_string(status), status == SolveStatus::kOptimal,
                       opt_.metrics ? opt_.metrics->warnings_total() : 0,
                       ws.basic);
      }
      result.basis = ws.basic;
      return finish(result, status, wall);
    };
    std::size_t budget = opt_.max_iterations;

    // ---- Phase 1: minimize the artificial sum, if any were needed. ----
    if (aug.num_artificial > 0) {
      trace::ScopedSpan phase_span(tr, "phase1", clock, "phase");
      if (rec != nullptr) rec->begin_phase(1);
      ws.load_costs(aug.c_phase1);
      const LoopExit exit =
          run_loop(ws, budget, result.stats, op_metrics, health, 1);
      result.stats.phase1_iterations = result.stats.iterations;
      if (exit == LoopExit::kIterationLimit) {
        return fin(SolveStatus::kIterationLimit);
      }
      if (exit == LoopExit::kUnbounded) {
        // Phase-1 objective is bounded below by zero; reaching here means
        // the ratio test lost every pivot to numerics.
        return fin(SolveStatus::kNumericalTrouble);
      }
      const double z1 = ws.current_objective();
      const double feas_tol =
          1e-6 * (1.0 + *std::max_element(aug.b.begin(), aug.b.end()));
      if (z1 > feas_tol) {
        return fin(SolveStatus::kInfeasible);
      }
      drive_out_artificials(ws, result.stats.iterations);
      budget -= std::min(budget, result.stats.iterations);
    }

    // ---- Phase 2: original costs, artificials permanently masked. ----
    LoopExit exit;
    {
      trace::ScopedSpan phase_span(tr, "phase2", clock, "phase");
      if (rec != nullptr) rec->begin_phase(2);
      ws.load_costs(aug.c_phase2);
      exit = run_loop(ws, budget, result.stats, op_metrics, health, 2);
    }
    switch (exit) {
      case LoopExit::kOptimal:
        break;
      case LoopExit::kUnbounded:
        return fin(SolveStatus::kUnbounded);
      case LoopExit::kIterationLimit:
        return fin(SolveStatus::kIterationLimit);
    }

    // Extract the optimum: x_std from the basic values, then map back.
    const std::vector<Real> beta = ws.beta.to_host();
    std::vector<double> x_std(aug.n, 0.0);
    for (std::size_t i = 0; i < aug.m; ++i) {
      if (ws.basic[i] < aug.n) {
        x_std[ws.basic[i]] = static_cast<double>(beta[i]);
      }
    }
    result.x = sf.recover(x_std);
    double z = 0.0;
    for (std::size_t j = 0; j < aug.n; ++j) z += sf.c[j] * x_std[j];
    result.objective = sf.original_objective(z);
    // ws.pi still holds the optimal simplex multipliers (the loop priced,
    // found no entering candidate and stopped): they are the duals.
    const std::vector<Real> pi = ws.pi.to_host();
    result.y = sf.recover_duals(std::vector<double>(pi.begin(), pi.end()));
    return fin(SolveStatus::kOptimal);
  }

 private:
  static constexpr Real kInf = std::numeric_limits<Real>::infinity();

  /// Trace thread label (Chrome tid name) for this instantiation.
  [[nodiscard]] static std::string engine_name() {
    return std::string("device-revised<") +
           (sizeof(Real) == 4 ? "float" : "double") + ">";
  }

  enum class LoopExit { kOptimal, kUnbounded, kIterationLimit };

  /// All device-resident solver state for one solve.
  struct Workspace {
    Workspace(vgpu::Device& dev, const AugmentedLp& aug_in,
              const SolverOptions& opt)
        : aug(aug_in),
          m(aug_in.m),
          n_aug(aug_in.n_aug),
          at(dev, aug_in),
          binv(dev, m, m),
          beta(dev, m),
          b_dev(dev, m),
          pi(dev, m),
          cb(dev, m),
          c(dev, n_aug),
          d(dev, n_aug),
          mask(dev, n_aug),
          alpha(dev, m),
          ratio(dev, m),
          pivot_row(dev, m),
          scalar_tmp(dev, 1),
          eta_work(dev, m),
          devex_w(dev, n_aug),
          col_work(dev, n_aug),
          desc(dev, kDescSlots),
          basic(aug_in.basic),
          options(opt) {
      // Initial B^-1 and beta from the crash basis. The inverse starts
      // diagonal, so only the m diagonal entries cross PCIe; a device
      // kernel expands them into the dense m x m matrix (the full-matrix
      // upload was ~a third of all H2D bytes at bench scale).
      std::vector<Real> diag0(m), beta0(m), b0(m);
      for (std::size_t i = 0; i < m; ++i) {
        diag0[i] = static_cast<Real>(aug.binv_diag[i]);
        beta0[i] = static_cast<Real>(aug.beta_init[i]);
        b0[i] = static_cast<Real>(aug.b[i]);
      }
      vgpu::DeviceBuffer<Real> diag_dev(dev,
                                        std::span<const Real>(diag0));
      auto dsp = diag_dev.device_span();
      auto bi = binv.device_span();
      dev.launch_blocks(
          "binv_init", m, vgpu::Device::kBlockSize,
          {0.0, static_cast<double>((m * m + 2 * m) * sizeof(Real)),
           sizeof(Real)},
          [&](std::size_t, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
              bi.write_range(i * m, i * m + m);
              Real* row = bi.data() + i * m;
              for (std::size_t j = 0; j < m; ++j) row[j] = Real{0};
              row[i] = dsp[i];
            }
          });
      beta.upload(beta0);
      b_dev.upload(b0);
      in_basis.assign(n_aug, false);
      for (std::uint32_t col : basic) in_basis[col] = true;
      refresh_mask();
      vgpu::fill(devex_w, Real{1});
    }

    /// Install a phase cost vector (device c and c_B, host copy for swaps).
    void load_costs(const std::vector<double>& costs) {
      c_host.assign(costs.begin(), costs.end());
      std::vector<Real> cr(costs.size());
      for (std::size_t j = 0; j < costs.size(); ++j) {
        cr[j] = static_cast<Real>(costs[j]);
      }
      c.upload(cr);
      std::vector<Real> cbr(m);
      for (std::size_t i = 0; i < m; ++i) cbr[i] = cr[basic[i]];
      cb.upload(cbr);
    }

    /// Pricing mask: 1 for columns allowed to enter (nonbasic and never an
    /// artificial), 0 otherwise.
    void refresh_mask() {
      std::vector<Real> mv(n_aug);
      for (std::size_t j = 0; j < n_aug; ++j) {
        mv[j] = (!in_basis[j] && !aug.is_artificial[j]) ? Real{1} : Real{0};
      }
      mask.upload(mv);
    }

    /// Exact objective of the current phase costs at the current basis
    /// (recomputed from beta; avoids incremental drift).
    [[nodiscard]] double current_objective() const {
      const std::vector<Real> bv = beta.to_host();
      double z = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        z += c_host[basic[i]] * static_cast<double>(bv[i]);
      }
      return z;
    }

    const AugmentedLp& aug;
    std::size_t m, n_aug;

    At<Real> at;
    vblas::DeviceMatrix<Real> binv;
    vgpu::DeviceBuffer<Real> beta, b_dev, pi, cb, c, d, mask, alpha, ratio,
        pivot_row, scalar_tmp, eta_work;
    vgpu::DeviceBuffer<Real> devex_w;
    vgpu::DeviceBuffer<Real> col_work;  ///< n_aug scratch (scores, rows)
    /// Fused-path pivot descriptor (kDescSlots Reals): the iteration's
    /// entering/leaving decisions, filled on device, fetched with one d2h.
    vgpu::DeviceBuffer<Real> desc;

    /// Product-form eta file: one entry per pivot since the last
    /// reinversion. Dense schemes keep the full m-vector in `values`;
    /// the sparse-kernel scheme (SparseAt + product form) stores only the
    /// eta's support as (idx, val) pairs so the eta_apply kernels cost
    /// nnz instead of m.
    struct Eta {
      std::size_t p;
      std::optional<vgpu::DeviceBuffer<Real>> values;
      std::optional<vgpu::DeviceBuffer<std::uint32_t>> idx;
      std::optional<vgpu::DeviceBuffer<Real>> val;
    };
    std::vector<Eta> etas;

    /// LU-factor scheme state: factors of the basis at the last
    /// refactorization (host-side double; the device is charged for the
    /// equivalent blocked kernels), plus a dense host A^T for column reads.
    std::optional<vblas::LuFactors> lu;
    vblas::Matrix<double> at_host_lu;

    std::vector<std::uint32_t> basic;
    std::vector<bool> in_basis;
    std::vector<double> c_host;
    SolverOptions options;
    std::size_t pivots_since_refactor = 0;
  };

  // ---------------------------------------------------------------------
  // Kernels (each one launch on the device, costed like its CUDA original)
  // ---------------------------------------------------------------------

  /// out = (B^-1)^T seed under the active basis scheme.
  void btran_generic(Workspace& ws, const vgpu::DeviceBuffer<Real>& seed,
                     vgpu::DeviceBuffer<Real>& out) {
    const bool with_etas = !ws.etas.empty();
    const bool sparse_pf = At<Real>::kSparseKernels &&
                           ws.options.basis == BasisScheme::kProductForm;
    if ((ws.options.basis == BasisScheme::kProductForm && with_etas) ||
        ws.options.basis == BasisScheme::kLuFactors) {
      // y = seed; apply eta transposes newest-first; then (B0^-1)^T y.
      auto ysp = ws.eta_work.device_span();
      auto ssp = seed.device_span();
      dev_.launch_blocks(
          "price_btran_seed", ws.m, vgpu::Device::kBlockSize,
          {0.0, bytes(2 * ws.m), sizeof(Real)},
          [&](std::size_t, std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) ysp[i] = ssp[i];
          });
      for (auto it = ws.etas.rbegin(); it != ws.etas.rend(); ++it) {
        eta_btran_apply(ws, *it);
      }
      if (ws.options.basis == BasisScheme::kLuFactors) {
        lu_btran_tail(ws, out);
      } else if (sparse_pf) {
        btran_sparse_base(ws, ws.eta_work, out);
      } else {
        btran_dense(ws, ws.eta_work, out);
      }
    } else if (sparse_pf) {
      btran_sparse_base(ws, seed, out);
    } else {
      btran_dense(ws, seed, out);
    }
  }

  void btran(Workspace& ws) { btran_generic(ws, ws.cb, ws.pi); }

  /// out = (B0^-1)^T y: block-local accumulation over columns so rows of
  /// B^-1 stream contiguously.
  void btran_dense(Workspace& ws, const vgpu::DeviceBuffer<Real>& y,
                   vgpu::DeviceBuffer<Real>& out) {
    const std::size_t m = ws.m;
    auto binv = ws.binv.device_span();
    auto ysp = y.device_span();
    auto pisp = out.device_span();
    dev_.launch_blocks(
        "price_btran", m, vgpu::Device::kBlockSize,
        {2.0 * double(m) * double(m), bytes(m * m + 2 * m), sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t j = lo; j < hi; ++j) pisp[j] = Real{0};
          for (std::size_t i = 0; i < m; ++i) {
            const Real yi = ysp[i];
            if (yi == Real{0}) continue;
            binv.read_range(i * m + lo, i * m + hi);
            const Real* row = binv.data() + i * m;
            for (std::size_t j = lo; j < hi; ++j) pisp[j] += yi * row[j];
          }
        });
  }

  /// Sparse-kernel BTRAN base: same arithmetic as btran_dense (the zero
  /// rows of y are skipped either way), but launched as "sparse_btran"
  /// with cost declared from the seed's observed support — nnz(y) rows of
  /// B0^-1 stream instead of all m. The support count is host metadata,
  /// like the CSR extents in SparseAt.
  void btran_sparse_base(Workspace& ws, const vgpu::DeviceBuffer<Real>& y,
                         vgpu::DeviceBuffer<Real>& out) {
    const std::size_t m = ws.m;
    const std::span<const Real> yh = y.host_view();
    std::size_t nnz_y = 0;
    for (std::size_t i = 0; i < m; ++i) nnz_y += yh[i] != Real{0} ? 1 : 0;
    auto binv = ws.binv.device_span();
    auto ysp = y.device_span();
    auto pisp = out.device_span();
    dev_.launch_blocks(
        "sparse_btran", m, vgpu::Device::kBlockSize,
        {2.0 * double(nnz_y) * double(m),
         bytes(nnz_y * m + 2 * m), sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t j = lo; j < hi; ++j) pisp[j] = Real{0};
          for (std::size_t i = 0; i < m; ++i) {
            const Real yi = ysp[i];
            if (yi == Real{0}) continue;
            binv.read_range(i * m + lo, i * m + hi);
            const Real* row = binv.data() + i * m;
            for (std::size_t j = lo; j < hi; ++j) pisp[j] += yi * row[j];
          }
        });
  }

  /// alpha = B^-1 a_q (FTRAN). Under product form / LU: B0^-1 a_q via the
  /// dense inverse or the LU solves, then the eta chain in order.
  void ftran(Workspace& ws, std::size_t q) {
    if (ws.options.basis == BasisScheme::kLuFactors) {
      lu_ftran_head(ws, q);
    } else if (At<Real>::kSparseKernels &&
               ws.options.basis == BasisScheme::kProductForm) {
      ws.at.ftran_alpha(ws.binv, q, ws.alpha, "sparse_ftran");
    } else {
      ws.at.ftran_alpha(ws.binv, q, ws.alpha);
    }
    if (ws.options.basis != BasisScheme::kExplicitInverse) {
      for (const auto& eta : ws.etas) eta_ftran_apply(ws, eta);
    }
  }

  // -------------------------------------------------------------------
  // LU-factor scheme: B0 = P^-1 L U. The triangular solves execute on the
  // host in double (exactness), while the device is charged the blocked
  // trsv it would run: ceil(m/64) dependent panel kernels per solve — the
  // launch-latency chain that made 2009 GPU implementations avoid LU.
  // -------------------------------------------------------------------

  static constexpr std::size_t kTrsvPanel = 64;

  void charge_trsv(Workspace& ws, std::string_view name) {
    const std::size_t m = ws.m;
    const std::size_t stages = (m + kTrsvPanel - 1) / kTrsvPanel;
    const double flops_total = static_cast<double>(m) * static_cast<double>(m);
    const double bytes_total = bytes(m * m + 2 * m);
    for (std::size_t s = 0; s < stages; ++s) {
      dev_.account_kernel(name,
                          {flops_total / static_cast<double>(stages),
                           bytes_total / static_cast<double>(stages),
                           sizeof(Real)},
                          m - s * kTrsvPanel);
    }
  }

  /// alpha = B0^-1 a_q via LU solves (charged as 2 blocked trsv chains).
  void lu_ftran_head(Workspace& ws, std::size_t q) {
    GS_CHECK_MSG(ws.lu.has_value(), "LU factors missing");
    std::vector<double> aq(ws.m);
    for (std::size_t i = 0; i < ws.m; ++i) aq[i] = ws.at_host_lu(q, i);
    const std::vector<double> x = vblas::lu_solve(*ws.lu, aq);
    auto asp = ws.alpha.device_span();
    for (std::size_t i = 0; i < ws.m; ++i) {
      asp[i] = static_cast<Real>(x[i]);
    }
    charge_trsv(ws, "ftran_trsv_l");
    charge_trsv(ws, "ftran_trsv_u");
  }

  /// out = (B0^-1)^T eta_work via transposed LU solves.
  void lu_btran_tail(Workspace& ws, vgpu::DeviceBuffer<Real>& out) {
    GS_CHECK_MSG(ws.lu.has_value(), "LU factors missing");
    auto ysp = ws.eta_work.device_span();
    std::vector<double> y(ws.m);
    for (std::size_t i = 0; i < ws.m; ++i) {
      y[i] = static_cast<double>(ysp[i]);
    }
    const std::vector<double> x = vblas::lu_solve_transposed(*ws.lu, y);
    auto osp = out.device_span();
    for (std::size_t i = 0; i < ws.m; ++i) {
      osp[i] = static_cast<Real>(x[i]);
    }
    charge_trsv(ws, "btran_trsv_u");
    charge_trsv(ws, "btran_trsv_l");
  }

  /// Refactorize the LU basis: assemble B, factor, clear etas, refresh beta.
  void lu_refactorize(Workspace& ws) {
    const std::size_t m = ws.m;
    ws.lu = vblas::lu_factor(assemble_basis(ws));
    ws.etas.clear();
    ws.pivots_since_refactor = 0;
    dev_.account_kernel(
        "lu_refactor",
        {(2.0 / 3.0) * double(m) * double(m) * double(m), bytes(2 * m * m),
         sizeof(Real)},
        m);
    const std::vector<double> beta = vblas::lu_solve(*ws.lu, ws.aug.b);
    auto bsp = ws.beta.device_span();
    for (std::size_t i = 0; i < m; ++i) {
      bsp[i] = beta[i] < 0.0 ? Real{0} : static_cast<Real>(beta[i]);
    }
    charge_trsv(ws, "refresh_beta_trsv");
  }

  /// Product-form FTRAN step: x = M x with M the eta matrix. x[p] is
  /// snapshotted by a tiny kernel first so all lanes read the pre-update
  /// value (as the CUDA original would).
  void eta_ftran_apply(Workspace& ws, const typename Workspace::Eta& eta) {
    if (eta.idx.has_value()) {
      eta_ftran_apply_sparse(ws, eta);
      return;
    }
    auto xsp = ws.alpha.device_span();
    auto esp = eta.values->device_span();
    auto tmp = ws.scalar_tmp.device_span();
    const std::size_t p = eta.p;
    dev_.launch_blocks("eta_snapshot", 1, 1, {0.0, bytes(2), sizeof(Real)},
                       [&](std::size_t, std::size_t, std::size_t) {
                         tmp[0] = xsp[p];
                       });
    dev_.launch_blocks(
        "eta_ftran", ws.m, vgpu::Device::kBlockSize,
        {2.0 * double(ws.m), bytes(3 * ws.m), sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          const Real xp = tmp[0];
          for (std::size_t i = lo; i < hi; ++i) {
            xsp[i] = (i == p) ? esp[i] * xp : xsp[i] + esp[i] * xp;
          }
        });
  }

  /// Sparse eta_apply (FTRAN direction): only the eta's support is
  /// touched, so the launch costs nnz flops/bytes instead of m. Each
  /// entry has one writer (support indices are unique) — race-free under
  /// the checker.
  void eta_ftran_apply_sparse(Workspace& ws,
                              const typename Workspace::Eta& eta) {
    auto xsp = ws.alpha.device_span();
    auto isp = eta.idx->device_span();
    auto vsp = eta.val->device_span();
    auto tmp = ws.scalar_tmp.device_span();
    const std::size_t p = eta.p;
    const std::size_t nnz = eta.val->size();
    dev_.launch_blocks("eta_snapshot", 1, 1, {0.0, bytes(2), sizeof(Real)},
                       [&](std::size_t, std::size_t, std::size_t) {
                         tmp[0] = xsp[p];
                       });
    dev_.launch_blocks(
        "eta_apply", nnz, vgpu::Device::kBlockSize,
        {2.0 * double(nnz),
         double(nnz * (2 * sizeof(Real) + sizeof(std::uint32_t)) +
                nnz * sizeof(Real) + 2 * sizeof(Real)),
         sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          const Real xp = tmp[0];
          for (std::size_t k = lo; k < hi; ++k) {
            const std::size_t i = isp[k];
            xsp[i] = (i == p) ? vsp[k] * xp : xsp[i] + vsp[k] * xp;
          }
        });
  }

  /// Product-form BTRAN step on ws.eta_work: y_p = eta . y.
  void eta_btran_apply(Workspace& ws, const typename Workspace::Eta& eta) {
    if (eta.idx.has_value()) {
      eta_btran_apply_sparse(ws, eta);
      return;
    }
    auto ysp = ws.eta_work.device_span();
    auto esp = eta.values->device_span();
    const std::size_t m = ws.m;
    const std::size_t blocks =
        (m + vgpu::Device::kBlockSize - 1) / vgpu::Device::kBlockSize;
    std::vector<Real> partial(blocks, Real{0});
    dev_.launch_blocks(
        "eta_btran_dot", m, vgpu::Device::kBlockSize,
        {2.0 * double(m), bytes(2 * m), sizeof(Real)},
        [&](std::size_t blk, std::size_t lo, std::size_t hi) {
          Real acc{0};
          for (std::size_t i = lo; i < hi; ++i) acc += esp[i] * ysp[i];
          partial[blk] = acc;
        });
    const std::size_t p = eta.p;
    dev_.launch_blocks("eta_btran_write", 1, 1,
                       {double(blocks), bytes(blocks + 1), sizeof(Real)},
                       [&](std::size_t, std::size_t, std::size_t) {
                         Real acc{0};
                         for (std::size_t b = 0; b < blocks; ++b)
                           acc += partial[b];
                         ysp[p] = acc;
                       });
  }

  /// Sparse eta_apply (BTRAN direction): the dot runs over the eta's
  /// support only; the per-block partials combine in the same tiny write
  /// kernel as the dense path.
  void eta_btran_apply_sparse(Workspace& ws,
                              const typename Workspace::Eta& eta) {
    auto ysp = ws.eta_work.device_span();
    auto isp = eta.idx->device_span();
    auto vsp = eta.val->device_span();
    const std::size_t nnz = eta.val->size();
    const std::size_t blocks =
        (nnz + vgpu::Device::kBlockSize - 1) / vgpu::Device::kBlockSize;
    std::vector<Real> partial(blocks, Real{0});
    dev_.launch_blocks(
        "eta_apply", nnz, vgpu::Device::kBlockSize,
        {2.0 * double(nnz),
         double(nnz * (2 * sizeof(Real) + sizeof(std::uint32_t))),
         sizeof(Real)},
        [&](std::size_t blk, std::size_t lo, std::size_t hi) {
          Real acc{0};
          for (std::size_t k = lo; k < hi; ++k) acc += vsp[k] * ysp[isp[k]];
          partial[blk] = acc;
        });
    const std::size_t p = eta.p;
    dev_.launch_blocks("eta_btran_write", 1, 1,
                       {double(blocks), bytes(blocks + 1), sizeof(Real)},
                       [&](std::size_t, std::size_t, std::size_t) {
                         Real acc{0};
                         for (std::size_t b = 0; b < blocks; ++b)
                           acc += partial[b];
                         ysp[p] = acc;
                       });
  }

  /// ratio_i = beta_i / alpha_i where alpha_i > pivot_tol, else +inf.
  void ratio_test_kernel(Workspace& ws) {
    auto asp = ws.alpha.device_span();
    auto bsp = ws.beta.device_span();
    auto rsp = ws.ratio.device_span();
    const Real tol = static_cast<Real>(ws.options.pivot_tol);
    dev_.launch_blocks(
        "ratio", ws.m, vgpu::Device::kBlockSize,
        {double(ws.m), bytes(3 * ws.m), sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            rsp[i] = asp[i] > tol ? bsp[i] / asp[i] : kInf;
          }
        });
  }

  /// beta update after the pivot: beta_p = theta, beta_i -= theta*alpha_i.
  void update_beta(Workspace& ws, std::size_t p, Real theta) {
    auto asp = ws.alpha.device_span();
    auto bsp = ws.beta.device_span();
    const Real round_tol = static_cast<Real>(ws.options.round_tol);
    dev_.launch_blocks(
        "update_beta", ws.m, vgpu::Device::kBlockSize,
        {2.0 * double(ws.m), bytes(3 * ws.m), sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            Real v = (i == p) ? theta : bsp[i] - theta * asp[i];
            if (round_tol > Real{0} && std::abs(v) < round_tol) v = Real{0};
            // The ratio test guarantees v >= 0 in exact arithmetic; clamp
            // the rounding dust so the basis stays primal feasible.
            bsp[i] = v < Real{0} ? Real{0} : v;
          }
        });
  }

  /// Copy row p of B^-1 into ws.pivot_row.
  void save_pivot_row(Workspace& ws, std::size_t p) {
    const std::size_t m = ws.m;
    auto binv = ws.binv.device_span();
    auto prow = ws.pivot_row.device_span();
    dev_.launch_blocks(
        "save_pivot_row", m, vgpu::Device::kBlockSize,
        {0.0, bytes(2 * m), sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t j = lo; j < hi; ++j) prow[j] = binv[p * m + j];
        });
  }

  /// Rank-1 Gauss-Jordan update of the explicit inverse:
  ///   row_p /= alpha_p;  row_i -= (alpha_i / alpha_p) * old row_p.
  /// Requires save_pivot_row(p) to have run.
  void update_binv(Workspace& ws, std::size_t p, Real alpha_p) {
    const std::size_t m = ws.m;
    auto binv = ws.binv.device_span();
    auto prow = ws.pivot_row.device_span();
    auto asp = ws.alpha.device_span();
    const Real round_tol = static_cast<Real>(ws.options.round_tol);
    dev_.launch_blocks(
        "update_binv", m, vgpu::Device::kBlockSize,
        {2.0 * double(m) * double(m), bytes(2 * m * m + 2 * m), sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            Real* row = binv.data() + i * m;
            if (i == p) {
              binv.write_range(i * m, i * m + m);
              const Real inv = Real{1} / alpha_p;
              for (std::size_t j = 0; j < m; ++j) {
                Real v = prow[j] * inv;
                if (round_tol > Real{0} && std::abs(v) < round_tol) v = Real{0};
                row[j] = v;
              }
            } else {
              const Real f = asp[i] / alpha_p;
              if (f == Real{0}) continue;
              binv.read_range(i * m, i * m + m);
              binv.write_range(i * m, i * m + m);
              for (std::size_t j = 0; j < m; ++j) {
                Real v = row[j] - f * prow[j];
                if (round_tol > Real{0} && std::abs(v) < round_tol) v = Real{0};
                row[j] = v;
              }
            }
          }
        });
  }

  // -------------------------------------------------------------------
  // Fused iteration kernels (SolverOptions::fused_iteration). Same
  // arithmetic as the reference kernels above, collapsed so one iteration
  // costs 5 launches (6 with Devex) and ONE scalar-sized PCIe readback.
  // -------------------------------------------------------------------

  /// Fused save_pivot_row + update_beta: one m-wide launch snapshots the
  /// pre-update pivot row of B^-1 and steps beta past the pivot.
  void pivot_stage(Workspace& ws, std::size_t p, Real theta) {
    const std::size_t m = ws.m;
    auto binv = ws.binv.device_span();
    auto prow = ws.pivot_row.device_span();
    auto asp = ws.alpha.device_span();
    auto bsp = ws.beta.device_span();
    const Real round_tol = static_cast<Real>(ws.options.round_tol);
    dev_.launch_blocks(
        "pivot_stage", m, vgpu::Device::kBlockSize,
        {2.0 * double(m), bytes(5 * m), sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            prow[i] = binv[p * m + i];
            Real v = (i == p) ? theta : bsp[i] - theta * asp[i];
            if (round_tol > Real{0} && std::abs(v) < round_tol) v = Real{0};
            bsp[i] = v < Real{0} ? Real{0} : v;
          }
        });
  }

  /// Tile width for the fused elimination inner loop: prow tiles stay hot
  /// in L1 across consecutive rows of the update.
  static constexpr std::size_t kEliminationTile = 64;

  /// Fused rank-1 update of B^-1 + the pivot's scalar bookkeeping. The
  /// reference path's three upload_value round trips (c_B[p], mask[q] off,
  /// mask[leaving] on) ride along as kernel arguments written by the pivot
  /// lane — zero per-iteration H2D traffic. The default round_tol == 0
  /// elimination loop is branch-free and cache-blocked so it vectorizes.
  void pivot_apply(Workspace& ws, std::size_t q, std::size_t p, Real alpha_p,
                   Real cb_new, std::size_t leaving, bool unmask_leaving) {
    const std::size_t m = ws.m;
    auto binv = ws.binv.device_span();
    auto prow = ws.pivot_row.device_span();
    auto asp = ws.alpha.device_span();
    auto csp = ws.cb.device_span();
    auto msp = ws.mask.device_span();
    const Real round_tol = static_cast<Real>(ws.options.round_tol);
    dev_.launch_blocks(
        "pivot_apply", m, vgpu::Device::kBlockSize,
        {2.0 * double(m) * double(m), bytes(2 * m * m + 2 * m + 4),
         sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            Real* row = binv.data() + i * m;
            if (i == p) {
              binv.write_range(i * m, i * m + m);
              const Real inv = Real{1} / alpha_p;
              for (std::size_t j = 0; j < m; ++j) {
                Real v = prow[j] * inv;
                if (round_tol > Real{0} && std::abs(v) < round_tol) {
                  v = Real{0};
                }
                row[j] = v;
              }
              // One writer each: the pivot lane owns the scalar pokes.
              csp[p] = cb_new;
              msp[q] = Real{0};
              if (unmask_leaving) msp[leaving] = Real{1};
            } else {
              const Real f = asp[i] / alpha_p;
              if (f == Real{0}) continue;
              binv.read_range(i * m, i * m + m);
              binv.write_range(i * m, i * m + m);
              if (round_tol > Real{0}) {
                for (std::size_t j = 0; j < m; ++j) {
                  Real v = row[j] - f * prow[j];
                  if (std::abs(v) < round_tol) v = Real{0};
                  row[j] = v;
                }
              } else {
                for (std::size_t j0 = 0; j0 < m; j0 += kEliminationTile) {
                  const std::size_t j1 = std::min(m, j0 + kEliminationTile);
                  for (std::size_t j = j0; j < j1; ++j) {
                    row[j] = row[j] - f * prow[j];
                  }
                }
              }
            }
          }
        });
  }

  /// Product-form: append the eta for this pivot instead of updating B^-1.
  void append_eta(Workspace& ws, std::size_t p, Real alpha_p) {
    if (At<Real>::kSparseKernels &&
        ws.options.basis == BasisScheme::kProductForm) {
      append_eta_sparse(ws, p, alpha_p);
      return;
    }
    vgpu::DeviceBuffer<Real> eta(dev_, ws.m);
    auto asp = ws.alpha.device_span();
    auto esp = eta.device_span();
    dev_.launch_blocks(
        "make_eta", ws.m, vgpu::Device::kBlockSize,
        {double(ws.m), bytes(2 * ws.m), sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          const Real inv = Real{1} / alpha_p;
          for (std::size_t i = lo; i < hi; ++i) {
            esp[i] = (i == p) ? inv : -asp[i] * inv;
          }
        });
    ws.etas.push_back({p, std::move(eta)});
  }

  /// Sparse-kernel eta append: the support is alpha's nonzero pattern.
  /// The index list is host metadata (the CUDA original would run a
  /// stream compaction; like the CSR extents in SparseAt it is read
  /// outside the machine model), while the eta values themselves are
  /// computed on device from alpha so the arithmetic stays in-model.
  void append_eta_sparse(Workspace& ws, std::size_t p, Real alpha_p) {
    const std::span<const Real> ah = ws.alpha.host_view();
    std::vector<std::uint32_t> support;
    for (std::uint32_t i = 0; i < ws.m; ++i) {
      if (ah[i] != Real{0} || i == p) support.push_back(i);
    }
    const std::size_t nnz = support.size();
    vgpu::DeviceBuffer<std::uint32_t> idx(
        dev_, std::span<const std::uint32_t>(support));
    vgpu::DeviceBuffer<Real> val(dev_, nnz);
    auto asp = ws.alpha.device_span();
    auto isp = idx.device_span();
    auto vsp = val.device_span();
    dev_.launch_blocks(
        "make_eta", nnz, vgpu::Device::kBlockSize,
        {double(nnz),
         double(nnz * (2 * sizeof(Real) + sizeof(std::uint32_t))),
         sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          const Real inv = Real{1} / alpha_p;
          for (std::size_t k = lo; k < hi; ++k) {
            const std::size_t i = isp[k];
            vsp[k] = (i == p) ? inv : -asp[i] * inv;
          }
        });
    ws.etas.push_back({p, std::nullopt, std::move(idx), std::move(val)});
  }

  /// Assemble the current basis matrix from the augmented problem's rows.
  [[nodiscard]] vblas::Matrix<double> assemble_basis(const Workspace& ws) const {
    const std::size_t m = ws.m;
    std::vector<std::int64_t> pos_of_col(ws.n_aug, -1);
    for (std::size_t i = 0; i < m; ++i) {
      pos_of_col[ws.basic[i]] = std::int64_t(i);
    }
    vblas::Matrix<double> basis(m, m);
    const lp::StandardFormLp& sf = *ws.aug.source;
    for (std::size_t r = 0; r < m; ++r) {
      for (const lp::Term& t : sf.rows[r]) {
        const std::int64_t pos = pos_of_col[t.var];
        if (pos >= 0) basis(r, static_cast<std::size_t>(pos)) = t.coef;
      }
    }
    for (std::size_t k = 0; k < ws.aug.num_artificial; ++k) {
      const std::int64_t pos = pos_of_col[ws.aug.n + k];
      if (pos >= 0) {
        basis(ws.aug.artificial_rows[k], static_cast<std::size_t>(pos)) = 1.0;
      }
    }
    return basis;
  }

  /// Rebuild B^-1 from the current basis columns (host Gauss-Jordan in
  /// double for exactness; charged as a device O(m^3) elimination). Resets
  /// the eta file and refreshes beta = B^-1 b.
  void reinvert(Workspace& ws) {
    const std::size_t m = ws.m;
    const vblas::Matrix<double> inv = vblas::ref::invert(assemble_basis(ws));
    auto binv = ws.binv.device_span();
    dev_.launch_blocks(
        "reinvert", m, vgpu::Device::kBlockSize,
        {2.0 * double(m) * double(m) * double(m), bytes(3 * m * m),
         sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            for (std::size_t j = 0; j < m; ++j) {
              binv[i * m + j] = static_cast<Real>(inv(i, j));
            }
          }
        });
    ws.etas.clear();
    ws.pivots_since_refactor = 0;
    // beta = B^-1 b (clamped: the basis is primal feasible by invariant).
    auto bsp = ws.b_dev.device_span();
    auto betasp = ws.beta.device_span();
    dev_.launch_blocks(
        "refresh_beta", m, vgpu::Device::kBlockSize,
        {2.0 * double(m) * double(m), bytes(m * m + 2 * m), sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            binv.read_range(i * m, i * m + m);
            const Real* row = binv.data() + i * m;
            Real acc{0};
            for (std::size_t k = 0; k < m; ++k) acc += row[k] * bsp[k];
            betasp[i] = acc < Real{0} ? Real{0} : acc;
          }
        });
  }

  // ---------------------------------------------------------------------
  // Pricing
  // ---------------------------------------------------------------------

  /// Pick the entering column (or nullopt at optimality). `use_bland`
  /// overrides the configured rule during degeneracy streaks.
  [[nodiscard]] std::optional<std::size_t> select_entering(Workspace& ws,
                                                           bool use_bland) {
    const Real tol = static_cast<Real>(ws.options.opt_tol);
    if (use_bland || ws.options.pricing == PricingRule::kBland) {
      const auto hit = vgpu::find_first_below(ws.d, -tol);
      if (!hit.found()) return std::nullopt;
      return hit.index;
    }
    if (ws.options.pricing == PricingRule::kDevex) {
      auto dsp = ws.d.device_span();
      auto wsp = ws.devex_w.device_span();
      auto ssp = ws.col_work.device_span();
      dev_.launch_blocks(
          "devex_score", ws.n_aug, vgpu::Device::kBlockSize,
          {3.0 * double(ws.n_aug), bytes(3 * ws.n_aug), sizeof(Real)},
          [&](std::size_t, std::size_t lo, std::size_t hi) {
            for (std::size_t j = lo; j < hi; ++j) {
              ssp[j] = dsp[j] < -tol ? -(dsp[j] * dsp[j]) / wsp[j] : Real{0};
            }
          });
      const auto best = vgpu::argmin(ws.col_work);
      if (!best.found() || best.value >= Real{0}) return std::nullopt;
      return best.index;
    }
    // Dantzig: most negative reduced cost.
    const auto best = vgpu::argmin(ws.d);
    if (!best.found() || best.value >= -tol) return std::nullopt;
    return best.index;
  }

  /// pivot_row <- row `i` of B^-1 under the active basis scheme: a cheap
  /// row copy for the explicit inverse, a unit-vector BTRAN otherwise.
  void compute_binv_row(Workspace& ws, std::size_t i) {
    if (ws.options.basis == BasisScheme::kExplicitInverse) {
      save_pivot_row(ws, i);
      return;
    }
    // ws.ratio is free at every call site; use it as the unit seed.
    auto seed = ws.ratio.device_span();
    dev_.launch_blocks(
        "unit_seed", ws.m, vgpu::Device::kBlockSize,
        {0.0, bytes(ws.m), sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t k = lo; k < hi; ++k) {
            seed[k] = k == i ? Real{1} : Real{0};
          }
        });
    btran_generic(ws, ws.ratio, ws.pivot_row);
  }

  /// Devex weight maintenance (uses the pre-update B^-1 row p).
  void devex_update(Workspace& ws, std::size_t q, std::size_t p,
                    Real alpha_p) {
    // alpha-tilde_j = (B^-1 A)_pj for all columns: one pricing-shaped pass
    // against the pivot row of the current inverse.
    compute_binv_row(ws, p);
    ws.at.pivot_row_product(ws.pivot_row, ws.col_work);
    const Real wq = ws.devex_w.download_value(q);
    auto wsp = ws.devex_w.device_span();
    auto msp = ws.mask.device_span();
    auto rsp = ws.col_work.device_span();
    dev_.launch_blocks(
        "devex_update", ws.n_aug, vgpu::Device::kBlockSize,
        {4.0 * double(ws.n_aug), bytes(3 * ws.n_aug), sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t j = lo; j < hi; ++j) {
            if (msp[j] == Real{0}) continue;
            const Real t = rsp[j] / alpha_p;
            const Real cand = t * t * wq;
            if (cand > wsp[j]) wsp[j] = cand;
          }
        });
    // The leaving variable re-enters the nonbasic pool with the reference
    // weight of the pivot.
    const Real w_leave = std::max(wq / (alpha_p * alpha_p), Real{1});
    ws.devex_w.upload_value(ws.basic[p], w_leave);
  }

  // ---------------------------------------------------------------------
  // Main loop
  // ---------------------------------------------------------------------

  LoopExit run_loop(Workspace& ws, std::size_t budget, SolverStats& stats,
                    metrics::SimplexOpMetrics& om,
                    metrics::HealthMonitor& health, std::uint8_t phase) {
    if (ws.options.fused_iteration &&
        ws.options.basis == BasisScheme::kExplicitInverse) {
      return run_loop_fused(ws, budget, stats, om, health, phase);
    }
    const trace::Track& tr = dev_.trace();
    const auto clock = [this] { return dev_.sim_seconds(); };
    // Per-op modeled-time laps on the simulated clock: `lap` advances at
    // each op boundary, so scalar readbacks between ops (alpha_p, d_q) are
    // charged to the op that consumes them — the same tiling the trace's
    // op spans produce.
    const bool om_on = om.enabled();
    double lap = om_on ? dev_.sim_seconds() : 0.0;
    const auto lap_observe = [&](metrics::SimplexOp op) {
      if (!om_on) return;
      const double now = dev_.sim_seconds();
      om.observe(op, now - lap);
      lap = now;
    };
    double z = ws.current_objective();
    std::size_t since_improve = 0;
    bool bland_mode = false;
    for (std::size_t iter = 0; iter < budget; ++iter) {
      // Hybrid pricing: Bland during degeneracy streaks.
      if (ws.options.pricing == PricingRule::kHybrid) {
        bland_mode = since_improve >= ws.options.degeneracy_window;
      }

      trace::ScopedSpan iter_span(tr, "iteration", clock, "iteration",
                                  {{"iter", static_cast<double>(iter)}});
      if (om_on) lap = dev_.sim_seconds();

      std::optional<std::size_t> entering;
      Real d_q{};
      {
        trace::ScopedSpan op(tr, "price", clock, "op");
        btran(ws);
        ws.at.price(ws.pi, ws.c, ws.mask, ws.d);
        entering = select_entering(ws, bland_mode);
        if (entering.has_value()) d_q = ws.d.download_value(*entering);
      }
      lap_observe(metrics::SimplexOp::kPrice);
      if (!entering.has_value()) return LoopExit::kOptimal;
      const std::size_t q = *entering;

      {
        trace::ScopedSpan op(tr, "ftran", clock, "op");
        ftran(ws, q);
      }
      lap_observe(metrics::SimplexOp::kFtran);
      vgpu::ArgResult<Real> leave;
      {
        trace::ScopedSpan op(tr, "ratio", clock, "op");
        ratio_test_kernel(ws);
        leave = vgpu::argmin(ws.ratio);
      }
      lap_observe(metrics::SimplexOp::kRatio);
      if (!leave.found() || leave.value == kInf) return LoopExit::kUnbounded;
      const std::size_t p = leave.index;
      const Real theta = leave.value;
      const Real alpha_p = ws.alpha.download_value(p);

      if (record::Recorder* rec = opt_.recorder) {
        // Ratio ties are counted through host_view() — outside the machine
        // model, so recording charges no PCIe time and perturbs nothing.
        const std::span<const Real> rv = ws.ratio.host_view();
        std::uint32_t ties = 0;
        for (std::size_t i = 0; i < ws.m; ++i) {
          if (rv[i] == theta) ++ties;
        }
        record::DecisionRecord r;
        r.phase = phase;
        r.bland = (bland_mode || ws.options.pricing == PricingRule::kBland)
                      ? 1
                      : 0;
        r.iteration = stats.iterations;  // global ordinal, pre-increment
        r.entering = static_cast<std::uint32_t>(q);
        r.leaving_row = static_cast<std::uint32_t>(p);
        r.leaving_col = ws.basic[p];
        r.ratio_ties = ties;
        r.reduced_cost = static_cast<double>(d_q);
        r.pivot_value = static_cast<double>(alpha_p);
        r.theta = static_cast<double>(theta);
        rec->record_pivot(r);
      }

      {
        trace::ScopedSpan op(tr, "update", clock, "op");
        if (ws.options.pricing == PricingRule::kDevex) {
          devex_update(ws, q, p, alpha_p);
        }
        pivot(ws, q, p, theta, alpha_p);
      }
      lap_observe(metrics::SimplexOp::kUpdate);
      ++stats.iterations;
      om.count_iteration();
      health.record_pivot(
          static_cast<double>(alpha_p), static_cast<double>(theta),
          bland_mode || ws.options.pricing == PricingRule::kBland, iter);

      const double dz = static_cast<double>(theta) * static_cast<double>(d_q);
      const double new_z = z + dz;
      if (new_z < z - 1e-12 * (1.0 + std::abs(z))) {
        since_improve = 0;
        bland_mode = false;
      } else {
        ++since_improve;
      }
      z = new_z;
      if (tr.enabled()) tr.counter("objective", dev_.sim_seconds(), z);
      telemetry::Telemetry* tel = ws.options.telemetry;
      const bool want_tel =
          tel != nullptr && tel->want_iteration_sample(iter);
      if (want_tel) tel->record("engine.objective", dev_.sim_seconds(), z);

      // Periodic refactorization to shed accumulated rounding error
      // (explicit inverse) or to bound the eta file (product form / LU).
      ++ws.pivots_since_refactor;
      const std::size_t period =
          ws.options.basis == BasisScheme::kExplicitInverse
              ? ws.options.refactor_period
              : (ws.options.reinversion_period > 0
                     ? ws.options.reinversion_period
                     : ws.m);
      if (period > 0 && ws.pivots_since_refactor >= period) {
        trace::ScopedSpan op(tr, "refactor", clock, "op");
        if (ws.options.basis == BasisScheme::kLuFactors) {
          lu_refactorize(ws);
        } else {
          reinvert(ws);
        }
        lap_observe(metrics::SimplexOp::kRefactor);
        if (record::Recorder* rec = opt_.recorder) {
          rec->record_refactor(stats.iterations);
        }
      }

      const bool want_health = health.want_residual_sample(iter);
      if (want_health || want_tel) {
        sample_health(ws, health, want_health, want_tel ? tel : nullptr,
                      iter);
      }
    }
    return LoopExit::kIterationLimit;
  }

  /// The fused twin of run_loop (explicit inverse only): per iteration,
  ///   price_btran -> price_select -> ftran_ratio -> [descriptor d2h]
  ///   -> pivot_stage -> [devex_update_fused] -> pivot_apply.
  /// The pivot sequence is bit-identical to run_loop's — the fused
  /// selections share the primitives' block-scan semantics and the device-
  /// side acceptance tests mirror the host ones — so recordings diff clean
  /// against the reference path (tests/test_fusion.cpp). Observer side
  /// effects (trace op spans, metrics laps, recorder fields, health
  /// samples) are kept structurally identical.
  LoopExit run_loop_fused(Workspace& ws, std::size_t budget,
                          SolverStats& stats, metrics::SimplexOpMetrics& om,
                          metrics::HealthMonitor& health, std::uint8_t phase) {
    const trace::Track& tr = dev_.trace();
    const auto clock = [this] { return dev_.sim_seconds(); };
    const bool om_on = om.enabled();
    double lap = om_on ? dev_.sim_seconds() : 0.0;
    const auto lap_observe = [&](metrics::SimplexOp op) {
      if (!om_on) return;
      const double now = dev_.sim_seconds();
      om.observe(op, now - lap);
      lap = now;
    };
    double z = ws.current_objective();
    std::size_t since_improve = 0;
    bool bland_mode = false;
    std::array<Real, kDescSlots> desc_h{};
    for (std::size_t iter = 0; iter < budget; ++iter) {
      if (ws.options.pricing == PricingRule::kHybrid) {
        bland_mode = since_improve >= ws.options.degeneracy_window;
      }

      trace::ScopedSpan iter_span(tr, "iteration", clock, "iteration",
                                  {{"iter", static_cast<double>(iter)}});
      if (om_on) lap = dev_.sim_seconds();

      const bool bland_now =
          bland_mode || ws.options.pricing == PricingRule::kBland;
      const EnteringRule rule =
          bland_now ? EnteringRule::kBland
                    : (ws.options.pricing == PricingRule::kDevex
                           ? EnteringRule::kDevex
                           : EnteringRule::kDantzig);
      {
        trace::ScopedSpan op(tr, "price", clock, "op");
        btran_dense(ws, ws.cb, ws.pi);
        ws.at.price_select(ws.pi, ws.c, ws.mask, ws.d, ws.col_work,
                           ws.devex_w, ws.desc, rule,
                           static_cast<Real>(ws.options.opt_tol));
      }
      lap_observe(metrics::SimplexOp::kPrice);
      {
        // Speculative: issued before the host knows whether pricing found
        // a candidate; the kernel early-exits on-device when it did not.
        trace::ScopedSpan op(tr, "ftran", clock, "op");
        ws.at.ftran_ratio_select(ws.binv, ws.beta, ws.alpha, ws.ratio,
                                 ws.desc,
                                 static_cast<Real>(ws.options.pivot_tol));
      }
      lap_observe(metrics::SimplexOp::kFtran);
      {
        // The iteration's ONLY PCIe transfer: one packed descriptor.
        trace::ScopedSpan op(tr, "ratio", clock, "op");
        ws.desc.download(std::span<Real>(desc_h.data(), desc_h.size()));
      }
      lap_observe(metrics::SimplexOp::kRatio);
      if (desc_h[kDescQ] < Real{0}) return LoopExit::kOptimal;
      // Zero-row edge: the ratio kernel is an empty grid (never launched),
      // so the leaving slots are meaningless — no row can leave.
      if (ws.m == 0) return LoopExit::kUnbounded;
      const std::size_t q = static_cast<std::size_t>(desc_h[kDescQ]);
      const Real d_q = desc_h[kDescDq];
      const Real theta = desc_h[kDescTheta];
      if (theta == kInf) return LoopExit::kUnbounded;
      const std::size_t p = static_cast<std::size_t>(desc_h[kDescP]);
      const Real alpha_p = desc_h[kDescAlphaP];

      if (record::Recorder* rec = opt_.recorder) {
        // Ratio ties are counted through host_view() — outside the machine
        // model, so recording charges no PCIe time and perturbs nothing.
        const std::span<const Real> rv = ws.ratio.host_view();
        std::uint32_t ties = 0;
        for (std::size_t i = 0; i < ws.m; ++i) {
          if (rv[i] == theta) ++ties;
        }
        record::DecisionRecord r;
        r.phase = phase;
        r.bland = bland_now ? 1 : 0;
        r.iteration = stats.iterations;  // global ordinal, pre-increment
        r.entering = static_cast<std::uint32_t>(q);
        r.leaving_row = static_cast<std::uint32_t>(p);
        r.leaving_col = ws.basic[p];
        r.ratio_ties = ties;
        r.reduced_cost = static_cast<double>(d_q);
        r.pivot_value = static_cast<double>(alpha_p);
        r.theta = static_cast<double>(theta);
        rec->record_pivot(r);
      }

      {
        trace::ScopedSpan op(tr, "update", clock, "op");
        const std::uint32_t leaving = ws.basic[p];
        pivot_stage(ws, p, theta);
        if (ws.options.pricing == PricingRule::kDevex) {
          ws.at.devex_update(ws.pivot_row, ws.mask, ws.devex_w, q, leaving,
                             alpha_p);
        }
        pivot_apply(ws, q, p, alpha_p, static_cast<Real>(ws.c_host[q]),
                    leaving, !ws.aug.is_artificial[leaving]);
        ws.basic[p] = static_cast<std::uint32_t>(q);
        ws.in_basis[leaving] = false;
        ws.in_basis[q] = true;
      }
      lap_observe(metrics::SimplexOp::kUpdate);
      ++stats.iterations;
      om.count_iteration();
      health.record_pivot(static_cast<double>(alpha_p),
                          static_cast<double>(theta), bland_now, iter);

      const double dz = static_cast<double>(theta) * static_cast<double>(d_q);
      const double new_z = z + dz;
      if (new_z < z - 1e-12 * (1.0 + std::abs(z))) {
        since_improve = 0;
        bland_mode = false;
      } else {
        ++since_improve;
      }
      z = new_z;
      if (tr.enabled()) tr.counter("objective", dev_.sim_seconds(), z);
      telemetry::Telemetry* tel = ws.options.telemetry;
      const bool want_tel =
          tel != nullptr && tel->want_iteration_sample(iter);
      if (want_tel) tel->record("engine.objective", dev_.sim_seconds(), z);

      ++ws.pivots_since_refactor;
      const std::size_t period = ws.options.refactor_period;
      if (period > 0 && ws.pivots_since_refactor >= period) {
        trace::ScopedSpan op(tr, "refactor", clock, "op");
        reinvert(ws);
        lap_observe(metrics::SimplexOp::kRefactor);
        if (record::Recorder* rec = opt_.recorder) {
          rec->record_refactor(stats.iterations);
        }
      }

      const bool want_health = health.want_residual_sample(iter);
      if (want_health || want_tel) {
        sample_health(ws, health, want_health, want_tel ? tel : nullptr,
                      iter);
      }
    }
    return LoopExit::kIterationLimit;
  }

  /// HealthMonitor sampling hook (strided; see HealthConfig). Reads device
  /// state through DeviceBuffer::host_view() — outside the machine model,
  /// so sampling charges no PCIe time and perturbs nothing.
  ///
  /// Explicit inverse: probe `residual_probes` entries of B·B⁻¹ − I — for
  /// a probed (i, j), row i of B comes straight from the standard form's
  /// sparse rows (plus any basic artificial on that row), so one probe is
  /// O(nnz(row i)); the max |probe| is a cheap lower-bound estimate of
  /// `‖B·B⁻¹ − I‖∞` that tracks drift in the rank-1 update. Growth is the
  /// max |B⁻¹| over the probed rows. Product-form / LU schemes have no
  /// drifting inverse to probe; they report the eta-file length instead.
  /// The health monitor and the telemetry sink sample on independent
  /// strides; each consumer is fed only when its own gate fired, so
  /// attaching telemetry never changes what the HealthMonitor records.
  void sample_health(Workspace& ws, metrics::HealthMonitor& health,
                     bool record_health, telemetry::Telemetry* tel,
                     std::size_t iter) {
    if (ws.options.basis != BasisScheme::kExplicitInverse) {
      if (record_health) health.record_eta_count(ws.etas.size());
      if (tel != nullptr) {
        tel->record("engine.eta_count", dev_.sim_seconds(),
                    static_cast<double>(ws.etas.size()));
      }
      return;
    }
    const std::size_t m = ws.m;
    const std::span<const Real> binv = ws.binv.buffer().host_view();
    std::vector<std::int64_t> pos_of_col(ws.n_aug, -1);
    for (std::size_t k = 0; k < m; ++k) {
      pos_of_col[ws.basic[k]] = static_cast<std::int64_t>(k);
    }
    const lp::StandardFormLp& sf = *ws.aug.source;
    const std::size_t probes =
        std::max<std::size_t>(1, health.config().residual_probes);
    const std::size_t step = std::max<std::size_t>(1, m / probes);
    double residual = 0.0;
    double growth = 0.0;
    for (std::size_t t = 0; t < probes; ++t) {
      // Rotate the probed rows with the iteration so successive samples
      // cover different parts of the inverse; alternate diagonal and
      // off-diagonal targets.
      const std::size_t i = (iter + t * step) % m;
      const std::size_t j = (t % 2 == 0) ? i : (i + 1) % m;
      double acc = 0.0;
      for (const lp::Term& term : sf.rows[i]) {
        const std::int64_t k = pos_of_col[term.var];
        if (k >= 0) {
          acc += term.coef * static_cast<double>(
                                 binv[static_cast<std::size_t>(k) * m + j]);
        }
      }
      for (std::size_t a = 0; a < ws.aug.num_artificial; ++a) {
        if (ws.aug.artificial_rows[a] != i) continue;
        const std::int64_t k = pos_of_col[ws.aug.n + a];
        if (k >= 0) {
          acc += static_cast<double>(binv[static_cast<std::size_t>(k) * m + j]);
        }
      }
      const double r = std::abs(acc - (i == j ? 1.0 : 0.0));
      if (r > residual) residual = r;
      for (std::size_t col = 0; col < m; ++col) {
        const double v = std::abs(static_cast<double>(binv[i * m + col]));
        if (v > growth) growth = v;
      }
    }
    if (record_health) {
      health.record_residual(residual, iter);
      health.record_growth(growth, iter);
    }
    if (tel != nullptr) {
      tel->record("engine.residual_inf", dev_.sim_seconds(), residual);
      tel->record("engine.binv_growth", dev_.sim_seconds(), growth);
    }
  }

  /// Apply one basis exchange: entering column q replaces row p's variable.
  void pivot(Workspace& ws, std::size_t q, std::size_t p, Real theta,
             Real alpha_p) {
    update_beta(ws, p, theta);
    if (ws.options.basis == BasisScheme::kExplicitInverse) {
      save_pivot_row(ws, p);
      update_binv(ws, p, alpha_p);
    } else {
      append_eta(ws, p, alpha_p);
    }
    const std::uint32_t leaving = ws.basic[p];
    ws.basic[p] = static_cast<std::uint32_t>(q);
    ws.in_basis[leaving] = false;
    ws.in_basis[q] = true;
    // Scalar traffic: c_B[p], mask[q] off, mask[leaving] on (unless it is an
    // artificial, which never re-enters).
    ws.cb.upload_value(p, static_cast<Real>(ws.c_host[q]));
    ws.mask.upload_value(q, Real{0});
    if (!ws.aug.is_artificial[leaving]) {
      ws.mask.upload_value(leaving, Real{1});
    }
  }

  /// After a degenerate phase 1, artificials can linger in the basis at
  /// level zero. Replace each with any non-artificial column that has a
  /// nonzero pivot in its row; rows with no such column are redundant and
  /// keep their (permanently zero) artificial.
  void drive_out_artificials(Workspace& ws, std::uint64_t iteration) {
    for (std::size_t i = 0; i < ws.m; ++i) {
      if (!ws.aug.is_artificial[ws.basic[i]]) continue;
      compute_binv_row(ws, i);
      ws.at.pivot_row_product(ws.pivot_row, ws.col_work);
      const std::vector<Real> w = ws.col_work.to_host();
      std::size_t q = ws.n_aug;
      for (std::size_t j = 0; j < ws.aug.n; ++j) {
        if (!ws.in_basis[j] && std::abs(static_cast<double>(w[j])) > 1e-7) {
          q = j;
          break;
        }
      }
      if (q == ws.n_aug) continue;  // redundant row: artificial stays at 0
      ftran(ws, q);
      const Real alpha_p = ws.alpha.download_value(i);
      if (std::abs(static_cast<double>(alpha_p)) <= ws.options.pivot_tol) {
        continue;
      }
      if (record::Recorder* rec = opt_.recorder) {
        record::DecisionRecord r;
        r.phase = 1;
        r.iteration = iteration;
        r.entering = static_cast<std::uint32_t>(q);
        r.leaving_row = static_cast<std::uint32_t>(i);
        r.leaving_col = ws.basic[i];
        r.ratio_ties = 1;
        r.pivot_value = static_cast<double>(alpha_p);
        rec->record_pivot(r);
      }
      pivot(ws, q, i, Real{0}, alpha_p);
    }
  }

  SolveResult& finish(SolveResult& result, SolveStatus status,
                      WallTimer& wall) {
    result.status = status;
    result.stats.wall_seconds = wall.seconds();
    result.stats.device_stats = dev_.stats();
    result.stats.sim_seconds = dev_.sim_seconds();
    return result;
  }

  [[nodiscard]] static constexpr double bytes(std::size_t n) noexcept {
    return static_cast<double>(n * sizeof(Real));
  }

  vgpu::Device& dev_;
  SolverOptions opt_;
};

/// The Ext. C sparse instantiation: CSR constraint matrix, dense B^-1.
template <typename Real>
using SparseRevisedSimplex = DeviceRevisedSimplex<Real, SparseAt>;

}  // namespace gs::simplex
