#include "simplex/host_revised.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "metrics/health.hpp"
#include "profile/profile.hpp"
#include "simplex/basis/basis_oracle.hpp"
#include "simplex/basis/explicit_inverse.hpp"
#include "simplex/basis/product_form.hpp"
#include "simplex/cost_meter.hpp"
#include "simplex/phase_setup.hpp"
#include "support/timer.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/trace.hpp"
#include "vblas/containers.hpp"
#include "vblas/host_ref.hpp"

namespace gs::simplex {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Mutable solver state for one solve (all host memory). The basis
/// representation lives behind the BasisOracle seam: SolverOptions::basis
/// selects the explicit dense inverse (the default, bit-identical to the
/// pre-oracle engine) or the product-form/eta scheme.
struct State {
  State(const AugmentedLp& aug_in, const SolverOptions& opt_in,
        CostMeter& meter_in)
      : aug(aug_in),
        m(aug_in.m),
        n_aug(aug_in.n_aug),
        at(aug_in.dense_at()),
        cols(at),
        beta(aug_in.beta_init),
        pi(m),
        d(n_aug),
        alpha(m),
        colbuf(m),
        cb(m),
        basic(aug_in.basic),
        in_basis(n_aug, false),
        opt(opt_in),
        meter(meter_in) {
    if (opt.basis == BasisScheme::kExplicitInverse) {
      oracle = std::make_unique<basis::ExplicitInverseOracle>(
          m, aug.binv_diag, cols, meter, opt);
    } else {
      // Both sparse schemes (product-form, lu-factors) map onto the
      // eta-file oracle on the host: LU factors plus an eta file.
      oracle = std::make_unique<basis::ProductFormOracle>(m, basic, cols,
                                                          meter, opt);
    }
    for (std::uint32_t col : basic) in_basis[col] = true;
  }

  [[nodiscard]] bool may_enter(std::size_t j) const {
    return !in_basis[j] && !aug.is_artificial[j];
  }

  [[nodiscard]] double objective() const {
    double z = 0.0;
    for (std::size_t i = 0; i < m; ++i) z += c[basic[i]] * beta[i];
    return z;
  }

  const AugmentedLp& aug;
  std::size_t m, n_aug;
  vblas::Matrix<double> at;  ///< A^T augmented (n_aug x m)
  basis::DenseColumnSource cols;
  std::unique_ptr<basis::BasisOracle> oracle;
  std::vector<double> beta, pi, d, alpha;
  std::vector<double> colbuf, cb;  ///< oracle call scratch
  std::vector<std::uint32_t> basic;
  std::vector<bool> in_basis;
  std::vector<double> c;  ///< current phase costs
  const SolverOptions& opt;
  CostMeter& meter;
};

/// pi = (B^-1)^T c_B via the oracle's BTRAN.
void btran(State& s) {
  for (std::size_t i = 0; i < s.m; ++i) s.cb[i] = s.c[s.basic[i]];
  s.oracle->btran(s.cb, s.pi);
}

/// d_j = c_j - a_j . pi for admissible columns, 0 otherwise.
void price(State& s) {
  for (std::size_t j = 0; j < s.n_aug; ++j) {
    if (!s.may_enter(j)) {
      s.d[j] = 0.0;
      continue;
    }
    const auto col = s.at.row(j);
    double acc = 0.0;
    for (std::size_t i = 0; i < s.m; ++i) acc += col[i] * s.pi[i];
    s.d[j] = s.c[j] - acc;
  }
  s.meter.charge("price_reduced", 2.0 * double(s.n_aug) * double(s.m),
                 double((s.n_aug * s.m + 3 * s.n_aug) * sizeof(double)));
}

[[nodiscard]] std::optional<std::size_t> select_entering(const State& s,
                                                         bool bland) {
  const double tol = s.opt.opt_tol;
  if (bland) {
    for (std::size_t j = 0; j < s.n_aug; ++j) {
      if (s.d[j] < -tol) return j;
    }
    return std::nullopt;
  }
  std::size_t best = s.n_aug;
  double best_d = -tol;
  for (std::size_t j = 0; j < s.n_aug; ++j) {
    if (s.d[j] < best_d) {
      best_d = s.d[j];
      best = j;
    }
  }
  if (best == s.n_aug) return std::nullopt;
  return best;
}

void ftran(State& s, std::size_t q) {
  for (std::size_t k = 0; k < s.m; ++k) s.colbuf[k] = s.at(q, k);
  s.oracle->ftran(s.colbuf, s.alpha);
}

/// Returns (row p, theta) or nullopt when unbounded. Ties break to the
/// lowest row index (deterministic, Bland-compatible).
[[nodiscard]] std::optional<std::pair<std::size_t, double>> ratio_test(
    const State& s) {
  std::size_t p = s.m;
  double theta = kInf;
  for (std::size_t i = 0; i < s.m; ++i) {
    if (s.alpha[i] > s.opt.pivot_tol) {
      const double r = s.beta[i] / s.alpha[i];
      if (r < theta) {
        theta = r;
        p = i;
      }
    }
  }
  s.meter.charge("ratio", double(s.m), double(3 * s.m * sizeof(double)));
  if (p == s.m) return std::nullopt;
  return std::make_pair(p, theta);
}

void pivot(State& s, std::size_t q, std::size_t p, double theta) {
  for (std::size_t i = 0; i < s.m; ++i) {
    s.beta[i] = std::max(0.0, s.beta[i] - theta * s.alpha[i]);
  }
  s.beta[p] = theta;
  // Rank-1 update (explicit inverse) or eta append (product form).
  s.oracle->update(p, s.alpha);
  s.meter.charge("update_beta", 2.0 * double(s.m),
                 double(3 * s.m * sizeof(double)));
  const std::uint32_t leaving = s.basic[p];
  s.basic[p] = static_cast<std::uint32_t>(q);
  s.in_basis[leaving] = false;
  s.in_basis[q] = true;
}

/// Post-optimal sensitivity analysis (classical ranging): how far each rhs
/// and each objective coefficient can move before the optimal basis (rhs)
/// or the optimal point (cost) changes. Uses the final B^-1, beta and
/// reduced costs; O(n*m) per basic variable.
[[nodiscard]] RangingInfo compute_ranging(const State& s,
                                          const lp::StandardFormLp& sf) {
  constexpr double tol = 1e-9;
  RangingInfo out;
  const std::size_t m = s.m;

  // ---- rhs ranging: beta + delta * B^-1 e_i >= 0. ----
  out.rhs_lower.assign(sf.num_original_rows, -kInf);
  out.rhs_upper.assign(sf.num_original_rows, kInf);
  std::vector<double> bcol(m);
  for (std::size_t i = 0; i < sf.num_original_rows; ++i) {
    s.oracle->binv_col(i, bcol);
    double dlo = -kInf, dhi = kInf;
    for (std::size_t r = 0; r < m; ++r) {
      const double v = bcol[r];
      if (v > tol) {
        dlo = std::max(dlo, -s.beta[r] / v);
      } else if (v < -tol) {
        dhi = std::min(dhi, -s.beta[r] / v);
      }
    }
    const double rhs = sf.original_rhs[i];
    if (sf.row_flipped[i]) {
      // The stored row is the negated original: delta_orig = -delta_std.
      out.rhs_lower[i] = rhs - dhi;
      out.rhs_upper[i] = rhs - dlo;
    } else {
      out.rhs_lower[i] = rhs + dlo;
      out.rhs_upper[i] = rhs + dhi;
    }
  }

  // ---- cost ranging: reduced costs stay nonnegative. ----
  const std::size_t nvars = sf.var_maps.size();
  out.cost_lower.assign(nvars, -kInf);
  out.cost_upper.assign(nvars, kInf);
  const double sign_obj = sf.negated ? -1.0 : 1.0;
  std::vector<std::int64_t> row_of(s.n_aug, -1);
  for (std::size_t r = 0; r < m; ++r) row_of[s.basic[r]] = std::int64_t(r);
  for (std::size_t j = 0; j < nvars; ++j) {
    const auto& vm = sf.var_maps[j];
    if (vm.kind == lp::StandardFormLp::VarMap::Kind::kFree) {
      // A split variable's cost appears in two columns with opposite signs;
      // ranging is not supported for it.
      out.cost_lower[j] = out.cost_upper[j] =
          std::numeric_limits<double>::quiet_NaN();
      continue;
    }
    const double sgn =
        sign_obj *
        (vm.kind == lp::StandardFormLp::VarMap::Kind::kNegated ? -1.0 : 1.0);
    double dlo, dhi;
    if (row_of[vm.col] < 0) {
      // Nonbasic: its own reduced cost may shrink to zero.
      dlo = -s.d[vm.col];
      dhi = kInf;
    } else {
      // Basic at row r: every admissible reduced cost d_k moves by
      // -delta * (B^-1 A)_{r,k}.
      const auto r = static_cast<std::size_t>(row_of[vm.col]);
      std::vector<double> brow(m);
      s.oracle->binv_row(r, brow);
      dlo = -kInf;
      dhi = kInf;
      for (std::size_t k = 0; k < s.n_aug; ++k) {
        if (!s.may_enter(k)) continue;
        const auto col = s.at.row(k);
        double w = 0.0;
        for (std::size_t t = 0; t < m; ++t) w += col[t] * brow[t];
        if (w > tol) {
          dhi = std::min(dhi, s.d[k] / w);
        } else if (w < -tol) {
          dlo = std::max(dlo, s.d[k] / w);
        }
      }
    }
    const double c_orig = sgn * s.c[vm.col];
    if (sgn > 0) {
      out.cost_lower[j] = c_orig + dlo;
      out.cost_upper[j] = c_orig + dhi;
    } else {
      out.cost_lower[j] = c_orig - dhi;
      out.cost_upper[j] = c_orig - dlo;
    }
  }
  return out;
}

/// HealthMonitor/telemetry sampling hook for the host engine (strided; see
/// HealthConfig). Probes entries of B·B⁻¹ − I directly from the dense A^T
/// — column k of B is the constraint column of basic[k], so one probe is
/// an O(m) dot product — and takes max |B⁻¹| over the probed rows as the
/// growth estimate. Pure reads; charges nothing to the meter. The health
/// monitor and the telemetry sink sample on independent strides, so each
/// consumer is fed only when its own gate fired — attaching telemetry
/// never changes what the HealthMonitor records.
void sample_health(const State& s, metrics::HealthMonitor& health,
                   bool record_health, telemetry::Telemetry* tel,
                   std::size_t iter) {
  const std::size_t m = s.m;
  const std::size_t probes =
      std::max<std::size_t>(1, health.config().residual_probes);
  const std::size_t step = std::max<std::size_t>(1, m / probes);
  double residual = 0.0;
  double growth = 0.0;
  std::vector<double> bcol(m), brow(m);
  for (std::size_t t = 0; t < probes; ++t) {
    const std::size_t i = (iter + t * step) % m;
    const std::size_t j = (t % 2 == 0) ? i : (i + 1) % m;
    s.oracle->binv_col(j, bcol);
    double acc = 0.0;
    for (std::size_t k = 0; k < m; ++k) {
      acc += s.at(s.basic[k], i) * bcol[k];
    }
    const double r = std::abs(acc - (i == j ? 1.0 : 0.0));
    if (r > residual) residual = r;
    s.oracle->binv_row(i, brow);
    for (std::size_t col = 0; col < m; ++col) {
      const double v = std::abs(brow[col]);
      if (v > growth) growth = v;
    }
  }
  if (record_health) {
    health.record_residual(residual, iter);
    health.record_growth(growth, iter);
  }
  if (tel != nullptr) {
    tel->record("engine.residual_inf", s.meter.sim_seconds(), residual);
    tel->record("engine.binv_growth", s.meter.sim_seconds(), growth);
  }
}

/// Rows tied at the winning ratio, using the exact ratio-test expression
/// (recorder bookkeeping only; never runs when no recorder is attached).
[[nodiscard]] std::uint32_t count_ratio_ties(const State& s, double theta) {
  std::uint32_t ties = 0;
  for (std::size_t i = 0; i < s.m; ++i) {
    if (s.alpha[i] > s.opt.pivot_tol && s.beta[i] / s.alpha[i] == theta) {
      ++ties;
    }
  }
  return ties;
}

/// Install a caller-provided warm-start basis: gather the basis columns
/// from A, invert B (Gauss-Jordan, charged as one `warm_init` step), and
/// accept iff the basis is valid and primal feasible (B⁻¹b ≥ 0). On any
/// failure the crash basis stays installed and the solve proceeds cold.
[[nodiscard]] bool try_warm_start(State& s,
                                  const std::vector<std::uint32_t>& basis) {
  if (basis.size() != s.m) return false;
  std::vector<bool> used(s.n_aug, false);
  for (std::uint32_t col : basis) {
    if (col >= s.n_aug || s.aug.is_artificial[col] || used[col]) return false;
    used[col] = true;
  }
  std::vector<double> beta;
  if (!s.oracle->warm_start(basis, s.aug.b, beta)) return false;
  s.beta = std::move(beta);
  s.basic.assign(basis.begin(), basis.end());
  std::fill(s.in_basis.begin(), s.in_basis.end(), false);
  for (const std::uint32_t col : s.basic) s.in_basis[col] = true;
  return true;
}

enum class LoopExit { kOptimal, kUnbounded, kIterationLimit };

LoopExit run_loop(State& s, std::size_t budget, SolverStats& stats,
                  metrics::SimplexOpMetrics& om, metrics::HealthMonitor& health,
                  std::uint8_t phase) {
  const trace::Track& tr = s.meter.trace();
  const auto clock = [&s] { return s.meter.sim_seconds(); };
  // Per-op laps on the meter's simulated clock, advancing at op
  // boundaries — the metrics mirror of the trace's op spans.
  const bool om_on = om.enabled();
  double lap = 0.0;
  const auto lap_observe = [&](metrics::SimplexOp op) {
    if (!om_on) return;
    const double now = s.meter.sim_seconds();
    om.observe(op, now - lap);
    lap = now;
  };
  double z = s.objective();
  std::size_t since_improve = 0;
  for (std::size_t iter = 0; iter < budget; ++iter) {
    const bool bland =
        s.opt.pricing == PricingRule::kBland ||
        (s.opt.pricing == PricingRule::kHybrid &&
         since_improve >= s.opt.degeneracy_window);
    trace::ScopedSpan iter_span(tr, "iteration", clock, "iteration",
                                {{"iter", static_cast<double>(iter)}});
    if (om_on) lap = s.meter.sim_seconds();
    std::optional<std::size_t> entering;
    {
      trace::ScopedSpan op(tr, "price", clock, "op");
      btran(s);
      price(s);
      entering = select_entering(s, bland);
    }
    lap_observe(metrics::SimplexOp::kPrice);
    if (!entering.has_value()) return LoopExit::kOptimal;
    const std::size_t q = *entering;
    const double d_q = s.d[q];
    {
      trace::ScopedSpan op(tr, "ftran", clock, "op");
      ftran(s, q);
    }
    lap_observe(metrics::SimplexOp::kFtran);
    std::optional<std::pair<std::size_t, double>> leave;
    {
      trace::ScopedSpan op(tr, "ratio", clock, "op");
      leave = ratio_test(s);
    }
    lap_observe(metrics::SimplexOp::kRatio);
    if (!leave.has_value()) return LoopExit::kUnbounded;
    const auto [p, theta] = *leave;
    const double alpha_p = s.alpha[p];
    if (record::Recorder* rec = s.opt.recorder) {
      record::DecisionRecord r;
      r.phase = phase;
      r.bland = bland ? 1 : 0;
      r.iteration = stats.iterations;  // global pivot ordinal, pre-increment
      r.entering = static_cast<std::uint32_t>(q);
      r.leaving_row = static_cast<std::uint32_t>(p);
      r.leaving_col = s.basic[p];
      r.ratio_ties = count_ratio_ties(s, theta);
      r.reduced_cost = d_q;
      r.pivot_value = alpha_p;
      r.theta = theta;
      rec->record_pivot(r);
    }
    {
      trace::ScopedSpan op(tr, "update", clock, "op");
      pivot(s, q, p, theta);
    }
    lap_observe(metrics::SimplexOp::kUpdate);
    ++stats.iterations;
    // Product-form refactorization: fold the eta file back into a fresh
    // sparse LU when the interval or growth trigger fires (the explicit
    // oracle only fires on an opt-in refactor_period). A singular basis
    // here keeps the eta file; the representation stays exact either way.
    if (s.oracle->wants_refactor()) {
      trace::ScopedSpan op(tr, "refactor", clock, "op");
      if (s.oracle->refactorize(s.basic)) {
        if (record::Recorder* rec = s.opt.recorder) {
          rec->record_refactor(stats.iterations);
        }
      }
    }
    om.count_iteration();
    health.record_pivot(alpha_p, theta, bland, iter);
    telemetry::Telemetry* tel = s.opt.telemetry;
    const bool want_health = health.want_residual_sample(iter);
    const bool want_tel = tel != nullptr && tel->want_iteration_sample(iter);
    if (want_health || want_tel) {
      sample_health(s, health, want_health, want_tel ? tel : nullptr, iter);
    }
    const double new_z = z + theta * d_q;
    if (new_z < z - 1e-12 * (1.0 + std::abs(z))) {
      since_improve = 0;
    } else {
      ++since_improve;
    }
    z = new_z;
    if (tr.enabled()) tr.counter("objective", s.meter.sim_seconds(), z);
    if (want_tel) tel->record("engine.objective", s.meter.sim_seconds(), z);
  }
  return LoopExit::kIterationLimit;
}

/// Post-phase-1 cleanup: replace zero-level basic artificials where a
/// non-artificial pivot exists; redundant rows keep theirs at level zero.
/// `iteration` is the pivot ordinal stamped on recorded drive-out pivots.
void drive_out_artificials(State& s, std::uint64_t iteration) {
  for (std::size_t i = 0; i < s.m; ++i) {
    if (!s.aug.is_artificial[s.basic[i]]) continue;
    std::size_t q = s.n_aug;
    std::vector<double> brow(s.m);
    s.oracle->binv_row(i, brow);
    for (std::size_t j = 0; j < s.aug.n; ++j) {
      if (s.in_basis[j]) continue;
      const auto col = s.at.row(j);
      double acc = 0.0;
      for (std::size_t r = 0; r < s.m; ++r) acc += col[r] * brow[r];
      if (std::abs(acc) > 1e-7) {
        q = j;
        break;
      }
    }
    s.meter.charge("driveout_row", 2.0 * double(s.aug.n) * double(s.m),
                   double((s.aug.n * s.m) * sizeof(double)));
    if (q == s.n_aug) continue;
    ftran(s, q);
    if (std::abs(s.alpha[i]) <= s.opt.pivot_tol) continue;
    if (record::Recorder* rec = s.opt.recorder) {
      record::DecisionRecord r;
      r.phase = 1;
      r.iteration = iteration;
      r.entering = static_cast<std::uint32_t>(q);
      r.leaving_row = static_cast<std::uint32_t>(i);
      r.leaving_col = s.basic[i];
      r.ratio_ties = 1;
      r.pivot_value = s.alpha[i];
      rec->record_pivot(r);
    }
    pivot(s, q, i, 0.0);
  }
}

}  // namespace

SolveResult HostRevisedSimplex::solve(const lp::LpProblem& problem) const {
  const lp::StandardFormLp sf = lp::to_standard_form(problem);
  return solve_standard(sf);
}

SolveResult HostRevisedSimplex::solve_standard(
    const lp::StandardFormLp& sf) const {
  WallTimer wall;
  CostMeter meter(model_,
                  profile::chain(options_.profiler, options_.trace_sink,
                                 trace::kHostPid, model_),
                  options_.metrics);
  // Solver-level metrics live for the whole solve (not per run_loop call)
  // so stall streaks and Bland activations span the phase boundary.
  metrics::SimplexOpMetrics op_metrics;
  op_metrics.attach(options_.metrics);
  metrics::HealthMonitor health(options_.metrics, options_.health);
  const trace::Track& tr = meter.trace();
  const auto clock = [&meter] { return meter.sim_seconds(); };
  if (tr.enabled()) tr.name_thread("host-revised");
  trace::ScopedSpan solve_span(tr, "solve", clock, "solve");
  const AugmentedLp aug = augment(sf);
  State state(aug, options_, meter);
  record::Recorder* rec = options_.recorder;
  if (rec != nullptr) {
    rec->begin_solve("host-revised", 64, aug.m, aug.n_aug,
                     decision_digest(aug));
  }

  SolveResult result;
  auto finish = [&](SolveStatus status) -> SolveResult {
    result.status = status;
    result.basis = state.basic;
    result.stats.wall_seconds = wall.seconds();
    result.stats.device_stats = meter.stats();
    result.stats.sim_seconds = meter.sim_seconds();
    if (rec != nullptr) {
      rec->end_solve(to_string(status), status == SolveStatus::kOptimal,
                     options_.metrics ? options_.metrics->warnings_total() : 0,
                     state.basic);
    }
    return result;
  };

  // Warm start: a feasible caller-provided basis replaces the crash basis
  // and skips phase 1 outright (feasibility is what phase 1 buys).
  if (options_.warm_basis != nullptr) {
    trace::ScopedSpan warm_span(tr, "warm_init", clock, "phase");
    result.stats.warm_started = try_warm_start(state, *options_.warm_basis);
  }

  std::size_t budget = options_.max_iterations;
  if (aug.num_artificial > 0 && !result.stats.warm_started) {
    trace::ScopedSpan phase_span(tr, "phase1", clock, "phase");
    if (rec != nullptr) rec->begin_phase(1);
    state.c = aug.c_phase1;
    const LoopExit exit =
        run_loop(state, budget, result.stats, op_metrics, health, 1);
    result.stats.phase1_iterations = result.stats.iterations;
    if (exit == LoopExit::kIterationLimit) {
      return finish(SolveStatus::kIterationLimit);
    }
    if (exit == LoopExit::kUnbounded) {
      return finish(SolveStatus::kNumericalTrouble);
    }
    const double feas_tol =
        1e-6 * (1.0 + *std::max_element(aug.b.begin(), aug.b.end()));
    if (state.objective() > feas_tol) {
      return finish(SolveStatus::kInfeasible);
    }
    drive_out_artificials(state, result.stats.iterations);
    budget -= std::min(budget, result.stats.iterations);
  }

  LoopExit exit;
  {
    trace::ScopedSpan phase_span(tr, "phase2", clock, "phase");
    if (rec != nullptr) rec->begin_phase(2);
    state.c = aug.c_phase2;
    exit = run_loop(state, budget, result.stats, op_metrics, health, 2);
  }
  if (exit == LoopExit::kUnbounded) return finish(SolveStatus::kUnbounded);
  if (exit == LoopExit::kIterationLimit) {
    return finish(SolveStatus::kIterationLimit);
  }

  std::vector<double> x_std(aug.n, 0.0);
  for (std::size_t i = 0; i < aug.m; ++i) {
    if (state.basic[i] < aug.n) x_std[state.basic[i]] = state.beta[i];
  }
  result.x = sf.recover(x_std);
  double z = 0.0;
  for (std::size_t j = 0; j < aug.n; ++j) z += sf.c[j] * x_std[j];
  result.objective = sf.original_objective(z);
  // state.pi holds the optimal simplex multipliers from the final pricing.
  result.y = sf.recover_duals(state.pi);
  if (options_.ranging) result.ranging = compute_ranging(state, sf);
  return finish(SolveStatus::kOptimal);
}

}  // namespace gs::simplex
