// Constraint-matrix access policies for the device revised simplex engine.
//
// The engine is generic over how the (augmented, transposed) constraint
// matrix A^T is stored on the device:
//   * DenseAt  — dense n_aug x m row-major (the paper's layout), and
//   * SparseAt — CSR (the follow-on sparse variant, Ext. C).
// A policy supplies the three kernels whose cost depends on the storage:
// the reduced-cost sweep, FTRAN's B^-1 a_q product, and the pivot-row
// product used by Devex pricing and artificial drive-out.
#pragma once

#include <cstdint>

#include "simplex/phase_setup.hpp"
#include "sparse/device_csr.hpp"
#include "vblas/containers.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"

namespace gs::simplex {

/// Dense A^T policy: contiguous column reads, BLAS-2-shaped kernels.
template <typename Real>
class DenseAt {
 public:
  DenseAt(vgpu::Device& dev, const AugmentedLp& aug)
      : m_(aug.m), n_aug_(aug.n_aug), at_(dev, host_at(aug)) {}

  [[nodiscard]] std::size_t m() const noexcept { return m_; }
  [[nodiscard]] std::size_t n_aug() const noexcept { return n_aug_; }
  [[nodiscard]] vgpu::Device& device() const noexcept { return at_.device(); }

  /// d_j = mask_j ? c_j - a_j . pi : 0  for every column j.
  void price(const vgpu::DeviceBuffer<Real>& pi,
             const vgpu::DeviceBuffer<Real>& c,
             const vgpu::DeviceBuffer<Real>& mask,
             vgpu::DeviceBuffer<Real>& d) const {
    column_products("price_reduced", pi, &c, &mask, d);
  }

  /// out_j = a_j . y for every column j (Devex pivot row / drive-out row).
  void pivot_row_product(const vgpu::DeviceBuffer<Real>& y,
                         vgpu::DeviceBuffer<Real>& out) const {
    column_products("pivot_row_product", y, nullptr, nullptr, out);
  }

  /// alpha = B^-1 a_q (dense gemv against the contiguous column a_q).
  void ftran_alpha(const vblas::DeviceMatrix<Real>& binv, std::size_t q,
                   vgpu::DeviceBuffer<Real>& alpha) const {
    const std::size_t m = m_;
    auto at = at_.device_span();
    auto bs = binv.device_span();
    auto as = alpha.device_span();
    device().launch_blocks(
        "ftran", m, vgpu::Device::kBlockSize,
        {2.0 * double(m) * double(m),
         double((m * m + 2 * m) * sizeof(Real)), sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          at.read_range(q * m, q * m + m);
          const Real* aq = at.data() + q * m;
          for (std::size_t i = lo; i < hi; ++i) {
            bs.read_range(i * m, i * m + m);
            const Real* row = bs.data() + i * m;
            Real acc{0};
            for (std::size_t k = 0; k < m; ++k) acc += row[k] * aq[k];
            as[i] = acc;
          }
        });
  }

 private:
  [[nodiscard]] static vblas::Matrix<Real> host_at(const AugmentedLp& aug) {
    const vblas::Matrix<double> at64 = aug.dense_at();
    vblas::Matrix<Real> out(at64.rows(), at64.cols());
    for (std::size_t i = 0; i < at64.size(); ++i) {
      out.flat()[i] = static_cast<Real>(at64.flat()[i]);
    }
    return out;
  }

  /// Shared sweep: out_j = [c_j -] a_j . y, optionally masked.
  void column_products(std::string_view name,
                       const vgpu::DeviceBuffer<Real>& y,
                       const vgpu::DeviceBuffer<Real>* c,
                       const vgpu::DeviceBuffer<Real>* mask,
                       vgpu::DeviceBuffer<Real>& out) const {
    const std::size_t m = m_;
    auto at = at_.device_span();
    auto ys = y.device_span();
    auto os = out.device_span();
    auto cs = c ? c->device_span() : vgpu::check::CheckedSpan<const Real>{};
    auto ms = mask ? mask->device_span() : vgpu::check::CheckedSpan<const Real>{};
    device().launch_blocks(
        name, n_aug_, vgpu::Device::kBlockSize,
        {2.0 * double(n_aug_) * double(m),
         double((n_aug_ * m + 3 * n_aug_ + m) * sizeof(Real)), sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t j = lo; j < hi; ++j) {
            if (mask && ms[j] == Real{0}) {
              os[j] = Real{0};
              continue;
            }
            at.read_range(j * m, (j + 1) * m);
            const Real* col = at.data() + j * m;
            Real acc{0};
            for (std::size_t i = 0; i < m; ++i) acc += col[i] * ys[i];
            os[j] = c ? cs[j] - acc : acc;
          }
        });
  }

  std::size_t m_, n_aug_;
  vblas::DeviceMatrix<Real> at_;
};

/// CSR A^T policy: kernel cost scales with nnz instead of n_aug * m.
template <typename Real>
class SparseAt {
 public:
  SparseAt(vgpu::Device& dev, const AugmentedLp& aug)
      : m_(aug.m), n_aug_(aug.n_aug), at_(dev, host_csr(aug)) {}

  [[nodiscard]] std::size_t m() const noexcept { return m_; }
  [[nodiscard]] std::size_t n_aug() const noexcept { return n_aug_; }
  [[nodiscard]] vgpu::Device& device() const noexcept { return at_.device(); }

  void price(const vgpu::DeviceBuffer<Real>& pi,
             const vgpu::DeviceBuffer<Real>& c,
             const vgpu::DeviceBuffer<Real>& mask,
             vgpu::DeviceBuffer<Real>& d) const {
    column_products("price_reduced", pi, &c, &mask, d);
  }

  void pivot_row_product(const vgpu::DeviceBuffer<Real>& y,
                         vgpu::DeviceBuffer<Real>& out) const {
    column_products("pivot_row_product", y, nullptr, nullptr, out);
  }

  /// alpha_i = sum_k a_q[k] * binv(i, col_k): sparse column against the
  /// dense inverse, cost proportional to m * nnz(a_q).
  void ftran_alpha(const vblas::DeviceMatrix<Real>& binv, std::size_t q,
                   vgpu::DeviceBuffer<Real>& alpha) const {
    const std::size_t m = m_;
    auto offs = at_.row_offsets().device_span();
    auto cols = at_.col_indices().device_span();
    auto vals = at_.values().device_span();
    auto bs = binv.device_span();
    auto as = alpha.device_span();
    // Column extent read host-side (a scalar lookup, like the pivot index).
    const std::uint32_t k_lo = offs[q];
    const std::uint32_t k_hi = offs[q + 1];
    const std::size_t nnz_q = k_hi - k_lo;
    device().launch_blocks(
        "ftran", m, vgpu::Device::kBlockSize,
        {2.0 * double(m) * double(nnz_q),
         double(m * nnz_q * sizeof(Real) +
                nnz_q * (sizeof(Real) + sizeof(std::uint32_t)) +
                m * sizeof(Real)),
         sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          // a_q's values/indices are read once and reused across the
          // block (cached on a real GPU); annotate them in bulk.
          vals.read_range(k_lo, k_hi);
          cols.read_range(k_lo, k_hi);
          const Real* vp = vals.data();
          const std::uint32_t* cp = cols.data();
          for (std::size_t i = lo; i < hi; ++i) {
            Real acc{0};
            for (std::uint32_t k = k_lo; k < k_hi; ++k) {
              acc += vp[k] * bs[i * m + cp[k]];
            }
            as[i] = acc;
          }
        });
  }

 private:
  [[nodiscard]] static sparse::CsrMatrix<Real> host_csr(
      const AugmentedLp& aug) {
    const sparse::CsrMatrix<double> at64 = aug.csr_at();
    std::vector<Real> vals(at64.values().size());
    for (std::size_t k = 0; k < vals.size(); ++k) {
      vals[k] = static_cast<Real>(at64.values()[k]);
    }
    return sparse::CsrMatrix<Real>(at64.rows(), at64.cols(),
                                   at64.row_offsets(), at64.col_indices(),
                                   std::move(vals));
  }

  void column_products(std::string_view name,
                       const vgpu::DeviceBuffer<Real>& y,
                       const vgpu::DeviceBuffer<Real>* c,
                       const vgpu::DeviceBuffer<Real>* mask,
                       vgpu::DeviceBuffer<Real>& out) const {
    auto offs = at_.row_offsets().device_span();
    auto cols = at_.col_indices().device_span();
    auto vals = at_.values().device_span();
    auto ys = y.device_span();
    auto os = out.device_span();
    auto cs = c ? c->device_span() : vgpu::check::CheckedSpan<const Real>{};
    auto ms = mask ? mask->device_span() : vgpu::check::CheckedSpan<const Real>{};
    const double nnz = static_cast<double>(at_.nnz());
    device().launch_blocks(
        name, n_aug_, vgpu::Device::kBlockSize,
        {2.0 * nnz,
         nnz * double(2 * sizeof(Real) + sizeof(std::uint32_t)) +
             double(3 * n_aug_ * sizeof(Real)),
         sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t j = lo; j < hi; ++j) {
            if (mask && ms[j] == Real{0}) {
              os[j] = Real{0};
              continue;
            }
            Real acc{0};
            for (std::uint32_t k = offs[j]; k < offs[j + 1]; ++k) {
              acc += vals[k] * ys[cols[k]];
            }
            os[j] = c ? cs[j] - acc : acc;
          }
        });
  }

  std::size_t m_, n_aug_;
  sparse::DeviceCsr<Real> at_;
};

}  // namespace gs::simplex
