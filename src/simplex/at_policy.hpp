// Constraint-matrix access policies for the device revised simplex engine.
//
// The engine is generic over how the (augmented, transposed) constraint
// matrix A^T is stored on the device:
//   * DenseAt  — dense n_aug x m row-major (the paper's layout), and
//   * SparseAt — CSR (the follow-on sparse variant, Ext. C).
// A policy supplies the kernels whose cost depends on the storage: the
// reduced-cost sweep, FTRAN's B^-1 a_q product, the pivot-row product used
// by Devex pricing and artificial drive-out, and — for the fused iteration
// path (SolverOptions::fused_iteration) — the collapsed pricing+selection
// and FTRAN+ratio+selection launches that write the on-device
// PivotDescriptor instead of round-tripping scalars over PCIe.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "simplex/phase_setup.hpp"
#include "sparse/device_csr.hpp"
#include "vblas/containers.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"
#include "vgpu/primitives.hpp"

namespace gs::simplex {

// ---------------------------------------------------------------------
// Fused-iteration pivot descriptor (SolverOptions::fused_iteration).
//
// All per-iteration decisions accumulate in a 5-slot device buffer and
// cross PCIe as ONE packed d2h per iteration. Indices are encoded as Real
// (exact up to 2^24 even in float); kDescNone (-1) marks "no candidate".
// ---------------------------------------------------------------------
inline constexpr std::size_t kDescQ = 0;       ///< entering column, or -1
inline constexpr std::size_t kDescDq = 1;      ///< reduced cost d_q
inline constexpr std::size_t kDescP = 2;       ///< leaving row, or -1
inline constexpr std::size_t kDescTheta = 3;   ///< ratio-test step length
inline constexpr std::size_t kDescAlphaP = 4;  ///< pivot element alpha_p
inline constexpr std::size_t kDescSlots = 5;
// (Ratio ties are observational — the recorder counts them through
// host_view() outside the machine model, same as the reference path, so
// they never ride in the descriptor or cost a device-side rescan.)

/// Entering-variable rule for one fused pricing launch (the hybrid rule
/// resolves to Dantzig or Bland per iteration on the host).
enum class EnteringRule { kDantzig, kBland, kDevex };

namespace fused_detail {

/// Apply the reference path's host-side acceptance test to the block/
/// combine argmin result and write the entering decision into the
/// descriptor. d_q is always reported from the reduced-cost span, exactly
/// like the reference path's `d.download_value(q)`.
template <typename Real, typename DSpan, typename DescSpan>
void write_entering(EnteringRule rule, Real tol, std::size_t best_idx,
                    Real best_val, const DSpan& d, DescSpan& desc) {
  bool none = false;
  switch (rule) {
    case EnteringRule::kBland:
      none = best_idx == vgpu::detail::kNoIndex;
      break;
    case EnteringRule::kDevex:
      none = best_val >= Real{0};  // best devex score
      break;
    case EnteringRule::kDantzig:
      none = best_val >= -tol;  // most negative reduced cost
      break;
  }
  if (none) {
    desc[kDescQ] = Real{-1};
    desc[kDescDq] = Real{0};
  } else {
    desc[kDescQ] = static_cast<Real>(best_idx);
    desc[kDescDq] = d[best_idx];
  }
}

/// Cross-block combine for the fused pricing selection, launched only
/// when the column sweep spans more than one block. Reduces the per-block
/// partials with the primitives' combine semantics (block order, strict
/// <; first hit for Bland) so the winner is bit-identical to
/// vgpu::argmin / find_first_below over the full buffer.
template <typename Real, typename DSpan, typename DescSpan>
void combine_entering(vgpu::Device& dev, EnteringRule rule, Real tol,
                      const std::vector<std::size_t>& part_idx,
                      const std::vector<Real>& part_val, DSpan d,
                      DescSpan desc) {
  const std::size_t blocks = part_idx.size();
  dev.launch_blocks(
      "price_select_final", 1, 1,
      {static_cast<double>(blocks),
       static_cast<double>(blocks * (sizeof(Real) + sizeof(std::size_t)) +
                           2 * sizeof(Real)),
       sizeof(Real)},
      [&](std::size_t, std::size_t, std::size_t) {
        std::size_t best = vgpu::detail::kNoIndex;
        Real val{0};
        if (rule == EnteringRule::kBland) {
          for (std::size_t b = 0; b < blocks; ++b) {
            if (part_idx[b] != vgpu::detail::kNoIndex) {
              best = part_idx[b];
              break;
            }
          }
        } else {
          best = part_idx[0];
          val = part_val[0];
          for (std::size_t b = 1; b < blocks; ++b) {
            if (part_val[b] < val) {
              best = part_idx[b];
              val = part_val[b];
            }
          }
        }
        write_entering(rule, tol, best, val, d, desc);
      });
}

/// Finalize the fused ratio test: pick the leaving row from the block
/// partials (argmin semantics) and write the descriptor. Runs inline in
/// the single-block case; as a small combine launch otherwise.
template <typename Real, typename RSpan, typename ASpan, typename DescSpan>
void write_leaving(std::size_t best, const RSpan& ratio, const ASpan& alpha,
                   DescSpan& desc) {
  desc[kDescP] = static_cast<Real>(best);
  desc[kDescTheta] = ratio[best];
  desc[kDescAlphaP] = alpha[best];
}

template <typename Real, typename RSpan, typename ASpan, typename DescSpan>
void combine_leaving(vgpu::Device& dev,
                     const std::vector<std::size_t>& part_idx,
                     const std::vector<Real>& part_val, RSpan ratio,
                     ASpan alpha, DescSpan desc) {
  const std::size_t blocks = part_idx.size();
  dev.launch_blocks(
      "ftran_ratio_final", 1, 1,
      {static_cast<double>(blocks),
       static_cast<double>(blocks * (sizeof(Real) + sizeof(std::size_t)) +
                           5 * sizeof(Real)),
       sizeof(Real)},
      [&](std::size_t, std::size_t, std::size_t) {
        if (desc[kDescQ] < Real{0}) return;  // speculative: nothing entered
        std::size_t best = part_idx[0];
        Real val = part_val[0];
        for (std::size_t b = 1; b < blocks; ++b) {
          if (part_val[b] < val) {
            best = part_idx[b];
            val = part_val[b];
          }
        }
        write_leaving<Real>(best, ratio, alpha, desc);
      });
}

}  // namespace fused_detail

/// Dense A^T policy: contiguous column reads, BLAS-2-shaped kernels.
template <typename Real>
class DenseAt {
 public:
  /// Dense storage keeps the paper's m-proportional kernel names; the
  /// sparse basis-kernel variants (sparse_ftran / sparse_btran /
  /// eta_apply) only make sense when column extents are known.
  static constexpr bool kSparseKernels = false;

  DenseAt(vgpu::Device& dev, const AugmentedLp& aug)
      : m_(aug.m), n_aug_(aug.n_aug), at_(dev, host_at(aug)) {}

  [[nodiscard]] std::size_t m() const noexcept { return m_; }
  [[nodiscard]] std::size_t n_aug() const noexcept { return n_aug_; }
  [[nodiscard]] vgpu::Device& device() const noexcept { return at_.device(); }

  /// d_j = mask_j ? c_j - a_j . pi : 0  for every column j.
  void price(const vgpu::DeviceBuffer<Real>& pi,
             const vgpu::DeviceBuffer<Real>& c,
             const vgpu::DeviceBuffer<Real>& mask,
             vgpu::DeviceBuffer<Real>& d) const {
    column_products("price_reduced", pi, &c, &mask, d);
  }

  /// out_j = a_j . y for every column j (Devex pivot row / drive-out row).
  void pivot_row_product(const vgpu::DeviceBuffer<Real>& y,
                         vgpu::DeviceBuffer<Real>& out) const {
    column_products("pivot_row_product", y, nullptr, nullptr, out);
  }

  /// alpha = B^-1 a_q (dense gemv against the contiguous column a_q).
  /// `name` lets basis schemes label their FTRAN variant in the stream.
  void ftran_alpha(const vblas::DeviceMatrix<Real>& binv, std::size_t q,
                   vgpu::DeviceBuffer<Real>& alpha,
                   std::string_view name = "ftran") const {
    const std::size_t m = m_;
    auto at = at_.device_span();
    auto bs = binv.device_span();
    auto as = alpha.device_span();
    device().launch_blocks(
        name, m, vgpu::Device::kBlockSize,
        {2.0 * double(m) * double(m),
         double((m * m + 2 * m) * sizeof(Real)), sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          at.read_range(q * m, q * m + m);
          const Real* aq = at.data() + q * m;
          for (std::size_t i = lo; i < hi; ++i) {
            bs.read_range(i * m, i * m + m);
            const Real* row = bs.data() + i * m;
            Real acc{0};
            for (std::size_t k = 0; k < m; ++k) acc += row[k] * aq[k];
            as[i] = acc;
          }
        });
  }

  // -------------------------------------------------------------------
  // Fused iteration path (SolverOptions::fused_iteration)
  // -------------------------------------------------------------------

  /// Fused pricing: reduced costs, rule-specific selection scan and the
  /// entering decision in ONE launch (price_reduced + devex_score +
  /// argmin/find_first_below of the reference path). Writes desc[kDescQ]
  /// and desc[kDescDq]; the block-scan semantics match the primitives',
  /// so the chosen column is bit-identical to the unfused chain.
  void price_select(const vgpu::DeviceBuffer<Real>& pi,
                    const vgpu::DeviceBuffer<Real>& c,
                    const vgpu::DeviceBuffer<Real>& mask,
                    vgpu::DeviceBuffer<Real>& d,
                    vgpu::DeviceBuffer<Real>& score,
                    const vgpu::DeviceBuffer<Real>& devex_w,
                    vgpu::DeviceBuffer<Real>& desc, EnteringRule rule,
                    Real tol) const {
    const std::size_t m = m_;
    const std::size_t n = n_aug_;
    const std::size_t blocks =
        (n + vgpu::Device::kBlockSize - 1) / vgpu::Device::kBlockSize;
    // Per-block partials live host-side, like the primitives' reductions:
    // invisible to the machine model, combined by a separate small launch.
    std::vector<std::size_t> part_idx(blocks, vgpu::detail::kNoIndex);
    std::vector<Real> part_val(blocks, Real{0});
    auto at = at_.device_span();
    auto ys = pi.device_span();
    auto cs = c.device_span();
    auto ms = mask.device_span();
    auto ds = d.device_span();
    auto ss = score.device_span();
    auto wsp = devex_w.device_span();
    auto desc_s = desc.device_span();
    device().launch_blocks(
        "price_select", n, vgpu::Device::kBlockSize,
        {2.0 * double(n) * double(m) + 4.0 * double(n),
         double((n * m + 6 * n + m) * sizeof(Real)), sizeof(Real)},
        [&](std::size_t blk, std::size_t lo, std::size_t hi) {
          // Reduced costs, exactly as price() computes them.
          for (std::size_t j = lo; j < hi; ++j) {
            if (ms[j] == Real{0}) {
              ds[j] = Real{0};
              continue;
            }
            at.read_range(j * m, (j + 1) * m);
            const Real* col = at.data() + j * m;
            Real acc{0};
            for (std::size_t i = 0; i < m; ++i) acc += col[i] * ys[i];
            ds[j] = cs[j] - acc;
          }
          // Rule-specific selection over this block's columns.
          std::size_t best = vgpu::detail::kNoIndex;
          Real val{0};
          if (rule == EnteringRule::kBland) {
            best = vgpu::detail::block_first_below(ds, lo, hi, -tol);
          } else if (rule == EnteringRule::kDevex) {
            for (std::size_t j = lo; j < hi; ++j) {
              ss[j] = ds[j] < -tol ? -(ds[j] * ds[j]) / wsp[j] : Real{0};
            }
            best = vgpu::detail::block_argmin(ss, lo, hi);
            val = ss[best];
          } else {
            best = vgpu::detail::block_argmin(ds, lo, hi);
            val = ds[best];
          }
          if (blocks == 1) {
            fused_detail::write_entering(rule, tol, best, val, ds, desc_s);
          } else {
            part_idx[blk] = best;
            part_val[blk] = val;
          }
        });
    if (blocks > 1) {
      fused_detail::combine_entering(device(), rule, tol, part_idx, part_val,
                                     ds, desc_s);
    }
  }

  /// Fused FTRAN + ratio test + leaving selection in ONE launch. The
  /// entering column index is read from the descriptor ON DEVICE — the
  /// launch is speculative (issued before the host has seen whether
  /// pricing found a candidate) and early-exits when desc[kDescQ] < 0.
  /// Writes desc[kDescP/kDescTheta/kDescAlphaP]; alpha and ratio are
  /// still materialized for the basis update and observers.
  void ftran_ratio_select(const vblas::DeviceMatrix<Real>& binv,
                          const vgpu::DeviceBuffer<Real>& beta,
                          vgpu::DeviceBuffer<Real>& alpha,
                          vgpu::DeviceBuffer<Real>& ratio,
                          vgpu::DeviceBuffer<Real>& desc,
                          Real pivot_tol) const {
    const std::size_t m = m_;
    const std::size_t blocks =
        (m + vgpu::Device::kBlockSize - 1) / vgpu::Device::kBlockSize;
    std::vector<std::size_t> part_idx(blocks, vgpu::detail::kNoIndex);
    std::vector<Real> part_val(blocks, Real{0});
    auto at = at_.device_span();
    auto bs = binv.device_span();
    auto be = beta.device_span();
    auto as = alpha.device_span();
    auto rs = ratio.device_span();
    auto desc_s = desc.device_span();
    constexpr Real kRInf = std::numeric_limits<Real>::infinity();
    device().launch_blocks(
        "ftran_ratio", m, vgpu::Device::kBlockSize,
        {2.0 * double(m) * double(m) + 3.0 * double(m),
         double((m * m + 7 * m + 2) * sizeof(Real)), sizeof(Real)},
        [&](std::size_t blk, std::size_t lo, std::size_t hi) {
          if (desc_s[kDescQ] < Real{0}) return;  // optimal: nothing entered
          const std::size_t q = static_cast<std::size_t>(desc_s[kDescQ]);
          at.read_range(q * m, q * m + m);
          const Real* aq = at.data() + q * m;
          for (std::size_t i = lo; i < hi; ++i) {
            bs.read_range(i * m, i * m + m);
            const Real* row = bs.data() + i * m;
            Real acc{0};
            for (std::size_t k = 0; k < m; ++k) acc += row[k] * aq[k];
            as[i] = acc;
            rs[i] = acc > pivot_tol ? be[i] / acc : kRInf;
          }
          const std::size_t best = vgpu::detail::block_argmin(rs, lo, hi);
          if (blocks == 1) {
            fused_detail::write_leaving<Real>(best, rs, as, desc_s);
          } else {
            part_idx[blk] = best;
            part_val[blk] = rs[best];
          }
        });
    if (blocks > 1) {
      fused_detail::combine_leaving<Real>(device(), part_idx, part_val, rs,
                                          as, desc_s);
    }
  }

  /// Fused Devex weight maintenance: the pivot-row products, the masked
  /// weight update, and the leaving variable's re-entry weight in ONE
  /// launch. The reference weight w_q is read on-device (the reference
  /// path's download_value round trip rides along as a span read); the
  /// candidate test `cand > w_q` is false at j == q, so w_q is never
  /// written while lanes read it.
  void devex_update(const vgpu::DeviceBuffer<Real>& prow,
                    const vgpu::DeviceBuffer<Real>& mask,
                    vgpu::DeviceBuffer<Real>& devex_w, std::size_t q,
                    std::size_t leaving, Real alpha_p) const {
    const std::size_t m = m_;
    const std::size_t n = n_aug_;
    auto at = at_.device_span();
    auto ps = prow.device_span();
    auto ms = mask.device_span();
    auto wsp = devex_w.device_span();
    device().launch_blocks(
        "devex_update_fused", n, vgpu::Device::kBlockSize,
        {2.0 * double(n) * double(m) + 4.0 * double(n),
         double((n * m + 4 * n + m) * sizeof(Real)), sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          const Real wq = wsp[q];
          for (std::size_t j = lo; j < hi; ++j) {
            if (j == leaving) {
              // The leaving variable re-enters the nonbasic pool with the
              // reference weight of the pivot (its mask is still 0 here).
              wsp[j] = std::max(wq / (alpha_p * alpha_p), Real{1});
              continue;
            }
            if (ms[j] == Real{0}) continue;
            at.read_range(j * m, (j + 1) * m);
            const Real* col = at.data() + j * m;
            Real acc{0};
            for (std::size_t i = 0; i < m; ++i) acc += col[i] * ps[i];
            const Real t = acc / alpha_p;
            const Real cand = t * t * wq;
            if (cand > wsp[j]) wsp[j] = cand;
          }
        });
  }

 private:
  [[nodiscard]] static vblas::Matrix<Real> host_at(const AugmentedLp& aug) {
    const vblas::Matrix<double> at64 = aug.dense_at();
    vblas::Matrix<Real> out(at64.rows(), at64.cols());
    for (std::size_t i = 0; i < at64.size(); ++i) {
      out.flat()[i] = static_cast<Real>(at64.flat()[i]);
    }
    return out;
  }

  /// Shared sweep: out_j = [c_j -] a_j . y, optionally masked.
  void column_products(std::string_view name,
                       const vgpu::DeviceBuffer<Real>& y,
                       const vgpu::DeviceBuffer<Real>* c,
                       const vgpu::DeviceBuffer<Real>* mask,
                       vgpu::DeviceBuffer<Real>& out) const {
    const std::size_t m = m_;
    auto at = at_.device_span();
    auto ys = y.device_span();
    auto os = out.device_span();
    auto cs = c ? c->device_span() : vgpu::check::CheckedSpan<const Real>{};
    auto ms = mask ? mask->device_span() : vgpu::check::CheckedSpan<const Real>{};
    device().launch_blocks(
        name, n_aug_, vgpu::Device::kBlockSize,
        {2.0 * double(n_aug_) * double(m),
         double((n_aug_ * m + 3 * n_aug_ + m) * sizeof(Real)), sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t j = lo; j < hi; ++j) {
            if (mask && ms[j] == Real{0}) {
              os[j] = Real{0};
              continue;
            }
            at.read_range(j * m, (j + 1) * m);
            const Real* col = at.data() + j * m;
            Real acc{0};
            for (std::size_t i = 0; i < m; ++i) acc += col[i] * ys[i];
            os[j] = c ? cs[j] - acc : acc;
          }
        });
  }

  std::size_t m_, n_aug_;
  vblas::DeviceMatrix<Real> at_;
};

/// CSR A^T policy: kernel cost scales with nnz instead of n_aug * m.
template <typename Real>
class SparseAt {
 public:
  /// CSR storage opts the product-form basis into the sparse kernel
  /// variants (sparse_ftran / sparse_btran / eta_apply).
  static constexpr bool kSparseKernels = true;

  SparseAt(vgpu::Device& dev, const AugmentedLp& aug)
      : m_(aug.m), n_aug_(aug.n_aug), at_(dev, host_csr(aug)) {
    // Widest column, for declaring fused-kernel costs when the entering
    // column index lives on the device (host metadata, like nnz()).
    const std::span<const std::uint32_t> offs = at_.row_offsets().host_view();
    for (std::size_t j = 0; j < n_aug_; ++j) {
      max_col_nnz_ = std::max<std::size_t>(max_col_nnz_, offs[j + 1] - offs[j]);
    }
  }

  [[nodiscard]] std::size_t m() const noexcept { return m_; }
  [[nodiscard]] std::size_t n_aug() const noexcept { return n_aug_; }
  [[nodiscard]] vgpu::Device& device() const noexcept { return at_.device(); }

  void price(const vgpu::DeviceBuffer<Real>& pi,
             const vgpu::DeviceBuffer<Real>& c,
             const vgpu::DeviceBuffer<Real>& mask,
             vgpu::DeviceBuffer<Real>& d) const {
    column_products("price_reduced", pi, &c, &mask, d);
  }

  void pivot_row_product(const vgpu::DeviceBuffer<Real>& y,
                         vgpu::DeviceBuffer<Real>& out) const {
    column_products("pivot_row_product", y, nullptr, nullptr, out);
  }

  /// alpha_i = sum_k a_q[k] * binv(i, col_k): sparse column against the
  /// dense inverse, cost proportional to m * nnz(a_q). The product-form
  /// basis launches this as "sparse_ftran" so the checker/analyzer/
  /// profiler see the scheme's base solve as its own kernel.
  void ftran_alpha(const vblas::DeviceMatrix<Real>& binv, std::size_t q,
                   vgpu::DeviceBuffer<Real>& alpha,
                   std::string_view name = "ftran") const {
    const std::size_t m = m_;
    auto offs = at_.row_offsets().device_span();
    auto cols = at_.col_indices().device_span();
    auto vals = at_.values().device_span();
    auto bs = binv.device_span();
    auto as = alpha.device_span();
    // Column extent read host-side (a scalar lookup, like the pivot index).
    const std::uint32_t k_lo = offs[q];
    const std::uint32_t k_hi = offs[q + 1];
    const std::size_t nnz_q = k_hi - k_lo;
    device().launch_blocks(
        name, m, vgpu::Device::kBlockSize,
        {2.0 * double(m) * double(nnz_q),
         double(m * nnz_q * sizeof(Real) +
                nnz_q * (sizeof(Real) + sizeof(std::uint32_t)) +
                m * sizeof(Real)),
         sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          // a_q's values/indices are read once and reused across the
          // block (cached on a real GPU); annotate them in bulk.
          vals.read_range(k_lo, k_hi);
          cols.read_range(k_lo, k_hi);
          const Real* vp = vals.data();
          const std::uint32_t* cp = cols.data();
          for (std::size_t i = lo; i < hi; ++i) {
            Real acc{0};
            for (std::uint32_t k = k_lo; k < k_hi; ++k) {
              acc += vp[k] * bs[i * m + cp[k]];
            }
            as[i] = acc;
          }
        });
  }

  // -------------------------------------------------------------------
  // Fused iteration path (SolverOptions::fused_iteration); see DenseAt
  // for the semantics — these are the CSR-cost twins.
  // -------------------------------------------------------------------

  void price_select(const vgpu::DeviceBuffer<Real>& pi,
                    const vgpu::DeviceBuffer<Real>& c,
                    const vgpu::DeviceBuffer<Real>& mask,
                    vgpu::DeviceBuffer<Real>& d,
                    vgpu::DeviceBuffer<Real>& score,
                    const vgpu::DeviceBuffer<Real>& devex_w,
                    vgpu::DeviceBuffer<Real>& desc, EnteringRule rule,
                    Real tol) const {
    const std::size_t n = n_aug_;
    const std::size_t blocks =
        (n + vgpu::Device::kBlockSize - 1) / vgpu::Device::kBlockSize;
    std::vector<std::size_t> part_idx(blocks, vgpu::detail::kNoIndex);
    std::vector<Real> part_val(blocks, Real{0});
    auto offs = at_.row_offsets().device_span();
    auto cols = at_.col_indices().device_span();
    auto vals = at_.values().device_span();
    auto ys = pi.device_span();
    auto cs = c.device_span();
    auto ms = mask.device_span();
    auto ds = d.device_span();
    auto ss = score.device_span();
    auto wsp = devex_w.device_span();
    auto desc_s = desc.device_span();
    const double nnz = static_cast<double>(at_.nnz());
    device().launch_blocks(
        "price_select", n, vgpu::Device::kBlockSize,
        {2.0 * nnz + 4.0 * double(n),
         nnz * double(2 * sizeof(Real) + sizeof(std::uint32_t)) +
             double(6 * n * sizeof(Real)),
         sizeof(Real)},
        [&](std::size_t blk, std::size_t lo, std::size_t hi) {
          for (std::size_t j = lo; j < hi; ++j) {
            if (ms[j] == Real{0}) {
              ds[j] = Real{0};
              continue;
            }
            Real acc{0};
            for (std::uint32_t k = offs[j]; k < offs[j + 1]; ++k) {
              acc += vals[k] * ys[cols[k]];
            }
            ds[j] = cs[j] - acc;
          }
          std::size_t best = vgpu::detail::kNoIndex;
          Real val{0};
          if (rule == EnteringRule::kBland) {
            best = vgpu::detail::block_first_below(ds, lo, hi, -tol);
          } else if (rule == EnteringRule::kDevex) {
            for (std::size_t j = lo; j < hi; ++j) {
              ss[j] = ds[j] < -tol ? -(ds[j] * ds[j]) / wsp[j] : Real{0};
            }
            best = vgpu::detail::block_argmin(ss, lo, hi);
            val = ss[best];
          } else {
            best = vgpu::detail::block_argmin(ds, lo, hi);
            val = ds[best];
          }
          if (blocks == 1) {
            fused_detail::write_entering(rule, tol, best, val, ds, desc_s);
          } else {
            part_idx[blk] = best;
            part_val[blk] = val;
          }
        });
    if (blocks > 1) {
      fused_detail::combine_entering(device(), rule, tol, part_idx, part_val,
                                     ds, desc_s);
    }
  }

  /// Declared cost uses the widest column (the entering index is device-
  /// resident, so the exact nnz(a_q) is unknown host-side; over-declaring
  /// is safe, the cost lint only flags observed > declared drift).
  void ftran_ratio_select(const vblas::DeviceMatrix<Real>& binv,
                          const vgpu::DeviceBuffer<Real>& beta,
                          vgpu::DeviceBuffer<Real>& alpha,
                          vgpu::DeviceBuffer<Real>& ratio,
                          vgpu::DeviceBuffer<Real>& desc,
                          Real pivot_tol) const {
    const std::size_t m = m_;
    const std::size_t blocks =
        (m + vgpu::Device::kBlockSize - 1) / vgpu::Device::kBlockSize;
    std::vector<std::size_t> part_idx(blocks, vgpu::detail::kNoIndex);
    std::vector<Real> part_val(blocks, Real{0});
    auto offs = at_.row_offsets().device_span();
    auto cols = at_.col_indices().device_span();
    auto vals = at_.values().device_span();
    auto bs = binv.device_span();
    auto be = beta.device_span();
    auto as = alpha.device_span();
    auto rs = ratio.device_span();
    auto desc_s = desc.device_span();
    const std::size_t nnz_max = max_col_nnz_;
    constexpr Real kRInf = std::numeric_limits<Real>::infinity();
    device().launch_blocks(
        "ftran_ratio", m, vgpu::Device::kBlockSize,
        {2.0 * double(m) * double(nnz_max) + 3.0 * double(m),
         double(m * nnz_max * sizeof(Real) +
                nnz_max * (sizeof(Real) + sizeof(std::uint32_t)) +
                (7 * m + 2) * sizeof(Real)),
         sizeof(Real)},
        [&](std::size_t blk, std::size_t lo, std::size_t hi) {
          if (desc_s[kDescQ] < Real{0}) return;  // optimal: nothing entered
          const std::size_t q = static_cast<std::size_t>(desc_s[kDescQ]);
          const std::uint32_t k_lo = offs[q];
          const std::uint32_t k_hi = offs[q + 1];
          vals.read_range(k_lo, k_hi);
          cols.read_range(k_lo, k_hi);
          const Real* vp = vals.data();
          const std::uint32_t* cp = cols.data();
          for (std::size_t i = lo; i < hi; ++i) {
            Real acc{0};
            for (std::uint32_t k = k_lo; k < k_hi; ++k) {
              acc += vp[k] * bs[i * m + cp[k]];
            }
            as[i] = acc;
            rs[i] = acc > pivot_tol ? be[i] / acc : kRInf;
          }
          const std::size_t best = vgpu::detail::block_argmin(rs, lo, hi);
          if (blocks == 1) {
            fused_detail::write_leaving<Real>(best, rs, as, desc_s);
          } else {
            part_idx[blk] = best;
            part_val[blk] = rs[best];
          }
        });
    if (blocks > 1) {
      fused_detail::combine_leaving<Real>(device(), part_idx, part_val, rs,
                                          as, desc_s);
    }
  }

  void devex_update(const vgpu::DeviceBuffer<Real>& prow,
                    const vgpu::DeviceBuffer<Real>& mask,
                    vgpu::DeviceBuffer<Real>& devex_w, std::size_t q,
                    std::size_t leaving, Real alpha_p) const {
    const std::size_t n = n_aug_;
    auto offs = at_.row_offsets().device_span();
    auto cols = at_.col_indices().device_span();
    auto vals = at_.values().device_span();
    auto ps = prow.device_span();
    auto ms = mask.device_span();
    auto wsp = devex_w.device_span();
    const double nnz = static_cast<double>(at_.nnz());
    device().launch_blocks(
        "devex_update_fused", n, vgpu::Device::kBlockSize,
        {2.0 * nnz + 4.0 * double(n),
         nnz * double(2 * sizeof(Real) + sizeof(std::uint32_t)) +
             double(4 * n * sizeof(Real)),
         sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          const Real wq = wsp[q];
          for (std::size_t j = lo; j < hi; ++j) {
            if (j == leaving) {
              wsp[j] = std::max(wq / (alpha_p * alpha_p), Real{1});
              continue;
            }
            if (ms[j] == Real{0}) continue;
            Real acc{0};
            for (std::uint32_t k = offs[j]; k < offs[j + 1]; ++k) {
              acc += vals[k] * ps[cols[k]];
            }
            const Real t = acc / alpha_p;
            const Real cand = t * t * wq;
            if (cand > wsp[j]) wsp[j] = cand;
          }
        });
  }

 private:
  [[nodiscard]] static sparse::CsrMatrix<Real> host_csr(
      const AugmentedLp& aug) {
    const sparse::CsrMatrix<double> at64 = aug.csr_at();
    std::vector<Real> vals(at64.values().size());
    for (std::size_t k = 0; k < vals.size(); ++k) {
      vals[k] = static_cast<Real>(at64.values()[k]);
    }
    return sparse::CsrMatrix<Real>(at64.rows(), at64.cols(),
                                   at64.row_offsets(), at64.col_indices(),
                                   std::move(vals));
  }

  void column_products(std::string_view name,
                       const vgpu::DeviceBuffer<Real>& y,
                       const vgpu::DeviceBuffer<Real>* c,
                       const vgpu::DeviceBuffer<Real>* mask,
                       vgpu::DeviceBuffer<Real>& out) const {
    auto offs = at_.row_offsets().device_span();
    auto cols = at_.col_indices().device_span();
    auto vals = at_.values().device_span();
    auto ys = y.device_span();
    auto os = out.device_span();
    auto cs = c ? c->device_span() : vgpu::check::CheckedSpan<const Real>{};
    auto ms = mask ? mask->device_span() : vgpu::check::CheckedSpan<const Real>{};
    const double nnz = static_cast<double>(at_.nnz());
    device().launch_blocks(
        name, n_aug_, vgpu::Device::kBlockSize,
        {2.0 * nnz,
         nnz * double(2 * sizeof(Real) + sizeof(std::uint32_t)) +
             double(3 * n_aug_ * sizeof(Real)),
         sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t j = lo; j < hi; ++j) {
            if (mask && ms[j] == Real{0}) {
              os[j] = Real{0};
              continue;
            }
            Real acc{0};
            for (std::uint32_t k = offs[j]; k < offs[j + 1]; ++k) {
              acc += vals[k] * ys[cols[k]];
            }
            os[j] = c ? cs[j] - acc : acc;
          }
        });
  }

  std::size_t m_, n_aug_;
  sparse::DeviceCsr<Real> at_;
  std::size_t max_col_nnz_ = 0;
};

}  // namespace gs::simplex
