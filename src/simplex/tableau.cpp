#include "simplex/tableau.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include "metrics/health.hpp"
#include "profile/profile.hpp"
#include "simplex/cost_meter.hpp"
#include "simplex/phase_setup.hpp"
#include "support/timer.hpp"
#include "vblas/containers.hpp"

namespace gs::simplex {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Full tableau: body is B^-1 A (m x n_aug), rhs is B^-1 b, and reduced
/// costs are maintained in `drow` by the same eliminations.
struct Tableau {
  Tableau(const AugmentedLp& aug_in, const SolverOptions& opt_in,
          CostMeter& meter_in)
      : aug(aug_in),
        m(aug_in.m),
        n_aug(aug_in.n_aug),
        body(aug_in.dense_a()),
        rhs(aug_in.b),
        drow(aug_in.n_aug, 0.0),
        basic(aug_in.basic),
        in_basis(aug_in.n_aug, false),
        opt(opt_in),
        meter(meter_in) {
    // Normalize each row by its crash-basis pivot so the basis columns are
    // unit columns (the crash basis is diagonal, so this is a row scale).
    for (std::size_t i = 0; i < m; ++i) {
      const double s = aug.binv_diag[i];
      if (s != 1.0) {
        auto row = body.row(i);
        for (std::size_t j = 0; j < n_aug; ++j) row[j] *= s;
        rhs[i] *= s;
      }
    }
    for (std::uint32_t col : basic) in_basis[col] = true;
  }

  /// Install phase costs: drow = c - c_B^T (B^-1 A), z = c_B^T rhs.
  void price_from_scratch(const std::vector<double>& c) {
    for (std::size_t j = 0; j < n_aug; ++j) drow[j] = c[j];
    z = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double cbi = c[basic[i]];
      if (cbi == 0.0) continue;
      const auto row = body.row(i);
      for (std::size_t j = 0; j < n_aug; ++j) drow[j] -= cbi * row[j];
      z += cbi * rhs[i];
    }
    meter.charge("reprice", 2.0 * double(m) * double(n_aug),
                 double((m * n_aug + n_aug) * sizeof(double)));
  }

  [[nodiscard]] bool may_enter(std::size_t j) const {
    return !in_basis[j] && !aug.is_artificial[j];
  }

  const AugmentedLp& aug;
  std::size_t m, n_aug;
  vblas::Matrix<double> body;
  std::vector<double> rhs;
  std::vector<double> drow;
  double z = 0.0;
  std::vector<std::uint32_t> basic;
  std::vector<bool> in_basis;
  const SolverOptions& opt;
  CostMeter& meter;
};

[[nodiscard]] std::optional<std::size_t> select_entering(const Tableau& t,
                                                         bool bland) {
  const double tol = t.opt.opt_tol;
  if (bland) {
    for (std::size_t j = 0; j < t.n_aug; ++j) {
      if (t.may_enter(j) && t.drow[j] < -tol) return j;
    }
    return std::nullopt;
  }
  std::size_t best = t.n_aug;
  double best_d = -tol;
  for (std::size_t j = 0; j < t.n_aug; ++j) {
    if (t.may_enter(j) && t.drow[j] < best_d) {
      best_d = t.drow[j];
      best = j;
    }
  }
  if (best == t.n_aug) return std::nullopt;
  return best;
}

/// Gauss-Jordan elimination around pivot (p, q) over the whole tableau.
void eliminate(Tableau& t, std::size_t p, std::size_t q) {
  auto prow = t.body.row(p);
  const double pivot = prow[q];
  for (std::size_t j = 0; j < t.n_aug; ++j) prow[j] /= pivot;
  t.rhs[p] /= pivot;
  for (std::size_t i = 0; i < t.m; ++i) {
    if (i == p) continue;
    auto row = t.body.row(i);
    const double f = row[q];
    if (f == 0.0) continue;
    for (std::size_t j = 0; j < t.n_aug; ++j) row[j] -= f * prow[j];
    t.rhs[i] = std::max(0.0, t.rhs[i] - f * t.rhs[p]);
  }
  const double fd = t.drow[q];
  if (fd != 0.0) {
    for (std::size_t j = 0; j < t.n_aug; ++j) t.drow[j] -= fd * prow[j];
    t.z += fd * t.rhs[p];  // z tracks -c_B beta convention via elimination
  }
  t.meter.charge("eliminate", 2.0 * double(t.m + 1) * double(t.n_aug),
                 double((2 * (t.m + 1) * t.n_aug) * sizeof(double)));
  const std::uint32_t leaving = t.basic[p];
  t.basic[p] = static_cast<std::uint32_t>(q);
  t.in_basis[leaving] = false;
  t.in_basis[q] = true;
}

enum class LoopExit { kOptimal, kUnbounded, kIterationLimit };

LoopExit run_loop(Tableau& t, std::size_t budget, SolverStats& stats,
                  metrics::SimplexOpMetrics& om, metrics::HealthMonitor& health,
                  std::uint8_t phase) {
  std::size_t since_improve = 0;
  double last_obj = kInf;
  for (std::size_t iter = 0; iter < budget; ++iter) {
    const bool bland =
        t.opt.pricing == PricingRule::kBland ||
        (t.opt.pricing == PricingRule::kHybrid &&
         since_improve >= t.opt.degeneracy_window);
    const auto entering = select_entering(t, bland);
    if (!entering.has_value()) return LoopExit::kOptimal;
    const std::size_t q = *entering;
    // Ratio test on column q of the tableau body.
    std::size_t p = t.m;
    double theta = kInf;
    for (std::size_t i = 0; i < t.m; ++i) {
      const double a = t.body(i, q);
      if (a > t.opt.pivot_tol) {
        const double r = t.rhs[i] / a;
        if (r < theta) {
          theta = r;
          p = i;
        }
      }
    }
    t.meter.charge("ratio", double(t.m), double(2 * t.m * sizeof(double)));
    if (p == t.m) return LoopExit::kUnbounded;
    // The full tableau maintains no B^-1 to probe for residual drift; the
    // health signals here are the pivot stream (magnitude, degeneracy,
    // Bland activations) and the iteration tally.
    health.record_pivot(t.body(p, q), theta, bland, iter);
    if (record::Recorder* rec = t.opt.recorder) {
      std::uint32_t ties = 0;
      for (std::size_t i = 0; i < t.m; ++i) {
        const double a = t.body(i, q);
        if (a > t.opt.pivot_tol && t.rhs[i] / a == theta) ++ties;
      }
      record::DecisionRecord r;
      r.phase = phase;
      r.bland = bland ? 1 : 0;
      r.iteration = stats.iterations;  // global pivot ordinal, pre-increment
      r.entering = static_cast<std::uint32_t>(q);
      r.leaving_row = static_cast<std::uint32_t>(p);
      r.leaving_col = t.basic[p];
      r.ratio_ties = ties;
      r.reduced_cost = t.drow[q];
      r.pivot_value = t.body(p, q);
      r.theta = theta;
      rec->record_pivot(r);
    }
    eliminate(t, p, q);
    ++stats.iterations;
    om.count_iteration();
    const double obj = t.z;
    if (obj < last_obj - 1e-12 * (1.0 + std::abs(last_obj))) {
      since_improve = 0;
    } else {
      ++since_improve;
    }
    last_obj = obj;
  }
  return LoopExit::kIterationLimit;
}

[[nodiscard]] double objective_of(const Tableau& t,
                                  const std::vector<double>& c) {
  double z = 0.0;
  for (std::size_t i = 0; i < t.m; ++i) z += c[t.basic[i]] * t.rhs[i];
  return z;
}

/// Pivot lingering zero-level artificials out where possible. `iteration`
/// is the pivot ordinal stamped on recorded drive-out pivots.
void drive_out_artificials(Tableau& t, std::uint64_t iteration) {
  for (std::size_t i = 0; i < t.m; ++i) {
    if (!t.aug.is_artificial[t.basic[i]]) continue;
    for (std::size_t j = 0; j < t.aug.n; ++j) {
      if (!t.in_basis[j] && std::abs(t.body(i, j)) > 1e-7) {
        if (record::Recorder* rec = t.opt.recorder) {
          record::DecisionRecord r;
          r.phase = 1;
          r.iteration = iteration;
          r.entering = static_cast<std::uint32_t>(j);
          r.leaving_row = static_cast<std::uint32_t>(i);
          r.leaving_col = t.basic[i];
          r.ratio_ties = 1;
          r.pivot_value = t.body(i, j);
          rec->record_pivot(r);
        }
        eliminate(t, i, j);
        break;
      }
    }
  }
}

}  // namespace

SolveResult TableauSimplex::solve(const lp::LpProblem& problem) const {
  const lp::StandardFormLp sf = lp::to_standard_form(problem);
  return solve_standard(sf);
}

SolveResult TableauSimplex::solve_standard(
    const lp::StandardFormLp& sf) const {
  WallTimer wall;
  CostMeter meter(model_,
                  profile::chain(options_.profiler, options_.trace_sink,
                                 trace::kHostPid, model_),
                  options_.metrics);
  metrics::SimplexOpMetrics op_metrics;
  op_metrics.attach(options_.metrics);
  metrics::HealthMonitor health(options_.metrics, options_.health);
  const AugmentedLp aug = augment(sf);
  Tableau tab(aug, options_, meter);
  record::Recorder* rec = options_.recorder;
  if (rec != nullptr) {
    rec->begin_solve("tableau", 64, aug.m, aug.n_aug, decision_digest(aug));
  }

  SolveResult result;
  auto finish = [&](SolveStatus status) -> SolveResult {
    result.status = status;
    result.stats.wall_seconds = wall.seconds();
    result.stats.device_stats = meter.stats();
    result.stats.sim_seconds = meter.sim_seconds();
    if (rec != nullptr) {
      rec->end_solve(to_string(status), status == SolveStatus::kOptimal,
                     options_.metrics ? options_.metrics->warnings_total() : 0,
                     tab.basic);
    }
    return result;
  };

  std::size_t budget = options_.max_iterations;
  if (aug.num_artificial > 0) {
    if (rec != nullptr) rec->begin_phase(1);
    tab.price_from_scratch(aug.c_phase1);
    const LoopExit exit =
        run_loop(tab, budget, result.stats, op_metrics, health, 1);
    result.stats.phase1_iterations = result.stats.iterations;
    if (exit == LoopExit::kIterationLimit) {
      return finish(SolveStatus::kIterationLimit);
    }
    if (exit == LoopExit::kUnbounded) {
      return finish(SolveStatus::kNumericalTrouble);
    }
    const double feas_tol =
        1e-6 * (1.0 + *std::max_element(aug.b.begin(), aug.b.end()));
    if (objective_of(tab, aug.c_phase1) > feas_tol) {
      return finish(SolveStatus::kInfeasible);
    }
    drive_out_artificials(tab, result.stats.iterations);
    budget -= std::min(budget, result.stats.iterations);
  }

  if (rec != nullptr) rec->begin_phase(2);
  tab.price_from_scratch(aug.c_phase2);
  const LoopExit exit =
      run_loop(tab, budget, result.stats, op_metrics, health, 2);
  if (exit == LoopExit::kUnbounded) return finish(SolveStatus::kUnbounded);
  if (exit == LoopExit::kIterationLimit) {
    return finish(SolveStatus::kIterationLimit);
  }

  std::vector<double> x_std(aug.n, 0.0);
  for (std::size_t i = 0; i < aug.m; ++i) {
    if (tab.basic[i] < aug.n) x_std[tab.basic[i]] = tab.rhs[i];
  }
  result.x = sf.recover(x_std);
  double z = 0.0;
  for (std::size_t j = 0; j < aug.n; ++j) z += sf.c[j] * x_std[j];
  result.objective = sf.original_objective(z);
  // Duals from the reduced costs of each row's identity column (its slack,
  // or its artificial where no slack exists): d_col = -y_i at optimality.
  {
    std::vector<double> pi(aug.m, 0.0);
    std::size_t k = 0;
    for (std::size_t i = 0; i < aug.m; ++i) {
      std::size_t col;
      if (sf.slack_col[i] >= 0) {
        col = static_cast<std::size_t>(sf.slack_col[i]);
      } else {
        col = aug.n + k++;
      }
      pi[i] = -tab.drow[col];
    }
    result.y = sf.recover_duals(pi);
  }
  return finish(SolveStatus::kOptimal);
}

}  // namespace gs::simplex
