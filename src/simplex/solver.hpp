// Convenience umbrella header + engine-selection front end.
#pragma once

#include <memory>

#include "simplex/device_revised.hpp"
#include "simplex/dual_revised.hpp"
#include "simplex/host_revised.hpp"
#include "simplex/tableau.hpp"
#include "simplex/types.hpp"
#include "vgpu/machine_model.hpp"

namespace gs::simplex {

/// Which implementation to run.
enum class Engine {
  kDeviceRevised,        ///< the paper's GPU solver (double precision)
  kDeviceRevisedFloat,   ///< same, single precision (Fig. 3)
  kHostRevised,          ///< sequential CPU revised simplex baseline
  kTableau,              ///< full-tableau baseline
  kSparseRevised,        ///< CSR device solver (Ext. C, double precision)
  kDualRevised,          ///< host dual revised simplex (warm-start path)
};

[[nodiscard]] constexpr std::string_view to_string(Engine e) noexcept {
  switch (e) {
    case Engine::kDeviceRevised: return "device-revised";
    case Engine::kDeviceRevisedFloat: return "device-revised-float";
    case Engine::kHostRevised: return "host-revised";
    case Engine::kTableau: return "tableau";
    case Engine::kSparseRevised: return "sparse-revised";
    case Engine::kDualRevised: return "dual-revised";
  }
  return "?";
}

/// One-call solve with a fresh device of the given machine model (device
/// engines) or the given model as the CPU cost meter (host engines).
[[nodiscard]] inline SolveResult solve(
    const lp::LpProblem& problem, Engine engine,
    const SolverOptions& options = {},
    const vgpu::MachineModel& device_model = vgpu::gtx280_model(),
    const vgpu::MachineModel& host_model = vgpu::cpu2009_model()) {
  switch (engine) {
    case Engine::kDeviceRevised: {
      vgpu::Device dev(device_model);
      return DeviceRevisedSimplex<double>(dev, options).solve(problem);
    }
    case Engine::kDeviceRevisedFloat: {
      vgpu::Device dev(device_model);
      return DeviceRevisedSimplex<float>(dev, options).solve(problem);
    }
    case Engine::kHostRevised:
      return HostRevisedSimplex(options, host_model).solve(problem);
    case Engine::kTableau:
      return TableauSimplex(options, host_model).solve(problem);
    case Engine::kSparseRevised: {
      vgpu::Device dev(device_model);
      return SparseRevisedSimplex<double>(dev, options).solve(problem);
    }
    case Engine::kDualRevised:
      return DualRevisedSimplex(options, host_model).solve(problem);
  }
  GS_FAIL("unknown engine");
}

}  // namespace gs::simplex
