// Classical dense full-tableau simplex: the naive baseline.
//
// Maintains the entire (m+1) x (n_aug+1) tableau and eliminates around the
// pivot each iteration — O(m * n) work per iteration regardless of how many
// columns actually matter. Included because the paper's framing (and every
// follow-on) measures the revised method against it.
#pragma once

#include "lp/problem.hpp"
#include "lp/standard_form.hpp"
#include "simplex/types.hpp"
#include "vgpu/machine_model.hpp"

namespace gs::simplex {

class TableauSimplex {
 public:
  explicit TableauSimplex(SolverOptions options = {},
                          vgpu::MachineModel model = vgpu::cpu2009_model())
      : options_(options), model_(std::move(model)) {}

  [[nodiscard]] SolveResult solve(const lp::LpProblem& problem) const;
  [[nodiscard]] SolveResult solve_standard(const lp::StandardFormLp& sf) const;

 private:
  SolverOptions options_;
  vgpu::MachineModel model_;
};

}  // namespace gs::simplex
