// ProductFormOracle: eta-file basis representation over a sparse LU.
//
//   B_k^-1 = E_k ... E_1 B_0^-1
//
// B_0 is held as a sparse LU (SparseLu, threshold-Markowitz); each pivot
// appends one sparse eta vector instead of touching an O(m^2) inverse.
// FTRAN solves through the factors then applies etas oldest-first; BTRAN
// applies eta transposes newest-first then solves the transposed
// factors. Per-pivot cost is O(nnz of the eta file) — the product-form
// payoff that opens the m >= 4k regime (Huangfu & Hall; see PAPERS.md).
//
// Refactorization folds the eta file back into a fresh B_0 and is
// triggered two ways, mirroring the device engine's policy:
//   - interval: every `reinversion_period` etas (0 means every m), and
//   - growth:   when any eta multiplier exceeds kGrowthLimit (the
//     eta-file conditioning guard from the GPU-simplex literature).
// The engine emits the recorder's refactor event when either fires.
//
// CostMeter step names match the vgpu kernel variants (`sparse_ftran`,
// `sparse_btran`, `eta_apply`) so host and device profiles line up.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "simplex/basis/basis_oracle.hpp"
#include "simplex/basis/sparse_lu.hpp"
#include "simplex/cost_meter.hpp"
#include "simplex/types.hpp"
#include "support/error.hpp"

namespace gs::simplex::basis {

class ProductFormOracle final : public BasisOracle {
 public:
  static constexpr double kGrowthLimit = 1e8;

  /// `cols` and `basis0` describe the initial (crash) basis; `cols` must
  /// outlive the oracle. The crash basis is diagonal (+/-1 slacks and
  /// artificials), so the initial factorization always succeeds.
  ProductFormOracle(std::size_t m, std::span<const std::uint32_t> basis0,
                    const ColumnSource& cols, CostMeter& meter,
                    const SolverOptions& opt)
      : m_(m), cols_(&cols), meter_(&meter), opt_(&opt) {
    const bool ok = lu_.factorize(cols, basis0);
    GS_CHECK_MSG(ok, "product-form: singular crash basis");
  }

  [[nodiscard]] const char* name() const noexcept override {
    return "product-form";
  }
  [[nodiscard]] std::size_t dim() const noexcept override { return m_; }

  void btran(std::span<const double> cb, std::span<double> pi) override {
    for (std::size_t i = 0; i < m_; ++i) pi[i] = cb[i];
    apply_etas_transposed(pi);
    lu_.btran(pi);
    charge_solve("sparse_btran");
  }

  void ftran(std::span<const double> col, std::span<double> alpha) override {
    for (std::size_t i = 0; i < m_; ++i) alpha[i] = col[i];
    lu_.ftran(alpha);
    apply_etas(alpha);
    charge_solve("sparse_ftran");
  }

  /// Append one eta built from the FTRAN'd pivot column.
  void update(std::size_t p, std::span<const double> alpha) override {
    Eta eta;
    eta.p = static_cast<std::uint32_t>(p);
    eta.pval = alpha[p];
    for (std::size_t i = 0; i < m_; ++i) {
      if (i != p && alpha[i] != 0.0) {
        eta.entries.push_back({static_cast<std::uint32_t>(i), alpha[i]});
      }
    }
    const double inv_p = std::abs(1.0 / eta.pval);
    growth_ = std::max(growth_, inv_p);
    for (const auto& e : eta.entries) {
      growth_ = std::max(growth_, std::abs(e.val * inv_p));
    }
    eta_nnz_ += eta.entries.size() + 1;
    const auto nnz = double(eta.entries.size() + 1);
    etas_.push_back(std::move(eta));
    meter_->charge("eta_append", nnz, 2.0 * nnz * sizeof(double));
  }

  [[nodiscard]] bool warm_start(std::span<const std::uint32_t> basis,
                                std::span<const double> b,
                                std::vector<double>& beta_out) override {
    SparseLu lu;
    if (!lu.factorize(*cols_, basis)) return false;
    std::vector<double> beta(b.begin(), b.end());
    lu.ftran(beta);
    for (const double v : beta) {
      if (v < -1e-9) return false;  // primal infeasible here: cold solve
    }
    for (double& v : beta) {
      if (v < 0.0) v = 0.0;
    }
    install(std::move(lu));
    beta_out = std::move(beta);
    return true;
  }

  [[nodiscard]] bool refactorize(
      std::span<const std::uint32_t> basis) override {
    SparseLu lu;
    if (!lu.factorize(*cols_, basis)) return false;
    install(std::move(lu));
    ++refactors_;
    return true;
  }

  [[nodiscard]] bool wants_refactor() const noexcept override {
    const std::size_t interval =
        opt_->reinversion_period > 0 ? opt_->reinversion_period : m_;
    return etas_.size() >= interval || growth_ > kGrowthLimit;
  }

  void ftran_raw(std::span<const double> col,
                 std::span<double> out) const override {
    for (std::size_t i = 0; i < m_; ++i) out[i] = col[i];
    lu_.ftran(out);
    apply_etas(out);
  }

  void btran_raw(std::span<const double> cb,
                 std::span<double> out) const override {
    for (std::size_t i = 0; i < m_; ++i) out[i] = cb[i];
    apply_etas_transposed(out);
    lu_.btran(out);
  }

  void binv_row(std::size_t i, std::span<double> out) const override {
    std::vector<double> e(m_, 0.0);
    e[i] = 1.0;
    btran_raw(e, out);
  }

  void binv_col(std::size_t j, std::span<double> out) const override {
    std::vector<double> e(m_, 0.0);
    e[j] = 1.0;
    ftran_raw(e, out);
  }

  [[nodiscard]] std::size_t eta_count() const noexcept override {
    return etas_.size();
  }
  [[nodiscard]] std::size_t refactor_count() const noexcept override {
    return refactors_;
  }
  [[nodiscard]] std::size_t factor_nnz() const noexcept { return lu_.nnz(); }
  [[nodiscard]] std::size_t eta_nnz() const noexcept { return eta_nnz_; }

 private:
  struct EtaEntry {
    std::uint32_t row;
    double val;
  };
  struct Eta {
    std::uint32_t p = 0;   ///< pivot row (basis position)
    double pval = 1.0;     ///< alpha_p
    std::vector<EtaEntry> entries;  ///< off-pivot alpha_i != 0
  };

  void install(SparseLu&& lu) {
    lu_ = std::move(lu);
    etas_.clear();
    eta_nnz_ = 0;
    growth_ = 0.0;
    // One sparse refactorization: ~2 flops per LU nonzero per eliminated
    // column plus the gather sweep, far below the dense 2m^3.
    const auto nnz = double(lu_.nnz());
    meter_->charge("sparse_refactor", 4.0 * nnz + 2.0 * double(m_),
                   double((2 * lu_.nnz() + 2 * m_) * sizeof(double)));
  }

  /// x := E_k ... E_1 x (FTRAN order).
  void apply_etas(std::span<double> x) const {
    for (const Eta& eta : etas_) {
      const double t = x[eta.p] / eta.pval;
      if (t != 0.0) {
        for (const EtaEntry& e : eta.entries) x[e.row] -= e.val * t;
      }
      x[eta.p] = t;
    }
  }

  /// x := E_1^T ... E_k^T x (BTRAN order: newest eta first).
  void apply_etas_transposed(std::span<double> x) const {
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
      double acc = x[it->p];
      for (const EtaEntry& e : it->entries) acc -= e.val * x[e.row];
      x[it->p] = acc / it->pval;
    }
  }

  void charge_solve(const char* step) {
    const auto lu_nnz = double(lu_.nnz());
    meter_->charge(step, 2.0 * lu_nnz + double(m_),
                   double((2 * lu_.nnz() + 2 * m_) * sizeof(double)));
    if (!etas_.empty()) {
      const auto nnz = double(eta_nnz_);
      meter_->charge("eta_apply", 2.0 * nnz,
                     double((2 * eta_nnz_ + etas_.size()) * sizeof(double)));
    }
  }

  std::size_t m_;
  const ColumnSource* cols_;
  CostMeter* meter_;
  const SolverOptions* opt_;
  SparseLu lu_;
  std::vector<Eta> etas_;
  std::size_t eta_nnz_ = 0;
  std::size_t refactors_ = 0;
  double growth_ = 0.0;
};

}  // namespace gs::simplex::basis
