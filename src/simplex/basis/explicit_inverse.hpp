// ExplicitInverseOracle: the paper's dense basis representation, moved
// behind the BasisOracle seam unchanged.
//
// B^-1 is held as a dense m x m matrix; BTRAN/FTRAN are O(m^2) row-wise
// products and each pivot is an O(m^2) Gauss-Jordan rank-1 update. The
// arithmetic order and the CostMeter charge names/formulas are exactly
// the ones the host engine carried before the extraction, so solves via
// this oracle are bit-identical to the pre-oracle engine (the recorder
// and bench baselines depend on that).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "simplex/basis/basis_oracle.hpp"
#include "simplex/cost_meter.hpp"
#include "simplex/types.hpp"
#include "support/error.hpp"
#include "vblas/containers.hpp"
#include "vblas/host_ref.hpp"

namespace gs::simplex::basis {

class ExplicitInverseOracle final : public BasisOracle {
 public:
  /// `binv_diag` seeds the crash-basis inverse (+/-1 per row); `cols`
  /// must outlive the oracle (it is read on warm_start/refactorize).
  ExplicitInverseOracle(std::size_t m, std::span<const double> binv_diag,
                        const ColumnSource& cols, CostMeter& meter,
                        const SolverOptions& opt)
      : m_(m), cols_(&cols), meter_(&meter), opt_(&opt), binv_(m, m) {
    for (std::size_t i = 0; i < m_; ++i) binv_(i, i) = binv_diag[i];
  }

  [[nodiscard]] const char* name() const noexcept override {
    return "explicit-inverse";
  }
  [[nodiscard]] std::size_t dim() const noexcept override { return m_; }

  /// pi = (B^-1)^T c_B, accumulated row-wise for cache-friendly access.
  void btran(std::span<const double> cb, std::span<double> pi) override {
    for (std::size_t j = 0; j < m_; ++j) pi[j] = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      const double cbi = cb[i];
      if (cbi == 0.0) continue;
      const auto row = binv_.row(i);
      for (std::size_t j = 0; j < m_; ++j) pi[j] += cbi * row[j];
    }
    meter_->charge("price_btran", 2.0 * double(m_) * double(m_),
                   double((m_ * m_ + 2 * m_) * sizeof(double)));
  }

  void ftran(std::span<const double> col, std::span<double> alpha) override {
    for (std::size_t i = 0; i < m_; ++i) {
      const auto row = binv_.row(i);
      double acc = 0.0;
      for (std::size_t k = 0; k < m_; ++k) acc += row[k] * col[k];
      alpha[i] = acc;
    }
    meter_->charge("ftran", 2.0 * double(m_) * double(m_),
                   double((m_ * m_ + 2 * m_) * sizeof(double)));
  }

  /// Gauss-Jordan rank-1 update of the explicit inverse.
  void update(std::size_t p, std::span<const double> alpha) override {
    const double alpha_p = alpha[p];
    std::vector<double> prow(binv_.row(p).begin(), binv_.row(p).end());
    for (std::size_t i = 0; i < m_; ++i) {
      auto row = binv_.row(i);
      if (i == p) {
        for (std::size_t j = 0; j < m_; ++j) row[j] = prow[j] / alpha_p;
      } else {
        const double f = alpha[i] / alpha_p;
        if (f == 0.0) continue;
        for (std::size_t j = 0; j < m_; ++j) row[j] -= f * prow[j];
      }
    }
    meter_->charge("update_binv", 2.0 * double(m_) * double(m_),
                   double((2 * m_ * m_ + 2 * m_) * sizeof(double)));
    ++pivots_since_refactor_;
  }

  [[nodiscard]] bool warm_start(std::span<const std::uint32_t> basis,
                                std::span<const double> b,
                                std::vector<double>& beta_out) override {
    vblas::Matrix<double> binv;
    if (!invert_basis(basis, binv)) {
      return false;  // singular basis: stale snapshot of a different family
    }
    std::vector<double> beta(m_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < m_; ++j) acc += binv(i, j) * b[j];
      beta[i] = acc;
    }
    for (const double v : beta) {
      if (v < -1e-9) return false;  // primal infeasible here: cold solve
    }
    for (double& v : beta) {
      if (v < 0.0) v = 0.0;
    }
    binv_ = std::move(binv);
    beta_out = std::move(beta);
    // One dense m x m inversion + the B^-1 b product, on the host roofline.
    charge_reinvert();
    return true;
  }

  [[nodiscard]] bool refactorize(
      std::span<const std::uint32_t> basis) override {
    vblas::Matrix<double> binv;
    if (!invert_basis(basis, binv)) return false;
    binv_ = std::move(binv);
    ++refactors_;
    charge_reinvert();
    return true;
  }

  /// Interval-only for the dense path: refactor_period pivots between
  /// re-inversions, 0 (the default) meaning never — the rank-1 update is
  /// exact, so re-inversion is purely a numerical-hygiene knob here.
  [[nodiscard]] bool wants_refactor() const noexcept override {
    return opt_->refactor_period > 0 &&
           pivots_since_refactor_ >= opt_->refactor_period;
  }

  void ftran_raw(std::span<const double> col,
                 std::span<double> out) const override {
    for (std::size_t i = 0; i < m_; ++i) {
      const auto row = binv_.row(i);
      double acc = 0.0;
      for (std::size_t k = 0; k < m_; ++k) acc += row[k] * col[k];
      out[i] = acc;
    }
  }

  void btran_raw(std::span<const double> cb,
                 std::span<double> out) const override {
    for (std::size_t j = 0; j < m_; ++j) out[j] = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      const double cbi = cb[i];
      if (cbi == 0.0) continue;
      const auto row = binv_.row(i);
      for (std::size_t j = 0; j < m_; ++j) out[j] += cbi * row[j];
    }
  }

  void binv_row(std::size_t i, std::span<double> out) const override {
    const auto row = binv_.row(i);
    for (std::size_t j = 0; j < m_; ++j) out[j] = row[j];
  }

  void binv_col(std::size_t j, std::span<double> out) const override {
    for (std::size_t i = 0; i < m_; ++i) out[i] = binv_(i, j);
  }

  [[nodiscard]] const vblas::Matrix<double>* dense_inverse()
      const noexcept override {
    return &binv_;
  }

  [[nodiscard]] std::size_t refactor_count() const noexcept override {
    return refactors_;
  }

 private:
  [[nodiscard]] bool invert_basis(std::span<const std::uint32_t> basis,
                                  vblas::Matrix<double>& out) const {
    vblas::Matrix<double> b_mat(m_, m_);
    std::vector<double> colbuf(m_);
    for (std::size_t j = 0; j < m_; ++j) {
      std::fill(colbuf.begin(), colbuf.end(), 0.0);
      cols_->gather(basis[j], colbuf);
      for (std::size_t i = 0; i < m_; ++i) b_mat(i, j) = colbuf[i];
    }
    try {
      out = vblas::ref::invert(std::move(b_mat));
    } catch (const gs::Error&) {
      return false;
    }
    return true;
  }

  void charge_reinvert() {
    pivots_since_refactor_ = 0;
    meter_->charge("warm_init",
                   2.0 * double(m_) * double(m_) * double(m_) +
                       2.0 * double(m_) * double(m_),
                   double((3 * m_ * m_ + 2 * m_) * sizeof(double)));
  }

  std::size_t m_;
  const ColumnSource* cols_;
  CostMeter* meter_;
  const SolverOptions* opt_;
  vblas::Matrix<double> binv_;
  std::size_t refactors_ = 0;
  std::size_t pivots_since_refactor_ = 0;
};

}  // namespace gs::simplex::basis
