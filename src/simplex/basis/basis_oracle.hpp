// BasisOracle: the basis-representation seam of the simplex engines.
//
// Every revised-simplex iteration needs exactly four linear-algebra
// services from the basis matrix B: BTRAN (pi^T = c_B^T B^-1), FTRAN
// (alpha = B^-1 a_q), the post-pivot update, and a from-scratch
// (re)factorization. The paper's engines answer them with an explicit
// dense B^-1 and an O(m^2) Gauss-Jordan rank-1 update per pivot — the
// hard cap on problem size. Huangfu & Hall's product-form/eta scheme
// answers the same four questions in O(nnz) of a sparse LU plus an eta
// file, with periodic refactorization bounding the eta growth.
//
// This interface makes the choice a runtime knob (SolverOptions::basis)
// instead of an engine rewrite: ExplicitInverseOracle preserves the
// original dense path bit-for-bit (same arithmetic order, same CostMeter
// charges), ProductFormOracle supplies the sparse path. Engines own the
// simplex logic (pricing, ratio tests, beta updates); oracles own B.
#pragma once

#include <cstdint>
#include <span>

#include "sparse/csr.hpp"
#include "vblas/containers.hpp"

namespace gs::simplex::basis {

/// Read-only access to columns of the augmented constraint matrix A
/// (the source from which basis columns are gathered for factorization).
/// `gather` writes column `col` (length m) into `out`; the caller
/// pre-zeroes `out`, so sparse sources need only write their nonzeros.
class ColumnSource {
 public:
  virtual ~ColumnSource() = default;
  virtual void gather(std::uint32_t col, std::span<double> out) const = 0;
};

/// Dense A^T source (n_aug x m): row j of A^T is column j of A.
class DenseColumnSource final : public ColumnSource {
 public:
  explicit DenseColumnSource(const vblas::Matrix<double>& at) : at_(&at) {}
  void gather(std::uint32_t col, std::span<double> out) const override {
    const auto row = at_->row(col);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = row[i];
  }

 private:
  const vblas::Matrix<double>* at_;
};

/// CSR A^T source (n_aug x m): row j of A^T holds the nonzeros of
/// column j of A — the scalable source for sparse instances.
class CsrColumnSource final : public ColumnSource {
 public:
  explicit CsrColumnSource(const sparse::CsrMatrix<double>& at) : at_(&at) {}
  void gather(std::uint32_t col, std::span<double> out) const override {
    const auto& offs = at_->row_offsets();
    const auto& idx = at_->col_indices();
    const auto& val = at_->values();
    for (std::uint32_t k = offs[col]; k < offs[col + 1]; ++k) {
      out[idx[k]] = val[k];
    }
  }

 private:
  const sparse::CsrMatrix<double>* at_;
};

/// Abstract basis representation. All vectors indexed by basis position
/// (tableau row) unless noted; `m` is the basis dimension throughout.
class BasisOracle {
 public:
  virtual ~BasisOracle() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
  [[nodiscard]] virtual std::size_t dim() const noexcept = 0;

  /// pi^T = c_B^T B^-1. `cb[i]` is the cost of the variable basic in row
  /// i; `pi` (length m, original-row space) is overwritten. Charged.
  virtual void btran(std::span<const double> cb, std::span<double> pi) = 0;

  /// alpha = B^-1 col, where `col` is a dense length-m constraint column
  /// (original-row space). Charged.
  virtual void ftran(std::span<const double> col, std::span<double> alpha) = 0;

  /// Fold the pivot on row `p` with FTRAN'd column `alpha` into the
  /// representation (Gauss-Jordan rank-1 for the explicit inverse, one
  /// eta for the product form). Charged.
  virtual void update(std::size_t p, std::span<const double> alpha) = 0;

  /// Warm-start attempt: factorize the basis given by `basis` (columns of
  /// A, one per row), compute beta = B^-1 b, and accept iff beta >= -1e-9
  /// (clamping small negatives to zero). On rejection — singular B or
  /// primal-infeasible beta — the prior representation is untouched and
  /// nothing is charged. Charged once on acceptance.
  [[nodiscard]] virtual bool warm_start(std::span<const std::uint32_t> basis,
                                        std::span<const double> b,
                                        std::vector<double>& beta_out) = 0;

  /// Rebuild the representation from scratch for `basis` with no
  /// feasibility gate (refactorization; also the dual engine's entry
  /// point, which tolerates primal-infeasible bases). Returns false and
  /// leaves the prior representation untouched when B is singular.
  /// Charged on success.
  [[nodiscard]] virtual bool refactorize(
      std::span<const std::uint32_t> basis) = 0;

  /// Refactorization policy: true when the engine should refactorize
  /// after the pivot it just applied (interval- or growth-triggered).
  [[nodiscard]] virtual bool wants_refactor() const noexcept { return false; }

  /// Uncharged solves for bookkeeping paths (health probes, ranging,
  /// artificial drive-out, warm-start beta). Same arithmetic as the
  /// charged entry points, no meter traffic.
  virtual void ftran_raw(std::span<const double> col,
                         std::span<double> out) const = 0;
  virtual void btran_raw(std::span<const double> cb,
                         std::span<double> out) const = 0;

  /// Row i of B^-1 (e_i^T B^-1) and column j of B^-1 (B^-1 e_j),
  /// uncharged. The explicit oracle copies; the product form solves.
  virtual void binv_row(std::size_t i, std::span<double> out) const = 0;
  virtual void binv_col(std::size_t j, std::span<double> out) const = 0;

  /// Non-null only for the explicit-inverse oracle: direct access to the
  /// dense B^-1 for probe-style readers (health sampling).
  [[nodiscard]] virtual const vblas::Matrix<double>* dense_inverse()
      const noexcept {
    return nullptr;
  }

  /// Product-form bookkeeping (0 / 0 for the explicit inverse).
  [[nodiscard]] virtual std::size_t eta_count() const noexcept { return 0; }
  [[nodiscard]] virtual std::size_t refactor_count() const noexcept {
    return 0;
  }
};

}  // namespace gs::simplex::basis
