// Sparse LU factorization of the basis matrix B (the B0 of the product
// form), left-looking with threshold-Markowitz pivoting.
//
// Columns are factored in ascending-nnz order (the cheap Markowitz
// column heuristic); within a column the pivot row is chosen, among rows
// whose magnitude is within `kPivotThreshold` of the column max, as the
// one with the fewest nonzeros in B (the Markowitz row count) — fill
// control first, stability floor second, exactly the trade Huangfu &
// Hall describe for the dual revised method's B0. L is unit-diagonal and
// stored by columns over original row indices; U is stored by columns
// over elimination steps with a separate diagonal.
//
// Solves:
//   B x = a  (ftran):  L y = a forward, U z = y backward, x = Pc z
//   B^T y = c (btran): U^T w = Pc^T c forward, L^T y = w backward
// All dense-workspace, O(nnz(L+U)) flops plus an O(m) sweep.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "simplex/basis/basis_oracle.hpp"

namespace gs::simplex::basis {

class SparseLu {
 public:
  static constexpr double kPivotThreshold = 0.1;   ///< stability floor
  static constexpr double kSingularTol = 1e-11;    ///< column-max cutoff

  /// Factor B whose column at basis position j is column `basis[j]` of A.
  /// Returns false (leaving any prior factors untouched) when B is
  /// numerically singular.
  [[nodiscard]] bool factorize(const ColumnSource& cols,
                               std::span<const std::uint32_t> basis) {
    const std::size_t m = basis.size();
    // Gather all basis columns once (sparse, original row indices).
    std::vector<std::vector<Entry>> bcols(m);
    std::vector<std::uint32_t> rcount(m, 0);
    std::vector<double> buf(m, 0.0);
    for (std::size_t j = 0; j < m; ++j) {
      cols.gather(basis[j], buf);
      for (std::size_t i = 0; i < m; ++i) {
        if (buf[i] != 0.0) {
          bcols[j].push_back({static_cast<std::uint32_t>(i), buf[i]});
          ++rcount[i];
          buf[i] = 0.0;
        }
      }
    }
    // Markowitz column order: ascending nnz, stable on position.
    std::vector<std::uint32_t> corder(m);
    std::iota(corder.begin(), corder.end(), 0u);
    std::stable_sort(corder.begin(), corder.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return bcols[a].size() < bcols[b].size();
                     });

    std::vector<std::vector<Entry>> lcols(m), ucols(m);
    std::vector<double> udiag(m, 0.0);
    std::vector<std::uint32_t> rperm(m, 0);
    std::vector<bool> pivoted(m, false);
    std::vector<double>& x = buf;  // dense SPA, zeroed between columns

    for (std::size_t j = 0; j < m; ++j) {
      for (const Entry& e : bcols[corder[j]]) x[e.row] = e.val;
      // Left-looking elimination: consume prior pivots in step order.
      for (std::size_t t = 0; t < j; ++t) {
        const double v = x[rperm[t]];
        if (v == 0.0) continue;
        ucols[j].push_back({static_cast<std::uint32_t>(t), v});
        for (const Entry& e : lcols[t]) x[e.row] -= e.val * v;
      }
      // Threshold-Markowitz pivot among not-yet-pivoted rows.
      double maxabs = 0.0;
      for (std::size_t r = 0; r < m; ++r) {
        if (!pivoted[r]) maxabs = std::max(maxabs, std::abs(x[r]));
      }
      if (maxabs <= kSingularTol) {
        std::fill(x.begin(), x.end(), 0.0);
        return false;  // structurally or numerically singular
      }
      std::size_t prow = m;
      std::uint32_t best_count = 0;
      for (std::size_t r = 0; r < m; ++r) {
        if (pivoted[r] || std::abs(x[r]) < kPivotThreshold * maxabs) continue;
        if (prow == m || rcount[r] < best_count) {
          prow = r;
          best_count = rcount[r];
        }
      }
      const double piv = x[prow];
      rperm[j] = static_cast<std::uint32_t>(prow);
      pivoted[prow] = true;
      udiag[j] = piv;
      x[prow] = 0.0;
      for (std::size_t r = 0; r < m; ++r) {
        if (x[r] != 0.0) {
          if (!pivoted[r]) {
            lcols[j].push_back({static_cast<std::uint32_t>(r), x[r] / piv});
          }
          x[r] = 0.0;
        }
      }
    }

    m_ = m;
    lcols_ = std::move(lcols);
    ucols_ = std::move(ucols);
    udiag_ = std::move(udiag);
    rperm_ = std::move(rperm);
    cperm_ = std::move(corder);
    nnz_ = m_;  // U diagonal
    for (const auto& c : lcols_) nnz_ += c.size();
    for (const auto& c : ucols_) nnz_ += c.size();
    work_.assign(m_, 0.0);
    return true;
  }

  /// x := B^-1 x. Input indexed by original row, output by basis position.
  void ftran(std::span<double> x) const {
    std::vector<double>& y = work_;
    for (std::size_t t = 0; t < m_; ++t) {
      const double v = x[rperm_[t]];
      y[t] = v;
      if (v != 0.0) {
        for (const Entry& e : lcols_[t]) x[e.row] -= e.val * v;
      }
    }
    for (std::size_t j = m_; j-- > 0;) {
      const double z = y[j] / udiag_[j];
      y[j] = z;
      if (z != 0.0) {
        for (const Entry& e : ucols_[j]) y[e.row] -= e.val * z;
      }
    }
    for (std::size_t j = 0; j < m_; ++j) x[cperm_[j]] = y[j];
  }

  /// x := B^-T x. Input indexed by basis position, output by original row.
  void btran(std::span<double> x) const {
    std::vector<double>& w = work_;
    for (std::size_t j = 0; j < m_; ++j) {
      double acc = x[cperm_[j]];
      for (const Entry& e : ucols_[j]) acc -= e.val * w[e.row];
      w[j] = acc / udiag_[j];
    }
    for (std::size_t t = m_; t-- > 0;) {
      double acc = w[t];
      for (const Entry& e : lcols_[t]) acc -= e.val * x[e.row];
      x[rperm_[t]] = acc;
    }
  }

  [[nodiscard]] std::size_t dim() const noexcept { return m_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return nnz_; }

 private:
  struct Entry {
    std::uint32_t row;
    double val;
  };

  std::size_t m_ = 0;
  std::size_t nnz_ = 0;
  std::vector<std::vector<Entry>> lcols_;  ///< unit-lower, original rows
  std::vector<std::vector<Entry>> ucols_;  ///< strict upper, step indices
  std::vector<double> udiag_;
  std::vector<std::uint32_t> rperm_;  ///< pivot row of each step
  std::vector<std::uint32_t> cperm_;  ///< basis position of each step
  mutable std::vector<double> work_;
};

}  // namespace gs::simplex::basis
