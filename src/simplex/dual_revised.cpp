#include "simplex/dual_revised.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "metrics/health.hpp"
#include "profile/profile.hpp"
#include "simplex/basis/basis_oracle.hpp"
#include "simplex/basis/explicit_inverse.hpp"
#include "simplex/basis/product_form.hpp"
#include "simplex/cost_meter.hpp"
#include "simplex/host_revised.hpp"
#include "simplex/phase_setup.hpp"
#include "support/timer.hpp"
#include "trace/trace.hpp"
#include "vblas/containers.hpp"

namespace gs::simplex {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Mutable dual-solve state. Same shape as the host engine's, with the
/// dual extras: the pivot row `arow` (a_j^T rho over nonbasic j) and the
/// dual-Devex-lite reference weights `w`.
struct DualState {
  DualState(const AugmentedLp& aug_in, const SolverOptions& opt_in,
            CostMeter& meter_in)
      : aug(aug_in),
        m(aug_in.m),
        n_aug(aug_in.n_aug),
        at(aug_in.dense_at()),
        cols(at),
        beta(aug_in.beta_init),
        pi(m),
        d(n_aug),
        alpha(m),
        arow(n_aug),
        w(m, 1.0),
        colbuf(m),
        cb(m),
        basic(aug_in.basic),
        in_basis(n_aug, false),
        opt(opt_in),
        meter(meter_in) {
    if (opt.basis == BasisScheme::kExplicitInverse) {
      oracle = std::make_unique<basis::ExplicitInverseOracle>(
          m, aug.binv_diag, cols, meter, opt);
    } else {
      oracle = std::make_unique<basis::ProductFormOracle>(m, basic, cols,
                                                          meter, opt);
    }
    for (std::uint32_t col : basic) in_basis[col] = true;
  }

  [[nodiscard]] bool may_enter(std::size_t j) const {
    return !in_basis[j] && !aug.is_artificial[j];
  }

  [[nodiscard]] double objective() const {
    double z = 0.0;
    for (std::size_t i = 0; i < m; ++i) z += c[basic[i]] * beta[i];
    return z;
  }

  const AugmentedLp& aug;
  std::size_t m, n_aug;
  vblas::Matrix<double> at;  ///< A^T augmented (n_aug x m)
  basis::DenseColumnSource cols;
  std::unique_ptr<basis::BasisOracle> oracle;
  std::vector<double> beta, pi, d, alpha, arow, w;
  std::vector<double> colbuf, cb;
  std::vector<std::uint32_t> basic;
  std::vector<bool> in_basis;
  std::vector<double> c;  ///< working costs (may carry dual-feasibility shifts)
  const SolverOptions& opt;
  CostMeter& meter;
};

void btran(DualState& s) {
  for (std::size_t i = 0; i < s.m; ++i) s.cb[i] = s.c[s.basic[i]];
  s.oracle->btran(s.cb, s.pi);
}

void price(DualState& s) {
  for (std::size_t j = 0; j < s.n_aug; ++j) {
    if (!s.may_enter(j)) {
      s.d[j] = 0.0;
      continue;
    }
    const auto col = s.at.row(j);
    double acc = 0.0;
    for (std::size_t i = 0; i < s.m; ++i) acc += col[i] * s.pi[i];
    s.d[j] = s.c[j] - acc;
  }
  s.meter.charge("price_reduced", 2.0 * double(s.n_aug) * double(s.m),
                 double((s.n_aug * s.m + 3 * s.n_aug) * sizeof(double)));
}

void ftran(DualState& s, std::size_t q) {
  for (std::size_t k = 0; k < s.m; ++k) s.colbuf[k] = s.at(q, k);
  s.oracle->ftran(s.colbuf, s.alpha);
}

/// Fold the eta file back into fresh factors when the oracle asks.
void maybe_refactor(DualState& s, SolverStats& stats) {
  if (!s.oracle->wants_refactor()) return;
  if (s.oracle->refactorize(s.basic)) {
    if (record::Recorder* rec = s.opt.recorder) {
      rec->record_refactor(stats.iterations);
    }
  }
}

enum class DualExit {
  kPrimalFeasible,   ///< all beta >= -tol: the dual method's optimum
  kPrimalInfeasible, ///< dual ratio test found no pivot: no feasible point
  kIterationLimit,
  kNumericalTrouble,
};

/// The dual loop: walk dual-feasible bases until primal feasibility.
/// Leaving row by dual-Devex-lite (max beta_r^2 / w_r among beta_r < -tol)
/// with a Bland fallback (lowest infeasible row) during degeneracy
/// streaks; entering column by the dual ratio test min d_j / -alpha_rj
/// over alpha_rj < -pivot_tol, ties to the lowest column index.
DualExit dual_loop(DualState& s, std::size_t budget, SolverStats& stats,
                   metrics::HealthMonitor& health) {
  const trace::Track& tr = s.meter.trace();
  const auto clock = [&s] { return s.meter.sim_seconds(); };
  const double tol = s.opt.opt_tol;
  std::size_t since_improve = 0;
  for (std::size_t iter = 0; iter < budget; ++iter) {
    const bool bland =
        s.opt.pricing == PricingRule::kBland ||
        (s.opt.pricing != PricingRule::kBland &&
         since_improve >= s.opt.degeneracy_window);
    trace::ScopedSpan iter_span(tr, "dual_iteration", clock, "iteration",
                                {{"iter", static_cast<double>(iter)}});
    // ---- leaving row ----
    std::size_t r = s.m;
    double best_score = 0.0;
    for (std::size_t i = 0; i < s.m; ++i) {
      if (s.beta[i] >= -tol) continue;
      if (bland) {
        r = i;
        break;
      }
      const double score = s.beta[i] * s.beta[i] / s.w[i];
      if (score > best_score) {
        best_score = score;
        r = i;
      }
    }
    s.meter.charge("dual_pricing", 2.0 * double(s.m),
                   double(3 * s.m * sizeof(double)));
    if (r == s.m) return DualExit::kPrimalFeasible;
    // ---- rho = B^-T e_r, then the pivot row alpha_r = A^T rho ----
    std::fill(s.cb.begin(), s.cb.end(), 0.0);
    s.cb[r] = 1.0;
    s.oracle->btran(s.cb, s.pi);
    for (std::size_t j = 0; j < s.n_aug; ++j) {
      if (!s.may_enter(j)) {
        s.arow[j] = 0.0;
        continue;
      }
      const auto col = s.at.row(j);
      double acc = 0.0;
      for (std::size_t i = 0; i < s.m; ++i) acc += col[i] * s.pi[i];
      s.arow[j] = acc;
    }
    s.meter.charge("dual_pivot_row", 2.0 * double(s.n_aug) * double(s.m),
                   double((s.n_aug * s.m + 2 * s.n_aug) * sizeof(double)));
    // ---- dual ratio test ----
    std::size_t q = s.n_aug;
    double best_ratio = kInf;
    std::uint32_t ties = 0;
    for (std::size_t j = 0; j < s.n_aug; ++j) {
      if (s.arow[j] >= -s.opt.pivot_tol || !s.may_enter(j)) continue;
      const double ratio = s.d[j] / (-s.arow[j]);
      if (ratio < best_ratio) {
        best_ratio = ratio;
        q = j;
        ties = 1;
      } else if (ratio == best_ratio) {
        ++ties;
      }
    }
    s.meter.charge("dual_ratio", double(s.n_aug),
                   double(3 * s.n_aug * sizeof(double)));
    if (q == s.n_aug) return DualExit::kPrimalInfeasible;
    const double theta_d = best_ratio;
    // ---- FTRAN the entering column ----
    ftran(s, q);
    const double alpha_r = s.alpha[r];
    if (std::abs(alpha_r) <= s.opt.pivot_tol) {
      return DualExit::kNumericalTrouble;  // rho/alpha disagree: bail out
    }
    const double beta_r = s.beta[r];
    const double theta_p = beta_r / alpha_r;
    if (record::Recorder* rec = s.opt.recorder) {
      record::DecisionRecord rec_r;
      rec_r.phase = 2;
      rec_r.bland = bland ? 1 : 0;
      rec_r.iteration = stats.iterations;
      rec_r.entering = static_cast<std::uint32_t>(q);
      rec_r.leaving_row = static_cast<std::uint32_t>(r);
      rec_r.leaving_col = s.basic[r];
      rec_r.ratio_ties = ties;
      rec_r.reduced_cost = s.d[q];
      rec_r.pivot_value = alpha_r;
      rec_r.theta = theta_p;
      rec->record_pivot(rec_r);
    }
    // ---- updates: beta, reduced costs, reference weights ----
    for (std::size_t i = 0; i < s.m; ++i) {
      s.beta[i] -= theta_p * s.alpha[i];
    }
    s.beta[r] = theta_p;
    const std::uint32_t leaving = s.basic[r];
    for (std::size_t j = 0; j < s.n_aug; ++j) {
      if (s.may_enter(j)) s.d[j] += theta_d * s.arow[j];
    }
    s.d[q] = 0.0;
    s.d[leaving] = theta_d;
    const double arq2 = s.arow[q] * s.arow[q];
    const double wr = s.w[r];
    for (std::size_t i = 0; i < s.m; ++i) {
      if (i == r || s.alpha[i] == 0.0) continue;
      s.w[i] = std::max(s.w[i], s.alpha[i] * s.alpha[i] / arq2 * wr);
    }
    s.w[r] = std::max(wr / arq2, 1.0);
    s.meter.charge("dual_update", 4.0 * double(s.m) + 2.0 * double(s.n_aug),
                   double((3 * s.m + 2 * s.n_aug) * sizeof(double)));
    s.oracle->update(r, s.alpha);
    s.basic[r] = static_cast<std::uint32_t>(q);
    s.in_basis[leaving] = false;
    s.in_basis[q] = true;
    ++stats.iterations;
    maybe_refactor(s, stats);
    health.record_pivot(alpha_r, theta_p, bland, iter);
    // Progress = dual-objective gain theta_d * |beta_r|; a degenerate
    // streak (theta_d == 0) trips the Bland fallback above.
    if (theta_d * -beta_r > 1e-12) {
      since_improve = 0;
    } else {
      ++since_improve;
    }
    if (tr.enabled()) {
      tr.counter("primal_infeasibility", s.meter.sim_seconds(), [&] {
        double inf = 0.0;
        for (const double v : s.beta) inf += v < 0.0 ? -v : 0.0;
        return inf;
      }());
    }
  }
  return DualExit::kIterationLimit;
}

enum class PrimalExit { kOptimal, kUnbounded, kIterationLimit };

/// Primal cleanup after the dual loop: once primal feasible, standard
/// revised iterations (Dantzig with the hybrid Bland fallback) finish the
/// solve under the true costs. This is also where a cold start on an
/// already-primal-feasible crash basis does all its work.
PrimalExit primal_loop(DualState& s, std::size_t budget, SolverStats& stats,
                       metrics::HealthMonitor& health, std::uint8_t phase) {
  const trace::Track& tr = s.meter.trace();
  const auto clock = [&s] { return s.meter.sim_seconds(); };
  double z = s.objective();
  std::size_t since_improve = 0;
  for (std::size_t iter = 0; iter < budget; ++iter) {
    const bool bland =
        s.opt.pricing == PricingRule::kBland ||
        (s.opt.pricing != PricingRule::kBland &&
         since_improve >= s.opt.degeneracy_window);
    trace::ScopedSpan iter_span(tr, "iteration", clock, "iteration",
                                {{"iter", static_cast<double>(iter)}});
    btran(s);
    price(s);
    std::size_t q = s.n_aug;
    if (bland) {
      for (std::size_t j = 0; j < s.n_aug; ++j) {
        if (s.d[j] < -s.opt.opt_tol) {
          q = j;
          break;
        }
      }
    } else {
      double best_d = -s.opt.opt_tol;
      for (std::size_t j = 0; j < s.n_aug; ++j) {
        if (s.d[j] < best_d) {
          best_d = s.d[j];
          q = j;
        }
      }
    }
    if (q == s.n_aug) return PrimalExit::kOptimal;
    const double d_q = s.d[q];
    ftran(s, q);
    std::size_t p = s.m;
    double theta = kInf;
    for (std::size_t i = 0; i < s.m; ++i) {
      if (s.alpha[i] > s.opt.pivot_tol) {
        const double ratio = s.beta[i] / s.alpha[i];
        if (ratio < theta) {
          theta = ratio;
          p = i;
        }
      }
    }
    s.meter.charge("ratio", double(s.m), double(3 * s.m * sizeof(double)));
    if (p == s.m) return PrimalExit::kUnbounded;
    const double alpha_p = s.alpha[p];
    if (record::Recorder* rec = s.opt.recorder) {
      std::uint32_t ties = 0;
      for (std::size_t i = 0; i < s.m; ++i) {
        if (s.alpha[i] > s.opt.pivot_tol && s.beta[i] / s.alpha[i] == theta) {
          ++ties;
        }
      }
      record::DecisionRecord rec_r;
      rec_r.phase = phase;
      rec_r.bland = bland ? 1 : 0;
      rec_r.iteration = stats.iterations;
      rec_r.entering = static_cast<std::uint32_t>(q);
      rec_r.leaving_row = static_cast<std::uint32_t>(p);
      rec_r.leaving_col = s.basic[p];
      rec_r.ratio_ties = ties;
      rec_r.reduced_cost = d_q;
      rec_r.pivot_value = alpha_p;
      rec_r.theta = theta;
      rec->record_pivot(rec_r);
    }
    for (std::size_t i = 0; i < s.m; ++i) {
      s.beta[i] = std::max(0.0, s.beta[i] - theta * s.alpha[i]);
    }
    s.beta[p] = theta;
    s.oracle->update(p, s.alpha);
    s.meter.charge("update_beta", 2.0 * double(s.m),
                   double(3 * s.m * sizeof(double)));
    const std::uint32_t leaving = s.basic[p];
    s.basic[p] = static_cast<std::uint32_t>(q);
    s.in_basis[leaving] = false;
    s.in_basis[q] = true;
    ++stats.iterations;
    maybe_refactor(s, stats);
    health.record_pivot(alpha_p, theta, bland, iter);
    const double new_z = z + theta * d_q;
    if (new_z < z - 1e-12 * (1.0 + std::abs(z))) {
      since_improve = 0;
    } else {
      ++since_improve;
    }
    z = new_z;
    if (tr.enabled()) tr.counter("objective", s.meter.sim_seconds(), z);
  }
  return PrimalExit::kIterationLimit;
}

/// Install a caller-provided basis with NO primal-feasibility gate — the
/// whole point of the dual method is to accept primal-infeasible (but
/// factorizable) bases and repair them. Returns false on shape/column
/// problems or a singular basis; the crash basis then stays installed.
[[nodiscard]] bool try_warm_start(DualState& s,
                                  const std::vector<std::uint32_t>& basis) {
  if (basis.size() != s.m) return false;
  std::vector<bool> used(s.n_aug, false);
  for (std::uint32_t col : basis) {
    if (col >= s.n_aug || s.aug.is_artificial[col] || used[col]) return false;
    used[col] = true;
  }
  std::vector<std::uint32_t> b(basis.begin(), basis.end());
  if (!s.oracle->refactorize(b)) return false;
  s.basic = std::move(b);
  std::fill(s.in_basis.begin(), s.in_basis.end(), false);
  for (const std::uint32_t col : s.basic) s.in_basis[col] = true;
  s.oracle->ftran_raw(s.aug.b, s.beta);
  return true;
}

/// Shift working costs up so every reduced cost is nonnegative (the
/// "big-M-free" dual start): d_j < -tol becomes d_j = 0 by raising c_j.
/// The true costs are restored before the primal cleanup loop.
bool shift_to_dual_feasible(DualState& s) {
  bool shifted = false;
  for (std::size_t j = 0; j < s.n_aug; ++j) {
    if (s.may_enter(j) && s.d[j] < -s.opt.opt_tol) {
      s.c[j] -= s.d[j];
      s.d[j] = 0.0;
      shifted = true;
    }
  }
  return shifted;
}

}  // namespace

SolveResult DualRevisedSimplex::solve(const lp::LpProblem& problem) const {
  const lp::StandardFormLp sf = lp::to_standard_form(problem);
  return solve_standard(sf);
}

SolveResult DualRevisedSimplex::solve_standard(
    const lp::StandardFormLp& sf) const {
  // The dual method cannot price a crash basis that needs artificial
  // columns ('>=' / '=' rows) and has no warm basis to start from; those
  // cold solves delegate to the primal host engine (same options, same
  // oracle choice) so every instance the primal engines accept still
  // solves under Engine::kDualRevised.
  {
    const AugmentedLp probe = augment(sf);
    if (probe.num_artificial > 0 && options_.warm_basis == nullptr) {
      return HostRevisedSimplex(options_, model_).solve_standard(sf);
    }
  }
  WallTimer wall;
  CostMeter meter(model_,
                  profile::chain(options_.profiler, options_.trace_sink,
                                 trace::kHostPid, model_),
                  options_.metrics);
  metrics::SimplexOpMetrics op_metrics;
  op_metrics.attach(options_.metrics);
  metrics::HealthMonitor health(options_.metrics, options_.health);
  const trace::Track& tr = meter.trace();
  const auto clock = [&meter] { return meter.sim_seconds(); };
  if (tr.enabled()) tr.name_thread("dual-revised");
  trace::ScopedSpan solve_span(tr, "solve", clock, "solve");
  const AugmentedLp aug = augment(sf);
  DualState state(aug, options_, meter);
  record::Recorder* rec = options_.recorder;
  if (rec != nullptr) {
    rec->begin_solve("dual-revised", 64, aug.m, aug.n_aug,
                     decision_digest(aug));
  }

  SolveResult result;
  auto finish = [&](SolveStatus status) -> SolveResult {
    result.status = status;
    result.basis = state.basic;
    result.stats.wall_seconds = wall.seconds();
    result.stats.device_stats = meter.stats();
    result.stats.sim_seconds = meter.sim_seconds();
    if (rec != nullptr) {
      rec->end_solve(to_string(status), status == SolveStatus::kOptimal,
                     options_.metrics ? options_.metrics->warnings_total() : 0,
                     state.basic);
    }
    return result;
  };

  if (options_.warm_basis != nullptr) {
    trace::ScopedSpan warm_span(tr, "warm_init", clock, "phase");
    result.stats.warm_started = try_warm_start(state, *options_.warm_basis);
    if (!result.stats.warm_started && aug.num_artificial > 0) {
      // Rejected warm basis on an artificial-needing instance: the cold
      // path is the primal engine's.
      return HostRevisedSimplex(options_, model_).solve_standard(sf);
    }
  }

  std::size_t budget = options_.max_iterations;
  state.c = aug.c_phase2;
  btran(state);
  price(state);
  const bool shifted = shift_to_dual_feasible(state);

  DualExit dexit;
  {
    trace::ScopedSpan phase_span(tr, "dual", clock, "phase");
    if (rec != nullptr) rec->begin_phase(2);
    dexit = dual_loop(state, budget, result.stats, health);
  }
  if (dexit == DualExit::kIterationLimit) {
    return finish(SolveStatus::kIterationLimit);
  }
  if (dexit == DualExit::kNumericalTrouble) {
    return finish(SolveStatus::kNumericalTrouble);
  }
  if (dexit == DualExit::kPrimalInfeasible) {
    return finish(SolveStatus::kInfeasible);
  }
  budget -= std::min(budget, result.stats.iterations);
  for (double& v : state.beta) {
    if (v < 0.0) v = 0.0;  // the dual loop left only sub-tolerance dust
  }

  PrimalExit pexit;
  {
    trace::ScopedSpan phase_span(tr, "primal_cleanup", clock, "phase");
    // Restore true costs (only needed when the dual start shifted them;
    // the pricing pass inside the loop recomputes every reduced cost).
    if (shifted) state.c = aug.c_phase2;
    pexit = primal_loop(state, budget, result.stats, health, 2);
  }
  if (pexit == PrimalExit::kUnbounded) return finish(SolveStatus::kUnbounded);
  if (pexit == PrimalExit::kIterationLimit) {
    return finish(SolveStatus::kIterationLimit);
  }

  std::vector<double> x_std(aug.n, 0.0);
  for (std::size_t i = 0; i < aug.m; ++i) {
    if (state.basic[i] < aug.n) x_std[state.basic[i]] = state.beta[i];
  }
  result.x = sf.recover(x_std);
  double z = 0.0;
  for (std::size_t j = 0; j < aug.n; ++j) z += sf.c[j] * x_std[j];
  result.objective = sf.original_objective(z);
  // state.pi holds the multipliers from the final pricing pass.
  result.y = sf.recover_duals(state.pi);
  return finish(SolveStatus::kOptimal);
}

}  // namespace gs::simplex
