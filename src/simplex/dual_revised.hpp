// Dual revised simplex engine (host): the warm-start workhorse.
//
// The primal engines must re-earn feasibility (phase 1) whenever a
// cached basis stops being primal feasible. The dual method inverts the
// deal: it walks DUAL-feasible bases (all reduced costs >= 0) toward
// primal feasibility, so a re-solve can start from any factorizable
// cached basis — in particular the optimum of a perturbed neighbour,
// which stays dual feasible under rhs changes — and repair it in a
// handful of pivots with no phase 1 at all. This is the engine
// SolveService dispatches warm-startable re-solves to.
//
// Pricing is dual-Devex-lite (reference weights beta_r^2 / w_r) with a
// Bland fallback (lowest infeasible row) after a degeneracy streak, and
// the ratio test breaks ties on the lowest column index, so termination
// is guaranteed on cycling instances. Cold starts on problems whose
// crash basis needs artificial columns ('>=' or '=' rows) delegate to
// HostRevisedSimplex — the dual method has no native story for a basis
// it cannot price — and pure-'<=' instances run natively.
//
// The basis lives behind the same BasisOracle seam as the host engine:
// SolverOptions::basis picks the explicit inverse or the product form.
#pragma once

#include "lp/problem.hpp"
#include "lp/standard_form.hpp"
#include "simplex/types.hpp"
#include "vgpu/machine_model.hpp"

namespace gs::simplex {

class DualRevisedSimplex {
 public:
  explicit DualRevisedSimplex(const SolverOptions& options = {},
                              const vgpu::MachineModel& model =
                                  vgpu::cpu2009_model())
      : options_(options), model_(model) {}

  [[nodiscard]] SolveResult solve(const lp::LpProblem& problem) const;
  [[nodiscard]] SolveResult solve_standard(const lp::StandardFormLp& sf) const;

 private:
  SolverOptions options_;
  vgpu::MachineModel model_;
};

}  // namespace gs::simplex
