// Batched revised simplex: K same-shape LPs advance in lock step with every
// per-iteration operation fused into one wide kernel (K*m or K*n threads).
//
// Motivation (the paper's own small-problem weakness): below the crossover
// size a single LP cannot occupy the device — launch latency and idle SMs
// dominate. Batching K independent instances multiplies the thread count
// per launch and amortizes both the launch overhead and the per-iteration
// PCIe scalar traffic across the batch, which is how later GPU LP systems
// made small problems profitable. Ext. E quantifies the effect.
//
// Scope (deliberately the paper's synthetic setting): every problem must be
// "slack-startable" — its standard form gives every row a crash slack (pure
// '<=' rows, b >= 0), so no phase 1 is needed — and all problems must share
// the same standard-form dimensions. Pricing is Dantzig; the basis inverse
// is explicit. Problems that finish early go inactive; their lanes idle
// (and are still paid for) until the whole batch terminates.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "lp/problem.hpp"
#include "lp/standard_form.hpp"
#include "profile/profile.hpp"
#include "simplex/phase_setup.hpp"
#include "simplex/types.hpp"
#include "support/timer.hpp"
#include "trace/trace.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"

namespace gs::simplex {

template <typename Real>
class BatchRevisedSimplex {
 public:
  explicit BatchRevisedSimplex(vgpu::Device& device, SolverOptions options = {})
      : dev_(device), opt_(options) {}

  /// Solve all problems; result k corresponds to problems[k]. Throws
  /// gs::Error if any problem needs phase 1 or the shapes differ.
  [[nodiscard]] std::vector<SolveResult> solve(
      std::span<const lp::LpProblem> problems) {
    GS_CHECK_MSG(!problems.empty(), "empty batch");
    WallTimer wall;
    dev_.reset_stats();
    dev_.set_trace(profile::chain(opt_.profiler, opt_.trace_sink,
                                  trace::kDevicePid, dev_.model()));
    // Checker and capture are mutually exclusive sinks; detach the
    // checker first so re-attaching on a reused device can never trip the
    // exclusivity assert on a stale pointer.
    dev_.set_checker(nullptr);
    dev_.set_capture(opt_.analyzer);
    dev_.set_checker(opt_.checker);
    dev_.set_metrics(opt_.metrics);
    dev_.set_recorder(opt_.recorder);
    // Batch-level metrics: lock-step rounds and the shrinking active set.
    // The per-problem pivot streams are fused into wide kernels here, so
    // the batch engine reports round granularity, not per-problem health.
    metrics::Counter* rounds_metric = nullptr;
    metrics::Gauge* active_metric = nullptr;
    if (opt_.metrics != nullptr) {
      rounds_metric = &opt_.metrics->counter("batch.rounds");
      active_metric = &opt_.metrics->gauge("batch.active_problems");
    }
    const trace::Track& tr = dev_.trace();
    const auto clock = [this] { return dev_.sim_seconds(); };
    if (tr.enabled()) tr.name_thread("batch-revised");
    trace::ScopedSpan solve_span(tr, "solve", clock, "solve");

    // ---- Convert and validate the batch. ----
    const std::size_t batch = problems.size();
    std::vector<lp::StandardFormLp> sfs;
    sfs.reserve(batch);
    std::vector<AugmentedLp> augs;
    augs.reserve(batch);
    for (const auto& problem : problems) {
      sfs.push_back(lp::to_standard_form(problem));
      augs.push_back(augment(sfs.back()));
      GS_CHECK_MSG(augs.back().num_artificial == 0,
                   "batch solver requires slack-startable problems "
                   "(pure '<=' rows)");
      GS_CHECK_MSG(augs.back().m == augs.front().m &&
                       augs.back().n_aug == augs.front().n_aug,
                   "batch solver requires identical problem shapes");
    }
    const std::size_t m = augs.front().m;
    const std::size_t n = augs.front().n_aug;

    record::Recorder* rec = opt_.recorder;
    if (rec != nullptr) {
      // One log for the whole batch: pivots carry their lane index, and
      // the header digest folds every instance's digest together.
      std::uint64_t digest = 1469598103934665603ull;
      for (const AugmentedLp& a : augs) {
        digest ^= decision_digest(a);
        digest *= 1099511628211ull;
      }
      rec->begin_solve(std::string("batch-revised<") +
                           (sizeof(Real) == 4 ? "float" : "double") + ">",
                       sizeof(Real) * 8, m, n, digest);
      rec->begin_phase(2);  // slack-startable batches skip phase 1
    }

    // ---- Flatten batch state into device arrays. ----
    // at[k*n*m + j*m + i] = A^T_k(j, i); binv[k*m*m + i*m + j]; beta[k*m+i].
    // The initial inverses are diagonal, so only the batch*m diagonal
    // entries cross PCIe; a device kernel expands them in place.
    std::vector<Real> at_h(batch * n * m), diag_h(batch * m),
        beta_h(batch * m), c_h(batch * n), cb_h(batch * m, Real{0}),
        mask_h(batch * n);
    std::vector<std::uint32_t> basic_h(batch * m);
    for (std::size_t k = 0; k < batch; ++k) {
      const auto at64 = augs[k].dense_at();
      for (std::size_t e = 0; e < n * m; ++e) {
        at_h[k * n * m + e] = static_cast<Real>(at64.flat()[e]);
      }
      for (std::size_t i = 0; i < m; ++i) {
        diag_h[k * m + i] = static_cast<Real>(augs[k].binv_diag[i]);
        beta_h[k * m + i] = static_cast<Real>(augs[k].beta_init[i]);
        basic_h[k * m + i] = augs[k].basic[i];
      }
      for (std::size_t j = 0; j < n; ++j) {
        c_h[k * n + j] = static_cast<Real>(augs[k].c_phase2[j]);
        mask_h[k * n + j] = Real{1};
      }
      for (std::size_t i = 0; i < m; ++i) {
        mask_h[k * n + augs[k].basic[i]] = Real{0};
      }
    }
    vgpu::DeviceBuffer<Real> at(dev_, at_h), diag(dev_, diag_h),
        binv(dev_, batch * m * m), beta(dev_, beta_h), c(dev_, c_h),
        cb(dev_, cb_h), mask(dev_, mask_h);
    vgpu::DeviceBuffer<Real> pi(dev_, batch * m), d(dev_, batch * n),
        alpha(dev_, batch * m), prow(dev_, batch * m);
    // Per-problem selection outputs (scalar lanes). The q/p/theta triple
    // the host needs each round is additionally packed into one Real
    // buffer so the whole batch's decisions come back in a single d2h
    // (indices encoded as Real, -1 = none; exact up to 2^24 in float).
    vgpu::DeviceBuffer<Real> sel_d(dev_, batch), sel_theta(dev_, batch),
        sel_alpha_p(dev_, batch), sel_pack(dev_, 3 * batch);
    vgpu::DeviceBuffer<std::uint32_t> sel_q(dev_, batch), sel_p(dev_, batch);
    // Device-resident basis map: lets the pivot-apply kernel do the mask /
    // cb / basic bookkeeping on device instead of per-pivot H2D pokes.
    vgpu::DeviceBuffer<std::uint32_t> basic_dev(
        dev_, std::span<const std::uint32_t>(basic_h));

    std::vector<char> active(batch, 1);
    std::vector<SolveResult> results(batch);
    std::vector<std::size_t> iters(batch, 0);
    std::size_t n_active = batch;

    const Real opt_tol = static_cast<Real>(opt_.opt_tol);
    const Real pivot_tol = static_cast<Real>(opt_.pivot_tol);
    constexpr Real kInf = std::numeric_limits<Real>::infinity();
    constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);

    auto at_s = at.device_span();
    auto binv_s = binv.device_span();
    auto beta_s = beta.device_span();
    auto c_s = c.device_span();
    auto cb_s = cb.device_span();
    auto mask_s = mask.device_span();
    auto pi_s = pi.device_span();
    auto d_s = d.device_span();
    auto alpha_s = alpha.device_span();
    auto prow_s = prow.device_span();
    auto seld_s = sel_d.device_span();
    auto selth_s = sel_theta.device_span();
    auto selap_s = sel_alpha_p.device_span();
    auto selq_s = sel_q.device_span();
    auto selp_s = sel_p.device_span();
    auto pack_s = sel_pack.device_span();
    auto basic_s = basic_dev.device_span();
    auto diag_s = diag.device_span();

    // Expand the uploaded diagonals into the dense inverses on device.
    dev_.launch_blocks(
        "batch_binv_init", batch * m, vgpu::Device::kBlockSize,
        {0.0, double(batch * (m * m + 2 * m) * sizeof(Real)), sizeof(Real)},
        [&](std::size_t, std::size_t lo, std::size_t hi) {
          for (std::size_t g = lo; g < hi; ++g) {
            const std::size_t k = g / m, i = g % m;
            binv_s.write_range(k * m * m + i * m, k * m * m + (i + 1) * m);
            Real* row = binv_s.data() + k * m * m + i * m;
            for (std::size_t j = 0; j < m; ++j) row[j] = Real{0};
            row[i] = diag_s[g];
          }
        });

    // Host mirror of the active mask, uploaded once per status change; the
    // kernels read it through this device buffer.
    vgpu::DeviceBuffer<Real> active_dev(dev_, batch);
    auto upload_active = [&] {
      std::vector<Real> a(batch);
      for (std::size_t k = 0; k < batch; ++k) a[k] = active[k] ? Real{1} : Real{0};
      active_dev.upload(a);
    };
    upload_active();
    auto act_s = active_dev.device_span();

    for (std::size_t iter = 0; iter < opt_.max_iterations && n_active > 0;
         ++iter) {
      trace::ScopedSpan iter_span(
          tr, "iteration", clock, "iteration",
          {{"iter", static_cast<double>(iter)},
           {"active", static_cast<double>(n_active)}});
      // -- BTRAN: pi_k = (B_k^-1)^T cB_k, fused over K*m lanes. --
      dev_.launch_blocks(
          "batch_btran", batch * m, vgpu::Device::kBlockSize,
          {2.0 * double(batch) * double(m) * double(m),
           double(batch * (m * m + 2 * m) * sizeof(Real)), sizeof(Real)},
          [&](std::size_t, std::size_t lo, std::size_t hi) {
            for (std::size_t g = lo; g < hi; ++g) {
              const std::size_t k = g / m, j = g % m;
              if (act_s[k] == Real{0}) continue;
              Real acc{0};
              for (std::size_t i = 0; i < m; ++i) {
                acc += cb_s[k * m + i] * binv_s[k * m * m + i * m + j];
              }
              pi_s[g] = acc;
            }
          });
      // -- Pricing: d over K*n lanes. --
      dev_.launch_blocks(
          "batch_price", batch * n, vgpu::Device::kBlockSize,
          {2.0 * double(batch) * double(n) * double(m),
           double(batch * (n * m + 3 * n) * sizeof(Real)), sizeof(Real)},
          [&](std::size_t, std::size_t lo, std::size_t hi) {
            for (std::size_t g = lo; g < hi; ++g) {
              const std::size_t k = g / n, j = g % n;
              if (act_s[k] == Real{0} || mask_s[g] == Real{0}) {
                d_s[g] = Real{0};
                continue;
              }
              at_s.read_range(k * n * m + j * m, k * n * m + (j + 1) * m);
              const Real* col = at_s.data() + k * n * m + j * m;
              Real acc{0};
              for (std::size_t i = 0; i < m; ++i) acc += col[i] * pi_s[k * m + i];
              d_s[g] = c_s[g] - acc;
            }
          });
      // -- Entering selection: one lane per problem (segmented argmin). --
      dev_.launch_blocks(
          "batch_select_entering", batch, vgpu::Device::kBlockSize,
          {double(batch) * double(n), double(batch * n * sizeof(Real)),
           sizeof(Real)},
          [&](std::size_t, std::size_t lo, std::size_t hi) {
            for (std::size_t k = lo; k < hi; ++k) {
              if (act_s[k] == Real{0}) continue;
              std::uint32_t best = kNone;
              Real best_d = -opt_tol;
              for (std::size_t j = 0; j < n; ++j) {
                if (d_s[k * n + j] < best_d) {
                  best_d = d_s[k * n + j];
                  best = static_cast<std::uint32_t>(j);
                }
              }
              selq_s[k] = best;
              seld_s[k] = best_d;
            }
          });
      // -- FTRAN + ratio test + leaving selection, fused per problem. --
      dev_.launch_blocks(
          "batch_ftran", batch * m, vgpu::Device::kBlockSize,
          {2.0 * double(batch) * double(m) * double(m),
           double(batch * (m * m + 2 * m) * sizeof(Real)), sizeof(Real)},
          [&](std::size_t, std::size_t lo, std::size_t hi) {
            for (std::size_t g = lo; g < hi; ++g) {
              const std::size_t k = g / m, i = g % m;
              if (act_s[k] == Real{0} || selq_s[k] == kNone) continue;
              const std::size_t sq = selq_s[k];
              at_s.read_range(k * n * m + sq * m, k * n * m + (sq + 1) * m);
              binv_s.read_range(k * m * m + i * m, k * m * m + (i + 1) * m);
              const Real* aq = at_s.data() + k * n * m + sq * m;
              const Real* row = binv_s.data() + k * m * m + i * m;
              Real acc{0};
              for (std::size_t t = 0; t < m; ++t) acc += row[t] * aq[t];
              alpha_s[g] = acc;
            }
          });
      dev_.launch_blocks(
          "batch_ratio_select", batch, vgpu::Device::kBlockSize,
          {2.0 * double(batch) * double(m),
           double(batch * 2 * m * sizeof(Real)), sizeof(Real)},
          [&](std::size_t, std::size_t lo, std::size_t hi) {
            for (std::size_t k = lo; k < hi; ++k) {
              if (act_s[k] == Real{0}) continue;
              const std::uint32_t sq = selq_s[k];
              pack_s[3 * k] = sq == kNone ? Real{-1} : static_cast<Real>(sq);
              if (sq == kNone) continue;
              std::uint32_t p = kNone;
              Real theta = kInf;
              for (std::size_t i = 0; i < m; ++i) {
                const Real a = alpha_s[k * m + i];
                if (a > pivot_tol) {
                  const Real r = beta_s[k * m + i] / a;
                  if (r < theta) {
                    theta = r;
                    p = static_cast<std::uint32_t>(i);
                  }
                }
              }
              selp_s[k] = p;
              selth_s[k] = theta;
              selap_s[k] = p == kNone ? Real{0} : alpha_s[k * m + p];
              pack_s[3 * k + 1] = p == kNone ? Real{-1} : static_cast<Real>(p);
              pack_s[3 * k + 2] = theta;
            }
          });
      // -- ONE readback for the whole batch: the packed q/p/theta triples
      // (was three separate copies; latency is the term that matters). --
      std::vector<Real> pack_h(3 * batch);
      sel_pack.download(std::span<Real>(pack_h));
      std::vector<std::uint32_t> q_h(batch, kNone), p_h(batch, kNone);
      std::vector<Real> theta_h(batch, kInf);
      for (std::size_t k = 0; k < batch; ++k) {
        if (!active[k]) continue;  // stale pack lanes: never decoded
        if (pack_h[3 * k] >= Real{0}) {
          q_h[k] = static_cast<std::uint32_t>(pack_h[3 * k]);
          if (pack_h[3 * k + 1] >= Real{0}) {
            p_h[k] = static_cast<std::uint32_t>(pack_h[3 * k + 1]);
          }
          theta_h[k] = pack_h[3 * k + 2];
        }
      }

      // Record this round's pivots before the update kernels overwrite
      // beta/binv. Reads go through host_view() — outside the machine
      // model, so recording charges no PCIe time and perturbs nothing.
      if (rec != nullptr) {
        const std::span<const Real> seld_h = sel_d.host_view();
        const std::span<const Real> selap_h = sel_alpha_p.host_view();
        const std::span<const Real> alpha_h = alpha.host_view();
        const std::span<const Real> beta_hv = beta.host_view();
        for (std::size_t k = 0; k < batch; ++k) {
          if (!active[k] || q_h[k] == kNone || p_h[k] == kNone) continue;
          const Real theta = theta_h[k];
          std::uint32_t ties = 0;
          for (std::size_t i = 0; i < m; ++i) {
            const Real a = alpha_h[k * m + i];
            if (a > pivot_tol && beta_hv[k * m + i] / a == theta) ++ties;
          }
          record::DecisionRecord r;
          r.phase = 2;
          r.lane = static_cast<std::uint32_t>(k);
          r.iteration = iters[k];  // per-lane ordinal, pre-increment
          r.entering = q_h[k];
          r.leaving_row = p_h[k];
          r.leaving_col = basic_h[k * m + p_h[k]];
          r.ratio_ties = ties;
          r.reduced_cost = static_cast<double>(seld_h[k]);
          r.pivot_value = static_cast<double>(selap_h[k]);
          r.theta = static_cast<double>(theta);
          rec->record_pivot(r);
        }
      }

      // -- Update kernels for the problems that pivot this round. --
      // Fused beta step + pivot-row snapshot (one batch*m-wide launch; the
      // row copy reads the pre-update inverse, which this kernel does not
      // touch).
      dev_.launch_blocks(
          "batch_pivot_stage", batch * m, vgpu::Device::kBlockSize,
          {2.0 * double(batch) * double(m),
           double(batch * 5 * m * sizeof(Real)), sizeof(Real)},
          [&](std::size_t, std::size_t lo, std::size_t hi) {
            for (std::size_t g = lo; g < hi; ++g) {
              const std::size_t k = g / m, i = g % m;
              if (act_s[k] == Real{0} || selq_s[k] == kNone ||
                  selp_s[k] == kNone) {
                continue;
              }
              prow_s[g] = binv_s[k * m * m + selp_s[k] * m + i];
              const Real theta = selth_s[k];
              Real v = (i == selp_s[k]) ? theta
                                        : beta_s[g] - theta * alpha_s[g];
              beta_s[g] = v < Real{0} ? Real{0} : v;
            }
          });
      // Rank-1 inverse update + on-device basis bookkeeping: the pivot
      // lane (i == p) swaps basic/mask/cb in device memory, replacing the
      // reference path's three per-pivot upload_value round trips.
      dev_.launch_blocks(
          "batch_pivot_apply", batch * m, vgpu::Device::kBlockSize,
          {2.0 * double(batch) * double(m) * double(m),
           double(batch * (2 * m * m + 2 * m + 4) * sizeof(Real)),
           sizeof(Real)},
          [&](std::size_t, std::size_t lo, std::size_t hi) {
            for (std::size_t g = lo; g < hi; ++g) {
              const std::size_t k = g / m, i = g % m;
              if (act_s[k] == Real{0} || selq_s[k] == kNone ||
                  selp_s[k] == kNone) {
                continue;
              }
              const std::size_t p = selp_s[k];
              const Real ap = selap_s[k];
              Real* row = binv_s.data() + k * m * m + i * m;
              const Real* saved = prow_s.data() + k * m;
              if (i == p) {
                prow_s.read_range(k * m, (k + 1) * m);
                binv_s.write_range(k * m * m + i * m, k * m * m + (i + 1) * m);
                const Real inv = Real{1} / ap;
                for (std::size_t j = 0; j < m; ++j) row[j] = saved[j] * inv;
                // One writer per problem: lane p owns the basis swap.
                const std::size_t sq = selq_s[k];
                const std::uint32_t leaving = basic_s[k * m + p];
                basic_s[k * m + p] = static_cast<std::uint32_t>(sq);
                mask_s[k * n + sq] = Real{0};
                mask_s[k * n + leaving] = Real{1};
                cb_s[k * m + p] = c_s[k * n + sq];
              } else {
                const Real f = alpha_s[k * m + i] / ap;
                if (f == Real{0}) continue;
                prow_s.read_range(k * m, (k + 1) * m);
                binv_s.read_range(k * m * m + i * m, k * m * m + (i + 1) * m);
                binv_s.write_range(k * m * m + i * m, k * m * m + (i + 1) * m);
                for (std::size_t j = 0; j < m; ++j) row[j] -= f * saved[j];
              }
            }
          });

      // -- Host bookkeeping: statuses and the host basis mirror (kept in
      // lock step with basic_dev at zero transfer cost). --
      bool mask_dirty = false;
      for (std::size_t k = 0; k < batch; ++k) {
        if (!active[k]) continue;
        if (q_h[k] == kNone) {
          finish_problem(results[k], k, sfs[k], augs[k], basic_h, beta, m,
                         SolveStatus::kOptimal, iters[k]);
          active[k] = 0;
          --n_active;
          mask_dirty = true;
          continue;
        }
        if (p_h[k] == kNone) {
          results[k].status = SolveStatus::kUnbounded;
          results[k].stats.iterations = iters[k];
          active[k] = 0;
          --n_active;
          mask_dirty = true;
          continue;
        }
        (void)theta_h;
        ++iters[k];
        basic_h[k * m + p_h[k]] = q_h[k];
      }
      if (mask_dirty) upload_active();
      if (tr.enabled()) {
        tr.counter("active_problems", dev_.sim_seconds(),
                   static_cast<double>(n_active));
      }
      if (rounds_metric != nullptr) {
        rounds_metric->inc();
        active_metric->set(static_cast<double>(n_active));
      }
    }

    // Problems still active hit the iteration limit.
    for (std::size_t k = 0; k < batch; ++k) {
      if (active[k]) {
        results[k].status = SolveStatus::kIterationLimit;
        results[k].stats.iterations = iters[k];
      }
      results[k].stats.wall_seconds = wall.seconds();
      results[k].stats.sim_seconds = dev_.sim_seconds();
      results[k].stats.device_stats = dev_.stats();
    }
    if (rec != nullptr) {
      bool all_optimal = true;
      for (const SolveResult& r : results) all_optimal &= r.optimal();
      rec->end_solve(all_optimal ? "optimal" : "mixed", all_optimal,
                     opt_.metrics ? opt_.metrics->warnings_total() : 0,
                     basic_h);
    }
    return results;
  }

 private:
  /// Extract one finished problem's solution from the flattened state.
  void finish_problem(SolveResult& result, std::size_t k,
                      const lp::StandardFormLp& sf, const AugmentedLp& aug,
                      const std::vector<std::uint32_t>& basic_h,
                      const vgpu::DeviceBuffer<Real>& beta, std::size_t m,
                      SolveStatus status, std::size_t iterations) {
    result.status = status;
    result.stats.iterations = iterations;
    result.basis.assign(basic_h.begin() + std::ptrdiff_t(k * m),
                        basic_h.begin() + std::ptrdiff_t((k + 1) * m));
    std::vector<Real> beta_k(m);
    beta.download(std::span<Real>(beta_k), k * m);
    std::vector<double> x_std(aug.n, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      if (basic_h[k * m + i] < aug.n) {
        x_std[basic_h[k * m + i]] = static_cast<double>(beta_k[i]);
      }
    }
    result.x = sf.recover(x_std);
    double z = 0.0;
    for (std::size_t j = 0; j < aug.n; ++j) z += sf.c[j] * x_std[j];
    result.objective = sf.original_objective(z);
  }

  vgpu::Device& dev_;
  SolverOptions opt_;
};

}  // namespace gs::simplex
