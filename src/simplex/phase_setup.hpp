// Shared pre-solve scaffolding: artificial-variable augmentation and the
// slack crash basis. Every engine consumes this so phase handling is
// identical across the device solver and the CPU baselines.
#pragma once

#include <cstdint>
#include <vector>

#include "lp/standard_form.hpp"
#include "sparse/csr.hpp"
#include "vblas/containers.hpp"

namespace gs::simplex {

/// Standard form + artificial columns + the crash basis.
///
/// Columns [0, n) are the standard-form columns; columns [n, n_aug) are
/// artificial unit columns, appended only for rows whose slack cannot seed
/// the initial basis ('>=' and '=' rows). Artificial columns never re-enter
/// the basis once they leave (they are permanently masked from pricing).
struct AugmentedLp {
  std::size_t m = 0;      ///< rows
  std::size_t n = 0;      ///< standard-form columns
  std::size_t n_aug = 0;  ///< n + num_artificial

  std::vector<double> c_phase1;  ///< 1 on artificials, 0 elsewhere
  std::vector<double> c_phase2;  ///< standard-form c, 0 on artificials
  std::vector<double> b;

  /// Initial basis: basic[i] is the basic column of row i (a slack or an
  /// artificial). The initial basis matrix is diagonal; its inverse is
  /// diag(binv_diag), and beta = B^-1 b is beta_init.
  std::vector<std::uint32_t> basic;
  std::vector<double> binv_diag;
  std::vector<double> beta_init;

  std::vector<bool> is_artificial;       ///< per column
  std::size_t num_artificial = 0;
  /// Row covered by each artificial: column n + k is the unit column of
  /// row artificial_rows[k].
  std::vector<std::uint32_t> artificial_rows;

  const lp::StandardFormLp* source = nullptr;

  /// Augmented A^T, dense (n_aug x m): row j is column j of A. Transposed
  /// storage gives contiguous column reads, the layout the paper uses.
  [[nodiscard]] vblas::Matrix<double> dense_at() const;

  /// Augmented A^T in CSR (for the sparse engine).
  [[nodiscard]] sparse::CsrMatrix<double> csr_at() const;

  /// Augmented A, dense (m x n_aug): the tableau baseline's layout.
  [[nodiscard]] vblas::Matrix<double> dense_a() const;
};

/// Build the augmentation + crash basis. Requires a valid standard form
/// (b >= 0, each slack column with a single positive entry).
[[nodiscard]] AugmentedLp augment(const lp::StandardFormLp& sf);

/// Content digest of the decision-relevant problem data (shape, constraint
/// coefficients, rhs, phase-2 costs). Stamped into recording headers so
/// replay/diff can refuse to compare logs of different instances. FNV-1a
/// over the exact double bit patterns: engine- and precision-independent.
[[nodiscard]] std::uint64_t decision_digest(const AugmentedLp& lp);

}  // namespace gs::simplex
