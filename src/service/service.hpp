// SolveService: the multi-tenant front end that turns four engines into
// one system (SERVICE.md).
//
//   submit() --> [bounded admission queue] --> drain():
//     scheduler   groups same-shape slack-startable requests into
//                 batch-engine rounds (up to DispatchPolicy::batch_target
//                 lanes; partial rounds are flushed, never starved),
//     dispatcher  routes the rest by the measured GPU/CPU crossover
//                 (m < crossover_m => host engine, else device engine),
//     warm cache  serves exact repeats (same decision digest) from the
//                 memoized optimal result and seeds perturbed repeats
//                 (same shape, different digest) with the prior optimal
//                 basis via SolverOptions::warm_basis, dispatched to the
//                 dual revised engine (a cached optimal basis stays dual
//                 feasible under rhs perturbation, so the re-solve skips
//                 phase 1 entirely).
//
// The service is drain-driven: requests are admitted at any time from any
// thread; drain() processes everything admitted so far and blocks until
// every result is available. DispatchPolicy::workers parallelizes the
// wall-clock execution of a drain's jobs, but every modelled quantity —
// pivot sequences, solutions, per-request latencies, metrics counters —
// depends only on the admitted request sequence, so results are
// bit-identical for any worker count (tests/test_service.cpp).
//
// Modelled latency: batch rounds and device singles are serialized on one
// modelled device timeline (one GPU, jobs in scheduling order); host
// singles run on max(1, workers) modelled host lanes (least-loaded-lane
// assignment in scheduling order). A request's latency_seconds is its
// queue wait plus its job's modelled engine time — the numbers behind the
// service bench's p50/p99 (bench/svc_traffic.cpp).
//
// Observability composes per request: a request may carry its own
// recorder/trace sink/metrics registry in SolveRequest::options, in which
// case it is dispatched as a single solve (never batched, never served
// from the cache) so the attached observers see exactly one engine run —
// one recorder per request (OBSERVABILITY.md). The registry passed to the
// service constructor is the service's own (queue/dispatch/cache/latency
// metrics) and is never attached to engines; null keeps the service
// metrics-free like every other layer.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string_view>
#include <vector>

#include "lp/problem.hpp"
#include "metrics/metrics.hpp"
#include "service/policy.hpp"
#include "simplex/types.hpp"
#include "trace/trace.hpp"
#include "vgpu/machine_model.hpp"

namespace gs::profile {
class Profiler;
}  // namespace gs::profile

namespace gs::telemetry {
class Telemetry;
}  // namespace gs::telemetry

namespace gs::service {

/// Why submit() refused a request.
enum class RejectReason : std::uint8_t {
  kNone,             ///< accepted
  kQueueFull,        ///< pending depth reached DispatchPolicy::queue_capacity
  kDeadlineExpired,  ///< deadline_seconds <= 0 at submission
};

[[nodiscard]] constexpr std::string_view to_string(RejectReason r) noexcept {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue-full";
    case RejectReason::kDeadlineExpired: return "deadline-expired";
  }
  return "?";
}

/// How the dispatcher served a request.
enum class Route : std::uint8_t {
  kHost,       ///< single solve, host engine (m below the crossover)
  kDevice,     ///< single solve, device engine (m at/above the crossover)
  kBatch,      ///< lane of a batch-engine round
  kWarmHit,    ///< exact digest repeat: memoized result, no solve ran
  kWarmBasis,  ///< perturbed repeat: dual engine warm-started from a
               ///< cached optimal basis (dual feasible under rhs drift)
};

[[nodiscard]] constexpr std::string_view to_string(Route r) noexcept {
  switch (r) {
    case Route::kHost: return "host";
    case Route::kDevice: return "device";
    case Route::kBatch: return "batch";
    case Route::kWarmHit: return "warm-hit";
    case Route::kWarmBasis: return "warm-basis";
  }
  return "?";
}

/// One unit of tenant work: a problem, per-request solver options (the
/// observability pointers compose per request), and a latency budget in
/// modelled seconds measured from admission.
struct SolveRequest {
  lp::LpProblem problem;
  simplex::SolverOptions options = {};
  double deadline_seconds = std::numeric_limits<double>::infinity();
};

/// Admission outcome. `id` is valid iff accepted; pass it to result()
/// after the next drain().
struct Ticket {
  bool accepted = false;
  RejectReason reason = RejectReason::kNone;
  std::uint64_t id = 0;
};

/// A completed request: the engine result plus how it was served and the
/// modelled service-level timings.
struct ServiceResult {
  simplex::SolveResult solve;
  Route route = Route::kHost;
  std::size_t batch_lanes = 0;   ///< round width when route == kBatch
  std::uint64_t digest = 0;      ///< decision digest (the warm-cache key)
  double queue_seconds = 0.0;    ///< modelled wait before the job started
  double engine_seconds = 0.0;   ///< modelled time of the request's job
  double latency_seconds = 0.0;  ///< queue_seconds + engine_seconds
  bool deadline_missed = false;  ///< latency exceeded the request deadline
};

class SolveService {
 public:
  explicit SolveService(
      DispatchPolicy policy = {}, metrics::MetricsRegistry* metrics = nullptr,
      vgpu::MachineModel device_model = vgpu::gtx280_model(),
      vgpu::MachineModel host_model = vgpu::cpu2009_model());

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Admission control: bounded queue depth, reject-with-reason. Thread
  /// safe; O(1).
  [[nodiscard]] Ticket submit(SolveRequest request);

  /// Schedule, dispatch and execute every admitted request; blocks until
  /// all their results are available via result(). Call from one thread
  /// at a time.
  void drain();

  /// Completed result for an accepted ticket id. Throws gs::Error if the
  /// request has not been drained yet.
  [[nodiscard]] const ServiceResult& result(std::uint64_t id) const;

  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] const DispatchPolicy& policy() const noexcept {
    return policy_;
  }
  /// Warm-cache occupancy (entries currently held).
  [[nodiscard]] std::size_t warm_cache_size() const;

  /// Attach a service-level trace sink (OBSERVABILITY.md). While attached,
  /// drain() replays every unobserved job's engine events onto the shared
  /// modelled timelines (one device track, one host track per lane, named
  /// via process_name/thread_name metadata) and emits a span tree per
  /// request on its own `kServicePid` track: admitted -> queued ->
  /// dispatched -> engine_solve (or cache_hit), with the stage slices
  /// tiling `ServiceResult::latency_seconds` exactly. Timestamps continue
  /// across drains (each drain advances the epoch by its makespan). Null
  /// (the default) disables service tracing; results and latencies are
  /// bit-identical either way. Borrowed, not owned.
  void set_trace(trace::TraceSink* sink) noexcept { trace_sink_ = sink; }

  /// Attach a roofline profiler (OBSERVABILITY.md, "Profiler"). The
  /// profiler is interposed over any `set_trace` sink and consumes the
  /// same replayed stream, so per-request stage attribution (p50/p99
  /// decomposition, the 1e-9 tiling gate) and per-kernel roofline
  /// aggregates come from one source of truth. Null (the default)
  /// disables profiling; bit-identical either way. Borrowed, not owned.
  void set_profiler(profile::Profiler* profiler) noexcept {
    profiler_ = profiler;
  }

  /// Attach a time-series telemetry pipeline (OBSERVABILITY.md, "Telemetry
  /// & SLOs"). While attached, drain() slices its modelled makespan into
  /// fixed `sample_interval_seconds` intervals on the epoch clock and
  /// emits one ServiceSample per interval — completions, deadline misses,
  /// rejects, in-flight depth, warm-cache lookups and a latency histogram
  /// — feeding the service.* series and, when an SLO spec is attached,
  /// the burn-rate alert engine. Everything is derived from the modelled
  /// timeline, so the series are byte-identical for any worker count, and
  /// results/latencies are bit-identical with and without the sink, the
  /// same guarantee set_trace gives. Borrowed, not owned.
  void set_telemetry(telemetry::Telemetry* telemetry) noexcept {
    telemetry_ = telemetry;
  }

 private:
  struct Pending {
    std::uint64_t id = 0;
    SolveRequest request;
  };

  /// LRU entry: the memoized optimal result of one solved digest.
  struct CacheEntry {
    std::uint64_t digest = 0;
    std::size_t m = 0, n_aug = 0;
    simplex::SolveResult result;
  };

  DispatchPolicy policy_;
  metrics::MetricsRegistry* metrics_ = nullptr;  // borrowed; may be null
  trace::TraceSink* trace_sink_ = nullptr;       // borrowed; may be null
  profile::Profiler* profiler_ = nullptr;        // borrowed; may be null
  telemetry::Telemetry* telemetry_ = nullptr;    // borrowed; may be null
  bool trace_named_ = false;   // track-naming metadata emitted once
  double trace_epoch_ = 0.0;   // modelled start of the next drain
  std::uint64_t rejected_since_drain_ = 0;  // submit() rejects, under mutex_
  vgpu::MachineModel device_model_;
  vgpu::MachineModel host_model_;

  mutable std::mutex mutex_;  // queue, results, cache, metrics writes
  std::vector<Pending> pending_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, ServiceResult> results_;
  std::vector<CacheEntry> cache_;  // front = most recently used
};

}  // namespace gs::service
