// DispatchPolicy: the tunable knobs of the solve service (SERVICE.md,
// "How dispatch decisions are made"). All thresholds are plain data so a
// deployment can tune them; the defaults encode what the bench artifacts
// measured on the calibrated machine models.
#pragma once

#include <cstddef>
#include <string>

namespace gs::service {

struct DispatchPolicy {
  /// GPU/CPU crossover: a single request with m >= crossover_m runs on the
  /// device engine, a smaller one on the host engine (below the crossover
  /// the launch-latency floor makes the GPU slower — EXPERIMENTS.md
  /// Fig. 2 measures the crossover at m=512 on the calibrated models).
  std::size_t crossover_m = 512;

  /// Preferred lanes per batch-engine round. K=64 is where the committed
  /// Ext. E sweep tops out at 18-19x over one-at-a-time device solves.
  std::size_t batch_target = 64;

  /// Same-shape groups smaller than this are not worth a batch round
  /// (the round pays full lock-step cost for every lane); they dispatch
  /// as single solves instead.
  std::size_t batch_min_fill = 2;

  /// Admission bound: submit() rejects with kQueueFull once this many
  /// requests are pending. Bounded depth is what turns overload into
  /// fast explicit rejection instead of unbounded latency.
  std::size_t queue_capacity = 256;

  /// Wall-clock worker threads used to execute a drain's jobs. 0 or 1
  /// runs jobs inline on the draining thread. Worker count never changes
  /// results or modelled latencies (tests/test_service.cpp asserts this);
  /// it only shortens real time.
  std::size_t workers = 0;

  /// Warm-start cache capacity (LRU entries); 0 disables the cache.
  std::size_t warm_cache_capacity = 64;

  /// Seed crossover_m from a gs-bench-v1 artifact (BENCH_solver.json):
  /// picks the smallest sweep point whose speedup_vs_cpu_revised >= 1.
  /// The committed CI sweep stops at m=128 — every point below the
  /// crossover — so when no sweep point crosses (or the file is
  /// unreadable) the measured Fig. 2 crossover default of m=512 is kept.
  [[nodiscard]] static DispatchPolicy from_bench_json(const std::string& path);
};

}  // namespace gs::service
