#include "service/policy.hpp"

#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace gs::service {

namespace {

/// Extract every `"<key>": <number>` occurrence, in document order. A
/// five-line scanner is all gs-bench-v1 needs (flat numeric fields, no
/// escaping games); pulling in a JSON parser for one seed value is not
/// worth a dependency.
std::vector<double> numbers_for_key(const std::string& text,
                                    const std::string& key) {
  std::vector<double> out;
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    out.push_back(std::strtod(text.c_str() + pos, nullptr));
  }
  return out;
}

}  // namespace

DispatchPolicy DispatchPolicy::from_bench_json(const std::string& path) {
  DispatchPolicy policy;
  std::ifstream in(path);
  if (!in.good()) return policy;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  // The sweep lists "m" and "speedup_vs_cpu_revised" once per point, in
  // the same order; other sections ("breakdown", "service") repeat "m"
  // without a speedup, so align on the shorter list.
  const std::vector<double> ms = numbers_for_key(text, "m");
  const std::vector<double> speedups =
      numbers_for_key(text, "speedup_vs_cpu_revised");
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < ms.size() && i < speedups.size(); ++i) {
    if (speedups[i] >= 1.0 && ms[i] < best) best = ms[i];
  }
  if (best != std::numeric_limits<double>::infinity() && best > 0) {
    policy.crossover_m = static_cast<std::size_t>(best);
  }
  return policy;
}

}  // namespace gs::service
