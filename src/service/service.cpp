#include "service/service.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>

#include "lp/standard_form.hpp"
#include "profile/profile.hpp"
#include "simplex/batch_revised.hpp"
#include "simplex/phase_setup.hpp"
#include "simplex/solver.hpp"
#include "support/error.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/chrome_sink.hpp"

namespace gs::service {

namespace {

/// Bucket ladder for the batch fill-ratio histogram (quarters of a round).
constexpr double kFillBuckets[] = {0.25, 0.5, 0.75, 1.0};

/// Per-request analysis computed once per drain, before routing.
struct Item {
  bool ok = false;          ///< standard form + augmentation succeeded
  bool observed = false;    ///< request carries its own observers/warm seed
  bool batchable = false;   ///< slack-startable and unobserved
  std::size_t m = 0, n_aug = 0;
  std::uint64_t digest = 0;
  Route route = Route::kHost;
  bool served_from_cache = false;
  std::ptrdiff_t job = -1;   ///< index into the drain's job list
  std::size_t lane = 0;      ///< position within the job (batch lane)
  simplex::SolveResult hit_result;  ///< memoized copy for kWarmHit
};

/// One schedulable unit: a batch round or a single solve.
struct Job {
  bool batch = false;
  bool on_device = false;  ///< shares the modelled device timeline
  Route route = Route::kHost;
  std::vector<std::size_t> items;  ///< indices into the drain's item list
  std::vector<std::uint32_t> warm_basis;  ///< kWarmBasis seed (copy)
  std::vector<simplex::SolveResult> results;  ///< one per item
  double sim_seconds = 0.0;  ///< modelled engine time of the whole job
  double start_seconds = 0.0;  ///< modelled start on its timeline
  /// Per-job engine-event collector (service tracing only): each job runs
  /// with a private sink so worker threads never share one, then the drain
  /// thread replays the events onto the shared timelines in scheduling
  /// order — deterministic for any worker count.
  std::unique_ptr<trace::ChromeTraceSink> collect;
  std::uint32_t host_tid = trace::kEngineTid;  ///< modelled host lane track
};

}  // namespace

SolveService::SolveService(DispatchPolicy policy,
                           metrics::MetricsRegistry* metrics,
                           vgpu::MachineModel device_model,
                           vgpu::MachineModel host_model)
    : policy_(policy),
      metrics_(metrics),
      device_model_(std::move(device_model)),
      host_model_(std::move(host_model)) {}

Ticket SolveService::submit(SolveRequest request) {
  std::lock_guard lock(mutex_);
  Ticket ticket;
  if (request.deadline_seconds <= 0.0) {
    ticket.reason = RejectReason::kDeadlineExpired;
  } else if (pending_.size() >= policy_.queue_capacity) {
    ticket.reason = RejectReason::kQueueFull;
  } else {
    ticket.accepted = true;
    ticket.id = next_id_++;
    pending_.push_back(Pending{ticket.id, std::move(request)});
  }
  if (!ticket.accepted) ++rejected_since_drain_;
  if (metrics_ != nullptr) {
    if (ticket.accepted) {
      metrics_->counter("service.accepted").inc();
    } else {
      metrics_->counter("service.rejected").inc();
      metrics_
          ->counter(std::string("service.rejected.") +
                    std::string(to_string(ticket.reason)))
          .inc();
    }
    metrics_->gauge("service.queue_depth")
        .set(static_cast<double>(pending_.size()));
  }
  return ticket;
}

std::size_t SolveService::queue_depth() const {
  std::lock_guard lock(mutex_);
  return pending_.size();
}

std::size_t SolveService::warm_cache_size() const {
  std::lock_guard lock(mutex_);
  return cache_.size();
}

const ServiceResult& SolveService::result(std::uint64_t id) const {
  std::lock_guard lock(mutex_);
  const auto it = results_.find(id);
  GS_CHECK_MSG(it != results_.end(),
               "service: unknown or not-yet-drained request id");
  return it->second;
}

void SolveService::drain() {
  std::vector<Pending> work;
  std::uint64_t rejected_before = 0;
  {
    std::lock_guard lock(mutex_);
    work.swap(pending_);
    if (metrics_ != nullptr) metrics_->gauge("service.queue_depth").set(0.0);
    // Rejects since the last drain are attributed to this drain's first
    // telemetry interval; an empty drain leaves them for the next one.
    if (!work.empty()) {
      rejected_before = std::exchange(rejected_since_drain_, 0);
    }
  }
  if (work.empty()) return;

  // ---- Analysis: shape, digest and batchability, in submission order. ----
  std::vector<Item> items(work.size());
  for (std::size_t i = 0; i < work.size(); ++i) {
    const SolveRequest& req = work[i].request;
    Item& it = items[i];
    bool slack_startable = false;
    try {
      const lp::StandardFormLp sf = lp::to_standard_form(req.problem);
      const simplex::AugmentedLp aug = simplex::augment(sf);
      it.m = aug.m;
      it.n_aug = aug.n_aug;
      it.digest = simplex::decision_digest(aug);
      slack_startable = aug.num_artificial == 0;
      it.ok = true;
    } catch (const gs::Error&) {
      it.ok = false;  // malformed request: dispatched cold, fails in-engine
    }
    const simplex::SolverOptions& o = req.options;
    it.observed = o.trace_sink != nullptr || o.checker != nullptr ||
                  o.metrics != nullptr || o.recorder != nullptr ||
                  o.warm_basis != nullptr || o.analyzer != nullptr ||
                  o.profiler != nullptr || o.telemetry != nullptr;
    it.batchable = it.ok && slack_startable && !it.observed;
  }

  // ---- Scheduling + dispatch (cache reads need the lock). ----
  std::vector<Job> jobs;
  const bool cache_on = policy_.warm_cache_capacity > 0;
  {
    std::lock_guard lock(mutex_);
    // Exact-digest repeats are served from the memoized result and leave
    // the scheduling problem entirely. Observed requests always run so
    // their per-request observers see a real solve.
    for (Item& it : items) {
      if (!cache_on || !it.ok || it.observed) continue;
      const auto hit =
          std::find_if(cache_.begin(), cache_.end(), [&](const CacheEntry& e) {
            return e.digest == it.digest;
          });
      if (hit == cache_.end()) continue;
      it.route = Route::kWarmHit;
      it.served_from_cache = true;
      it.hit_result = hit->result;
      std::rotate(cache_.begin(), hit, hit + 1);  // refresh LRU
    }

    // Same-shape packing: slack-startable groups of at least
    // batch_min_fill become batch rounds of up to batch_target lanes;
    // the trailing partial round is flushed, not starved.
    std::map<std::pair<std::size_t, std::size_t>, std::vector<std::size_t>>
        groups;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (items[i].batchable && !items[i].served_from_cache) {
        groups[{items[i].m, items[i].n_aug}].push_back(i);
      }
    }
    for (const auto& [shape, members] : groups) {
      if (members.size() < policy_.batch_min_fill) continue;
      for (std::size_t lo = 0; lo < members.size();
           lo += policy_.batch_target) {
        const std::size_t hi =
            std::min(members.size(), lo + policy_.batch_target);
        Job job;
        job.batch = true;
        job.on_device = true;
        job.route = Route::kBatch;
        job.items.assign(members.begin() + std::ptrdiff_t(lo),
                         members.begin() + std::ptrdiff_t(hi));
        for (std::size_t lane = 0; lane < job.items.size(); ++lane) {
          items[job.items[lane]].job = std::ptrdiff_t(jobs.size());
          items[job.items[lane]].lane = lane;
          items[job.items[lane]].route = Route::kBatch;
        }
        jobs.push_back(std::move(job));
      }
    }

    // Crossover-aware singles, in submission order. A cached optimal
    // basis of the same shape (different digest: a perturbed repeat)
    // routes to the dual engine as a warm start; otherwise the measured
    // crossover decides host vs device.
    for (std::size_t i = 0; i < items.size(); ++i) {
      Item& it = items[i];
      if (it.served_from_cache || it.job >= 0) continue;
      Job job;
      job.items.push_back(i);
      if (cache_on && it.ok && !it.observed) {
        const auto family = std::find_if(
            cache_.begin(), cache_.end(), [&](const CacheEntry& e) {
              return e.m == it.m && e.n_aug == it.n_aug &&
                     e.digest != it.digest && !e.result.basis.empty();
            });
        if (family != cache_.end()) {
          job.route = Route::kWarmBasis;
          job.warm_basis = family->result.basis;
        }
      }
      if (job.route != Route::kWarmBasis) {
        job.route = (it.ok && it.m >= policy_.crossover_m) ? Route::kDevice
                                                           : Route::kHost;
      }
      job.on_device = job.route == Route::kDevice;
      it.job = std::ptrdiff_t(jobs.size());
      it.lane = 0;
      it.route = job.route;
      jobs.push_back(std::move(job));
    }
  }

  // Service-level tracing/profiling: the drain replays engine events and
  // emits per-request span trees into this sink. The profiler (when
  // attached) is interposed over the trace sink and both machine models
  // are bound so the replayed kernel stream classifies correctly.
  trace::TraceSink* obs =
      profile::chain(profiler_, trace_sink_, trace::kDevicePid, device_model_);
  if (profiler_ != nullptr) {
    profiler_->bind_machine(trace::kHostPid, host_model_);
  }

  // ---- Execute. Each job owns a fresh Device / meter, so jobs are
  // independent and the worker count is a pure wall-clock knob. ----
  const auto run_job = [&](Job& job) {
    // Observed requests route their events to their own per-request sink;
    // everything else is collected for the service timelines.
    if (obs != nullptr && !items[job.items.front()].observed) {
      job.collect = std::make_unique<trace::ChromeTraceSink>();
    }
    try {
      if (job.batch) {
        std::vector<lp::LpProblem> round;
        round.reserve(job.items.size());
        for (const std::size_t i : job.items) {
          round.push_back(work[i].request.problem);
        }
        vgpu::Device dev(device_model_);
        // Batchable requests carry no observers; the round runs with the
        // first member's numeric options (tolerances, iteration cap).
        simplex::SolverOptions batch_opt =
            work[job.items.front()].request.options;
        if (job.collect) batch_opt.trace_sink = job.collect.get();
        simplex::BatchRevisedSimplex<double> engine(dev, batch_opt);
        job.results = engine.solve(round);
      } else {
        const Pending& p = work[job.items.front()];
        simplex::SolverOptions opt = p.request.options;
        if (job.collect) opt.trace_sink = job.collect.get();
        simplex::Engine engine = simplex::Engine::kHostRevised;
        if (job.route == Route::kDevice) {
          engine = simplex::Engine::kDeviceRevised;
        }
        if (job.route == Route::kWarmBasis) {
          // Perturbed repeats go to the dual engine: a neighbour's optimal
          // basis stays dual feasible under rhs drift, so the re-solve
          // repairs primal feasibility in a few dual pivots instead of
          // re-running phase 1 (the dual engine itself falls back to the
          // primal host engine when the cached basis is rejected).
          opt.warm_basis = &job.warm_basis;
          engine = simplex::Engine::kDualRevised;
        }
        job.results.push_back(simplex::solve(p.request.problem, engine, opt,
                                             device_model_, host_model_));
      }
      job.sim_seconds = job.results.front().stats.sim_seconds;
    } catch (const gs::Error&) {
      // Engine-level failure: every lane reports numerical trouble (the
      // default-constructed status) rather than taking the service down.
      job.results.assign(job.items.size(), simplex::SolveResult{});
      job.sim_seconds = 0.0;
    }
  };
  if (policy_.workers > 1 && jobs.size() > 1) {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    const std::size_t n_threads = std::min(policy_.workers, jobs.size());
    pool.reserve(n_threads);
    for (std::size_t t = 0; t < n_threads; ++t) {
      pool.emplace_back([&] {
        while (true) {
          const std::size_t i = next.fetch_add(1);
          if (i >= jobs.size()) break;
          run_job(jobs[i]);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  } else {
    for (Job& job : jobs) run_job(job);
  }

  // ---- Modelled timeline: one device, max(1, workers) host lanes,
  // stamped in scheduling order — deterministic for any worker count. ----
  double device_clock = 0.0;
  std::vector<double> host_lanes(std::max<std::size_t>(1, policy_.workers),
                                 0.0);
  for (Job& job : jobs) {
    if (job.on_device) {
      job.start_seconds = device_clock;
      device_clock += job.sim_seconds;
    } else {
      const auto lane =
          std::min_element(host_lanes.begin(), host_lanes.end());
      job.start_seconds = *lane;
      job.host_tid = trace::kEngineTid + static_cast<std::uint32_t>(
                                             lane - host_lanes.begin());
      *lane += job.sim_seconds;
    }
  }
  // The drain's modelled makespan and its start on the epoch clock: both
  // the trace replay and the telemetry sampler place this drain at
  // [epoch, epoch + makespan]; the epoch advances by the makespan whether
  // or not any observer is attached (inert either way — the clock is only
  // read by observers).
  double makespan = device_clock;
  for (const double lane : host_lanes) makespan = std::max(makespan, lane);
  const double epoch = trace_epoch_;
  trace_epoch_ += makespan;

  // ---- Service trace/profile emission (drain thread, scheduling order:
  // deterministic for any worker count). Engine events replay onto the
  // shared modelled timelines at their stamped offsets; every request gets
  // a span tree on its own kServicePid track whose stage slices tile
  // latency_seconds exactly (queued.dur + engine_solve.dur is the same
  // expression that computes the published latency). ----
  if (obs != nullptr) {
    if (!trace_named_) {
      trace_named_ = true;
      trace::Track dev_track(obs, trace::kDevicePid, trace::kEngineTid);
      dev_track.name_process("vgpu: " + device_model_.name);
      dev_track.name_thread("service device timeline");
      for (std::size_t k = 0; k < host_lanes.size(); ++k) {
        trace::Track lane_track(obs, trace::kHostPid,
                                trace::kEngineTid +
                                    static_cast<std::uint32_t>(k));
        lane_track.name_process("cpu: " + host_model_.name);
        lane_track.name_thread("service host lane " + std::to_string(k));
      }
      trace::Track svc_track(obs, trace::kServicePid, 0);
      svc_track.name_process("service: requests");
    }
    for (Job& job : jobs) {
      if (!job.collect) continue;
      for (const trace::TraceEvent& ev : job.collect->events()) {
        // Track naming is emitted once above; per-job metadata would
        // rename the shared lanes after every job.
        if (ev.phase == trace::EventPhase::kMetadata) continue;
        trace::TraceEvent out = ev;
        out.ts += epoch + job.start_seconds;
        if (out.pid == trace::kHostPid) out.tid = job.host_tid;
        obs->emit(std::move(out));
      }
      job.collect.reset();
    }
    for (std::size_t i = 0; i < items.size(); ++i) {
      const Item& it = items[i];
      const std::uint64_t id = work[i].id;
      trace::Track req(obs, trace::kServicePid,
                       static_cast<std::uint32_t>(id));
      req.name_thread("req " + std::to_string(id) + " [" +
                      std::string(to_string(it.route)) + "]");
      double latency = 0.0;
      req.begin("request", epoch, "request",
                {{"id", static_cast<double>(id)}});
      req.instant("admitted", epoch, "request");
      if (it.served_from_cache) {
        req.complete("cache_hit", epoch, 0.0, "stage",
                     {{"latency_seconds", 0.0}});
      } else {
        const Job& job = jobs[std::size_t(it.job)];
        latency = job.start_seconds + job.sim_seconds;
        req.complete("queued", epoch, job.start_seconds, "stage");
        req.instant("dispatched", epoch + job.start_seconds,
                    "request");
        req.complete(
            "engine_solve", epoch + job.start_seconds,
            job.sim_seconds, "stage",
            {{"route", static_cast<double>(static_cast<int>(it.route))},
             {"batch_lanes",
              job.batch ? static_cast<double>(job.items.size()) : 0.0},
             {"queue_seconds", job.start_seconds},
             {"engine_seconds", job.sim_seconds},
             {"latency_seconds", latency}});
      }
      if (latency > work[i].request.deadline_seconds) {
        req.instant("deadline_missed", epoch + latency, "request");
      }
      req.end(epoch + latency);
    }
  }

  // ---- Telemetry sampling (drain thread, derived purely from the
  // modelled timeline stamped above — deterministic for any worker
  // count). The drain's [epoch, epoch + makespan] span is sliced into
  // fixed sample_interval_seconds intervals; each completion lands in the
  // interval containing its latency offset (warm hits at offset zero),
  // in-flight depth counts requests completing in a later interval, and
  // rejects since the last drain are attributed to the first interval. ----
  if (telemetry_ != nullptr) {
    struct Done {
      double latency = 0.0;
      bool missed = false;
      bool warm_lookup = false;
      bool warm_hit = false;
    };
    std::vector<Done> done;
    done.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      const Item& it = items[i];
      Done d;
      if (!it.served_from_cache) {
        const Job& job = jobs[std::size_t(it.job)];
        d.latency = job.start_seconds + job.sim_seconds;
      }
      d.missed = d.latency > work[i].request.deadline_seconds;
      d.warm_lookup = cache_on && it.ok && !it.observed;
      d.warm_hit = it.served_from_cache;
      done.push_back(d);
    }
    const double dt = telemetry_->config().sample_interval_seconds;
    const std::size_t n_samples = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(makespan / dt)));
    const std::span<const double> ladder = metrics::seconds_buckets();
    const auto interval_of = [&](double off) {
      return std::min(n_samples - 1, static_cast<std::size_t>(off / dt));
    };
    for (std::size_t k = 0; k < n_samples; ++k) {
      telemetry::ServiceSample smp;
      smp.t = epoch + (k + 1 == n_samples ? makespan
                                          : static_cast<double>(k + 1) * dt);
      smp.interval_seconds = dt;
      smp.latency_counts.assign(ladder.size() + 1, 0);
      if (k == 0) smp.rejected = rejected_before;
      for (const Done& d : done) {
        const std::size_t idx = interval_of(d.latency);
        if (idx > k) {
          ++smp.inflight;
          continue;
        }
        if (idx < k) continue;
        ++smp.completed;
        if (d.missed) ++smp.deadline_missed;
        // Warm-cache accounting rides the completion's interval (a hit
        // completes instantly, so hits always land in interval 0).
        if (d.warm_lookup) {
          ++smp.warm_lookups;
          if (d.warm_hit) ++smp.warm_hits;
        }
        std::size_t b = 0;
        while (b < ladder.size() && d.latency > ladder[b]) ++b;
        ++smp.latency_counts[b];
        if (smp.completed == 1 || d.latency < smp.latency_min) {
          smp.latency_min = d.latency;
        }
        if (smp.completed == 1 || d.latency > smp.latency_max) {
          smp.latency_max = d.latency;
        }
      }
      telemetry_->observe_service_sample(smp);
    }
    telemetry_->event("drain", epoch + makespan,
                      std::to_string(items.size()) + " request(s)");
  }

  // ---- Publish results, service metrics and warm-cache updates. ----
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < items.size(); ++i) {
    Item& it = items[i];
    ServiceResult sr;
    sr.digest = it.digest;
    sr.route = it.route;
    if (it.served_from_cache) {
      sr.solve = std::move(it.hit_result);
      // A hit performs no solve: the memoized result is returned at zero
      // modelled cost (its stats still describe the original cold solve).
    } else {
      Job& job = jobs[std::size_t(it.job)];
      sr.solve = std::move(job.results[it.lane]);
      sr.batch_lanes = job.batch ? job.items.size() : 0;
      sr.queue_seconds = job.start_seconds;
      sr.engine_seconds = job.sim_seconds;
      sr.latency_seconds = job.start_seconds + job.sim_seconds;
    }
    sr.deadline_missed =
        sr.latency_seconds > work[i].request.deadline_seconds;

    if (metrics_ != nullptr) {
      switch (sr.route) {
        case Route::kHost:
          metrics_->counter("service.dispatch.host").inc();
          break;
        case Route::kDevice:
          metrics_->counter("service.dispatch.device").inc();
          break;
        case Route::kBatch:
          metrics_->counter("service.dispatch.batch").inc();
          break;
        case Route::kWarmHit:
          metrics_->counter("service.warm.hit").inc();
          break;
        case Route::kWarmBasis:
          metrics_->counter("service.dispatch.warm-basis").inc();
          break;
      }
      if (cache_on && it.ok && !it.observed &&
          sr.route != Route::kWarmHit) {
        metrics_->counter("service.warm.miss").inc();
      }
      if (sr.route == Route::kWarmBasis && !sr.solve.stats.warm_started) {
        metrics_->counter("service.warm.fallback").inc();
      }
      if (sr.deadline_missed) {
        metrics_->counter("service.deadline.missed").inc();
      }
      metrics_->histogram("service.queue_seconds", metrics::seconds_buckets())
          .observe(sr.queue_seconds);
      metrics_
          ->histogram("service.latency_seconds", metrics::seconds_buckets())
          .observe(sr.latency_seconds);
    }

    // Every optimal solve (cold or warm-started) refreshes the cache so
    // the next exact repeat is a hit and the next perturbed repeat has a
    // fresh basis to start from.
    if (cache_on && it.ok && !it.served_from_cache && sr.solve.optimal() &&
        !sr.solve.basis.empty()) {
      const auto existing = std::find_if(
          cache_.begin(), cache_.end(),
          [&](const CacheEntry& e) { return e.digest == it.digest; });
      if (existing != cache_.end()) cache_.erase(existing);
      cache_.insert(cache_.begin(),
                    CacheEntry{it.digest, it.m, it.n_aug, sr.solve});
      while (cache_.size() > policy_.warm_cache_capacity) {
        cache_.pop_back();
        if (metrics_ != nullptr) {
          metrics_->counter("service.warm.evict").inc();
        }
      }
    }

    results_[work[i].id] = std::move(sr);
  }
  if (metrics_ != nullptr) {
    for (const Job& job : jobs) {
      if (!job.batch) continue;
      metrics_->counter("service.batch.rounds").inc();
      metrics_->histogram("service.batch.fill", kFillBuckets)
          .observe(double(job.items.size()) /
                   double(std::max<std::size_t>(1, policy_.batch_target)));
    }
  }
  // Registry sampling comes last so the per-drain counter deltas include
  // everything this drain published (still under the lock: submit() may be
  // writing the same registry from other threads).
  if (telemetry_ != nullptr && metrics_ != nullptr) {
    telemetry_->sample_registry(epoch + makespan, *metrics_);
  }
}

}  // namespace gs::service
