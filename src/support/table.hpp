// Aligned ASCII table printer + CSV writer.
//
// Every bench binary renders its paper table/figure series through this so
// the output format is uniform and machine-recoverable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gs {

/// Column-aligned table with a header row. Cells are strings; numeric
/// convenience overloads format with 6 significant digits.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent add() calls fill it left to right.
  Table& new_row();
  Table& add(std::string cell);
  Table& add(double value);
  Table& add(long value);
  Table& add(int value) { return add(static_cast<long>(value)); }
  Table& add(std::size_t value) { return add(static_cast<long>(value)); }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::string& cell(std::size_t row, std::size_t col) const;

  /// Render to an output stream with column alignment and a rule under the header.
  void print(std::ostream& os) const;

  /// Comma-separated rendering (headers first). Cells containing commas are quoted.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gs
