// Deterministic random number generation.
//
// Every stochastic component in the library (instance generators, perturbed
// workloads, property-test sweeps) derives its randomness from these
// generators so that all tables and figures are exactly regenerable from a
// seed. xoshiro256** is the workhorse generator; splitmix64 seeds it and
// derives independent child streams.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace gs {

/// splitmix64: tiny, high-quality seeding generator (Steele et al.).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator so it composes with <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Derive an independent child stream (for per-module determinism).
  [[nodiscard]] Xoshiro256 split() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Box-Muller (no cached spare; stateless per call pair).
  double normal() noexcept;
  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace gs
