// Error handling primitives shared across the library.
//
// Construction-time and precondition failures throw `gs::Error`; solver
// outcomes (infeasible / unbounded / iteration limit) are ordinary return
// values, never exceptions.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gs {

/// Exception type for all invariant/precondition violations in the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void fail(std::string_view file, int line,
                              std::string_view cond, std::string_view msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed";
  if (!cond.empty()) os << " (" << cond << ")";
  if (!msg.empty()) os << ": " << msg;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace gs

/// Precondition check that is always active (library is correctness-first).
#define GS_CHECK(cond)                                            \
  do {                                                            \
    if (!(cond)) ::gs::detail::fail(__FILE__, __LINE__, #cond, ""); \
  } while (false)

/// Precondition check with an explanatory message.
#define GS_CHECK_MSG(cond, msg)                                      \
  do {                                                               \
    if (!(cond)) ::gs::detail::fail(__FILE__, __LINE__, #cond, msg); \
  } while (false)

/// Unconditional failure with a message.
#define GS_FAIL(msg) ::gs::detail::fail(__FILE__, __LINE__, "", msg)
