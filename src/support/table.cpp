#include "support/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace gs {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  GS_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

Table& Table::new_row() {
  if (!rows_.empty()) {
    GS_CHECK_MSG(rows_.back().size() == headers_.size(),
                 "previous row incomplete");
  }
  rows_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  GS_CHECK_MSG(!rows_.empty(), "call new_row() before add()");
  GS_CHECK_MSG(rows_.back().size() < headers_.size(), "row overflow");
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(double value) { return add(format_double(value)); }

Table& Table::add(long value) { return add(std::to_string(value)); }

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  GS_CHECK(row < rows_.size() && col < rows_[row].size());
  return rows_[row][col];
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << "  " << cell << std::string(widths[c] - cell.size(), ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find(',') == std::string::npos) return cell;
    return '"' + cell + '"';
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << quote(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace gs
