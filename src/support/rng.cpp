#include "support/rng.hpp"

#include <cmath>

namespace gs {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

Xoshiro256::result_type Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Xoshiro256 Xoshiro256::split() noexcept { return Xoshiro256(next()); }

double Xoshiro256::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Xoshiro256::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full range
  // Rejection-free Lemire-style bounded draw; bias is negligible for our use.
  return lo + static_cast<std::int64_t>(next() % range);
}

double Xoshiro256::normal() noexcept {
  // Box-Muller; u1 bounded away from 0 so log() is finite.
  const double u1 = std::max(uniform(), 0x1.0p-53);
  const double u2 = uniform();
  const double two_pi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

bool Xoshiro256::bernoulli(double p) noexcept { return uniform() < p; }

}  // namespace gs
