// Wall-clock timing helper used by benches and solver instrumentation.
#pragma once

#include <chrono>

namespace gs {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace gs
