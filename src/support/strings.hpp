// Small string utilities used by the LP text reader and table printer.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gs {

/// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Split on a single delimiter character; empty fields preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Split on runs of whitespace; no empty fields.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

/// ASCII lowercase copy.
[[nodiscard]] std::string to_lower(std::string_view s);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// Parse a double; throws gs::Error on malformed input.
[[nodiscard]] double parse_double(std::string_view s);

/// Parse a non-negative integer; throws gs::Error on malformed input.
[[nodiscard]] long parse_long(std::string_view s);

/// printf-style %.*g formatting of a double with given significant digits.
[[nodiscard]] std::string format_double(double v, int significant_digits = 6);

}  // namespace gs
