#include "support/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"

namespace gs {

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    const std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

double parse_double(std::string_view s) {
  s = trim(s);
  GS_CHECK_MSG(!s.empty(), "empty numeric field");
  // std::from_chars for double is available in GCC 12.
  double value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  GS_CHECK_MSG(ec == std::errc{} && ptr == s.data() + s.size(),
               "malformed double: '" + std::string(s) + "'");
  return value;
}

long parse_long(std::string_view s) {
  s = trim(s);
  GS_CHECK_MSG(!s.empty(), "empty integer field");
  long value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  GS_CHECK_MSG(ec == std::errc{} && ptr == s.data() + s.size(),
               "malformed integer: '" + std::string(s) + "'");
  return value;
}

std::string format_double(double v, int significant_digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", significant_digits, v);
  return buf;
}

}  // namespace gs
