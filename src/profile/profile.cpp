#include "profile/profile.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "metrics/metrics.hpp"
#include "support/table.hpp"

namespace gs::profile {

namespace {

double arg_value(const trace::TraceEvent& e, std::string_view key,
                 double fallback) {
  for (const auto& [k, v] : e.args) {
    if (k == key) return v;
  }
  return fallback;
}

bool has_arg(const trace::TraceEvent& e, std::string_view key) {
  for (const auto& [k, _] : e.args) {
    if (k == key) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Profiler: event consumption

void Profiler::emit(trace::TraceEvent event) {
  const std::uint64_t key = track_key(event.pid, event.tid);
  switch (event.phase) {
    case trace::EventPhase::kBegin: {
      Frame f;
      f.name = event.name;
      f.begin_ts = event.ts;
      auto& stack = stacks_[key];
      f.path = stack.empty() ? event.name : stack.back().path + ";" + event.name;
      stack.push_back(std::move(f));
      break;
    }
    case trace::EventPhase::kEnd: {
      auto it = stacks_.find(key);
      if (it != stacks_.end() && !it->second.empty()) {
        Frame top = std::move(it->second.back());
        it->second.pop_back();
        const double dur = event.ts - top.begin_ts;
        auto& agg = phases_[top.name];
        ++agg.count;
        agg.total_seconds += dur;
        double self = dur - top.child_seconds;
        if (self < 0) self = 0;
        agg.self_seconds += self;
        flame_[top.path] += self;
        if (!it->second.empty()) it->second.back().child_seconds += dur;
      }
      break;
    }
    case trace::EventPhase::kComplete:
      on_complete(event);
      break;
    case trace::EventPhase::kInstant:
      if (event.pid == trace::kServicePid && event.name == "deadline_missed") {
        requests_[event.tid].deadline_missed = true;
      }
      break;
    case trace::EventPhase::kMetadata:
      if (event.name == "thread_name") {
        thread_labels_[key] = event.label;
      }
      break;
    case trace::EventPhase::kCounter:
      break;
  }
  if (downstream_ != nullptr) downstream_->emit(std::move(event));
}

void Profiler::on_complete(const trace::TraceEvent& e) {
  if (e.category == "kernel") {
    on_kernel_slice(e);
  } else if (e.category == "transfer") {
    transfer_seconds_[e.pid] += e.dur;
    attribute_child(track_key(e.pid, e.tid), e.name, e.dur);
  } else if (e.category == "stage") {
    on_stage_slice(e);
  } else {
    // Generic slice (e.g. a phase emitted as X): count it as a phase with
    // no nesting information beyond the current stack.
    auto& agg = phases_[e.name];
    ++agg.count;
    agg.total_seconds += e.dur;
    agg.self_seconds += e.dur;
    const std::string path =
        attribute_child(track_key(e.pid, e.tid), e.name, e.dur);
    flame_[path] += e.dur;
  }
}

void Profiler::on_kernel_slice(const trace::TraceEvent& e) {
  // The accumulation below folds the same `dur` doubles, in the same
  // emission order, as Device::record_kernel folds into
  // DeviceStats::kernel_seconds / per_kernel sim_seconds — which is what
  // makes report() bit-exact against DeviceStats for a single-engine run.
  kernel_seconds_[e.pid] += e.dur;
  auto& agg = kernels_[e.pid][e.name];
  ++agg.calls;
  agg.seconds += e.dur;
  const double flops = arg_value(e, "flops", 0.0);
  const double bytes = arg_value(e, "bytes", 0.0);
  agg.flops += flops;
  agg.bytes += bytes;
  // Host CostMeter slices carry no threads arg: a host model saturates at
  // one thread, so 1 is exact there.
  const auto threads =
      static_cast<std::size_t>(arg_value(e, "threads", 1.0));
  if (has_arg(e, "scalar_bytes")) {
    agg.scalar_bytes =
        static_cast<std::size_t>(arg_value(e, "scalar_bytes", 8.0));
  }
  auto mit = machines_.find(e.pid);
  if (mit != machines_.end()) {
    // Re-derive the roofline decomposition of this launch exactly as
    // MachineModel::kernel_seconds composed it.
    const vgpu::MachineModel& m = mit->second;
    const double peak = agg.scalar_bytes <= 4 ? m.peak_gflops_sp
                                              : m.peak_gflops_dp;
    const double occ = std::min(
        1.0, static_cast<double>(std::max<std::size_t>(threads, 1)) /
                 static_cast<double>(m.saturation_threads));
    const double f_eff = peak * 1e9 * occ;
    const double b_eff = m.mem_gbps * 1e9 * occ;
    const double t_compute = f_eff > 0 ? flops / f_eff : 0.0;
    const double t_memory = b_eff > 0 ? bytes / b_eff : 0.0;
    agg.launch_seconds += m.launch_overhead_s;
    agg.compute_seconds += t_compute;
    agg.memory_seconds += t_memory;
    BoundClass cls;
    if (m.launch_overhead_s >= std::max(t_compute, t_memory)) {
      cls = BoundClass::kLaunch;
    } else if (t_memory >= t_compute) {
      cls = BoundClass::kBandwidth;
    } else {
      cls = BoundClass::kCompute;
    }
    agg.class_seconds[static_cast<std::size_t>(cls)] += e.dur;
  }
  const std::string path =
      attribute_child(track_key(e.pid, e.tid), e.name, e.dur);
  flame_[path] += e.dur;
}

void Profiler::on_stage_slice(const trace::TraceEvent& e) {
  auto& sagg = stages_[e.name];
  ++sagg.count;
  sagg.seconds += e.dur;
  auto& req = requests_[e.tid];
  req.stages.emplace_back(e.name, e.dur);
  req.stage_sum += e.dur;
  if (has_arg(e, "latency_seconds")) {
    req.latency_seconds = arg_value(e, "latency_seconds", 0.0);
    req.has_latency = true;
  }
  const std::string path =
      attribute_child(track_key(e.pid, e.tid), e.name, e.dur);
  flame_[path] += e.dur;
}

std::string Profiler::attribute_child(std::uint64_t key, std::string_view name,
                                      double dur) {
  auto it = stacks_.find(key);
  if (it != stacks_.end() && !it->second.empty()) {
    Frame& top = it->second.back();
    top.child_seconds += dur;
    return top.path + ";" + std::string(name);
  }
  return std::string(name);
}

void Profiler::clear() {
  kernels_.clear();
  kernel_seconds_.clear();
  transfer_seconds_.clear();
  phases_.clear();
  stages_.clear();
  requests_.clear();
  thread_labels_.clear();
  stacks_.clear();
  flame_.clear();
}

// ---------------------------------------------------------------------------
// Report assembly

ProfileReport Profiler::report() const {
  ProfileReport r;
  double launch_bound = 0.0, kernel_total = 0.0;
  for (const auto& [pid, by_name] : kernels_) {
    const auto mit = machines_.find(pid);
    for (const auto& [name, agg] : by_name) {
      KernelProfile k;
      k.name = name;
      k.pid = pid;
      k.calls = agg.calls;
      k.seconds = agg.seconds;
      k.flops = agg.flops;
      k.bytes = agg.bytes;
      k.launch_seconds = agg.launch_seconds;
      k.compute_seconds = agg.compute_seconds;
      k.memory_seconds = agg.memory_seconds;
      if (agg.seconds > 0) {
        k.achieved_gflops = agg.flops / agg.seconds / 1e9;
        k.achieved_gbps = agg.bytes / agg.seconds / 1e9;
      }
      if (mit != machines_.end()) {
        const vgpu::MachineModel& m = mit->second;
        const double peak = agg.scalar_bytes <= 4 ? m.peak_gflops_sp
                                                  : m.peak_gflops_dp;
        if (peak > 0) k.compute_fraction = k.achieved_gflops / peak;
        if (m.mem_gbps > 0) k.bandwidth_fraction = k.achieved_gbps / m.mem_gbps;
      }
      // Bound class of the kernel = the class its launches spent the most
      // modeled time in; ties resolve launch > bandwidth > compute (the
      // order cheapest to fix ranks first).
      std::size_t best = 0;
      for (std::size_t c = 1; c < 3; ++c) {
        if (agg.class_seconds[c] > agg.class_seconds[best]) best = c;
      }
      k.bound = static_cast<BoundClass>(best);
      launch_bound +=
          agg.class_seconds[static_cast<std::size_t>(BoundClass::kLaunch)];
      kernel_total += agg.seconds;
      r.kernels.push_back(std::move(k));
    }
  }
  std::stable_sort(r.kernels.begin(), r.kernels.end(),
                   [](const KernelProfile& a, const KernelProfile& b) {
                     if (a.seconds != b.seconds) return a.seconds > b.seconds;
                     return a.name < b.name;
                   });
  if (kernel_total > 0) r.launch_bound_fraction = launch_bound / kernel_total;

  for (const auto& [name, agg] : phases_) {
    r.phases.push_back({name, agg.count, agg.total_seconds, agg.self_seconds});
  }
  std::stable_sort(r.phases.begin(), r.phases.end(),
                   [](const PhaseProfile& a, const PhaseProfile& b) {
                     if (a.total_seconds != b.total_seconds) {
                       return a.total_seconds > b.total_seconds;
                     }
                     return a.name < b.name;
                   });

  for (const auto& [name, agg] : stages_) {
    r.stages.push_back({name, agg.count, agg.seconds});
  }

  for (const auto& [tid, agg] : requests_) {
    RequestProfile q;
    q.tid = tid;
    const auto lit =
        thread_labels_.find(track_key(trace::kServicePid, tid));
    if (lit != thread_labels_.end()) q.label = lit->second;
    q.stages = agg.stages;
    q.stage_sum = agg.stage_sum;
    q.latency_seconds = agg.latency_seconds;
    q.has_latency = agg.has_latency;
    q.deadline_missed = agg.deadline_missed;
    r.requests.push_back(std::move(q));
  }

  r.flamegraph.assign(flame_.begin(), flame_.end());
  r.kernel_seconds_by_pid = kernel_seconds_;
  r.transfer_seconds_by_pid = transfer_seconds_;
  return r;
}

// ---------------------------------------------------------------------------
// ProfileReport queries

double ProfileReport::kernel_seconds() const noexcept {
  double total = 0.0;
  for (const auto& [_, s] : kernel_seconds_by_pid) total += s;
  return total;
}

double ProfileReport::transfer_seconds() const noexcept {
  double total = 0.0;
  for (const auto& [_, s] : transfer_seconds_by_pid) total += s;
  return total;
}

const KernelProfile* ProfileReport::find_kernel(
    std::string_view name) const noexcept {
  for (const KernelProfile& k : kernels) {
    if (k.name == name) return &k;
  }
  return nullptr;
}

double ProfileReport::max_stage_tiling_error() const noexcept {
  double worst = 0.0;
  for (const RequestProfile& q : requests) {
    worst = std::max(worst, q.tiling_error());
  }
  return worst;
}

RequestSummary ProfileReport::request_summary() const {
  RequestSummary s;
  s.count = requests.size();
  if (requests.empty()) return s;
  // Sort request indices by latency; percentile ranks use the same index
  // formulas as bench/svc_common.hpp so --profile output matches the
  // service bench's reported p50/p99.
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return requests[a].latency_seconds <
                            requests[b].latency_seconds;
                   });
  const std::size_t n = order.size();
  const std::size_t i50 = (n - 1) / 2;
  const std::size_t i99 = std::min(n - 1, (n * 99 + 99) / 100 - 1);
  const RequestProfile& q50 = requests[order[i50]];
  const RequestProfile& q99 = requests[order[i99]];
  s.p50_seconds = q50.latency_seconds;
  s.p99_seconds = q99.latency_seconds;
  s.p50_stages = q50.stages;
  s.p99_stages = q99.stages;
  return s;
}

// ---------------------------------------------------------------------------
// Exports

std::string ProfileReport::table(std::size_t top_n) const {
  const double total = kernel_seconds();
  Table t({"kernel", "pid", "calls", "ms", "share", "gflops", "gbps",
           "peak_c", "peak_b", "bound"});
  std::size_t shown = 0;
  for (const KernelProfile& k : kernels) {
    if (shown++ == top_n) break;
    t.new_row()
        .add(k.name)
        .add(static_cast<long>(k.pid))
        .add(k.calls)
        .add(k.seconds * 1e3)
        .add(total > 0 ? k.seconds / total : 0.0)
        .add(k.achieved_gflops)
        .add(k.achieved_gbps)
        .add(k.compute_fraction)
        .add(k.bandwidth_fraction)
        .add(std::string(to_string(k.bound)));
  }
  std::ostringstream os;
  t.print(os);
  return os.str();
}

std::string ProfileReport::flamegraph_text() const {
  std::string out;
  for (const auto& [path, seconds] : flamegraph) {
    out += path;
    out += ' ';
    out += std::to_string(std::llround(seconds * 1e9));
    out += '\n';
  }
  return out;
}

std::string ProfileReport::to_json() const {
  using metrics::json_write_number;
  using metrics::json_write_string;
  std::string out;
  out += "{\n  \"schema\": \"gs-profile-v1\",\n";

  out += "  \"totals\": {\n    \"kernel_seconds\": ";
  json_write_number(out, kernel_seconds());
  out += ",\n    \"transfer_seconds\": ";
  json_write_number(out, transfer_seconds());
  out += ",\n    \"launch_bound_fraction\": ";
  json_write_number(out, launch_bound_fraction);
  out += ",\n    \"kernel_seconds_by_pid\": {";
  bool first = true;
  for (const auto& [pid, s] : kernel_seconds_by_pid) {
    if (!first) out += ", ";
    first = false;
    json_write_string(out, std::to_string(pid));
    out += ": ";
    json_write_number(out, s);
  }
  out += "}\n  },\n";

  out += "  \"kernels\": [\n";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const KernelProfile& k = kernels[i];
    out += "    {\"name\": ";
    json_write_string(out, k.name);
    out += ", \"pid\": " + std::to_string(k.pid);
    out += ", \"calls\": " + std::to_string(k.calls);
    out += ", \"seconds\": ";
    json_write_number(out, k.seconds);
    out += ", \"flops\": ";
    json_write_number(out, k.flops);
    out += ", \"bytes\": ";
    json_write_number(out, k.bytes);
    out += ", \"launch_seconds\": ";
    json_write_number(out, k.launch_seconds);
    out += ", \"compute_seconds\": ";
    json_write_number(out, k.compute_seconds);
    out += ", \"memory_seconds\": ";
    json_write_number(out, k.memory_seconds);
    out += ", \"achieved_gflops\": ";
    json_write_number(out, k.achieved_gflops);
    out += ", \"achieved_gbps\": ";
    json_write_number(out, k.achieved_gbps);
    out += ", \"compute_fraction\": ";
    json_write_number(out, k.compute_fraction);
    out += ", \"bandwidth_fraction\": ";
    json_write_number(out, k.bandwidth_fraction);
    out += ", \"bound\": ";
    json_write_string(out, to_string(k.bound));
    out += i + 1 < kernels.size() ? "},\n" : "}\n";
  }
  out += "  ],\n";

  out += "  \"phases\": [\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseProfile& p = phases[i];
    out += "    {\"name\": ";
    json_write_string(out, p.name);
    out += ", \"count\": " + std::to_string(p.count);
    out += ", \"total_seconds\": ";
    json_write_number(out, p.total_seconds);
    out += ", \"self_seconds\": ";
    json_write_number(out, p.self_seconds);
    out += i + 1 < phases.size() ? "},\n" : "}\n";
  }
  out += "  ],\n";

  out += "  \"stages\": [\n";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageProfile& s = stages[i];
    out += "    {\"name\": ";
    json_write_string(out, s.name);
    out += ", \"count\": " + std::to_string(s.count);
    out += ", \"seconds\": ";
    json_write_number(out, s.seconds);
    out += i + 1 < stages.size() ? "},\n" : "}\n";
  }
  out += "  ],\n";

  const RequestSummary rs = request_summary();
  out += "  \"requests\": {\n    \"count\": " + std::to_string(rs.count);
  out += ",\n    \"max_tiling_error\": ";
  json_write_number(out, max_stage_tiling_error());
  out += ",\n    \"p50_seconds\": ";
  json_write_number(out, rs.p50_seconds);
  out += ",\n    \"p99_seconds\": ";
  json_write_number(out, rs.p99_seconds);
  auto write_stages =
      [&out](const std::vector<std::pair<std::string, double>>& st) {
        out += "{";
        for (std::size_t i = 0; i < st.size(); ++i) {
          if (i) out += ", ";
          json_write_string(out, st[i].first);
          out += ": ";
          json_write_number(out, st[i].second);
        }
        out += "}";
      };
  out += ",\n    \"p50_stages\": ";
  write_stages(rs.p50_stages);
  out += ",\n    \"p99_stages\": ";
  write_stages(rs.p99_stages);
  out += ",\n    \"per_request\": [\n";
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const RequestProfile& q = requests[i];
    out += "      {\"tid\": " + std::to_string(q.tid);
    if (!q.label.empty()) {
      out += ", \"label\": ";
      json_write_string(out, q.label);
    }
    out += ", \"latency_seconds\": ";
    json_write_number(out, q.latency_seconds);
    out += ", \"stage_sum\": ";
    json_write_number(out, q.stage_sum);
    out += ", \"deadline_missed\": ";
    out += q.deadline_missed ? "true" : "false";
    out += ", \"stages\": ";
    write_stages(q.stages);
    out += i + 1 < requests.size() ? "},\n" : "}\n";
  }
  out += "    ]\n  },\n";

  out += "  \"flamegraph\": [\n";
  for (std::size_t i = 0; i < flamegraph.size(); ++i) {
    out += "    {\"stack\": ";
    json_write_string(out, flamegraph[i].first);
    out += ", \"seconds\": ";
    json_write_number(out, flamegraph[i].second);
    out += i + 1 < flamegraph.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace gs::profile
