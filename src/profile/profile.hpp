// Roofline profiler: the aggregation layer above the trace stream.
//
// The trace layer (src/trace) answers "what happened, when" one event at a
// time; this layer answers the paper's actual question — *where does the
// modeled time go, and why* — by consuming the same event stream through
// the TraceSink interface (no new instrumentation points; every engine's
// existing one-branch hooks feed it) and aggregating:
//
//   per kernel   call count, total modeled seconds (bit-exact against
//                DeviceStats::kernel_seconds — the same doubles are summed
//                in the same emission order), declared flops/bytes, the
//                roofline decomposition (launch / compute / memory seconds
//                recomputed per launch from the bound MachineModel), the
//                achieved-vs-peak bandwidth and compute fractions, and a
//                bound classification: launch-bound when the fixed launch
//                overhead dominates the work term, else bandwidth-bound
//                or compute-bound by the dominant roofline term;
//   per phase    total and self modeled time for every B/E span (solve,
//                phase1/2, iteration, price, ftran, ratio, update, ...),
//                where self = total minus enclosed child spans and slices;
//   per request  the service's per-request stage slices ("stage" category:
//                queued / engine_solve / cache_hit), with the tiling
//                invariant max |latency - sum(stage durs)| exposed for the
//                1e-9 reconciliation gate, and p50/p99 latency decomposed
//                into per-stage attribution.
//
// Exports: a ranked top-N table (ProfileReport::table), a collapsed-stack
// flamegraph ("a;b;leaf nanoseconds" lines, ProfileReport::flamegraph_text)
// and a `gs-profile-v1` JSON document (ProfileReport::to_json).
//
// Composition: a Profiler is itself a TraceSink and forwards every event
// unmodified to an optional downstream sink, so `--profile` and `--trace`
// stack on one stream. Like every observer (OBSERVABILITY.md), it is
// off-by-default, borrowed not owned, and attaching it changes no result
// bit or DeviceStats field.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/trace.hpp"
#include "vgpu/machine_model.hpp"

namespace gs::profile {

/// Roofline bound class of a kernel: which term of
/// t = t_launch + max(flops/F_eff, bytes/B_eff) dominates its time.
enum class BoundClass : std::uint8_t {
  kLaunch,     ///< fixed launch overhead >= the max(work) term
  kBandwidth,  ///< memory term dominates (bytes/B_eff >= flops/F_eff)
  kCompute,    ///< arithmetic term dominates
};

[[nodiscard]] constexpr std::string_view to_string(BoundClass b) noexcept {
  switch (b) {
    case BoundClass::kLaunch: return "launch-bound";
    case BoundClass::kBandwidth: return "bandwidth-bound";
    case BoundClass::kCompute: return "compute-bound";
  }
  return "?";
}

/// Aggregate for one kernel name on one machine track (pid).
struct KernelProfile {
  std::string name;
  std::uint32_t pid = 0;      ///< machine track the launches ran on
  std::size_t calls = 0;
  double seconds = 0.0;       ///< bit-exact vs KernelRecord::sim_seconds
  double flops = 0.0;         ///< declared, summed over launches
  double bytes = 0.0;         ///< declared, summed over launches
  /// Roofline decomposition, summed per launch from the bound machine
  /// model. Note launch+max(compute,memory) per launch == seconds; the
  /// three components overlap (max), so they do not sum to `seconds`.
  double launch_seconds = 0.0;
  double compute_seconds = 0.0;
  double memory_seconds = 0.0;
  double achieved_gflops = 0.0;     ///< flops / seconds / 1e9
  double achieved_gbps = 0.0;       ///< bytes / seconds / 1e9
  double compute_fraction = 0.0;    ///< achieved_gflops / machine peak
  double bandwidth_fraction = 0.0;  ///< achieved_gbps / machine mem_gbps
  BoundClass bound = BoundClass::kBandwidth;
};

/// Aggregate for one B/E span name (algorithm phase).
struct PhaseProfile {
  std::string name;
  std::size_t count = 0;
  double total_seconds = 0.0;  ///< sum of span durations
  double self_seconds = 0.0;   ///< total minus enclosed spans/slices
};

/// Aggregate for one service request stage ("stage" category slices).
struct StageProfile {
  std::string name;
  std::size_t count = 0;
  double seconds = 0.0;
};

/// One service request's span record, reassembled from its track.
struct RequestProfile {
  std::uint32_t tid = 0;           ///< request track id (the ticket id)
  std::string label;               ///< thread_name metadata, if emitted
  std::vector<std::pair<std::string, double>> stages;  ///< emission order
  double stage_sum = 0.0;          ///< durations summed in emission order
  double latency_seconds = 0.0;    ///< reported by the final stage slice
  bool has_latency = false;
  bool deadline_missed = false;

  /// The reconciliation residue: stage slices must tile the reported
  /// latency. Exactly 0.0 for the shipped service emission.
  [[nodiscard]] double tiling_error() const noexcept {
    const double d = latency_seconds - stage_sum;
    return d < 0 ? -d : d;
  }
};

/// Latency percentiles with per-stage attribution (the requests at the
/// p50/p99 ranks, decomposed).
struct RequestSummary {
  std::size_t count = 0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  std::vector<std::pair<std::string, double>> p50_stages, p99_stages;
};

/// Snapshot assembled by Profiler::report().
struct ProfileReport {
  std::vector<KernelProfile> kernels;    ///< ranked by seconds, descending
  std::vector<PhaseProfile> phases;      ///< ranked by total, descending
  std::vector<StageProfile> stages;      ///< name order
  std::vector<RequestProfile> requests;  ///< tid order
  /// Collapsed flamegraph stacks: path -> seconds (slices contribute their
  /// duration at stack;name, spans their self time at their own path).
  std::vector<std::pair<std::string, double>> flamegraph;
  /// Emission-order kernel/transfer totals per machine track. For a
  /// single-engine run the kernel total is bit-exact against
  /// DeviceStats::kernel_seconds.
  std::map<std::uint32_t, double> kernel_seconds_by_pid;
  std::map<std::uint32_t, double> transfer_seconds_by_pid;
  /// Seconds in launch-bound kernels / total kernel seconds (0 if none).
  double launch_bound_fraction = 0.0;

  /// Total kernel seconds across machine tracks (single-track runs: the
  /// bit-exact DeviceStats::kernel_seconds counterpart).
  [[nodiscard]] double kernel_seconds() const noexcept;
  [[nodiscard]] double transfer_seconds() const noexcept;
  /// Lookup by kernel name (first match across pids), or nullptr.
  [[nodiscard]] const KernelProfile* find_kernel(
      std::string_view name) const noexcept;
  /// Max per-request |latency - sum(stages)| (0 when no requests).
  [[nodiscard]] double max_stage_tiling_error() const noexcept;
  /// Latency percentiles + stage decomposition over `requests`.
  [[nodiscard]] RequestSummary request_summary() const;

  /// Ranked top-N kernel table (modeled ms, shares, roofline fractions,
  /// bound class), rendered with the repo-standard Table.
  [[nodiscard]] std::string table(std::size_t top_n = 10) const;
  /// Collapsed-stack flamegraph lines: "a;b;leaf <nanoseconds>\n".
  [[nodiscard]] std::string flamegraph_text() const;
  /// The gs-profile-v1 JSON document (doubles serialized round-trippable).
  [[nodiscard]] std::string to_json() const;
};

/// The aggregating TraceSink. Attach via SolverOptions::profiler (engines
/// chain any SolverOptions::trace_sink downstream automatically), via
/// SolveService::set_profiler, or hand-wire with Device::set_trace.
class Profiler final : public trace::TraceSink {
 public:
  explicit Profiler(trace::TraceSink* downstream = nullptr)
      : downstream_(downstream) {}

  /// Forward every consumed event, unmodified, to `sink` (nullptr stops
  /// forwarding). Engines call this with SolverOptions::trace_sink so
  /// --profile composes with --trace on one stream.
  void set_downstream(trace::TraceSink* sink) noexcept { downstream_ = sink; }
  [[nodiscard]] trace::TraceSink* downstream() const noexcept {
    return downstream_;
  }

  /// Bind the machine model behind a pid so per-launch roofline
  /// decomposition/classification can be recomputed from the declared
  /// KernelCost. Engines bind their Device/CostMeter model before the
  /// solve; unbound pids still aggregate counts and seconds but carry no
  /// decomposition.
  void bind_machine(std::uint32_t pid, const vgpu::MachineModel& model) {
    machines_[pid] = model;
  }

  void emit(trace::TraceEvent event) override;

  /// Drop all aggregated state (bound machines are kept).
  void clear();

  /// Assemble the ranked, classified snapshot of everything consumed.
  [[nodiscard]] ProfileReport report() const;

 private:
  struct KernelAgg {
    std::size_t calls = 0;
    double seconds = 0.0;
    double flops = 0.0, bytes = 0.0;
    double launch_seconds = 0.0, compute_seconds = 0.0, memory_seconds = 0.0;
    double class_seconds[3] = {0.0, 0.0, 0.0};  ///< indexed by BoundClass
    std::size_t scalar_bytes = 8;               ///< last declared precision
  };
  struct PhaseAgg {
    std::size_t count = 0;
    double total_seconds = 0.0;
    double self_seconds = 0.0;
  };
  struct StageAgg {
    std::size_t count = 0;
    double seconds = 0.0;
  };
  struct RequestAgg {
    std::vector<std::pair<std::string, double>> stages;
    double stage_sum = 0.0;
    double latency_seconds = 0.0;
    bool has_latency = false;
    bool deadline_missed = false;
  };
  /// One open B/E span on a (pid, tid) track.
  struct Frame {
    std::string name;
    std::string path;  ///< semicolon-joined stack down to this span
    double begin_ts = 0.0;
    double child_seconds = 0.0;  ///< time of enclosed spans + slices
  };

  static std::uint64_t track_key(std::uint32_t pid, std::uint32_t tid) {
    return (std::uint64_t(pid) << 32) | tid;
  }

  void on_complete(const trace::TraceEvent& e);
  void on_kernel_slice(const trace::TraceEvent& e);
  void on_stage_slice(const trace::TraceEvent& e);
  /// Attribute a completed child (span or slice) to the innermost open
  /// span on the track, and return the flamegraph path for `name`.
  std::string attribute_child(std::uint64_t key, std::string_view name,
                              double dur);

  trace::TraceSink* downstream_ = nullptr;  ///< borrowed; may be null
  std::map<std::uint32_t, vgpu::MachineModel> machines_;
  /// pid -> kernel name -> aggregate (emission-order accumulation).
  std::map<std::uint32_t, std::map<std::string, KernelAgg, std::less<>>>
      kernels_;
  std::map<std::uint32_t, double> kernel_seconds_;
  std::map<std::uint32_t, double> transfer_seconds_;
  std::map<std::string, PhaseAgg, std::less<>> phases_;
  std::map<std::string, StageAgg, std::less<>> stages_;
  std::map<std::uint32_t, RequestAgg> requests_;  ///< keyed by track tid
  std::map<std::uint64_t, std::string> thread_labels_;
  std::map<std::uint64_t, std::vector<Frame>> stacks_;
  std::map<std::string, double, std::less<>> flame_;
};

/// Engine wiring helper: when `profiler` is attached, chain any existing
/// `sink` downstream of it, bind the machine model behind `pid`, and
/// return the profiler as the sink to attach; otherwise return `sink`
/// unchanged. Keeps the four engines' wiring identical and one branch on
/// the disabled path.
inline trace::TraceSink* chain(Profiler* profiler, trace::TraceSink* sink,
                               std::uint32_t pid,
                               const vgpu::MachineModel& model) {
  if (profiler == nullptr) return sink;
  profiler->set_downstream(sink);
  profiler->bind_machine(pid, model);
  return profiler;
}

}  // namespace gs::profile
