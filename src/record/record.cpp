#include "record/record.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace gs::record {
namespace {

// --- little-endian field-by-field serialization ---------------------------
// Fixed-width fields written byte-by-byte: no struct padding, no host
// endianness in the file, and no timestamps anywhere — identical runs
// produce byte-identical files.

constexpr char kMagic[8] = {'G', 'S', 'R', 'E', 'C', '0', '0', '1'};
constexpr std::uint32_t kVersion = 1;

void put_bytes(std::ostream& os, const void* p, std::size_t len) {
  os.write(static_cast<const char*>(p), static_cast<std::streamsize>(len));
}

void put_u8(std::ostream& os, std::uint8_t v) { put_bytes(os, &v, 1); }

void put_u32(std::ostream& os, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  put_bytes(os, b, 4);
}

void put_u64(std::ostream& os, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  put_bytes(os, b, 8);
}

void put_f64(std::ostream& os, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(os, bits);
}

void put_str(std::ostream& os, const std::string& s) {
  put_u32(os, static_cast<std::uint32_t>(s.size()));
  put_bytes(os, s.data(), s.size());
}

void get_bytes(std::istream& is, void* p, std::size_t len) {
  is.read(static_cast<char*>(p), static_cast<std::streamsize>(len));
  GS_CHECK_MSG(is.good(), "gs-record-v1: truncated stream");
}

std::uint8_t get_u8(std::istream& is) {
  std::uint8_t v;
  get_bytes(is, &v, 1);
  return v;
}

std::uint32_t get_u32(std::istream& is) {
  unsigned char b[4];
  get_bytes(is, b, 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{b[i]} << (8 * i);
  return v;
}

std::uint64_t get_u64(std::istream& is) {
  unsigned char b[8];
  get_bytes(is, b, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{b[i]} << (8 * i);
  return v;
}

double get_f64(std::istream& is) {
  const std::uint64_t bits = get_u64(is);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string get_str(std::istream& is) {
  const std::uint32_t len = get_u32(is);
  GS_CHECK_MSG(len <= (1u << 20), "gs-record-v1: implausible string length");
  std::string s(len, '\0');
  if (len > 0) get_bytes(is, s.data(), len);
  return s;
}

void put_record(std::ostream& os, const DecisionRecord& r) {
  put_u8(os, static_cast<std::uint8_t>(r.kind));
  put_u8(os, r.phase);
  put_u8(os, r.bland);
  put_u32(os, r.lane);
  put_u64(os, r.iteration);
  put_u32(os, r.entering);
  put_u32(os, r.leaving_row);
  put_u32(os, r.leaving_col);
  put_u32(os, r.ratio_ties);
  put_f64(os, r.reduced_cost);
  put_f64(os, r.pivot_value);
  put_f64(os, r.theta);
}

DecisionRecord get_record(std::istream& is) {
  DecisionRecord r;
  const std::uint8_t kind = get_u8(is);
  GS_CHECK_MSG(kind <= 2, "gs-record-v1: bad record kind");
  r.kind = static_cast<RecordKind>(kind);
  r.phase = get_u8(is);
  r.bland = get_u8(is);
  r.lane = get_u32(is);
  r.iteration = get_u64(is);
  r.entering = get_u32(is);
  r.leaving_row = get_u32(is);
  r.leaving_col = get_u32(is);
  r.ratio_ties = get_u32(is);
  r.reduced_cost = get_f64(is);
  r.pivot_value = get_f64(is);
  r.theta = get_f64(is);
  return r;
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

std::string describe(const DecisionRecord& r) {
  std::ostringstream os;
  switch (r.kind) {
    case RecordKind::kPivot:
      os << "pivot it=" << r.iteration;
      if (r.lane != 0) os << " lane=" << r.lane;
      os << " phase=" << int{r.phase} << " enter=" << r.entering
         << " leave=(row " << r.leaving_row << ", col " << r.leaving_col
         << ") d=" << fmt(r.reduced_cost) << " alpha=" << fmt(r.pivot_value)
         << " theta=" << fmt(r.theta) << " ties=" << r.ratio_ties;
      if (r.bland != 0) os << " [bland]";
      break;
    case RecordKind::kRefactor:
      os << "refactor it=" << r.iteration;
      if (r.lane != 0) os << " lane=" << r.lane;
      break;
    case RecordKind::kPhase:
      os << "phase-" << int{r.phase} << " begins";
      if (r.lane != 0) os << " lane=" << r.lane;
      break;
  }
  return os.str();
}

// --- Recording IO ---------------------------------------------------------

void Recording::write(std::ostream& os) const {
  put_bytes(os, kMagic, sizeof(kMagic));
  put_u32(os, kVersion);
  put_u32(os, header.real_bits);
  put_u64(os, header.m);
  put_u64(os, header.n);
  put_u64(os, header.seed);
  put_u64(os, header.digest);
  put_str(os, header.engine);
  put_str(os, header.status);
  put_u32(os, header.post_mortem ? 1u : 0u);
  put_u64(os, header.first_index);
  put_u64(os, header.total_records);
  put_u64(os, records.size());
  for (const DecisionRecord& r : records) put_record(os, r);
  put_u64(os, basis.size());
  for (std::uint32_t v : basis) put_u32(os, v);
  GS_CHECK_MSG(os.good(), "gs-record-v1: write failed");
}

void Recording::write_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  GS_CHECK_MSG(os.is_open(), "cannot open recording for write: " + path);
  write(os);
}

Recording Recording::read(std::istream& is) {
  char magic[8];
  get_bytes(is, magic, sizeof(magic));
  GS_CHECK_MSG(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
               "not a gs-record-v1 file (bad magic)");
  const std::uint32_t version = get_u32(is);
  GS_CHECK_MSG(version == kVersion, "unsupported gs-record version");
  Recording rec;
  rec.header.real_bits = get_u32(is);
  rec.header.m = get_u64(is);
  rec.header.n = get_u64(is);
  rec.header.seed = get_u64(is);
  rec.header.digest = get_u64(is);
  rec.header.engine = get_str(is);
  rec.header.status = get_str(is);
  rec.header.post_mortem = (get_u32(is) & 1u) != 0;
  rec.header.first_index = get_u64(is);
  rec.header.total_records = get_u64(is);
  const std::uint64_t count = get_u64(is);
  GS_CHECK_MSG(count <= (1ull << 32), "gs-record-v1: implausible record count");
  rec.records.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) rec.records.push_back(get_record(is));
  const std::uint64_t basis_len = get_u64(is);
  GS_CHECK_MSG(basis_len <= (1ull << 32), "gs-record-v1: implausible basis length");
  rec.basis.reserve(static_cast<std::size_t>(basis_len));
  for (std::uint64_t i = 0; i < basis_len; ++i) rec.basis.push_back(get_u32(is));
  return rec;
}

Recording Recording::read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  GS_CHECK_MSG(is.is_open(), "cannot open recording: " + path);
  return read(is);
}

// --- ReplayMismatch -------------------------------------------------------

std::string ReplayMismatch::describe() const {
  std::ostringstream os;
  switch (why) {
    case Why::kHeader:
      os << "replay mismatch: header disagrees before any decision (" << note
         << ")";
      break;
    case Why::kValueMismatch:
      os << "replay mismatch at record " << index << " (iteration "
         << expected.iteration << "):\n  expected: " << record::describe(expected)
         << "\n  actual:   " << record::describe(actual);
      break;
    case Why::kExtraRecord:
      os << "replay mismatch at record " << index
         << ": live run produced an extra decision past the reference end:"
         << "\n  actual:   " << record::describe(actual);
      break;
    case Why::kMissingRecord:
      os << "replay mismatch at record " << index
         << ": live run ended before the reference did:\n  expected: "
         << record::describe(expected);
      break;
  }
  return os.str();
}

// --- Recorder -------------------------------------------------------------

Recorder Recorder::replaying(Recording reference) {
  Recorder r;
  r.replay_ = true;
  r.ref_ = std::move(reference);
  return r;
}

void Recorder::set_seed(std::uint64_t seed) { rec_.header.seed = seed; }

void Recorder::set_post_mortem(std::string path, std::size_t window) {
  post_mortem_path_ = std::move(path);
  post_mortem_window_ = window;
}

void Recorder::begin_solve(std::string_view engine, std::uint32_t real_bits,
                           std::size_t m, std::size_t n_aug,
                           std::uint64_t digest) {
  rec_.header.engine = std::string(engine);
  rec_.header.real_bits = real_bits;
  rec_.header.m = m;
  rec_.header.n = n_aug;
  rec_.header.digest = digest;
  rec_.records.clear();
  rec_.basis.clear();
  rec_.header.status.clear();
  rec_.header.first_index = 0;
  rec_.header.total_records = 0;
  verified_ = 0;
  mismatch_.reset();
  dumped_ = false;
  if (replay_) {
    std::string note;
    if (ref_.header.engine != engine) {
      note = "engine: recorded '" + ref_.header.engine + "' vs live '" +
             std::string(engine) + "'";
    } else if (ref_.header.real_bits != real_bits) {
      note = "real width: recorded " + std::to_string(ref_.header.real_bits) +
             "-bit vs live " + std::to_string(real_bits) + "-bit";
    } else if (ref_.header.m != m || ref_.header.n != n_aug) {
      note = "problem shape differs";
    } else if (ref_.header.digest != digest) {
      note = "problem digest differs (different instance)";
    }
    if (!note.empty()) {
      mismatch_ = ReplayMismatch{ReplayMismatch::Why::kHeader, 0, {}, {},
                                 std::move(note)};
    }
  }
}

void Recorder::push(const DecisionRecord& r) {
  if (!replay_) {
    rec_.records.push_back(r);
    return;
  }
  if (mismatch_.has_value()) return;  // report only the first deviation
  const std::uint64_t idx = verified_;
  if (idx >= ref_.records.size()) {
    mismatch_ = ReplayMismatch{ReplayMismatch::Why::kExtraRecord, idx, {}, r,
                               "reference has " +
                                   std::to_string(ref_.records.size()) +
                                   " records"};
    return;
  }
  const DecisionRecord& expected = ref_.records[idx];
  if (!(expected == r)) {
    mismatch_ =
        ReplayMismatch{ReplayMismatch::Why::kValueMismatch, idx, expected, r, ""};
    return;
  }
  ++verified_;
}

void Recorder::begin_phase(std::uint8_t phase, std::uint32_t lane) {
  DecisionRecord r;
  r.kind = RecordKind::kPhase;
  r.phase = phase;
  r.lane = lane;
  push(r);
}

void Recorder::record_pivot(const DecisionRecord& r) { push(r); }

void Recorder::record_refactor(std::uint64_t iteration, std::uint32_t lane) {
  DecisionRecord r;
  r.kind = RecordKind::kRefactor;
  r.iteration = iteration;
  r.lane = lane;
  push(r);
}

void Recorder::end_solve(std::string_view status, bool optimal,
                         std::uint64_t health_warnings,
                         std::span<const std::uint32_t> basis) {
  if (replay_) {
    if (!mismatch_.has_value() && verified_ < ref_.records.size()) {
      mismatch_ = ReplayMismatch{ReplayMismatch::Why::kMissingRecord, verified_,
                                 ref_.records[verified_],
                                 {},
                                 "live run recorded " +
                                     std::to_string(verified_) + " of " +
                                     std::to_string(ref_.records.size())};
    }
    return;
  }
  rec_.header.status = std::string(status);
  rec_.header.total_records = rec_.records.size();
  rec_.basis.assign(basis.begin(), basis.end());
  if (!post_mortem_path_.empty() && (!optimal || health_warnings > 0)) {
    Recording window;
    window.header = rec_.header;
    window.header.post_mortem = true;
    const std::size_t total = rec_.records.size();
    const std::size_t keep = std::min(post_mortem_window_, total);
    window.header.first_index = total - keep;
    window.records.assign(rec_.records.end() - static_cast<std::ptrdiff_t>(keep),
                          rec_.records.end());
    window.basis = rec_.basis;
    window.write_file(post_mortem_path_);
    dumped_ = true;
  }
}

// --- diff -----------------------------------------------------------------

namespace {
bool same_pivot(const DecisionRecord& a, const DecisionRecord& b) {
  return a.lane == b.lane && a.entering == b.entering &&
         a.leaving_row == b.leaving_row && a.leaving_col == b.leaving_col;
}
}  // namespace

DiffResult diff(const Recording& a, const Recording& b) {
  DiffResult out;
  if (a.header.digest != b.header.digest || a.header.m != b.header.m ||
      a.header.n != b.header.n) {
    out.comparable = false;
    out.note = "recordings describe different problems";
    return out;
  }
  std::vector<const DecisionRecord*> pa, pb;
  for (const DecisionRecord& r : a.records)
    if (r.kind == RecordKind::kPivot) pa.push_back(&r);
  for (const DecisionRecord& r : b.records)
    if (r.kind == RecordKind::kPivot) pb.push_back(&r);
  const std::size_t n = std::min(pa.size(), pb.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!same_pivot(*pa[i], *pb[i])) {
      out.diverged = true;
      out.index = i;
      out.a = *pa[i];
      out.b = *pb[i];
      out.common = i;
      return out;
    }
    out.max_reduced_cost_delta =
        std::max(out.max_reduced_cost_delta,
                 std::abs(pa[i]->reduced_cost - pb[i]->reduced_cost));
    out.max_theta_delta =
        std::max(out.max_theta_delta, std::abs(pa[i]->theta - pb[i]->theta));
  }
  out.common = n;
  if (pa.size() != pb.size()) {
    out.diverged = true;
    out.index = n;
    if (n < pa.size()) out.a = *pa[n];
    if (n < pb.size()) out.b = *pb[n];
    out.note = "pivot counts differ (" + std::to_string(pa.size()) + " vs " +
               std::to_string(pb.size()) + ")";
  }
  return out;
}

std::string DiffResult::describe() const {
  std::ostringstream os;
  if (!comparable) {
    os << "recordings are not comparable: " << note;
    return os.str();
  }
  if (!diverged) {
    os << "recordings agree on all " << common << " pivots"
       << " (max |d_q delta| = " << fmt(max_reduced_cost_delta)
       << ", max |theta delta| = " << fmt(max_theta_delta) << ")";
    return os.str();
  }
  os << "runs diverge at pivot " << index << " after " << common
     << " identical pivots";
  if (!note.empty()) os << " (" << note << ")";
  os << "\n  A: " << (a ? record::describe(*a) : std::string("<ended>"))
     << "\n  B: " << (b ? record::describe(*b) : std::string("<ended>"));
  return os.str();
}

}  // namespace gs::record
