// Decision-log flight recorder (OBSERVABILITY.md, "Recorder").
//
// A Recording is a compact binary log (schema `gs-record-v1`) of every
// decision a simplex solve makes: which column entered, which row/column
// left, the pivot value, how many ratio-test rows tied at the winning
// ratio, whether Bland's rule was active, refactorization events and phase
// transitions — plus a header identifying the engine, the real-number
// width, the problem shape/digest and the RNG seed that generated it.
//
// Engines stream into a Recorder borrowed through
// `SolverOptions::recorder` (null = off; the disabled path is a single
// branch per decision site, so results and DeviceStats are bit-identical
// with and without a recorder — the same guarantee trace/checker/metrics
// give). On top of the log sit three tools:
//
//  * replay  — `Recorder::replaying(reference)` re-verifies a new solve
//              against a recorded decision sequence and reports the first
//              mismatch with full context (both records, index, iteration).
//  * diff    — `record::diff(a, b)` aligns two recordings (float vs
//              double, host vs device) and reports the first divergent
//              pivot with both candidates and their reduced costs/ratios.
//  * post-mortem — `Recorder::set_post_mortem(path, window)` auto-dumps
//              the last-K-decision window plus a basis snapshot to a
//              replayable artifact when the solve ends non-optimal or with
//              health warnings.
//
// The byte format contains no timestamps, so two recordings of identical
// runs are byte-identical (ci.sh exploits this with `cmp`).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace gs::record {

/// What a DecisionRecord describes.
enum class RecordKind : std::uint8_t {
  kPivot = 0,     ///< a basis change (entering/leaving pair)
  kRefactor = 1,  ///< basis refactorization / reinversion event
  kPhase = 2,     ///< phase transition (phase field = new phase)
};

[[nodiscard]] constexpr std::string_view to_string(RecordKind k) noexcept {
  switch (k) {
    case RecordKind::kPivot: return "pivot";
    case RecordKind::kRefactor: return "refactor";
    case RecordKind::kPhase: return "phase";
  }
  return "?";
}

/// One logged decision. POD; serialized field-by-field (no padding bytes
/// reach the file). For kRefactor/kPhase only `kind`, `phase`, `lane` and
/// `iteration` are meaningful; the rest are zero.
struct DecisionRecord {
  RecordKind kind = RecordKind::kPivot;
  std::uint8_t phase = 0;  ///< 1 or 2
  std::uint8_t bland = 0;  ///< 1 if Bland's rule picked the entering column
  std::uint32_t lane = 0;  ///< batch-engine lane; 0 for scalar engines

  std::uint64_t iteration = 0;  ///< pivot ordinal (per-lane for batch)

  std::uint32_t entering = 0;     ///< entering column q
  std::uint32_t leaving_row = 0;  ///< leaving row p
  std::uint32_t leaving_col = 0;  ///< basic[p] before the pivot
  std::uint32_t ratio_ties = 0;   ///< rows tied at the winning ratio (>= 1)

  double reduced_cost = 0.0;  ///< d_q at selection time
  double pivot_value = 0.0;   ///< alpha_p (the pivot element)
  double theta = 0.0;         ///< ratio-test step length

  friend bool operator==(const DecisionRecord&, const DecisionRecord&) = default;
};

/// One line describing a record, for mismatch/diff reports.
[[nodiscard]] std::string describe(const DecisionRecord& r);

/// File header: identifies the run a log belongs to.
struct RecordingHeader {
  std::uint32_t real_bits = 64;  ///< sizeof(Real) * 8 of the engine
  std::uint64_t m = 0;           ///< constraint rows
  std::uint64_t n = 0;           ///< augmented columns (n_aug)
  std::uint64_t seed = 0;        ///< RNG seed of the generated instance (0 if n/a)
  std::uint64_t digest = 0;      ///< problem digest (decision_digest())
  std::string engine;            ///< e.g. "device-revised<float>"
  std::string status;            ///< final SolveStatus string ("" if truncated)
  bool post_mortem = false;      ///< true for a post-mortem window dump
  std::uint64_t first_index = 0; ///< global index of records[0] (window dumps)
  std::uint64_t total_records = 0;  ///< decisions in the full run

  friend bool operator==(const RecordingHeader&, const RecordingHeader&) = default;
};

/// A decision log: header + records + final basis snapshot.
struct Recording {
  RecordingHeader header;
  std::vector<DecisionRecord> records;
  /// Basis snapshot at end of solve (basic[i] per row); empty if the
  /// engine does not expose one.
  std::vector<std::uint32_t> basis;

  void write(std::ostream& os) const;
  void write_file(const std::string& path) const;
  [[nodiscard]] static Recording read(std::istream& is);
  [[nodiscard]] static Recording read_file(const std::string& path);
};

/// First point where a replay deviated from its reference recording.
struct ReplayMismatch {
  enum class Why : std::uint8_t {
    kHeader,         ///< engine/shape/digest mismatch before any decision
    kValueMismatch,  ///< decision at `index` differs from the reference
    kExtraRecord,    ///< live run produced more decisions than the reference
    kMissingRecord,  ///< live run ended before the reference did
  };
  Why why = Why::kValueMismatch;
  std::uint64_t index = 0;  ///< position in the reference record stream
  DecisionRecord expected;  ///< reference record (if any)
  DecisionRecord actual;    ///< live record (if any)
  std::string note;

  [[nodiscard]] std::string describe() const;
};

/// Collects decisions from one solve; or, in replay mode, verifies them
/// against a reference recording. Not thread-safe (one solve at a time).
class Recorder {
 public:
  /// Record mode: accumulate decisions into recording().
  Recorder() = default;

  /// Replay-verify mode: each record_* call is checked against `reference`;
  /// the first deviation is kept (mismatch()) and later calls are ignored.
  [[nodiscard]] static Recorder replaying(Recording reference);

  /// Stamp the generator seed into the header (record mode).
  void set_seed(std::uint64_t seed);

  /// Arm post-mortem dumps: if end_solve() sees a non-optimal status or
  /// health warnings, write the last `window` decisions + basis snapshot
  /// to `path` as a replayable artifact (header.post_mortem = true).
  void set_post_mortem(std::string path, std::size_t window = 64);

  // --- engine-facing hooks -------------------------------------------------
  void begin_solve(std::string_view engine, std::uint32_t real_bits,
                   std::size_t m, std::size_t n_aug, std::uint64_t digest);
  void begin_phase(std::uint8_t phase, std::uint32_t lane = 0);
  void record_pivot(const DecisionRecord& r);
  void record_refactor(std::uint64_t iteration, std::uint32_t lane = 0);
  void end_solve(std::string_view status, bool optimal,
                 std::uint64_t health_warnings,
                 std::span<const std::uint32_t> basis);

  // --- inspection ----------------------------------------------------------
  [[nodiscard]] bool replay_mode() const noexcept { return replay_; }
  [[nodiscard]] const Recording& recording() const noexcept { return rec_; }
  [[nodiscard]] const Recording& reference() const noexcept { return ref_; }
  /// Replay mode: decisions verified so far.
  [[nodiscard]] std::uint64_t verified() const noexcept { return verified_; }
  [[nodiscard]] bool mismatched() const noexcept { return mismatch_.has_value(); }
  [[nodiscard]] const ReplayMismatch& mismatch() const { return *mismatch_; }
  /// True once end_solve() wrote a post-mortem artifact.
  [[nodiscard]] bool dumped_post_mortem() const noexcept { return dumped_; }

 private:
  void push(const DecisionRecord& r);

  bool replay_ = false;
  Recording rec_;   // record mode: the log under construction
  Recording ref_;   // replay mode: the reference
  std::uint64_t verified_ = 0;
  std::optional<ReplayMismatch> mismatch_;
  std::string post_mortem_path_;
  std::size_t post_mortem_window_ = 64;
  bool dumped_ = false;
};

/// Outcome of aligning two recordings.
struct DiffResult {
  /// False if the headers describe different problems (digest/shape) —
  /// the pivot comparison is then meaningless and skipped.
  bool comparable = true;
  bool diverged = false;
  std::uint64_t index = 0;  ///< pivot ordinal of the first divergence
  std::optional<DecisionRecord> a, b;  ///< the competing pivot candidates
  std::size_t common = 0;   ///< pivots agreeing before the divergence
  /// Largest |delta| over the common prefix (path-identical runs in
  /// different precisions differ only here).
  double max_reduced_cost_delta = 0.0;
  double max_theta_delta = 0.0;
  std::string note;

  [[nodiscard]] std::string describe() const;
};

/// Align two recordings on their pivot sequences (kPivot records, compared
/// on lane/entering/leaving, not on floating-point payloads) and report the
/// first divergent iteration with both candidates.
[[nodiscard]] DiffResult diff(const Recording& a, const Recording& b);

}  // namespace gs::record
