#include "vgpu/analyze/analyze.hpp"

#include <algorithm>
#include <cstring>
#include <set>
#include <sstream>
#include <tuple>

#include "metrics/metrics.hpp"
#include "support/error.hpp"

namespace gs::vgpu::analyze {

// ---- IntervalSet ---------------------------------------------------------

void IntervalSet::add(std::uint64_t lo, std::uint64_t hi) {
  if (lo >= hi) return;
  // Find the first interval ending at or after lo; merge everything that
  // touches [lo, hi).
  auto it = std::lower_bound(
      ivals_.begin(), ivals_.end(), lo,
      [](const auto& iv, std::uint64_t v) { return iv.second < v; });
  auto insert_at = it;
  while (it != ivals_.end() && it->first <= hi) {
    lo = std::min(lo, it->first);
    hi = std::max(hi, it->second);
    it = ivals_.erase(it);
  }
  ivals_.insert(insert_at, {lo, hi});
}

bool IntervalSet::covers(std::uint64_t lo, std::uint64_t hi) const {
  if (lo >= hi) return true;
  auto it = std::lower_bound(
      ivals_.begin(), ivals_.end(), lo,
      [](const auto& iv, std::uint64_t v) { return iv.second < v; });
  // Intervals are disjoint and sorted, so [lo, hi) is covered iff one
  // interval contains it entirely (it->second > lo by construction).
  return it != ivals_.end() && it->first <= lo && hi <= it->second;
}

std::pair<std::uint64_t, std::uint64_t> IntervalSet::first_gap(
    std::uint64_t lo, std::uint64_t hi) const {
  std::uint64_t at = lo;
  for (const auto& iv : ivals_) {
    if (iv.second <= at) continue;
    if (iv.first > at) break;  // gap starts at `at`
    at = iv.second;            // covered up to here
    if (at >= hi) return {hi, hi};
  }
  if (at >= hi) return {hi, hi};
  // Gap runs until the next interval begins (or hi).
  std::uint64_t gap_end = hi;
  for (const auto& iv : ivals_) {
    if (iv.first > at) {
      gap_end = std::min(gap_end, iv.first);
      break;
    }
  }
  return {at, gap_end};
}

std::string_view to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kKernel: return "kernel";
    case NodeKind::kHost: return "host";
    case NodeKind::kH2d: return "h2d";
    case NodeKind::kD2h: return "d2h";
    case NodeKind::kAlloc: return "alloc";
    case NodeKind::kFree: return "free";
    case NodeKind::kFence: return "fence";
  }
  return "?";
}

namespace {

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

void merge_sorted(std::vector<std::pair<std::uint64_t, std::uint64_t>>& v) {
  if (v.empty()) return;
  std::sort(v.begin(), v.end());
  std::size_t out = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i].first <= v[out].second) {
      v[out].second = std::max(v[out].second, v[i].second);
    } else {
      v[++out] = v[i];
    }
  }
  v.resize(out + 1);
}

}  // namespace

// ---- CaptureLog ----------------------------------------------------------

std::uint32_t CaptureLog::id_for_locked(const void* base,
                                        std::uint64_t min_bytes,
                                        std::size_t elem_size) {
  auto it = live_.find(base);
  if (it != live_.end()) {
    BufferInfo& info = buffers_[it->second];
    if (info.preexisting) info.bytes = std::max(info.bytes, min_bytes);
    if (info.elem_size == 0) info.elem_size = elem_size;
    return it->second;
  }
  // First sight of a buffer that was allocated before capture attached:
  // register it as pre-existing (contents assumed initialized — e.g. a
  // constraint matrix uploaded at engine construction).
  const auto id = static_cast<std::uint32_t>(buffers_.size());
  BufferInfo info;
  info.label = "#" + std::to_string(id);
  info.bytes = min_bytes;
  info.elem_size = elem_size;
  info.preexisting = true;
  info.alloc_seq = seq_;
  buffers_.push_back(std::move(info));
  live_.emplace(base, id);
  return id;
}

Node& CaptureLog::append_locked(NodeKind kind, std::string name) {
  Node n;
  n.kind = kind;
  n.name = std::move(name);
  n.seq = seq_++;
  n.stream = stream_;
  nodes_.push_back(std::move(n));
  return nodes_.back();
}

void CaptureLog::retire_pending_locked() {
  for (auto& [id, pa] : pending_access_) {
    merge_sorted(pa.reads);
    merge_sorted(pa.writes);
    merge_sorted(pa.prior_reads);
    for (const auto& [lo, hi] : pa.reads) pending_.reads.push_back({id, lo, hi});
    for (const auto& [lo, hi] : pa.writes) {
      pending_.writes.push_back({id, lo, hi});
    }
    for (const auto& [lo, hi] : pa.prior_reads) {
      pending_.prior_reads.push_back({id, lo, hi});
    }
  }
  pending_access_.clear();
  pending_.seq = seq_++;
  pending_.stream = stream_;
  nodes_.push_back(std::move(pending_));
  pending_ = Node{};
}

void CaptureLog::flush_host_locked() {
  if (!host_pending_) return;
  host_pending_ = false;
  retire_pending_locked();
}

void CaptureLog::begin_launch(std::string_view kernel, double declared_flops,
                              double declared_bytes, std::size_t threads,
                              std::size_t block_size) {
  (void)block_size;  // block structure is the dynamic checker's domain
  std::lock_guard<std::mutex> lock(mu_);
  GS_CHECK_MSG(!in_launch_, "nested launch capture");
  flush_host_locked();
  pending_ = Node{};
  pending_.kind = NodeKind::kKernel;
  pending_.name = std::string(kernel);
  pending_.declared_flops = declared_flops;
  pending_.declared_bytes = declared_bytes;
  pending_.threads = threads;
  in_launch_ = true;
}

void CaptureLog::end_launch() {
  std::lock_guard<std::mutex> lock(mu_);
  in_launch_ = false;
  retire_pending_locked();
  ++launches_;
}

void CaptureLog::note_range(const void* base, std::size_t extent,
                            check::ElemKind kind, std::size_t elem_size,
                            std::size_t lo, std::size_t hi, bool is_write) {
  (void)kind;
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint32_t id =
      id_for_locked(base, static_cast<std::uint64_t>(extent) * elem_size,
                    elem_size);
  if (!in_launch_ && !host_pending_) {
    // Span access between launches: scalar glue the engines run on the
    // host (e.g. reading the value at a just-found index). Accumulate
    // into one "<host>" node until the next stream event.
    pending_ = Node{};
    pending_.kind = NodeKind::kHost;
    pending_.name = "<host>";
    host_pending_ = true;
  }
  note_range_locked(id, static_cast<std::uint64_t>(lo) * elem_size,
                    static_cast<std::uint64_t>(hi) * elem_size, is_write);
}

void CaptureLog::note_range_locked(std::uint32_t id, std::uint64_t lo,
                                   std::uint64_t hi, bool is_write) {
  PendingAccess& pa = pending_access_[id];
  auto& v = is_write ? pa.writes : pa.reads;
  if (!v.empty() && v.back().second == lo) {
    v.back().second = hi;  // the common stride-1 case
  } else {
    v.emplace_back(lo, hi);
  }
  // Intra-launch ordering: a block's accesses run in program order, so a
  // read of bytes the SAME block wrote earlier in this launch observes
  // those writes, not pre-launch state. Host glue between launches is
  // single-threaded — one shared key gives it the same treatment.
  const std::uint32_t blk = in_launch_ ? check::detail::tls_block : 0;
  if (is_write) {
    pa.block_writes[blk].add(lo, hi);
    return;
  }
  const auto it = pa.block_writes.find(blk);
  std::uint64_t at = lo;
  while (at < hi) {
    std::uint64_t gap_lo = at, gap_hi = hi;
    if (it != pa.block_writes.end()) {
      std::tie(gap_lo, gap_hi) = it->second.first_gap(at, hi);
      if (gap_lo >= hi) break;  // remainder fully covered by own writes
    }
    auto& pr = pa.prior_reads;
    if (!pr.empty() && pr.back().second >= gap_lo) {
      pr.back().second = std::max(pr.back().second, gap_hi);
    } else {
      pr.emplace_back(gap_lo, gap_hi);
    }
    at = gap_hi;
  }
}

void CaptureLog::note_oob(std::size_t index, std::size_t extent,
                          bool is_write) {
  (void)index, (void)extent, (void)is_write;
}

void CaptureLog::on_alloc(const void* base, std::size_t bytes,
                          std::size_t elem_size) {
  std::lock_guard<std::mutex> lock(mu_);
  flush_host_locked();
  if (base == nullptr) return;  // zero-sized buffers carry no dataflow
  const auto id = static_cast<std::uint32_t>(buffers_.size());
  BufferInfo info;
  info.label = "#" + std::to_string(id);
  info.bytes = bytes;
  info.elem_size = elem_size;
  info.alloc_seq = seq_;
  buffers_.push_back(std::move(info));
  live_[base] = id;  // overwrite any stale mapping for a reused address
  append_locked(NodeKind::kAlloc, "alloc").buffer = id;
}

void CaptureLog::on_free(const void* base) {
  std::lock_guard<std::mutex> lock(mu_);
  flush_host_locked();
  if (base == nullptr) return;
  const std::uint32_t id = id_for_locked(base, 0, 0);
  buffers_[id].free_seq = static_cast<std::int64_t>(seq_);
  append_locked(NodeKind::kFree, "free").buffer = id;
  live_.erase(base);
}

void CaptureLog::on_h2d(const void* base, std::size_t lo_byte,
                        std::size_t hi_byte, const void* host_data) {
  std::lock_guard<std::mutex> lock(mu_);
  flush_host_locked();
  const std::uint32_t id = id_for_locked(base, hi_byte, 0);
  Node& n = append_locked(NodeKind::kH2d, "h2d");
  n.buffer = id;
  n.writes.push_back({id, lo_byte, hi_byte});
  n.content_hash = fnv1a(host_data, hi_byte - lo_byte);
  BufferInfo& info = buffers_[id];
  if (info.preexisting) info.bytes = std::max(info.bytes, hi_byte);
}

void CaptureLog::on_d2h(const void* base, std::size_t lo_byte,
                        std::size_t hi_byte) {
  std::lock_guard<std::mutex> lock(mu_);
  flush_host_locked();
  const std::uint32_t id = id_for_locked(base, hi_byte, 0);
  Node& n = append_locked(NodeKind::kD2h, "d2h");
  n.buffer = id;
  n.reads.push_back({id, lo_byte, hi_byte});
}

void CaptureLog::set_stream(std::uint32_t stream) {
  std::lock_guard<std::mutex> lock(mu_);
  flush_host_locked();
  stream_ = stream;
  stream_count_ = std::max(stream_count_, stream + 1);
}

void CaptureLog::fence() {
  std::lock_guard<std::mutex> lock(mu_);
  flush_host_locked();
  append_locked(NodeKind::kFence, "fence");
}

void CaptureLog::set_label(const void* base, std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint32_t id = id_for_locked(base, 0, 0);
  buffers_[id].label = std::move(label);
}

void CaptureLog::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  nodes_.clear();
  buffers_.clear();
  live_.clear();
  pending_access_.clear();
  pending_ = Node{};
  seq_ = 0;
  stream_ = 0;
  stream_count_ = 1;
  launches_ = 0;
  in_launch_ = false;
  host_pending_ = false;
}

const std::vector<Node>& CaptureLog::nodes() {
  std::lock_guard<std::mutex> lock(mu_);
  flush_host_locked();
  return nodes_;
}

// ---- analyze() -----------------------------------------------------------

namespace {

/// Last-writer records per buffer, pruned as writes are superseded.
struct WriteRec {
  std::uint64_t lo, hi;
  std::size_t node;
  bool read = false;
};

bool overlaps(std::uint64_t alo, std::uint64_t ahi, std::uint64_t blo,
              std::uint64_t bhi) {
  return alo < bhi && blo < ahi;
}

/// First overlapping byte range between two footprint lists on the same
/// buffer, or false.
bool find_conflict(const std::vector<Access>& a, const std::vector<Access>& b,
                   Access* out) {
  for (const Access& x : a) {
    for (const Access& y : b) {
      if (x.buffer == y.buffer && overlaps(x.lo, x.hi, y.lo, y.hi)) {
        *out = {x.buffer, std::max(x.lo, y.lo), std::min(x.hi, y.hi)};
        return true;
      }
    }
  }
  return false;
}

std::string human_bytes(double b) {
  std::ostringstream os;
  os.precision(3);
  if (b >= 1024.0 * 1024.0) {
    os << b / (1024.0 * 1024.0) << " MiB";
  } else if (b >= 1024.0) {
    os << b / 1024.0 << " KiB";
  } else {
    os << b << " B";
  }
  return os.str();
}

}  // namespace

Report analyze(CaptureLog& log, const AnalyzeConfig& cfg) {
  const std::vector<Node>& nodes = log.nodes();
  const std::vector<BufferInfo>& bufs = log.buffers();

  Report rep;
  rep.buffer_table = bufs;
  rep.node_count = nodes.size();

  const auto skip_lint = [&cfg](const std::string& name) {
    return std::find(cfg.lint_skip.begin(), cfg.lint_skip.end(), name) !=
           cfg.lint_skip.end();
  };

  // ---- Replay: initialized sets, last writers, redundancy, lifetime. ----
  std::vector<IntervalSet> initialized(bufs.size());
  std::vector<std::vector<WriteRec>> writers(bufs.size());
  // Redundancy state keyed by exact transfer range: engines re-issue the
  // same (buffer, range) shapes every iteration, so exact matching finds
  // real waste without interval algebra. A device write overlapping the
  // range invalidates the entry.
  std::map<std::tuple<std::uint32_t, std::uint64_t, std::uint64_t>,
           std::pair<std::uint64_t, bool>>
      h2d_seen;  // -> (content hash, still valid)
  std::map<std::tuple<std::uint32_t, std::uint64_t, std::uint64_t>, bool>
      d2h_clean;  // -> no device write since last download
  std::map<std::pair<std::string, std::uint32_t>, DeadStore> dead;
  std::map<std::pair<std::string, std::uint32_t>, RedundantTransfer> redundant;
  std::map<std::pair<std::string, std::uint32_t>, UninitRead> uninit;
  std::map<std::string, CostFinding> cost;
  std::set<std::pair<std::size_t, std::size_t>> raw_edges;

  std::uint64_t live = 0;
  for (const BufferInfo& b : bufs) {
    if (b.preexisting) live += b.bytes;  // sized by the bytes ever touched
  }
  std::uint64_t peak = live;

  const auto mark_read = [&](const Access& a, std::size_t node_idx) {
    for (WriteRec& w : writers[a.buffer]) {
      if (overlaps(w.lo, w.hi, a.lo, a.hi)) {
        w.read = true;
        raw_edges.emplace(w.node, node_idx);
      }
    }
  };

  const auto record_dead = [&](const WriteRec& w, std::uint32_t buffer) {
    rep.dead_store_bytes += w.hi - w.lo;
    DeadStore& d = dead[{nodes[w.node].name, buffer}];
    if (d.count == 0) {
      d.kernel = nodes[w.node].name;
      d.buffer = buffer;
      d.first_seq = nodes[w.node].seq;
    }
    d.bytes += w.hi - w.lo;
    ++d.count;
  };

  const auto do_write = [&](const Access& a, std::size_t node_idx) {
    // Invalidate transfer-redundancy state the write overlaps.
    for (auto& [key, st] : h2d_seen) {
      if (std::get<0>(key) == a.buffer &&
          overlaps(std::get<1>(key), std::get<2>(key), a.lo, a.hi)) {
        st.second = false;
      }
    }
    for (auto& [key, clean] : d2h_clean) {
      if (std::get<0>(key) == a.buffer &&
          overlaps(std::get<1>(key), std::get<2>(key), a.lo, a.hi)) {
        clean = false;
      }
    }
    // Writes this one fully supersedes: unread ones are dead stores; all
    // of them leave the last-writer list (which keeps it short).
    std::vector<WriteRec>& ws = writers[a.buffer];
    for (std::size_t k = 0; k < ws.size();) {
      if (ws[k].lo >= a.lo && ws[k].hi <= a.hi) {
        if (!ws[k].read) record_dead(ws[k], a.buffer);
        ws[k] = ws.back();
        ws.pop_back();
      } else {
        ++k;
      }
    }
    ws.push_back({a.lo, a.hi, node_idx, false});
    initialized[a.buffer].add(a.lo, a.hi);
  };

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    switch (n.kind) {
      case NodeKind::kAlloc:
        ++rep.alloc_count;
        live += bufs[n.buffer].bytes;
        peak = std::max(peak, live);
        break;
      case NodeKind::kFree: {
        ++rep.free_count;
        live -= std::min(live, bufs[n.buffer].bytes);
        // Written-never-read at free time is a dead store per the
        // definition; final-result buffers are read (downloaded) first.
        for (const WriteRec& w : writers[n.buffer]) {
          if (!w.read) record_dead(w, n.buffer);
        }
        writers[n.buffer].clear();
        initialized[n.buffer] = IntervalSet{};
        break;
      }
      case NodeKind::kH2d: {
        const Access& a = n.writes.front();
        rep.h2d_bytes += a.hi - a.lo;
        const auto key = std::make_tuple(a.buffer, a.lo, a.hi);
        auto it = h2d_seen.find(key);
        if (it != h2d_seen.end() && it->second.second &&
            it->second.first == n.content_hash) {
          rep.redundant_h2d_bytes += a.hi - a.lo;
          RedundantTransfer& r = redundant[{"h2d", a.buffer}];
          if (r.count == 0) {
            r.dir = "h2d";
            r.buffer = a.buffer;
            r.first_seq = n.seq;
          }
          r.bytes += a.hi - a.lo;
          ++r.count;
        }
        do_write(a, i);
        h2d_seen[key] = {n.content_hash, true};
        break;
      }
      case NodeKind::kD2h: {
        const Access& a = n.reads.front();
        rep.d2h_bytes += a.hi - a.lo;
        const auto key = std::make_tuple(a.buffer, a.lo, a.hi);
        auto it = d2h_clean.find(key);
        if (it != d2h_clean.end() && it->second) {
          rep.redundant_d2h_bytes += a.hi - a.lo;
          RedundantTransfer& r = redundant[{"d2h", a.buffer}];
          if (r.count == 0) {
            r.dir = "d2h";
            r.buffer = a.buffer;
            r.first_seq = n.seq;
          }
          r.bytes += a.hi - a.lo;
          ++r.count;
        }
        mark_read(a, i);
        d2h_clean[key] = true;
        break;
      }
      case NodeKind::kKernel:
      case NodeKind::kHost: {
        if (n.kind == NodeKind::kKernel) ++rep.kernel_nodes;
        double footprint = 0.0;
        for (const Access& a : n.reads) {
          footprint += static_cast<double>(a.hi - a.lo);
          mark_read(a, i);
        }
        // Uninitialized reads are judged on prior_reads only: bytes a
        // block read before ITS OWN first write in the launch observe
        // pre-launch state (x[i] += c); bytes it wrote first (fill-then-
        // reduce scratch) do not. Pre-existing buffers are assumed
        // initialized.
        if (n.kind == NodeKind::kKernel) {
          for (const Access& a : n.prior_reads) {
            if (!bufs[a.buffer].preexisting &&
                !initialized[a.buffer].covers(a.lo, a.hi)) {
              UninitRead& u = uninit[{n.name, a.buffer}];
              if (u.hi == 0 && u.lo == 0) {
                const auto gap = initialized[a.buffer].first_gap(a.lo, a.hi);
                u = {n.name, a.buffer, gap.first, gap.second, n.seq};
              }
            }
          }
        }
        for (const Access& a : n.writes) {
          footprint += static_cast<double>(a.hi - a.lo);
          do_write(a, i);
        }
        if (n.kind == NodeKind::kKernel && !skip_lint(n.name) &&
            (footprint >= cfg.cost_min_bytes ||
             n.declared_bytes >= cfg.cost_min_bytes) &&
            footprint > n.declared_bytes * cfg.cost_ratio_tol) {
          CostFinding& c = cost[n.name];
          if (c.count == 0) {
            c.kernel = n.name;
            c.declared_bytes = n.declared_bytes;
            c.footprint_bytes = footprint;
          }
          const double ratio =
              n.declared_bytes > 0.0 ? footprint / n.declared_bytes : 1e99;
          if (ratio > c.ratio) {
            c.ratio = ratio;
            c.declared_bytes = n.declared_bytes;
            c.footprint_bytes = footprint;
          }
          ++c.count;
        }
        break;
      }
      case NodeKind::kFence:
        break;
    }
  }
  rep.peak_live_bytes = peak;
  for (const BufferInfo& b : bufs) {
    if (b.preexisting) {
      ++rep.preexisting_count;
    } else if (b.free_seq < 0) {
      ++rep.live_at_end;
    }
  }
  rep.raw_edges = raw_edges.size();

  // ---- Hazard sweep: conflicting accesses with no ordering edge. ---------
  // A single-stream capture is totally ordered (every conflict has an
  // ordering edge by construction), so the pairwise sweep only runs when
  // more than one stream was used.
  if (log.stream_count() > 1) {
    std::vector<std::uint64_t> fence_seqs;
    for (const Node& n : nodes) {
      if (n.kind == NodeKind::kFence) fence_seqs.push_back(n.seq);
    }
    const auto ordered = [&](const Node& a, const Node& b) {
      if (a.stream == b.stream) return true;
      auto it = std::upper_bound(fence_seqs.begin(), fence_seqs.end(), a.seq);
      return it != fence_seqs.end() && *it < b.seq;
    };
    const auto add_hazard = [&](const char* kind, const Node& a,
                                const Node& b, const Access& where) {
      if (rep.hazards.size() >= cfg.max_findings) return;
      rep.hazards.push_back({kind, a.seq, b.seq, a.name, b.name, where.buffer,
                             where.lo, where.hi});
    };
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const Node& a = nodes[i];
      if (a.reads.empty() && a.writes.empty()) continue;
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        const Node& b = nodes[j];
        if (b.reads.empty() && b.writes.empty()) continue;
        if (ordered(a, b)) continue;
        Access where{};
        if (find_conflict(a.writes, b.reads, &where)) {
          add_hazard("RAW", a, b, where);
        }
        if (find_conflict(a.reads, b.writes, &where)) {
          add_hazard("WAR", a, b, where);
        }
        if (find_conflict(a.writes, b.writes, &where)) {
          add_hazard("WAW", a, b, where);
        }
      }
    }
  }

  const auto take = [&cfg](auto& map_in, auto& vec_out) {
    for (auto& [key, value] : map_in) {
      if (vec_out.size() >= cfg.max_findings) break;
      vec_out.push_back(std::move(value));
    }
  };
  take(dead, rep.dead_stores);
  take(redundant, rep.redundant_transfers);
  take(uninit, rep.uninit_reads);
  take(cost, rep.cost_findings);
  return rep;
}

// ---- Report --------------------------------------------------------------

double Report::dead_transfer_fraction() const {
  const std::uint64_t total = h2d_bytes + d2h_bytes;
  if (total == 0) return 0.0;
  return static_cast<double>(redundant_h2d_bytes + redundant_d2h_bytes) /
         static_cast<double>(total);
}

bool Report::gate_clean(double dead_transfer_budget) const {
  return hazards.empty() && uninit_reads.empty() && cost_findings.empty() &&
         dead_transfer_fraction() <= dead_transfer_budget;
}

std::string Report::summary() const {
  std::ostringstream os;
  os << "analyze: " << node_count << " nodes (" << kernel_nodes
     << " kernel launches), " << buffer_table.size() << " buffers, "
     << raw_edges << " dependency edges\n";
  os << "  hazards: " << hazards.size() << "\n";
  for (const Hazard& h : hazards) {
    os << "    " << h.kind << " " << h.first << " (#" << h.first_seq
       << ") vs " << h.second << " (#" << h.second_seq << ") on buffer "
       << buffer_table[h.buffer].label << " bytes [" << h.lo << ", " << h.hi
       << ")\n";
  }
  os << "  uninitialized reads: " << uninit_reads.size() << "\n";
  for (const UninitRead& u : uninit_reads) {
    os << "    " << u.kernel << " reads " << buffer_table[u.buffer].label
       << " bytes [" << u.lo << ", " << u.hi << ") never written (node #"
       << u.seq << ")\n";
  }
  os << "  dead stores: " << dead_stores.size() << " site(s), "
     << human_bytes(static_cast<double>(dead_store_bytes)) << "\n";
  for (const DeadStore& d : dead_stores) {
    os << "    " << d.kernel << " -> " << buffer_table[d.buffer].label << ": "
       << human_bytes(static_cast<double>(d.bytes)) << " over " << d.count
       << " write(s)\n";
  }
  os << "  redundant transfers: h2d "
     << human_bytes(static_cast<double>(redundant_h2d_bytes)) << " of "
     << human_bytes(static_cast<double>(h2d_bytes)) << ", d2h "
     << human_bytes(static_cast<double>(redundant_d2h_bytes)) << " of "
     << human_bytes(static_cast<double>(d2h_bytes)) << " ("
     << dead_transfer_fraction() * 100.0 << "% wasted)\n";
  for (const RedundantTransfer& r : redundant_transfers) {
    os << "    " << r.dir << " -> " << buffer_table[r.buffer].label << ": "
       << human_bytes(static_cast<double>(r.bytes)) << " over " << r.count
       << " transfer(s)\n";
  }
  os << "  lifetime: peak live "
     << human_bytes(static_cast<double>(peak_live_bytes)) << ", "
     << alloc_count << " alloc(s), " << free_count << " free(s), "
     << live_at_end << " live at end";
  if (preexisting_count > 0) {
    os << ", " << preexisting_count << " pre-existing";
  }
  os << "\n";
  os << "  cost declarations: " << cost_findings.size()
     << " kernel(s) over tolerance\n";
  for (const CostFinding& c : cost_findings) {
    os << "    " << c.kernel << ": footprint " << c.footprint_bytes
       << " B vs declared " << c.declared_bytes << " B (" << c.ratio
       << "x) over " << c.count << " launch(es)\n";
  }
  return os.str();
}

std::string Report::to_json() const {
  using metrics::json_write_number;
  using metrics::json_write_string;
  std::string out;
  out += "{\n  \"schema\": \"gs-analyze-v1\",\n";
  const auto kv = [&out](const char* key, double v, bool comma = true) {
    out += "  \"";
    out += key;
    out += "\": ";
    json_write_number(out, v);
    if (comma) out += ",";
    out += "\n";
  };
  kv("nodes", static_cast<double>(node_count));
  kv("kernel_nodes", static_cast<double>(kernel_nodes));
  kv("dependency_edges", static_cast<double>(raw_edges));
  kv("hazard_count", static_cast<double>(hazards.size()));
  kv("uninit_read_count", static_cast<double>(uninit_reads.size()));
  kv("dead_store_bytes", static_cast<double>(dead_store_bytes));
  kv("redundant_h2d_bytes", static_cast<double>(redundant_h2d_bytes));
  kv("redundant_d2h_bytes", static_cast<double>(redundant_d2h_bytes));
  kv("h2d_bytes", static_cast<double>(h2d_bytes));
  kv("d2h_bytes", static_cast<double>(d2h_bytes));
  kv("dead_transfer_fraction", dead_transfer_fraction());
  kv("peak_live_bytes", static_cast<double>(peak_live_bytes));
  kv("alloc_count", static_cast<double>(alloc_count));
  kv("free_count", static_cast<double>(free_count));
  kv("live_at_end", static_cast<double>(live_at_end));
  kv("cost_finding_count", static_cast<double>(cost_findings.size()));

  out += "  \"hazards\": [";
  for (std::size_t i = 0; i < hazards.size(); ++i) {
    const Hazard& h = hazards[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"kind\": ";
    json_write_string(out, h.kind);
    out += ", \"first\": ";
    json_write_string(out, h.first);
    out += ", \"second\": ";
    json_write_string(out, h.second);
    out += ", \"buffer\": ";
    json_write_string(out, buffer_table[h.buffer].label);
    out += ", \"lo\": ";
    json_write_number(out, static_cast<double>(h.lo));
    out += ", \"hi\": ";
    json_write_number(out, static_cast<double>(h.hi));
    out += "}";
  }
  out += hazards.empty() ? "],\n" : "\n  ],\n";

  out += "  \"uninit_reads\": [";
  for (std::size_t i = 0; i < uninit_reads.size(); ++i) {
    const UninitRead& u = uninit_reads[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"kernel\": ";
    json_write_string(out, u.kernel);
    out += ", \"buffer\": ";
    json_write_string(out, buffer_table[u.buffer].label);
    out += ", \"lo\": ";
    json_write_number(out, static_cast<double>(u.lo));
    out += ", \"hi\": ";
    json_write_number(out, static_cast<double>(u.hi));
    out += "}";
  }
  out += uninit_reads.empty() ? "],\n" : "\n  ],\n";

  out += "  \"dead_stores\": [";
  for (std::size_t i = 0; i < dead_stores.size(); ++i) {
    const DeadStore& d = dead_stores[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"kernel\": ";
    json_write_string(out, d.kernel);
    out += ", \"buffer\": ";
    json_write_string(out, buffer_table[d.buffer].label);
    out += ", \"bytes\": ";
    json_write_number(out, static_cast<double>(d.bytes));
    out += ", \"count\": ";
    json_write_number(out, static_cast<double>(d.count));
    out += "}";
  }
  out += dead_stores.empty() ? "],\n" : "\n  ],\n";

  out += "  \"redundant_transfers\": [";
  for (std::size_t i = 0; i < redundant_transfers.size(); ++i) {
    const RedundantTransfer& r = redundant_transfers[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"dir\": ";
    json_write_string(out, r.dir);
    out += ", \"buffer\": ";
    json_write_string(out, buffer_table[r.buffer].label);
    out += ", \"bytes\": ";
    json_write_number(out, static_cast<double>(r.bytes));
    out += ", \"count\": ";
    json_write_number(out, static_cast<double>(r.count));
    out += "}";
  }
  out += redundant_transfers.empty() ? "],\n" : "\n  ],\n";

  out += "  \"cost_findings\": [";
  for (std::size_t i = 0; i < cost_findings.size(); ++i) {
    const CostFinding& c = cost_findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"kernel\": ";
    json_write_string(out, c.kernel);
    out += ", \"declared_bytes\": ";
    json_write_number(out, c.declared_bytes);
    out += ", \"footprint_bytes\": ";
    json_write_number(out, c.footprint_bytes);
    out += ", \"ratio\": ";
    json_write_number(out, c.ratio);
    out += "}";
  }
  out += cost_findings.empty() ? "],\n" : "\n  ],\n";

  out += "  \"buffers\": [";
  for (std::size_t i = 0; i < buffer_table.size(); ++i) {
    const BufferInfo& b = buffer_table[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"label\": ";
    json_write_string(out, b.label);
    out += ", \"bytes\": ";
    json_write_number(out, static_cast<double>(b.bytes));
    out += ", \"preexisting\": ";
    out += b.preexisting ? "true" : "false";
    out += ", \"freed\": ";
    out += b.free_seq >= 0 ? "true" : "false";
    out += "}";
  }
  out += buffer_table.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace gs::vgpu::analyze
