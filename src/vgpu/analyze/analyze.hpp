// Launch-graph static analyzer for the virtual GPU (CHECKING.md, "Static
// analysis").
//
// The dynamic checker (src/vgpu/check) validates each launch while it
// runs; nothing there proves properties of the launch *stream* — that the
// issue order covers every data dependency, that no transferred byte is
// wasted, that buffers are not leaked or churned. This subsystem adds an
// offline pass over a captured trace of the stream:
//
//   CaptureLog  — a check::AccessSink that records every kernel launch,
//                 PCIe transfer, allocation, and free as a node carrying
//                 its merged byte-range footprint per buffer. Capture is
//                 attach-and-forget (SolverOptions::analyzer or
//                 Device::set_capture) and bit-identical-when-off like
//                 every other observer.
//   analyze()   — builds the buffer-level dependency DAG over the nodes
//                 and reports:
//                   (a) RAW/WAR/WAW hazards: conflicting accesses between
//                       nodes with no ordering edge (different streams, no
//                       fence). All engines issue on one stream, so they
//                       are machine-checked hazard-free; the stream/fence
//                       API exists for seeded defects today and the
//                       multi-device sharding work (ROADMAP item 4).
//                   (b) dead stores (bytes written, never read before
//                       overwrite or free) and redundant transfers (h2d of
//                       bytes whose content is unchanged since the last
//                       upload, d2h of a range the device has not written
//                       since it was last downloaded), with wasted-bytes
//                       totals;
//                   (c) uninitialized device reads — a kernel reading
//                       bytes never written by a kernel or upload since
//                       allocation. The substrate zero-fills allocations,
//                       but real device allocators do not; relying on the
//                       zero-fill is a latent porting bug.
//                   (d) buffer-lifetime stats: peak live bytes, alloc/free
//                       churn, leaks — the gated baseline for ROADMAP
//                       item 5's arena allocator;
//                   (e) static cost-declaration consistency: merged
//                       footprint bytes vs the declared KernelCost, the
//                       offline twin of the checker's dynamic 2x lint.
//
// The capture drops per-block detail (cross-block races inside one launch
// stay the dynamic checker's domain) and keeps only merged per-buffer
// intervals, so capture cost is far below checked execution. At most one
// sink (checker or capture) can be attached to a Device at a time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "vgpu/check/check.hpp"

namespace gs::vgpu::analyze {

/// Sorted, disjoint, half-open byte intervals. Small helper shared by the
/// capture (footprint merging) and the analyzer (initialized-byte sets).
class IntervalSet {
 public:
  void add(std::uint64_t lo, std::uint64_t hi);
  /// True iff every byte of [lo, hi) is contained.
  [[nodiscard]] bool covers(std::uint64_t lo, std::uint64_t hi) const;
  /// First sub-range of [lo, hi) NOT contained (valid when !covers).
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> first_gap(
      std::uint64_t lo, std::uint64_t hi) const;
  [[nodiscard]] bool empty() const { return ivals_.empty(); }
  [[nodiscard]] const std::vector<std::pair<std::uint64_t, std::uint64_t>>&
  intervals() const {
    return ivals_;
  }

 private:
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ivals_;
};

enum class NodeKind : std::uint8_t {
  kKernel,  ///< launch_blocks / parallel_for
  kHost,    ///< CheckedSpan accesses outside any launch (scalar glue)
  kH2d,     ///< DeviceBuffer::upload / upload_value
  kD2h,     ///< DeviceBuffer::download / download_value
  kAlloc,
  kFree,
  kFence,   ///< CaptureLog::fence() — global ordering barrier
};

std::string_view to_string(NodeKind kind);

/// One byte-range access of a node into one buffer.
struct Access {
  std::uint32_t buffer;     ///< index into CaptureLog::buffers()
  std::uint64_t lo, hi;     ///< half-open byte range within the buffer
};

/// One event in the captured stream, in issue order (seq).
struct Node {
  NodeKind kind = NodeKind::kKernel;
  std::string name;              ///< kernel name; "h2d"/"d2h"/"alloc"/...
  std::uint64_t seq = 0;         ///< position in the stream
  std::uint32_t stream = 0;      ///< issue stream (engines use 0)
  std::uint32_t buffer = kNoBuffer;  ///< transfer/alloc/free target
  double declared_flops = 0.0;   ///< kernel nodes: declared KernelCost
  double declared_bytes = 0.0;
  std::size_t threads = 0;
  std::uint64_t content_hash = 0;  ///< h2d nodes: FNV-1a of staged bytes
  std::vector<Access> reads, writes;  ///< merged byte footprints
  /// Reads of PRE-launch state: bytes read before any write by the same
  /// block within this launch. Kernels that fill a block-local scratch
  /// range and then reduce over it (the fused price_select/ftran_ratio
  /// pattern) read their own fresh writes — those bytes appear in
  /// `reads` (full footprint, used for dependencies/hazards) but not
  /// here. The uninitialized-read detector checks this list only. A
  /// read of ANOTHER block's same-launch write still lands here: there
  /// is no intra-launch cross-block ordering, so such a read observes
  /// pre-launch state on real hardware too.
  std::vector<Access> prior_reads;

  static constexpr std::uint32_t kNoBuffer = 0xffffffffu;
};

/// Identity and lifetime of one device buffer seen by the capture.
struct BufferInfo {
  std::string label;        ///< "#<id>" unless set_label() named it
  std::uint64_t bytes = 0;  ///< allocation size (grown to max touched byte
                            ///< for pre-existing buffers)
  std::size_t elem_size = 0;
  bool preexisting = false;  ///< first seen mid-stream: allocated before
                             ///< capture attached; assumed initialized
  std::uint64_t alloc_seq = 0;
  std::int64_t free_seq = -1;  ///< -1: still live when capture ended
};

/// Access-stream recorder. Attach to a Device with set_capture() (or let
/// an engine do it via SolverOptions::analyzer), run the workload, then
/// hand the log to analyze(). The log is borrowed by the device and must
/// outlive the attachment; it may span multiple solves and accumulates
/// until reset(). Recording is mutex-serialised (launch bodies touch
/// spans from every pool worker).
class CaptureLog : public check::AccessSink {
 public:
  CaptureLog() = default;
  CaptureLog(const CaptureLog&) = delete;
  CaptureLog& operator=(const CaptureLog&) = delete;

  // ---- AccessSink interface (Device / DeviceBuffer / CheckedSpan). -------
  void begin_launch(std::string_view kernel, double declared_flops,
                    double declared_bytes, std::size_t threads,
                    std::size_t block_size) override;
  void end_launch() override;
  void note_range(const void* base, std::size_t extent, check::ElemKind kind,
                  std::size_t elem_size, std::size_t lo, std::size_t hi,
                  bool is_write) override;
  /// Bounds violations are the dynamic checker's job; the capture ignores
  /// them (the access is redirected to scratch and never lands here).
  void note_oob(std::size_t index, std::size_t extent, bool is_write) override;
  void on_alloc(const void* base, std::size_t bytes,
                std::size_t elem_size) override;
  void on_free(const void* base) override;
  void on_h2d(const void* base, std::size_t lo_byte, std::size_t hi_byte,
              const void* host_data) override;
  void on_d2h(const void* base, std::size_t lo_byte,
              std::size_t hi_byte) override;

  // ---- Stream model. -----------------------------------------------------
  /// Subsequent nodes are issued on `stream`. Engines never call this
  /// (everything rides stream 0, totally ordered); seeded-defect tests and
  /// future multi-device work use it to express concurrency.
  void set_stream(std::uint32_t stream);
  /// Global ordering barrier: every node issued before the fence happens
  /// before every node issued after it, across all streams.
  void fence();

  /// Name the buffer at `base` for reports (defaults to "#<id>").
  void set_label(const void* base, std::string label);

  /// Drop all captured state (labels included).
  void reset();

  // ---- Analyzer-facing view. ---------------------------------------------
  /// Flush any pending host-access node and return the stream. Call after
  /// the workload is done; analyze() does this for you.
  const std::vector<Node>& nodes();
  [[nodiscard]] const std::vector<BufferInfo>& buffers() const {
    return buffers_;
  }
  [[nodiscard]] std::size_t launches_captured() const { return launches_; }
  [[nodiscard]] std::uint32_t stream_count() const { return stream_count_; }

 private:
  std::uint32_t id_for_locked(const void* base, std::uint64_t min_bytes,
                              std::size_t elem_size);
  void flush_host_locked();
  Node& append_locked(NodeKind kind, std::string name);

  mutable std::mutex mu_;
  std::vector<Node> nodes_;
  std::vector<BufferInfo> buffers_;
  std::unordered_map<const void*, std::uint32_t> live_;  ///< base -> id
  std::uint64_t seq_ = 0;
  std::uint32_t stream_ = 0;
  std::uint32_t stream_count_ = 1;
  std::size_t launches_ = 0;

  // In-flight launch (or pending host) footprint: per buffer, raw
  // append-or-extend interval lists, merged when the node retires.
  struct PendingAccess {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> reads, writes;
    /// Subranges of `reads` not preceded by a same-block write in this
    /// launch (feeds Node::prior_reads).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> prior_reads;
    /// Bytes written so far in this launch, keyed by block id
    /// (check::detail::tls_block) — block-local program order is the
    /// only intra-launch ordering the capture may assume.
    std::map<std::uint32_t, IntervalSet> block_writes;
  };
  bool in_launch_ = false;
  Node pending_;
  std::map<std::uint32_t, PendingAccess> pending_access_;
  bool host_pending_ = false;

  void note_range_locked(std::uint32_t id, std::uint64_t lo, std::uint64_t hi,
                         bool is_write);
  void retire_pending_locked();
};

// ---- Analysis results. ---------------------------------------------------

struct Hazard {
  std::string kind;  ///< "RAW" | "WAR" | "WAW"
  std::uint64_t first_seq, second_seq;
  std::string first, second;  ///< node names
  std::uint32_t buffer;
  std::uint64_t lo, hi;  ///< overlapping byte range
};

/// Dead stores aggregated per (writer kernel, buffer).
struct DeadStore {
  std::string kernel;
  std::uint32_t buffer;
  std::uint64_t bytes = 0;   ///< written-never-read bytes
  std::size_t count = 0;     ///< distinct dead write ranges
  std::uint64_t first_seq = 0;
};

/// Redundant transfers aggregated per (direction, buffer).
struct RedundantTransfer {
  std::string dir;  ///< "h2d" | "d2h"
  std::uint32_t buffer;
  std::uint64_t bytes = 0;
  std::size_t count = 0;
  std::uint64_t first_seq = 0;
};

struct UninitRead {
  std::string kernel;
  std::uint32_t buffer;
  std::uint64_t lo, hi;  ///< first uninitialized byte range read
  std::uint64_t seq;
};

struct CostFinding {
  std::string kernel;
  double declared_bytes;
  double footprint_bytes;
  double ratio;
  std::size_t count = 0;  ///< launches of this kernel over the tolerance
};

struct AnalyzeConfig {
  /// Flag kernels whose merged footprint exceeds declared bytes by this
  /// factor. Matches the dynamic checker's tightened lint; the static
  /// footprint is merged (re-touches collapse), so dynamic-clean implies
  /// static-clean.
  double cost_ratio_tol = 2.0;
  /// Ignore launches whose declared and footprint bytes are both below
  /// this (fixed-size seeds, scalar postludes).
  double cost_min_bytes = 64.0;
  /// Kernels exempt from the cost consistency check (same rationale as
  /// CheckConfig::lint_skip: gemm's declaration models ideal cached
  /// traffic).
  std::vector<std::string> lint_skip = {"gemm"};
  /// Cap per report list; totals always cover everything.
  std::size_t max_findings = 64;
};

struct Report {
  // (a) ordering hazards + the dependency DAG they are checked against.
  std::vector<Hazard> hazards;
  std::size_t raw_edges = 0;  ///< writer->reader edges discovered
  // (b) wasted bytes.
  std::vector<DeadStore> dead_stores;
  std::uint64_t dead_store_bytes = 0;
  std::vector<RedundantTransfer> redundant_transfers;
  std::uint64_t redundant_h2d_bytes = 0;
  std::uint64_t redundant_d2h_bytes = 0;
  std::uint64_t h2d_bytes = 0;  ///< total captured transfer traffic
  std::uint64_t d2h_bytes = 0;
  // (c) uninitialized reads.
  std::vector<UninitRead> uninit_reads;
  // (d) buffer lifetime.
  std::uint64_t peak_live_bytes = 0;
  std::size_t alloc_count = 0;      ///< allocations captured
  std::size_t free_count = 0;
  std::size_t preexisting_count = 0;  ///< buffers allocated before attach
  std::size_t live_at_end = 0;        ///< captured allocs never freed
  // (e) cost-declaration consistency.
  std::vector<CostFinding> cost_findings;
  // Stream shape.
  std::size_t node_count = 0;
  std::size_t kernel_nodes = 0;
  /// Buffer table echoed for attribution (label, size, lifetime).
  std::vector<BufferInfo> buffer_table;

  /// Wasted transfer bytes as a fraction of total captured traffic
  /// (0 when nothing was transferred).
  [[nodiscard]] double dead_transfer_fraction() const;
  /// The CI gate: no hazards, no uninitialized reads, no cost drift, and
  /// dead-transfer bytes within `dead_transfer_budget` (fraction of total
  /// traffic). Dead stores are reported but not gated: a solve's final
  /// iteration legitimately writes state nothing reads back.
  [[nodiscard]] bool gate_clean(double dead_transfer_budget = 0.01) const;

  /// Human-readable multi-line summary.
  [[nodiscard]] std::string summary() const;
  /// Machine-readable report, schema "gs-analyze-v1".
  [[nodiscard]] std::string to_json() const;
};

/// Run every detector over the captured stream. Flushes the log's pending
/// host node; the log itself is not consumed and may keep accumulating.
Report analyze(CaptureLog& log, const AnalyzeConfig& config = {});

}  // namespace gs::vgpu::analyze
