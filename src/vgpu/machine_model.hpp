// Roofline machine models for the virtual-GPU substrate.
//
// The paper's testbed (a GT200-class NVIDIA GPU driven over PCIe by a
// 2009-era x86 CPU) is not available in this environment, so execution is
// functional (on the host) while *time* is produced by a calibrated
// analytic model:
//
//   t_kernel  = t_launch + max(flops / F_eff, bytes / B_eff)
//   F_eff     = F_peak * min(1, threads / saturation_threads)   (same for B)
//   t_copy    = t_latency + bytes / B_pcie
//
// This reproduces the two effects that shape the paper's evaluation:
// (1) large BLAS-2 kernels are bandwidth-bound, where the GPU's ~14x DRAM
// bandwidth advantage over a single 2009 core yields the headline speedup;
// (2) small kernels are dominated by launch latency and under-occupancy,
// which is why the CPU wins below the crossover size.
#pragma once

#include <cstddef>
#include <string>

namespace gs::vgpu {

/// Calibrated throughput/latency description of one machine.
struct MachineModel {
  std::string name;

  /// Peak sustained arithmetic throughput, GFLOP/s (per precision — see
  /// flops_scale_for_bytes below for the single/double split).
  double peak_gflops_sp = 0.0;
  double peak_gflops_dp = 0.0;

  /// Sustained DRAM bandwidth, GB/s.
  double mem_gbps = 0.0;

  /// Fixed cost per kernel launch, seconds (0 for a host model).
  double launch_overhead_s = 0.0;

  /// Threads needed to saturate the machine; throughput scales linearly
  /// below this (occupancy effect). 1 for a single host core.
  std::size_t saturation_threads = 1;

  /// Host<->device interconnect (PCIe). Unused (0) for host models.
  double xfer_gbps = 0.0;
  double xfer_latency_s = 0.0;

  /// Roofline time for one kernel launch. `scalar_bytes` selects the
  /// arithmetic peak: 4 -> single precision, 8 -> double precision.
  [[nodiscard]] double kernel_seconds(double flops, double bytes,
                                      std::size_t threads,
                                      std::size_t scalar_bytes) const noexcept;

  /// Time to move `bytes` across the host<->device interconnect.
  [[nodiscard]] double transfer_seconds(std::size_t bytes) const noexcept;
};

/// GT200-class GPU (GeForce GTX 280): the paper's device.
[[nodiscard]] MachineModel gtx280_model();
/// Fermi-class GPU (GeForce GTX 570): device-sensitivity extension.
[[nodiscard]] MachineModel gtx570_model();
/// Kepler-class GPU (GeForce GTX TITAN): device-sensitivity extension.
[[nodiscard]] MachineModel titan_model();
/// Single 2009-era x86 core: the paper's sequential CPU baseline.
[[nodiscard]] MachineModel cpu2009_model();

}  // namespace gs::vgpu
